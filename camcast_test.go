package camcast

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// collector records deliveries per member.
type collector struct {
	mu  sync.Mutex
	got map[string]map[string]int // addr -> msgID -> count
}

func newCollector() *collector {
	return &collector{got: make(map[string]map[string]int)}
}

func (c *collector) handler(addr string) func(Message) {
	return func(m Message) {
		c.mu.Lock()
		defer c.mu.Unlock()
		if c.got[addr] == nil {
			c.got[addr] = make(map[string]int)
		}
		c.got[addr][m.ID]++
	}
}

func (c *collector) count(addr, msgID string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.got[addr][msgID]
}

// buildGroup creates a network of n members with background maintenance
// disabled (tests drive Settle explicitly).
func buildGroup(t *testing.T, protocol Protocol, n, capacity int) (*Network, *collector, []string) {
	t.Helper()
	net := NewNetwork()
	t.Cleanup(net.Close)
	col := newCollector()
	addrs := make([]string, n)
	opts := func(addr string) Options {
		return Options{
			Protocol:  protocol,
			Capacity:  capacity,
			Stabilize: -1,
			Fix:       -1,
			OnDeliver: col.handler(addr),
		}
	}
	addrs[0] = "member-0"
	if _, err := net.Create(addrs[0], opts(addrs[0])); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < n; i++ {
		addrs[i] = fmt.Sprintf("member-%d", i)
		if _, err := net.Join(addrs[i], addrs[0], opts(addrs[i])); err != nil {
			t.Fatal(err)
		}
		net.Settle(1)
	}
	net.Settle(3)
	return net, col, addrs
}

func TestQuickstartFlow(t *testing.T) {
	net, col, addrs := buildGroup(t, CAMChord, 10, 4)
	m, err := net.Member(addrs[3])
	if err != nil {
		t.Fatal(err)
	}
	msgID, err := m.Multicast([]byte("hello group"))
	if err != nil {
		t.Fatal(err)
	}
	for _, addr := range addrs {
		if got := col.count(addr, msgID); got != 1 {
			t.Errorf("%s delivered %d times, want 1", addr, got)
		}
	}
}

func TestKoordeProtocolFlow(t *testing.T) {
	net, col, addrs := buildGroup(t, CAMKoorde, 12, 5)
	m, _ := net.Member(addrs[7])
	msgID, err := m.Multicast([]byte("koorde"))
	if err != nil {
		t.Fatal(err)
	}
	for _, addr := range addrs {
		if got := col.count(addr, msgID); got != 1 {
			t.Errorf("%s delivered %d times, want 1", addr, got)
		}
	}
}

func TestCapacityFromBandwidth(t *testing.T) {
	net := NewNetwork()
	defer net.Close()
	m, err := net.Create("a", Options{UploadKbps: 750, LinkKbps: 100, Stabilize: -1, Fix: -1})
	if err != nil {
		t.Fatal(err)
	}
	if m.Capacity() != 8 {
		t.Errorf("Capacity = %d, want ceil(750/100)=8", m.Capacity())
	}
}

func TestOptionValidation(t *testing.T) {
	net := NewNetwork()
	defer net.Close()
	if _, err := net.Create("a", Options{Protocol: Protocol(9)}); err == nil {
		t.Error("unknown protocol should fail")
	}
	if _, err := net.Create("a", Options{Protocol: CAMKoorde, Capacity: 3}); err == nil {
		t.Error("koorde capacity 3 should fail")
	}
	if _, err := net.Create("a", Options{Capacity: 1}); err == nil {
		t.Error("capacity 1 should fail")
	}
	if _, err := net.Create("a", Options{Bits: 99}); err == nil {
		t.Error("bits 99 should fail")
	}
	if _, err := net.Join("b", "", Options{}); err == nil {
		t.Error("join without bootstrap should fail")
	}
}

func TestDuplicateAddressRejected(t *testing.T) {
	net := NewNetwork()
	defer net.Close()
	if _, err := net.Create("a", Options{Stabilize: -1, Fix: -1}); err != nil {
		t.Fatal(err)
	}
	_, err := net.Join("a", "a", Options{Stabilize: -1, Fix: -1})
	if !errors.Is(err, ErrMemberExists) {
		t.Fatalf("err = %v, want ErrMemberExists", err)
	}
}

func TestMemberLookupAndList(t *testing.T) {
	net, _, addrs := buildGroup(t, CAMChord, 5, 4)
	if _, err := net.Member("ghost"); !errors.Is(err, ErrNoSuchMember) {
		t.Fatalf("err = %v", err)
	}
	if got := net.Members(); len(got) != len(addrs) {
		t.Fatalf("Members() = %d, want %d", len(got), len(addrs))
	}
}

func TestLeaveThenMulticast(t *testing.T) {
	net, col, addrs := buildGroup(t, CAMChord, 8, 4)
	leaver, _ := net.Member(addrs[4])
	if err := leaver.Leave(); err != nil {
		t.Fatal(err)
	}
	net.Settle(3)
	src, _ := net.Member(addrs[0])
	msgID, err := src.Multicast([]byte("post-leave"))
	if err != nil {
		t.Fatal(err)
	}
	for _, addr := range addrs {
		want := 1
		if addr == addrs[4] {
			want = 0
		}
		if got := col.count(addr, msgID); got != want {
			t.Errorf("%s delivered %d times, want %d", addr, got, want)
		}
	}
}

func TestCrashThenMulticast(t *testing.T) {
	net, col, addrs := buildGroup(t, CAMChord, 10, 4)
	victim, _ := net.Member(addrs[6])
	victim.Crash()
	net.Settle(4)
	src, _ := net.Member(addrs[1])
	msgID, err := src.Multicast([]byte("post-crash"))
	if err != nil {
		t.Fatal(err)
	}
	for _, addr := range addrs {
		if addr == addrs[6] {
			continue
		}
		if got := col.count(addr, msgID); got != 1 {
			t.Errorf("%s delivered %d times, want 1", addr, got)
		}
	}
}

func TestBackgroundMaintenanceConverges(t *testing.T) {
	net := NewNetwork()
	defer net.Close()
	col := newCollector()
	mk := func(addr string) Options {
		return Options{
			Capacity:  4,
			Stabilize: time.Millisecond,
			Fix:       time.Millisecond,
			OnDeliver: col.handler(addr),
		}
	}
	if _, err := net.Create("a", mk("a")); err != nil {
		t.Fatal(err)
	}
	for _, addr := range []string{"b", "c", "d", "e"} {
		if _, err := net.Join(addr, "a", mk(addr)); err != nil {
			t.Fatal(err)
		}
	}

	// Poll until a multicast reaches all five members.
	deadline := time.Now().Add(5 * time.Second)
	for {
		src, _ := net.Member("c")
		msgID, err := src.Multicast([]byte("ping"))
		if err != nil {
			t.Fatal(err)
		}
		time.Sleep(10 * time.Millisecond)
		all := true
		for _, addr := range []string{"a", "b", "c", "d", "e"} {
			if col.count(addr, msgID) != 1 {
				all = false
			}
		}
		if all {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("background maintenance never converged to full delivery")
		}
	}
}

func TestProtocolString(t *testing.T) {
	if CAMChord.String() != "CAM-Chord" || CAMKoorde.String() != "CAM-Koorde" {
		t.Error("protocol strings wrong")
	}
	if Protocol(7).String() != "Protocol(7)" {
		t.Error("unknown protocol string wrong")
	}
}

func TestStatsExposed(t *testing.T) {
	net, _, addrs := buildGroup(t, CAMChord, 6, 4)
	src, _ := net.Member(addrs[2])
	if _, err := src.Multicast([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if src.Stats().Delivered == 0 {
		t.Error("source should count its own delivery")
	}
	if src.ID() > (1<<32)-1 {
		t.Error("ID outside default 32-bit space")
	}
	if src.Addr() != addrs[2] {
		t.Error("Addr wrong")
	}
}

func TestNetworkCloseStopsMembers(t *testing.T) {
	net := NewNetwork()
	m, err := net.Create("a", Options{Stabilize: time.Millisecond, Fix: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	net.Close()
	if _, err := m.Multicast(nil); err == nil {
		t.Error("multicast after Close should fail")
	}
	if _, err := net.Create("b", Options{}); err == nil {
		t.Error("create after Close should fail")
	}
	net.Close() // idempotent
}

func TestNetworkCounters(t *testing.T) {
	net, col, addrs := buildGroup(t, CAMChord, 10, 4)

	src, _ := net.Member(addrs[2])
	msgID, err := src.Multicast([]byte("counted"))
	if err != nil {
		t.Fatal(err)
	}
	for _, addr := range addrs {
		if got := col.count(addr, msgID); got != 1 {
			t.Fatalf("%s delivered %d times, want 1", addr, got)
		}
	}
	counters := net.CountersSnapshot()
	if counters.ForwardAcked == 0 {
		t.Error("clean multicast recorded no acked forwards")
	}
	if counters.ForwardLost != 0 {
		t.Errorf("clean multicast recorded %d lost segments", counters.ForwardLost)
	}

	// Crash a member without letting maintenance notice: the next
	// multicast must still reach every survivor, with the recovery fully
	// accounted (acks grew, nothing reported lost).
	before := counters.ForwardAcked
	victim, _ := net.Member(addrs[6])
	victim.Crash()
	msgID, err = src.Multicast([]byte("after crash"))
	if err != nil {
		t.Fatal(err)
	}
	for _, addr := range addrs {
		if addr == addrs[6] {
			continue
		}
		if got := col.count(addr, msgID); got != 1 {
			t.Errorf("survivor %s delivered %d times, want 1", addr, got)
		}
	}
	counters = net.CountersSnapshot()
	if counters.ForwardAcked <= before {
		t.Error("post-crash multicast recorded no new acked forwards")
	}
	if counters.ForwardLost != 0 {
		t.Errorf("crash recovery reported %d lost segments", counters.ForwardLost)
	}
}

func TestMemberForwardingStats(t *testing.T) {
	net, _, addrs := buildGroup(t, CAMChord, 8, 4)
	victim, _ := net.Member(addrs[5])
	victim.Crash()
	src, _ := net.Member(addrs[0])
	if _, err := src.Multicast([]byte("stats probe")); err != nil {
		t.Fatal(err)
	}
	var agg Stats
	for _, addr := range addrs {
		m, err := net.Member(addr)
		if err != nil {
			continue // the crashed member is gone from the registry
		}
		s := m.Stats()
		agg.ChildrenAcked += s.ChildrenAcked
		agg.Retries += s.Retries
		agg.SegmentsRepaired += s.SegmentsRepaired
		agg.SegmentsLost += s.SegmentsLost
	}
	if agg.ChildrenAcked == 0 {
		t.Error("no acked children recorded in member stats")
	}
	if agg.SegmentsLost != 0 {
		t.Errorf("SegmentsLost = %d, want 0 (repair should cover a single crash)", agg.SegmentsLost)
	}
}

func TestListenTCPGroup(t *testing.T) {
	if testing.Short() {
		t.Skip("real sockets; skipped in -short runs")
	}
	var (
		mu  sync.Mutex
		got = map[string]map[string]int{}
	)
	opts := func(self *string) Options {
		return Options{
			Capacity:  4,
			Stabilize: -1,
			Fix:       -1,
			// Tight budgets so a failure would surface quickly.
			ForwardTimeout: 2 * time.Second,
			RPCTimeout:     2 * time.Second,
			OnDeliver: func(m Message) {
				mu.Lock()
				defer mu.Unlock()
				if got[*self] == nil {
					got[*self] = map[string]int{}
				}
				got[*self][m.ID]++
			},
		}
	}

	var members []*TCPMember
	var addrs []string
	for i := 0; i < 4; i++ {
		self := new(string)
		via := ""
		if i > 0 {
			via = members[0].Addr()
		}
		m, err := ListenTCP("127.0.0.1:0", via, opts(self))
		if err != nil {
			t.Fatal(err)
		}
		*self = m.Addr()
		members = append(members, m)
		addrs = append(addrs, m.Addr())
		for r := 0; r < 3; r++ {
			for _, mm := range members {
				mm.StabilizeOnce()
			}
		}
	}
	defer func() {
		for _, m := range members {
			m.Close()
		}
	}()
	for r := 0; r < 3; r++ {
		for _, m := range members {
			m.StabilizeOnce()
			m.FixAll()
		}
	}

	msgID, err := members[2].Multicast([]byte("over real sockets"))
	if err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	for _, addr := range addrs {
		if got[addr][msgID] != 1 {
			t.Errorf("%s delivered %d times, want 1", addr, got[addr][msgID])
		}
	}
}
