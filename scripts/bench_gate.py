#!/usr/bin/env python3
"""Benchmark regression gate.

Compares a fresh `go test -bench` run against the committed baseline in a
BENCH_*.json file and fails (exit 1) when any gated metric regresses beyond
the tolerance. Pass the bench output with repetition (-count N); the gate
compares the per-cell median, which is what keeps a noisy shared box from
flagging phantom regressions.

Usage:
    go test -run xxx -bench BenchmarkMulticastThroughput -count 5 . \
        | python3 scripts/bench_gate.py BENCH_dissem.json -
    python3 scripts/bench_gate.py BENCH_transport.json bench_output.txt

The JSON file declares its own gate:

    "gate": {
        "benchmark":    "BenchmarkMulticastThroughput",  # name prefix
        "baseline_key": "post",       # top-level key(s) holding the baseline
        "metrics":      ["ns_op", "B_op"],
        "tolerance_pct": 15,
        "ceilings":     {"hops_op": {"Benchmark.../cell": 20}}  # optional
    }

Metric keys are the bench-line units with '/' spelled '_': the built-ins
(ns_op, B_op, allocs_op) plus any custom b.ReportMetric unit (hops_op,
p99hops_op, ...). "ceilings" adds absolute per-metric limits on the
measured median — a number for every cell or a {full benchmark name:
number} mapping — enforced regardless of the committed baseline.

Each baseline key may hold either {"cells": {"<sub/cell>": {...}}} (cells are
sub-benchmark paths under the benchmark name) or a flat mapping of full
benchmark names to metric dicts; "baseline_key" may also be a list of keys
whose cells are merged (for files like BENCH_obsv.json that group baselines
by subsystem). A baseline value of exactly 0 is an absolute gate: the
measured median must also be 0 (how "the emit path allocates nothing"
stays enforced rather than skipped).

Scale mode: when the baseline file declares "format": "scale" (the shape
`camchurn -live ... -json` writes), the measured input is another scale
JSON rather than bench text:

    go run ./cmd/camchurn -live 10000 -mode cam-chord -json measured.json
    python3 scripts/bench_gate.py BENCH_scale.json measured.json

Cells are matched by key ("<transport>/<mode>/<members>") and compared on
the intersection only — a smoke run that measures one cell is gated against
just that cell of the committed baseline, so CI does not have to re-host
the 100k membership. The gate block lists ratio-gated metrics (higher is
worse, tolerance_pct applies), absolute "floors" (fractions the measured
cell must reach, e.g. ring_correct), and absolute "ceilings" (values the
measured cell must not exceed, e.g. bytes_per_member). A floor or ceiling
is either a number, applied to every measured cell, or a
{"<cell key>": number} mapping gating just those cells — how "the 10k ramp finishes in 3 s" is
enforced without imposing the same wall-clock bound on the 100k cell.
Unlike the ratio gate, ceilings hold even if the committed baseline drifts:
they encode the claims the documentation makes. At least one cell must
overlap.
"""

import json
import re
import statistics
import sys

BENCH_LINE = re.compile(r"^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+(.+ns/op.*)$")
METRIC_PAIR = re.compile(r"([\d.]+(?:[eE][+-]?\d+)?)\s+(\S+)")


def parse_bench(stream):
    """Collects per-benchmark metric samples from `go test -bench` output.

    Every "<value> <unit>" pair on a benchmark line becomes a sample under
    the unit's key with '/' replaced by '_' — the built-ins (ns/op -> ns_op,
    B/op -> B_op, allocs/op -> allocs_op) and any b.ReportMetric custom unit
    (e.g. hops/op -> hops_op). MB/s is skipped: it is the one standard
    metric where higher is better, and the ratio gate reads higher-as-worse.
    """
    samples = {}
    for line in stream:
        m = BENCH_LINE.match(line.strip())
        if not m:
            continue
        name = m.group(1)
        cell = samples.setdefault(name, {"ns_op": [], "B_op": [], "allocs_op": []})
        for value, unit in METRIC_PAIR.findall(m.group(2)):
            if unit == "MB/s":
                continue
            cell.setdefault(unit.replace("/", "_"), []).append(float(value))
    return samples


def baseline_cells(doc):
    gate = doc["gate"]
    keys = gate["baseline_key"]
    if isinstance(keys, str):
        keys = [keys]
    cells = {}
    for key in keys:
        base = doc[key]
        if "cells" in base:
            prefix = gate["benchmark"] + "/"
            cells.update({prefix + cell: metrics
                          for cell, metrics in base["cells"].items()})
            continue
        # Flat form: full benchmark names mapped to metric dicts.
        cells.update({
            name: metrics
            for name, metrics in base.items()
            if isinstance(metrics, dict) and name.startswith("Benchmark")
        })
    return cells


def scale_gate(doc, measured_path, baseline_path):
    """Gates one camchurn -live scale run against the committed baseline."""
    gate = doc["gate"]
    measured = json.load(sys.stdin if measured_path == "-" else open(measured_path))
    if measured.get("format") != "scale":
        sys.exit(f"{measured_path}: not a scale document (want format: scale)")

    tolerance = gate.get("tolerance_pct", 50) / 100.0
    floors = gate.get("floors", {})
    ceilings = gate.get("ceilings", {})
    failures, checked, overlap = [], 0, 0
    for key in sorted(measured.get("cells", {})):
        base = doc["cells"].get(key)
        have = measured["cells"][key]
        if base is None:
            print(f"skip {key}: not in baseline")
            continue
        overlap += 1
        for metric in gate["metrics"]:
            want, got = base.get(metric), have.get(metric)
            if want is None or got is None:
                continue
            checked += 1
            if want == 0:
                flag = "FAIL" if got > 0 else "ok"
                print(f"{flag:4} {key} {metric}: baseline 0, measured {got:g}")
                if got > 0:
                    failures.append(f"{key} {metric}: {got:g} vs baseline 0")
                continue
            ratio = got / want
            flag = "FAIL" if ratio > 1 + tolerance else "ok"
            print(f"{flag:4} {key} {metric}: baseline {want:g}, "
                  f"measured {got:g} ({ratio:.2f}x baseline)")
            if ratio > 1 + tolerance:
                failures.append(
                    f"{key} {metric}: {got:g} vs baseline {want:g} "
                    f"(+{(ratio - 1) * 100:.1f}% > {gate.get('tolerance_pct', 50)}% tolerance)")
        for metric, floor in floors.items():
            if isinstance(floor, dict):
                floor = floor.get(key)
            got = have.get(metric)
            if floor is None or got is None:
                continue
            checked += 1
            flag = "FAIL" if got < floor else "ok"
            print(f"{flag:4} {key} {metric}: floor {floor:g}, measured {got:g}")
            if got < floor:
                failures.append(f"{key} {metric}: {got:g} below floor {floor:g}")
        for metric, lim in ceilings.items():
            if isinstance(lim, dict):
                lim = lim.get(key)
            got = have.get(metric)
            if lim is None or got is None:
                continue
            checked += 1
            flag = "FAIL" if got > lim else "ok"
            print(f"{flag:4} {key} {metric}: ceiling {lim:g}, measured {got:g}")
            if got > lim:
                failures.append(f"{key} {metric}: {got:g} above ceiling {lim:g}")

    if overlap == 0:
        failures.append("no measured cell matches any baseline cell")
    if failures:
        print(f"\n{len(failures)} scale-gate failure(s):", file=sys.stderr)
        for f in failures:
            print("  " + f, file=sys.stderr)
        sys.exit(1)
    print(f"\ngate passed: {checked} checks over {overlap} cell(s) vs {baseline_path}")


def main(argv):
    if len(argv) != 3:
        sys.exit(__doc__)
    doc = json.load(open(argv[1]))
    if doc.get("format") == "scale":
        scale_gate(doc, argv[2], argv[1])
        return
    gate = doc["gate"]
    stream = sys.stdin if argv[2] == "-" else open(argv[2])
    measured = parse_bench(stream)

    tolerance = gate["tolerance_pct"] / 100.0
    failures, checked = [], 0
    for name, base in sorted(baseline_cells(doc).items()):
        got = measured.get(name)
        if got is None:
            failures.append(f"{name}: missing from bench output (gate needs full coverage)")
            continue
        for metric in gate["metrics"]:
            want = base.get(metric)
            if want is None:
                continue
            if not got[metric]:
                failures.append(f"{name} {metric}: baseline has it, bench output lacks it")
                continue
            have = statistics.median(got[metric])
            checked += 1
            if want == 0:
                # A zero baseline is an absolute promise (e.g. 0 allocs/op
                # on the emit path), not a ratio.
                flag = "FAIL" if have > 0 else "ok"
                print(f"{flag:4} {name} {metric}: baseline 0, median {have:.0f}")
                if have > 0:
                    failures.append(f"{name} {metric}: {have:.0f} vs baseline 0")
                continue
            ratio = have / want
            flag = "FAIL" if ratio > 1 + tolerance else "ok"
            print(f"{flag:4} {name} {metric}: baseline {want:.0f}, "
                  f"median {have:.0f} ({ratio:.2f}x baseline)")
            if ratio > 1 + tolerance:
                failures.append(
                    f"{name} {metric}: {have:.0f} vs baseline {want:.0f} "
                    f"(+{(ratio - 1) * 100:.1f}% > {gate['tolerance_pct']}% tolerance)")
        # Absolute ceilings hold even if the committed baseline drifts: they
        # encode documented claims (e.g. the lookup hop bound). A ceiling is
        # a number applied to every cell or a {full benchmark name: number}
        # mapping gating just those cells.
        for metric, lim in gate.get("ceilings", {}).items():
            if isinstance(lim, dict):
                lim = lim.get(name)
            if lim is None or not got.get(metric):
                continue
            have = statistics.median(got[metric])
            checked += 1
            flag = "FAIL" if have > lim else "ok"
            print(f"{flag:4} {name} {metric}: ceiling {lim:g}, median {have:g}")
            if have > lim:
                failures.append(f"{name} {metric}: {have:g} above ceiling {lim:g}")

    if failures:
        print(f"\n{len(failures)} regression(s) beyond {gate['tolerance_pct']}%:",
              file=sys.stderr)
        for f in failures:
            print("  " + f, file=sys.stderr)
        sys.exit(1)
    print(f"\ngate passed: {checked} metrics within {gate['tolerance_pct']}% of {argv[1]}")


if __name__ == "__main__":
    main(sys.argv)
