package camcast

import (
	"crypto/subtle"
	"errors"
	"fmt"
	"sort"
	"sync"

	"camcast/internal/metrics"
	"camcast/internal/runtime"
	"camcast/internal/transport"
)

// ErrGroupExists reports a CreateGroup with a name already in use.
var ErrGroupExists = errors.New("camcast: group already exists")

// ErrNoSuchGroup reports an operation on an unknown group name.
var ErrNoSuchGroup = errors.New("camcast: no such group")

// ErrBadToken reports a join or describe with a wrong group token.
var ErrBadToken = errors.New("camcast: group token mismatch")

// GroupOptions configure a group at creation.
type GroupOptions struct {
	// Token protects the group: JoinGroup and the HTTP control plane must
	// present it to obtain the group's handle or inspect its members.
	// Empty leaves the group open. The token gates the control plane only —
	// it is a capability for acquiring a *Group handle, not a wire-level
	// credential (see DESIGN.md §13).
	Token string
}

// GroupInfo is one group's control-plane summary, as returned by
// Network.Groups and Group.Describe and served at /debug/camcast/groups.
type GroupInfo struct {
	// Name is the group's unique name within its Network.
	Name string `json:"name"`
	// Flow is the group's compact wire flow label: the uvarint tag every
	// frame of this group's traffic carries so thousands of groups can
	// share one TCP connection per peer pair. 0 is the default group.
	Flow uint64 `json:"flow"`
	// Protected reports whether a token is required to join or describe.
	Protected bool `json:"protected"`
	// MemberCount is the number of live in-process members. TCP members
	// are tracked by their TCPHost, not the group (see Group.ListenOn).
	MemberCount int `json:"member_count"`
	// Members lists in-process member addresses. Only Describe fills it;
	// group listings omit it.
	Members []string `json:"members,omitempty"`
	// Counters is the group's forwarding-outcome tally.
	Counters CountersSnapshot `json:"counters"`
}

// Group is one named multicast group hosted by a Network: an isolated
// overlay with its own members, forwarding counters, and wire flow label.
// Every frame a group's members exchange carries the flow label, so any
// number of groups multiplex over the same transport — and, for TCP
// members, over one connection per peer pair (see TCPHost).
//
// A *Group handle is a capability: CreateGroup returns it to the creator,
// JoinGroup returns it to callers presenting the group's token. Holding
// the handle authorizes adding and managing members.
//
// Members of different groups never interact even at the same transport
// address: endpoint registration, lookup, and multicast are all keyed by
// (flow label, address). The Network-wide event bus and metrics registry
// are shared across groups, except for the per-group forwarding counters
// and the transport's per-group "transport.group.*" metrics.
type Group struct {
	net      *Network
	name     string
	gid      uint64
	token    string
	flow     *transport.Flow
	counters *metrics.Counters

	mu      sync.Mutex
	members map[string]*Member
}

// Name returns the group's name.
func (g *Group) Name() string { return g.name }

// FlowLabel returns the group's compact wire flow label (0 for the
// default group). The label is the FNV-1a hash of the name, computed
// identically on every process, so cooperating processes derive the same
// label from the same group name with no coordination.
func (g *Group) FlowLabel() uint64 { return g.gid }

// Protected reports whether the group requires a token.
func (g *Group) Protected() bool { return g.token != "" }

// checkToken compares in constant time so the control plane does not
// leak token prefixes through timing.
func (g *Group) checkToken(token string) bool {
	if g.token == "" {
		return true
	}
	return subtle.ConstantTimeCompare([]byte(g.token), []byte(token)) == 1
}

// Create starts the first member of this group's in-process overlay at addr.
func (g *Group) Create(addr string, opts Options) (*Member, error) {
	return g.start(addr, "", opts)
}

// Join adds an in-process member at addr, entering the group's overlay
// through the existing member at via.
func (g *Group) Join(addr, via string, opts Options) (*Member, error) {
	if via == "" {
		return nil, fmt.Errorf("camcast: join requires a bootstrap address")
	}
	return g.start(addr, via, opts)
}

func (g *Group) start(addr, via string, opts Options) (*Member, error) {
	cfg, err := buildConfig(opts)
	if err != nil {
		return nil, err
	}
	n := g.net
	n.mu.Lock()
	closed := n.closed
	n.mu.Unlock()
	if closed {
		return nil, errors.New("camcast: network closed")
	}
	g.mu.Lock()
	if _, ok := g.members[addr]; ok {
		g.mu.Unlock()
		return nil, fmt.Errorf("%w: %s", ErrMemberExists, addr)
	}
	g.mu.Unlock()

	m := &Member{net: n, grp: g, addr: addr}
	cfg.OnDeliver = func(d runtime.Delivery) {
		if opts.OnDeliver != nil {
			opts.OnDeliver(Message{ID: d.MsgID, From: d.Source.Addr, Payload: d.Payload, Hops: d.Hops})
		}
	}
	cfg.OnRequest = opts.OnRequest
	cfg.Counters = g.counters
	cfg.Bus = n.bus
	cfg.Metrics = n.reg
	if opts.Observer != nil {
		// Subscribe before the node exists so the observer sees the join
		// itself.
		m.stopObs = observe(n.bus, n.reg, addr, opts.Observer)
	}
	node, err := runtime.NewNode(g.flow, addr, cfg)
	if err != nil {
		m.stopObserver()
		return nil, err
	}
	m.node = node

	if via == "" {
		err = node.Bootstrap()
	} else {
		err = node.Join(via)
	}
	if err != nil {
		m.stopObserver()
		return nil, err
	}

	g.mu.Lock()
	if _, ok := g.members[addr]; ok {
		g.mu.Unlock()
		node.Stop()
		m.stopObserver()
		return nil, fmt.Errorf("%w: %s", ErrMemberExists, addr)
	}
	g.members[addr] = m
	g.mu.Unlock()
	return m, nil
}

// Member returns the group's live in-process member at addr.
func (g *Group) Member(addr string) (*Member, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	m, ok := g.members[addr]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoSuchMember, addr)
	}
	return m, nil
}

// Members returns the addresses of the group's live in-process members,
// unordered.
func (g *Group) Members() []string {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]string, 0, len(g.members))
	for addr := range g.members {
		out = append(out, addr)
	}
	return out
}

// Describe returns the group's full control-plane state, including the
// member list.
func (g *Group) Describe() GroupInfo {
	info := g.summary()
	info.Members = g.Members()
	sort.Strings(info.Members)
	return info
}

// summary is Describe without the member list — what group listings show.
func (g *Group) summary() GroupInfo {
	g.mu.Lock()
	count := len(g.members)
	g.mu.Unlock()
	return GroupInfo{
		Name:        g.name,
		Flow:        g.gid,
		Protected:   g.token != "",
		MemberCount: count,
		Counters:    g.CountersSnapshot(),
	}
}

// CountersSnapshot returns this group's forwarding-outcome counters.
func (g *Group) CountersSnapshot() CountersSnapshot {
	snap := g.counters.Snapshot()
	return CountersSnapshot{
		ForwardAcked:    snap[metrics.CounterForwardAcked],
		ForwardRetries:  snap[metrics.CounterForwardRetries],
		ForwardRepaired: snap[metrics.CounterForwardRepaired],
		ForwardLost:     snap[metrics.CounterForwardLost],
	}
}

// Settle drives this group's maintenance to convergence synchronously;
// see Network.Settle for the all-groups form.
func (g *Group) Settle(rounds int) {
	for r := 0; r < rounds; r++ {
		for _, m := range g.snapshot() {
			m.node.StabilizeOnce()
		}
		for _, m := range g.snapshot() {
			m.node.FixAll()
		}
	}
}

// Neighbors reports every live in-process member's ring neighborhood,
// sorted by ring identifier.
func (g *Group) Neighbors() []NeighborInfo {
	members := g.snapshot()
	out := make([]NeighborInfo, 0, len(members))
	for _, m := range members {
		ni := m.Neighbors()
		if g.gid != transport.DefaultGroup {
			ni.Group = g.name
		}
		out = append(out, ni)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

func (g *Group) snapshot() []*Member {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]*Member, 0, len(g.members))
	for _, m := range g.members {
		out = append(out, m)
	}
	return out
}

func (g *Group) remove(addr string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	delete(g.members, addr)
}

// CreateGroup registers a new named group and returns its handle. The
// name maps deterministically to the group's wire flow label; two names
// hashing to the same label is rejected as a collision (astronomically
// unlikely with FNV-1a 64, but checked rather than silently merged).
// The name "default" is reserved for the Network's default group.
func (n *Network) CreateGroup(name string, opts GroupOptions) (*Group, error) {
	if name == "" {
		return nil, errors.New("camcast: group name must not be empty")
	}
	gid := transport.GroupLabel(name)
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return nil, errors.New("camcast: network closed")
	}
	if _, ok := n.groups[name]; ok {
		return nil, fmt.Errorf("%w: %s", ErrGroupExists, name)
	}
	if other, ok := n.flows[gid]; ok {
		return nil, fmt.Errorf("camcast: group %q collides with %q on flow label %d", name, other.name, gid)
	}
	g := n.newGroup(name, gid, opts.Token)
	n.groups[name] = g
	n.flows[gid] = g
	return g, nil
}

// newGroup builds a group and its transport flow; callers hold n.mu (or
// are NewNetwork, before the Network escapes).
func (n *Network) newGroup(name string, gid uint64, token string) *Group {
	n.tr.LabelGroup(gid, name)
	return &Group{
		net:      n,
		name:     name,
		gid:      gid,
		token:    token,
		flow:     n.tr.Flow(gid),
		counters: &metrics.Counters{},
		members:  make(map[string]*Member),
	}
}

// JoinGroup returns the handle of an existing group. A protected group
// requires its token; the comparison is constant-time. Joining the group
// as a member is then Group.Join (or Group.ListenOn for TCP members).
func (n *Network) JoinGroup(name, token string) (*Group, error) {
	n.mu.Lock()
	g, ok := n.groups[name]
	n.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoSuchGroup, name)
	}
	if !g.checkToken(token) {
		return nil, fmt.Errorf("%w: %s", ErrBadToken, name)
	}
	return g, nil
}

// DefaultGroup returns the Network's always-present open group — the one
// Network.Create and Network.Join delegate to. Its flow label is 0.
func (n *Network) DefaultGroup() *Group { return n.def }

// Groups returns a control-plane summary of every group, sorted by name.
// Summaries omit member lists; use JoinGroup + Describe for those.
func (n *Network) Groups() []GroupInfo {
	n.mu.Lock()
	groups := make([]*Group, 0, len(n.groups))
	for _, g := range n.groups {
		groups = append(groups, g)
	}
	n.mu.Unlock()
	out := make([]GroupInfo, 0, len(groups))
	for _, g := range groups {
		out = append(out, g.summary())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
