// Package camcast is a capacity-aware overlay multicast library implementing
// the two systems of "Resilient Capacity-Aware Multicast Based on Overlay
// Networks" (Zhang, Chen, Ling, Chow — ICDCS 2005): CAM-Chord and
// CAM-Koorde.
//
// Every group member declares a capacity c — the maximum number of direct
// children it is willing to forward multicast traffic to, typically derived
// from its upload bandwidth. The library builds a dedicated structured
// overlay per multicast group and disseminates every message along an
// implicit, roughly balanced, degree-varying tree rooted at the sender: no
// explicit tree state exists anywhere, any member can send, members may join
// and leave freely, and no member ever forwards to more children than its
// capacity allows.
//
// # Quick start
//
//	net := camcast.NewNetwork()
//	defer net.Close()
//
//	alice, _ := net.Create("alice", camcast.Options{
//		Capacity:  6,
//		OnDeliver: func(m camcast.Message) { fmt.Printf("%s got %q\n", "alice", m.Payload) },
//	})
//	bob, _ := net.Join("bob", "alice", camcast.Options{Capacity: 4, OnDeliver: ...})
//
//	net.Settle()                      // let maintenance converge
//	_, _ = bob.MulticastContext(ctx, []byte("hi")) // any member can send
//
// Network here is an in-process simulated transport (internal/transport)
// with injectable latency, loss and partitions; the protocol code in
// internal/runtime is transport-agnostic.
//
// # Groups
//
// A Network hosts any number of named multicast groups, each an isolated
// overlay with its own members, forwarding counters, and compact wire
// flow label. Create and Join operate on the always-present default
// group; CreateGroup/JoinGroup return *Group handles for tenant-style
// multi-group use, optionally protected by a token:
//
//	tenant, _ := net.CreateGroup("tenant-7", camcast.GroupOptions{Token: "s3cret"})
//	root, _ := tenant.Create("t7-root", camcast.Options{Capacity: 6})
//
// TCP members of many groups can share one process, one listener, and —
// because every frame carries its group's flow label — one TCP
// connection per peer pair: see TCPHost and Group.ListenOn. The same
// lifecycle is scriptable over HTTP at /debug/camcast/groups (see
// Network.DebugHandler).
//
// For the paper's large-scale measurements (100,000-node trees, the
// Figure 6-11 experiment suite) see the static simulator under
// internal/experiments and the cmd/camfigs and cmd/camsim commands.
package camcast

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"camcast/internal/obsv"
	"camcast/internal/ring"
	"camcast/internal/runtime"
	"camcast/internal/trace"
	"camcast/internal/transport"
)

// Protocol selects which CAM system a member speaks. All members of one
// group must use the same protocol.
type Protocol int

// Supported protocols.
const (
	// CAMChord extends Chord with capacity-dependent neighbor sets and
	// segment-splitting multicast (paper Section 3). Best for small node
	// capacities and moderate churn.
	CAMChord Protocol = iota + 1
	// CAMKoorde embeds a de Bruijn-style graph with exactly c neighbors
	// per node and flooding multicast with duplicate suppression (paper
	// Section 4). Best for large node capacities and heavy churn.
	CAMKoorde
)

// String implements fmt.Stringer.
func (p Protocol) String() string {
	switch p {
	case CAMChord:
		return "CAM-Chord"
	case CAMKoorde:
		return "CAM-Koorde"
	default:
		return fmt.Sprintf("Protocol(%d)", int(p))
	}
}

// Message is one multicast delivery handed to the application.
//
// Payload is borrowed from the network layer: on the zero-copy path it
// aliases a pooled receive buffer that is reused for other traffic as soon
// as the OnDeliver callback returns. Use it freely during the callback;
// copy it (bytes.Clone) if the application keeps it longer.
type Message struct {
	ID      string // globally unique message identifier
	From    string // address of the originating member
	Payload []byte
	Hops    int // overlay hops travelled from the source
}

// Stats are cumulative per-member protocol counters.
type Stats = runtime.Stats

// Event is one protocol event published on a group's live event stream —
// joins, leaves, forwards, repairs, deliveries. See Options.Observer,
// Network.Observe, and the /debug/camcast/events endpoint.
type Event = obsv.Event

// EventKind classifies an Event.
type EventKind = obsv.Kind

// Event kinds.
const (
	EventJoin      = obsv.KindJoin
	EventLeave     = obsv.KindLeave
	EventDeliver   = obsv.KindDeliver
	EventForward   = obsv.KindForward
	EventDuplicate = obsv.KindDuplicate
	EventRepair    = obsv.KindRepair
	EventLookup    = obsv.KindLookup
	EventRetry     = obsv.KindRetry
	EventLost      = obsv.KindLost
)

// MetricsSnapshot is a point-in-time copy of a group's metrics registry:
// counters, gauges, and histogram summaries keyed by metric name (for
// example "transport.rpc.latency_seconds" or "runtime.forward.acked").
type MetricsSnapshot = obsv.Snapshot

// Node is the unified member API satisfied by both member kinds: the
// in-process *Member and the socket-backed *TCPMember. Code that drives a
// member — sending, probing, inspecting, departing — can take a Node and
// work with either.
type Node interface {
	// Addr returns the member's transport address.
	Addr() string
	// ID returns the member's ring identifier.
	ID() uint64
	// Capacity returns the member's multicast capacity c_x.
	Capacity() int
	// MulticastContext sends payload to every group member (including
	// this one) and returns the message ID; a canceled context abandons
	// outstanding child sends. Multicast is the context-less form.
	//
	// Deprecated: Multicast is kept as a thin wrapper for existing
	// callers; new code should pass a context via MulticastContext.
	Multicast(payload []byte) (string, error)
	MulticastContext(ctx context.Context, payload []byte) (string, error)
	// RequestContext sends a unicast request to the member at addr; the
	// remote member must have configured Options.OnRequest. Request is
	// the context-less form.
	//
	// Deprecated: Request is kept as a thin wrapper for existing
	// callers; new code should pass a context via RequestContext.
	Request(addr string, payload []byte) ([]byte, error)
	RequestContext(ctx context.Context, addr string, payload []byte) ([]byte, error)
	// Stats returns a snapshot of the member's protocol counters.
	Stats() Stats
	// Neighbors reports the member's current ring neighborhood.
	Neighbors() NeighborInfo
	// Leave departs the group gracefully.
	Leave() error
}

var (
	_ Node = (*Member)(nil)
	_ Node = (*TCPMember)(nil)
)

// NeighborInfo is one member's view of its ring neighborhood, as served
// by the /debug/camcast/neighbors endpoint.
type NeighborInfo struct {
	Addr        string   `json:"addr"`
	ID          uint64   `json:"id"`
	Capacity    int      `json:"capacity"`
	Group       string   `json:"group,omitempty"` // set in multi-group aggregates; empty for the default group
	Predecessor string   `json:"predecessor,omitempty"`
	Successors  []string `json:"successors"`
}

func neighborInfo(node *runtime.Node) NeighborInfo {
	self := node.Self()
	ni := NeighborInfo{Addr: self.Addr, ID: self.ID, Capacity: node.Capacity()}
	if pred, ok := node.Predecessor(); ok {
		ni.Predecessor = pred.Addr
	}
	succs := node.SuccessorList()
	ni.Successors = make([]string, 0, len(succs))
	for _, s := range succs {
		ni.Successors = append(ni.Successors, s.Addr)
	}
	return ni
}

// observe subscribes fn to bus, filtered to events emitted at node addr
// ("" keeps everything), and drains on a dedicated goroutine so the
// protocol's emit path never blocks on the callback. The returned stop
// function detaches fn, waits for the drain goroutine to finish, and
// credits any events a slow fn missed to the registry's
// "runtime.events.subscriber_drops" counter.
func observe(bus *obsv.Bus, reg *obsv.Registry, addr string, fn func(Event)) (stop func()) {
	sub := bus.Subscribe(1024)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			e, ok := sub.Next()
			if !ok {
				return
			}
			if addr == "" || e.Node == addr {
				fn(e)
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			sub.Close()
			<-done
			if d := sub.Dropped(); d > 0 {
				reg.Counter(obsv.MetricEventsDropped).Add(d)
			}
		})
	}
}

// Options configures a member.
type Options struct {
	// Protocol defaults to CAMChord.
	Protocol Protocol
	// Capacity is c_x, the maximum number of direct multicast children
	// (>= 2 for CAMChord, >= 4 for CAMKoorde). If zero it is derived from
	// UploadKbps/LinkKbps, or defaults to 8.
	Capacity int
	// UploadKbps and LinkKbps derive Capacity = ceil(UploadKbps/LinkKbps)
	// when Capacity is zero, mirroring the paper's c_x = ceil(B_x/p).
	UploadKbps float64
	LinkKbps   float64
	// Bits is the identifier-space width (default 32).
	Bits uint
	// OnDeliver receives every multicast message, including the member's
	// own. Called synchronously from protocol goroutines; keep it fast.
	// The Message's Payload is only valid for the duration of the call —
	// copy it to retain it (see Message).
	OnDeliver func(Message)
	// OnRequest serves unicast requests other members send with
	// Member.Request — the escape hatch layers like reliable delivery use
	// for retransmission. nil rejects such requests.
	OnRequest func(from string, payload []byte) ([]byte, error)
	// Stabilize and Fix set the background maintenance cadence. Zero means
	// the Network's defaults (20ms in-process). Negative disables
	// background maintenance; drive it explicitly with Network.Settle.
	Stabilize time.Duration
	Fix       time.Duration

	// ForwardRetries is how many times a failed child send is retried
	// (re-resolving the child between attempts) before the orphaned
	// segment is repaired or reported lost. Zero means the default (2);
	// negative disables retries.
	ForwardRetries int
	// ForwardTimeout is the per-child send deadline during multicast
	// fan-out. Zero means the default (2s); negative disables deadlines.
	ForwardTimeout time.Duration
	// ForwardParallel bounds concurrent in-flight child sends per
	// fan-out. Zero means the default (8); negative serializes sends.
	ForwardParallel int
	// RetryBackoff is the delay before the first retry; each further
	// retry doubles it, with jitter. Zero means the default (5ms);
	// negative disables backoff.
	RetryBackoff time.Duration

	// SuspicionWindow is how long a peer that failed an RPC with an
	// unreachability error is skipped as a routing detour in lookups. It
	// also tunes the TCP transport's failure detector for ListenTCP
	// members. Zero keeps the defaults (1s routing suspicion, 2s TCP
	// detector); negative disables routing suspicion.
	SuspicionWindow time.Duration
	// DialTimeout bounds TCP connection establishment (ListenTCP members
	// only; in-process members ignore it). Zero keeps the transport
	// default (2s).
	DialTimeout time.Duration
	// RPCTimeout bounds each TCP request/response exchange so a hung peer
	// cannot wedge a pooled connection (ListenTCP members only). Zero
	// keeps the transport default (10s).
	RPCTimeout time.Duration
	// Codec selects the TCP wire encoding for payloads this member sends
	// (ListenTCP members only): "binary" (default) uses the compact
	// tagged encoding, "gob" forces the encoding/gob fallback for A/B
	// comparison. Peers decode by tag, so members with different codecs
	// interoperate.
	Codec string
	// GroupBacklogLimit bounds, per group and per connection, the bytes
	// of unflushed outbound requests (ListenTCP and Group.Listen members
	// only — members added to a shared host with Group.ListenOn inherit
	// the host's HostOptions.GroupBacklogLimit). Zero disables the quota.
	GroupBacklogLimit int

	// Tracer optionally records protocol events.
	Tracer *trace.Tracer

	// Observer, if set, receives this member's protocol events (joins,
	// forwards, repairs, deliveries) as they happen. Delivery is
	// asynchronous through a bounded ring drained by a dedicated
	// goroutine: a slow Observer misses events rather than stalling the
	// protocol, and the misses are counted in the
	// "runtime.events.subscriber_drops" metric. The observer detaches
	// when the member leaves, crashes, or its network closes.
	Observer func(Event)
}

// ErrMemberExists reports a Create/Join with an address already in use.
var ErrMemberExists = errors.New("camcast: member address already in use")

// ErrNoSuchMember reports an operation on an unknown member address.
var ErrNoSuchMember = errors.New("camcast: no such member")

const (
	defaultBits      = 32
	defaultCapacity  = 8
	defaultStabilize = 20 * time.Millisecond
	defaultFix       = 20 * time.Millisecond
)

// Network is an in-process multicast fabric: a simulated transport plus
// the groups — and their members — running on it. A fresh Network has one
// open group named "default" that Create/Join/Member/Members operate on;
// CreateGroup adds further isolated groups multiplexed over the same
// transport. It is safe for concurrent use.
type Network struct {
	tr  *transport.Network
	bus *obsv.Bus
	reg *obsv.Registry
	def *Group // the always-present "default" group, flow label 0

	mu     sync.Mutex
	groups map[string]*Group // by name
	flows  map[uint64]*Group // by flow label, to reject hash collisions
	closed bool
}

// NewNetwork creates an empty in-process network with its default group.
func NewNetwork() *Network {
	n := &Network{
		tr:     transport.NewNetwork(1),
		bus:    obsv.NewBus(),
		reg:    obsv.NewRegistry(),
		groups: make(map[string]*Group),
		flows:  make(map[uint64]*Group),
	}
	n.tr.Instrument(n.reg)
	n.def = n.newGroup("default", transport.DefaultGroup, "")
	n.groups["default"] = n.def
	n.flows[transport.DefaultGroup] = n.def
	return n
}

// Transport exposes the underlying simulated transport for fault injection
// (latency, loss, partitions, fault plans).
func (n *Network) Transport() *transport.Network { return n.tr }

// CountersSnapshot is a forwarding-outcome tally: per group from
// Group.CountersSnapshot, network-wide (summed over every group) from
// Network.CountersSnapshot.
type CountersSnapshot struct {
	ForwardAcked    uint64 `json:"forward_acked"`    // child sends acknowledged
	ForwardRetries  uint64 `json:"forward_retries"`  // send retries after a failure
	ForwardRepaired uint64 `json:"forward_repaired"` // orphan segments handed to a live node
	ForwardLost     uint64 `json:"forward_lost"`     // segments abandoned after repair failed
}

// CountersSnapshot returns the forwarding-outcome counters summed across
// every group of the network.
func (n *Network) CountersSnapshot() CountersSnapshot {
	var total CountersSnapshot
	for _, g := range n.groupSnapshot() {
		snap := g.CountersSnapshot()
		total.ForwardAcked += snap.ForwardAcked
		total.ForwardRetries += snap.ForwardRetries
		total.ForwardRepaired += snap.ForwardRepaired
		total.ForwardLost += snap.ForwardLost
	}
	return total
}

// Metrics returns a point-in-time snapshot of the group's metrics
// registry: RPC latencies and in-flight counts, flush batch sizes,
// forward outcomes, lookup hop counts, and multicast tree timings.
func (n *Network) Metrics() MetricsSnapshot { return n.reg.Snapshot() }

// Observe attaches fn to the group's live event stream — every member's
// events, in emit order — and returns a function that detaches it. A slow
// fn misses events rather than stalling the protocol; see
// Options.Observer for per-member subscriptions.
func (n *Network) Observe(fn func(Event)) (stop func()) {
	return observe(n.bus, n.reg, "", fn)
}

// Neighbors reports every live member's ring neighborhood across all
// groups, sorted by ring identifier. Members outside the default group
// carry their group's name in NeighborInfo.Group.
func (n *Network) Neighbors() []NeighborInfo {
	var out []NeighborInfo
	for _, g := range n.groupSnapshot() {
		out = append(out, g.Neighbors()...)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].ID != out[j].ID {
			return out[i].ID < out[j].ID
		}
		return out[i].Group < out[j].Group
	})
	return out
}

// Create starts the first member of the default group at addr; see
// Group.Create for named groups.
func (n *Network) Create(addr string, opts Options) (*Member, error) {
	return n.def.Create(addr, opts)
}

// Join adds a member of the default group at addr, entering through the
// existing member at via; see Group.Join for named groups.
func (n *Network) Join(addr, via string, opts Options) (*Member, error) {
	return n.def.Join(addr, via, opts)
}

// Member returns the default group's live member at addr.
func (n *Network) Member(addr string) (*Member, error) {
	return n.def.Member(addr)
}

// Members returns the addresses of the default group's live members,
// unordered.
func (n *Network) Members() []string {
	return n.def.Members()
}

// Settle drives maintenance to convergence synchronously: the given number
// of global stabilize rounds, each followed by a full routing-table refresh
// at every member of every group. Tests and batch tools call this instead
// of sleeping.
func (n *Network) Settle(rounds int) {
	for r := 0; r < rounds; r++ {
		for _, g := range n.groupSnapshot() {
			g.Settle(1)
		}
	}
}

func (n *Network) groupSnapshot() []*Group {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]*Group, 0, len(n.groups))
	for _, g := range n.groups {
		out = append(out, g)
	}
	return out
}

// Close stops every member of every group and shuts the network down.
func (n *Network) Close() {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.closed = true
	groups := make([]*Group, 0, len(n.groups))
	for _, g := range n.groups {
		groups = append(groups, g)
	}
	n.mu.Unlock()
	for _, g := range groups {
		g.mu.Lock()
		members := make([]*Member, 0, len(g.members))
		for _, m := range g.members {
			members = append(members, m)
		}
		g.members = make(map[string]*Member)
		g.mu.Unlock()
		for _, m := range members {
			m.node.Stop()
			m.stopObserver()
		}
	}
}

// Member is one live in-process group member.
type Member struct {
	net     *Network
	grp     *Group
	addr    string
	node    *runtime.Node
	stopObs func() // detaches Options.Observer; nil when unset
}

// Group returns the name of the group the member belongs to ("default"
// for members started with Network.Create/Join).
func (m *Member) Group() string { return m.grp.name }

func (m *Member) stopObserver() {
	if m.stopObs != nil {
		m.stopObs()
	}
}

// Addr returns the member's transport address.
func (m *Member) Addr() string { return m.addr }

// ID returns the member's ring identifier.
func (m *Member) ID() uint64 { return m.node.Self().ID }

// Capacity returns the member's multicast capacity c_x.
func (m *Member) Capacity() int { return m.node.Capacity() }

// Multicast sends payload to every group member (including this one) and
// returns the message ID.
//
// Deprecated: use MulticastContext. Multicast remains a thin
// background-context wrapper.
func (m *Member) Multicast(payload []byte) (string, error) {
	return m.node.Multicast(payload)
}

// MulticastContext is Multicast under a context: cancellation abandons
// outstanding child sends without counting them as losses or triggering
// repair — the caller gave up, the group did not fail.
func (m *Member) MulticastContext(ctx context.Context, payload []byte) (string, error) {
	return m.node.MulticastContext(ctx, payload)
}

// Leave departs gracefully, telling ring neighbors to splice the member out.
func (m *Member) Leave() error {
	err := m.node.Leave()
	m.grp.remove(m.addr)
	m.stopObserver()
	return err
}

// Crash stops the member without any notification, as a real failure would.
func (m *Member) Crash() {
	m.node.Stop()
	m.grp.remove(m.addr)
	m.stopObserver()
}

// Stats returns a snapshot of the member's protocol counters.
func (m *Member) Stats() Stats { return m.node.Stats() }

// Neighbors reports the member's current ring neighborhood.
func (m *Member) Neighbors() NeighborInfo { return neighborInfo(m.node) }

// Observe attaches fn to this member's events only; see Network.Observe
// for the whole group's stream.
func (m *Member) Observe(fn func(Event)) (stop func()) {
	return observe(m.net.bus, m.net.reg, m.addr, fn)
}

// Request sends a unicast request to the member at addr and returns its
// response; the remote member must have configured Options.OnRequest.
//
// Deprecated: use RequestContext. Request remains a thin
// background-context wrapper.
func (m *Member) Request(addr string, payload []byte) ([]byte, error) {
	return m.node.Request(addr, payload)
}

// RequestContext is Request under a context, which bounds or cancels the
// round-trip.
func (m *Member) RequestContext(ctx context.Context, addr string, payload []byte) ([]byte, error) {
	return m.node.RequestContext(ctx, addr, payload)
}

func buildConfig(opts Options) (runtime.Config, error) {
	bits := opts.Bits
	if bits == 0 {
		bits = defaultBits
	}
	space, err := ring.NewSpace(bits)
	if err != nil {
		return runtime.Config{}, err
	}

	capacity := opts.Capacity
	if capacity == 0 && opts.UploadKbps > 0 && opts.LinkKbps > 0 {
		capacity = int(math.Ceil(opts.UploadKbps / opts.LinkKbps))
	}
	if capacity == 0 {
		capacity = defaultCapacity
	}

	var mode runtime.Mode
	switch opts.Protocol {
	case CAMChord, 0:
		mode = runtime.ModeCAMChord
	case CAMKoorde:
		mode = runtime.ModeCAMKoorde
	default:
		return runtime.Config{}, fmt.Errorf("camcast: unknown protocol %v", opts.Protocol)
	}
	if mode == runtime.ModeCAMKoorde && capacity < 4 {
		return runtime.Config{}, fmt.Errorf("camcast: CAM-Koorde needs capacity >= 4, got %d", capacity)
	}
	if capacity < 2 {
		return runtime.Config{}, fmt.Errorf("camcast: capacity %d must be >= 2", capacity)
	}

	stabilize := opts.Stabilize
	if stabilize == 0 {
		stabilize = defaultStabilize
	}
	if stabilize < 0 {
		stabilize = 0 // disabled; drive with Network.Settle
	}
	fix := opts.Fix
	if fix == 0 {
		fix = defaultFix
	}
	if fix < 0 {
		fix = 0
	}

	return runtime.Config{
		Space:           space,
		Mode:            mode,
		Capacity:        capacity,
		StabilizeEvery:  stabilize,
		FixEvery:        fix,
		ForwardRetries:  opts.ForwardRetries,
		ForwardTimeout:  opts.ForwardTimeout,
		ForwardParallel: opts.ForwardParallel,
		RetryBackoff:    opts.RetryBackoff,
		SuspicionWindow: opts.SuspicionWindow,
		Tracer:          opts.Tracer,
	}, nil
}
