// Package camcast is a capacity-aware overlay multicast library implementing
// the two systems of "Resilient Capacity-Aware Multicast Based on Overlay
// Networks" (Zhang, Chen, Ling, Chow — ICDCS 2005): CAM-Chord and
// CAM-Koorde.
//
// Every group member declares a capacity c — the maximum number of direct
// children it is willing to forward multicast traffic to, typically derived
// from its upload bandwidth. The library builds a dedicated structured
// overlay per multicast group and disseminates every message along an
// implicit, roughly balanced, degree-varying tree rooted at the sender: no
// explicit tree state exists anywhere, any member can send, members may join
// and leave freely, and no member ever forwards to more children than its
// capacity allows.
//
// # Quick start
//
//	net := camcast.NewNetwork()
//	defer net.Close()
//
//	alice, _ := net.Create("alice", camcast.Options{
//		Capacity:  6,
//		OnDeliver: func(m camcast.Message) { fmt.Printf("%s got %q\n", "alice", m.Payload) },
//	})
//	bob, _ := net.Join("bob", "alice", camcast.Options{Capacity: 4, OnDeliver: ...})
//
//	net.Settle()                      // let maintenance converge
//	_, _ = bob.Multicast([]byte("hi")) // any member can send
//
// Network here is an in-process simulated transport (internal/transport)
// with injectable latency, loss and partitions; the protocol code in
// internal/runtime is transport-agnostic.
//
// For the paper's large-scale measurements (100,000-node trees, the
// Figure 6-11 experiment suite) see the static simulator under
// internal/experiments and the cmd/camfigs and cmd/camsim commands.
package camcast

import (
	"context"
	"errors"
	"fmt"
	"math"
	"net/http"
	"sort"
	"sync"
	"time"

	"camcast/internal/metrics"
	"camcast/internal/obsv"
	"camcast/internal/ring"
	"camcast/internal/runtime"
	"camcast/internal/trace"
	"camcast/internal/transport"
)

// Protocol selects which CAM system a member speaks. All members of one
// group must use the same protocol.
type Protocol int

// Supported protocols.
const (
	// CAMChord extends Chord with capacity-dependent neighbor sets and
	// segment-splitting multicast (paper Section 3). Best for small node
	// capacities and moderate churn.
	CAMChord Protocol = iota + 1
	// CAMKoorde embeds a de Bruijn-style graph with exactly c neighbors
	// per node and flooding multicast with duplicate suppression (paper
	// Section 4). Best for large node capacities and heavy churn.
	CAMKoorde
)

// String implements fmt.Stringer.
func (p Protocol) String() string {
	switch p {
	case CAMChord:
		return "CAM-Chord"
	case CAMKoorde:
		return "CAM-Koorde"
	default:
		return fmt.Sprintf("Protocol(%d)", int(p))
	}
}

// Message is one multicast delivery handed to the application.
//
// Payload is borrowed from the network layer: on the zero-copy path it
// aliases a pooled receive buffer that is reused for other traffic as soon
// as the OnDeliver callback returns. Use it freely during the callback;
// copy it (bytes.Clone) if the application keeps it longer.
type Message struct {
	ID      string // globally unique message identifier
	From    string // address of the originating member
	Payload []byte
	Hops    int // overlay hops travelled from the source
}

// Stats are cumulative per-member protocol counters.
type Stats = runtime.Stats

// Event is one protocol event published on a group's live event stream —
// joins, leaves, forwards, repairs, deliveries. See Options.Observer,
// Network.Observe, and the /debug/camcast/events endpoint.
type Event = obsv.Event

// EventKind classifies an Event.
type EventKind = obsv.Kind

// Event kinds.
const (
	EventJoin      = obsv.KindJoin
	EventLeave     = obsv.KindLeave
	EventDeliver   = obsv.KindDeliver
	EventForward   = obsv.KindForward
	EventDuplicate = obsv.KindDuplicate
	EventRepair    = obsv.KindRepair
	EventLookup    = obsv.KindLookup
	EventRetry     = obsv.KindRetry
	EventLost      = obsv.KindLost
)

// MetricsSnapshot is a point-in-time copy of a group's metrics registry:
// counters, gauges, and histogram summaries keyed by metric name (for
// example "transport.rpc.latency_seconds" or "runtime.forward.acked").
type MetricsSnapshot = obsv.Snapshot

// Node is the unified member API satisfied by both member kinds: the
// in-process *Member and the socket-backed *TCPMember. Code that drives a
// member — sending, probing, inspecting, departing — can take a Node and
// work with either.
type Node interface {
	// Addr returns the member's transport address.
	Addr() string
	// ID returns the member's ring identifier.
	ID() uint64
	// Capacity returns the member's multicast capacity c_x.
	Capacity() int
	// Multicast sends payload to every group member (including this one)
	// and returns the message ID. MulticastContext is the cancellable
	// form: a canceled context abandons outstanding child sends.
	Multicast(payload []byte) (string, error)
	MulticastContext(ctx context.Context, payload []byte) (string, error)
	// Request sends a unicast request to the member at addr; the remote
	// member must have configured Options.OnRequest. RequestContext is
	// the cancellable form.
	Request(addr string, payload []byte) ([]byte, error)
	RequestContext(ctx context.Context, addr string, payload []byte) ([]byte, error)
	// Stats returns a snapshot of the member's protocol counters.
	Stats() Stats
	// Neighbors reports the member's current ring neighborhood.
	Neighbors() NeighborInfo
	// Leave departs the group gracefully.
	Leave() error
}

var (
	_ Node = (*Member)(nil)
	_ Node = (*TCPMember)(nil)
)

// NeighborInfo is one member's view of its ring neighborhood, as served
// by the /debug/camcast/neighbors endpoint.
type NeighborInfo struct {
	Addr        string   `json:"addr"`
	ID          uint64   `json:"id"`
	Capacity    int      `json:"capacity"`
	Predecessor string   `json:"predecessor,omitempty"`
	Successors  []string `json:"successors"`
}

func neighborInfo(node *runtime.Node) NeighborInfo {
	self := node.Self()
	ni := NeighborInfo{Addr: self.Addr, ID: self.ID, Capacity: node.Capacity()}
	if pred, ok := node.Predecessor(); ok {
		ni.Predecessor = pred.Addr
	}
	succs := node.SuccessorList()
	ni.Successors = make([]string, 0, len(succs))
	for _, s := range succs {
		ni.Successors = append(ni.Successors, s.Addr)
	}
	return ni
}

// observe subscribes fn to bus, filtered to events emitted at node addr
// ("" keeps everything), and drains on a dedicated goroutine so the
// protocol's emit path never blocks on the callback. The returned stop
// function detaches fn, waits for the drain goroutine to finish, and
// credits any events a slow fn missed to the registry's
// "runtime.events.subscriber_drops" counter.
func observe(bus *obsv.Bus, reg *obsv.Registry, addr string, fn func(Event)) (stop func()) {
	sub := bus.Subscribe(1024)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			e, ok := sub.Next()
			if !ok {
				return
			}
			if addr == "" || e.Node == addr {
				fn(e)
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			sub.Close()
			<-done
			if d := sub.Dropped(); d > 0 {
				reg.Counter(obsv.MetricEventsDropped).Add(d)
			}
		})
	}
}

// Options configures a member.
type Options struct {
	// Protocol defaults to CAMChord.
	Protocol Protocol
	// Capacity is c_x, the maximum number of direct multicast children
	// (>= 2 for CAMChord, >= 4 for CAMKoorde). If zero it is derived from
	// UploadKbps/LinkKbps, or defaults to 8.
	Capacity int
	// UploadKbps and LinkKbps derive Capacity = ceil(UploadKbps/LinkKbps)
	// when Capacity is zero, mirroring the paper's c_x = ceil(B_x/p).
	UploadKbps float64
	LinkKbps   float64
	// Bits is the identifier-space width (default 32).
	Bits uint
	// OnDeliver receives every multicast message, including the member's
	// own. Called synchronously from protocol goroutines; keep it fast.
	// The Message's Payload is only valid for the duration of the call —
	// copy it to retain it (see Message).
	OnDeliver func(Message)
	// OnRequest serves unicast requests other members send with
	// Member.Request — the escape hatch layers like reliable delivery use
	// for retransmission. nil rejects such requests.
	OnRequest func(from string, payload []byte) ([]byte, error)
	// Stabilize and Fix set the background maintenance cadence. Zero means
	// the Network's defaults (20ms in-process). Negative disables
	// background maintenance; drive it explicitly with Network.Settle.
	Stabilize time.Duration
	Fix       time.Duration

	// ForwardRetries is how many times a failed child send is retried
	// (re-resolving the child between attempts) before the orphaned
	// segment is repaired or reported lost. Zero means the default (2);
	// negative disables retries.
	ForwardRetries int
	// ForwardTimeout is the per-child send deadline during multicast
	// fan-out. Zero means the default (2s); negative disables deadlines.
	ForwardTimeout time.Duration
	// ForwardParallel bounds concurrent in-flight child sends per
	// fan-out. Zero means the default (8); negative serializes sends.
	ForwardParallel int
	// RetryBackoff is the delay before the first retry; each further
	// retry doubles it, with jitter. Zero means the default (5ms);
	// negative disables backoff.
	RetryBackoff time.Duration

	// SuspicionWindow is how long a peer that failed an RPC with an
	// unreachability error is skipped as a routing detour in lookups. It
	// also tunes the TCP transport's failure detector for ListenTCP
	// members. Zero keeps the defaults (1s routing suspicion, 2s TCP
	// detector); negative disables routing suspicion.
	SuspicionWindow time.Duration
	// DialTimeout bounds TCP connection establishment (ListenTCP members
	// only; in-process members ignore it). Zero keeps the transport
	// default (2s).
	DialTimeout time.Duration
	// RPCTimeout bounds each TCP request/response exchange so a hung peer
	// cannot wedge a pooled connection (ListenTCP members only). Zero
	// keeps the transport default (10s).
	RPCTimeout time.Duration
	// Codec selects the TCP wire encoding for payloads this member sends
	// (ListenTCP members only): "binary" (default) uses the compact
	// tagged encoding, "gob" forces the encoding/gob fallback for A/B
	// comparison. Peers decode by tag, so members with different codecs
	// interoperate.
	Codec string

	// Tracer optionally records protocol events.
	Tracer *trace.Tracer

	// Observer, if set, receives this member's protocol events (joins,
	// forwards, repairs, deliveries) as they happen. Delivery is
	// asynchronous through a bounded ring drained by a dedicated
	// goroutine: a slow Observer misses events rather than stalling the
	// protocol, and the misses are counted in the
	// "runtime.events.subscriber_drops" metric. The observer detaches
	// when the member leaves, crashes, or its network closes.
	Observer func(Event)
}

// ErrMemberExists reports a Create/Join with an address already in use.
var ErrMemberExists = errors.New("camcast: member address already in use")

// ErrNoSuchMember reports an operation on an unknown member address.
var ErrNoSuchMember = errors.New("camcast: no such member")

const (
	defaultBits      = 32
	defaultCapacity  = 8
	defaultStabilize = 20 * time.Millisecond
	defaultFix       = 20 * time.Millisecond
)

// Network is an in-process multicast group: a simulated transport plus the
// members running on it. It is safe for concurrent use.
type Network struct {
	tr       *transport.Network
	counters *metrics.Counters
	bus      *obsv.Bus
	reg      *obsv.Registry

	mu      sync.Mutex
	members map[string]*Member
	closed  bool
}

// NewNetwork creates an empty in-process network.
func NewNetwork() *Network {
	n := &Network{
		tr:       transport.NewNetwork(1),
		counters: &metrics.Counters{},
		bus:      obsv.NewBus(),
		reg:      obsv.NewRegistry(),
		members:  make(map[string]*Member),
	}
	n.tr.Instrument(n.reg)
	return n
}

// Transport exposes the underlying simulated transport for fault injection
// (latency, loss, partitions, fault plans).
func (n *Network) Transport() *transport.Network { return n.tr }

// CountersSnapshot is the group-wide forwarding-outcome tally, aggregated
// across every member of a Network.
type CountersSnapshot struct {
	ForwardAcked    uint64 `json:"forward_acked"`    // child sends acknowledged
	ForwardRetries  uint64 `json:"forward_retries"`  // send retries after a failure
	ForwardRepaired uint64 `json:"forward_repaired"` // orphan segments handed to a live node
	ForwardLost     uint64 `json:"forward_lost"`     // segments abandoned after repair failed
}

// CountersSnapshot returns the group-wide forwarding-outcome counters.
func (n *Network) CountersSnapshot() CountersSnapshot {
	snap := n.counters.Snapshot()
	return CountersSnapshot{
		ForwardAcked:    snap[metrics.CounterForwardAcked],
		ForwardRetries:  snap[metrics.CounterForwardRetries],
		ForwardRepaired: snap[metrics.CounterForwardRepaired],
		ForwardLost:     snap[metrics.CounterForwardLost],
	}
}

// Counters returns the forwarding-outcome counters as a map keyed by the
// legacy metric names ("forward.acked", "forward.retries",
// "forward.repaired", "forward.lost").
//
// Deprecated: use CountersSnapshot, which returns typed fields.
func (n *Network) Counters() map[string]uint64 { return n.counters.Snapshot() }

// Metrics returns a point-in-time snapshot of the group's metrics
// registry: RPC latencies and in-flight counts, flush batch sizes,
// forward outcomes, lookup hop counts, and multicast tree timings.
func (n *Network) Metrics() MetricsSnapshot { return n.reg.Snapshot() }

// Observe attaches fn to the group's live event stream — every member's
// events, in emit order — and returns a function that detaches it. A slow
// fn misses events rather than stalling the protocol; see
// Options.Observer for per-member subscriptions.
func (n *Network) Observe(fn func(Event)) (stop func()) {
	return observe(n.bus, n.reg, "", fn)
}

// DebugHandler returns the group's live debug surface —
// /debug/camcast/{stats,neighbors,events} plus net/http/pprof — ready to
// mount on an HTTP server. cmd/camnode's -debug-addr flag serves exactly
// this.
func (n *Network) DebugHandler() http.Handler {
	return obsv.Debug{
		Registry:  n.reg,
		Bus:       n.bus,
		Neighbors: func() any { return n.Neighbors() },
		Extra:     func() any { return n.CountersSnapshot() },
	}.Handler()
}

// Neighbors reports every live member's ring neighborhood, sorted by ring
// identifier.
func (n *Network) Neighbors() []NeighborInfo {
	members := n.snapshot()
	out := make([]NeighborInfo, 0, len(members))
	for _, m := range members {
		out = append(out, m.Neighbors())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Create starts the first member of a fresh group at addr.
func (n *Network) Create(addr string, opts Options) (*Member, error) {
	return n.start(addr, "", opts)
}

// Join adds a member at addr, entering the group through the existing
// member at via.
func (n *Network) Join(addr, via string, opts Options) (*Member, error) {
	if via == "" {
		return nil, fmt.Errorf("camcast: join requires a bootstrap address")
	}
	return n.start(addr, via, opts)
}

func (n *Network) start(addr, via string, opts Options) (*Member, error) {
	cfg, err := buildConfig(opts)
	if err != nil {
		return nil, err
	}
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil, errors.New("camcast: network closed")
	}
	if _, ok := n.members[addr]; ok {
		n.mu.Unlock()
		return nil, fmt.Errorf("%w: %s", ErrMemberExists, addr)
	}
	n.mu.Unlock()

	m := &Member{net: n, addr: addr}
	cfg.OnDeliver = func(d runtime.Delivery) {
		if opts.OnDeliver != nil {
			opts.OnDeliver(Message{ID: d.MsgID, From: d.Source.Addr, Payload: d.Payload, Hops: d.Hops})
		}
	}
	cfg.OnRequest = opts.OnRequest
	cfg.Counters = n.counters
	cfg.Bus = n.bus
	cfg.Metrics = n.reg
	if opts.Observer != nil {
		// Subscribe before the node exists so the observer sees the join
		// itself.
		m.stopObs = observe(n.bus, n.reg, addr, opts.Observer)
	}
	node, err := runtime.NewNode(n.tr, addr, cfg)
	if err != nil {
		m.stopObserver()
		return nil, err
	}
	m.node = node

	if via == "" {
		err = node.Bootstrap()
	} else {
		err = node.Join(via)
	}
	if err != nil {
		m.stopObserver()
		return nil, err
	}

	n.mu.Lock()
	if _, ok := n.members[addr]; ok {
		n.mu.Unlock()
		node.Stop()
		m.stopObserver()
		return nil, fmt.Errorf("%w: %s", ErrMemberExists, addr)
	}
	n.members[addr] = m
	n.mu.Unlock()
	return m, nil
}

// Member returns the live member at addr.
func (n *Network) Member(addr string) (*Member, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	m, ok := n.members[addr]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoSuchMember, addr)
	}
	return m, nil
}

// Members returns the addresses of all live members, unordered.
func (n *Network) Members() []string {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]string, 0, len(n.members))
	for addr := range n.members {
		out = append(out, addr)
	}
	return out
}

// Settle drives maintenance to convergence synchronously: the given number
// of global stabilize rounds, each followed by a full routing-table refresh
// at every member. Tests and batch tools call this instead of sleeping.
func (n *Network) Settle(rounds int) {
	for r := 0; r < rounds; r++ {
		for _, m := range n.snapshot() {
			m.node.StabilizeOnce()
		}
		for _, m := range n.snapshot() {
			m.node.FixAll()
		}
	}
}

func (n *Network) snapshot() []*Member {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]*Member, 0, len(n.members))
	for _, m := range n.members {
		out = append(out, m)
	}
	return out
}

// Close stops every member and shuts the network down.
func (n *Network) Close() {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.closed = true
	members := make([]*Member, 0, len(n.members))
	for _, m := range n.members {
		members = append(members, m)
	}
	n.members = make(map[string]*Member)
	n.mu.Unlock()
	for _, m := range members {
		m.node.Stop()
		m.stopObserver()
	}
}

func (n *Network) remove(addr string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.members, addr)
}

// Member is one live group member.
type Member struct {
	net     *Network
	addr    string
	node    *runtime.Node
	stopObs func() // detaches Options.Observer; nil when unset
}

func (m *Member) stopObserver() {
	if m.stopObs != nil {
		m.stopObs()
	}
}

// Addr returns the member's transport address.
func (m *Member) Addr() string { return m.addr }

// ID returns the member's ring identifier.
func (m *Member) ID() uint64 { return m.node.Self().ID }

// Capacity returns the member's multicast capacity c_x.
func (m *Member) Capacity() int { return m.node.Capacity() }

// Multicast sends payload to every group member (including this one) and
// returns the message ID.
func (m *Member) Multicast(payload []byte) (string, error) {
	return m.node.Multicast(payload)
}

// MulticastContext is Multicast under a context: cancellation abandons
// outstanding child sends without counting them as losses or triggering
// repair — the caller gave up, the group did not fail.
func (m *Member) MulticastContext(ctx context.Context, payload []byte) (string, error) {
	return m.node.MulticastContext(ctx, payload)
}

// Leave departs gracefully, telling ring neighbors to splice the member out.
func (m *Member) Leave() error {
	err := m.node.Leave()
	m.net.remove(m.addr)
	m.stopObserver()
	return err
}

// Crash stops the member without any notification, as a real failure would.
func (m *Member) Crash() {
	m.node.Stop()
	m.net.remove(m.addr)
	m.stopObserver()
}

// Stats returns a snapshot of the member's protocol counters.
func (m *Member) Stats() Stats { return m.node.Stats() }

// Neighbors reports the member's current ring neighborhood.
func (m *Member) Neighbors() NeighborInfo { return neighborInfo(m.node) }

// Observe attaches fn to this member's events only; see Network.Observe
// for the whole group's stream.
func (m *Member) Observe(fn func(Event)) (stop func()) {
	return observe(m.net.bus, m.net.reg, m.addr, fn)
}

// Request sends a unicast request to the member at addr and returns its
// response; the remote member must have configured Options.OnRequest.
func (m *Member) Request(addr string, payload []byte) ([]byte, error) {
	return m.node.Request(addr, payload)
}

// RequestContext is Request under a context, which bounds or cancels the
// round-trip.
func (m *Member) RequestContext(ctx context.Context, addr string, payload []byte) ([]byte, error) {
	return m.node.RequestContext(ctx, addr, payload)
}

func buildConfig(opts Options) (runtime.Config, error) {
	bits := opts.Bits
	if bits == 0 {
		bits = defaultBits
	}
	space, err := ring.NewSpace(bits)
	if err != nil {
		return runtime.Config{}, err
	}

	capacity := opts.Capacity
	if capacity == 0 && opts.UploadKbps > 0 && opts.LinkKbps > 0 {
		capacity = int(math.Ceil(opts.UploadKbps / opts.LinkKbps))
	}
	if capacity == 0 {
		capacity = defaultCapacity
	}

	var mode runtime.Mode
	switch opts.Protocol {
	case CAMChord, 0:
		mode = runtime.ModeCAMChord
	case CAMKoorde:
		mode = runtime.ModeCAMKoorde
	default:
		return runtime.Config{}, fmt.Errorf("camcast: unknown protocol %v", opts.Protocol)
	}
	if mode == runtime.ModeCAMKoorde && capacity < 4 {
		return runtime.Config{}, fmt.Errorf("camcast: CAM-Koorde needs capacity >= 4, got %d", capacity)
	}
	if capacity < 2 {
		return runtime.Config{}, fmt.Errorf("camcast: capacity %d must be >= 2", capacity)
	}

	stabilize := opts.Stabilize
	if stabilize == 0 {
		stabilize = defaultStabilize
	}
	if stabilize < 0 {
		stabilize = 0 // disabled; drive with Network.Settle
	}
	fix := opts.Fix
	if fix == 0 {
		fix = defaultFix
	}
	if fix < 0 {
		fix = 0
	}

	return runtime.Config{
		Space:           space,
		Mode:            mode,
		Capacity:        capacity,
		StabilizeEvery:  stabilize,
		FixEvery:        fix,
		ForwardRetries:  opts.ForwardRetries,
		ForwardTimeout:  opts.ForwardTimeout,
		ForwardParallel: opts.ForwardParallel,
		RetryBackoff:    opts.RetryBackoff,
		SuspicionWindow: opts.SuspicionWindow,
		Tracer:          opts.Tracer,
	}, nil
}

// TCPMember is one group member hosted on its own TCP transport — its own
// listener on a real socket, exactly as a separate process or host would
// run. Create with ListenTCP; a TCPMember owns its transport and must be
// Closed when done.
type TCPMember struct {
	node    *runtime.Node
	tr      *transport.TCP
	bus     *obsv.Bus
	reg     *obsv.Registry
	stopObs func() // detaches Options.Observer; nil when unset
}

func (m *TCPMember) stopObserver() {
	if m.stopObs != nil {
		m.stopObs()
	}
}

// ListenTCP starts a member on a real TCP socket at listenAddr (use
// "127.0.0.1:0" to pick a free port). With via == "" the member bootstraps
// a fresh group; otherwise it joins the group through the existing member
// listening at via (a "host:port" string). Options.SuspicionWindow,
// DialTimeout and RPCTimeout tune the transport's failure detection and
// per-RPC deadlines.
func ListenTCP(listenAddr, via string, opts Options) (*TCPMember, error) {
	cfg, err := buildConfig(opts)
	if err != nil {
		return nil, err
	}
	codec, err := transport.ParseCodec(opts.Codec)
	if err != nil {
		return nil, err
	}
	runtime.RegisterWireTypes()
	tr, err := transport.NewTCP(listenAddr)
	if err != nil {
		return nil, err
	}
	tr.Codec = codec
	if opts.SuspicionWindow > 0 {
		tr.SuspicionWindow = opts.SuspicionWindow
	}
	if opts.DialTimeout > 0 {
		tr.DialTimeout = opts.DialTimeout
	}
	if opts.RPCTimeout > 0 {
		tr.RPCTimeout = opts.RPCTimeout
	}

	addr := tr.Addr()
	cfg.OnDeliver = func(d runtime.Delivery) {
		if opts.OnDeliver != nil {
			opts.OnDeliver(Message{ID: d.MsgID, From: d.Source.Addr, Payload: d.Payload, Hops: d.Hops})
		}
	}
	cfg.OnRequest = opts.OnRequest

	// Each TCPMember is its own process-equivalent, so it carries its own
	// event bus and metrics registry rather than sharing a group-wide one.
	m := &TCPMember{tr: tr, bus: obsv.NewBus(), reg: obsv.NewRegistry()}
	tr.Instrument(m.reg)
	cfg.Bus = m.bus
	cfg.Metrics = m.reg
	if opts.Observer != nil {
		m.stopObs = observe(m.bus, m.reg, addr, opts.Observer)
	}

	node, err := runtime.NewNode(tr, addr, cfg)
	if err != nil {
		m.stopObserver()
		tr.Close()
		return nil, err
	}
	m.node = node
	if via == "" {
		err = node.Bootstrap()
	} else {
		err = node.Join(via)
	}
	if err != nil {
		m.stopObserver()
		tr.Close()
		return nil, err
	}
	return m, nil
}

// Addr returns the member's bound "host:port" address — what other members
// pass to ListenTCP as via.
func (m *TCPMember) Addr() string { return m.node.Self().Addr }

// ID returns the member's ring identifier.
func (m *TCPMember) ID() uint64 { return m.node.Self().ID }

// Capacity returns the member's multicast capacity c_x.
func (m *TCPMember) Capacity() int { return m.node.Capacity() }

// Multicast sends payload to every group member (including this one) and
// returns the message ID.
func (m *TCPMember) Multicast(payload []byte) (string, error) {
	return m.node.Multicast(payload)
}

// MulticastContext is Multicast under a context: cancellation abandons
// outstanding child sends without counting them as losses.
func (m *TCPMember) MulticastContext(ctx context.Context, payload []byte) (string, error) {
	return m.node.MulticastContext(ctx, payload)
}

// Stats returns a snapshot of the member's protocol counters.
func (m *TCPMember) Stats() Stats { return m.node.Stats() }

// Metrics returns a snapshot of this member's metrics registry, covering
// both its protocol counters and its TCP transport (RPC latency,
// in-flight calls, flush batch sizes).
func (m *TCPMember) Metrics() MetricsSnapshot { return m.reg.Snapshot() }

// Neighbors reports the member's current ring neighborhood.
func (m *TCPMember) Neighbors() NeighborInfo { return neighborInfo(m.node) }

// Observe attaches fn to this member's live event stream and returns a
// function that detaches it.
func (m *TCPMember) Observe(fn func(Event)) (stop func()) {
	return observe(m.bus, m.reg, m.Addr(), fn)
}

// DebugHandler returns this member's live debug surface —
// /debug/camcast/{stats,neighbors,events} plus net/http/pprof — ready to
// mount on an HTTP server.
func (m *TCPMember) DebugHandler() http.Handler {
	return obsv.Debug{
		Registry:  m.reg,
		Bus:       m.bus,
		Neighbors: func() any { return []NeighborInfo{m.Neighbors()} },
		Extra:     func() any { return m.Stats() },
	}.Handler()
}

// Request sends a unicast request to the member at addr; the remote member
// must have configured Options.OnRequest.
func (m *TCPMember) Request(addr string, payload []byte) ([]byte, error) {
	return m.node.Request(addr, payload)
}

// RequestContext is Request under a context, which bounds or cancels the
// round-trip.
func (m *TCPMember) RequestContext(ctx context.Context, addr string, payload []byte) ([]byte, error) {
	return m.node.RequestContext(ctx, addr, payload)
}

// StabilizeOnce and FixAll drive one maintenance round explicitly, for
// deployments that disabled background maintenance.
func (m *TCPMember) StabilizeOnce() { m.node.StabilizeOnce() }

// FixAll refreshes the member's entire routing table in one pass.
func (m *TCPMember) FixAll() { m.node.FixAll() }

// Leave departs gracefully, then releases the transport.
func (m *TCPMember) Leave() error {
	err := m.node.Leave()
	m.tr.Close()
	m.stopObserver()
	return err
}

// Close stops the member abruptly (a crash, as other members see it) and
// releases the transport. Safe to call multiple times.
func (m *TCPMember) Close() {
	m.node.Stop()
	m.tr.Close()
	m.stopObserver()
}
