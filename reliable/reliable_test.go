package reliable

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"camcast"
)

// recorder captures in-order deliveries and gaps per member.
type recorder struct {
	mu   sync.Mutex
	data map[string][]uint64 // receiver -> delivered seqs (order preserved)
	gaps map[string][]uint64
}

func newRecorder() *recorder {
	return &recorder{data: map[string][]uint64{}, gaps: map[string][]uint64{}}
}

func (r *recorder) config(receiver string, window int) Config {
	return Config{
		Window: window,
		OnData: func(src string, seq uint64, payload []byte) {
			r.mu.Lock()
			defer r.mu.Unlock()
			r.data[receiver] = append(r.data[receiver], seq)
		},
		OnGap: func(src string, seq uint64) {
			r.mu.Lock()
			defer r.mu.Unlock()
			r.gaps[receiver] = append(r.gaps[receiver], seq)
		},
	}
}

func (r *recorder) seqs(receiver string) []uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]uint64, len(r.data[receiver]))
	copy(out, r.data[receiver])
	return out
}

func (r *recorder) gapList(receiver string) []uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]uint64, len(r.gaps[receiver]))
	copy(out, r.gaps[receiver])
	return out
}

// buildSessions creates a converged group of n reliable sessions.
func buildSessions(t *testing.T, rec *recorder, n, window int) (*camcast.Network, []*Session) {
	t.Helper()
	net := camcast.NewNetwork()
	t.Cleanup(net.Close)
	opts := func() camcast.Options {
		return camcast.Options{Capacity: 4, Stabilize: -1, Fix: -1}
	}
	sessions := make([]*Session, n)
	var err error
	sessions[0], err = New(net, "m0", "", opts(), rec.config("m0", window))
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < n; i++ {
		addr := fmt.Sprintf("m%d", i)
		sessions[i], err = New(net, addr, "m0", opts(), rec.config(addr, window))
		if err != nil {
			t.Fatal(err)
		}
		net.Settle(1)
	}
	net.Settle(3)
	return net, sessions
}

func expectSeqs(t *testing.T, got []uint64, want int) {
	t.Helper()
	if len(got) != want {
		t.Fatalf("delivered %d messages, want %d: %v", len(got), want, got)
	}
	for i, seq := range got {
		if seq != uint64(i+1) {
			t.Fatalf("out-of-order delivery: %v", got)
		}
	}
}

func TestInOrderDelivery(t *testing.T) {
	rec := newRecorder()
	_, sessions := buildSessions(t, rec, 6, 32)
	for i := 0; i < 10; i++ {
		if _, err := sessions[0].Send([]byte(fmt.Sprintf("msg-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 1; i < 6; i++ {
		expectSeqs(t, rec.seqs(fmt.Sprintf("m%d", i)), 10)
	}
	if sessions[1].Outstanding() != 0 {
		t.Errorf("outstanding = %d", sessions[1].Outstanding())
	}
}

func TestRecoveryFromLoss(t *testing.T) {
	rec := newRecorder()
	net, sessions := buildSessions(t, rec, 5, 64)

	// A lossy phase: some forwards fail wholesale, losing subtrees.
	net.Transport().SetDropRate(0.35)
	const total = 30
	for i := 0; i < total; i++ {
		if _, err := sessions[0].Send([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	net.Transport().SetDropRate(0)

	// Announce the high-water mark until every receiver has repaired.
	for round := 0; round < 10; round++ {
		if err := sessions[0].Sync(); err != nil {
			t.Fatal(err)
		}
		for _, sess := range sessions[1:] {
			sess.Heal()
		}
		done := true
		for i := 1; i < 5; i++ {
			if len(rec.seqs(fmt.Sprintf("m%d", i))) != total {
				done = false
			}
		}
		if done {
			break
		}
	}
	for i := 1; i < 5; i++ {
		addr := fmt.Sprintf("m%d", i)
		expectSeqs(t, rec.seqs(addr), total)
		if gaps := rec.gapList(addr); len(gaps) != 0 {
			t.Errorf("%s reported gaps %v despite full buffer", addr, gaps)
		}
	}
}

func TestEvictedMessagesBecomeGaps(t *testing.T) {
	rec := newRecorder()
	net, sessions := buildSessions(t, rec, 3, 4) // tiny window

	// Partition m2 so it misses everything.
	net.Transport().SetPartition("m2", 1)
	const total = 10
	for i := 0; i < total; i++ {
		if _, err := sessions[0].Send([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	net.Transport().HealPartitions()
	net.Settle(3)

	// m2 learns the high-water mark; only the last 4 messages survive in
	// m0's window, the first 6 are permanent gaps.
	if err := sessions[0].Sync(); err != nil {
		t.Fatal(err)
	}
	sessions[2].Heal()

	got := rec.seqs("m2")
	if len(got) != 4 || got[0] != 7 || got[3] != 10 {
		t.Fatalf("m2 recovered %v, want [7 8 9 10]", got)
	}
	gaps := rec.gapList("m2")
	if len(gaps) != 6 || gaps[0] != 1 || gaps[5] != 6 {
		t.Fatalf("m2 gaps %v, want [1..6]", gaps)
	}
	if sessions[2].Outstanding() != 0 {
		t.Errorf("outstanding = %d after gap resolution", sessions[2].Outstanding())
	}
}

func TestMultipleConcurrentSources(t *testing.T) {
	rec := newRecorder()
	_, sessions := buildSessions(t, rec, 4, 32)
	var wg sync.WaitGroup
	for s := 0; s < 4; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				if _, err := sessions[s].Send([]byte{byte(s), byte(i)}); err != nil {
					t.Error(err)
				}
			}
		}(s)
	}
	wg.Wait()
	// Every member hears 3 other sources × 5 messages (own sends are not
	// re-delivered through OnData).
	for i := 0; i < 4; i++ {
		if got := len(rec.seqs(fmt.Sprintf("m%d", i))); got != 15 {
			t.Errorf("m%d delivered %d messages, want 15", i, got)
		}
	}
}

func TestNewRejectsTakenCallbacks(t *testing.T) {
	net := camcast.NewNetwork()
	defer net.Close()
	_, err := New(net, "a", "", camcast.Options{OnDeliver: func(camcast.Message) {}}, Config{})
	if !errors.Is(err, ErrTakenCallbacks) {
		t.Fatalf("err = %v", err)
	}
	_, err = New(net, "a", "", camcast.Options{
		OnRequest: func(string, []byte) ([]byte, error) { return nil, nil },
	}, Config{})
	if !errors.Is(err, ErrTakenCallbacks) {
		t.Fatalf("err = %v", err)
	}
}

func TestNewPropagatesJoinErrors(t *testing.T) {
	net := camcast.NewNetwork()
	defer net.Close()
	if _, err := New(net, "a", "ghost", camcast.Options{Stabilize: -1, Fix: -1}, Config{}); err == nil {
		t.Fatal("join through unreachable bootstrap should fail")
	}
}

func TestForeignPayloadsIgnored(t *testing.T) {
	rec := newRecorder()
	net, _ := buildSessions(t, rec, 3, 16)
	// A plain camcast member (no reliability envelope) joins and sends raw
	// bytes; reliable sessions must not crash or mis-deliver.
	raw, err := net.Join("plain", "m0", camcast.Options{Capacity: 4, Stabilize: -1, Fix: -1})
	if err != nil {
		t.Fatal(err)
	}
	net.Settle(3)
	if _, err := raw.Multicast([]byte{0xFF, 0x01}); err != nil {
		t.Fatal(err)
	}
	for _, addr := range []string{"m1", "m2"} {
		if got := rec.seqs(addr); len(got) != 0 {
			t.Errorf("%s delivered foreign payloads: %v", addr, got)
		}
	}
}
