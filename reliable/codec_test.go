package reliable

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestDataEnvelopeRoundTrip(t *testing.T) {
	f := func(seq uint64, payload []byte) bool {
		kind, gotSeq, gotPayload, err := decode(encodeData(seq, payload))
		return err == nil && kind == kindData && gotSeq == seq && bytes.Equal(gotPayload, payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSyncEnvelopeRoundTrip(t *testing.T) {
	kind, seq, payload, err := decode(encodeSync(42))
	if err != nil || kind != kindSync || seq != 42 || payload != nil {
		t.Fatalf("decode(sync) = (%d, %d, %v, %v)", kind, seq, payload, err)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	bad := [][]byte{
		nil,
		{},
		{kindData},                               // too short
		{9, 0, 0, 0, 0, 0, 0, 0, 1},              // unknown kind
		{kindNack, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0}, // wrong channel
	}
	for i, raw := range bad {
		if _, _, _, err := decode(raw); err == nil {
			t.Errorf("case %d: decode accepted garbage", i)
		}
	}
}

func TestRepairReqRoundTrip(t *testing.T) {
	missing := []uint64{3, 7, 1 << 40}
	got, err := decodeRepairReq(encodeRepairReq(missing))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 3 || got[1] != 7 || got[2] != 1<<40 {
		t.Fatalf("got %v", got)
	}
	if _, err := decodeRepairReq(encodeRepairReq(nil)); err != nil {
		t.Fatalf("empty request: %v", err)
	}
}

func TestRepairReqRejectsGarbage(t *testing.T) {
	if _, err := decodeRepairReq([]byte{kindNack, 0, 2, 1}); err == nil {
		t.Error("truncated request accepted")
	}
	if _, err := decodeRepairReq([]byte{kindRetx, 0, 0}); err == nil {
		t.Error("wrong kind accepted")
	}
	if _, err := decodeRepairReq(nil); err == nil {
		t.Error("nil accepted")
	}
}

func TestRepairRespRoundTrip(t *testing.T) {
	in := map[uint64][]byte{
		1:   []byte("one"),
		9:   {},
		255: []byte("two-fifty-five"),
	}
	got, err := decodeRepairResp(encodeRepairResp(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(in) {
		t.Fatalf("got %d entries", len(got))
	}
	for seq, data := range in {
		if !bytes.Equal(got[seq], data) {
			t.Errorf("seq %d: %q != %q", seq, got[seq], data)
		}
	}
}

func TestRepairRespRejectsGarbage(t *testing.T) {
	valid := encodeRepairResp(map[uint64][]byte{5: []byte("x")})
	cases := [][]byte{
		nil,
		valid[:len(valid)-1], // truncated body
		valid[:10],           // truncated header
		append(valid, 0),     // trailing bytes
		{kindNack, 0, 0},     // wrong kind
	}
	for i, raw := range cases {
		if _, err := decodeRepairResp(raw); err == nil {
			t.Errorf("case %d: accepted garbage", i)
		}
	}
}
