// Package reliable layers per-source, in-order, gap-repaired delivery on
// top of camcast's best-effort multicast.
//
// The paper motivates capacity awareness with throughput "particularly in
// the case of reliable delivery" (Section 1); this package supplies that
// reliability: every sender numbers its messages and keeps a bounded
// retransmission buffer; every receiver tracks a per-source cursor, detects
// sequence gaps (from lost subtrees or dropped packets), and repairs them
// by NACKing the source directly over the overlay's unicast channel. If the
// source has already evicted a message from its buffer — or has left the
// group — the gap is reported and skipped so the stream never stalls.
//
//	sess, _ := reliable.New(net, "alice", "", camcast.Options{Capacity: 6}, reliable.Config{
//	    OnData: func(src string, seq uint64, data []byte) { ... }, // in order per source
//	    OnGap:  func(src string, seq uint64) { ... },              // permanently lost
//	})
//	seq, _ := sess.Send([]byte("tick 1"))
//	_ = sess.Sync() // announce the high-water mark so silent receivers catch up
package reliable

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"

	"camcast"
)

// Config parameterizes a reliable session.
type Config struct {
	// Window is how many of its own most recent messages a member keeps
	// for retransmission (default 128).
	Window int
	// MaxRepairBatch bounds the sequence numbers requested per NACK
	// (default 64).
	MaxRepairBatch int
	// OnData receives messages in per-source sequence order. Called from
	// protocol goroutines; do not call Session methods from inside it.
	OnData func(source string, seq uint64, payload []byte)
	// OnGap reports a sequence number that can no longer be recovered
	// (source departed or its buffer no longer holds it).
	OnGap func(source string, seq uint64)
}

func (c *Config) applyDefaults() {
	if c.Window == 0 {
		c.Window = 128
	}
	if c.MaxRepairBatch == 0 {
		c.MaxRepairBatch = 64
	}
}

// ErrTakenCallbacks reports Options that already carry delivery hooks.
var ErrTakenCallbacks = errors.New("reliable: Options.OnDeliver/OnRequest are managed by the session")

// Session is one group member with reliability state. The member under it
// can be either kind camcast offers — in-process (New) or socket-backed
// (NewTCP) — the reliability protocol is transport-agnostic.
type Session struct {
	member camcast.Node
	cfg    Config

	mu      sync.Mutex
	nextSeq uint64 // next sequence number to assign (starts at 1)
	sendBuf map[uint64][]byte
	peers   map[string]*peerState

	deliverMu sync.Mutex // serializes OnData/OnGap callbacks
}

// peerState tracks one remote source.
type peerState struct {
	next    uint64 // next sequence expected in order
	top     uint64 // highest sequence seen or announced
	pending map[uint64][]byte
}

// event is a resolved delivery or gap, emitted in order.
type event struct {
	seq     uint64
	payload []byte
	gap     bool
}

// New creates a member at addr (bootstrapping a fresh group when via is
// empty, joining through via otherwise) wrapped in a reliable session. The
// session owns opts.OnDeliver and opts.OnRequest.
func New(net *camcast.Network, addr, via string, opts camcast.Options, cfg Config) (*Session, error) {
	s, err := newSession(&opts, cfg)
	if err != nil {
		return nil, err
	}
	var m *camcast.Member
	if via == "" {
		m, err = net.Create(addr, opts)
	} else {
		m, err = net.Join(addr, via, opts)
	}
	if err != nil {
		return nil, err
	}
	s.member = m
	return s, nil
}

// NewTCP starts a member on its own real TCP socket at listenAddr (see
// camcast.ListenTCP) wrapped in a reliable session, bootstrapping a fresh
// group when via is empty and joining through via otherwise. The session
// owns opts.OnDeliver and opts.OnRequest. Close the underlying member
// (Member().(*camcast.TCPMember).Close()) when done.
func NewTCP(listenAddr, via string, opts camcast.Options, cfg Config) (*Session, error) {
	s, err := newSession(&opts, cfg)
	if err != nil {
		return nil, err
	}
	m, err := camcast.ListenTCP(listenAddr, via, opts)
	if err != nil {
		return nil, err
	}
	s.member = m
	return s, nil
}

// newSession builds the session state and claims the delivery hooks in
// opts, failing if the caller already took them.
func newSession(opts *camcast.Options, cfg Config) (*Session, error) {
	if opts.OnDeliver != nil || opts.OnRequest != nil {
		return nil, ErrTakenCallbacks
	}
	cfg.applyDefaults()
	s := &Session{
		cfg:     cfg,
		nextSeq: 1,
		sendBuf: make(map[uint64][]byte),
		peers:   make(map[string]*peerState),
	}
	opts.OnDeliver = s.onDeliver
	opts.OnRequest = s.onRepairRequest
	return s, nil
}

// Member exposes the underlying group member.
func (s *Session) Member() camcast.Node { return s.member }

// Send multicasts payload reliably and returns its sequence number.
func (s *Session) Send(payload []byte) (uint64, error) {
	s.mu.Lock()
	seq := s.nextSeq
	s.nextSeq++
	buffered := make([]byte, len(payload))
	copy(buffered, payload)
	s.sendBuf[seq] = buffered
	if evict := seq - uint64(s.cfg.Window); evict >= 1 && seq > uint64(s.cfg.Window) {
		delete(s.sendBuf, evict)
	}
	s.mu.Unlock()

	if _, err := s.member.MulticastContext(context.Background(), encodeData(seq, payload)); err != nil {
		return 0, err
	}
	return seq, nil
}

// Sync multicasts the sender's high-water mark so receivers that missed
// entire messages (lost subtrees) detect and repair the gaps.
func (s *Session) Sync() error {
	s.mu.Lock()
	top := s.nextSeq - 1
	s.mu.Unlock()
	_, err := s.member.MulticastContext(context.Background(), encodeSync(top))
	return err
}

// Heal re-attempts repair for every known source with outstanding gaps.
// Call it after partitions heal or drop storms end.
func (s *Session) Heal() {
	s.mu.Lock()
	sources := make([]string, 0, len(s.peers))
	for src, p := range s.peers {
		if p.next <= p.top {
			sources = append(sources, src)
		}
	}
	s.mu.Unlock()
	for _, src := range sources {
		s.repair(src)
	}
}

// Outstanding returns the number of sequence numbers currently missing
// (unrecovered gaps plus undelivered pending) across all sources.
func (s *Session) Outstanding() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	total := 0
	for _, p := range s.peers {
		if p.top >= p.next {
			total += int(p.top-p.next) + 1 - len(p.pending)
		}
	}
	return total
}

// onDeliver is the camcast delivery hook.
func (s *Session) onDeliver(m camcast.Message) {
	if m.From == s.member.Addr() {
		return // our own copy
	}
	kind, seq, data, err := decode(m.Payload)
	if err != nil {
		return // not a reliable-envelope message; ignore
	}

	s.mu.Lock()
	p := s.peer(m.From)
	switch kind {
	case kindData:
		if seq >= p.next {
			if _, dup := p.pending[seq]; !dup {
				// data views m.Payload, which camcast owns only for the
				// duration of this callback (on the TCP transport it aliases
				// a pooled buffer): anything kept past return must be a copy.
				p.pending[seq] = bytes.Clone(data)
			}
			if seq > p.top {
				p.top = seq
			}
		}
	case kindSync:
		if seq > p.top {
			p.top = seq
		}
	}
	ready := p.drain(nil)
	gapsRemain := p.next <= p.top && uint64(len(p.pending)) < p.top-p.next+1
	s.mu.Unlock()

	s.emit(m.From, ready)
	if gapsRemain {
		s.repair(m.From)
	}
}

// repair NACKs the source for the missing range and integrates the reply.
func (s *Session) repair(source string) {
	s.mu.Lock()
	p := s.peer(source)
	missing := make([]uint64, 0, s.cfg.MaxRepairBatch)
	for seq := p.next; seq <= p.top && len(missing) < s.cfg.MaxRepairBatch; seq++ {
		if _, ok := p.pending[seq]; !ok {
			missing = append(missing, seq)
		}
	}
	s.mu.Unlock()
	if len(missing) == 0 {
		return
	}

	resp, err := s.member.RequestContext(context.Background(), source, encodeRepairReq(missing))
	if err != nil {
		return // source unreachable; Heal can retry later
	}
	recovered, err := decodeRepairResp(resp)
	if err != nil {
		return
	}

	s.mu.Lock()
	for seq, data := range recovered {
		if seq >= p.next {
			p.pending[seq] = data
		}
	}
	// Anything we asked for that the source no longer has is gone for good.
	lost := make(map[uint64]bool)
	for _, seq := range missing {
		if _, ok := recovered[seq]; !ok {
			lost[seq] = true
		}
	}
	ready := p.drain(lost)
	s.mu.Unlock()

	s.emit(source, ready)
}

// onRepairRequest serves NACKs against the local send buffer.
func (s *Session) onRepairRequest(from string, payload []byte) ([]byte, error) {
	missing, err := decodeRepairReq(payload)
	if err != nil {
		return nil, fmt.Errorf("reliable: bad repair request from %s: %w", from, err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	found := make(map[uint64][]byte, len(missing))
	for _, seq := range missing {
		if data, ok := s.sendBuf[seq]; ok {
			found[seq] = data
		}
	}
	return encodeRepairResp(found), nil
}

// peer returns (creating if needed) the state for source. Caller holds mu.
func (s *Session) peer(source string) *peerState {
	p, ok := s.peers[source]
	if !ok {
		p = &peerState{next: 1, pending: make(map[uint64][]byte)}
		s.peers[source] = p
	}
	return p
}

// drain advances the in-order cursor, returning deliverable events. Gaps
// listed in lost are emitted as gap events and skipped. Caller holds mu.
func (p *peerState) drain(lost map[uint64]bool) []event {
	var out []event
	for {
		if data, ok := p.pending[p.next]; ok {
			out = append(out, event{seq: p.next, payload: data})
			delete(p.pending, p.next)
			p.next++
			continue
		}
		if lost[p.next] {
			out = append(out, event{seq: p.next, gap: true})
			p.next++
			continue
		}
		return out
	}
}

// emit invokes the user callbacks outside the state lock, serialized so
// ordering guarantees hold.
func (s *Session) emit(source string, events []event) {
	if len(events) == 0 {
		return
	}
	s.deliverMu.Lock()
	defer s.deliverMu.Unlock()
	for _, ev := range events {
		if ev.gap {
			if s.cfg.OnGap != nil {
				s.cfg.OnGap(source, ev.seq)
			}
			continue
		}
		if s.cfg.OnData != nil {
			s.cfg.OnData(source, ev.seq, ev.payload)
		}
	}
}
