package reliable

import (
	"encoding/binary"
	"fmt"
)

// Wire formats (all integers big-endian):
//
//	data envelope:   [1: kindData]  [8: seq] [payload...]
//	sync envelope:   [1: kindSync]  [8: top]
//	repair request:  [1: kindNack]  [2: count] count × [8: seq]
//	repair response: [1: kindRetx]  [2: count] count × ([8: seq] [4: len] [len: data])
const (
	kindData byte = 1
	kindSync byte = 2
	kindNack byte = 3
	kindRetx byte = 4
)

func encodeData(seq uint64, payload []byte) []byte {
	out := make([]byte, 9+len(payload))
	out[0] = kindData
	binary.BigEndian.PutUint64(out[1:9], seq)
	copy(out[9:], payload)
	return out
}

func encodeSync(top uint64) []byte {
	out := make([]byte, 9)
	out[0] = kindSync
	binary.BigEndian.PutUint64(out[1:9], top)
	return out
}

// decode splits a multicast envelope into kind, sequence and payload.
func decode(raw []byte) (kind byte, seq uint64, payload []byte, err error) {
	if len(raw) < 9 {
		return 0, 0, nil, fmt.Errorf("reliable: envelope too short (%d bytes)", len(raw))
	}
	kind = raw[0]
	if kind != kindData && kind != kindSync {
		return 0, 0, nil, fmt.Errorf("reliable: unknown envelope kind %d", kind)
	}
	seq = binary.BigEndian.Uint64(raw[1:9])
	if kind == kindData {
		payload = raw[9:]
	}
	return kind, seq, payload, nil
}

func encodeRepairReq(missing []uint64) []byte {
	out := make([]byte, 3+8*len(missing))
	out[0] = kindNack
	binary.BigEndian.PutUint16(out[1:3], uint16(len(missing)))
	for i, seq := range missing {
		binary.BigEndian.PutUint64(out[3+8*i:], seq)
	}
	return out
}

func decodeRepairReq(raw []byte) ([]uint64, error) {
	if len(raw) < 3 || raw[0] != kindNack {
		return nil, fmt.Errorf("reliable: malformed repair request")
	}
	count := int(binary.BigEndian.Uint16(raw[1:3]))
	if len(raw) != 3+8*count {
		return nil, fmt.Errorf("reliable: repair request length %d != %d", len(raw), 3+8*count)
	}
	out := make([]uint64, count)
	for i := range out {
		out[i] = binary.BigEndian.Uint64(raw[3+8*i:])
	}
	return out, nil
}

func encodeRepairResp(found map[uint64][]byte) []byte {
	size := 3
	for _, data := range found {
		size += 12 + len(data)
	}
	out := make([]byte, 0, size)
	out = append(out, kindRetx, 0, 0)
	binary.BigEndian.PutUint16(out[1:3], uint16(len(found)))
	var buf [12]byte
	for seq, data := range found {
		binary.BigEndian.PutUint64(buf[0:8], seq)
		binary.BigEndian.PutUint32(buf[8:12], uint32(len(data)))
		out = append(out, buf[:]...)
		out = append(out, data...)
	}
	return out
}

func decodeRepairResp(raw []byte) (map[uint64][]byte, error) {
	if len(raw) < 3 || raw[0] != kindRetx {
		return nil, fmt.Errorf("reliable: malformed repair response")
	}
	count := int(binary.BigEndian.Uint16(raw[1:3]))
	out := make(map[uint64][]byte, count)
	off := 3
	for i := 0; i < count; i++ {
		if len(raw) < off+12 {
			return nil, fmt.Errorf("reliable: truncated repair response header")
		}
		seq := binary.BigEndian.Uint64(raw[off : off+8])
		n := int(binary.BigEndian.Uint32(raw[off+8 : off+12]))
		off += 12
		if len(raw) < off+n {
			return nil, fmt.Errorf("reliable: truncated repair response body")
		}
		data := make([]byte, n)
		copy(data, raw[off:off+n])
		out[seq] = data
		off += n
	}
	if off != len(raw) {
		return nil, fmt.Errorf("reliable: %d trailing bytes in repair response", len(raw)-off)
	}
	return out, nil
}
