package reliable

import (
	"fmt"
	"testing"
	"time"

	"camcast"
)

// TestBurstLossDuringRepairMem is the reliability layer's cut of the
// burst-loss-during-repair scenario: a member crashes in the middle of a
// drop window, so the orphan-subtree repairs and the NACK/retransmission
// traffic that cover the crash are themselves lossy. The stream must still
// come out complete and in order at every survivor once the window ends.
func TestBurstLossDuringRepairMem(t *testing.T) {
	rec := newRecorder()
	net, sessions := buildSessions(t, rec, 6, 64)

	// Open the loss window, lose a member mid-window, keep publishing.
	net.Transport().SetDropRate(0.3)
	const total = 15
	for i := 0; i < total; i++ {
		if _, err := sessions[0].Send([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
		if i == total/2 {
			sessions[4].Member().(*camcast.Member).Crash()
		}
	}
	net.Transport().SetDropRate(0)
	net.Settle(3)

	// Post-heal: announce the high-water mark and let survivors NACK their
	// way to a complete stream.
	survivors := []int{1, 2, 3, 5}
	for round := 0; round < 10; round++ {
		if err := sessions[0].Sync(); err != nil {
			t.Fatal(err)
		}
		done := true
		for _, i := range survivors {
			sessions[i].Heal()
			if len(rec.seqs(fmt.Sprintf("m%d", i))) != total {
				done = false
			}
		}
		if done {
			break
		}
	}

	for _, i := range survivors {
		addr := fmt.Sprintf("m%d", i)
		expectSeqs(t, rec.seqs(addr), total)
		if gaps := rec.gapList(addr); len(gaps) != 0 {
			t.Errorf("%s reported gaps %v; window 64 holds the whole stream", addr, gaps)
		}
		if out := sessions[i].Outstanding(); out != 0 {
			t.Errorf("m%d still has %d outstanding after repair", i, out)
		}
	}
}

// TestBurstLossDuringRepairTCP runs the same shape over real sockets. The
// TCP transport has no drop-rate knob, so the burst loss is the real kind:
// a member's listener dies mid-stream and every forward routed through it
// fails until the overlay repairs around the corpse — while the sender
// keeps publishing. Survivors must recover the full ordered stream via
// NACKs once maintenance has healed the routes.
func TestBurstLossDuringRepairTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("real sockets; skipped in -short runs")
	}
	rec := newRecorder()
	opts := func() camcast.Options {
		return camcast.Options{
			Capacity:       4,
			Stabilize:      -1,
			Fix:            -1,
			ForwardTimeout: 2 * time.Second,
			RPCTimeout:     2 * time.Second,
		}
	}

	const n = 4
	sessions := make([]*Session, n)
	var err error
	for i := 0; i < n; i++ {
		via := ""
		if i > 0 {
			via = sessions[0].Member().Addr()
		}
		sessions[i], err = NewTCP("127.0.0.1:0", via, opts(), rec.config(fmt.Sprintf("t%d", i), 64))
		if err != nil {
			t.Fatal(err)
		}
		for r := 0; r < 3; r++ {
			for j := 0; j <= i; j++ {
				sessions[j].Member().(*camcast.TCPMember).StabilizeOnce()
			}
		}
	}
	defer func() {
		for i, sess := range sessions {
			if i == 3 {
				continue // closed mid-test
			}
			sess.Member().(*camcast.TCPMember).Close()
		}
	}()
	settle := func(skip int) {
		for r := 0; r < 3; r++ {
			for i, sess := range sessions {
				if i == skip {
					continue
				}
				m := sess.Member().(*camcast.TCPMember)
				m.StabilizeOnce()
				m.FixAll()
			}
		}
	}
	settle(-1)

	const total = 10
	for i := 0; i < total; i++ {
		if _, err := sessions[0].Send([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
		if i == total/2 {
			// Mid-stream crash: the listener vanishes without a leave, so
			// in-flight forwards to it time out and its subtree orphans.
			sessions[3].Member().(*camcast.TCPMember).Close()
		}
	}
	settle(3)

	survivors := []int{1, 2}
	deadline := time.Now().Add(30 * time.Second)
	for {
		if err := sessions[0].Sync(); err != nil {
			t.Fatal(err)
		}
		done := true
		for _, i := range survivors {
			sessions[i].Heal()
			if len(rec.seqs(fmt.Sprintf("t%d", i))) != total {
				done = false
			}
		}
		if done {
			break
		}
		if time.Now().After(deadline) {
			for _, i := range survivors {
				t.Logf("t%d got %v", i, rec.seqs(fmt.Sprintf("t%d", i)))
			}
			t.Fatal("survivors never recovered the full stream")
		}
		time.Sleep(50 * time.Millisecond)
	}

	for _, i := range survivors {
		addr := fmt.Sprintf("t%d", i)
		expectSeqs(t, rec.seqs(addr), total)
		if gaps := rec.gapList(addr); len(gaps) != 0 {
			t.Errorf("%s reported gaps %v; nothing was evicted", addr, gaps)
		}
	}
}
