package camcast

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// hostPair builds two TCPHosts with a member of each named group on both,
// the second host's members joining through the first's. Returns the
// hosts plus per-group delivery counters for host B's members.
func hostPair(t *testing.T, groups []string, opts func(group string, onB bool) Options) (ha, hb *TCPHost, net *Network) {
	t.Helper()
	net = NewNetwork()
	t.Cleanup(net.Close)
	ha, err := NewTCPHost("127.0.0.1:0", HostOptions{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ha.Close)
	hb, err = NewTCPHost("127.0.0.1:0", HostOptions{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(hb.Close)

	for _, name := range groups {
		g, err := net.CreateGroup(name, GroupOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := g.ListenOn(ha, "", opts(name, false)); err != nil {
			t.Fatalf("group %s on host A: %v", name, err)
		}
		if _, err := g.ListenOn(hb, ha.Addr(), opts(name, true)); err != nil {
			t.Fatalf("group %s on host B: %v", name, err)
		}
	}
	return ha, hb, net
}

// TestTCPHostSharedConnection pins the tentpole transport guarantee at the
// public API: many groups between the same two processes share one
// pipelined TCP connection per peer pair, with every group's overlay
// still working and isolated.
func TestTCPHostSharedConnection(t *testing.T) {
	const groups = 20
	names := make([]string, groups)
	for i := range names {
		names[i] = fmt.Sprintf("grp-%02d", i)
	}

	var mu sync.Mutex
	delivered := make(map[string][]string) // group -> msg payloads seen on host B
	opts := func(group string, onB bool) Options {
		o := Options{
			Capacity:  4,
			Stabilize: -1,
			Fix:       -1,
		}
		if onB {
			o.OnDeliver = func(m Message) {
				mu.Lock()
				delivered[group] = append(delivered[group], string(m.Payload))
				mu.Unlock()
			}
		}
		return o
	}
	ha, hb, _ := hostPair(t, names, opts)

	if got := len(ha.Groups()); got != groups {
		t.Errorf("host A carries %d groups, want %d", got, groups)
	}

	// Every group multicasts from its host-A member; only the matching
	// host-B member may deliver.
	for _, name := range names {
		m := memberOf(t, ha, name)
		if _, err := m.MulticastContext(context.Background(), []byte("hello "+name)); err != nil {
			t.Fatalf("multicast in %s: %v", name, err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		done := len(delivered) == groups
		mu.Unlock()
		if done || time.Now().After(deadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	for _, name := range names {
		msgs := delivered[name]
		if len(msgs) != 1 || msgs[0] != "hello "+name {
			t.Errorf("group %s host-B deliveries = %q, want exactly [hello %s]", name, msgs, name)
		}
	}

	// The load-bearing assertion: all 20 groups rode the same pooled
	// connections. The transport pipelines requests over one dialed
	// connection per direction, so each host sees exactly two — its own
	// dialed one plus the peer's accepted one — no matter how many
	// groups the pair shares. (A per-group connection scheme would show
	// 2×20 here.)
	if got := ha.Conns(); got != 2 {
		t.Errorf("host A holds %d TCP connections, want 2 (one per direction) across %d groups", got, groups)
	}
	if got := hb.Conns(); got != 2 {
		t.Errorf("host B holds %d TCP connections, want 2 (one per direction) across %d groups", got, groups)
	}
}

func memberOf(t *testing.T, h *TCPHost, group string) *TCPMember {
	t.Helper()
	h.hmu.Lock()
	defer h.hmu.Unlock()
	for _, m := range h.members {
		if m.group == group {
			return m
		}
	}
	t.Fatalf("host %s has no member of %s", h.Addr(), group)
	return nil
}

// TestTCPHostOneMemberPerGroup checks the host-level registry rules.
func TestTCPHostOneMemberPerGroup(t *testing.T) {
	net := NewNetwork()
	defer net.Close()
	h, err := NewTCPHost("127.0.0.1:0", HostOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()

	g, err := net.CreateGroup("solo", GroupOptions{})
	if err != nil {
		t.Fatal(err)
	}
	m, err := g.ListenOn(h, "", Options{Capacity: 4, Stabilize: -1, Fix: -1})
	if err != nil {
		t.Fatal(err)
	}
	if m.Group() != "solo" || m.Host() != h {
		t.Errorf("member group/host = %q/%p, want solo/%p", m.Group(), m.Host(), h)
	}
	if _, err := g.ListenOn(h, "", Options{Capacity: 4}); err == nil {
		t.Error("second member of the same group on one host was accepted")
	}
	// A different group at the same address is fine.
	g2, err := net.CreateGroup("solo-2", GroupOptions{})
	if err != nil {
		t.Fatal(err)
	}
	m2, err := g2.ListenOn(h, "", Options{Capacity: 4, Stabilize: -1, Fix: -1})
	if err != nil {
		t.Fatal(err)
	}
	if m2.Addr() != m.Addr() {
		t.Errorf("co-hosted members differ in address: %s vs %s", m2.Addr(), m.Addr())
	}
	// Closing a non-owning member detaches it without killing the host.
	m.Close()
	if got := h.Groups(); len(got) != 1 || got[0] != "solo-2" {
		t.Errorf("after member close host groups = %v, want [solo-2]", got)
	}
	if _, err := g.ListenOn(h, "", Options{Capacity: 4, Stabilize: -1, Fix: -1}); err != nil {
		t.Errorf("rejoining a departed group's slot failed: %v", err)
	}
}

// TestTCPHostFairness pins the tenant-isolation acceptance bar: a group
// saturating the shared connection cannot push a quiet group's delivery
// below 90% of its isolated baseline. "Quiet" means a fixed, modest
// offered rate (one small multicast every 2ms) — the group is measured on
// whether it still lands that rate, not on winning a bandwidth race. The
// per-group backlog quota is what makes this hold: without it the hot
// group's unflushed frames queue without bound ahead of the quiet
// group's, inflating its per-send latency past the pacing interval.
func TestTCPHostFairness(t *testing.T) {
	if testing.Short() {
		t.Skip("fairness soak skipped in -short mode")
	}

	const (
		pace   = 2 * time.Millisecond
		window = 500 * time.Millisecond
	)
	run := func(saturate bool) (quietPerSec float64) {
		var quietGot atomic.Int64
		var hotGot atomic.Int64
		net := NewNetwork()
		defer net.Close()
		mk := func(addr string) (*TCPHost, error) {
			return NewTCPHost(addr, HostOptions{GroupBacklogLimit: 256 << 10})
		}
		ha, err := mk("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer ha.Close()
		hb, err := mk("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer hb.Close()

		base := Options{Capacity: 4, Stabilize: -1, Fix: -1}
		quiet, err := net.CreateGroup("quiet", GroupOptions{})
		if err != nil {
			t.Fatal(err)
		}
		hot, err := net.CreateGroup("hot", GroupOptions{})
		if err != nil {
			t.Fatal(err)
		}
		quietSrc, err := quiet.ListenOn(ha, "", base)
		if err != nil {
			t.Fatal(err)
		}
		qb := base
		qb.OnDeliver = func(Message) { quietGot.Add(1) }
		if _, err := quiet.ListenOn(hb, ha.Addr(), qb); err != nil {
			t.Fatal(err)
		}
		hotSrc, err := hot.ListenOn(ha, "", base)
		if err != nil {
			t.Fatal(err)
		}
		hb2 := base
		hb2.OnDeliver = func(Message) { hotGot.Add(1) }
		if _, err := hot.ListenOn(hb, ha.Addr(), hb2); err != nil {
			t.Fatal(err)
		}

		stop := make(chan struct{})
		var wg sync.WaitGroup
		if saturate {
			// Several flooders pushing fat payloads through the shared
			// connection. Backlog-quota errors are expected under
			// saturation — that is the quota doing its job — so they are
			// ignored, not fatal.
			payload := make([]byte, 32<<10)
			for w := 0; w < 4; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						select {
						case <-stop:
							return
						default:
						}
						_, _ = hotSrc.MulticastContext(context.Background(), payload)
					}
				}()
			}
			// Let the flood ramp up before measuring.
			time.Sleep(200 * time.Millisecond)
		}

		// Paced sender: one small multicast per 2ms slot for the window.
		// If a send overruns its slot the loop runs behind and fewer
		// sends fit — exactly the "delivery rate" the bar is about.
		start := time.Now()
		deadline := start.Add(window)
		sent := 0
		for time.Now().Before(deadline) {
			if _, err := quietSrc.MulticastContext(context.Background(), []byte("tick")); err != nil {
				t.Fatalf("quiet multicast (saturate=%v): %v", saturate, err)
			}
			sent++
			time.Sleep(time.Until(start.Add(time.Duration(sent) * pace)))
		}
		elapsed := time.Since(start)
		close(stop)
		wg.Wait()
		if got := quietGot.Load(); got != int64(sent) {
			t.Fatalf("quiet group delivered %d of %d sent messages", got, sent)
		}
		return float64(sent) / elapsed.Seconds()
	}

	baseline := run(false)
	// Loaded throughput bounces with scheduler noise; take the best of
	// three runs — the bar is about sustained starvation, not jitter.
	var best float64
	for attempt := 0; attempt < 3; attempt++ {
		if rate := run(true); rate > best {
			best = rate
		}
		if best >= 0.9*baseline {
			break
		}
	}
	t.Logf("quiet group: %.0f msg/s isolated, %.0f msg/s under saturation (%.2fx)", baseline, best, best/baseline)
	if best < 0.9*baseline {
		t.Errorf("saturating group pushed quiet delivery to %.0f msg/s, below 90%% of the %.0f msg/s baseline", best, baseline)
	}
}
