package main

import (
	"strings"
	"testing"

	"camcast"
)

func newTestSession(t *testing.T) (*session, *strings.Builder) {
	t.Helper()
	out := &strings.Builder{}
	s := &session{grp: &memGroup{net: camcast.NewNetwork()}, protocol: camcast.CAMChord, out: out}
	t.Cleanup(s.grp.close)
	return s, out
}

func newTestTCPSession(t *testing.T) (*session, *strings.Builder) {
	t.Helper()
	out := &strings.Builder{}
	s := &session{
		grp:      &tcpGroup{members: make(map[string]*camcast.TCPMember)},
		protocol: camcast.CAMChord,
		out:      out,
	}
	t.Cleanup(s.grp.close)
	return s, out
}

func exec(t *testing.T, s *session, line string) {
	t.Helper()
	if _, err := s.execute(line); err != nil {
		t.Fatalf("%q: %v", line, err)
	}
}

func TestSessionLifecycle(t *testing.T) {
	s, out := newTestSession(t)
	exec(t, s, "create alice 6")
	exec(t, s, "join bob alice 4")
	exec(t, s, "join carol alice 4")
	exec(t, s, "settle")
	exec(t, s, "send bob hello world")
	exec(t, s, "members")
	exec(t, s, "stats bob")
	exec(t, s, "leave carol")
	exec(t, s, "crash bob")

	text := out.String()
	for _, want := range []string{
		"alice bootstrapped",
		"bob joined via alice",
		"[alice] bob: hello world",
		"3 members",
		"delivered=",
		"carol left",
		"bob crashed",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q\n%s", want, text)
		}
	}
}

func TestSessionQuit(t *testing.T) {
	s, _ := newTestSession(t)
	quit, err := s.execute("quit")
	if err != nil || !quit {
		t.Fatalf("quit = (%v, %v)", quit, err)
	}
}

func TestSessionErrors(t *testing.T) {
	s, _ := newTestSession(t)
	bad := []string{
		"bogus",
		"create",
		"join onlyone",
		"send ghost hi",
		"send",
		"leave",
		"stats ghost",
		"create alice notanumber",
	}
	for _, line := range bad {
		if _, err := s.execute(line); err == nil {
			t.Errorf("%q should error", line)
		}
	}
}

func TestSessionHelp(t *testing.T) {
	s, out := newTestSession(t)
	exec(t, s, "help")
	if !strings.Contains(out.String(), "create <addr>") {
		t.Error("help output wrong")
	}
}

func TestRunCodecWithoutTCP(t *testing.T) {
	if err := run("cam-chord", false, "gob", strings.NewReader(""), &strings.Builder{}); err == nil {
		t.Error("-codec without -tcp should fail")
	}
}

func TestRunUnknownProtocol(t *testing.T) {
	if err := run("bogus", false, "", strings.NewReader(""), &strings.Builder{}); err == nil {
		t.Error("unknown protocol should fail")
	}
}

func TestRunKoordeSession(t *testing.T) {
	in := strings.NewReader("create a 5\njoin b a 5\nsettle\nsend a hi\nquit\n")
	out := &strings.Builder{}
	if err := run("cam-koorde", false, "", in, out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "[b] a: hi") {
		t.Errorf("koorde session output:\n%s", out.String())
	}
}

// TestSessionLifecycleTCP runs the same REPL flow with every member on its
// own real TCP listener.
func TestSessionLifecycleTCP(t *testing.T) {
	s, out := newTestTCPSession(t)
	exec(t, s, "create alice 6")
	exec(t, s, "join bob alice 4")
	exec(t, s, "settle")
	exec(t, s, "send bob hello tcp")
	exec(t, s, "members")
	exec(t, s, "crash bob")

	text := out.String()
	for _, want := range []string{
		"alice bootstrapped",
		"bob joined via alice",
		"bob crashed",
		"2 members",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q\n%s", want, text)
		}
	}
}
