package main

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"camcast"
)

func newDebugRequest(t *testing.T, path string) (*http.Request, *httptest.ResponseRecorder) {
	t.Helper()
	return httptest.NewRequest(http.MethodGet, path, nil), httptest.NewRecorder()
}

func newTestSession(t *testing.T) (*session, *strings.Builder) {
	t.Helper()
	out := &strings.Builder{}
	s := &session{grp: newMemGroup(), protocol: camcast.CAMChord, out: out}
	t.Cleanup(s.grp.close)
	return s, out
}

func newTestTCPSession(t *testing.T) (*session, *strings.Builder) {
	t.Helper()
	out := &strings.Builder{}
	s := &session{
		grp:      newTCPGroup(""),
		protocol: camcast.CAMChord,
		out:      out,
	}
	t.Cleanup(s.grp.close)
	return s, out
}

func exec(t *testing.T, s *session, line string) {
	t.Helper()
	if _, err := s.execute(line); err != nil {
		t.Fatalf("%q: %v", line, err)
	}
}

func TestSessionLifecycle(t *testing.T) {
	s, out := newTestSession(t)
	exec(t, s, "create alice 6")
	exec(t, s, "join bob alice 4")
	exec(t, s, "join carol alice 4")
	exec(t, s, "settle")
	exec(t, s, "send bob hello world")
	exec(t, s, "members")
	exec(t, s, "stats bob")
	exec(t, s, "leave carol")
	exec(t, s, "crash bob")

	text := out.String()
	for _, want := range []string{
		"alice bootstrapped",
		"bob joined via alice",
		"[alice] bob: hello world",
		"3 members",
		"delivered=",
		"carol left",
		"bob crashed",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q\n%s", want, text)
		}
	}
}

func TestSessionQuit(t *testing.T) {
	s, _ := newTestSession(t)
	quit, err := s.execute("quit")
	if err != nil || !quit {
		t.Fatalf("quit = (%v, %v)", quit, err)
	}
}

func TestSessionErrors(t *testing.T) {
	s, _ := newTestSession(t)
	bad := []string{
		"bogus",
		"create",
		"join onlyone",
		"send ghost hi",
		"send",
		"leave",
		"stats ghost",
		"create alice notanumber",
	}
	for _, line := range bad {
		if _, err := s.execute(line); err == nil {
			t.Errorf("%q should error", line)
		}
	}
}

func TestSessionHelp(t *testing.T) {
	s, out := newTestSession(t)
	exec(t, s, "help")
	if !strings.Contains(out.String(), "create <addr>") {
		t.Error("help output wrong")
	}
}

func TestRunCodecWithoutTCP(t *testing.T) {
	if err := run("cam-chord", false, "gob", "", strings.NewReader(""), &strings.Builder{}); err == nil {
		t.Error("-codec without -tcp should fail")
	}
}

func TestRunUnknownProtocol(t *testing.T) {
	if err := run("bogus", false, "", "", strings.NewReader(""), &strings.Builder{}); err == nil {
		t.Error("unknown protocol should fail")
	}
}

func TestRunKoordeSession(t *testing.T) {
	in := strings.NewReader("create a 5\njoin b a 5\nsettle\nsend a hi\nquit\n")
	out := &strings.Builder{}
	if err := run("cam-koorde", false, "", "", in, out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "[b] a: hi") {
		t.Errorf("koorde session output:\n%s", out.String())
	}
}

// safeBuffer lets the test read the REPL's output while run is still
// writing it from another goroutine.
type safeBuffer struct {
	mu sync.Mutex
	b  strings.Builder
}

func (s *safeBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *safeBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// TestRunDebugEndpoint is the -debug-addr integration test: a full run()
// with a scripted session, curled over real HTTP while the REPL is live.
// It asserts the stats route serves JSON with the expected counters and
// that pprof responds.
func TestRunDebugEndpoint(t *testing.T) {
	inR, inW := io.Pipe()
	out := &safeBuffer{}
	errc := make(chan error, 1)
	go func() { errc <- run("cam-chord", false, "", "127.0.0.1:0", inR, out) }()
	defer inW.Close()

	if _, err := io.WriteString(inW, "create alice 6\njoin bob alice 4\nsettle\nsend alice ping\n"); err != nil {
		t.Fatal(err)
	}

	// The debug line prints before the first prompt; wait for it.
	addrRE := regexp.MustCompile(`debug endpoint: http://([^/\s]+)/`)
	var base string
	deadline := time.Now().Add(5 * time.Second)
	for base == "" {
		if m := addrRE.FindStringSubmatch(out.String()); m != nil {
			base = "http://" + m[1]
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("debug endpoint line never printed:\n%s", out.String())
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Stats: poll until the scripted multicast shows up in the counters.
	var stats struct {
		Metrics camcast.MetricsSnapshot `json:"metrics"`
		Extra   camcast.CountersSnapshot
	}
	deadline = time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(base + "/debug/camcast/stats")
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			resp.Body.Close()
			t.Fatalf("stats status %d", resp.StatusCode)
		}
		err = json.NewDecoder(resp.Body).Decode(&stats)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("stats decode: %v", err)
		}
		if stats.Metrics.Counters["runtime.delivered"] >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("stats never showed the delivery: %+v", stats.Metrics.Counters)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if stats.Extra.ForwardAcked == 0 {
		t.Error("stats extra shows no acked forwards after a 2-member multicast")
	}

	var neighbors []camcast.NeighborInfo
	resp, err := http.Get(base + "/debug/camcast/neighbors")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&neighbors); err != nil {
		t.Fatalf("neighbors decode: %v", err)
	}
	resp.Body.Close()
	if len(neighbors) != 2 {
		t.Errorf("neighbors lists %d members, want 2", len(neighbors))
	}

	resp, err = http.Get(base + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("pprof cmdline status %d, want 200", resp.StatusCode)
	}

	if _, err := io.WriteString(inW, "quit\n"); err != nil {
		t.Fatal(err)
	}
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
}

// TestTCPGroupDebugHandler exercises the per-member dispatch of the TCP
// mode's debug surface directly.
func TestTCPGroupDebugHandler(t *testing.T) {
	s, _ := newTestTCPSession(t)
	exec(t, s, "create alice 6")
	exec(t, s, "join bob alice 4")
	exec(t, s, "settle")
	exec(t, s, "send alice over-tcp")

	h := s.grp.debugHandler()
	get := func(path string) (*http.Response, string) {
		t.Helper()
		req, rec := newDebugRequest(t, path)
		h.ServeHTTP(rec, req)
		res := rec.Result()
		body, _ := io.ReadAll(res.Body)
		res.Body.Close()
		return res, string(body)
	}

	res, body := get("/")
	if res.StatusCode != http.StatusOK || !strings.Contains(body, `"alice"`) || !strings.Contains(body, `"bob"`) {
		t.Errorf("index = %d %q", res.StatusCode, body)
	}
	res, body = get("/member/alice/debug/camcast/stats")
	if res.StatusCode != http.StatusOK {
		t.Fatalf("member stats status %d", res.StatusCode)
	}
	var stats struct {
		Metrics camcast.MetricsSnapshot `json:"metrics"`
	}
	if err := json.Unmarshal([]byte(body), &stats); err != nil {
		t.Fatalf("member stats decode: %v", err)
	}
	if stats.Metrics.Counters["runtime.delivered"] != 1 {
		t.Errorf("alice delivered = %d, want 1", stats.Metrics.Counters["runtime.delivered"])
	}
	if res, _ := get("/member/ghost/debug/camcast/stats"); res.StatusCode != http.StatusNotFound {
		t.Errorf("unknown member status %d, want 404", res.StatusCode)
	}
}

// TestSessionLifecycleTCP runs the same REPL flow with every member on its
// own real TCP listener.
func TestSessionLifecycleTCP(t *testing.T) {
	s, out := newTestTCPSession(t)
	exec(t, s, "create alice 6")
	exec(t, s, "join bob alice 4")
	exec(t, s, "settle")
	exec(t, s, "send bob hello tcp")
	exec(t, s, "members")
	exec(t, s, "crash bob")

	text := out.String()
	for _, want := range []string{
		"alice bootstrapped",
		"bob joined via alice",
		"bob crashed",
		"2 members",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q\n%s", want, text)
		}
	}
}
