// Command camnode is an interactive demo of the live multicast runtime: a
// REPL that manages an in-process group of members, lets any member send,
// and shows deliveries as they happen.
//
//	$ go run ./cmd/camnode
//	> create alice 6
//	> join bob alice 4
//	> join carol alice 4
//	> settle
//	> send bob hello world
//	  [alice] bob: hello world (2 hops)
//	  ...
//	> crash carol
//	> members
//	> quit
//
// Flags: -protocol cam-chord|cam-koorde (default cam-chord); -tcp hosts
// every member on its own real TCP listener (loopback sockets) instead of
// the in-process simulated transport, and -codec binary|gob selects the
// TCP wire encoding (ignored without -tcp); -debug-addr host:port serves
// the live observability endpoint (/debug/camcast/{stats,neighbors,events}
// plus net/http/pprof) while the REPL runs.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"camcast"
)

func main() {
	protocol := flag.String("protocol", "cam-chord", "cam-chord | cam-koorde")
	tcp := flag.Bool("tcp", false, "host each member on its own TCP listener instead of the in-process transport")
	codec := flag.String("codec", "", "TCP wire codec: binary (default) or gob; requires -tcp")
	debugAddr := flag.String("debug-addr", "", "serve the live debug endpoint (JSON stats, event tail, pprof) on this host:port")
	flag.Parse()
	if err := run(*protocol, *tcp, *codec, *debugAddr, os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "camnode:", err)
		os.Exit(1)
	}
}

// group abstracts the two member-hosting modes of the REPL: one in-process
// simulated network, or one real TCP transport per member.
type group interface {
	create(label string, opts camcast.Options) (camcast.Node, error)
	join(label, via string, opts camcast.Options) (camcast.Node, error)
	member(label string) (camcast.Node, error)
	labels() []string
	settle(rounds int)
	leave(label string) error
	crash(label string) error
	// Tenant-group control plane: groupCreate registers a named group
	// (optionally token-protected), groupUse switches the session's
	// member commands onto it, groupList describes every group.
	groupCreate(name, token string) error
	groupUse(name, token string) (string, error)
	groupList() []camcast.GroupInfo
	// debugHandler serves the group's live observability surface for the
	// -debug-addr endpoint.
	debugHandler() http.Handler
	close()
}

// session holds the REPL state.
type session struct {
	grp      group
	protocol camcast.Protocol
	out      io.Writer
}

func run(protocolName string, tcp bool, codec, debugAddr string, in io.Reader, out io.Writer) error {
	var protocol camcast.Protocol
	switch protocolName {
	case "cam-chord":
		protocol = camcast.CAMChord
	case "cam-koorde":
		protocol = camcast.CAMKoorde
	default:
		return fmt.Errorf("unknown protocol %q", protocolName)
	}
	if codec != "" && !tcp {
		return fmt.Errorf("-codec requires -tcp")
	}

	var grp group
	mode := "in-process"
	if tcp {
		grp = newTCPGroup(codec)
		mode = "tcp"
		if codec != "" {
			mode = "tcp, " + codec + " codec"
		}
	} else {
		grp = newMemGroup()
	}
	s := &session{grp: grp, protocol: protocol, out: out}
	defer s.grp.close()

	if debugAddr != "" {
		ln, err := net.Listen("tcp", debugAddr)
		if err != nil {
			return fmt.Errorf("-debug-addr %s: %w", debugAddr, err)
		}
		srv := &http.Server{Handler: grp.debugHandler()}
		go func() { _ = srv.Serve(ln) }()
		defer srv.Close()
		fmt.Fprintf(out, "debug endpoint: http://%s/debug/camcast/stats\n", ln.Addr())
	}

	fmt.Fprintf(out, "camnode (%s, %s) — type 'help' for commands\n", protocol, mode)
	scanner := bufio.NewScanner(in)
	for {
		fmt.Fprint(out, "> ")
		if !scanner.Scan() {
			return scanner.Err()
		}
		line := strings.TrimSpace(scanner.Text())
		if line == "" {
			continue
		}
		quit, err := s.execute(line)
		if err != nil {
			fmt.Fprintf(out, "  error: %v\n", err)
		}
		if quit {
			return nil
		}
	}
}

// execute runs one REPL command; it returns quit=true on "quit".
func (s *session) execute(line string) (quit bool, err error) {
	fields := strings.Fields(line)
	cmd, args := fields[0], fields[1:]
	switch cmd {
	case "help":
		s.help()
	case "create":
		return false, s.create(args)
	case "join":
		return false, s.join(args)
	case "leave":
		return false, s.leaveOrCrash(args, false)
	case "crash":
		return false, s.leaveOrCrash(args, true)
	case "send":
		return false, s.send(args)
	case "members":
		s.members()
	case "groups":
		s.groups()
	case "group":
		return false, s.group(args)
	case "stats":
		return false, s.stats(args)
	case "settle":
		s.grp.settle(3)
		fmt.Fprintln(s.out, "  maintenance converged")
	case "quit", "exit":
		return true, nil
	default:
		return false, fmt.Errorf("unknown command %q (try 'help')", cmd)
	}
	return false, nil
}

func (s *session) help() {
	fmt.Fprint(s.out, `  create <addr> [capacity]        start a new group
  join <addr> <via> [capacity]    join through an existing member
  leave <addr>                    graceful departure
  crash <addr>                    fail without notice
  send <addr> <text...>           multicast from a member
  members                         list members of the current group (sorted by ring id)
  groups                          list tenant groups
  group create <name> [token]     register a tenant group (token-protected if given)
  group use <name> [token]        switch member commands onto a group
  stats <addr>                    protocol counters of a member
  settle                          run maintenance to convergence
  quit                            exit
`)
}

func (s *session) options(addr string, capacity int) camcast.Options {
	return camcast.Options{
		Protocol:  s.protocol,
		Capacity:  capacity,
		Stabilize: -1, // the REPL drives maintenance via 'settle'
		Fix:       -1,
		OnDeliver: func(m camcast.Message) {
			fmt.Fprintf(s.out, "  [%s] %s: %s (%d hops)\n", addr, m.From, m.Payload, m.Hops)
		},
	}
}

func parseCapacity(args []string, idx, fallback int) (int, error) {
	if len(args) <= idx {
		return fallback, nil
	}
	c, err := strconv.Atoi(args[idx])
	if err != nil {
		return 0, fmt.Errorf("capacity %q: %w", args[idx], err)
	}
	return c, nil
}

func (s *session) create(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("usage: create <addr> [capacity]")
	}
	capacity, err := parseCapacity(args, 1, 8)
	if err != nil {
		return err
	}
	m, err := s.grp.create(args[0], s.options(args[0], capacity))
	if err != nil {
		return err
	}
	fmt.Fprintf(s.out, "  %s bootstrapped at %s (id %d, capacity %d)\n", args[0], m.Addr(), m.ID(), m.Capacity())
	return nil
}

func (s *session) join(args []string) error {
	if len(args) < 2 {
		return fmt.Errorf("usage: join <addr> <via> [capacity]")
	}
	capacity, err := parseCapacity(args, 2, 8)
	if err != nil {
		return err
	}
	m, err := s.grp.join(args[0], args[1], s.options(args[0], capacity))
	if err != nil {
		return err
	}
	s.grp.settle(2)
	fmt.Fprintf(s.out, "  %s joined via %s at %s (id %d, capacity %d)\n", args[0], args[1], m.Addr(), m.ID(), m.Capacity())
	return nil
}

func (s *session) leaveOrCrash(args []string, crash bool) error {
	if len(args) < 1 {
		return fmt.Errorf("usage: leave|crash <addr>")
	}
	if crash {
		if err := s.grp.crash(args[0]); err != nil {
			return err
		}
		fmt.Fprintf(s.out, "  %s crashed\n", args[0])
		return nil
	}
	if err := s.grp.leave(args[0]); err != nil {
		return err
	}
	fmt.Fprintf(s.out, "  %s left\n", args[0])
	return nil
}

func (s *session) send(args []string) error {
	if len(args) < 2 {
		return fmt.Errorf("usage: send <addr> <text...>")
	}
	m, err := s.grp.member(args[0])
	if err != nil {
		return err
	}
	msgID, err := m.MulticastContext(context.Background(), []byte(strings.Join(args[1:], " ")))
	if err != nil {
		return err
	}
	// Deliveries print from protocol goroutines; give them a beat so the
	// prompt returns after the output.
	time.Sleep(20 * time.Millisecond)
	fmt.Fprintf(s.out, "  message %s sent\n", msgID)
	return nil
}

func (s *session) members() {
	type row struct {
		addr string
		id   uint64
		cap  int
	}
	var rows []row
	for _, label := range s.grp.labels() {
		m, err := s.grp.member(label)
		if err != nil {
			continue
		}
		rows = append(rows, row{addr: label, id: m.ID(), cap: m.Capacity()})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].id < rows[j].id })
	for _, r := range rows {
		fmt.Fprintf(s.out, "  %-12s id=%-12d capacity=%d\n", r.addr, r.id, r.cap)
	}
	fmt.Fprintf(s.out, "  %d members\n", len(rows))
}

func (s *session) groups() {
	for _, info := range s.grp.groupList() {
		prot := ""
		if info.Protected {
			prot = " (token-protected)"
		}
		fmt.Fprintf(s.out, "  %-16s flow=%#016x members=%d%s\n", info.Name, info.Flow, info.MemberCount, prot)
	}
}

func (s *session) group(args []string) error {
	if len(args) < 2 {
		return fmt.Errorf("usage: group create|use <name> [token]")
	}
	token := ""
	if len(args) > 2 {
		token = args[2]
	}
	switch args[0] {
	case "create":
		if err := s.grp.groupCreate(args[1], token); err != nil {
			return err
		}
		fmt.Fprintf(s.out, "  group %s created\n", args[1])
		return nil
	case "use":
		name, err := s.grp.groupUse(args[1], token)
		if err != nil {
			return err
		}
		fmt.Fprintf(s.out, "  now operating in group %s\n", name)
		return nil
	}
	return fmt.Errorf("usage: group create|use <name> [token]")
}

func (s *session) stats(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("usage: stats <addr>")
	}
	m, err := s.grp.member(args[0])
	if err != nil {
		return err
	}
	st := m.Stats()
	fmt.Fprintf(s.out, "  delivered=%d forwarded=%d duplicates=%d lookups=%d table-faults=%d\n",
		st.Delivered, st.Forwarded, st.Duplicates, st.Lookups, st.TableFaults)
	fmt.Fprintf(s.out, "  acked=%d retries=%d repaired=%d lost=%d\n",
		st.ChildrenAcked, st.Retries, st.SegmentsRepaired, st.SegmentsLost)
	return nil
}

// memGroup hosts members on one in-process simulated network. Member
// commands act on cur, the tenant group selected with 'group use'
// (initially the default group).
type memGroup struct {
	net *camcast.Network
	cur *camcast.Group
}

func newMemGroup() *memGroup {
	n := camcast.NewNetwork()
	return &memGroup{net: n, cur: n.DefaultGroup()}
}

func (g *memGroup) create(label string, opts camcast.Options) (camcast.Node, error) {
	return g.cur.Create(label, opts)
}

func (g *memGroup) join(label, via string, opts camcast.Options) (camcast.Node, error) {
	return g.cur.Join(label, via, opts)
}

func (g *memGroup) member(label string) (camcast.Node, error) { return g.cur.Member(label) }

func (g *memGroup) labels() []string { return g.cur.Members() }

func (g *memGroup) debugHandler() http.Handler { return g.net.DebugHandler() }

func (g *memGroup) settle(rounds int) { g.cur.Settle(rounds) }

func (g *memGroup) leave(label string) error {
	m, err := g.cur.Member(label)
	if err != nil {
		return err
	}
	return m.Leave()
}

func (g *memGroup) crash(label string) error {
	m, err := g.cur.Member(label)
	if err != nil {
		return err
	}
	m.Crash()
	return nil
}

func (g *memGroup) groupCreate(name, token string) error {
	_, err := g.net.CreateGroup(name, camcast.GroupOptions{Token: token})
	return err
}

func (g *memGroup) groupUse(name, token string) (string, error) {
	grp, err := g.net.JoinGroup(name, token)
	if err != nil {
		return "", err
	}
	g.cur = grp
	return grp.Name(), nil
}

func (g *memGroup) groupList() []camcast.GroupInfo { return g.net.Groups() }

func (g *memGroup) close() { g.net.Close() }

// tcpGroup hosts each member on its own real TCP listener (loopback).
// Labels name members at the REPL; the transport uses the bound
// "127.0.0.1:port" addresses underneath. Tenant groups come from the same
// control plane as the in-process mode: cur selects which group new
// listeners register their flow under. The mutex covers the member map:
// the REPL goroutine mutates it while the -debug-addr HTTP server reads it.
type tcpGroup struct {
	codec string
	net   *camcast.Network
	cur   *camcast.Group

	mu      sync.Mutex
	members map[string]*camcast.TCPMember
}

func newTCPGroup(codec string) *tcpGroup {
	n := camcast.NewNetwork()
	return &tcpGroup{codec: codec, net: n, cur: n.DefaultGroup(), members: make(map[string]*camcast.TCPMember)}
}

func (g *tcpGroup) tcpOptions(opts camcast.Options) camcast.Options {
	opts.Codec = g.codec
	// Loopback members tolerate tight failure-detection windows; keep the
	// REPL snappy after a crash.
	opts.DialTimeout = 2 * time.Second
	opts.RPCTimeout = 2 * time.Second
	return opts
}

func (g *tcpGroup) lookup(label string) (*camcast.TCPMember, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	m, ok := g.members[label]
	return m, ok
}

func (g *tcpGroup) create(label string, opts camcast.Options) (camcast.Node, error) {
	if _, ok := g.lookup(label); ok {
		return nil, fmt.Errorf("member %q already exists", label)
	}
	m, err := g.cur.Listen("127.0.0.1:0", "", g.tcpOptions(opts))
	if err != nil {
		return nil, err
	}
	g.mu.Lock()
	g.members[label] = m
	g.mu.Unlock()
	return m, nil
}

func (g *tcpGroup) join(label, via string, opts camcast.Options) (camcast.Node, error) {
	if _, ok := g.lookup(label); ok {
		return nil, fmt.Errorf("member %q already exists", label)
	}
	boot, ok := g.lookup(via)
	if !ok {
		return nil, fmt.Errorf("no member %q to join through", via)
	}
	if boot.Group() != g.cur.Name() {
		return nil, fmt.Errorf("member %q is in group %q, not the current group %q", via, boot.Group(), g.cur.Name())
	}
	m, err := g.cur.Listen("127.0.0.1:0", boot.Addr(), g.tcpOptions(opts))
	if err != nil {
		return nil, err
	}
	g.mu.Lock()
	g.members[label] = m
	g.mu.Unlock()
	return m, nil
}

func (g *tcpGroup) member(label string) (camcast.Node, error) {
	m, ok := g.lookup(label)
	if !ok {
		return nil, fmt.Errorf("no such member %q", label)
	}
	return m, nil
}

func (g *tcpGroup) labels() []string {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]string, 0, len(g.members))
	for label, m := range g.members {
		if m.Group() == g.cur.Name() {
			out = append(out, label)
		}
	}
	return out
}

func (g *tcpGroup) groupCreate(name, token string) error {
	_, err := g.net.CreateGroup(name, camcast.GroupOptions{Token: token})
	return err
}

func (g *tcpGroup) groupUse(name, token string) (string, error) {
	grp, err := g.net.JoinGroup(name, token)
	if err != nil {
		return "", err
	}
	g.cur = grp
	return grp.Name(), nil
}

func (g *tcpGroup) groupList() []camcast.GroupInfo {
	// Network-level membership tracks the in-process members only; count
	// the REPL's TCP listeners per group instead so the listing reflects
	// what the user built.
	infos := g.net.Groups()
	g.mu.Lock()
	defer g.mu.Unlock()
	for i := range infos {
		n := 0
		for _, m := range g.members {
			if m.Group() == infos[i].Name {
				n++
			}
		}
		infos[i].MemberCount = n
	}
	return infos
}

func (g *tcpGroup) snapshot() []*camcast.TCPMember {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]*camcast.TCPMember, 0, len(g.members))
	for _, m := range g.members {
		out = append(out, m)
	}
	return out
}

func (g *tcpGroup) settle(rounds int) {
	members := g.snapshot()
	for r := 0; r < rounds; r++ {
		for _, m := range members {
			m.StabilizeOnce()
		}
		for _, m := range members {
			m.FixAll()
		}
	}
}

func (g *tcpGroup) leave(label string) error {
	g.mu.Lock()
	m, ok := g.members[label]
	delete(g.members, label)
	g.mu.Unlock()
	if !ok {
		return fmt.Errorf("no such member %q", label)
	}
	return m.Leave()
}

func (g *tcpGroup) crash(label string) error {
	g.mu.Lock()
	m, ok := g.members[label]
	delete(g.members, label)
	g.mu.Unlock()
	if !ok {
		return fmt.Errorf("no such member %q", label)
	}
	m.Close()
	return nil
}

// debugHandler routes the -debug-addr endpoint for the TCP mode. Every
// member runs its own bus and registry (it is its own process-equivalent),
// so the handler dispatches by label: GET / lists members, and
// /member/<label>/debug/... serves that member's full debug surface.
func (g *tcpGroup) debugHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rest, ok := strings.CutPrefix(r.URL.Path, "/member/")
		if !ok {
			labels := g.labels()
			sort.Strings(labels)
			w.Header().Set("Content-Type", "application/json")
			fmt.Fprintf(w, "{\"members\":[")
			for i, l := range labels {
				if i > 0 {
					fmt.Fprint(w, ",")
				}
				fmt.Fprintf(w, "%q", l)
			}
			fmt.Fprintf(w, "],\"hint\":\"GET /member/<label>/debug/camcast/stats\"}\n")
			return
		}
		label, _, _ := strings.Cut(rest, "/")
		m, ok := g.lookup(label)
		if !ok {
			http.NotFound(w, r)
			return
		}
		http.StripPrefix("/member/"+label, m.DebugHandler()).ServeHTTP(w, r)
	})
}

func (g *tcpGroup) close() {
	for _, m := range g.snapshot() {
		m.Close()
	}
	g.net.Close()
}
