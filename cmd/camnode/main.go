// Command camnode is an interactive demo of the live multicast runtime: a
// REPL that manages an in-process group of members, lets any member send,
// and shows deliveries as they happen.
//
//	$ go run ./cmd/camnode
//	> create alice 6
//	> join bob alice 4
//	> join carol alice 4
//	> settle
//	> send bob hello world
//	  [alice] bob: hello world (2 hops)
//	  ...
//	> crash carol
//	> members
//	> quit
//
// Flags: -protocol cam-chord|cam-koorde (default cam-chord).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"camcast"
)

func main() {
	protocol := flag.String("protocol", "cam-chord", "cam-chord | cam-koorde")
	flag.Parse()
	if err := run(*protocol, os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "camnode:", err)
		os.Exit(1)
	}
}

// session holds the REPL state.
type session struct {
	net      *camcast.Network
	protocol camcast.Protocol
	out      io.Writer
}

func run(protocolName string, in io.Reader, out io.Writer) error {
	var protocol camcast.Protocol
	switch protocolName {
	case "cam-chord":
		protocol = camcast.CAMChord
	case "cam-koorde":
		protocol = camcast.CAMKoorde
	default:
		return fmt.Errorf("unknown protocol %q", protocolName)
	}

	s := &session{net: camcast.NewNetwork(), protocol: protocol, out: out}
	defer s.net.Close()

	fmt.Fprintf(out, "camnode (%s) — type 'help' for commands\n", protocol)
	scanner := bufio.NewScanner(in)
	for {
		fmt.Fprint(out, "> ")
		if !scanner.Scan() {
			return scanner.Err()
		}
		line := strings.TrimSpace(scanner.Text())
		if line == "" {
			continue
		}
		quit, err := s.execute(line)
		if err != nil {
			fmt.Fprintf(out, "  error: %v\n", err)
		}
		if quit {
			return nil
		}
	}
}

// execute runs one REPL command; it returns quit=true on "quit".
func (s *session) execute(line string) (quit bool, err error) {
	fields := strings.Fields(line)
	cmd, args := fields[0], fields[1:]
	switch cmd {
	case "help":
		s.help()
	case "create":
		return false, s.create(args)
	case "join":
		return false, s.join(args)
	case "leave":
		return false, s.leaveOrCrash(args, false)
	case "crash":
		return false, s.leaveOrCrash(args, true)
	case "send":
		return false, s.send(args)
	case "members":
		s.members()
	case "stats":
		return false, s.stats(args)
	case "settle":
		s.net.Settle(3)
		fmt.Fprintln(s.out, "  maintenance converged")
	case "quit", "exit":
		return true, nil
	default:
		return false, fmt.Errorf("unknown command %q (try 'help')", cmd)
	}
	return false, nil
}

func (s *session) help() {
	fmt.Fprint(s.out, `  create <addr> [capacity]        start a new group
  join <addr> <via> [capacity]    join through an existing member
  leave <addr>                    graceful departure
  crash <addr>                    fail without notice
  send <addr> <text...>           multicast from a member
  members                         list members (sorted by ring id)
  stats <addr>                    protocol counters of a member
  settle                          run maintenance to convergence
  quit                            exit
`)
}

func (s *session) options(addr string, capacity int) camcast.Options {
	return camcast.Options{
		Protocol:  s.protocol,
		Capacity:  capacity,
		Stabilize: -1, // the REPL drives maintenance via 'settle'
		Fix:       -1,
		OnDeliver: func(m camcast.Message) {
			fmt.Fprintf(s.out, "  [%s] %s: %s (%d hops)\n", addr, m.From, m.Payload, m.Hops)
		},
	}
}

func parseCapacity(args []string, idx, fallback int) (int, error) {
	if len(args) <= idx {
		return fallback, nil
	}
	c, err := strconv.Atoi(args[idx])
	if err != nil {
		return 0, fmt.Errorf("capacity %q: %w", args[idx], err)
	}
	return c, nil
}

func (s *session) create(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("usage: create <addr> [capacity]")
	}
	capacity, err := parseCapacity(args, 1, 8)
	if err != nil {
		return err
	}
	m, err := s.net.Create(args[0], s.options(args[0], capacity))
	if err != nil {
		return err
	}
	fmt.Fprintf(s.out, "  %s bootstrapped (id %d, capacity %d)\n", m.Addr(), m.ID(), m.Capacity())
	return nil
}

func (s *session) join(args []string) error {
	if len(args) < 2 {
		return fmt.Errorf("usage: join <addr> <via> [capacity]")
	}
	capacity, err := parseCapacity(args, 2, 8)
	if err != nil {
		return err
	}
	m, err := s.net.Join(args[0], args[1], s.options(args[0], capacity))
	if err != nil {
		return err
	}
	s.net.Settle(2)
	fmt.Fprintf(s.out, "  %s joined via %s (id %d, capacity %d)\n", m.Addr(), args[1], m.ID(), m.Capacity())
	return nil
}

func (s *session) leaveOrCrash(args []string, crash bool) error {
	if len(args) < 1 {
		return fmt.Errorf("usage: leave|crash <addr>")
	}
	m, err := s.net.Member(args[0])
	if err != nil {
		return err
	}
	if crash {
		m.Crash()
		fmt.Fprintf(s.out, "  %s crashed\n", args[0])
		return nil
	}
	if err := m.Leave(); err != nil {
		return err
	}
	fmt.Fprintf(s.out, "  %s left\n", args[0])
	return nil
}

func (s *session) send(args []string) error {
	if len(args) < 2 {
		return fmt.Errorf("usage: send <addr> <text...>")
	}
	m, err := s.net.Member(args[0])
	if err != nil {
		return err
	}
	msgID, err := m.Multicast([]byte(strings.Join(args[1:], " ")))
	if err != nil {
		return err
	}
	// Deliveries print from protocol goroutines; give them a beat so the
	// prompt returns after the output.
	time.Sleep(20 * time.Millisecond)
	fmt.Fprintf(s.out, "  message %s sent\n", msgID)
	return nil
}

func (s *session) members() {
	type row struct {
		addr string
		id   uint64
		cap  int
	}
	var rows []row
	for _, addr := range s.net.Members() {
		m, err := s.net.Member(addr)
		if err != nil {
			continue
		}
		rows = append(rows, row{addr: addr, id: m.ID(), cap: m.Capacity()})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].id < rows[j].id })
	for _, r := range rows {
		fmt.Fprintf(s.out, "  %-12s id=%-12d capacity=%d\n", r.addr, r.id, r.cap)
	}
	fmt.Fprintf(s.out, "  %d members\n", len(rows))
}

func (s *session) stats(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("usage: stats <addr>")
	}
	m, err := s.net.Member(args[0])
	if err != nil {
		return err
	}
	st := m.Stats()
	fmt.Fprintf(s.out, "  delivered=%d forwarded=%d duplicates=%d lookups=%d table-faults=%d\n",
		st.Delivered, st.Forwarded, st.Duplicates, st.Lookups, st.TableFaults)
	fmt.Fprintf(s.out, "  acked=%d retries=%d repaired=%d lost=%d\n",
		st.ChildrenAcked, st.Retries, st.SegmentsRepaired, st.SegmentsLost)
	return nil
}
