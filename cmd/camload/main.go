// Command camload sweeps the multi-group control plane: G tenant groups of
// M members each share one in-process Network, every group multicasts, and
// the tool reports per-cell wall-clock, throughput, and delivery exactness
// in the same scale-JSON shape camchurn emits (gate: BENCH_groups.json).
//
// With -hot it additionally measures tenant fairness through the public
// API: a quiet group paces small multicasts at a fixed modest rate while a
// hot group floods, and the cell records quiet_ratio — the paced rate under
// saturation over the isolated baseline. The acceptance bar (quiet_ratio
// >= 0.9) is enforced by scripts/bench_gate.py against BENCH_groups.json.
//
// Usage:
//
//	go run ./cmd/camload -sweep 8x32,16x16 -msgs 16 -hot -json out.json
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"camcast"
)

type cell struct {
	Groups        int     `json:"groups"`
	Members       int     `json:"members"`
	Msgs          int     `json:"msgs,omitempty"`
	RampSeconds   float64 `json:"ramp_seconds"`
	WallMs        float64 `json:"wall_ms"`
	MsgsPerSec    float64 `json:"msgs_per_sec,omitempty"`
	MeanDelivery  float64 `json:"mean_delivery"`
	DeliveryExact float64 `json:"delivery_exact"`
	QuietRatio    float64 `json:"quiet_ratio,omitempty"`
}

type doc struct {
	Format  string           `json:"format"`
	Command string           `json:"command"`
	Cells   map[string]*cell `json:"cells"`
}

func main() {
	sweep := flag.String("sweep", "8x32", "comma-separated GxM cells (groups x members per group)")
	msgs := flag.Int("msgs", 16, "multicasts per group in the throughput phase")
	hot := flag.Bool("hot", false, "also measure quiet-vs-hot tenant fairness per cell")
	jsonOut := flag.String("json", "", "write scale-format JSON to this path ('-' for stdout)")
	flag.Parse()

	out := &doc{
		Format:  "scale",
		Command: strings.Join(os.Args, " "),
		Cells:   map[string]*cell{},
	}
	ok := true
	for _, spec := range strings.Split(*sweep, ",") {
		var g, m int
		if _, err := fmt.Sscanf(strings.TrimSpace(spec), "%dx%d", &g, &m); err != nil || g < 1 || m < 1 {
			fatalf("bad -sweep cell %q (want GxM, e.g. 8x32)", spec)
		}
		c, err := runCell(g, m, *msgs)
		if err != nil {
			fatalf("cell %dx%d: %v", g, m, err)
		}
		out.Cells[fmt.Sprintf("groups/mem/%dx%d", g, m)] = c
		fmt.Fprintf(os.Stderr, "groups/mem/%dx%d: ramp %.3fs, %d msgs in %.1fms (%.0f msg/s), delivery %.4f\n",
			g, m, c.RampSeconds, g**msgs, c.WallMs, c.MsgsPerSec, c.MeanDelivery)
		if c.DeliveryExact != 1 {
			ok = false
		}
		if *hot {
			h, err := runHotCell(g, m)
			if err != nil {
				fatalf("hot cell %dx%d: %v", g, m, err)
			}
			out.Cells[fmt.Sprintf("hot/mem/%dx%d", g, m)] = h
			fmt.Fprintf(os.Stderr, "hot/mem/%dx%d: quiet_ratio %.2f\n", g, m, h.QuietRatio)
		}
	}

	if *jsonOut != "" {
		w := os.Stdout
		if *jsonOut != "-" {
			f, err := os.Create(*jsonOut)
			if err != nil {
				fatalf("%v", err)
			}
			defer f.Close()
			w = f
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", " ")
		if err := enc.Encode(out); err != nil {
			fatalf("%v", err)
		}
	}
	if !ok {
		fatalf("at least one group missed exactly-once delivery")
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "camload: "+format+"\n", args...)
	os.Exit(1)
}

// buildGroups stands up G groups of M members each on net. counts[i]
// accumulates deliveries observed by group i's members.
func buildGroups(net *camcast.Network, groups, members int, counts []atomic.Int64) ([]*camcast.Group, error) {
	gs := make([]*camcast.Group, groups)
	for i := 0; i < groups; i++ {
		g, err := net.CreateGroup(fmt.Sprintf("tenant-%03d", i), camcast.GroupOptions{})
		if err != nil {
			return nil, err
		}
		gs[i] = g
		count := &counts[i]
		opts := camcast.Options{
			Protocol:  camcast.CAMChord,
			Capacity:  4,
			Stabilize: -1,
			Fix:       -1,
			OnDeliver: func(camcast.Message) { count.Add(1) },
		}
		for j := 0; j < members; j++ {
			addr := fmt.Sprintf("m%03d", j)
			var err error
			if j == 0 {
				_, err = g.Create(addr, opts)
			} else {
				_, err = g.Join(addr, "m000", opts)
			}
			if err != nil {
				return nil, err
			}
			g.Settle(1)
		}
		g.Settle(3)
	}
	return gs, nil
}

// runCell measures the multi-tenant throughput cell: every group multicasts
// msgs times round-robin, and every message must reach exactly the sending
// group's members — nothing fewer, nothing more, nothing cross-tenant.
func runCell(groups, members, msgs int) (*cell, error) {
	net := camcast.NewNetwork()
	defer net.Close()
	counts := make([]atomic.Int64, groups)

	rampStart := time.Now()
	gs, err := buildGroups(net, groups, members, counts)
	if err != nil {
		return nil, err
	}
	ramp := time.Since(rampStart)

	senders := make([]*camcast.Member, groups)
	for i, g := range gs {
		if senders[i], err = g.Member("m000"); err != nil {
			return nil, err
		}
	}
	start := time.Now()
	ctx := context.Background()
	for round := 0; round < msgs; round++ {
		for i, s := range senders {
			if _, err := s.MulticastContext(ctx, []byte("load")); err != nil {
				return nil, fmt.Errorf("group %d round %d: %w", i, round, err)
			}
		}
	}
	wall := time.Since(start)

	want := int64(msgs * members)
	var delivered int64
	exact := 1.0
	for i := range counts {
		got := counts[i].Load()
		delivered += got
		if got != want {
			exact = 0
			fmt.Fprintf(os.Stderr, "camload: group %d delivered %d, want %d\n", i, got, want)
		}
	}
	total := float64(msgs * groups)
	return &cell{
		Groups:        groups,
		Members:       members,
		Msgs:          msgs,
		RampSeconds:   ramp.Seconds(),
		WallMs:        float64(wall.Microseconds()) / 1000,
		MsgsPerSec:    total / wall.Seconds(),
		MeanDelivery:  float64(delivered) / float64(want*int64(groups)),
		DeliveryExact: exact,
	}, nil
}

// runHotCell measures fairness between two tenants on a fresh network of
// the same member scale: the quiet group paces one small multicast per
// 2ms; the hot group floods fat payloads from several goroutines. The
// ratio is paced-sends-landed-per-second under saturation over the same
// measurement with no flood running.
func runHotCell(groups, members int) (*cell, error) {
	if groups < 2 {
		return nil, fmt.Errorf("fairness needs at least 2 groups")
	}
	const (
		pace   = 2 * time.Millisecond
		window = 400 * time.Millisecond
	)
	run := func(saturate bool) (float64, error) {
		net := camcast.NewNetwork()
		defer net.Close()
		counts := make([]atomic.Int64, 2)
		gs, err := buildGroups(net, 2, members, counts)
		if err != nil {
			return 0, err
		}
		quietSrc, err := gs[0].Member("m000")
		if err != nil {
			return 0, err
		}
		hotSrc, err := gs[1].Member("m000")
		if err != nil {
			return 0, err
		}

		stop := make(chan struct{})
		var wg sync.WaitGroup
		if saturate {
			payload := make([]byte, 32<<10)
			for w := 0; w < 4; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						select {
						case <-stop:
							return
						default:
						}
						_, _ = hotSrc.MulticastContext(context.Background(), payload)
					}
				}()
			}
			time.Sleep(100 * time.Millisecond)
		}

		start := time.Now()
		deadline := start.Add(window)
		sent := 0
		for time.Now().Before(deadline) {
			if _, err := quietSrc.MulticastContext(context.Background(), []byte("tick")); err != nil {
				return 0, err
			}
			sent++
			time.Sleep(time.Until(start.Add(time.Duration(sent) * pace)))
		}
		elapsed := time.Since(start)
		close(stop)
		wg.Wait()
		if got := counts[0].Load(); got != int64(sent*members) {
			return 0, fmt.Errorf("quiet group delivered %d of %d", got, sent*members)
		}
		return float64(sent) / elapsed.Seconds(), nil
	}

	baseline, err := run(false)
	if err != nil {
		return nil, err
	}
	// Best of three loaded runs: the bar is sustained starvation, not
	// one noisy scheduler quantum.
	var best float64
	for attempt := 0; attempt < 3; attempt++ {
		rate, err := run(true)
		if err != nil {
			return nil, err
		}
		if rate > best {
			best = rate
		}
		if best >= 0.95*baseline {
			break
		}
	}
	return &cell{
		Groups:        groups,
		Members:       members,
		MeanDelivery:  1,
		DeliveryExact: 1,
		QuietRatio:    best / baseline,
	}, nil
}
