// Command camfigs regenerates the figures of the paper's evaluation
// (Section 6) as TSV series.
//
// Usage:
//
//	camfigs [-fig all|figure6,figure8,...] [-n 100000] [-sources 3]
//	        [-seed 1] [-bits 19] [-out DIR] [-parallel 0]
//	        [-cpuprofile FILE] [-memprofile FILE]
//
// With -out, each figure is written to DIR/<name>.tsv; otherwise all series
// stream to stdout. The defaults reproduce the paper's setup: 100,000
// members on a 2^19 identifier ring, bandwidths U[400,1000] kbps.
//
// Figures run on the parallel experiment engine: -parallel bounds the
// worker pool (0 = one worker per CPU, 1 = sequential) and the output is
// byte-identical for every value. A multi-figure run builds each population
// only once and shares it across figures. -cpuprofile/-memprofile write
// pprof profiles of the run for performance work.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"

	"camcast/internal/experiments"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "camfigs:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("camfigs", flag.ContinueOnError)
	var (
		figs    = fs.String("fig", "all", "comma-separated figure/ablation names, \"all\" (paper figures), or \"ablations\"")
		n       = fs.Int("n", 100000, "multicast group size")
		sources = fs.Int("sources", 3, "multicast sources averaged per data point")
		seed    = fs.Int64("seed", 1, "RNG seed")
		bits    = fs.Uint("bits", 19, "identifier space width in bits")
		outDir  = fs.String("out", "", "directory to write <figure>.tsv files (default: stdout)")
		par     = fs.Int("parallel", 0, "grid points measured concurrently (0 = one worker per CPU, 1 = sequential)")
		cpuProf = fs.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memProf = fs.String("memprofile", "", "write a heap profile at the end of the run to this file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintln(os.Stderr, "camfigs: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "camfigs: memprofile:", err)
			}
		}()
	}

	lookup := func(name string) func(experiments.Config) (experiments.FigureResult, error) {
		if fn := experiments.All[name]; fn != nil {
			return fn
		}
		return experiments.Ablations[name]
	}

	var names []string
	switch *figs {
	case "all":
		names = experiments.FigureNames
	case "ablations":
		names = experiments.AblationNames
	default:
		for _, name := range strings.Split(*figs, ",") {
			name = strings.TrimSpace(name)
			if lookup(name) == nil {
				return fmt.Errorf("unknown figure %q (known: %s; %s)", name,
					strings.Join(experiments.FigureNames, ", "),
					strings.Join(experiments.AblationNames, ", "))
			}
			names = append(names, name)
		}
	}

	cfg := experiments.Config{N: *n, Sources: *sources, Seed: *seed, Bits: *bits, Parallelism: *par}
	for _, name := range names {
		fmt.Fprintf(os.Stderr, "camfigs: generating %s (n=%d, sources=%d)...\n", name, cfg.N, cfg.Sources)
		res, err := lookup(name)(cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		if *outDir == "" {
			fmt.Fprintln(stdout, res.TSV())
			continue
		}
		path := filepath.Join(*outDir, name+".tsv")
		if err := os.WriteFile(path, []byte(res.TSV()), 0o644); err != nil {
			return fmt.Errorf("write %s: %w", path, err)
		}
		fmt.Fprintf(os.Stderr, "camfigs: wrote %s\n", path)
	}
	return nil
}
