package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"camcast/internal/experiments"
)

func TestRunSingleFigureToStdout(t *testing.T) {
	out := &strings.Builder{}
	err := run([]string{"-fig", "figure11", "-n", "400", "-sources", "1", "-bits", "11"}, out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "# figure11") || !strings.Contains(out.String(), "# CAM-Chord") {
		t.Errorf("output missing figure series:\n%.300s", out.String())
	}
}

func TestRunAblationToFile(t *testing.T) {
	dir := t.TempDir()
	err := run([]string{"-fig", "ablation-shift", "-n", "400", "-sources", "1", "-bits", "11", "-out", dir}, &strings.Builder{})
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "ablation-shift.tsv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "right-shift") {
		t.Error("written TSV missing series")
	}
}

func TestRunSharesPopulationAcrossFigures(t *testing.T) {
	// Figures 6, 8, and 11 all run over the paper-default membership; a
	// multi-figure invocation must generate it once, not once per figure.
	experiments.ResetCaches()
	defer experiments.ResetCaches()
	err := run([]string{"-fig", "figure6,figure8,figure11", "-n", "400", "-sources", "1", "-bits", "11"}, &strings.Builder{})
	if err != nil {
		t.Fatal(err)
	}
	if got := experiments.PopulationBuilds(); got != 1 {
		t.Errorf("three default-population figures built %d populations, want 1", got)
	}
}

func TestRunUnknownFigure(t *testing.T) {
	if err := run([]string{"-fig", "figure99"}, &strings.Builder{}); err == nil {
		t.Error("unknown figure should fail")
	}
}

func TestRunBadFlags(t *testing.T) {
	if err := run([]string{"-definitely-not-a-flag"}, &strings.Builder{}); err == nil {
		t.Error("bad flag should fail")
	}
}
