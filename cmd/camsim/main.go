// Command camsim runs one multicast simulation and prints the measured tree
// metrics: average path length, depth histogram, average children, and the
// sustainable throughput under the paper's bandwidth-allocation model.
//
// Usage:
//
//	camsim [-system cam-chord|cam-koorde|chord|koorde] [-n 100000]
//	       [-bits 19] [-sources 3] [-seed 1] [-parallel 0]
//	       [-bw-lo 400] [-bw-hi 1000]
//	       [-p 100 | -cap-lo 4 -cap-hi 10 | -degree 7]
//
// Capacity selection: -p derives capacities from bandwidth (c = ceil(B/p));
// otherwise capacities are uniform in [-cap-lo, -cap-hi]. The baselines
// (chord, koorde) ignore capacities and use -degree. -parallel spreads the
// per-source simulations over a worker pool (0 = one worker per CPU, 1 =
// sequential); the reported metrics are identical for every value.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"camcast/internal/camchord"
	"camcast/internal/camkoorde"
	"camcast/internal/experiments"
	"camcast/internal/ring"
	"camcast/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "camsim:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("camsim", flag.ContinueOnError)
	var (
		system  = fs.String("system", "cam-chord", "cam-chord | cam-koorde | chord | koorde")
		n       = fs.Int("n", 100000, "multicast group size")
		bits    = fs.Uint("bits", 19, "identifier space width in bits")
		sources = fs.Int("sources", 3, "number of multicast sources to average")
		seed    = fs.Int64("seed", 1, "RNG seed")
		bwLo    = fs.Float64("bw-lo", workload.DefaultBandwidthLo, "lowest upload bandwidth (kbps)")
		bwHi    = fs.Float64("bw-hi", workload.DefaultBandwidthHi, "highest upload bandwidth (kbps)")
		p       = fs.Float64("p", 0, "per-link bandwidth target; derives capacities c=ceil(B/p)")
		capLo   = fs.Int("cap-lo", workload.DefaultCapacityLo, "lowest capacity (uniform mode)")
		capHi   = fs.Int("cap-hi", workload.DefaultCapacityHi, "highest capacity (uniform mode)")
		degree  = fs.Int("degree", 7, "uniform degree for the chord/koorde baselines")
		par     = fs.Int("parallel", 0, "sources simulated concurrently (0 = one worker per CPU, 1 = sequential)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var sys experiments.System
	switch strings.ToLower(*system) {
	case "cam-chord":
		sys = experiments.SystemCAMChord
	case "cam-koorde":
		sys = experiments.SystemCAMKoorde
	case "chord":
		sys = experiments.SystemChord
	case "koorde":
		sys = experiments.SystemKoorde
	default:
		return fmt.Errorf("unknown system %q", *system)
	}

	space, err := ring.NewSpace(*bits)
	if err != nil {
		return err
	}
	wcfg := workload.Config{
		Space:       space,
		N:           *n,
		Seed:        *seed,
		BandwidthLo: *bwLo,
		BandwidthHi: *bwHi,
		Mode:        workload.CapacityUniform,
		CapacityLo:  *capLo,
		CapacityHi:  *capHi,
	}
	pop, err := experiments.NewPopulation(wcfg)
	if err != nil {
		return err
	}

	caps := pop.Caps
	if *p > 0 {
		minCap := camchord.MinCapacity
		if sys == experiments.SystemCAMKoorde {
			minCap = camkoorde.MinCapacity
		}
		caps = pop.CapsFromBandwidth(*p, minCap)
	}
	provision := caps
	if sys == experiments.SystemChord || sys == experiments.SystemKoorde {
		provision = pop.UniformCaps(*degree)
	}

	builder, err := experiments.NewOverlay(sys, pop, caps, *degree)
	if err != nil {
		return err
	}
	srcList := experiments.PickSources(pop.Ring.Len(), *sources, *seed+1000)
	m, err := experiments.MeasureTreesParallel(builder, pop.Bandwidth, provision, srcList, *par)
	if err != nil {
		return err
	}

	fmt.Fprintf(w, "system:            %s\n", sys)
	fmt.Fprintf(w, "members:           %d (identifier space 2^%d)\n", *n, *bits)
	fmt.Fprintf(w, "sources averaged:  %d\n", *sources)
	fmt.Fprintf(w, "avg path length:   %.2f hops\n", m.AvgPathLength)
	fmt.Fprintf(w, "max depth:         %.1f hops\n", m.MaxDepth)
	fmt.Fprintf(w, "avg children:      %.2f per non-leaf node\n", m.AvgChildren)
	fmt.Fprintf(w, "throughput:        %.1f kbps (min allocated link bandwidth)\n", m.Throughput)
	fmt.Fprintf(w, "depth histogram:\n")
	for bin := 0; bin < m.DepthHist.Bins(); bin++ {
		if c := m.DepthHist.Count(bin); c > 0 {
			fmt.Fprintf(w, "  %3d hops: %.0f nodes\n", bin, c)
		}
	}
	return nil
}
