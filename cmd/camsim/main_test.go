package main

import (
	"strings"
	"testing"
)

func TestRunCAMChord(t *testing.T) {
	out := &strings.Builder{}
	err := run([]string{"-system", "cam-chord", "-n", "500", "-bits", "12", "-sources", "1", "-p", "100"}, out)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"system:", "CAM-Chord", "avg path length:", "throughput:", "depth histogram:"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunBaselineKoorde(t *testing.T) {
	out := &strings.Builder{}
	err := run([]string{"-system", "koorde", "-n", "300", "-bits", "11", "-sources", "1", "-degree", "6"}, out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Koorde") {
		t.Error("output missing system name")
	}
}

func TestRunUnknownSystem(t *testing.T) {
	if err := run([]string{"-system", "bogus"}, &strings.Builder{}); err == nil {
		t.Error("unknown system should fail")
	}
}

func TestRunBadBits(t *testing.T) {
	if err := run([]string{"-bits", "99"}, &strings.Builder{}); err == nil {
		t.Error("bad bits should fail")
	}
}
