// Command camchurn evaluates the live runtime under membership churn,
// sweeping the maintenance budget (slow -> fast churn) for both CAM systems
// and printing delivery ratio, ring health and repair effort. It is the
// dynamic counterpart of cmd/camfigs and probes the paper's closing claim
// that the two systems favor different churn regimes.
//
// Usage:
//
//	camchurn [-initial 48] [-events 150] [-join 0.5] [-crash 0.5]
//	         [-cap-lo 4] [-cap-hi 10] [-seed 1]
//	         [-transport mem|tcp] [-codec binary|gob]
//	         [-debug-addr host:port]
//	camchurn -live 1000,10000,100000 [-mode cam-chord] [-shards 0]
//	         [-live-groups 1] [-ramp bulk|join] [-churn 0] [-probes 0]
//	         [-transport mem|tcp] [-json BENCH_scale.json]
//	         [-min-ring 0.99] [-min-delivery 0.95]
//	camchurn -scenarios
//	camchurn -scenario <name> [-mode cam-chord|cam-koorde|both] [-seed 1]
//	         [-record log.ndjson]
//	camchurn -replay log.ndjson
//
// -debug-addr serves the live observability endpoint while the sweep runs:
// /debug/camcast/stats (JSON metric snapshots across all runs so far),
// /debug/camcast/events (streaming NDJSON event tail), and net/http/pprof.
//
// -scenario runs one named composite failure from the scenario library
// instead of the budget sweep, checking the run against the scenario's
// delivery expectations. -record captures the run's full input schedule to
// a replay log (one cluster per log, so it needs a single -mode). -replay
// re-executes a recorded log twice in the deterministic replay engine and
// requires both replays to agree exactly.
//
// -live runs the scale sweep instead: for each member count it hosts the
// whole membership in this process with maintenance driven by the sharded
// scheduler (no per-member goroutines; virtual time on the mem transport),
// ramps up, churns with probe multicasts, and reports exact join/leave/
// multicast latency percentiles plus goroutine and bytes-per-member
// footprints. -json writes the results as BENCH_scale.json cells for
// scripts/bench_gate.py; -min-ring / -min-delivery turn the run into a
// pass/fail smoke check for CI.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"strings"
	"text/tabwriter"

	"camcast/internal/churnsim"
	"camcast/internal/obsv"
	"camcast/internal/replay"
	"camcast/internal/runtime"
	"camcast/internal/scenario"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "camchurn:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("camchurn", flag.ContinueOnError)
	var (
		initial = fs.Int("initial", 48, "members before churn starts")
		events  = fs.Int("events", 150, "membership events")
		join    = fs.Float64("join", 0.5, "fraction of events that are joins")
		crash   = fs.Float64("crash", 0.5, "fraction of departures that are crashes")
		capLo   = fs.Int("cap-lo", 4, "lowest member capacity")
		capHi   = fs.Int("cap-hi", 10, "highest member capacity")
		seed    = fs.Int64("seed", 1, "RNG seed")
		trans   = fs.String("transport", "mem", "member transport: mem (in-process simulated network) or tcp (one loopback listener per member)")
		codec   = fs.String("codec", "", "wire codec for -transport tcp: binary (default) or gob")
		debug   = fs.String("debug-addr", "", "serve the live debug endpoint (JSON stats, event tail, pprof) on this host:port")

		scen     = fs.String("scenario", "", "run this named failure scenario instead of the budget sweep (see -scenarios)")
		listScen = fs.Bool("scenarios", false, "list the failure-scenario library and exit")
		mode     = fs.String("mode", "both", "protocol mode for -scenario and -live: cam-chord, cam-koorde or both")
		record   = fs.String("record", "", "with -scenario: write the run's replay log to this file (needs a single -mode)")
		replayIn = fs.String("replay", "", "replay a recorded log twice and require the replays to agree; ignores other flags")

		live       = fs.String("live", "", "run the live scale sweep at these comma-separated member counts (e.g. 1000,10000,100000) instead of the budget sweep")
		liveGroups = fs.Int("live-groups", 1, "with -live: partition the membership across this many tenant flows (independent overlays multiplexed over one transport)")
		shards     = fs.Int("shards", 0, "with -live: scheduler shard count (0 = GOMAXPROCS)")
		ramp       = fs.String("ramp", "", "with -live: initial-membership construction, bulk (sorted-array install, default) or join (incremental)")
		churn      = fs.Int("churn", 0, "with -live: membership events after the ramp (0 = scaled default)")
		probes     = fs.Int("probes", 0, "with -live: measurement multicasts across churn (0 = default 20)")
		jsonOut    = fs.String("json", "", "with -live: write results as BENCH_scale.json cells to this file")
		minRing    = fs.Float64("min-ring", 0, "with -live: fail unless final ring correctness reaches this fraction")
		minDlv     = fs.Float64("min-delivery", 0, "with -live: fail unless mean probe delivery reaches this fraction")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	switch {
	case *listScen:
		return runListScenarios(out)
	case *replayIn != "":
		return runReplay(*replayIn, out)
	case *scen != "":
		return runScenario(*scen, *mode, *seed, *record, out)
	case *record != "":
		return fmt.Errorf("-record needs -scenario")
	case *live != "":
		modes, err := scenarioModes(*mode)
		if err != nil {
			return err
		}
		return runLiveSweep(liveSweepConfig{
			spec: *live, modes: modes, transport: *trans, shards: *shards,
			groups: *liveGroups, ramp: *ramp, churn: *churn, probes: *probes,
			capLo: *capLo, capHi: *capHi, seed: *seed,
			jsonOut: *jsonOut, minRing: *minRing, minDelivery: *minDlv,
		}, out)
	}

	// One bus and registry span the whole sweep, so the debug endpoint
	// shows the aggregate picture as runs accumulate.
	var (
		bus *obsv.Bus
		reg *obsv.Registry
	)
	if *debug != "" {
		bus = obsv.NewBus()
		reg = obsv.NewRegistry()
		srv, addr, err := obsv.Debug{Registry: reg, Bus: bus}.ListenAndServe(*debug)
		if err != nil {
			return fmt.Errorf("-debug-addr %s: %w", *debug, err)
		}
		defer srv.Close()
		fmt.Fprintf(out, "debug endpoint: http://%s/debug/camcast/stats\n", addr)
	}

	fmt.Fprintf(out, "churn: %d initial members, %d events (%.0f%% joins, %.0f%% of departures crash), capacities [%d..%d], transport %s\n\n",
		*initial, *events, *join*100, *crash*100, *capLo, *capHi, *trans)

	w := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "system\tmaintenance budget\tmean delivery\tmin delivery\tring correct\tjoin ms p50/p95/p99\tleave ms p50/p95/p99\tmcast ms p50/p95/p99\tlookup hops p50/p95/p99\ttable faults\tduplicates\tretries\trepaired\tlost")
	for _, mode := range []runtime.Mode{runtime.ModeCAMChord, runtime.ModeCAMKoorde} {
		for _, budget := range []int{4, 2, 1, 0} {
			// Latency percentiles come from the run's obsv histograms:
			// each row gets a fresh registry so the quantiles are per-run,
			// unless a debug endpoint spans the sweep (then the shared
			// registry accumulates and the columns read cumulatively).
			rowReg := reg
			if rowReg == nil {
				rowReg = obsv.NewRegistry()
			}
			res, err := churnsim.Run(churnsim.Config{
				Mode:              mode,
				Initial:           *initial,
				Events:            *events,
				JoinFrac:          *join,
				FailFrac:          *crash,
				CapacityLo:        *capLo,
				CapacityHi:        *capHi,
				Seed:              *seed,
				MaintenanceBudget: budget,
				Transport:         *trans,
				Codec:             *codec,
				Bus:               bus,
				Metrics:           rowReg,
			})
			if err != nil {
				return fmt.Errorf("%v budget %d: %w", mode, budget, err)
			}
			label := fmt.Sprintf("%d rounds/event", budget)
			if budget == 0 {
				label = "none (fastest churn)"
			}
			hists := rowReg.Snapshot().Histograms
			fmt.Fprintf(w, "%v\t%s\t%.1f%%\t%.1f%%\t%.0f%%\t%s\t%s\t%s\t%s\t%d\t%d\t%d\t%d\t%d\n",
				mode, label, res.MeanDelivery*100, res.MinDelivery*100,
				res.RingCorrect*100,
				quantileTriple(hists[obsv.MetricJoinTime]),
				quantileTriple(hists[obsv.MetricLeaveTime]),
				quantileTriple(hists[obsv.MetricMulticastTime]),
				hopsTriple(hists[obsv.MetricLookupHops]),
				res.TableFaults, res.Duplicates,
				res.Retries, res.SegmentsRepaired, res.SegmentsLost)
		}
	}
	return w.Flush()
}

// quantileTriple renders a latency histogram as "p50/p95/p99" in
// milliseconds. Histogram quantiles are bucket upper bounds; observations
// past the last bucket render as ">5e3".
func quantileTriple(h obsv.HistogramSnapshot) string {
	if h.Count == 0 {
		return "-"
	}
	one := func(q float64) string {
		v := h.Quantile(q)
		if math.IsInf(v, 1) {
			if len(h.Bounds) == 0 {
				return "inf"
			}
			return fmt.Sprintf(">%.3g", h.Bounds[len(h.Bounds)-1]*1e3)
		}
		return fmt.Sprintf("%.3g", v*1e3)
	}
	return one(0.50) + "/" + one(0.95) + "/" + one(0.99)
}

// hopsTriple renders the lookup hop-count histogram as "p50/p95/p99" hops
// (counts, not milliseconds). Overflow observations clamp to the last
// bucket bound, which sits past the runtime's hop budget.
func hopsTriple(h obsv.HistogramSnapshot) string {
	if h.Count == 0 {
		return "-"
	}
	return fmt.Sprintf("%.0f/%.0f/%.0f",
		h.BoundedQuantile(0.50), h.BoundedQuantile(0.95), h.BoundedQuantile(0.99))
}

// liveSweepConfig carries the -live flags into runLiveSweep.
type liveSweepConfig struct {
	spec         string
	modes        []runtime.Mode
	transport    string
	shards       int
	groups       int
	ramp         string
	churn        int
	probes       int
	capLo, capHi int
	seed         int64
	jsonOut      string
	minRing      float64
	minDelivery  float64
}

// scaleDoc is the BENCH_scale.json shape consumed by scripts/bench_gate.py
// ("scale" format): one cell per transport/mode/members combination.
type scaleDoc struct {
	Format string                         `json:"format"`
	Cells  map[string]churnsim.LiveResult `json:"cells"`
}

// runLiveSweep hosts each requested membership size in-process with
// scheduler-driven maintenance and reports latency percentiles and
// footprints, optionally writing BENCH_scale.json cells and enforcing
// ring/delivery floors.
func runLiveSweep(cfg liveSweepConfig, out io.Writer) error {
	var sizes []int
	for _, part := range strings.Split(cfg.spec, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 2 {
			return fmt.Errorf("-live %q: want comma-separated member counts >= 2", cfg.spec)
		}
		sizes = append(sizes, n)
	}

	doc := scaleDoc{Format: "scale", Cells: make(map[string]churnsim.LiveResult)}
	w := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "system\tmembers\tjoin ms p50/p95/p99\tleave ms p50/p95/p99\tmcast ms p50/p95/p99\tlookup hops p50/p95/p99\tmean delivery\tmin delivery\tring correct\tgoroutines\tB/member\tramp s\tchurn s")
	var failures []string
	for _, mode := range cfg.modes {
		for _, members := range sizes {
			res, err := churnsim.RunLive(churnsim.LiveConfig{
				Mode:        mode,
				Members:     members,
				Transport:   cfg.transport,
				Groups:      cfg.groups,
				Shards:      cfg.shards,
				Ramp:        cfg.ramp,
				ChurnEvents: cfg.churn,
				Probes:      cfg.probes,
				CapacityLo:  cfg.capLo,
				CapacityHi:  cfg.capHi,
				Seed:        cfg.seed,
				// A fresh registry per cell keeps the lookup-hops quantiles
				// (and any future histogram-derived cell fields) per-run.
				Metrics: obsv.NewRegistry(),
				Log:     os.Stderr,
			})
			if err != nil {
				return fmt.Errorf("%v live %d: %w", mode, members, err)
			}
			key := fmt.Sprintf("%s/%s/%d", cfg.transport, mode, members)
			if cfg.groups > 1 {
				// Multi-tenant cells carry the group count so they never
				// collide with (or gate against) the single-overlay cells.
				key += fmt.Sprintf("/g%d", cfg.groups)
			}
			doc.Cells[key] = res
			fmt.Fprintf(w, "%v\t%d\t%.3g/%.3g/%.3g\t%.3g/%.3g/%.3g\t%.3g/%.3g/%.3g\t%.0f/%.0f/%.0f\t%.1f%%\t%.1f%%\t%.1f%%\t%d\t%.0f\t%.0f\t%.0f\n",
				mode, members,
				res.JoinP50Ms, res.JoinP95Ms, res.JoinP99Ms,
				res.LeaveP50Ms, res.LeaveP95Ms, res.LeaveP99Ms,
				res.McastP50Ms, res.McastP95Ms, res.McastP99Ms,
				res.LookupHopsP50, res.LookupHopsP95, res.LookupHopsP99,
				res.MeanDelivery*100, res.MinDelivery*100, res.RingCorrect*100,
				res.Goroutines, res.BytesPerMember, res.RampSeconds, res.ChurnSeconds)
			if cfg.minRing > 0 && res.RingCorrect < cfg.minRing {
				failures = append(failures, fmt.Sprintf("%v/%d: ring correctness %.3f < %.3f", mode, members, res.RingCorrect, cfg.minRing))
			}
			if cfg.minDelivery > 0 && res.MeanDelivery < cfg.minDelivery {
				failures = append(failures, fmt.Sprintf("%v/%d: mean delivery %.3f < %.3f", mode, members, res.MeanDelivery, cfg.minDelivery))
			}
		}
	}
	if err := w.Flush(); err != nil {
		return err
	}
	if cfg.jsonOut != "" {
		data, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(cfg.jsonOut, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(out, "\nwrote %d cells to %s\n", len(doc.Cells), cfg.jsonOut)
	}
	if len(failures) > 0 {
		return fmt.Errorf("live sweep floors violated:\n  %s", strings.Join(failures, "\n  "))
	}
	return nil
}

// runListScenarios prints the failure-scenario library.
func runListScenarios(out io.Writer) error {
	w := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "scenario\tmin mean\tmin last\tdescription")
	for _, s := range scenario.All() {
		fmt.Fprintf(w, "%s\t%.0f%%\t%.0f%%\t%s\n", s.Name, s.MinMean*100, s.MinLast*100, s.Description)
	}
	return w.Flush()
}

// scenarioModes resolves the -mode flag for -scenario runs.
func scenarioModes(mode string) ([]runtime.Mode, error) {
	switch mode {
	case "both":
		return []runtime.Mode{runtime.ModeCAMChord, runtime.ModeCAMKoorde}, nil
	case runtime.ModeCAMChord.String():
		return []runtime.Mode{runtime.ModeCAMChord}, nil
	case runtime.ModeCAMKoorde.String():
		return []runtime.Mode{runtime.ModeCAMKoorde}, nil
	}
	return nil, fmt.Errorf("-mode %q: want cam-chord, cam-koorde or both", mode)
}

// runScenario executes one named scenario live, optionally recording its
// replay log, and reports the measured delivery against the scenario's
// expectations. The command fails if any mode misses them.
func runScenario(name, mode string, seed int64, record string, out io.Writer) error {
	s, err := scenario.Get(name)
	if err != nil {
		return err
	}
	modes, err := scenarioModes(mode)
	if err != nil {
		return err
	}
	var rec io.Writer
	if record != "" {
		if len(modes) != 1 {
			return fmt.Errorf("-record captures one cluster per log: pick -mode cam-chord or cam-koorde")
		}
		f, err := os.Create(record)
		if err != nil {
			return err
		}
		defer f.Close()
		rec = f
	}

	fmt.Fprintf(out, "scenario %s (seed %d): %s\n\n", s.Name, seed, s.Description)
	w := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "system\tmean delivery\tmin delivery\tpost-recovery\tring correct\tcheck")
	var failed error
	for _, m := range modes {
		res, err := scenario.Run(s, m, seed, rec)
		verdict := "pass"
		if err != nil {
			verdict = err.Error()
			failed = fmt.Errorf("scenario %s did not meet its expectations", s.Name)
		}
		last := 0.0
		if len(res.DeliveryRatios) > 0 {
			last = res.DeliveryRatios[len(res.DeliveryRatios)-1]
		}
		fmt.Fprintf(w, "%v\t%.1f%%\t%.1f%%\t%.1f%%\t%.0f%%\t%s\n",
			m, res.MeanDelivery*100, res.MinDelivery*100, last*100, res.RingCorrect*100, verdict)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	if record != "" {
		fmt.Fprintf(out, "\nreplay log: %s\n", record)
	}
	return failed
}

// runReplay re-executes a recorded log twice through the deterministic
// replay engine, requires both replays to agree exactly, and summarizes
// what the replayed cluster did.
func runReplay(path string, out io.Writer) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	log, err := replay.ReadLog(f)
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	label := log.Header.Scenario
	if label == "" {
		label = "(unlabeled)"
	}
	fmt.Fprintf(out, "replaying %s: %s, %d-bit space, seed %d, scenario %s, %d records\n",
		path, log.Header.Mode, log.Header.Bits, log.Header.Seed, label, len(log.Records))

	a, err := replay.Run(log)
	if err != nil {
		return fmt.Errorf("first replay: %w", err)
	}
	b, err := replay.Run(log)
	if err != nil {
		return fmt.Errorf("second replay: %w", err)
	}
	if d := replay.Compare(a, b); d != nil {
		fmt.Fprintf(out, "\n%s\n", d)
		return fmt.Errorf("replays diverged: %s", d.Reason)
	}

	total := 0
	for _, members := range a.Deliveries {
		total += len(members)
	}
	fmt.Fprintf(out, "deterministic: two replays agree on %d multicasts, %d deliveries, %d trace events\n",
		len(a.MsgIDs), total, len(a.Trace))
	fmt.Fprintf(out, "counters: %s\n", a.Counters)
	return nil
}
