// Command camchurn evaluates the live runtime under membership churn,
// sweeping the maintenance budget (slow -> fast churn) for both CAM systems
// and printing delivery ratio, ring health and repair effort. It is the
// dynamic counterpart of cmd/camfigs and probes the paper's closing claim
// that the two systems favor different churn regimes.
//
// Usage:
//
//	camchurn [-initial 48] [-events 150] [-join 0.5] [-crash 0.5]
//	         [-cap-lo 4] [-cap-hi 10] [-seed 1]
//	         [-transport mem|tcp] [-codec binary|gob]
//	         [-debug-addr host:port]
//
// -debug-addr serves the live observability endpoint while the sweep runs:
// /debug/camcast/stats (JSON metric snapshots across all runs so far),
// /debug/camcast/events (streaming NDJSON event tail), and net/http/pprof.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"text/tabwriter"

	"camcast/internal/churnsim"
	"camcast/internal/obsv"
	"camcast/internal/runtime"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "camchurn:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("camchurn", flag.ContinueOnError)
	var (
		initial = fs.Int("initial", 48, "members before churn starts")
		events  = fs.Int("events", 150, "membership events")
		join    = fs.Float64("join", 0.5, "fraction of events that are joins")
		crash   = fs.Float64("crash", 0.5, "fraction of departures that are crashes")
		capLo   = fs.Int("cap-lo", 4, "lowest member capacity")
		capHi   = fs.Int("cap-hi", 10, "highest member capacity")
		seed    = fs.Int64("seed", 1, "RNG seed")
		trans   = fs.String("transport", "mem", "member transport: mem (in-process simulated network) or tcp (one loopback listener per member)")
		codec   = fs.String("codec", "", "wire codec for -transport tcp: binary (default) or gob")
		debug   = fs.String("debug-addr", "", "serve the live debug endpoint (JSON stats, event tail, pprof) on this host:port")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	// One bus and registry span the whole sweep, so the debug endpoint
	// shows the aggregate picture as runs accumulate.
	var (
		bus *obsv.Bus
		reg *obsv.Registry
	)
	if *debug != "" {
		bus = obsv.NewBus()
		reg = obsv.NewRegistry()
		srv, addr, err := obsv.Debug{Registry: reg, Bus: bus}.ListenAndServe(*debug)
		if err != nil {
			return fmt.Errorf("-debug-addr %s: %w", *debug, err)
		}
		defer srv.Close()
		fmt.Fprintf(out, "debug endpoint: http://%s/debug/camcast/stats\n", addr)
	}

	fmt.Fprintf(out, "churn: %d initial members, %d events (%.0f%% joins, %.0f%% of departures crash), capacities [%d..%d], transport %s\n\n",
		*initial, *events, *join*100, *crash*100, *capLo, *capHi, *trans)

	w := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "system\tmaintenance budget\tmean delivery\tmin delivery\tring correct\ttable faults\tduplicates\tretries\trepaired\tlost")
	for _, mode := range []runtime.Mode{runtime.ModeCAMChord, runtime.ModeCAMKoorde} {
		for _, budget := range []int{4, 2, 1, 0} {
			res, err := churnsim.Run(churnsim.Config{
				Mode:              mode,
				Initial:           *initial,
				Events:            *events,
				JoinFrac:          *join,
				FailFrac:          *crash,
				CapacityLo:        *capLo,
				CapacityHi:        *capHi,
				Seed:              *seed,
				MaintenanceBudget: budget,
				Transport:         *trans,
				Codec:             *codec,
				Bus:               bus,
				Metrics:           reg,
			})
			if err != nil {
				return fmt.Errorf("%v budget %d: %w", mode, budget, err)
			}
			label := fmt.Sprintf("%d rounds/event", budget)
			if budget == 0 {
				label = "none (fastest churn)"
			}
			fmt.Fprintf(w, "%v\t%s\t%.1f%%\t%.1f%%\t%.0f%%\t%d\t%d\t%d\t%d\t%d\n",
				mode, label, res.MeanDelivery*100, res.MinDelivery*100,
				res.RingCorrect*100, res.TableFaults, res.Duplicates,
				res.Retries, res.SegmentsRepaired, res.SegmentsLost)
		}
	}
	return w.Flush()
}
