package main

import (
	"strings"
	"testing"
)

func TestRunSmallSweep(t *testing.T) {
	out := &strings.Builder{}
	err := run([]string{"-initial", "10", "-events", "12"}, out)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"cam-chord", "cam-koorde", "mean delivery", "none (fastest churn)"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunBadFlags(t *testing.T) {
	if err := run([]string{"-nope"}, &strings.Builder{}); err == nil {
		t.Error("bad flag should fail")
	}
}
