package main

import (
	"encoding/json"
	"net/http"
	"os"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"camcast/internal/obsv"
	"camcast/internal/scenario"
)

func TestRunSmallSweep(t *testing.T) {
	out := &strings.Builder{}
	err := run([]string{"-initial", "10", "-events", "12"}, out)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"cam-chord", "cam-koorde", "mean delivery", "none (fastest churn)"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunBadFlags(t *testing.T) {
	for name, args := range map[string][]string{
		"unknown flag":        {"-nope"},
		"unknown scenario":    {"-scenario", "no-such-scenario"},
		"bad mode":            {"-scenario", "flash-crowd-join", "-mode", "telepathy"},
		"record without mode": {"-scenario", "flash-crowd-join", "-record", t.TempDir() + "/log"},
		"record without scen": {"-record", t.TempDir() + "/log"},
		"replay missing file": {"-replay", t.TempDir() + "/absent.ndjson"},
	} {
		if err := run(args, &strings.Builder{}); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestRunListScenarios(t *testing.T) {
	out := &strings.Builder{}
	if err := run([]string{"-scenarios"}, out); err != nil {
		t.Fatal(err)
	}
	for _, name := range scenario.Names() {
		if !strings.Contains(out.String(), name) {
			t.Errorf("listing missing %q:\n%s", name, out.String())
		}
	}
}

func TestRunScenario(t *testing.T) {
	out := &strings.Builder{}
	if err := run([]string{"-scenario", "correlated-rack-crash", "-seed", "42"}, out); err != nil {
		t.Fatalf("%v\n%s", err, out.String())
	}
	for _, want := range []string{"cam-chord", "cam-koorde", "pass", "post-recovery"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

// TestRunRecordThenReplay drives the full CLI loop: record a scenario run
// to a log file, then replay the file and require the determinism check to
// pass.
func TestRunRecordThenReplay(t *testing.T) {
	path := t.TempDir() + "/burst.ndjson"
	out := &strings.Builder{}
	err := run([]string{
		"-scenario", "burst-loss-during-repair", "-mode", "cam-chord",
		"-seed", "42", "-record", path,
	}, out)
	if err != nil {
		t.Fatalf("record run: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "replay log: "+path) {
		t.Errorf("record run did not report the log path:\n%s", out.String())
	}

	out.Reset()
	if err := run([]string{"-replay", path}, out); err != nil {
		t.Fatalf("replay run: %v\n%s", err, out.String())
	}
	for _, want := range []string{"deterministic: two replays agree", "burst-loss-during-repair", "counters:"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("replay output missing %q:\n%s", want, out.String())
		}
	}
}

// TestRunLiveSweep drives the scheduler-hosted scale path end to end: a
// small -live run must print the percentile table and write well-formed
// BENCH_scale.json cells.
func TestRunLiveSweep(t *testing.T) {
	path := t.TempDir() + "/scale.json"
	out := &strings.Builder{}
	err := run([]string{"-live", "60", "-mode", "cam-chord", "-seed", "42", "-json", path}, out)
	if err != nil {
		t.Fatalf("%v\n%s", err, out.String())
	}
	for _, want := range []string{"join ms p50/p95/p99", "mcast ms p50/p95/p99", "B/member", "wrote 1 cells"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc scaleDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("BENCH_scale.json malformed: %v", err)
	}
	if doc.Format != "scale" {
		t.Errorf("format = %q, want scale", doc.Format)
	}
	cell, ok := doc.Cells["mem/cam-chord/60"]
	if !ok {
		t.Fatalf("missing cell mem/cam-chord/60, have %v", doc.Cells)
	}
	if cell.Members != 60 || cell.JoinP99Ms <= 0 || cell.RingCorrect <= 0 {
		t.Errorf("implausible cell: %+v", cell)
	}
}

// TestRunLiveBadSpecs: malformed -live inputs are rejected before any run.
func TestRunLiveBadSpecs(t *testing.T) {
	for name, args := range map[string][]string{
		"not a number":    {"-live", "abc"},
		"too small":       {"-live", "1"},
		"empty element":   {"-live", "100,"},
		"bad mode":        {"-live", "10", "-mode", "telepathy"},
		"bad transport":   {"-live", "10", "-transport", "carrier-pigeon"},
	} {
		if err := run(args, &strings.Builder{}); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// TestRunLiveFloorViolation: an unreachable delivery floor turns the sweep
// into a failing gate, but the cells are still written for diagnosis.
func TestRunLiveFloorViolation(t *testing.T) {
	path := t.TempDir() + "/scale.json"
	out := &strings.Builder{}
	err := run([]string{"-live", "60", "-mode", "cam-chord", "-seed", "42", "-json", path, "-min-delivery", "1.01"}, out)
	if err == nil || !strings.Contains(err.Error(), "floors violated") {
		t.Fatalf("err = %v, want floor violation", err)
	}
	if _, statErr := os.Stat(path); statErr != nil {
		t.Errorf("failing sweep should still write cells: %v", statErr)
	}
}

// safeBuffer lets the test scrape output while run is still writing it.
type safeBuffer struct {
	mu sync.Mutex
	b  strings.Builder
}

func (s *safeBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *safeBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// TestRunDebugEndpoint curls the -debug-addr stats route while a small
// sweep is running and checks the shared registry is accumulating.
func TestRunDebugEndpoint(t *testing.T) {
	out := &safeBuffer{}
	errc := make(chan error, 1)
	go func() {
		errc <- run([]string{"-initial", "8", "-events", "10", "-debug-addr", "127.0.0.1:0"}, out)
	}()

	addrRE := regexp.MustCompile(`debug endpoint: http://([^/\s]+)/`)
	var base string
	deadline := time.Now().Add(5 * time.Second)
	for base == "" {
		if m := addrRE.FindStringSubmatch(out.String()); m != nil {
			base = "http://" + m[1]
			break
		}
		select {
		case err := <-errc:
			t.Fatalf("run finished before printing the debug endpoint: %v\n%s", err, out.String())
		default:
		}
		if time.Now().After(deadline) {
			t.Fatalf("debug endpoint line never printed:\n%s", out.String())
		}
		time.Sleep(5 * time.Millisecond)
	}

	var stats struct {
		Metrics obsv.Snapshot `json:"metrics"`
	}
	deadline = time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(base + "/debug/camcast/stats")
		if err == nil {
			decErr := json.NewDecoder(resp.Body).Decode(&stats)
			resp.Body.Close()
			if decErr != nil {
				t.Fatalf("stats decode: %v", decErr)
			}
			if stats.Metrics.Counters[obsv.MetricDelivered] > 0 {
				break
			}
		}
		// A connection error after the sweep finished means the deferred
		// server Close won the race; the counters check below is what
		// matters, so only time out if we never saw data.
		select {
		case runErr := <-errc:
			if runErr != nil {
				t.Fatal(runErr)
			}
			if stats.Metrics.Counters[obsv.MetricDelivered] == 0 {
				t.Fatal("sweep finished without the debug endpoint ever reporting a delivery")
			}
			return
		default:
		}
		if time.Now().After(deadline) {
			t.Fatalf("stats never showed deliveries: %+v", stats.Metrics.Counters)
		}
		time.Sleep(10 * time.Millisecond)
	}

	if err := <-errc; err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "mean delivery") {
		t.Errorf("sweep output incomplete:\n%s", out.String())
	}
}
