package camcast

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"camcast/internal/transport"
)

// TestDeliveryPayloadBorrowContract enforces the copy-on-deliver contract on
// Message.Payload over real sockets: the slice handed to OnDeliver aliases a
// pooled receive buffer on the zero-copy path, so a subscriber that copies
// during the callback keeps intact data, while one that retains the raw
// slice reads recycled garbage afterwards. Blob poisoning makes the second
// half deterministic: the pool scribbles every released buffer, so a
// retained view cannot accidentally stay intact and mask the violation.
func TestDeliveryPayloadBorrowContract(t *testing.T) {
	if testing.Short() {
		t.Skip("real sockets; skipped in -short runs")
	}
	prev := transport.PoisonBlobsOnRelease(true)
	defer transport.PoisonBlobsOnRelease(prev)

	payload := bytes.Repeat([]byte{0xA5}, 2<<10)
	copy(payload, "borrow contract")

	var (
		mu       sync.Mutex
		copies   = map[string][]byte{} // correct subscribers: cloned in callback
		retained []byte                // violating subscriber: raw slice kept
	)
	opts := func(self *string, violate bool) Options {
		return Options{
			Capacity:       4,
			Stabilize:      -1,
			Fix:            -1,
			ForwardTimeout: 2 * time.Second,
			RPCTimeout:     2 * time.Second,
			OnDeliver: func(m Message) {
				mu.Lock()
				defer mu.Unlock()
				copies[*self] = bytes.Clone(m.Payload) // the contract: copy to retain
				if violate {
					retained = m.Payload // the bug this test catches
				}
			},
		}
	}

	var members []*TCPMember
	for i := 0; i < 4; i++ {
		self := new(string)
		via := ""
		if i > 0 {
			via = members[0].Addr()
		}
		m, err := ListenTCP("127.0.0.1:0", via, opts(self, i == 2))
		if err != nil {
			t.Fatal(err)
		}
		*self = m.Addr()
		members = append(members, m)
		for r := 0; r < 3; r++ {
			for _, mm := range members {
				mm.StabilizeOnce()
			}
		}
	}
	defer func() {
		for _, m := range members {
			m.Close()
		}
	}()
	for r := 0; r < 3; r++ {
		for _, m := range members {
			m.StabilizeOnce()
			m.FixAll()
		}
	}

	// Multicast from member 0, so the violating member 2 receives its copy
	// through a pooled TCP frame (the origin's self-delivery hands the
	// caller's own slice, which the pool never touches).
	if _, err := members[0].Multicast(payload); err != nil {
		t.Fatal(err)
	}

	// Close every member before inspecting: TCP close joins the transport
	// goroutines, so all blob releases (and the poison scribble) are ordered
	// before these reads.
	for _, m := range members {
		m.Close()
	}

	for addr, c := range copies {
		if !bytes.Equal(c, payload) {
			t.Errorf("%s: payload copied during OnDeliver was corrupted", addr)
		}
	}
	if retained == nil {
		t.Fatal("violating subscriber never ran")
	}
	if bytes.Equal(retained, payload) {
		t.Error("payload slice retained past OnDeliver stayed intact; " +
			"the borrow contract is no longer enforced (or the buffer was never pooled)")
	}
}
