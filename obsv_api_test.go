package camcast

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"camcast/internal/obsv"
)

// TestNodeInterfaceUnifiesMembers drives an in-process member purely
// through the exported Node interface — the compile-time assertions prove
// both member kinds satisfy it; this proves the interface is usable.
func TestNodeInterfaceUnifiesMembers(t *testing.T) {
	net, col, addrs := buildGroup(t, CAMChord, 6, 4)
	m, err := net.Member(addrs[1])
	if err != nil {
		t.Fatal(err)
	}
	var node Node = m
	if node.Addr() != addrs[1] {
		t.Errorf("Addr() = %q, want %q", node.Addr(), addrs[1])
	}
	if node.Capacity() != 4 {
		t.Errorf("Capacity() = %d, want 4", node.Capacity())
	}
	msgID, err := node.MulticastContext(context.Background(), []byte("via interface"))
	if err != nil {
		t.Fatal(err)
	}
	for _, addr := range addrs {
		if got := col.count(addr, msgID); got != 1 {
			t.Errorf("%s delivered %d times, want 1", addr, got)
		}
	}
	ni := node.Neighbors()
	if ni.Addr != addrs[1] || ni.ID != node.ID() {
		t.Errorf("Neighbors() self = %+v, want addr %s id %d", ni, addrs[1], node.ID())
	}
	if len(ni.Successors) == 0 {
		t.Error("Neighbors() reports no successors in a 6-member group")
	}
	if node.Stats().Delivered == 0 {
		t.Error("Stats() through the interface shows no deliveries")
	}
}

// TestObserverSeesMemberEvents checks Options.Observer receives the
// member's own events — and only its own.
func TestObserverSeesMemberEvents(t *testing.T) {
	net := NewNetwork()
	defer net.Close()

	var mu sync.Mutex
	var events []Event
	base := Options{Capacity: 4, Stabilize: -1, Fix: -1}
	withObs := base
	withObs.Observer = func(e Event) {
		mu.Lock()
		events = append(events, e)
		mu.Unlock()
	}
	a, err := net.Create("a", withObs)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.Join("b", "a", base); err != nil {
		t.Fatal(err)
	}
	net.Settle(3)
	if _, err := a.Multicast([]byte("observed")); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(2 * time.Second)
	for {
		mu.Lock()
		var delivered bool
		for _, e := range events {
			if e.Node != "a" {
				mu.Unlock()
				t.Fatalf("observer for %q received event at %q: %v", "a", e.Node, e)
			}
			if e.Kind == EventDeliver {
				delivered = true
			}
		}
		mu.Unlock()
		if delivered {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("observer never saw the member's own delivery")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestNetworkObserveStop checks the group-wide stream sees every member's
// deliveries and that stop detaches the callback for good.
func TestNetworkObserveStop(t *testing.T) {
	net, _, addrs := buildGroup(t, CAMChord, 6, 4)

	var mu sync.Mutex
	deliveries := make(map[string]int)
	stop := net.Observe(func(e Event) {
		if e.Kind == EventDeliver {
			mu.Lock()
			deliveries[e.Node]++
			mu.Unlock()
		}
	})
	src, _ := net.Member(addrs[0])
	if _, err := src.Multicast([]byte("watched")); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(2 * time.Second)
	for {
		mu.Lock()
		n := len(deliveries)
		mu.Unlock()
		if n == len(addrs) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("observed deliveries at %d members, want %d", n, len(addrs))
		}
		time.Sleep(time.Millisecond)
	}

	stop()
	stop() // idempotent
	if _, err := src.Multicast([]byte("unwatched")); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	for addr, count := range deliveries {
		if count != 1 {
			t.Errorf("%s observed %d deliveries after stop, want 1", addr, count)
		}
	}
}

// TestMetricsAndCountersSnapshot cross-checks the three snapshot APIs: the
// typed CountersSnapshot, the deprecated map form, and the full registry
// snapshot.
func TestMetricsAndCountersSnapshot(t *testing.T) {
	net, col, addrs := buildGroup(t, CAMChord, 10, 4)
	src, _ := net.Member(addrs[2])
	msgID, err := src.Multicast([]byte("measured"))
	if err != nil {
		t.Fatal(err)
	}
	for _, addr := range addrs {
		if got := col.count(addr, msgID); got != 1 {
			t.Fatalf("%s delivered %d times, want 1", addr, got)
		}
	}

	typed := net.CountersSnapshot()
	if typed.ForwardAcked != uint64(len(addrs)-1) {
		t.Errorf("ForwardAcked = %d, want %d", typed.ForwardAcked, len(addrs)-1)
	}
	if typed.ForwardLost != 0 {
		t.Errorf("ForwardLost = %d, want 0", typed.ForwardLost)
	}

	snap := net.Metrics()
	if got := snap.Counters[obsv.MetricDelivered]; got != uint64(len(addrs)) {
		t.Errorf("%s = %d, want %d", obsv.MetricDelivered, got, len(addrs))
	}
	if got := snap.Counters[obsv.MetricForwardAcked]; got != typed.ForwardAcked {
		t.Errorf("%s = %d, want %d", obsv.MetricForwardAcked, got, typed.ForwardAcked)
	}
	if snap.Histograms[obsv.MetricMulticastTime].Count != 1 {
		t.Errorf("tree-time observations = %d, want 1", snap.Histograms[obsv.MetricMulticastTime].Count)
	}
	if snap.Histograms[obsv.MetricRPCLatency].Count == 0 {
		t.Error("instrumented in-process transport recorded no RPC latencies")
	}
}

// TestDebugHandlerHTTP mounts Network.DebugHandler on a test server and
// checks the JSON routes and pprof respond.
func TestDebugHandlerHTTP(t *testing.T) {
	net, _, addrs := buildGroup(t, CAMChord, 5, 4)
	src, _ := net.Member(addrs[0])
	if _, err := src.Multicast([]byte("debug me")); err != nil {
		t.Fatal(err)
	}

	srv := httptest.NewServer(net.DebugHandler())
	defer srv.Close()

	var stats struct {
		Metrics MetricsSnapshot  `json:"metrics"`
		Extra   CountersSnapshot `json:"extra"`
	}
	getJSON(t, srv.URL+"/debug/camcast/stats", &stats)
	if stats.Metrics.Counters[obsv.MetricDelivered] != uint64(len(addrs)) {
		t.Errorf("stats delivered = %d, want %d", stats.Metrics.Counters[obsv.MetricDelivered], len(addrs))
	}
	if stats.Extra.ForwardAcked != uint64(len(addrs)-1) {
		t.Errorf("stats extra acked = %d, want %d", stats.Extra.ForwardAcked, len(addrs)-1)
	}

	var neighbors []NeighborInfo
	getJSON(t, srv.URL+"/debug/camcast/neighbors", &neighbors)
	if len(neighbors) != len(addrs) {
		t.Fatalf("neighbors lists %d members, want %d", len(neighbors), len(addrs))
	}
	for i := 1; i < len(neighbors); i++ {
		if neighbors[i-1].ID > neighbors[i].ID {
			t.Fatal("neighbors not sorted by ring identifier")
		}
	}

	resp, err := http.Get(srv.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("pprof cmdline status %d, want 200", resp.StatusCode)
	}
}

func getJSON(t *testing.T, url string, into any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
		t.Fatalf("GET %s: decode: %v", url, err)
	}
}

// TestContextMethods checks the cancellable variants: a canceled multicast
// is not accounted as loss, and a canceled request fails with the
// context's error.
func TestContextMethods(t *testing.T) {
	net := NewNetwork()
	defer net.Close()
	opts := Options{
		Capacity:  4,
		Stabilize: -1,
		Fix:       -1,
		OnRequest: func(from string, payload []byte) ([]byte, error) {
			return payload, nil
		},
	}
	a, err := net.Create("a", opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := net.Join("b", "a", opts)
	if err != nil {
		t.Fatal(err)
	}
	net.Settle(3)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := a.MulticastContext(ctx, []byte("too late")); err != nil {
		t.Fatalf("canceled multicast returned error: %v", err)
	}
	if lost := a.Stats().SegmentsLost; lost != 0 {
		t.Errorf("canceled multicast accounted %d lost segments", lost)
	}

	if _, err := b.RequestContext(ctx, "a", []byte("ping")); err == nil {
		t.Error("request under a canceled context succeeded")
	}
	reply, err := b.RequestContext(context.Background(), "a", []byte("ping"))
	if err != nil {
		t.Fatal(err)
	}
	if string(reply) != "ping" {
		t.Errorf("reply = %q, want %q", reply, "ping")
	}
}

// TestTCPMemberObservability boots a two-member TCP group and checks the
// per-member registry, debug handler, and observer all see real socket
// traffic.
func TestTCPMemberObservability(t *testing.T) {
	if testing.Short() {
		t.Skip("real sockets; skipped in -short runs")
	}
	var mu sync.Mutex
	delivered := make(map[string]int)
	var kinds []EventKind
	opts := func(self *string, observe bool) Options {
		o := Options{
			Capacity:  4,
			Stabilize: -1,
			Fix:       -1,
			OnDeliver: func(m Message) {
				mu.Lock()
				delivered[*self]++
				mu.Unlock()
			},
		}
		if observe {
			o.Observer = func(e Event) {
				mu.Lock()
				kinds = append(kinds, e.Kind)
				mu.Unlock()
			}
		}
		return o
	}

	selfA := new(string)
	a, err := ListenTCP("127.0.0.1:0", "", opts(selfA, true))
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	*selfA = a.Addr()
	selfB := new(string)
	b, err := ListenTCP("127.0.0.1:0", a.Addr(), opts(selfB, false))
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	*selfB = b.Addr()
	for r := 0; r < 3; r++ {
		a.StabilizeOnce()
		b.StabilizeOnce()
		a.FixAll()
		b.FixAll()
	}

	var node Node = a // the interface covers the TCP kind too
	if _, err := node.MulticastContext(context.Background(), []byte("over tcp")); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		done := delivered[a.Addr()] == 1 && delivered[b.Addr()] == 1
		mu.Unlock()
		if done {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("deliveries = %v, want 1 at each member", delivered)
		}
		time.Sleep(time.Millisecond)
	}

	snap := a.Metrics()
	if snap.Counters[obsv.MetricDelivered] != 1 {
		t.Errorf("member a delivered counter = %d, want 1", snap.Counters[obsv.MetricDelivered])
	}
	if snap.Counters[obsv.MetricRPCCalls] == 0 {
		t.Error("member a's transport recorded no RPC calls")
	}
	if snap.Histograms[obsv.MetricRPCLatency].Count == 0 {
		t.Error("member a's transport recorded no RPC latencies")
	}

	srv := httptest.NewServer(a.DebugHandler())
	defer srv.Close()
	var neighbors []NeighborInfo
	getJSON(t, srv.URL+"/debug/camcast/neighbors", &neighbors)
	if len(neighbors) != 1 || neighbors[0].Addr != a.Addr() {
		t.Errorf("TCP member debug neighbors = %+v, want self only", neighbors)
	}

	deadline = time.Now().Add(2 * time.Second)
	for {
		mu.Lock()
		var sawDeliver bool
		for _, k := range kinds {
			if k == EventDeliver {
				sawDeliver = true
			}
		}
		mu.Unlock()
		if sawDeliver {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("TCP member observer never saw its delivery")
		}
		time.Sleep(time.Millisecond)
	}
}
