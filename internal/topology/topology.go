// Package topology provides the static ring model used by the simulator
// layer: the full sorted set of member identifiers, with O(log n) resolution
// of successor(id) / predecessor(id) / "the node responsible for id" by
// binary search.
//
// All four overlays (Chord, Koorde, CAM-Chord, CAM-Koorde) are pure
// functions of this structure in simulator mode: neighbor identifiers are
// computed arithmetically and resolved to nodes through Ring, so no routing
// tables need to be materialized even for 100,000-node networks.
package topology

import (
	"fmt"
	"sort"

	"camcast/internal/ring"
)

// Ring is an immutable snapshot of the group membership, sorted by
// identifier. Positions (ints in [0, Len())) index the sorted order and are
// the node handles used throughout the simulator.
type Ring struct {
	space ring.Space
	ids   []ring.ID // ascending, unique
}

// New builds a Ring from the given identifiers. The slice is copied; it must
// be non-empty and duplicate-free.
func New(space ring.Space, memberIDs []ring.ID) (*Ring, error) {
	if len(memberIDs) == 0 {
		return nil, fmt.Errorf("topology: empty membership")
	}
	sorted := make([]ring.ID, len(memberIDs))
	copy(sorted, memberIDs)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for i := 1; i < len(sorted); i++ {
		if sorted[i] == sorted[i-1] {
			return nil, fmt.Errorf("topology: duplicate identifier %d", sorted[i])
		}
	}
	if sorted[len(sorted)-1] > space.Mask() {
		return nil, fmt.Errorf("topology: identifier %d outside space %v", sorted[len(sorted)-1], space)
	}
	return &Ring{space: space, ids: sorted}, nil
}

// Space returns the identifier space of the ring.
func (r *Ring) Space() ring.Space { return r.space }

// Len returns the number of member nodes.
func (r *Ring) Len() int { return len(r.ids) }

// IDAt returns the identifier of the node at sorted position pos.
func (r *Ring) IDAt(pos int) ring.ID { return r.ids[pos] }

// IDs returns the sorted identifiers (a copy, so callers cannot mutate the
// ring's internal state).
func (r *Ring) IDs() []ring.ID {
	out := make([]ring.ID, len(r.ids))
	copy(out, r.ids)
	return out
}

// PosOf returns the position of the node with exactly identifier id, or
// (-1, false) if no member has that identifier.
func (r *Ring) PosOf(id ring.ID) (int, bool) {
	i := sort.Search(len(r.ids), func(i int) bool { return r.ids[i] >= id })
	if i < len(r.ids) && r.ids[i] == id {
		return i, true
	}
	return -1, false
}

// Responsible returns the position of the node responsible for identifier
// id: the node with identifier id itself if one exists, otherwise
// successor(id). This is the paper's "x̂" operator.
func (r *Ring) Responsible(id ring.ID) int {
	i := sort.Search(len(r.ids), func(i int) bool { return r.ids[i] >= id })
	if i == len(r.ids) {
		return 0 // wrap: first node clockwise from the top of the space
	}
	return i
}

// Successor returns the position of the node clockwise after the node at
// pos (i.e. successor(x) for a member x).
func (r *Ring) Successor(pos int) int {
	return (pos + 1) % len(r.ids)
}

// Predecessor returns the position of the node clockwise before the node at
// pos.
func (r *Ring) Predecessor(pos int) int {
	return (pos - 1 + len(r.ids)) % len(r.ids)
}

// InSegmentOC reports whether the NODE at position p lies in the identifier
// segment (x, y].
func (r *Ring) InSegmentOC(p int, x, y ring.ID) bool {
	return r.space.InOC(r.ids[p], x, y)
}

// CountInSegmentOC returns how many member nodes have identifiers in (x, y].
func (r *Ring) CountInSegmentOC(x, y ring.ID) int {
	if x == y {
		return 0
	}
	// Count members in (x, mask] ∪ [0, y] pieces without iterating.
	countLE := func(v ring.ID) int { // members with id <= v
		return sort.Search(len(r.ids), func(i int) bool { return r.ids[i] > v })
	}
	if x < y {
		return countLE(y) - countLE(x)
	}
	// wrapping segment
	return (len(r.ids) - countLE(x)) + countLE(y)
}
