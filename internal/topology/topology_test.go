package topology

import (
	"math/rand"
	"sort"
	"testing"

	"camcast/internal/ring"
)

func mustRing(t *testing.T, bits uint, ids []ring.ID) *Ring {
	t.Helper()
	r, err := New(ring.MustSpace(bits), ids)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestNewValidation(t *testing.T) {
	s := ring.MustSpace(5)
	if _, err := New(s, nil); err == nil {
		t.Error("empty membership should fail")
	}
	if _, err := New(s, []ring.ID{1, 1}); err == nil {
		t.Error("duplicate identifiers should fail")
	}
	if _, err := New(s, []ring.ID{40}); err == nil {
		t.Error("identifier outside space should fail")
	}
}

func TestNewSortsAndCopies(t *testing.T) {
	input := []ring.ID{9, 3, 27}
	r := mustRing(t, 5, input)
	if r.Len() != 3 {
		t.Fatalf("Len = %d", r.Len())
	}
	want := []ring.ID{3, 9, 27}
	for i, w := range want {
		if r.IDAt(i) != w {
			t.Errorf("IDAt(%d) = %d, want %d", i, r.IDAt(i), w)
		}
	}
	input[0] = 5 // mutating the input must not affect the ring
	if r.IDAt(1) != 9 {
		t.Error("ring shares storage with caller slice")
	}
	got := r.IDs()
	got[0] = 31
	if r.IDAt(0) != 3 {
		t.Error("IDs() exposes internal storage")
	}
}

func TestResponsible(t *testing.T) {
	// Nodes at 3, 9, 27 on a 32-ring (paper's x̂ semantics).
	r := mustRing(t, 5, []ring.ID{3, 9, 27})
	tests := []struct {
		id   ring.ID
		want ring.ID
	}{
		{3, 3}, // exact member
		{4, 9}, // successor
		{9, 9},
		{10, 27},
		{27, 27},
		{28, 3}, // wraps past the top of the space
		{0, 3},
		{31, 3},
	}
	for _, tt := range tests {
		pos := r.Responsible(tt.id)
		if got := r.IDAt(pos); got != tt.want {
			t.Errorf("Responsible(%d) -> %d, want %d", tt.id, got, tt.want)
		}
	}
}

func TestSuccessorPredecessor(t *testing.T) {
	r := mustRing(t, 5, []ring.ID{3, 9, 27})
	if r.IDAt(r.Successor(0)) != 9 || r.IDAt(r.Successor(2)) != 3 {
		t.Error("Successor wrong")
	}
	if r.IDAt(r.Predecessor(0)) != 27 || r.IDAt(r.Predecessor(1)) != 3 {
		t.Error("Predecessor wrong")
	}
}

func TestPosOf(t *testing.T) {
	r := mustRing(t, 5, []ring.ID{3, 9, 27})
	if pos, ok := r.PosOf(9); !ok || pos != 1 {
		t.Errorf("PosOf(9) = (%d,%v)", pos, ok)
	}
	if _, ok := r.PosOf(10); ok {
		t.Error("PosOf(10) should miss")
	}
}

func TestResponsibleAgainstLinearScan(t *testing.T) {
	s := ring.MustSpace(12)
	rng := rand.New(rand.NewSource(3))
	ids := make([]ring.ID, 0, 200)
	seen := map[ring.ID]bool{}
	for len(ids) < 200 {
		id := s.Reduce(rng.Uint64())
		if !seen[id] {
			seen[id] = true
			ids = append(ids, id)
		}
	}
	r, err := New(s, ids)
	if err != nil {
		t.Fatal(err)
	}
	sorted := r.IDs()
	linear := func(k ring.ID) ring.ID {
		best := ring.ID(0)
		bestDist := s.Size()
		for _, id := range sorted {
			if d := s.Dist(k, id); d < bestDist { // successor: min clockwise dist from k, id==k gives 0
				bestDist = d
				best = id
			}
		}
		return best
	}
	for i := 0; i < 2000; i++ {
		k := s.Reduce(rng.Uint64())
		want := linear(k)
		if got := r.IDAt(r.Responsible(k)); got != want {
			t.Fatalf("Responsible(%d) = %d, linear scan says %d", k, got, want)
		}
	}
}

func TestCountInSegmentOC(t *testing.T) {
	r := mustRing(t, 5, []ring.ID{3, 9, 27})
	tests := []struct {
		x, y ring.ID
		want int
	}{
		{0, 31, 3},
		{3, 9, 1},   // (3,9] contains 9
		{2, 9, 2},   // contains 3 and 9
		{9, 3, 2},   // wrap: contains 27 and 3
		{27, 3, 1},  // wrap: contains 3
		{5, 5, 0},   // empty segment
		{10, 26, 0}, // gap
	}
	for _, tt := range tests {
		if got := r.CountInSegmentOC(tt.x, tt.y); got != tt.want {
			t.Errorf("CountInSegmentOC(%d,%d) = %d, want %d", tt.x, tt.y, got, tt.want)
		}
	}
}

func TestCountInSegmentMatchesBruteForce(t *testing.T) {
	s := ring.MustSpace(10)
	rng := rand.New(rand.NewSource(11))
	seen := map[ring.ID]bool{}
	var ids []ring.ID
	for len(ids) < 64 {
		id := s.Reduce(rng.Uint64())
		if !seen[id] {
			seen[id] = true
			ids = append(ids, id)
		}
	}
	r, _ := New(s, ids)
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for trial := 0; trial < 500; trial++ {
		x := s.Reduce(rng.Uint64())
		y := s.Reduce(rng.Uint64())
		want := 0
		for _, id := range ids {
			if s.InOC(id, x, y) {
				want++
			}
		}
		if got := r.CountInSegmentOC(x, y); got != want {
			t.Fatalf("CountInSegmentOC(%d,%d) = %d, brute force %d", x, y, got, want)
		}
	}
}

func TestInSegmentOC(t *testing.T) {
	r := mustRing(t, 5, []ring.ID{3, 9, 27})
	if !r.InSegmentOC(1, 3, 9) {
		t.Error("node 9 should be in (3,9]")
	}
	if r.InSegmentOC(0, 3, 9) {
		t.Error("node 3 should not be in (3,9]")
	}
}
