package workload

import "testing"

func TestScheduleBasic(t *testing.T) {
	events, err := Schedule(ChurnConfig{Seed: 1, Events: 200, JoinFrac: 0.5, FailFrac: 0.3, Initial: 50})
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 200 {
		t.Fatalf("got %d events, want 200", len(events))
	}

	alive := make(map[int]bool, 50)
	for i := 0; i < 50; i++ {
		alive[i] = true
	}
	for i, ev := range events {
		switch ev.Kind {
		case EventJoin:
			if alive[ev.Index] {
				t.Fatalf("event %d joins already-alive member %d", i, ev.Index)
			}
			alive[ev.Index] = true
		case EventLeave, EventFail:
			if !alive[ev.Index] {
				t.Fatalf("event %d removes dead member %d", i, ev.Index)
			}
			delete(alive, ev.Index)
		default:
			t.Fatalf("event %d has unknown kind %v", i, ev.Kind)
		}
		if len(alive) < 1 {
			t.Fatalf("group drained after event %d", i)
		}
	}
}

func TestScheduleDeterministic(t *testing.T) {
	cfg := ChurnConfig{Seed: 5, Events: 100, JoinFrac: 0.4, FailFrac: 0.5, Initial: 20}
	a, _ := Schedule(cfg)
	b, _ := Schedule(cfg)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("schedules diverge at event %d", i)
		}
	}
}

func TestScheduleAllLeaves(t *testing.T) {
	// With JoinFrac 0, the group shrinks but must never drop below one.
	events, err := Schedule(ChurnConfig{Seed: 2, Events: 30, JoinFrac: 0, FailFrac: 1, Initial: 10})
	if err != nil {
		t.Fatal(err)
	}
	// 10 members drain to 1 in 9 departures; afterwards the schedule must
	// alternate forced joins with departures: 9 + floor((30-9)/2) = 19.
	leaves := 0
	for _, ev := range events {
		if ev.Kind != EventJoin {
			leaves++
		}
	}
	if leaves != 19 {
		t.Fatalf("expected 19 departures (9 drain + 10 alternating), got %d", leaves)
	}
}

func TestScheduleValidation(t *testing.T) {
	bad := []ChurnConfig{
		{Events: -1, Initial: 1},
		{Events: 1, Initial: 0},
		{Events: 1, Initial: 1, JoinFrac: 1.5},
		{Events: 1, Initial: 1, FailFrac: -0.1},
	}
	for i, cfg := range bad {
		if _, err := Schedule(cfg); err == nil {
			t.Errorf("config %d should fail validation", i)
		}
	}
}

func TestEventKindString(t *testing.T) {
	if EventJoin.String() != "join" || EventLeave.String() != "leave" || EventFail.String() != "fail" {
		t.Error("EventKind strings wrong")
	}
	if EventKind(99).String() != "EventKind(99)" {
		t.Error("unknown EventKind string wrong")
	}
}
