package workload

import (
	"testing"

	"camcast/internal/ring"
)

func TestGenerateDefaults(t *testing.T) {
	cfg := DefaultConfig(500, 1)
	members, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(members) != 500 {
		t.Fatalf("got %d members, want 500", len(members))
	}
	seen := make(map[ring.ID]bool, len(members))
	for _, m := range members {
		if seen[m.ID] {
			t.Fatalf("duplicate identifier %d", m.ID)
		}
		seen[m.ID] = true
		if m.Bandwidth < DefaultBandwidthLo || m.Bandwidth > DefaultBandwidthHi {
			t.Fatalf("bandwidth %g outside [%d,%d]", m.Bandwidth, DefaultBandwidthLo, DefaultBandwidthHi)
		}
		if m.Capacity < DefaultCapacityLo || m.Capacity > DefaultCapacityHi {
			t.Fatalf("capacity %d outside [%d,%d]", m.Capacity, DefaultCapacityLo, DefaultCapacityHi)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(DefaultConfig(100, 7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(DefaultConfig(100, 7))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("member %d differs between identical seeds: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestGenerateSeedsDiffer(t *testing.T) {
	a, _ := Generate(DefaultConfig(100, 1))
	b, _ := Generate(DefaultConfig(100, 2))
	same := 0
	for i := range a {
		if a[i].Capacity == b[i].Capacity {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced identical capacity assignments")
	}
}

func TestGenerateFromBandwidth(t *testing.T) {
	cfg := DefaultConfig(300, 3)
	cfg.Mode = CapacityFromBandwidth
	cfg.LinkRate = 100
	members, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range members {
		want := CapacityFor(m.Bandwidth, 100, 0)
		if m.Capacity != want {
			t.Fatalf("capacity %d != ceil(%g/100)=%d", m.Capacity, m.Bandwidth, want)
		}
		if m.Capacity < 2 {
			t.Fatalf("capacity %d below floor", m.Capacity)
		}
	}
}

func TestCapacityFor(t *testing.T) {
	tests := []struct {
		bw, p float64
		min   int
		want  int
	}{
		{1000, 100, 0, 10},
		{1001, 100, 0, 11},
		{400, 100, 0, 4},
		{100, 100, 0, 2},  // floor applies
		{999, 1000, 4, 4}, // explicit floor
	}
	for _, tt := range tests {
		if got := CapacityFor(tt.bw, tt.p, tt.min); got != tt.want {
			t.Errorf("CapacityFor(%g,%g,%d) = %d, want %d", tt.bw, tt.p, tt.min, got, tt.want)
		}
	}
}

func TestGenerateValidation(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Config)
	}{
		{"zero members", func(c *Config) { c.N = 0 }},
		{"too many members", func(c *Config) { c.Space = ring.MustSpace(3); c.N = 100 }},
		{"bad bandwidth", func(c *Config) { c.BandwidthHi = c.BandwidthLo - 1 }},
		{"zero bandwidth", func(c *Config) { c.BandwidthLo = 0 }},
		{"bad capacity range", func(c *Config) { c.CapacityHi = c.CapacityLo - 1 }},
		{"zero capacity", func(c *Config) { c.CapacityLo = 0 }},
		{"bad mode", func(c *Config) { c.Mode = 0 }},
		{"bad link rate", func(c *Config) { c.Mode = CapacityFromBandwidth; c.LinkRate = 0 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := DefaultConfig(10, 1)
			tt.mutate(&cfg)
			if _, err := Generate(cfg); err == nil {
				t.Fatal("expected validation error")
			}
		})
	}
}

func TestAverages(t *testing.T) {
	members := []Member{
		{Bandwidth: 400, Capacity: 4},
		{Bandwidth: 1000, Capacity: 10},
	}
	if got := AverageCapacity(members); got != 7 {
		t.Errorf("AverageCapacity = %g, want 7", got)
	}
	if got := AverageBandwidth(members); got != 700 {
		t.Errorf("AverageBandwidth = %g, want 700", got)
	}
	if AverageCapacity(nil) != 0 || AverageBandwidth(nil) != 0 {
		t.Error("averages over empty slice should be 0")
	}
}

func TestDenseSpaceGeneration(t *testing.T) {
	// Fill a quarter of a small space; salted probing must still find slots.
	cfg := DefaultConfig(64, 9)
	cfg.Space = ring.MustSpace(8)
	members, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[ring.ID]bool)
	for _, m := range members {
		if seen[m.ID] {
			t.Fatalf("duplicate id %d in dense space", m.ID)
		}
		seen[m.ID] = true
	}
}
