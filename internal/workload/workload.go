// Package workload generates the synthetic member populations used by the
// paper's evaluation (Section 6): group members with upload bandwidths drawn
// uniformly from a range (default [400, 1000] kbps), and per-node capacities
// that are either drawn uniformly from an integer range (default [4..10]) or
// derived from bandwidth as c_x = ceil(B_x / p) for a per-link bandwidth
// target p.
package workload

import (
	"fmt"
	"math"
	"math/rand"

	"camcast/internal/ids"
	"camcast/internal/ring"
)

// Paper defaults from Section 6.
const (
	DefaultBits        = 19     // identifier space [0, 2^19)
	DefaultGroupSize   = 100000 // default multicast group size
	DefaultBandwidthLo = 400    // kbps
	DefaultBandwidthHi = 1000   // kbps
	DefaultCapacityLo  = 4
	DefaultCapacityHi  = 10
)

// Member is one multicast group member.
type Member struct {
	Addr      string  // host address (hash input)
	ID        ring.ID // position on the identifier ring
	Bandwidth float64 // upload bandwidth in kbps
	Capacity  int     // c_x: max direct children the member will forward to
}

// CapacityMode selects how member capacities are assigned.
type CapacityMode int

const (
	// CapacityUniform draws c_x uniformly from [CapacityLo, CapacityHi].
	CapacityUniform CapacityMode = iota + 1
	// CapacityFromBandwidth derives c_x = ceil(B_x / LinkRate), clamped to
	// at least MinCapacity. This is the CAM construction from Section 6.
	CapacityFromBandwidth
)

// Config describes a member population to generate.
type Config struct {
	Space       ring.Space
	N           int     // number of members
	Seed        int64   // RNG seed; generation is deterministic given a seed
	BandwidthLo float64 // kbps, inclusive
	BandwidthHi float64 // kbps, inclusive
	Mode        CapacityMode
	CapacityLo  int     // CapacityUniform: inclusive lower bound
	CapacityHi  int     // CapacityUniform: inclusive upper bound
	LinkRate    float64 // CapacityFromBandwidth: p, desired kbps per tree link
	MinCapacity int     // CapacityFromBandwidth: floor on c_x (0 means 2)
}

// DefaultConfig returns the paper's default simulation setup: n members on a
// 2^19 ring, bandwidth U[400,1000] kbps, capacities U[4..10].
func DefaultConfig(n int, seed int64) Config {
	return Config{
		Space:       ring.MustSpace(DefaultBits),
		N:           n,
		Seed:        seed,
		BandwidthLo: DefaultBandwidthLo,
		BandwidthHi: DefaultBandwidthHi,
		Mode:        CapacityUniform,
		CapacityLo:  DefaultCapacityLo,
		CapacityHi:  DefaultCapacityHi,
	}
}

func (c Config) validate() error {
	if c.N <= 0 {
		return fmt.Errorf("workload: group size %d must be positive", c.N)
	}
	if uint64(c.N) > c.Space.Size() {
		return fmt.Errorf("workload: %d members exceed identifier space of size %d", c.N, c.Space.Size())
	}
	if c.BandwidthLo <= 0 || c.BandwidthHi < c.BandwidthLo {
		return fmt.Errorf("workload: bandwidth range [%g, %g] invalid", c.BandwidthLo, c.BandwidthHi)
	}
	switch c.Mode {
	case CapacityUniform:
		if c.CapacityLo < 1 || c.CapacityHi < c.CapacityLo {
			return fmt.Errorf("workload: capacity range [%d, %d] invalid", c.CapacityLo, c.CapacityHi)
		}
	case CapacityFromBandwidth:
		if c.LinkRate <= 0 {
			return fmt.Errorf("workload: link rate %g must be positive", c.LinkRate)
		}
	default:
		return fmt.Errorf("workload: unknown capacity mode %d", c.Mode)
	}
	return nil
}

// CapacityFor returns ceil(bandwidth / linkRate) clamped below at minCapacity
// (which itself defaults to 2, the smallest capacity CAM-Chord supports).
func CapacityFor(bandwidth, linkRate float64, minCapacity int) int {
	if minCapacity < 2 {
		minCapacity = 2
	}
	c := int(math.Ceil(bandwidth / linkRate))
	if c < minCapacity {
		c = minCapacity
	}
	return c
}

// Generate produces a deterministic member population for cfg. Identifiers
// are unique: members whose SHA-1 identifier collides with an earlier member
// probe salted rehashes, mirroring how a real deployment would resolve ring
// collisions at join time.
func Generate(cfg Config) ([]Member, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	hasher := ids.NewHasher(cfg.Space)
	taken := make(map[ring.ID]bool, cfg.N)
	members := make([]Member, 0, cfg.N)

	// Bound collision probing: the probability of needing many salts is tiny
	// while the ring is sparse, but when N approaches the space size the
	// prober needs room.
	maxProbes := 64
	if cfg.N*4 > int(cfg.Space.Size()) {
		maxProbes = int(cfg.Space.Size())
	}

	for i := 0; i < cfg.N; i++ {
		addr := fmt.Sprintf("member-%d.group.example:%d", i, 40000+i%20000)
		id, _, ok := hasher.Unique(addr, taken, maxProbes)
		if !ok {
			return nil, fmt.Errorf("workload: could not find a free identifier for member %d", i)
		}
		taken[id] = true

		bw := cfg.BandwidthLo
		if cfg.BandwidthHi > cfg.BandwidthLo {
			bw += rng.Float64() * (cfg.BandwidthHi - cfg.BandwidthLo)
		}

		var capacity int
		switch cfg.Mode {
		case CapacityUniform:
			capacity = cfg.CapacityLo + rng.Intn(cfg.CapacityHi-cfg.CapacityLo+1)
		case CapacityFromBandwidth:
			capacity = CapacityFor(bw, cfg.LinkRate, cfg.MinCapacity)
		}

		members = append(members, Member{Addr: addr, ID: id, Bandwidth: bw, Capacity: capacity})
	}
	return members, nil
}

// AverageCapacity returns the mean capacity of the population.
func AverageCapacity(members []Member) float64 {
	if len(members) == 0 {
		return 0
	}
	var sum float64
	for _, m := range members {
		sum += float64(m.Capacity)
	}
	return sum / float64(len(members))
}

// AverageBandwidth returns the mean upload bandwidth of the population.
func AverageBandwidth(members []Member) float64 {
	if len(members) == 0 {
		return 0
	}
	var sum float64
	for _, m := range members {
		sum += m.Bandwidth
	}
	return sum / float64(len(members))
}
