package workload

import (
	"fmt"
	"math/rand"
)

// EventKind distinguishes churn events.
type EventKind int

const (
	// EventJoin introduces a new member.
	EventJoin EventKind = iota + 1
	// EventLeave removes an existing member gracefully.
	EventLeave
	// EventFail removes an existing member without notice (crash).
	EventFail
	// EventNoop changes nothing: it advances the schedule clock one step,
	// letting whatever runs between events (maintenance rounds, probes,
	// fault windows keyed on event steps) happen without churn. Scenario
	// scripts use it to give the overlay repair time inside a composed
	// failure, or to hold a fault window open for a measured duration.
	EventNoop
)

// String implements fmt.Stringer.
func (k EventKind) String() string {
	switch k {
	case EventJoin:
		return "join"
	case EventLeave:
		return "leave"
	case EventFail:
		return "fail"
	case EventNoop:
		return "noop"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// Event is one membership change in a churn schedule. Index identifies the
// member: for joins it is a fresh index, for leaves/failures it selects among
// the currently alive members at schedule-generation time.
type Event struct {
	Kind  EventKind
	Index int
	// Capacity, when > 0, pins the capacity of a joining member instead of
	// the simulation's random draw. Scenario scripts use it to rejoin a
	// flapping member with a different capacity; generated schedules leave
	// it zero.
	Capacity int
}

// ChurnConfig parameterizes a churn schedule.
type ChurnConfig struct {
	Seed     int64
	Events   int     // total number of events to generate
	JoinFrac float64 // fraction of events that are joins (0..1)
	FailFrac float64 // fraction of departures that are crashes rather than graceful leaves
	Initial  int     // number of members alive before the schedule starts
}

// Schedule generates a deterministic churn schedule. The returned events
// reference member indices: joins introduce indices Initial, Initial+1, ...;
// departures pick a uniformly random currently-alive index. The schedule
// never drains the group below one member.
func Schedule(cfg ChurnConfig) ([]Event, error) {
	if cfg.Events < 0 {
		return nil, fmt.Errorf("workload: negative event count %d", cfg.Events)
	}
	if cfg.Initial < 1 {
		return nil, fmt.Errorf("workload: churn schedule needs at least one initial member, got %d", cfg.Initial)
	}
	if cfg.JoinFrac < 0 || cfg.JoinFrac > 1 {
		return nil, fmt.Errorf("workload: join fraction %g out of [0,1]", cfg.JoinFrac)
	}
	if cfg.FailFrac < 0 || cfg.FailFrac > 1 {
		return nil, fmt.Errorf("workload: fail fraction %g out of [0,1]", cfg.FailFrac)
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	alive := make([]int, cfg.Initial)
	for i := range alive {
		alive[i] = i
	}
	next := cfg.Initial

	events := make([]Event, 0, cfg.Events)
	for len(events) < cfg.Events {
		join := rng.Float64() < cfg.JoinFrac || len(alive) <= 1
		if join {
			events = append(events, Event{Kind: EventJoin, Index: next})
			alive = append(alive, next)
			next++
			continue
		}
		pos := rng.Intn(len(alive))
		idx := alive[pos]
		alive[pos] = alive[len(alive)-1]
		alive = alive[:len(alive)-1]
		kind := EventLeave
		if rng.Float64() < cfg.FailFrac {
			kind = EventFail
		}
		events = append(events, Event{Kind: kind, Index: idx})
	}
	return events, nil
}
