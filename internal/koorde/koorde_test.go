package koorde

import (
	"math/rand"
	"testing"

	"camcast/internal/ring"
	"camcast/internal/topology"
)

func randomRing(t testing.TB, bits uint, nodes int, seed int64) *topology.Ring {
	t.Helper()
	s := ring.MustSpace(bits)
	rng := rand.New(rand.NewSource(seed))
	seen := make(map[ring.ID]bool, nodes)
	ids := make([]ring.ID, 0, nodes)
	for len(ids) < nodes {
		id := s.Reduce(rng.Uint64())
		if !seen[id] {
			seen[id] = true
			ids = append(ids, id)
		}
	}
	r, err := topology.New(s, ids)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestNewValidation(t *testing.T) {
	r := randomRing(t, 8, 10, 1)
	if _, err := New(nil, 2); err == nil {
		t.Error("nil ring should fail")
	}
	if _, err := New(r, 1); err == nil {
		t.Error("degree 1 should fail")
	}
	n, err := New(r, 4)
	if err != nil {
		t.Fatal(err)
	}
	if n.Degree() != 4 {
		t.Errorf("Degree() = %d", n.Degree())
	}
}

// Koorde's left-shift neighbors: for x on a 2^6 ring with k = 2 the
// neighbor identifiers are 2x and 2x+1 (mod 64).
func TestNeighborIDsLeftShift(t *testing.T) {
	r, _ := topology.New(ring.MustSpace(6), []ring.ID{5, 36})
	n, _ := New(r, 2)
	pos, _ := r.PosOf(36)
	got := n.NeighborIDs(pos)
	want := []ring.ID{8, 9} // 2*36 mod 64 = 8
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("NeighborIDs = %v, want %v", got, want)
	}
}

// The paper's critique: Koorde neighbor identifiers differ only in the last
// digit, so they cluster — all k identifiers fall in one span of size k.
func TestNeighborIDsCluster(t *testing.T) {
	r := randomRing(t, 16, 100, 2)
	n, _ := New(r, 8)
	s := r.Space()
	for pos := 0; pos < r.Len(); pos++ {
		neighborIDs := n.NeighborIDs(pos)
		span := s.Dist(neighborIDs[0], neighborIDs[len(neighborIDs)-1])
		if span != uint64(n.Degree()-1) {
			t.Fatalf("node %d: neighbor identifiers span %d, want %d (clustered)",
				pos, span, n.Degree()-1)
		}
	}
}

func TestNeighborNodesDistinct(t *testing.T) {
	r := randomRing(t, 14, 300, 3)
	n, _ := New(r, 8)
	for pos := 0; pos < r.Len(); pos++ {
		seen := map[int]bool{}
		for _, p := range n.NeighborNodes(pos) {
			if p == pos {
				t.Fatalf("node %d lists itself", pos)
			}
			if seen[p] {
				t.Fatalf("node %d lists neighbor %d twice", pos, p)
			}
			seen[p] = true
		}
	}
}

func TestLookupMatchesResponsible(t *testing.T) {
	for _, degree := range []int{2, 4, 16} {
		r := randomRing(t, 13, 200, int64(degree))
		n, err := New(r, degree)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(7))
		for trial := 0; trial < 1000; trial++ {
			from := rng.Intn(r.Len())
			k := r.Space().Reduce(rng.Uint64())
			want := r.Responsible(k)
			got, _ := n.Lookup(from, k)
			if got != want {
				t.Fatalf("degree %d: Lookup(k=%d) = %d, want %d", degree, k, got, want)
			}
		}
	}
}

func TestLookupSingleNode(t *testing.T) {
	r, _ := topology.New(ring.MustSpace(6), []ring.ID{9})
	n, _ := New(r, 2)
	if resp, _ := n.Lookup(0, 50); resp != 0 {
		t.Error("single-node lookup should return the node")
	}
}

func TestBuildTreeExactlyOnce(t *testing.T) {
	for _, degree := range []int{2, 4, 8} {
		r := randomRing(t, 14, 500, int64(degree)*5)
		n, err := New(r, degree)
		if err != nil {
			t.Fatal(err)
		}
		tree, _, err := n.BuildTree(0)
		if err != nil {
			t.Fatalf("degree %d: %v", degree, err)
		}
		if err := tree.VerifyComplete(); err != nil {
			t.Fatalf("degree %d: %v", degree, err)
		}
	}
}

func TestBuildTreeEverySource(t *testing.T) {
	r := randomRing(t, 12, 120, 11)
	n, _ := New(r, 4)
	for src := 0; src < r.Len(); src++ {
		tree, _, err := n.BuildTree(src)
		if err != nil {
			t.Fatalf("src %d: %v", src, err)
		}
		if err := tree.VerifyComplete(); err != nil {
			t.Fatalf("src %d: %v", src, err)
		}
	}
}

// Because Koorde neighbors cluster and collapse onto few physical nodes, its
// flooded trees are deeper than CAM-Koorde's at equal degree. Here we only
// assert the baseline's own property: effective out-degree is often below
// the nominal degree.
func TestEffectiveDegreeCollapses(t *testing.T) {
	r := randomRing(t, 16, 400, 12) // sparse ring: 400 nodes in 2^16 ids
	n, _ := New(r, 16)
	collapsed := 0
	for pos := 0; pos < r.Len(); pos++ {
		if len(n.NeighborNodes(pos)) < 16 {
			collapsed++
		}
	}
	if collapsed < r.Len()/2 {
		t.Errorf("only %d/%d nodes have collapsed neighbor sets; expected clustering", collapsed, r.Len())
	}
}
