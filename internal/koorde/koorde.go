// Package koorde implements the capacity-UNAWARE Koorde baseline (Kaashoek
// & Karger, IPTPS'03), reference [14] of the paper. Node x's de Bruijn
// neighbors are derived by shifting x one digit (base k) to the LEFT and
// replacing the lowest digit:
//
//	(k·x + j) mod N,  j ∈ [0..k-1],
//
// plus the ring links (predecessor and successor) Koorde needs for
// correctness. As Section 4 of the paper observes, these neighbor
// identifiers differ only in the last digit, so they cluster on the ring and
// often resolve to the same physical node — the flaw CAM-Koorde's
// right-shift construction fixes.
//
// Multicast is flooding with duplicate suppression, the same routine
// CAM-Koorde uses (Section 4.3), so the two systems differ only in their
// neighbor structure.
package koorde

import (
	"fmt"
	"sync"

	"camcast/internal/multicast"
	"camcast/internal/ring"
	"camcast/internal/topology"
)

// Network is a degree-k Koorde overlay over a static membership snapshot.
type Network struct {
	ring   *topology.Ring
	degree uint64
}

// New builds a Koorde network with de Bruijn degree k >= 2.
func New(r *topology.Ring, degree int) (*Network, error) {
	if r == nil {
		return nil, fmt.Errorf("koorde: nil ring")
	}
	if degree < 2 {
		return nil, fmt.Errorf("koorde: degree %d must be >= 2", degree)
	}
	return &Network{ring: r, degree: uint64(degree)}, nil
}

// Ring returns the underlying membership snapshot.
func (n *Network) Ring() *topology.Ring { return n.ring }

// Degree returns the de Bruijn degree k.
func (n *Network) Degree() int { return int(n.degree) }

// Step computes one de Bruijn digit step from identifier x: shift x one
// digit (base k) to the LEFT and append digit j, i.e. (k·x + j) mod N. This
// is the per-hop state transition of Koorde's imaginary-node routing; the
// neighbor set of a node is exactly {Step(x, j) : j ∈ [0, k)}.
func (n *Network) Step(x ring.ID, j uint64) ring.ID {
	s := n.ring.Space()
	return s.Add(s.Reduce(x*n.degree), j%n.degree)
}

// NeighborIDs enumerates the de Bruijn neighbor identifiers k·x + j of the
// node at ring position pos.
func (n *Network) NeighborIDs(pos int) []ring.ID {
	x := n.ring.IDAt(pos)
	out := make([]ring.ID, 0, n.degree)
	for j := uint64(0); j < n.degree; j++ {
		out = append(out, n.Step(x, j))
	}
	return out
}

// NeighborNodes resolves the node's de Bruijn and ring neighbors to
// distinct ring positions, excluding the node itself.
func (n *Network) NeighborNodes(pos int) []int {
	return n.AppendNeighborNodes(make([]int, 0, int(n.degree)+2), pos)
}

// AppendNeighborNodes appends the node's distinct neighbor positions
// (excluding pos itself) to dst and returns the extended slice, resolving
// the de Bruijn identifiers on the fly and deduplicating by scanning the
// appended window, so a flood can reuse one buffer across the whole build.
func (n *Network) AppendNeighborNodes(dst []int, pos int) []int {
	start := len(dst)
	add := func(p int) {
		if p == pos {
			return
		}
		for _, q := range dst[start:] {
			if q == p {
				return
			}
		}
		dst = append(dst, p)
	}
	add(n.ring.Predecessor(pos))
	add(n.ring.Successor(pos))
	s := n.ring.Space()
	base := s.Reduce(n.ring.IDAt(pos) * n.degree) // k·x mod N
	for j := uint64(0); j < n.degree; j++ {
		add(n.ring.Responsible(s.Add(base, j)))
	}
	return dst
}

// Lookup resolves the node responsible for identifier k starting at
// position from. It routes greedily: hop to the neighbor (de Bruijn or
// ring) that lands furthest clockwise inside (x, k]; the successor edge
// guarantees progress and therefore termination with the correct node.
// (The original Koorde "imaginary node" routing achieves O(log_k n) hops;
// this baseline only needs a correct lookup for membership maintenance, and
// no figure in the paper measures Koorde lookup paths.)
func (n *Network) Lookup(from int, k ring.ID) (resp int, path []int) {
	s := n.ring.Space()
	x := from
	path = append(path, x)
	for {
		xid := n.ring.IDAt(x)
		pred := n.ring.Predecessor(x)
		if s.InOC(k, n.ring.IDAt(pred), xid) || n.ring.Len() == 1 {
			return x, path
		}
		succ := n.ring.Successor(x)
		if s.InOC(k, xid, n.ring.IDAt(succ)) {
			return succ, path
		}

		best, bestDist := succ, s.Dist(n.ring.IDAt(succ), k)
		for _, id := range n.NeighborIDs(x) {
			z := n.ring.Responsible(id)
			zid := n.ring.IDAt(z)
			if z == x || !s.InOC(zid, xid, k) {
				continue
			}
			if d := s.Dist(zid, k); d < bestDist {
				best, bestDist = z, d
			}
		}
		x = best
		path = append(path, x)
	}
}

// BuildTree floods the message from src exactly as CAM-Koorde does, but
// over Koorde's clustered neighbor structure. It returns the implicit tree
// and the number of duplicate offers suppressed by the dedup handshake.
func (n *Network) BuildTree(src int) (tree *multicast.Tree, redundant int, err error) {
	tree, err = multicast.NewTree(n.ring.Len(), src)
	if err != nil {
		return nil, 0, err
	}
	redundant, err = n.flood(tree, src)
	if err != nil {
		return nil, 0, err
	}
	return tree, redundant, nil
}

// BuildTreeInto rebuilds the flood tree from src into tree, which must span
// exactly Ring().Len() nodes. The tree is Reset first, so a caller can reuse
// one allocation across many sources; see Tree.Reset.
func (n *Network) BuildTreeInto(tree *multicast.Tree, src int) (redundant int, err error) {
	if tree == nil {
		return 0, fmt.Errorf("koorde: nil tree")
	}
	if tree.Len() != n.ring.Len() {
		return 0, fmt.Errorf("koorde: tree spans %d nodes, ring has %d", tree.Len(), n.ring.Len())
	}
	if err := tree.Reset(src); err != nil {
		return 0, err
	}
	return n.flood(tree, src)
}

// floodScratch recycles the BFS queue and the neighbor buffer across builds,
// including concurrent ones from multiple experiment workers.
var floodScratch = sync.Pool{New: func() any { return &struct{ queue, nbuf []int }{} }}

// flood runs the BFS over the neighbor digraph; tree must already be rooted
// at src.
func (n *Network) flood(tree *multicast.Tree, src int) (redundant int, err error) {
	sc := floodScratch.Get().(*struct{ queue, nbuf []int })
	queue := sc.queue[:0]
	defer func() { sc.queue = queue[:0]; floodScratch.Put(sc) }()
	queue = append(queue, src)
	for head := 0; head < len(queue); head++ {
		x := queue[head]
		sc.nbuf = n.AppendNeighborNodes(sc.nbuf[:0], x)
		for _, p := range sc.nbuf {
			if tree.Received(p) {
				redundant++
				continue
			}
			if err := tree.Deliver(x, p); err != nil {
				return 0, err
			}
			queue = append(queue, p)
		}
	}
	return redundant, nil
}
