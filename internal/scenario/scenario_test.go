package scenario

import (
	"bytes"
	"testing"

	"camcast/internal/replay"
	"camcast/internal/runtime"
)

// TestScenarios runs the whole catalog in both protocol modes and holds
// each run to its scenario's delivery expectations. This is the CI
// scenario matrix; it runs race-enabled there.
//
// Cells run sequentially on purpose: each live run uses real-time RPC
// deadlines and suspicion windows, and a dozen concurrent clusters starve
// each other enough to fake repair failures. The whole matrix is still
// well under a minute.
func TestScenarios(t *testing.T) {
	for _, s := range All() {
		for _, mode := range []runtime.Mode{runtime.ModeCAMChord, runtime.ModeCAMKoorde} {
			t.Run(s.Name+"/"+mode.String(), func(t *testing.T) {
				res, err := Run(s, mode, 42, nil)
				if err != nil {
					t.Fatalf("%v (result: mean=%.3f ratios=%v)", err, res.MeanDelivery, res.DeliveryRatios)
				}
			})
		}
	}
}

// TestScenarioRecordReplay records one composite scenario and requires two
// independent replays of its log to agree exactly.
func TestScenarioRecordReplay(t *testing.T) {
	s, err := Get("burst-loss-during-repair")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := Run(s, runtime.ModeCAMChord, 42, &buf); err != nil {
		t.Fatalf("recorded run: %v", err)
	}
	log, err := replay.ReadLog(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadLog: %v", err)
	}
	if log.Header.Scenario != s.Name {
		t.Errorf("log labeled %q, want %q", log.Header.Scenario, s.Name)
	}
	a, err := replay.Run(log)
	if err != nil {
		t.Fatalf("first replay: %v", err)
	}
	b, err := replay.Run(log)
	if err != nil {
		t.Fatalf("second replay: %v", err)
	}
	if d := replay.Compare(a, b); d != nil {
		t.Fatalf("replays diverged:\n%s", d)
	}
}

func TestGet(t *testing.T) {
	if _, err := Get("no-such-scenario"); err == nil {
		t.Error("Get accepted an unknown name")
	}
	names := Names()
	if len(names) != 6 {
		t.Fatalf("catalog has %d scenarios, want 6", len(names))
	}
	for _, name := range names {
		s, err := Get(name)
		if err != nil {
			t.Errorf("Get(%q): %v", name, err)
		}
		if s.Description == "" || s.MinMean <= 0 || s.MinLast <= 0 {
			t.Errorf("scenario %q underspecified: %+v", name, s)
		}
	}
}
