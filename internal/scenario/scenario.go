// Package scenario is the named failure-scenario library: seeded, scripted
// composite failures — flash crowds, correlated rack crashes, asymmetric
// partitions, capacity flaps, slow receivers, burst loss overlapping
// repair — each expressed as a churnsim schedule plus a fault plan, and
// each carrying the delivery expectations it must sustain. Scenarios run
// three ways with identical semantics: as race-enabled table tests in this
// package, from the camchurn CLI (`camchurn -scenario <name>`), and — once
// recorded with churnsim's replay log — as deterministic replays under
// internal/replay.
//
// The library exists because individual fault knobs under-test resilience:
// the paper's repair mechanisms (successor handoff, ring walks, refloods)
// earn their keep when failures compose — a member crashes while loss is
// already eating retransmissions, a rack vanishes the moment a flash crowd
// is still integrating. Each scenario scripts one such composition with a
// fixed seed so a regression reproduces, not flickers.
package scenario

import (
	"fmt"
	"io"
	"time"

	"camcast/internal/churnsim"
	"camcast/internal/runtime"
	"camcast/internal/workload"
)

// Scenario is one named composite failure.
type Scenario struct {
	// Name is the CLI-facing identifier (e.g. "correlated-rack-crash").
	Name string
	// Description is one line for -scenarios listings.
	Description string

	// MinMean is the minimum mean delivery ratio over every probe of the
	// run, faults included. MinLast is the minimum ratio of the trailing
	// probe, which fires after every fault window has healed and recovery
	// rounds have run — the "did the overlay actually recover" check.
	// Thresholds are deliberately conservative: live scenario runs are
	// concurrent and seed-perturbed by scheduling, so they gate on "the
	// repair machinery engaged and won", not on exact counts (exact
	// equality is the replay engine's job).
	MinMean float64
	MinLast float64

	build func(mode runtime.Mode, seed int64) churnsim.Config
}

// Config materializes the scenario's churnsim configuration for a protocol
// mode and seed. The seed perturbs capacities, probe sources and join
// routes; the schedule and fault plan are fixed by the scenario.
func (s Scenario) Config(mode runtime.Mode, seed int64) churnsim.Config {
	return s.build(mode, seed)
}

// Check verifies a run's outcome against the scenario's expectations.
func (s Scenario) Check(res churnsim.Result) error {
	if res.Probes == 0 {
		return fmt.Errorf("scenario %s: no probes measured", s.Name)
	}
	if res.MeanDelivery < s.MinMean {
		return fmt.Errorf("scenario %s: mean delivery %.3f below %.3f", s.Name, res.MeanDelivery, s.MinMean)
	}
	last := res.DeliveryRatios[len(res.DeliveryRatios)-1]
	if last < s.MinLast {
		return fmt.Errorf("scenario %s: post-recovery delivery %.3f below %.3f", s.Name, last, s.MinLast)
	}
	return nil
}

// Run executes the scenario, optionally recording a replay log, and checks
// the outcome against the scenario's expectations. The Result is returned
// even when the check fails, so callers can report the measurements.
func Run(s Scenario, mode runtime.Mode, seed int64, record io.Writer) (churnsim.Result, error) {
	cfg := s.Config(mode, seed)
	if record != nil {
		cfg.Record = record
		cfg.Label = s.Name
	}
	res, err := churnsim.Run(cfg)
	if err != nil {
		return res, fmt.Errorf("scenario %s: %w", s.Name, err)
	}
	return res, s.Check(res)
}

// All returns every scenario in catalog order.
func All() []Scenario { return scenarios }

// Names returns every scenario name in catalog order.
func Names() []string {
	out := make([]string, len(scenarios))
	for i, s := range scenarios {
		out[i] = s.Name
	}
	return out
}

// Get resolves a scenario by name.
func Get(name string) (Scenario, error) {
	for _, s := range scenarios {
		if s.Name == name {
			return s, nil
		}
	}
	return Scenario{}, fmt.Errorf("scenario: unknown scenario %q (have %v)", name, Names())
}

// base is the cluster every scenario starts from: 20 members, converged,
// with capacities valid for both protocol modes.
func base(mode runtime.Mode, seed int64) churnsim.Config {
	return churnsim.Config{
		Mode:              mode,
		Initial:           20,
		CapacityLo:        4,
		CapacityHi:        8,
		Bits:              16,
		Seed:              seed,
		MaintenanceBudget: 1,
		ProbeEvery:        3,
	}
}

// noops appends n schedule steps that only run maintenance, probes and
// fault windows.
func noops(events []workload.Event, n int) []workload.Event {
	for i := 0; i < n; i++ {
		events = append(events, workload.Event{Kind: workload.EventNoop})
	}
	return events
}

var scenarios = []Scenario{
	{
		Name: "flash-crowd-join",
		Description: "12 members join back-to-back faster than maintenance converges, " +
			"then the overlay gets recovery rounds",
		MinMean: 0.55,
		MinLast: 0.95,
		build: func(mode runtime.Mode, seed int64) churnsim.Config {
			cfg := base(mode, seed)
			var ev []workload.Event
			for i := 0; i < 12; i++ {
				ev = append(ev, workload.Event{Kind: workload.EventJoin, Index: 20 + i})
			}
			cfg.Schedule = noops(ev, 9)
			return cfg
		},
	},
	{
		Name: "correlated-rack-crash",
		Description: "a quarter of the group (one 'rack') crashes in the same instant; " +
			"survivors must repair around the hole",
		MinMean: 0.55,
		MinLast: 0.95,
		build: func(mode runtime.Mode, seed int64) churnsim.Config {
			cfg := base(mode, seed)
			cfg.Schedule = noops(nil, 15)
			cfg.Faults = &churnsim.FaultPlan{Events: []churnsim.FaultEvent{
				{Kind: churnsim.FaultGroupCrash, At: 3, Members: []int{2, 6, 10, 14, 18}},
			}}
			return cfg
		},
	},
	{
		Name: "asymmetric-partition",
		Description: "two members can send but hear nothing (inbound links fully lossy) " +
			"for a window, then the links heal",
		MinMean: 0.55,
		MinLast: 0.95,
		build: func(mode runtime.Mode, seed int64) churnsim.Config {
			cfg := base(mode, seed)
			cfg.Schedule = noops(nil, 15)
			cfg.Faults = &churnsim.FaultPlan{Events: []churnsim.FaultEvent{
				{Kind: churnsim.FaultLinkLoss, At: 2, Until: 8, From: churnsim.Any, To: 3, Rate: 1},
				{Kind: churnsim.FaultLinkLoss, At: 2, Until: 8, From: churnsim.Any, To: 4, Rate: 1},
			}}
			return cfg
		},
	},
	{
		Name: "capacity-flap",
		Description: "one member crashes and rejoins with a different capacity, three times " +
			"in quick succession",
		MinMean: 0.55,
		MinLast: 0.95,
		build: func(mode runtime.Mode, seed int64) churnsim.Config {
			cfg := base(mode, seed)
			cfg.MaintenanceBudget = 2
			var ev []workload.Event
			caps := []int{8, 4, 8}
			for _, c := range caps {
				ev = append(ev, workload.Event{Kind: workload.EventFail, Index: 5})
				ev = append(ev, workload.Event{Kind: workload.EventNoop})
				ev = append(ev, workload.Event{Kind: workload.EventJoin, Index: 5, Capacity: c})
				ev = append(ev, workload.Event{Kind: workload.EventNoop})
			}
			cfg.Schedule = noops(ev, 4)
			return cfg
		},
	},
	{
		Name: "slow-receiver-backpressure",
		Description: "every message into one member is delayed for a window; slowness must " +
			"cost only latency, never delivery",
		// A slow link is not a lossy link: delivery stays essentially
		// perfect throughout, which is exactly the property under test.
		MinMean: 0.9,
		MinLast: 0.95,
		build: func(mode runtime.Mode, seed int64) churnsim.Config {
			cfg := base(mode, seed)
			cfg.Schedule = noops(nil, 12)
			cfg.Faults = &churnsim.FaultPlan{Events: []churnsim.FaultEvent{
				{Kind: churnsim.FaultLinkDelay, At: 2, Until: 9, From: churnsim.Any, To: 6, Delay: 8 * time.Millisecond},
			}}
			return cfg
		},
	},
	{
		Name: "burst-loss-during-repair",
		Description: "two members crash in the middle of a 25% loss window, so the very " +
			"retransmissions and repair handoffs that cover the crash are themselves lossy",
		// MinLast allows one straggler out of 18 survivors: the crash
		// happens while loss is already eating the repair traffic, so one
		// member occasionally rejoins the tree a probe late.
		MinMean: 0.55,
		MinLast: 0.9,
		build: func(mode runtime.Mode, seed int64) churnsim.Config {
			cfg := base(mode, seed)
			cfg.Schedule = noops(nil, 15)
			cfg.Faults = &churnsim.FaultPlan{Events: []churnsim.FaultEvent{
				{Kind: churnsim.FaultLinkLoss, At: 2, Until: 8, From: churnsim.Any, To: churnsim.Any, Rate: 0.25},
				{Kind: churnsim.FaultGroupCrash, At: 4, Members: []int{7, 8}},
			}}
			return cfg
		},
	},
}
