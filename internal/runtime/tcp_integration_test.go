package runtime

import (
	"sync"
	"testing"

	"camcast/internal/ring"
	"camcast/internal/transport"
)

// TestMulticastOverTCP runs the full protocol — join, stabilization, table
// repair and multicast — across real TCP sockets, one transport per node as
// separate processes would have.
func TestMulticastOverTCP(t *testing.T) {
	RegisterWireTypes()
	const groupSize = 6
	space := ring.MustSpace(16)

	var (
		mu  sync.Mutex
		got = map[string]map[string]int{} // addr -> msgID -> count
	)

	transports := make([]*transport.TCP, 0, groupSize)
	nodes := make([]*Node, 0, groupSize)
	t.Cleanup(func() {
		for _, n := range nodes {
			n.Stop()
		}
		for _, tr := range transports {
			tr.Close()
		}
	})

	for i := 0; i < groupSize; i++ {
		tr, err := transport.NewTCP("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		transports = append(transports, tr)
		addr := tr.Addr()
		cfg := Config{
			Space: space, Mode: ModeCAMChord, Capacity: 3,
			OnDeliver: func(d Delivery) {
				mu.Lock()
				defer mu.Unlock()
				if got[addr] == nil {
					got[addr] = map[string]int{}
				}
				got[addr][d.MsgID]++
			},
		}
		n, err := NewNode(tr, addr, cfg)
		if err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, n)
		if i == 0 {
			if err := n.Bootstrap(); err != nil {
				t.Fatal(err)
			}
			continue
		}
		if err := n.Join(transports[0].Addr()); err != nil {
			t.Fatalf("node %d join over tcp: %v", i, err)
		}
		for r := 0; r < 2; r++ {
			for _, m := range nodes {
				m.StabilizeOnce()
			}
		}
	}
	for r := 0; r < 3; r++ {
		for _, m := range nodes {
			m.StabilizeOnce()
		}
		for _, m := range nodes {
			m.FixAll()
		}
	}

	msgID, err := nodes[2].Multicast([]byte("over real sockets"))
	if err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	for _, n := range nodes {
		if got[n.Self().Addr][msgID] != 1 {
			t.Errorf("%s received %d copies of %s, want exactly 1",
				n.Self().Addr, got[n.Self().Addr][msgID], msgID)
		}
	}
}

// TestLookupOverTCP verifies that recursive find_successor chains work
// across sockets, including the gob round-trip of every wire type involved.
func TestLookupOverTCP(t *testing.T) {
	RegisterWireTypes()
	space := ring.MustSpace(16)

	var transports []*transport.TCP
	var nodes []*Node
	t.Cleanup(func() {
		for _, n := range nodes {
			n.Stop()
		}
		for _, tr := range transports {
			tr.Close()
		}
	})
	for i := 0; i < 4; i++ {
		tr, err := transport.NewTCP("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		transports = append(transports, tr)
		n, err := NewNode(tr, tr.Addr(), Config{Space: space, Mode: ModeCAMKoorde, Capacity: 4})
		if err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, n)
		if i == 0 {
			if err := n.Bootstrap(); err != nil {
				t.Fatal(err)
			}
		} else if err := n.Join(transports[0].Addr()); err != nil {
			t.Fatal(err)
		}
		for r := 0; r < 2; r++ {
			for _, m := range nodes {
				m.StabilizeOnce()
			}
		}
	}
	for _, m := range nodes {
		m.FixAll()
	}

	// Every node resolves every other node's own identifier to that node.
	for _, from := range nodes {
		for _, target := range nodes {
			resp, _, err := from.FindSuccessor(target.Self().ID)
			if err != nil {
				t.Fatalf("lookup over tcp: %v", err)
			}
			if resp.Addr != target.Self().Addr {
				t.Errorf("lookup of %d from %s = %s, want %s",
					target.Self().ID, from.Self().Addr, resp.Addr, target.Self().Addr)
			}
		}
	}
}
