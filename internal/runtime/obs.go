package runtime

import (
	"fmt"

	"camcast/internal/obsv"
	"camcast/internal/trace"
)

// nodeObs caches a node's observability handles: the live event bus plus
// the registry instruments updated on protocol hot paths. Instrument
// pointers are resolved once at construction and every one of them is
// nil-safe, so an uninstrumented node pays only nil checks — no map
// lookups, no branches on configuration.
type nodeObs struct {
	bus *obsv.Bus

	delivered  *obsv.Counter
	duplicates *obsv.Counter
	acked      *obsv.Counter
	retries    *obsv.Counter
	repaired   *obsv.Counter
	lost       *obsv.Counter

	lookupHops *obsv.Histogram // hops per locally initiated lookup
	treeTime   *obsv.Histogram // full dissemination-tree time at the source
	spreadTime *obsv.Histogram // per-node segment spread time
	joinTime   *obsv.Histogram // Join wall time (lookup + first stabilize)
	leaveTime  *obsv.Histogram // graceful-Leave wall time (splice-out RPCs)

	// encodes counts payload blobs this node materialized at origination.
	// It shares its metric name with the transport's serving-side count (a
	// member's node and transport write into one registry), so the total is
	// every payload materialization on this member — which the zero-copy
	// path keeps at one per message regardless of fan-out.
	encodes *obsv.Counter
}

func newNodeObs(bus *obsv.Bus, reg *obsv.Registry) nodeObs {
	return nodeObs{
		bus:        bus,
		delivered:  reg.Counter(obsv.MetricDelivered),
		duplicates: reg.Counter(obsv.MetricDuplicates),
		acked:      reg.Counter(obsv.MetricForwardAcked),
		retries:    reg.Counter(obsv.MetricForwardRetries),
		repaired:   reg.Counter(obsv.MetricForwardRepaired),
		lost:       reg.Counter(obsv.MetricForwardLost),
		lookupHops: reg.Histogram(obsv.MetricLookupHops, obsv.HopBuckets),
		treeTime:   reg.Histogram(obsv.MetricMulticastTime, obsv.LatencyBuckets),
		spreadTime: reg.Histogram(obsv.MetricSegmentSpread, obsv.LatencyBuckets),
		joinTime:   reg.Histogram(obsv.MetricJoinTime, obsv.LatencyBuckets),
		leaveTime:  reg.Histogram(obsv.MetricLeaveTime, obsv.LatencyBuckets),
		encodes:    reg.Counter(obsv.MetricPayloadEncodes),
	}
}

// emit publishes one protocol event to both consumers: the synchronous
// tracer (test assertions) and the live bus (streaming subscribers).
func (n *Node) emit(kind trace.Kind, detail string) {
	n.cfg.Tracer.Emit(n.self.Addr, kind, detail)
	n.obs.bus.Emit(n.self.Addr, kind, detail)
}

// emitf is emit with lazy formatting: the detail string is built only when
// a tracer is attached or a bus subscriber is watching, so unobserved
// protocol paths skip the fmt call entirely.
func (n *Node) emitf(kind trace.Kind, format string, args ...any) {
	if !n.observed() {
		return
	}
	n.emit(kind, fmt.Sprintf(format, args...))
}

// observed reports whether anything is listening to this node's protocol
// events. emitf checks it internally, but that alone does not keep a hot
// path allocation-free: emitf's variadic args box into a []any at the call
// site before the guard runs. Hot paths (deliver, duplicate suppression,
// the forward/flood ack turns) therefore wrap their emitf calls in an
// `if n.observed()` of their own — the check is small enough to inline, and
// the boxing moves behind it, which is what the 0 allocs/op dissemination
// gates measure.
func (n *Node) observed() bool {
	return n.cfg.Tracer != nil || n.obs.bus.Active()
}
