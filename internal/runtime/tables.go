package runtime

import (
	"sort"
	"sync"

	"camcast/internal/ring"
	"camcast/internal/trace"
)

// tableKey addresses one CAM-Chord neighbor slot x_{level,seq}.
type tableKey struct {
	level uint32
	seq   uint32
}

// packed orders keys the way specFor emits slots: ascending (level, seq).
func (k tableKey) packed() uint64 { return uint64(k.level)<<32 | uint64(k.seq) }

// Slot identifier forms. A slot's target identifier is a pure function of
// the node's own identifier x, so the table layout never stores per-node
// identifiers — it stores the recipe.
const (
	specChord  uint8 = iota // id = space.Add(x, a)           (x_{i,j} = x + j*c^i, Section 3.1)
	specKoorde              // id = TopBits(a, b) | Shr(x, b) (de Bruijn groups, Section 4.1)
)

// slotSpec is one routing-table slot recipe: the slot key plus the
// parameters that turn a node identifier into the slot's target.
type slotSpec struct {
	key  tableKey
	kind uint8
	a, b uint64
}

// tableSpec is the immutable routing-table layout shared by every node
// with the same (identifier space, mode, capacity): which slots exist and
// how each slot's target identifier derives from the node's own. Nodes
// used to carry this per instance — a targets slice plus a key->index map,
// several KB per member; now a membership of a million nodes holds a few
// dozen specs between them and computes slot identifiers on demand.
type tableSpec struct {
	slots []slotSpec // ascending (level, seq); koordeNeighbors and replay rely on this order
}

func (ts *tableSpec) len() int { return len(ts.slots) }

// id computes slot i's target identifier for a node with identifier x.
func (ts *tableSpec) id(s ring.Space, x ring.ID, i int) ring.ID {
	sp := &ts.slots[i]
	if sp.kind == specChord {
		return s.Add(x, sp.a)
	}
	return s.TopBits(sp.a, uint(sp.b)) | s.Shr(x, uint(sp.b))
}

// slotIndex resolves a tableKey to its slot index by binary search over the
// sorted slot list — the per-node key->index map this replaces cost ~3KB
// per member for a lookup that happens once per planned child segment.
func (ts *tableSpec) slotIndex(key tableKey) (int, bool) {
	want := key.packed()
	i := sort.Search(len(ts.slots), func(j int) bool { return ts.slots[j].key.packed() >= want })
	if i < len(ts.slots) && ts.slots[i].key == key {
		return i, true
	}
	return 0, false
}

// specKey identifies one shared layout.
type specKey struct {
	bits     uint
	mode     Mode
	capacity int
}

var specCache sync.Map // specKey -> *tableSpec

// specFor returns the shared routing-table layout for (space, mode,
// capacity), building and caching it on first use. CAM-Chord: x_{i,j} =
// x + j*c^i (Section 3.1). CAM-Koorde: the non-ring basic identifiers x/2
// and 2^{b-1}+x/2 plus the second and third groups (Section 4.1);
// predecessor/successor come from ring maintenance.
func specFor(s ring.Space, mode Mode, capacity int) *tableSpec {
	k := specKey{bits: s.Bits(), mode: mode, capacity: capacity}
	if v, ok := specCache.Load(k); ok {
		return v.(*tableSpec)
	}
	ts := &tableSpec{}
	c := uint64(capacity)
	switch mode {
	case ModeCAMChord:
		level := uint32(0)
		for pow := uint64(1); pow < s.Size(); pow *= c {
			for j := uint64(1); j <= c-1; j++ {
				d := j * pow
				if d >= s.Size() {
					break
				}
				ts.slots = append(ts.slots, slotSpec{
					key: tableKey{level: level, seq: uint32(j)}, kind: specChord, a: d,
				})
			}
			if pow > s.Size()/c {
				break
			}
			level++
		}
	case ModeCAMKoorde:
		// x/2 is TopBits(0,1)|Shr(x,1); 2^{b-1}+x/2 is TopBits(1,1)|Shr(x,1).
		ts.slots = append(ts.slots,
			slotSpec{key: tableKey{level: 0, seq: 0}, kind: specKoorde, a: 0, b: 1},
			slotSpec{key: tableKey{level: 0, seq: 1}, kind: specKoorde, a: 1, b: 1},
		)
		remaining := capacity - 4
		if remaining <= 0 {
			break
		}
		shift := ring.Log2Floor(uint64(remaining))
		t := 0
		if shift > 1 {
			t = 1 << shift
			for i := 0; i < t; i++ {
				ts.slots = append(ts.slots, slotSpec{
					key: tableKey{level: 1, seq: uint32(i)}, kind: specKoorde,
					a: uint64(i), b: uint64(shift),
				})
			}
		}
		tPrime := remaining - t
		sPrime := shift + 1
		for i := 0; i < tPrime; i++ {
			ts.slots = append(ts.slots, slotSpec{
				key: tableKey{level: 2, seq: uint32(i)}, kind: specKoorde,
				a: uint64(i), b: uint64(sPrime),
			})
		}
	}
	v, _ := specCache.LoadOrStore(k, ts)
	return v.(*tableSpec)
}

// FixOnce refreshes a batch of routing-table slots (round-robin, like
// Chord's fix_fingers) by looking up each slot's identifier. FixAll
// refreshes every slot; tests and joining nodes use it to converge
// immediately.
func (n *Node) FixOnce() {
	n.fix(4)
}

// FixAll refreshes the entire routing table in one pass.
func (n *Node) FixAll() {
	n.fix(n.spec.len())
}

func (n *Node) fix(batch int) {
	all := n.spec.slots
	if len(all) == 0 {
		return
	}
	if batch > len(all) {
		batch = len(all)
	}
	for i := 0; i < batch; i++ {
		n.mu.Lock()
		if n.stopped {
			n.mu.Unlock()
			return
		}
		idx := n.cursor % len(all)
		n.cursor++
		n.mu.Unlock()

		id := n.spec.id(n.space, n.self.ID, idx)
		info, _, err := n.FindSuccessor(id)
		if err != nil {
			continue // retry on a later pass
		}
		n.mu.Lock()
		old := n.setSlotLocked(idx, info)
		n.mu.Unlock()
		n.noteTopologyChange()
		if old.Addr != info.Addr {
			key := all[idx].key
			n.emitf(trace.KindRepair,
				"slot (%d,%d) id=%d -> %s", key.level, key.seq, id, info.Addr)
		}
	}
}

// routingCandidates returns candidate next hops for a lookup of k: known
// neighbors whose identifiers lie strictly inside (self, k], closest
// preceding k first, deduplicated, excluding self and currently-suspect
// peers (which just failed an RPC and would only burn a timeout). Callers
// fall through the list when a candidate is unreachable.
func (n *Node) routingCandidates(k ring.ID) []NodeInfo {
	n.mu.Lock()
	seen := make(map[string]bool, len(n.slotRefs)+len(n.succRefs)+1)
	cands := make([]NodeInfo, 0, len(n.slotRefs)+len(n.succRefs))
	add := func(info NodeInfo) {
		if info.zero() || info.Addr == n.self.Addr || seen[info.Addr] || n.isSuspect(info.Addr) {
			return
		}
		if !n.space.InOC(info.ID, n.self.ID, k) {
			return
		}
		seen[info.Addr] = true
		cands = append(cands, info)
	}
	for _, ref := range n.slotRefs {
		add(n.arena.Resolve(ref))
	}
	for _, ref := range n.succRefs {
		add(n.arena.Resolve(ref))
	}
	n.mu.Unlock()

	sort.Slice(cands, func(i, j int) bool {
		return n.space.Dist(cands[i].ID, k) < n.space.Dist(cands[j].ID, k)
	})
	if len(cands) > 8 {
		cands = cands[:8]
	}
	return cands
}

// tableSnapshot resolves the current slot contents, indexed like the
// node's tableSpec (resolve a tableKey with slotIndex). Unfilled slots are
// zero NodeInfos.
func (n *Node) tableSnapshot() []NodeInfo {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]NodeInfo, len(n.slotRefs))
	for i, ref := range n.slotRefs {
		out[i] = n.arena.Resolve(ref)
	}
	return out
}
