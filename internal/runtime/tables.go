package runtime

import (
	"sort"

	"camcast/internal/ring"
	"camcast/internal/trace"
)

// tableKey addresses one CAM-Chord neighbor slot x_{level,seq}.
type tableKey struct {
	level uint32
	seq   uint32
}

// target is one routing-table slot to maintain: the slot key and the
// identifier whose responsible node fills it.
type target struct {
	key tableKey
	id  ring.ID
}

// targetsFor enumerates the neighbor identifiers a node must track, mode
// dependent. CAM-Chord: x_{i,j} = x + j*c^i (Section 3.1). CAM-Koorde: the
// non-ring basic identifiers x/2 and 2^{b-1}+x/2 plus the second and third
// groups (Section 4.1); predecessor/successor come from ring maintenance.
//
// The enumeration depends only on the node's identity and configuration, so
// NewNode computes it once: the slice (and the key->slot index map derived
// from it) is immutable for the node's lifetime, and the mutable table state
// is just the dense slots slice indexed the same way. Slots appear in
// ascending (level, seq) order — koordeNeighbors and the replay engine rely
// on that being the iteration order.
func targetsFor(s ring.Space, mode Mode, capacity int, x ring.ID) []target {
	c := uint64(capacity)
	var out []target

	switch mode {
	case ModeCAMChord:
		level := uint32(0)
		for pow := uint64(1); pow < s.Size(); pow *= c {
			for j := uint64(1); j <= c-1; j++ {
				d := j * pow
				if d >= s.Size() {
					break
				}
				out = append(out, target{
					key: tableKey{level: level, seq: uint32(j)},
					id:  s.Add(x, d),
				})
			}
			if pow > s.Size()/c {
				break
			}
			level++
		}
	case ModeCAMKoorde:
		out = append(out,
			target{key: tableKey{level: 0, seq: 0}, id: s.Shr(x, 1)},
			target{key: tableKey{level: 0, seq: 1}, id: s.Add(s.Half(), s.Shr(x, 1))},
		)
		remaining := capacity - 4
		if remaining <= 0 {
			break
		}
		shift := ring.Log2Floor(uint64(remaining))
		t := 0
		if shift > 1 {
			t = 1 << shift
			for i := 0; i < t; i++ {
				out = append(out, target{
					key: tableKey{level: 1, seq: uint32(i)},
					id:  s.TopBits(uint64(i), shift) | s.Shr(x, shift),
				})
			}
		}
		tPrime := remaining - t
		sPrime := shift + 1
		for i := 0; i < tPrime; i++ {
			out = append(out, target{
				key: tableKey{level: 2, seq: uint32(i)},
				id:  s.TopBits(uint64(i), sPrime) | s.Shr(x, sPrime),
			})
		}
	}
	return out
}

// FixOnce refreshes a batch of routing-table slots (round-robin, like
// Chord's fix_fingers) by looking up each slot's identifier. FixAll
// refreshes every slot; tests and joining nodes use it to converge
// immediately.
func (n *Node) FixOnce() {
	n.fix(4)
}

// FixAll refreshes the entire routing table in one pass.
func (n *Node) FixAll() {
	n.fix(len(n.targets))
}

func (n *Node) fix(batch int) {
	all := n.targets
	if len(all) == 0 {
		return
	}
	if batch > len(all) {
		batch = len(all)
	}
	for i := 0; i < batch; i++ {
		n.mu.Lock()
		if n.stopped {
			n.mu.Unlock()
			return
		}
		idx := n.cursor % len(all)
		n.cursor++
		n.mu.Unlock()

		tgt := all[idx]
		info, _, err := n.FindSuccessor(tgt.id)
		if err != nil {
			continue // retry on a later pass
		}
		n.mu.Lock()
		old := n.slots[idx]
		n.slots[idx] = info
		n.mu.Unlock()
		n.noteTopologyChange()
		if old.Addr != info.Addr {
			n.emitf(trace.KindRepair,
				"slot (%d,%d) id=%d -> %s", tgt.key.level, tgt.key.seq, tgt.id, info.Addr)
		}
	}
}

// routingCandidates returns candidate next hops for a lookup of k: known
// neighbors whose identifiers lie strictly inside (self, k], closest
// preceding k first, deduplicated, excluding self and currently-suspect
// peers (which just failed an RPC and would only burn a timeout). Callers
// fall through the list when a candidate is unreachable.
func (n *Node) routingCandidates(k ring.ID) []NodeInfo {
	n.mu.Lock()
	seen := make(map[string]bool, len(n.slots)+len(n.succs)+1)
	cands := make([]NodeInfo, 0, len(n.slots)+len(n.succs))
	add := func(info NodeInfo) {
		if info.zero() || info.Addr == n.self.Addr || seen[info.Addr] || n.isSuspect(info.Addr) {
			return
		}
		if !n.space.InOC(info.ID, n.self.ID, k) {
			return
		}
		seen[info.Addr] = true
		cands = append(cands, info)
	}
	for _, info := range n.slots {
		add(info)
	}
	for _, info := range n.succs {
		add(info)
	}
	n.mu.Unlock()

	sort.Slice(cands, func(i, j int) bool {
		return n.space.Dist(cands[i].ID, k) < n.space.Dist(cands[j].ID, k)
	})
	if len(cands) > 8 {
		cands = cands[:8]
	}
	return cands
}

// tableSnapshot copies the current slot contents, indexed like targets
// (resolve a tableKey with slotOf). Unfilled slots are zero NodeInfos.
func (n *Node) tableSnapshot() []NodeInfo {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]NodeInfo, len(n.slots))
	copy(out, n.slots)
	return out
}
