package runtime

import (
	"fmt"
	goruntime "runtime"
	"sort"
	"sync"

	"camcast/internal/ring"
	"camcast/internal/trace"
)

// BulkOptions parameterizes BulkInstall.
type BulkOptions struct {
	// Parallelism is the number of goroutines installing tables (contiguous
	// chunks of the sorted membership each). Default GOMAXPROCS; 1 installs
	// serially in sorted-identifier order, which the replay engine uses for
	// deterministic construction.
	Parallelism int
}

// BulkInstall builds a correct ring directly from known membership: given
// every node of a fresh group up front, it sorts their identifiers once and
// installs predecessor, successor list, and every routing-table slot from
// the sorted array — no RPCs, no stabilize-paced convergence. On a complete
// sorted membership, FindSuccessor(k) is by definition the first identifier
// >= k, so a binary search per slot produces exactly the tables an
// incremental ramp converges to (the equivalence test in bulk_test.go holds
// both modes to that, byte for byte).
//
// This is assisted offline construction in the spirit of bounded-degree
// overlay builders: expensive iterative convergence is reserved for runtime
// churn, where membership is genuinely unknown. It is only safe when the
// node set given IS the whole group — every node must be fresh (never
// started, never stopped) and no other member may already exist, because
// installed state is derived purely from this snapshot. After BulkInstall
// returns, every node is started, registered on its network, and running
// its maintenance loops (if configured with per-node cadences); joins and
// leaves from that point use the normal incremental paths.
func BulkInstall(nodes []*Node, opts BulkOptions) error {
	m := len(nodes)
	if m == 0 {
		return fmt.Errorf("runtime: BulkInstall of empty membership")
	}
	if opts.Parallelism <= 0 {
		opts.Parallelism = goruntime.GOMAXPROCS(0)
	}

	mode, bits := nodes[0].cfg.Mode, nodes[0].space.Bits()
	for _, n := range nodes {
		n.mu.Lock()
		bad := n.started || n.stopped
		n.mu.Unlock()
		if bad {
			return fmt.Errorf("runtime: BulkInstall: node %s already started or stopped", n.self.Addr)
		}
		if n.cfg.Mode != mode || n.space.Bits() != bits {
			return fmt.Errorf("runtime: BulkInstall: node %s mode/space differs from %s",
				n.self.Addr, nodes[0].self.Addr)
		}
	}

	sorted := append([]*Node(nil), nodes...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].self.ID < sorted[j].self.ID })
	ids := make([]ring.ID, m)
	infos := make([]NodeInfo, m)
	for i, n := range sorted {
		if i > 0 && ids[i-1] == n.self.ID {
			return fmt.Errorf("runtime: BulkInstall: identifier collision %d between %s and %s",
				n.self.ID, infos[i-1].Addr, n.self.Addr)
		}
		ids[i] = n.self.ID
		infos[i] = n.self
	}

	// succOf(k): the first member with identifier >= k, wrapping past the
	// top of the ring to sorted[0] — FindSuccessor on a converged ring.
	succOf := func(k ring.ID) NodeInfo {
		i := sort.Search(m, func(j int) bool { return ids[j] >= k })
		if i == m {
			i = 0
		}
		return infos[i]
	}

	install := func(i int) {
		n := sorted[i]
		n.mu.Lock()
		n.started = true
		n.setPredLocked(infos[(i-1+m)%m])
		if m == 1 {
			n.setSuccSelfLocked()
		} else {
			k := n.cfg.SuccListLen
			if k > m-1 {
				k = m - 1
			}
			list := make([]NodeInfo, k)
			for j := 0; j < k; j++ {
				list[j] = infos[(i+1+j)%m]
			}
			n.setSuccsLocked(list)
		}
		for s := 0; s < n.spec.len(); s++ {
			n.setSlotLocked(s, succOf(n.spec.id(n.space, n.self.ID, s)))
		}
		n.noteTopologyChange()
		n.mu.Unlock()
	}

	if opts.Parallelism == 1 || m < 2*opts.Parallelism {
		for i := range sorted {
			install(i)
		}
	} else {
		var wg sync.WaitGroup
		chunk := (m + opts.Parallelism - 1) / opts.Parallelism
		for lo := 0; lo < m; lo += chunk {
			hi := lo + chunk
			if hi > m {
				hi = m
			}
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				for i := lo; i < hi; i++ {
					install(i)
				}
			}(lo, hi)
		}
		wg.Wait()
	}

	// Register and start loops serially in sorted order so trace output —
	// which replay compares byte for byte — is deterministic.
	for _, n := range sorted {
		n.net.Register(n.self.Addr, n.handleRPC)
		n.startLoops()
		n.emitf(trace.KindJoin, "bulk install id=%d", n.self.ID)
	}
	return nil
}
