package runtime

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"camcast/internal/obsv"
	"camcast/internal/ring"
	"camcast/internal/transport"
)

// TestMulticastStormSingleEncode drives a concurrent multi-source multicast
// storm over real TCP sockets and pins down the zero-copy contract:
//
//   - every node delivers every message exactly once (duplicate suppression
//     holds under concurrent sources);
//   - each member materializes a payload exactly once per multicast frame it
//     handles, so payload_encodes == delivered + duplicates per member — one
//     encode per message per node regardless of fan-out;
//   - the blob pool balances after quiesce: gets == puts means no frame or
//     relay path leaked a payload reference.
//
// Run under -race this doubles as the concurrency check on the refcounted
// blob lifecycle shared across the origin, relay, and serving paths.
func TestMulticastStormSingleEncode(t *testing.T) {
	RegisterWireTypes()
	const (
		groupSize  = 8
		sources    = 4
		perSource  = 3
		payloadLen = 4 << 10
	)
	space := ring.MustSpace(16)

	getsBase, putsBase := transport.BlobPoolStats()

	var (
		mu  sync.Mutex
		got = map[string]map[string]int{} // addr -> msgID -> deliveries
	)

	transports := make([]*transport.TCP, 0, groupSize)
	nodes := make([]*Node, 0, groupSize)
	regs := make([]*obsv.Registry, 0, groupSize)
	stopAll := func() {
		for _, n := range nodes {
			n.Stop()
		}
		for _, tr := range transports {
			tr.Close()
		}
	}
	t.Cleanup(stopAll)

	for i := 0; i < groupSize; i++ {
		tr, err := transport.NewTCP("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		reg := obsv.NewRegistry()
		tr.Instrument(reg)
		transports = append(transports, tr)
		regs = append(regs, reg)
		addr := tr.Addr()
		cfg := Config{
			Space: space, Mode: ModeCAMChord, Capacity: 4, Metrics: reg,
			OnDeliver: func(d Delivery) {
				mu.Lock()
				defer mu.Unlock()
				if got[addr] == nil {
					got[addr] = map[string]int{}
				}
				got[addr][d.MsgID]++
			},
		}
		n, err := NewNode(tr, addr, cfg)
		if err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, n)
		if i == 0 {
			if err := n.Bootstrap(); err != nil {
				t.Fatal(err)
			}
			continue
		}
		if err := n.Join(transports[0].Addr()); err != nil {
			t.Fatalf("node %d join: %v", i, err)
		}
		for r := 0; r < 2; r++ {
			for _, m := range nodes {
				m.StabilizeOnce()
			}
		}
	}
	for r := 0; r < 3; r++ {
		for _, m := range nodes {
			m.StabilizeOnce()
		}
		for _, m := range nodes {
			m.FixAll()
		}
	}

	// The storm: several sources multicast concurrently.
	var (
		wg     sync.WaitGroup
		idsMu  sync.Mutex
		msgIDs []string
	)
	for s := 0; s < sources; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for k := 0; k < perSource; k++ {
				payload := make([]byte, payloadLen)
				copy(payload, fmt.Sprintf("storm src=%d msg=%d", s, k))
				id, err := nodes[s*2].Multicast(payload)
				if err != nil {
					t.Errorf("source %d multicast %d: %v", s, k, err)
					return
				}
				idsMu.Lock()
				msgIDs = append(msgIDs, id)
				idsMu.Unlock()
			}
		}(s)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	// Exactly-once delivery at every member for every message.
	mu.Lock()
	for _, n := range nodes {
		for _, id := range msgIDs {
			if c := got[n.Self().Addr][id]; c != 1 {
				t.Errorf("%s delivered %d copies of %s, want exactly 1", n.Self().Addr, c, id)
			}
		}
	}
	mu.Unlock()

	// One payload materialization per multicast frame a member handled:
	// origination builds one blob, every received frame aliases one out of
	// its pooled buffer, and suppressed duplicates still decoded a frame —
	// so per member, encodes == delivered + duplicates exactly. Fan-out 4
	// with 8 members means each relay sends several child frames per
	// message; none of them may cost an extra encode.
	for i, reg := range regs {
		snap := reg.Snapshot()
		encodes := snap.Counters[obsv.MetricPayloadEncodes]
		delivered := snap.Counters[obsv.MetricDelivered]
		duplicates := snap.Counters[obsv.MetricDuplicates]
		if encodes != delivered+duplicates {
			t.Errorf("node %d: payload_encodes = %d, want delivered(%d) + duplicates(%d) = %d",
				i, encodes, delivered, duplicates, delivered+duplicates)
		}
		if min := uint64(len(msgIDs)); delivered < min {
			t.Errorf("node %d: delivered %d < %d messages", i, delivered, min)
		}
	}

	// Quiesce and check the pool balances: every blob handed out since the
	// baseline must have been released — frames, relays, retries, and the
	// serving path all gave their references back.
	stopAll()
	deadline := time.Now().Add(5 * time.Second)
	for {
		gets, puts := transport.BlobPoolStats()
		if gets-getsBase == puts-putsBase {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("blob pool leak after quiesce: %d gets vs %d puts since baseline",
				gets-getsBase, puts-putsBase)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
