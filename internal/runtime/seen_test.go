package runtime

import (
	"fmt"
	"strconv"
	"testing"
)

func TestSeenCacheBasics(t *testing.T) {
	c := newSeenCache(4)
	if c.Seen("a") {
		t.Fatal("fresh cache should not contain a")
	}
	if c.Record("a") {
		t.Fatal("first record should not be a duplicate")
	}
	if !c.Record("a") {
		t.Fatal("second record should be a duplicate")
	}
	if !c.Seen("a") {
		t.Fatal("a should be seen")
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d", c.Len())
	}
}

// TestSeenCacheRetentionWindow: a recorded ID must stay visible for at
// least limit further unique insertions — the dedup window the forwarding
// engine relies on to suppress duplicates of in-flight messages.
func TestSeenCacheRetentionWindow(t *testing.T) {
	const limit = 16
	c := newSeenCache(limit)
	c.Record("probe")
	for i := 0; i < limit; i++ {
		c.Record(fmt.Sprintf("filler-%d", i))
		if !c.Seen("probe") {
			t.Fatalf("probe forgotten after only %d unique inserts (window is %d)", i+1, limit)
		}
	}
}

// TestSeenCacheMemoryBound: the cache never retains more than 2*limit IDs
// no matter how many unique messages flow through — the bound that keeps
// 100k members at O(window) dedup memory instead of unbounded history.
func TestSeenCacheMemoryBound(t *testing.T) {
	const limit = 64
	c := newSeenCache(limit)
	for i := 0; i < 50*limit; i++ {
		c.Record(fmt.Sprintf("m-%d", i))
		if got := c.Len(); got > 2*limit {
			t.Fatalf("Len = %d after %d inserts, exceeds the 2*limit=%d bound", got, i+1, 2*limit)
		}
	}
	// Old history must actually be gone, not just uncounted.
	if c.Seen("m-0") {
		t.Fatal("m-0 should have aged out long ago")
	}
}

// TestSeenCacheStartsEmpty: construction must not preallocate the window
// (a fleet of idle members pays only for traffic it actually saw).
func TestSeenCacheStartsEmpty(t *testing.T) {
	c := newSeenCache(1 << 20)
	if c.Len() != 0 {
		t.Fatalf("fresh cache Len = %d", c.Len())
	}
	if len(c.cur) != 0 || c.prev != nil {
		t.Fatal("fresh cache should hold no generation data")
	}
}

// TestSeenCacheSweepDrains: two sweeps with no traffic in between empty
// the cache completely; a sweep in between recorded traffic still honors
// the one-generation retention.
func TestSeenCacheSweepDrains(t *testing.T) {
	c := newSeenCache(1024)
	c.Record("x")
	c.Sweep()
	if !c.Seen("x") {
		t.Fatal("x must survive one sweep (previous generation)")
	}
	c.Sweep()
	if c.Seen("x") {
		t.Fatal("x must be forgotten after two sweeps")
	}
	if c.Len() != 0 {
		t.Fatalf("Len = %d after two idle sweeps", c.Len())
	}
}

func TestSeenCacheMinimumLimit(t *testing.T) {
	c := newSeenCache(0) // clamps to 1
	c.Record("a")
	if !c.Seen("a") {
		t.Fatal("a should be present immediately after recording")
	}
	c.Record("b")
	c.Record("c")
	if c.Seen("a") {
		t.Fatal("limit-1 cache should have dropped a after two more inserts")
	}
	if !c.Seen("c") {
		t.Fatal("c should be present")
	}
}

func TestSeenCacheConcurrent(t *testing.T) {
	const limit = 128
	c := newSeenCache(limit)
	done := make(chan struct{})
	for g := 0; g < 4; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 200; i++ {
				c.Record("g" + strconv.Itoa(g) + "-" + strconv.Itoa(i))
				if g == 0 && i%50 == 0 {
					c.Sweep()
				}
			}
		}(g)
	}
	for g := 0; g < 4; g++ {
		<-done
	}
	if got := c.Len(); got > 2*limit {
		t.Fatalf("Len = %d, exceeds 2*limit=%d under concurrency", got, 2*limit)
	}
}
