package runtime

import (
	"strconv"
	"testing"
)

func TestSeenCacheBasics(t *testing.T) {
	c := newSeenCache(4)
	if c.Seen("a") {
		t.Fatal("fresh cache should not contain a")
	}
	if c.Record("a") {
		t.Fatal("first record should not be a duplicate")
	}
	if !c.Record("a") {
		t.Fatal("second record should be a duplicate")
	}
	if !c.Seen("a") {
		t.Fatal("a should be seen")
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d", c.Len())
	}
}

func TestSeenCacheEvictsFIFO(t *testing.T) {
	c := newSeenCache(3)
	for _, id := range []string{"a", "b", "c"} {
		c.Record(id)
	}
	c.Record("d") // evicts a
	if c.Seen("a") {
		t.Fatal("a should have been evicted")
	}
	for _, id := range []string{"b", "c", "d"} {
		if !c.Seen(id) {
			t.Fatalf("%s should still be present", id)
		}
	}
	if c.Len() != 3 {
		t.Fatalf("Len = %d", c.Len())
	}
	// Continue wrapping the ring buffer.
	c.Record("e") // evicts b
	c.Record("f") // evicts c
	if c.Seen("b") || c.Seen("c") {
		t.Fatal("b and c should have been evicted")
	}
	if !c.Seen("d") || !c.Seen("e") || !c.Seen("f") {
		t.Fatal("d, e, f should be present")
	}
}

func TestSeenCacheMinimumLimit(t *testing.T) {
	c := newSeenCache(0) // clamps to 1
	c.Record("a")
	c.Record("b")
	if c.Seen("a") {
		t.Fatal("limit-1 cache should have evicted a")
	}
	if !c.Seen("b") {
		t.Fatal("b should be present")
	}
}

func TestSeenCacheConcurrent(t *testing.T) {
	c := newSeenCache(128)
	done := make(chan struct{})
	for g := 0; g < 4; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 200; i++ {
				c.Record("g" + strconv.Itoa(g) + "-" + strconv.Itoa(i))
			}
		}(g)
	}
	for g := 0; g < 4; g++ {
		<-done
	}
	if c.Len() != 128 {
		t.Fatalf("Len = %d, want full cache", c.Len())
	}
}
