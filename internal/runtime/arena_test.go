package runtime

import (
	"fmt"
	"sync"
	"testing"

	"camcast/internal/ring"
	"camcast/internal/transport"
)

func TestArenaInternResolveRelease(t *testing.T) {
	a := NewNodeArena()
	x := NodeInfo{Addr: "x", ID: 1}
	y := NodeInfo{Addr: "y", ID: 2}

	rx := a.Intern(x)
	ry := a.Intern(y)
	if rx == ry {
		t.Fatalf("distinct entries share ref %d", rx)
	}
	if got := a.Resolve(rx); got != x {
		t.Fatalf("Resolve(rx) = %+v, want %+v", got, x)
	}
	if got := a.Resolve(ry); got != y {
		t.Fatalf("Resolve(ry) = %+v, want %+v", got, y)
	}

	// Interning the same address again dedups to the same slot.
	if rx2 := a.Intern(x); rx2 != rx {
		t.Fatalf("re-intern of %q moved %d -> %d", x.Addr, rx, rx2)
	}
	st := a.Stats()
	if st.Slots != 2 || st.Live != 2 {
		t.Fatalf("stats after 2 entries: %+v", st)
	}

	// The zero NodeInfo threads through as noRef.
	if ref := a.Intern(NodeInfo{}); ref != noRef {
		t.Fatalf("Intern(zero) = %d, want noRef", ref)
	}
	if got := a.Resolve(noRef); !got.zero() {
		t.Fatalf("Resolve(noRef) = %+v, want zero", got)
	}
	a.Release(noRef) // no-op

	// One release keeps x alive (two holders), the second frees it.
	a.Release(rx)
	if got := a.Resolve(rx); got != x {
		t.Fatalf("entry freed while still held: %+v", got)
	}
	a.Release(rx)
	if got := a.Resolve(rx); !got.zero() {
		t.Fatalf("freed slot not cleared: %+v", got)
	}
	if st := a.Stats(); st.Live != 1 || st.Free != 1 {
		t.Fatalf("stats after free: %+v", st)
	}
}

// TestArenaIndexStabilityAcrossRejoin: an entry's reference (and generation)
// is stable for as long as anyone holds it — a member leaving and rejoining
// elsewhere in the overlay does not disturb the slots of neighbors whose
// tables did not change.
func TestArenaIndexStabilityAcrossRejoin(t *testing.T) {
	a := NewNodeArena()
	stable := a.Intern(NodeInfo{Addr: "stable", ID: 10})
	gen := a.Gen(stable)

	// Churn other entries through the arena: join, leave, rejoin.
	for i := 0; i < 100; i++ {
		info := NodeInfo{Addr: fmt.Sprintf("churner-%d", i%7), ID: ring.ID(100 + i%7)}
		ref := a.Intern(info)
		if a.Resolve(ref) != info {
			t.Fatalf("iteration %d: wrong entry", i)
		}
		a.Release(ref)
	}

	if a.Resolve(stable).Addr != "stable" {
		t.Fatal("held entry moved under churn")
	}
	if g := a.Gen(stable); g != gen {
		t.Fatalf("held entry's generation moved %d -> %d", gen, g)
	}

	// A leave/rejoin of the held member itself keeps the slot too (the
	// rejoin interns before the old holder releases, as table updates do).
	again := a.Intern(NodeInfo{Addr: "stable", ID: 10})
	a.Release(stable)
	if again != stable {
		t.Fatalf("intern-before-release moved the slot %d -> %d", stable, again)
	}
	if g := a.Gen(again); g != gen {
		t.Fatalf("generation bumped without the slot freeing: %d -> %d", gen, g)
	}
	a.Release(again)
}

// TestArenaGenerationReuseUnderChurn: a freed slot is recycled for the next
// intern with a bumped generation, so stale references are detectable and
// the arena's footprint stays bounded under leave/rejoin churn.
func TestArenaGenerationReuseUnderChurn(t *testing.T) {
	a := NewNodeArena()
	ref := a.Intern(NodeInfo{Addr: "old", ID: 1})
	gen := a.Gen(ref)
	a.Release(ref)

	ref2 := a.Intern(NodeInfo{Addr: "new", ID: 2})
	if ref2 != ref {
		t.Fatalf("free slot not recycled: got %d, want %d", ref2, ref)
	}
	if g := a.Gen(ref2); g != gen+1 {
		t.Fatalf("recycled generation = %d, want %d", g, gen+1)
	}
	if st := a.Stats(); st.Reused != 1 {
		t.Fatalf("reused = %d, want 1", st.Reused)
	}

	// Sustained churn never grows the slot count past the live set.
	for i := 0; i < 10*arenaSlabSize; i++ {
		r := a.Intern(NodeInfo{Addr: fmt.Sprintf("c-%d", i), ID: ring.ID(i)})
		a.Release(r)
	}
	if st := a.Stats(); st.Slots > 2 {
		t.Fatalf("arena grew to %d slots under balanced churn", st.Slots)
	}
}

func TestArenaDeadRefPanics(t *testing.T) {
	a := NewNodeArena()
	ref := a.Intern(NodeInfo{Addr: "x", ID: 1})
	a.Release(ref)
	for name, f := range map[string]func(){
		"release": func() { a.Release(ref) },
		"retain":  func() { a.Retain(ref) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s of a dead ref did not panic", name)
				}
			}()
			f()
		}()
	}
}

// TestArenaConcurrentReadsDuringBulkInstall: shard-local readers (Resolve
// via the public accessors) race a parallel BulkInstall over a shared
// arena. Run under -race this is the memory-ordering check for the
// lock-free Resolve path.
func TestArenaConcurrentReadsDuringBulkInstall(t *testing.T) {
	space, err := ring.NewSpace(32)
	if err != nil {
		t.Fatal(err)
	}
	net := transport.NewNetwork(1)
	arena := NewNodeArena()
	members := 256
	if testing.Short() {
		members = 64
	}
	nodes := make([]*Node, members)
	for i := range nodes {
		n, err := NewNode(net, fmt.Sprintf("m-%d", i), Config{
			Space: space, Mode: ModeCAMChord, Capacity: 4, Arena: arena,
		})
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = n
	}
	defer func() {
		for _, n := range nodes {
			n.Stop()
		}
	}()

	stop := make(chan struct{})
	var readers sync.WaitGroup
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func(r int) {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				n := nodes[r*31%len(nodes)]
				n.SuccessorList()
				n.Predecessor()
				n.tableSnapshot()
			}
		}(r)
	}

	if err := BulkInstall(nodes, BulkOptions{Parallelism: 8}); err != nil {
		close(stop)
		readers.Wait()
		t.Fatal(err)
	}
	close(stop)
	readers.Wait()

	for _, n := range nodes {
		succs := n.SuccessorList()
		if len(succs) == 0 {
			t.Fatalf("%s has no successors after bulk install", n.Self().Addr)
		}
	}
	if st := arena.Stats(); st.Live != members {
		t.Fatalf("arena live = %d, want %d distinct members", st.Live, members)
	}
}
