package runtime

import (
	"camcast/internal/ring"
	"camcast/internal/transport"
)

// Hand-rolled binary marshaling for every runtime RPC payload (the types in
// wire.go). The message set is closed, so each type gets a one-byte tag and
// implements transport.WireMarshaler; registerBinaryWireTypes installs the
// matching decoders. The encoding mirrors the field order of the structs —
// varints for integers, length-prefixed strings/bytes, presence bytes for
// optional fields — and round-trips values identically to the gob fallback
// it replaces (wirecodec_test.go verifies this per type).

// Wire type tags, one per payload type, starting at WireTagUserMin.
const (
	tagPingReq       = transport.WireTagUserMin + iota // 0x10
	tagPingResp                                        // 0x11
	tagFindSuccReq                                     // 0x12
	tagFindSuccResp                                    // 0x13
	tagNeighborsReq                                    // 0x14
	tagNeighborsResp                                   // 0x15
	tagNotifyReq                                       // 0x16
	tagNotifyResp                                      // 0x17
	tagMulticastReq                                    // 0x18
	tagMulticastResp                                   // 0x19
	tagOfferReq                                        // 0x1a
	tagOfferResp                                       // 0x1b
	tagFloodReq                                        // 0x1c
	tagFloodResp                                       // 0x1d
	tagLeavingReq                                      // 0x1e
	tagLeavingResp                                     // 0x1f
	tagAppReq                                          // 0x20
	tagAppResp                                         // 0x21
)

func appendNodeInfo(b []byte, n NodeInfo) []byte {
	b = transport.AppendString(b, n.Addr)
	return transport.AppendUvarint(b, uint64(n.ID))
}

func readNodeInfo(r *transport.WireReader) NodeInfo {
	addr := r.String()
	id := ring.ID(r.Uvarint())
	return NodeInfo{Addr: addr, ID: id}
}

// appendNodeInfoPtr encodes an optional NodeInfo as a presence byte plus
// the value.
func appendNodeInfoPtr(b []byte, n *NodeInfo) []byte {
	if n == nil {
		return transport.AppendBool(b, false)
	}
	b = transport.AppendBool(b, true)
	return appendNodeInfo(b, *n)
}

func readNodeInfoPtr(r *transport.WireReader) *NodeInfo {
	if !r.Bool() {
		return nil
	}
	n := readNodeInfo(r)
	return &n
}

// appendNodeInfos encodes a slice with a nil-preserving count prefix
// (0 = nil, count+1 otherwise), so decoded values compare deep-equal.
func appendNodeInfos(b []byte, ns []NodeInfo) []byte {
	if ns == nil {
		return transport.AppendUvarint(b, 0)
	}
	b = transport.AppendUvarint(b, uint64(len(ns))+1)
	for _, n := range ns {
		b = appendNodeInfo(b, n)
	}
	return b
}

func readNodeInfos(r *transport.WireReader) []NodeInfo {
	n := r.Uvarint()
	if n == 0 || r.Err() != nil {
		return nil
	}
	n--
	// Cap the eager allocation; a lying count fails in the loop below.
	capHint := n
	if capHint > 1024 {
		capHint = 1024
	}
	ns := make([]NodeInfo, 0, capHint)
	for i := uint64(0); i < n; i++ {
		ns = append(ns, readNodeInfo(r))
		if r.Err() != nil {
			return nil
		}
	}
	return ns
}

func (pingReq) WireTag() byte { return tagPingReq }
func (p pingReq) AppendWire(b []byte) []byte {
	return transport.AppendBool(b, p.Probe)
}
func decodePingReq(b []byte) (any, error) {
	r := transport.NewWireReader(b)
	p := pingReq{Probe: r.Bool()}
	return p, r.Finish()
}

func (pingResp) WireTag() byte { return tagPingResp }
func (p pingResp) AppendWire(b []byte) []byte {
	return appendNodeInfo(b, p.Node)
}
func decodePingResp(b []byte) (any, error) {
	r := transport.NewWireReader(b)
	p := pingResp{Node: readNodeInfo(r)}
	return p, r.Finish()
}

func (findSuccReq) WireTag() byte { return tagFindSuccReq }
func (p findSuccReq) AppendWire(b []byte) []byte {
	b = transport.AppendUvarint(b, uint64(p.K))
	b = transport.AppendVarint(b, int64(p.Hops))
	// v2: optional digit-routing cursor, presence byte + (Img, Left).
	b = transport.AppendBool(b, p.HasCursor)
	if p.HasCursor {
		b = transport.AppendUvarint(b, uint64(p.Img))
		b = transport.AppendUvarint(b, uint64(p.Left))
	}
	return b
}
func decodeFindSuccReq(b []byte) (any, error) {
	r := transport.NewWireReader(b)
	p := findSuccReq{K: ring.ID(r.Uvarint()), Hops: int(r.Varint())}
	if p.HasCursor = r.Bool(); p.HasCursor {
		p.Img = ring.ID(r.Uvarint())
		p.Left = uint32(r.Uvarint())
	}
	return p, r.Finish()
}

func (findSuccResp) WireTag() byte { return tagFindSuccResp }
func (p findSuccResp) AppendWire(b []byte) []byte {
	b = appendNodeInfo(b, p.Node)
	return transport.AppendVarint(b, int64(p.Hops))
}
func decodeFindSuccResp(b []byte) (any, error) {
	r := transport.NewWireReader(b)
	p := findSuccResp{Node: readNodeInfo(r), Hops: int(r.Varint())}
	return p, r.Finish()
}

func (neighborsReq) WireTag() byte { return tagNeighborsReq }
func (p neighborsReq) AppendWire(b []byte) []byte {
	return transport.AppendBool(b, p.Full)
}
func decodeNeighborsReq(b []byte) (any, error) {
	r := transport.NewWireReader(b)
	p := neighborsReq{Full: r.Bool()}
	return p, r.Finish()
}

func (neighborsResp) WireTag() byte { return tagNeighborsResp }
func (p neighborsResp) AppendWire(b []byte) []byte {
	b = appendNodeInfoPtr(b, p.Pred)
	return appendNodeInfos(b, p.Succs)
}
func decodeNeighborsResp(b []byte) (any, error) {
	r := transport.NewWireReader(b)
	p := neighborsResp{Pred: readNodeInfoPtr(r), Succs: readNodeInfos(r)}
	return p, r.Finish()
}

func (notifyReq) WireTag() byte { return tagNotifyReq }
func (p notifyReq) AppendWire(b []byte) []byte {
	return appendNodeInfo(b, p.Candidate)
}
func decodeNotifyReq(b []byte) (any, error) {
	r := transport.NewWireReader(b)
	p := notifyReq{Candidate: readNodeInfo(r)}
	return p, r.Finish()
}

func (notifyResp) WireTag() byte { return tagNotifyResp }
func (p notifyResp) AppendWire(b []byte) []byte {
	return transport.AppendBool(b, p.Accepted)
}
func decodeNotifyResp(b []byte) (any, error) {
	r := transport.NewWireReader(b)
	p := notifyResp{Accepted: r.Bool()}
	return p, r.Finish()
}

// multicastReq and floodReq — the two bulk payload carriers — encode their
// payload bytes last (wire format v2) and implement transport.BlobMarshaler:
// AppendWireHead emits everything up to and including the payload's length
// framing, and the payload bytes themselves ride out of the shared blob via
// the transport's scatter-gather writer. AppendWire stays the canonical
// (equivalent) whole-value encoding for the gob A/B tests, fuzzers, and
// blob-less sends.

func (multicastReq) WireTag() byte { return tagMulticastReq }
func (p multicastReq) AppendWireHead(b []byte) []byte {
	b = transport.AppendString(b, p.MsgID)
	b = appendNodeInfo(b, p.Source)
	b = transport.AppendUvarint(b, uint64(p.K))
	b = transport.AppendVarint(b, int64(p.Hops))
	b = transport.AppendBool(b, p.Repair)
	return transport.AppendBytesHead(b, p.Payload)
}
func (p multicastReq) AppendWire(b []byte) []byte {
	return append(p.AppendWireHead(b), p.Payload...)
}
func (p multicastReq) PayloadBlob() ([]byte, *transport.Blob) {
	return p.Payload, p.blob
}

// ReleasePayload drops the decoded request's blob reference; called by the
// transport after the handler returns (handlers only borrow the payload).
func (p multicastReq) ReleasePayload() { p.blob.Release() }

func readMulticastReqHead(r *transport.WireReader) multicastReq {
	return multicastReq{
		MsgID:  r.String(),
		Source: readNodeInfo(r),
		K:      ring.ID(r.Uvarint()),
		Hops:   int(r.Varint()),
		Repair: r.Bool(),
	}
}
func decodeMulticastReq(b []byte) (any, error) {
	r := transport.NewWireReader(b)
	p := readMulticastReqHead(r)
	p.Payload = r.Bytes()
	return p, r.Finish()
}

// decodeMulticastReqBlob is the zero-copy serving-side decoder: the payload
// views the pooled frame buffer and the request holds a reference on it.
func decodeMulticastReqBlob(b []byte, owner *transport.Blob) (any, error) {
	r := transport.NewWireReader(b)
	p := readMulticastReqHead(r)
	p.Payload = r.BytesView()
	if err := r.Finish(); err != nil {
		return nil, err
	}
	if p.Payload != nil {
		p.blob = owner.Retain()
	}
	return p, nil
}

func (multicastResp) WireTag() byte { return tagMulticastResp }
func (p multicastResp) AppendWire(b []byte) []byte {
	return transport.AppendBool(b, p.Duplicate)
}
func decodeMulticastResp(b []byte) (any, error) {
	r := transport.NewWireReader(b)
	p := multicastResp{Duplicate: r.Bool()}
	return p, r.Finish()
}

func (offerReq) WireTag() byte { return tagOfferReq }
func (p offerReq) AppendWire(b []byte) []byte {
	return transport.AppendString(b, p.MsgID)
}
func decodeOfferReq(b []byte) (any, error) {
	r := transport.NewWireReader(b)
	p := offerReq{MsgID: r.String()}
	return p, r.Finish()
}

func (offerResp) WireTag() byte { return tagOfferResp }
func (p offerResp) AppendWire(b []byte) []byte {
	return transport.AppendBool(b, p.Want)
}
func decodeOfferResp(b []byte) (any, error) {
	r := transport.NewWireReader(b)
	p := offerResp{Want: r.Bool()}
	return p, r.Finish()
}

func (floodReq) WireTag() byte { return tagFloodReq }
func (p floodReq) AppendWireHead(b []byte) []byte {
	b = transport.AppendString(b, p.MsgID)
	b = appendNodeInfo(b, p.Source)
	b = transport.AppendVarint(b, int64(p.Hops))
	return transport.AppendBytesHead(b, p.Payload)
}
func (p floodReq) AppendWire(b []byte) []byte {
	return append(p.AppendWireHead(b), p.Payload...)
}
func (p floodReq) PayloadBlob() ([]byte, *transport.Blob) {
	return p.Payload, p.blob
}

// ReleasePayload drops the decoded request's blob reference; called by the
// transport after the handler returns.
func (p floodReq) ReleasePayload() { p.blob.Release() }

func readFloodReqHead(r *transport.WireReader) floodReq {
	return floodReq{
		MsgID:  r.String(),
		Source: readNodeInfo(r),
		Hops:   int(r.Varint()),
	}
}
func decodeFloodReq(b []byte) (any, error) {
	r := transport.NewWireReader(b)
	p := readFloodReqHead(r)
	p.Payload = r.Bytes()
	return p, r.Finish()
}

// decodeFloodReqBlob is the zero-copy serving-side decoder for floods.
func decodeFloodReqBlob(b []byte, owner *transport.Blob) (any, error) {
	r := transport.NewWireReader(b)
	p := readFloodReqHead(r)
	p.Payload = r.BytesView()
	if err := r.Finish(); err != nil {
		return nil, err
	}
	if p.Payload != nil {
		p.blob = owner.Retain()
	}
	return p, nil
}

func (floodResp) WireTag() byte { return tagFloodResp }
func (p floodResp) AppendWire(b []byte) []byte {
	return transport.AppendBool(b, p.Duplicate)
}
func decodeFloodResp(b []byte) (any, error) {
	r := transport.NewWireReader(b)
	p := floodResp{Duplicate: r.Bool()}
	return p, r.Finish()
}

func (leavingReq) WireTag() byte { return tagLeavingReq }
func (p leavingReq) AppendWire(b []byte) []byte {
	b = appendNodeInfo(b, p.Departing)
	b = appendNodeInfoPtr(b, p.NewPred)
	return appendNodeInfoPtr(b, p.NewSucc)
}
func decodeLeavingReq(b []byte) (any, error) {
	r := transport.NewWireReader(b)
	p := leavingReq{
		Departing: readNodeInfo(r),
		NewPred:   readNodeInfoPtr(r),
		NewSucc:   readNodeInfoPtr(r),
	}
	return p, r.Finish()
}

func (leavingResp) WireTag() byte { return tagLeavingResp }
func (p leavingResp) AppendWire(b []byte) []byte {
	return transport.AppendBool(b, p.Acked)
}
func decodeLeavingResp(b []byte) (any, error) {
	r := transport.NewWireReader(b)
	p := leavingResp{Acked: r.Bool()}
	return p, r.Finish()
}

func (appReq) WireTag() byte { return tagAppReq }
func (p appReq) AppendWire(b []byte) []byte {
	return transport.AppendBytes(b, p.Payload)
}
func decodeAppReq(b []byte) (any, error) {
	r := transport.NewWireReader(b)
	p := appReq{Payload: r.Bytes()}
	return p, r.Finish()
}

func (appResp) WireTag() byte { return tagAppResp }
func (p appResp) AppendWire(b []byte) []byte {
	return transport.AppendBytes(b, p.Payload)
}
func decodeAppResp(b []byte) (any, error) {
	r := transport.NewWireReader(b)
	p := appResp{Payload: r.Bytes()}
	return p, r.Finish()
}

// registerBinaryWireTypes installs the binary decoders with the transport.
func registerBinaryWireTypes() {
	transport.RegisterWireDecoder(tagPingReq, decodePingReq)
	transport.RegisterWireDecoder(tagPingResp, decodePingResp)
	transport.RegisterWireDecoder(tagFindSuccReq, decodeFindSuccReq)
	transport.RegisterWireDecoder(tagFindSuccResp, decodeFindSuccResp)
	transport.RegisterWireDecoder(tagNeighborsReq, decodeNeighborsReq)
	transport.RegisterWireDecoder(tagNeighborsResp, decodeNeighborsResp)
	transport.RegisterWireDecoder(tagNotifyReq, decodeNotifyReq)
	transport.RegisterWireDecoder(tagNotifyResp, decodeNotifyResp)
	transport.RegisterWireDecoder(tagMulticastReq, decodeMulticastReq)
	transport.RegisterWireDecoder(tagMulticastResp, decodeMulticastResp)
	transport.RegisterWireDecoder(tagOfferReq, decodeOfferReq)
	transport.RegisterWireDecoder(tagOfferResp, decodeOfferResp)
	transport.RegisterWireDecoder(tagFloodReq, decodeFloodReq)
	transport.RegisterWireDecoder(tagFloodResp, decodeFloodResp)
	transport.RegisterWireDecoder(tagLeavingReq, decodeLeavingReq)
	transport.RegisterWireDecoder(tagLeavingResp, decodeLeavingResp)
	transport.RegisterWireDecoder(tagAppReq, decodeAppReq)
	transport.RegisterWireDecoder(tagAppResp, decodeAppResp)

	// The bulk payload carriers also get zero-copy serving-side decoders;
	// every other type keeps the copying decoder (their payloads are tiny
	// control fields).
	transport.RegisterBlobDecoder(tagMulticastReq, decodeMulticastReqBlob)
	transport.RegisterBlobDecoder(tagFloodReq, decodeFloodReqBlob)
}

// Compile-time checks: the bulk carriers implement the zero-copy contracts.
var (
	_ transport.BlobMarshaler   = multicastReq{}
	_ transport.BlobMarshaler   = floodReq{}
	_ transport.PayloadReleaser = multicastReq{}
	_ transport.PayloadReleaser = floodReq{}
)
