package runtime

import "sync"

// seenCache is a bounded set of message IDs used for duplicate suppression.
// Eviction is FIFO: once the cache holds limit entries, recording a new ID
// evicts the oldest one. The zero value is unusable; construct with
// newSeenCache.
type seenCache struct {
	mu    sync.Mutex
	limit int
	set   map[string]bool
	order []string
	head  int // index of the oldest entry in order (ring-buffer style)
}

func newSeenCache(limit int) *seenCache {
	if limit < 1 {
		limit = 1
	}
	return &seenCache{
		limit: limit,
		set:   make(map[string]bool, limit),
		order: make([]string, 0, limit),
	}
}

// Seen reports whether id has been recorded (without recording it).
func (c *seenCache) Seen(id string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.set[id]
}

// Record adds id and reports whether it was already present (true means
// duplicate).
func (c *seenCache) Record(id string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.set[id] {
		return true
	}
	if len(c.order) < c.limit {
		c.order = append(c.order, id)
	} else {
		delete(c.set, c.order[c.head])
		c.order[c.head] = id
		c.head = (c.head + 1) % c.limit
	}
	c.set[id] = true
	return false
}

// Len returns the number of IDs currently retained.
func (c *seenCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.set)
}
