package runtime

import "sync"

// seenCache is a bounded set of message IDs used for duplicate
// suppression, organized as two generations (current and previous).
// Recording goes to the current generation; membership checks consult
// both. When the current generation reaches the limit — or when the
// maintenance scheduler calls Sweep on its slow cadence — the generations
// rotate: previous is dropped wholesale, current becomes previous, and a
// fresh current starts empty.
//
// The guarantees this trades on:
//
//   - Retention: a recorded ID stays visible for at least limit further
//     unique insertions (it survives one full rotation), so the dedup
//     window is as deep as the old FIFO design's.
//   - Memory: at most 2*limit IDs are held, and — unlike a preallocated
//     ring buffer — an idle member holds only what it actually saw, which
//     scheduler sweeps eventually return to zero. At 100k live members
//     that is the difference between O(traffic window) and ~64KB each of
//     permanently reserved eviction order.
//
// The zero value is unusable; construct with newSeenCache.
type seenCache struct {
	mu    sync.Mutex
	limit int
	cur   map[string]struct{}
	prev  map[string]struct{}
}

func newSeenCache(limit int) *seenCache {
	if limit < 1 {
		limit = 1
	}
	return &seenCache{
		limit: limit,
		cur:   make(map[string]struct{}),
	}
}

// Seen reports whether id has been recorded (without recording it).
func (c *seenCache) Seen(id string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.seenLocked(id)
}

func (c *seenCache) seenLocked(id string) bool {
	if _, ok := c.cur[id]; ok {
		return true
	}
	_, ok := c.prev[id]
	return ok
}

// Record adds id and reports whether it was already present (true means
// duplicate).
func (c *seenCache) Record(id string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.seenLocked(id) {
		return true
	}
	if len(c.cur) >= c.limit {
		c.rotateLocked()
	}
	c.cur[id] = struct{}{}
	return false
}

// Sweep rotates the generations: IDs not seen since the previous sweep (or
// rotation) are forgotten. Two sweeps with no traffic in between empty the
// cache completely, releasing its memory.
func (c *seenCache) Sweep() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.rotateLocked()
}

func (c *seenCache) rotateLocked() {
	c.prev = c.cur
	c.cur = make(map[string]struct{})
}

// Len returns the number of IDs currently retained across both
// generations.
func (c *seenCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.cur) + len(c.prev)
}
