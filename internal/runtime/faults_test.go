package runtime

import (
	"testing"

	"camcast/internal/transport"
)

// TestMulticastUnderPacketLoss: with a lossy transport, CAM-Chord multicast
// is best-effort per message (subtrees can vanish) but must never deliver a
// message twice, never panic, and must return to full delivery when the
// loss stops.
func TestMulticastUnderPacketLoss(t *testing.T) {
	c := newCluster(t, ModeCAMChord, 16)
	c.grow(20, 4)

	c.net.SetDropRate(0.25)
	for i := 0; i < 10; i++ {
		msgID, err := c.live()[i%20].Multicast([]byte{byte(i)})
		if err != nil {
			t.Fatal(err)
		}
		for _, n := range c.live() {
			if got := c.deliveries(n.Self().Addr, msgID); got > 1 {
				t.Fatalf("%s received %s %d times under loss", n.Self().Addr, msgID, got)
			}
		}
	}

	c.net.SetDropRate(0)
	c.converge(3)
	msgID, err := c.live()[0].Multicast([]byte("after loss"))
	if err != nil {
		t.Fatal(err)
	}
	c.checkExactlyOnce(msgID)
}

// TestPartitionIsolatesAndHeals: members behind a partition miss messages;
// after healing and repair, delivery is complete again.
func TestPartitionIsolatesAndHeals(t *testing.T) {
	c := newCluster(t, ModeCAMKoorde, 16)
	c.grow(12, 5)

	// Cut three members off.
	cut := []*Node{c.live()[2], c.live()[6], c.live()[9]}
	for _, n := range cut {
		c.net.SetPartition(n.Self().Addr, 1)
	}
	msgID, err := c.live()[0].Multicast([]byte("partitioned"))
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range cut {
		if got := c.deliveries(n.Self().Addr, msgID); got != 0 {
			t.Fatalf("partitioned member %s received the message", n.Self().Addr)
		}
	}

	c.net.HealPartitions()
	c.converge(4)
	c.checkRing()
	msgID, err = c.live()[0].Multicast([]byte("healed"))
	if err != nil {
		t.Fatal(err)
	}
	c.checkExactlyOnce(msgID)
}

// TestLookupSurvivesDeadCandidates: lookups route around unreachable table
// entries via the candidate fall-through.
func TestLookupSurvivesDeadCandidates(t *testing.T) {
	c := newCluster(t, ModeCAMChord, 16)
	c.grow(16, 4)

	// Kill a third of the nodes WITHOUT repairing tables: lookups from the
	// survivors must still resolve among live nodes.
	victims := []*Node{c.live()[2], c.live()[5], c.live()[8], c.live()[11], c.live()[14]}
	for _, v := range victims {
		v.Stop()
	}
	// Stabilize only (prunes successor lists) but leave stale finger tables.
	c.stabilizeAll(3)

	nodes := c.sortedByID()
	for _, from := range nodes {
		for _, target := range nodes {
			got, _, err := from.FindSuccessor(target.Self().ID)
			if err != nil {
				t.Fatalf("lookup from %s for %d: %v", from.Self().Addr, target.Self().ID, err)
			}
			if got.Addr != target.Self().Addr {
				t.Fatalf("lookup of live node %s's id returned %s", target.Self().Addr, got.Addr)
			}
		}
	}
}

// TestTransportStatsAdvance sanity-checks that cluster traffic flows through
// the injected transport (so fault injection actually applies to it).
func TestTransportStatsAdvance(t *testing.T) {
	net := transport.NewNetwork(1)
	callsBefore, _ := net.Stats()
	if callsBefore != 0 {
		t.Fatal("fresh transport should have zero calls")
	}
	c := &cluster{
		t: t, net: net, space: spaceForTest(), mode: ModeCAMChord,
		nodes: map[string]*Node{}, got: map[string]map[string]int{},
	}
	t.Cleanup(func() {
		for _, n := range c.nodes {
			n.Stop()
		}
	})
	c.add("a", 4, "")
	c.add("b", 4, "a")
	c.stabilizeAll(2)
	calls, _ := net.Stats()
	if calls == 0 {
		t.Fatal("protocol traffic did not traverse the transport")
	}
}
