// Package runtime implements the dynamic protocol layer of the two CAM
// systems: live nodes that join and leave over a message transport, maintain
// their ring and neighbor state with Chord's protocols (Section 3.3 — "we
// use the same Chord protocols to handle member join/departure ... the only
// difference is that our LOOKUP routine replaces the Chord LOOKUP routine"),
// and disseminate multicast messages along the implicit trees of Sections
// 3.4 and 4.3.
//
// The static packages (internal/camchord, internal/camkoorde) compute trees
// against a global membership snapshot for the paper's large-scale
// measurements; this package is the deployable counterpart, where every node
// acts only on its own routing state.
package runtime

import (
	"context"
	"errors"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"camcast/internal/ids"
	"camcast/internal/metrics"
	"camcast/internal/obsv"
	"camcast/internal/ring"
	"camcast/internal/timing"
	"camcast/internal/trace"
	"camcast/internal/transport"
)

// Mode selects the overlay protocol a node speaks.
type Mode int

// Supported protocol modes.
const (
	ModeCAMChord Mode = iota + 1
	ModeCAMKoorde
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case ModeCAMChord:
		return "cam-chord"
	case ModeCAMKoorde:
		return "cam-koorde"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Runtime errors matchable with errors.Is.
var (
	// ErrStopped reports an operation on a node that has left or crashed.
	ErrStopped = errors.New("runtime: node stopped")
	// ErrLookupFailed reports that a lookup could not complete, e.g.
	// because every candidate next hop was unreachable.
	ErrLookupFailed = errors.New("runtime: lookup failed")
)

// Transport is the messaging substrate a node runs on. The in-memory
// implementation (internal/transport.Network) is used by tests, simulations
// and the public in-process API; the TCP implementation
// (internal/transport.TCP) runs the same protocol across real sockets.
type Transport interface {
	// Call delivers one request and returns the remote handler's response.
	// The context bounds the call: transports must give up (returning
	// ctx.Err() or a wrapped equivalent) once the deadline passes, so one
	// dead or slow peer cannot stall the caller indefinitely.
	Call(ctx context.Context, from, to, kind string, payload any) (any, error)
	// Register attaches the handler serving addr.
	Register(addr string, h transport.Handler)
	// Unregister detaches addr, making it unreachable.
	Unregister(addr string)
	// Registered reports whether addr is believed reachable. For remote
	// transports this is a local liveness estimate (e.g. a recent-failure
	// cache), not a guarantee.
	Registered(addr string) bool
}

// The in-memory network must satisfy the node's transport contract, and so
// must the per-group Flow views of both transports — a node hosted in a
// multi-group process runs on a Flow without knowing it.
var (
	_ Transport = (*transport.Network)(nil)
	_ Transport = (*transport.Flow)(nil)
)

// Delivery is one multicast message handed to the application.
//
// Payload is borrowed, not owned: on the zero-copy path it aliases the
// pooled receive buffer the frame arrived in, which returns to the pool —
// and is reused for unrelated traffic — once the delivering handler
// finishes. It is valid only for the duration of the OnDeliver call; a
// handler that keeps the message must copy it (bytes.Clone) before
// returning. transport.PoisonBlobsOnRelease turns violations into
// deterministic garbage for tests.
type Delivery struct {
	MsgID   string
	Source  NodeInfo
	Payload []byte
	Hops    int // overlay hops the message travelled from the source
}

// Config parameterizes a node.
type Config struct {
	Space    ring.Space
	Mode     Mode
	Capacity int // c_x: maximum direct multicast children

	// SuccListLen is the resilience successor-list length (default 4).
	SuccListLen int
	// StabilizeEvery / FixEvery enable background maintenance when > 0;
	// when zero the owner drives maintenance explicitly with
	// StabilizeOnce/FixOnce (deterministic tests do this).
	StabilizeEvery time.Duration
	FixEvery       time.Duration
	// SeenLimit bounds the duplicate-suppression cache (default 4096).
	SeenLimit int

	// ForwardRetries is how many times a failed child send is retried
	// (re-resolving the child between attempts) before the orphaned
	// segment is repaired or reported lost. Zero means the default (2);
	// negative disables retries.
	ForwardRetries int
	// ForwardTimeout is the per-child send deadline during multicast
	// fan-out. Zero means the default (2s); negative disables deadlines.
	ForwardTimeout time.Duration
	// ForwardParallel bounds concurrent in-flight child sends per
	// fan-out: up to ForwardParallel-1 sends run on the process-wide
	// warm worker pool, the rest (and always the first) on the caller's
	// goroutine. Zero means the default (8); negative serializes sends.
	ForwardParallel int
	// RetryBackoff is the delay before the first retry; each further
	// retry doubles it, with ±50% deterministic jitter. Zero means the
	// default (5ms); negative disables backoff.
	RetryBackoff time.Duration
	// CallTimeout optionally bounds every non-multicast RPC (lookups,
	// stabilization, offers); zero leaves them unbounded.
	CallTimeout time.Duration
	// SuspicionWindow is how long a peer that failed an RPC with an
	// unreachability error (unreachable, partitioned, or deadline
	// exceeded) is skipped as a routing detour — lookup candidates and
	// last-resort ring rides. Direct child sends are never skipped, so
	// suspicion only stops lookups from repeatedly timing out against a
	// peer whose failure stabilization has not yet observed. Zero means
	// the default (1s); negative disables suspicion.
	SuspicionWindow time.Duration

	// Clock is the time source for protocol-time decisions (suspicion
	// expiry). Simulations and the replay engine install a
	// timing.Virtual so protocol time advances with the simulation, not
	// the host; nil means wall time. Latency histograms always measure
	// wall time — they report real compute cost, not simulated time.
	Clock timing.Clock

	// Counters optionally receives group-wide forwarding outcome counts
	// (see the metrics.CounterForward* names); nil disables.
	Counters *metrics.Counters

	// OnDeliver receives every multicast delivery, including the sender's
	// own. Called synchronously from protocol handlers; keep it fast. The
	// Delivery's Payload is only valid for the duration of the call — copy
	// it to retain it (see Delivery).
	OnDeliver func(Delivery)
	// OnRequest serves application-level unicast requests sent with
	// Node.Request (e.g. retransmission NACKs from a reliability layer).
	// nil rejects such requests.
	OnRequest func(from string, payload []byte) ([]byte, error)
	// Tracer optionally records protocol events; nil discards.
	Tracer *trace.Tracer
	// Bus optionally publishes the same protocol events to live
	// subscribers (debug endpoints, observers); nil discards. Emission is
	// one atomic load when nobody is subscribed.
	Bus *obsv.Bus
	// Metrics optionally accumulates hot-path measurements — forwarding
	// outcomes, lookup hop counts, multicast tree build time — under the
	// obsv.Metric* names; nil disables.
	Metrics *obsv.Registry

	// Arena, when set, interns this node's neighbor references (successor
	// list, routing-table slots, predecessor) into a shared node table —
	// the scheduler hands out one arena per shard (Scheduler.ArenaFor), so
	// co-sharded members store each address/identifier pair once between
	// them. nil gives the node a private arena; behavior is identical, only
	// the sharing is lost.
	Arena *NodeArena
}

func (c *Config) applyDefaults() {
	if c.SuccListLen == 0 {
		c.SuccListLen = 4
	}
	if c.SeenLimit == 0 {
		c.SeenLimit = 4096
	}
	switch {
	case c.ForwardRetries == 0:
		c.ForwardRetries = 2
	case c.ForwardRetries < 0:
		c.ForwardRetries = 0
	}
	switch {
	case c.ForwardTimeout == 0:
		c.ForwardTimeout = 2 * time.Second
	case c.ForwardTimeout < 0:
		c.ForwardTimeout = 0
	}
	switch {
	case c.ForwardParallel == 0:
		c.ForwardParallel = 8
	case c.ForwardParallel < 0:
		c.ForwardParallel = 1
	}
	switch {
	case c.RetryBackoff == 0:
		c.RetryBackoff = 5 * time.Millisecond
	case c.RetryBackoff < 0:
		c.RetryBackoff = 0
	}
	if c.CallTimeout < 0 {
		c.CallTimeout = 0
	}
	switch {
	case c.SuspicionWindow == 0:
		c.SuspicionWindow = time.Second
	case c.SuspicionWindow < 0:
		c.SuspicionWindow = 0
	}
}

func (c *Config) validate() error {
	if c.Space.Bits() == 0 {
		return fmt.Errorf("runtime: zero identifier space; construct with ring.NewSpace")
	}
	switch c.Mode {
	case ModeCAMChord:
		if c.Capacity < 2 {
			return fmt.Errorf("runtime: cam-chord capacity %d must be >= 2", c.Capacity)
		}
	case ModeCAMKoorde:
		if c.Capacity < 4 {
			return fmt.Errorf("runtime: cam-koorde capacity %d must be >= 4", c.Capacity)
		}
	default:
		return fmt.Errorf("runtime: unknown mode %d", c.Mode)
	}
	if c.SuccListLen < 1 {
		return fmt.Errorf("runtime: successor list length %d must be >= 1", c.SuccListLen)
	}
	return nil
}

// Stats are cumulative per-node protocol counters.
type Stats struct {
	Delivered   uint64 // multicast messages delivered to the application
	Forwarded   uint64 // multicast copies sent to children (incl. repairs)
	Duplicates  uint64 // duplicate deliveries / offers suppressed
	Lookups     uint64 // find_successor requests served
	TableFaults uint64 // child resolutions that needed an on-demand lookup

	// Forwarding-outcome accounting (see DESIGN.md "Delivery guarantees
	// and failure semantics").
	ChildrenAcked    uint64 // direct child sends acknowledged
	Retries          uint64 // child sends retried after a failure
	SegmentsRepaired uint64 // orphaned segments handed to a live node
	SegmentsLost     uint64 // segments abandoned after retries and repair failed
}

// Node is one live overlay member.
type Node struct {
	cfg   Config
	space ring.Space
	self  NodeInfo
	net   Transport
	// blobPayloads records whether the transport sends BlobMarshaler
	// payloads zero-copy, in which case Multicast materializes the payload
	// into a shared transport.Blob once up front.
	blobPayloads bool

	clock timing.Clock

	// The routing-table layout (which slots exist, how each slot's target
	// identifier derives from the node's own) is an immutable tableSpec
	// shared by every node with the same (space, mode, capacity) — reads
	// need no lock and the node stores one pointer. The mutable neighbor
	// state — predecessor, successor list, resolved slots — is held as
	// uint32 references into the node arena (addresses and identifiers
	// interned once per shard), guarded by mu. A maintenance or fan-out
	// pass walks contiguous integer slices the collector never scans.
	spec  *tableSpec
	arena *NodeArena

	mu        sync.Mutex
	predRef   uint32   // noRef = predecessor unknown
	succRefs  []uint32 // [0] is the immediate successor; equals self when alone
	succSpare []uint32 // second buffer; setSuccsLocked ping-pongs between them
	slotRefs  []uint32 // resolved table entries; noRef = unfilled
	cursor    int      // round-robin table refresh position
	started   bool
	stopped   bool

	seen      *seenCache
	reflooded *seenCache // message IDs this node already issued a reflood repair for
	seq       atomic.Uint64
	obs       nodeObs

	delivered   atomic.Uint64
	forwarded   atomic.Uint64
	duplicates  atomic.Uint64
	lookups     atomic.Uint64
	tableFaults atomic.Uint64
	acked       atomic.Uint64
	retries     atomic.Uint64
	repaired    atomic.Uint64
	lost        atomic.Uint64

	rngMu    sync.Mutex
	rngState uint64 // retry-jitter source (splitmix64), seeded from the node's ID

	suspectMu sync.Mutex
	suspects  map[string]time.Time // addr -> suspicion expiry

	// topoGen counts membership-state writes — pred, successor list, table
	// slots, suspicion changes — and gates the forwarding engine's segment
	// confirmation memo (confirmSuccessor): lookups memoized in one
	// generation are discarded the moment the node's view of the group
	// moves, so a quiet group resolves per-message confirmations with ring
	// arithmetic while a churning one falls back to fresh lookup chains.
	topoGen atomic.Uint64

	memoMu  sync.Mutex
	memoGen uint64
	memo    map[ring.ID]NodeInfo

	stopCh chan struct{}
	wg     sync.WaitGroup
}

// noteTopologyChange starts a new topology generation, invalidating every
// memoized confirmation lookup.
func (n *Node) noteTopologyChange() { n.topoGen.Add(1) }

// NewNode creates a node bound to addr on the network. The node is inert
// until Bootstrap or Join is called.
func NewNode(net Transport, addr string, cfg Config) (*Node, error) {
	cfg.applyDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if net == nil {
		return nil, fmt.Errorf("runtime: nil network")
	}
	if addr == "" {
		return nil, fmt.Errorf("runtime: empty address")
	}
	n := &Node{
		cfg:       cfg,
		space:     cfg.Space,
		self:      NodeInfo{Addr: addr, ID: ids.NewHasher(cfg.Space).ID(addr)},
		net:       net,
		clock:     cfg.Clock,
		arena:     cfg.Arena,
		seen:      newSeenCache(cfg.SeenLimit),
		reflooded: newSeenCache(cfg.SeenLimit),
		suspects:  make(map[string]time.Time),
		memo:      make(map[ring.ID]NodeInfo),
		stopCh:    make(chan struct{}),
	}
	if n.clock == nil {
		n.clock = timing.Wall()
	}
	if n.arena == nil {
		n.arena = NewNodeArena()
	}
	n.spec = specFor(n.space, cfg.Mode, cfg.Capacity)
	n.predRef = noRef
	n.succRefs = make([]uint32, 0, cfg.SuccListLen)
	n.succSpare = make([]uint32, 0, cfg.SuccListLen)
	n.slotRefs = make([]uint32, n.spec.len())
	for i := range n.slotRefs {
		n.slotRefs[i] = noRef
	}
	n.obs = newNodeObs(cfg.Bus, cfg.Metrics)
	n.rngState = uint64(n.self.ID) + 1
	if bt, ok := net.(interface{ BlobPayloads() bool }); ok {
		n.blobPayloads = bt.BlobPayloads()
	}
	return n, nil
}

// The locked neighbor accessors below assume n.mu is held. Mutators intern
// the incoming info before releasing the outgoing reference, so a write
// that keeps a neighbor unchanged keeps its arena slot (and generation).

// predLocked returns the predecessor, if known.
func (n *Node) predLocked() (NodeInfo, bool) {
	if n.predRef == noRef {
		return NodeInfo{}, false
	}
	return n.arena.Resolve(n.predRef), true
}

// setPredLocked replaces the predecessor; the zero NodeInfo clears it.
func (n *Node) setPredLocked(info NodeInfo) {
	ref := n.arena.Intern(info)
	n.arena.Release(n.predRef)
	n.predRef = ref
}

// succHeadLocked returns the immediate successor, if any.
func (n *Node) succHeadLocked() (NodeInfo, bool) {
	if len(n.succRefs) == 0 {
		return NodeInfo{}, false
	}
	return n.arena.Resolve(n.succRefs[0]), true
}

// setSuccHeadLocked replaces succs[0] in place.
func (n *Node) setSuccHeadLocked(info NodeInfo) {
	ref := n.arena.Intern(info)
	n.arena.Release(n.succRefs[0])
	n.succRefs[0] = ref
}

// setSuccsLocked replaces the whole successor list. The two fixed-capacity
// buffers ping-pong so steady-state stabilization rebuilds allocate
// nothing.
func (n *Node) setSuccsLocked(list []NodeInfo) {
	scratch := n.succSpare[:0]
	for _, info := range list {
		if ref := n.arena.Intern(info); ref != noRef {
			scratch = append(scratch, ref)
		}
	}
	for _, ref := range n.succRefs {
		n.arena.Release(ref)
	}
	n.succSpare = n.succRefs[:0]
	n.succRefs = scratch
}

// setSuccSelfLocked resets the successor list to [self] (alone in the ring).
func (n *Node) setSuccSelfLocked() {
	for _, ref := range n.succRefs {
		n.arena.Release(ref)
	}
	n.succRefs = append(n.succRefs[:0], n.arena.Intern(n.self))
}

// popSuccLocked drops the head of the successor list.
func (n *Node) popSuccLocked() {
	n.arena.Release(n.succRefs[0])
	copy(n.succRefs, n.succRefs[1:])
	n.succRefs = n.succRefs[:len(n.succRefs)-1]
}

// setSlotLocked replaces table slot i and returns the previous occupant.
func (n *Node) setSlotLocked(i int, info NodeInfo) NodeInfo {
	old := n.arena.Resolve(n.slotRefs[i])
	ref := n.arena.Intern(info)
	n.arena.Release(n.slotRefs[i])
	n.slotRefs[i] = ref
	return old
}

// jitterFloat returns a uniform float64 in [0, 1) from the node's compact
// splitmix64 state. Retry-backoff jitter is the only randomness a node
// consumes, so a full *rand.Rand (~5KB of generator state per member) was
// the single largest slice of the per-member footprint.
func (n *Node) jitterFloat() float64 {
	n.rngMu.Lock()
	n.rngState += 0x9e3779b97f4a7c15
	z := n.rngState
	n.rngMu.Unlock()
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return float64(z>>11) / (1 << 53)
}

// Self returns the node's own identity.
func (n *Node) Self() NodeInfo { return n.self }

// Capacity returns the node's configured capacity c_x.
func (n *Node) Capacity() int { return n.cfg.Capacity }

// Mode returns the node's protocol mode.
func (n *Node) Mode() Mode { return n.cfg.Mode }

// Stats returns a snapshot of the node's protocol counters.
func (n *Node) Stats() Stats {
	return Stats{
		Delivered:        n.delivered.Load(),
		Forwarded:        n.forwarded.Load(),
		Duplicates:       n.duplicates.Load(),
		Lookups:          n.lookups.Load(),
		TableFaults:      n.tableFaults.Load(),
		ChildrenAcked:    n.acked.Load(),
		Retries:          n.retries.Load(),
		SegmentsRepaired: n.repaired.Load(),
		SegmentsLost:     n.lost.Load(),
	}
}

// Predecessor returns the current predecessor, if known.
func (n *Node) Predecessor() (NodeInfo, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.predLocked()
}

// SuccessorList returns a copy of the node's successor list.
func (n *Node) SuccessorList() []NodeInfo {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]NodeInfo, len(n.succRefs))
	for i, ref := range n.succRefs {
		out[i] = n.arena.Resolve(ref)
	}
	return out
}

// Bootstrap starts the node as the first member of a fresh group.
func (n *Node) Bootstrap() error {
	n.mu.Lock()
	if n.started || n.stopped {
		n.mu.Unlock()
		return ErrStopped
	}
	n.started = true
	n.setPredLocked(n.self)
	n.setSuccSelfLocked()
	n.noteTopologyChange()
	n.mu.Unlock()

	n.net.Register(n.self.Addr, n.handleRPC)
	n.startLoops()
	n.emitf(trace.KindJoin, "bootstrap id=%d", n.self.ID)
	return nil
}

// Join enters an existing group through any current member.
func (n *Node) Join(bootstrapAddr string) error {
	n.mu.Lock()
	if n.started || n.stopped {
		n.mu.Unlock()
		return ErrStopped
	}
	n.mu.Unlock()

	start := time.Now()
	resp, err := n.call(bootstrapAddr, kindFindSucc, findSuccReq{K: n.self.ID})
	if err != nil {
		return fmt.Errorf("runtime: join via %s: %w", bootstrapAddr, err)
	}
	fsResp, ok := resp.(findSuccResp)
	if !ok {
		return fmt.Errorf("runtime: join via %s: bad response type %T", bootstrapAddr, resp)
	}
	succ := fsResp.Node
	if succ.ID == n.self.ID && succ.Addr != n.self.Addr {
		return fmt.Errorf("runtime: identifier collision with %s (id %d)", succ.Addr, succ.ID)
	}

	n.mu.Lock()
	n.started = true
	n.setPredLocked(NodeInfo{})
	n.setSuccsLocked([]NodeInfo{succ})
	n.noteTopologyChange()
	n.mu.Unlock()

	n.net.Register(n.self.Addr, n.handleRPC)
	// Integrate promptly rather than waiting a stabilization period.
	n.StabilizeOnce()
	n.startLoops()
	n.obs.joinTime.ObserveDuration(time.Since(start))
	n.emitf(trace.KindJoin, "joined via %s, successor %s", bootstrapAddr, succ.Addr)
	return nil
}

// Leave departs gracefully: ring neighbors are told to splice the node out,
// then the node stops.
func (n *Node) Leave() error {
	n.mu.Lock()
	if !n.started || n.stopped {
		n.mu.Unlock()
		return ErrStopped
	}
	var pred *NodeInfo
	if p, ok := n.predLocked(); ok {
		pp := p
		pred = &pp
	}
	var succ *NodeInfo
	if head, ok := n.succHeadLocked(); ok && head.Addr != n.self.Addr {
		s := head
		succ = &s
	}
	n.mu.Unlock()

	start := time.Now()
	if succ != nil {
		_, _ = n.call(succ.Addr, kindLeaving, leavingReq{Departing: n.self, NewPred: pred})
	}
	if pred != nil && pred.Addr != n.self.Addr && succ != nil {
		_, _ = n.call(pred.Addr, kindLeaving, leavingReq{Departing: n.self, NewSucc: succ})
	}
	n.obs.leaveTime.ObserveDuration(time.Since(start))
	n.emit(trace.KindLeave, "graceful")
	n.Stop()
	return nil
}

// Stop crashes the node: it vanishes from the network without telling
// anyone. Safe to call multiple times.
func (n *Node) Stop() {
	n.mu.Lock()
	if n.stopped {
		n.mu.Unlock()
		return
	}
	n.stopped = true
	started := n.started
	// Hand every neighbor reference back to the arena so a shared,
	// long-lived arena does not accumulate entries pinned by dead members.
	// Readers racing this see an empty table under mu (and the stopped
	// flag); NodeInfo values they copied out earlier stay valid forever.
	n.setPredLocked(NodeInfo{})
	for _, ref := range n.succRefs {
		n.arena.Release(ref)
	}
	n.succRefs = n.succRefs[:0]
	for i, ref := range n.slotRefs {
		n.arena.Release(ref)
		n.slotRefs[i] = noRef
	}
	n.mu.Unlock()

	n.net.Unregister(n.self.Addr)
	if started {
		close(n.stopCh)
	}
	n.wg.Wait()
}

// Stopped reports whether the node has stopped.
func (n *Node) Stopped() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.stopped
}

func (n *Node) startLoops() {
	if n.cfg.StabilizeEvery > 0 {
		n.wg.Add(1)
		go n.loop(n.cfg.StabilizeEvery, n.StabilizeOnce)
	}
	if n.cfg.FixEvery > 0 {
		n.wg.Add(1)
		go n.loop(n.cfg.FixEvery, n.FixOnce)
	}
}

func (n *Node) loop(every time.Duration, tick func()) {
	defer n.wg.Done()
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			tick()
		case <-n.stopCh:
			return
		}
	}
}

// call issues one RPC from this node, bounded by Config.CallTimeout when
// set. Multicast child sends use callCtx with the tighter ForwardTimeout.
func (n *Node) call(to, kind string, payload any) (any, error) {
	ctx := context.Background()
	if d := n.cfg.CallTimeout; d > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, d)
		defer cancel()
	}
	return n.callCtx(ctx, to, kind, payload)
}

// callCtx issues one RPC under the caller's context. Every outcome feeds
// the suspicion cache: unreachability errors mark the peer suspect for
// SuspicionWindow, any response (including handler errors, which prove
// reachability) clears it.
func (n *Node) callCtx(ctx context.Context, to, kind string, payload any) (any, error) {
	resp, err := n.net.Call(ctx, n.self.Addr, to, kind, payload)
	n.noteCallResult(to, err)
	return resp, err
}

// noteCallResult updates the suspicion cache after an RPC to addr.
func (n *Node) noteCallResult(addr string, err error) {
	if n.cfg.SuspicionWindow <= 0 {
		return
	}
	unreachable := err != nil &&
		(errors.Is(err, transport.ErrUnreachable) ||
			errors.Is(err, transport.ErrPartitioned) ||
			errors.Is(err, context.DeadlineExceeded) ||
			errors.Is(err, os.ErrDeadlineExceeded))
	n.suspectMu.Lock()
	defer n.suspectMu.Unlock()
	_, suspect := n.suspects[addr]
	if unreachable {
		n.suspects[addr] = n.clock.Now().Add(n.cfg.SuspicionWindow)
		if !suspect {
			n.noteTopologyChange()
		}
	} else if suspect {
		delete(n.suspects, addr)
		n.noteTopologyChange()
	}
}

// isSuspect reports whether addr failed an RPC within SuspicionWindow and
// should be skipped as a routing detour.
func (n *Node) isSuspect(addr string) bool {
	if n.cfg.SuspicionWindow <= 0 {
		return false
	}
	n.suspectMu.Lock()
	defer n.suspectMu.Unlock()
	until, ok := n.suspects[addr]
	if !ok {
		return false
	}
	if n.clock.Now().After(until) {
		delete(n.suspects, addr)
		return false
	}
	return true
}

// SweepSeen rotates the node's duplicate-suppression caches one generation
// forward (see seenCache). The maintenance scheduler calls this on a slow
// cadence so long-idle members shed their dedup window back to empty
// instead of pinning the last SeenLimit message ids forever.
func (n *Node) SweepSeen() {
	n.seen.Sweep()
	n.reflooded.Sweep()
}

// countMetric bumps a shared group-wide counter when one is configured.
func (n *Node) countMetric(name string) {
	if n.cfg.Counters != nil {
		n.cfg.Counters.Add(name, 1)
	}
}

// handleRPC dispatches incoming requests.
func (n *Node) handleRPC(from, kind string, payload any) (any, error) {
	switch kind {
	case kindPing:
		return pingResp{Node: n.self}, nil
	case kindFindSucc:
		req, ok := payload.(findSuccReq)
		if !ok {
			return nil, fmt.Errorf("runtime: bad payload for %s", kind)
		}
		return n.handleFindSucc(req)
	case kindNeighbors:
		return n.handleNeighbors()
	case kindNotify:
		req, ok := payload.(notifyReq)
		if !ok {
			return nil, fmt.Errorf("runtime: bad payload for %s", kind)
		}
		return n.handleNotify(req)
	case kindLeaving:
		req, ok := payload.(leavingReq)
		if !ok {
			return nil, fmt.Errorf("runtime: bad payload for %s", kind)
		}
		return n.handleLeaving(req)
	case kindMulticast:
		req, ok := payload.(multicastReq)
		if !ok {
			return nil, fmt.Errorf("runtime: bad payload for %s", kind)
		}
		return n.handleMulticast(req)
	case kindOffer:
		req, ok := payload.(offerReq)
		if !ok {
			return nil, fmt.Errorf("runtime: bad payload for %s", kind)
		}
		return offerResp{Want: !n.seen.Seen(req.MsgID)}, nil
	case kindFlood:
		req, ok := payload.(floodReq)
		if !ok {
			return nil, fmt.Errorf("runtime: bad payload for %s", kind)
		}
		return n.handleFlood(req)
	case kindReflood:
		req, ok := payload.(floodReq)
		if !ok {
			return nil, fmt.Errorf("runtime: bad payload for %s", kind)
		}
		return n.handleReflood(req)
	case kindApp:
		req, ok := payload.(appReq)
		if !ok {
			return nil, fmt.Errorf("runtime: bad payload for %s", kind)
		}
		if n.cfg.OnRequest == nil {
			return nil, fmt.Errorf("runtime: node %s serves no application requests", n.self.Addr)
		}
		out, err := n.cfg.OnRequest(from, req.Payload)
		if err != nil {
			return nil, err
		}
		return appResp{Payload: out}, nil
	default:
		return nil, fmt.Errorf("runtime: unknown rpc kind %q", kind)
	}
}

func (n *Node) handleNeighbors() (any, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	resp := neighborsResp{Succs: make([]NodeInfo, len(n.succRefs))}
	for i, ref := range n.succRefs {
		resp.Succs[i] = n.arena.Resolve(ref)
	}
	if p, ok := n.predLocked(); ok {
		pp := p
		resp.Pred = &pp
	}
	return resp, nil
}

func (n *Node) handleNotify(req notifyReq) (any, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	c := req.Candidate
	if c.Addr == n.self.Addr {
		return notifyResp{}, nil
	}
	accepted := false
	pred, hasPred := n.predLocked()
	// A predecessor the transport's failure detector has dropped no longer
	// gates candidates: its identifier would otherwise veto every live
	// notifier ahead of it until some RPC happens to mark it suspect here.
	if hasPred && pred.Addr != n.self.Addr && !n.net.Registered(pred.Addr) {
		n.setPredLocked(NodeInfo{})
		hasPred = false
	}
	if !hasPred || pred.Addr == n.self.Addr ||
		n.space.InOO(c.ID, pred.ID, n.self.ID) {
		n.setPredLocked(c)
		accepted = true
	}
	// A second real member supersedes a self-successor.
	if head, ok := n.succHeadLocked(); ok && head.Addr == n.self.Addr {
		n.setSuccHeadLocked(c)
	}
	if accepted {
		n.noteTopologyChange()
	}
	return notifyResp{Accepted: accepted}, nil
}

func (n *Node) handleLeaving(req leavingReq) (any, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if pred, ok := n.predLocked(); ok && pred.Addr == req.Departing.Addr {
		if req.NewPred == nil {
			n.setPredLocked(NodeInfo{})
		} else {
			n.setPredLocked(*req.NewPred)
		}
	}
	if head, ok := n.succHeadLocked(); ok && head.Addr == req.Departing.Addr {
		if req.NewSucc != nil {
			n.setSuccHeadLocked(*req.NewSucc)
		} else if len(n.succRefs) > 1 {
			n.popSuccLocked()
		} else {
			n.setSuccSelfLocked()
		}
	}
	n.noteTopologyChange()
	n.emitf(trace.KindRepair, "spliced out %s", req.Departing.Addr)
	return leavingResp{Acked: true}, nil
}

// StabilizeOnce runs one round of Chord stabilization: verify the successor,
// adopt a closer one if the successor knows of it, refresh the successor
// list, and notify the successor of our existence.
func (n *Node) StabilizeOnce() {
	succ, ok := n.liveSuccessor()
	if !ok {
		return
	}
	if succ.Addr == n.self.Addr {
		return // alone in the ring
	}

	resp, err := n.call(succ.Addr, kindNeighbors, neighborsReq{})
	if err != nil {
		// A lossy link is not a dead successor. Severing the ring edge on
		// one failed RPC lets a burst-loss window erode successor lists
		// until the ring fragments into disjoint cycles — which incoming
		// notifies can never rejoin, so the damage outlives the fault.
		// Drop only a successor the transport's failure detector says is
		// gone; a live one stays and is retried next round.
		if !n.net.Registered(succ.Addr) {
			n.dropSuccessor(succ)
		}
		return
	}
	nb, ok := resp.(neighborsResp)
	if !ok {
		return
	}

	// Adopt the successor's predecessor if it sits between us — but only
	// once it answers a neighbors call itself. The successor's pred pointer
	// can dangle at a crashed member whose suspicion mark has expired
	// (Registered alone says "not recently failed", not "alive"); adopting
	// it unconfirmed makes the successor pointer oscillate between the dead
	// candidate and the live successor every other round.
	if nb.Pred != nil && nb.Pred.Addr != n.self.Addr &&
		n.space.InOO(nb.Pred.ID, n.self.ID, succ.ID) &&
		n.net.Registered(nb.Pred.Addr) {
		if r2, err := n.call(nb.Pred.Addr, kindNeighbors, neighborsReq{}); err == nil {
			if nb2, ok := r2.(neighborsResp); ok {
				succ = *nb.Pred
				nb = nb2
			}
		}
	}

	// Rebuild the successor list: succ followed by its list, minus self.
	list := make([]NodeInfo, 0, n.cfg.SuccListLen)
	list = append(list, succ)
	for _, s := range nb.Succs {
		if len(list) >= n.cfg.SuccListLen {
			break
		}
		if s.Addr == n.self.Addr || s.Addr == succ.Addr {
			continue
		}
		list = append(list, s)
	}
	n.mu.Lock()
	n.setSuccsLocked(list)
	// Drop a dead predecessor so a live candidate can take its place.
	if pred, ok := n.predLocked(); ok && pred.Addr != n.self.Addr && !n.net.Registered(pred.Addr) {
		n.setPredLocked(NodeInfo{})
	}
	n.noteTopologyChange()
	n.mu.Unlock()

	_, _ = n.call(succ.Addr, kindNotify, notifyReq{Candidate: n.self})
}

// liveSuccessor returns the first reachable entry of the successor list,
// pruning dead ones. ok is false only when the node is stopped.
func (n *Node) liveSuccessor() (NodeInfo, bool) {
	for {
		n.mu.Lock()
		if n.stopped || len(n.succRefs) == 0 {
			stoppedOrEmpty := n.stopped
			if !stoppedOrEmpty {
				// Successor list exhausted: fall back to self; the ring
				// will heal through incoming notifies.
				n.setSuccSelfLocked()
				n.noteTopologyChange()
			}
			self := n.self
			n.mu.Unlock()
			if stoppedOrEmpty {
				return NodeInfo{}, false
			}
			return self, true
		}
		succ := n.arena.Resolve(n.succRefs[0])
		n.mu.Unlock()
		if succ.Addr == n.self.Addr || n.net.Registered(succ.Addr) {
			return succ, true
		}
		n.dropSuccessor(succ)
	}
}

// dropSuccessor removes a dead successor from the head of the list.
func (n *Node) dropSuccessor(dead NodeInfo) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if head, ok := n.succHeadLocked(); ok && head.Addr == dead.Addr {
		n.popSuccLocked()
		n.noteTopologyChange()
		n.emitf(trace.KindRepair, "dropped dead successor %s", dead.Addr)
	}
}

// Request sends an application-level unicast request to the member at addr
// and returns its response. The remote member must have an OnRequest
// handler configured. Used by layers built on top of multicast, e.g.
// retransmission NACKs in a reliability protocol.
func (n *Node) Request(addr string, payload []byte) ([]byte, error) {
	return n.RequestContext(context.Background(), addr, payload)
}

// RequestContext is Request bounded by the caller's context (in addition
// to Config.CallTimeout, whichever expires first).
func (n *Node) RequestContext(ctx context.Context, addr string, payload []byte) ([]byte, error) {
	n.mu.Lock()
	if n.stopped {
		n.mu.Unlock()
		return nil, ErrStopped
	}
	n.mu.Unlock()
	if d := n.cfg.CallTimeout; d > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, d)
		defer cancel()
	}
	resp, err := n.callCtx(ctx, addr, kindApp, appReq{Payload: payload})
	if err != nil {
		return nil, err
	}
	r, ok := resp.(appResp)
	if !ok {
		return nil, fmt.Errorf("runtime: bad app response type %T", resp)
	}
	return r.Payload, nil
}
