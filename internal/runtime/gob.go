package runtime

import (
	"encoding/gob"
	"sync"
)

var gobOnce sync.Once

// RegisterWireTypes registers every runtime RPC payload type with
// encoding/gob so that nodes can run over the TCP transport
// (internal/transport.TCP), which carries payloads as gob interface values.
// Safe to call multiple times; the in-memory transport does not need it.
func RegisterWireTypes() {
	gobOnce.Do(func() {
		gob.Register(pingReq{})
		gob.Register(pingResp{})
		gob.Register(findSuccReq{})
		gob.Register(findSuccResp{})
		gob.Register(neighborsReq{})
		gob.Register(neighborsResp{})
		gob.Register(notifyReq{})
		gob.Register(notifyResp{})
		gob.Register(multicastReq{})
		gob.Register(multicastResp{})
		gob.Register(offerReq{})
		gob.Register(offerResp{})
		gob.Register(floodReq{})
		gob.Register(floodResp{})
		gob.Register(leavingReq{})
		gob.Register(leavingResp{})
		gob.Register(appReq{})
		gob.Register(appResp{})
	})
}
