package runtime

import (
	"encoding/gob"
	"sync"

	"camcast/internal/transport"
)

var wireOnce sync.Once

// statusLookupFailed is the wire status code (v4 response frames) that
// classifies ErrLookupFailed across the TCP transport, so isLookupFailed
// can errors.Is-match remote exhaustion instead of parsing message text.
const statusLookupFailed = 1

// RegisterWireTypes registers every runtime RPC payload type with the
// transport layer so that nodes can run over the TCP transport
// (internal/transport.TCP): the binary wire codec decoders (the fast path,
// see wirecodec.go) and encoding/gob (the fallback codec, and the whole
// encoding when the transport is configured with transport.CodecGob). Safe
// to call multiple times; the in-memory transport does not need it.
func RegisterWireTypes() {
	wireOnce.Do(func() {
		registerBinaryWireTypes()
		transport.RegisterStatusError(statusLookupFailed, ErrLookupFailed)
		gob.Register(pingReq{})
		gob.Register(pingResp{})
		gob.Register(findSuccReq{})
		gob.Register(findSuccResp{})
		gob.Register(neighborsReq{})
		gob.Register(neighborsResp{})
		gob.Register(notifyReq{})
		gob.Register(notifyResp{})
		gob.Register(multicastReq{})
		gob.Register(multicastResp{})
		gob.Register(offerReq{})
		gob.Register(offerResp{})
		gob.Register(floodReq{})
		gob.Register(floodResp{})
		gob.Register(leavingReq{})
		gob.Register(leavingResp{})
		gob.Register(appReq{})
		gob.Register(appResp{})
	})
}
