package runtime

import (
	"camcast/internal/ring"
	"camcast/internal/transport"
)

// RPC kinds exchanged between runtime nodes over the transport.
const (
	kindPing      = "ping"
	kindFindSucc  = "find_successor"
	kindNeighbors = "neighbors" // predecessor + successor list exchange
	kindNotify    = "notify"
	kindMulticast = "multicast" // CAM-Chord segment delivery
	kindOffer     = "offer"     // CAM-Koorde dedup handshake
	kindFlood     = "flood"     // CAM-Koorde payload delivery
	kindReflood   = "reflood"   // CAM-Koorde repair: re-offer via a surviving neighbor
	kindLeaving   = "leaving"   // graceful departure notification
	kindApp       = "app"       // application-level unicast request
)

// NodeInfo identifies a remote node: its transport address and its ring
// identifier.
type NodeInfo struct {
	Addr string
	ID   ring.ID
}

// zero reports whether the info is unset.
func (i NodeInfo) zero() bool { return i.Addr == "" }

type pingReq struct {
	// Probe is reserved; gob requires at least one exported field.
	Probe bool
}

type pingResp struct {
	Node NodeInfo
}

type findSuccReq struct {
	K    ring.ID
	Hops int

	// Digit-routing cursor (wire v2 fields; DESIGN.md §14). On CAM-Koorde
	// rings a lookup carries Koorde's (k, kshift, i) state: Img is the
	// imaginary identifier i and Left counts how many of K's top bits
	// remain to be shifted in (the remaining digits of kshift). HasCursor
	// distinguishes a cursor at any state — including exhausted — from a
	// legacy request; requests without one (CAM-Chord, legacy peers) route
	// greedily.
	HasCursor bool
	Img       ring.ID
	Left      uint32
}

type findSuccResp struct {
	Node NodeInfo
	Hops int // total forwarding hops spent resolving the lookup
}

type neighborsReq struct {
	// Full is reserved; gob requires at least one exported field.
	Full bool
}

type neighborsResp struct {
	Pred  *NodeInfo // nil if unknown
	Succs []NodeInfo
}

type notifyReq struct {
	Candidate NodeInfo
}

type notifyResp struct {
	// Accepted reports whether the receiver adopted the candidate as its
	// predecessor.
	Accepted bool
}

type multicastReq struct {
	MsgID   string
	Source  NodeInfo
	Payload []byte
	K       ring.ID // the receiver must deliver to every member in (receiver, K]
	Hops    int
	// Repair marks an orphan-segment handoff: the receiver must re-spread
	// (receiver, K] even if it has already seen the message, because the
	// segment's original child died before covering it.
	Repair bool

	// blob, when set, owns the bytes Payload views (len(Payload) must equal
	// the blob view's length and the contents must match — the scatter-gather
	// writer sends the blob's bytes under Payload's framing). Decoded
	// requests hold one reference, released by the transport after the
	// handler returns; re-sends share the same blob so a relay never
	// re-encodes the payload. Never transits gob (unexported).
	blob *transport.Blob
}

type multicastResp struct {
	// Duplicate reports that the receiver had already seen the message.
	Duplicate bool
}

type offerReq struct {
	MsgID string
}

type offerResp struct {
	Want bool
}

type floodReq struct {
	MsgID   string
	Source  NodeInfo
	Payload []byte
	Hops    int

	// blob mirrors multicastReq.blob: the shared owner of Payload's bytes.
	blob *transport.Blob
}

type floodResp struct {
	// Duplicate reports that the receiver had already seen the message.
	Duplicate bool
}

type leavingReq struct {
	Departing NodeInfo
	// NewPred is set when the departing node was the receiver's successor's
	// predecessor... kept simple: the departing node hands each ring
	// neighbor the node on its other side.
	NewPred *NodeInfo // offered replacement predecessor (sent to the successor)
	NewSucc *NodeInfo // offered replacement successor (sent to the predecessor)
}

type leavingResp struct {
	// Acked confirms the splice was processed.
	Acked bool
}

type appReq struct {
	Payload []byte
}

type appResp struct {
	Payload []byte
}
