package runtime

import (
	"fmt"
	"testing"

	"camcast/internal/trace"
)

// TestUnobservedHotPathsAllocFree pins the satellite guarantee behind the
// observed() guard: with no tracer attached and no bus subscriber, the
// accounting turns of the delivery path — deliver, duplicate suppression —
// allocate nothing. Without the guard, emitf's variadic arguments box into
// a []any at every call site before emitf's own early return runs, which
// is exactly the regression the dissemination 0 allocs/op gates would
// catch much more expensively.
func TestUnobservedHotPathsAllocFree(t *testing.T) {
	c := newCluster(t, ModeCAMChord, 16)
	n := c.add("alloc-node", 4, "")

	if n.observed() {
		t.Fatal("node with no tracer and no subscriber reports observed")
	}

	d := Delivery{MsgID: "alloc-node#1", Payload: []byte("x"), Hops: 2}
	if allocs := testing.AllocsPerRun(1000, func() { n.deliver(d) }); allocs != 0 {
		t.Errorf("deliver with no observer: %v allocs/op, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(1000, func() { n.noteDuplicate("alloc-node#1") }); allocs != 0 {
		t.Errorf("noteDuplicate with no observer: %v allocs/op, want 0", allocs)
	}
}

// TestObservedHotPathsStillEmit proves the guard only skips work, never
// events: the same turns emit their trace events once a tracer is attached.
func TestObservedHotPathsStillEmit(t *testing.T) {
	tr := trace.NewTracer()
	c := newCluster(t, ModeCAMChord, 16)
	c.tweak = func(cfg *Config) { cfg.Tracer = tr }
	n := c.add("traced-node", 4, "")
	if !n.observed() {
		t.Fatal("node with tracer attached reports unobserved")
	}
	before := len(tr.Events())
	n.noteDuplicate("traced-node#9")
	events := tr.Events()
	if len(events) != before+1 {
		t.Fatalf("noteDuplicate emitted %d events, want 1", len(events)-before)
	}
	last := events[len(events)-1]
	if got := fmt.Sprintf("%s/%s", last.Node, last.Detail); got != "traced-node/traced-node#9" {
		t.Errorf("duplicate event = %q, want node traced-node detail traced-node#9", got)
	}
}
