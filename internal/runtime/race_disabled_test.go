//go:build !race

package runtime

// raceEnabled reports whether the race detector instruments this build;
// heavyweight tests shrink their populations under it.
const raceEnabled = false
