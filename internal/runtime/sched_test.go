package runtime

import (
	"fmt"
	goruntime "runtime"
	"sort"
	"sync/atomic"
	"testing"
	"time"

	"camcast/internal/obsv"
	"camcast/internal/ring"
	"camcast/internal/timing"
	"camcast/internal/transport"
)

// schedCluster builds n members on one in-memory network, all driven by a
// virtual-clock scheduler instead of per-node loops, and returns both. The
// members use the given shard count; bits sizes the identifier space.
func schedCluster(t *testing.T, n, shards int, bits uint) (*Scheduler, []*Node, *transport.Network) {
	t.Helper()
	net := transport.NewNetwork(1)
	space := ring.MustSpace(bits)
	clock := timing.NewVirtual(time.Unix(0, 0))
	sched := NewScheduler(SchedulerConfig{
		Shards:         shards,
		Clock:          clock,
		StabilizeEvery: 100 * time.Millisecond,
		FixEvery:       100 * time.Millisecond,
	})
	nodes := make([]*Node, 0, n)
	for i := 0; i < n; i++ {
		node, err := NewNode(net, fmt.Sprintf("member-%d", i), Config{
			Space: space, Mode: ModeCAMChord, Capacity: 4, Clock: clock,
		})
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			if err := node.Bootstrap(); err != nil {
				t.Fatal(err)
			}
		} else if err := node.Join(nodes[0].Self().Addr); err != nil {
			t.Fatalf("join %d: %v", i, err)
		}
		sched.Add(node)
		nodes = append(nodes, node)
		// A maintenance period between joins, as a live deployment has.
		sched.Advance(100 * time.Millisecond)
	}
	t.Cleanup(func() {
		sched.Stop()
		for _, node := range nodes {
			node.Stop()
		}
	})
	return sched, nodes, net
}

func ringCorrect(nodes []*Node) float64 {
	live := make([]*Node, 0, len(nodes))
	for _, n := range nodes {
		if !n.Stopped() {
			live = append(live, n)
		}
	}
	if len(live) == 0 {
		return 0
	}
	sort.Slice(live, func(i, j int) bool { return live[i].Self().ID < live[j].Self().ID })
	correct := 0
	for i, n := range live {
		want := live[(i+1)%len(live)].Self().Addr
		if succs := n.SuccessorList(); len(succs) > 0 && succs[0].Addr == want {
			correct++
		}
	}
	return float64(correct) / float64(len(live))
}

// TestSchedulerConvergesRing: members maintained only through scheduler
// rounds (no explicit StabilizeOnce calls) converge to a correct ring.
func TestSchedulerConvergesRing(t *testing.T) {
	sched, nodes, _ := schedCluster(t, 24, 1, 16)
	for i := 0; i < 40; i++ {
		sched.Advance(100 * time.Millisecond)
		if ringCorrect(nodes) == 1 {
			break
		}
	}
	if rc := ringCorrect(nodes); rc != 1 {
		t.Fatalf("ring correctness %.2f after scheduler-driven maintenance, want 1.0", rc)
	}
	// Dissemination works off the scheduler-maintained tables.
	var delivered atomic.Int64
	for _, n := range nodes {
		n.cfg.OnDeliver = func(Delivery) { delivered.Add(1) }
	}
	if _, err := nodes[3].Multicast([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	if got := delivered.Load(); got != int64(len(nodes)) {
		t.Fatalf("multicast reached %d of %d members", got, len(nodes))
	}
}

// TestSchedulerGoroutinesStayOShards is the tentpole invariant: joining
// (and then stopping) thousands of members adds zero goroutines beyond the
// shard loops, because no member owns a ticker.
func TestSchedulerGoroutinesStayOShards(t *testing.T) {
	members := 10_000
	if testing.Short() {
		members = 2_000
	}
	base := goruntime.NumGoroutine()

	net := transport.NewNetwork(1)
	space := ring.MustSpace(32)
	clock := timing.NewVirtual(time.Unix(0, 0))
	sched := NewScheduler(SchedulerConfig{Shards: 4, Clock: clock})
	var nodes []*Node
	bootstrap := ""
	for i := 0; i < members; i++ {
		node, err := NewNode(net, fmt.Sprintf("m-%d", i), Config{
			Space: space, Mode: ModeCAMChord, Capacity: 8, Clock: clock,
		})
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			if err := node.Bootstrap(); err != nil {
				t.Fatal(err)
			}
			bootstrap = node.Self().Addr
		} else if err := node.Join(bootstrap); err != nil {
			t.Fatalf("join %d: %v", i, err)
		}
		sched.Add(node)
		nodes = append(nodes, node)
		if i%256 == 0 {
			sched.Advance(500 * time.Millisecond)
		}
	}
	if got := sched.Members(); got != members {
		t.Fatalf("scheduler owns %d members, want %d", got, members)
	}
	sched.Advance(time.Second)

	// Virtual mode runs on the callers' goroutines: the whole fleet must
	// cost zero standing goroutines beyond the test's own baseline.
	if got := goruntime.NumGoroutine(); got > base+2 {
		t.Fatalf("%d goroutines while hosting %d members (base %d): maintenance is not O(shards)", got, members, base)
	}

	for _, n := range nodes {
		sched.Remove(n)
		n.Stop()
	}
	sched.Stop()
	if got := goruntime.NumGoroutine(); got > base+2 {
		t.Fatalf("%d goroutines after stopping all members (base %d)", got, base)
	}
}

// TestSchedulerWallModeMaintains: with a wall clock, Start's shard loops
// stabilize the ring on their own; Stop quiesces them.
func TestSchedulerWallModeMaintains(t *testing.T) {
	base := goruntime.NumGoroutine()
	net := transport.NewNetwork(1)
	space := ring.MustSpace(16)
	sched := NewScheduler(SchedulerConfig{
		Shards:         2,
		StabilizeEvery: 2 * time.Millisecond,
		FixEvery:       5 * time.Millisecond,
	})
	var nodes []*Node
	for i := 0; i < 12; i++ {
		node, err := NewNode(net, fmt.Sprintf("w-%d", i), Config{
			Space: space, Mode: ModeCAMChord, Capacity: 4,
		})
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			if err := node.Bootstrap(); err != nil {
				t.Fatal(err)
			}
		} else if err := node.Join(nodes[0].Self().Addr); err != nil {
			t.Fatalf("join %d: %v", i, err)
		}
		nodes = append(nodes, node)
		sched.Add(node)
	}
	sched.Start()
	deadline := time.Now().Add(5 * time.Second)
	for ringCorrect(nodes) < 1 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if rc := ringCorrect(nodes); rc != 1 {
		t.Fatalf("ring correctness %.2f under wall-clock scheduling", rc)
	}
	sched.Stop()
	for _, n := range nodes {
		n.Stop()
	}
	deadline = time.Now().Add(2 * time.Second)
	for goruntime.NumGoroutine() > base+2 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got := goruntime.NumGoroutine(); got > base+2 {
		t.Fatalf("%d goroutines after Stop (base %d): shard loops leaked", got, base)
	}
}

// TestSchedulerRemoveCancelsMaintenance: a removed member receives no
// further callbacks (its wheel entries die by generation mismatch), and
// its slot is safely reusable by a new member.
func TestSchedulerRemoveCancelsMaintenance(t *testing.T) {
	reg := obsv.NewRegistry()
	clock := timing.NewVirtual(time.Unix(0, 0))
	sched := NewScheduler(SchedulerConfig{
		Shards: 1, Clock: clock, Metrics: reg,
		StabilizeEvery: 100 * time.Millisecond,
		FixEvery:       100 * time.Millisecond,
		SeenSweepEvery: -1,
	})
	net := transport.NewNetwork(1)
	space := ring.MustSpace(16)
	a, err := NewNode(net, "a", Config{Space: space, Mode: ModeCAMChord, Capacity: 4, Clock: clock})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Bootstrap(); err != nil {
		t.Fatal(err)
	}
	sched.Add(a)
	sched.Advance(time.Second)
	before := reg.Counter(obsv.MetricSchedRounds).Load()
	if before == 0 {
		t.Fatal("no maintenance rounds ran while the member was owned")
	}
	sched.Remove(a)
	if got := reg.Gauge(obsv.MetricSchedMembers).Load(); got != 0 {
		t.Fatalf("members gauge %d after removal", got)
	}
	sched.Advance(5 * time.Second)
	if after := reg.Counter(obsv.MetricSchedRounds).Load(); after != before {
		t.Fatalf("rounds advanced from %d to %d after removal", before, after)
	}

	// Reuse the freed slot: the new occupant must get fresh maintenance.
	b, err := NewNode(net, "a2", Config{Space: space, Mode: ModeCAMChord, Capacity: 4, Clock: clock})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Bootstrap(); err != nil {
		t.Fatal(err)
	}
	sched.Add(b)
	sched.Advance(time.Second)
	if after := reg.Counter(obsv.MetricSchedRounds).Load(); after == before {
		t.Fatal("slot reuse: new member received no maintenance")
	}
	a.Stop()
	b.Stop()
}

// TestSchedulerSweepsSeenCaches: the scheduler's slow sweep cadence
// rotates members' dedup generations, draining idle caches to empty.
func TestSchedulerSweepsSeenCaches(t *testing.T) {
	clock := timing.NewVirtual(time.Unix(0, 0))
	sched := NewScheduler(SchedulerConfig{
		Shards: 1, Clock: clock,
		StabilizeEvery: time.Hour, // isolate the sweep cadence
		FixEvery:       time.Hour,
		SeenSweepEvery: time.Second,
	})
	net := transport.NewNetwork(1)
	space := ring.MustSpace(16)
	n, err := NewNode(net, "s", Config{Space: space, Mode: ModeCAMChord, Capacity: 4, Clock: clock})
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Bootstrap(); err != nil {
		t.Fatal(err)
	}
	defer n.Stop()
	sched.Add(n)
	n.seen.Record("old-message")
	// Step time rather than jump it: a rearm lands one period after the
	// step that fired it, so each second of stepped time yields one sweep.
	for i := 0; i < 4; i++ {
		sched.Advance(time.Second)
	}
	if n.seen.Len() != 0 {
		t.Fatalf("seen cache holds %d ids after idle sweeps, want 0", n.seen.Len())
	}
}

// TestSchedulerDeterministicSingleShard: two identical single-shard
// virtual runs — joins, churn, maintenance, a multicast — agree exactly on
// ring state and protocol counters.
func TestSchedulerDeterministicSingleShard(t *testing.T) {
	run := func() (string, Stats) {
		net := transport.NewNetwork(7)
		space := ring.MustSpace(16)
		clock := timing.NewVirtual(time.Unix(0, 0))
		sched := NewScheduler(SchedulerConfig{
			Shards: 1, Clock: clock,
			StabilizeEvery: 100 * time.Millisecond,
			FixEvery:       100 * time.Millisecond,
		})
		var nodes []*Node
		for i := 0; i < 16; i++ {
			node, err := NewNode(net, fmt.Sprintf("d-%d", i), Config{
				Space: space, Mode: ModeCAMChord, Capacity: 4, Clock: clock,
				ForwardParallel: -1, RetryBackoff: -1, ForwardTimeout: -1,
			})
			if err != nil {
				t.Fatal(err)
			}
			if i == 0 {
				if err := node.Bootstrap(); err != nil {
					t.Fatal(err)
				}
			} else if err := node.Join(nodes[0].Self().Addr); err != nil {
				t.Fatalf("join %d: %v", i, err)
			}
			nodes = append(nodes, node)
			sched.Add(node)
			sched.Advance(100 * time.Millisecond)
		}
		for i := 0; i < 20; i++ {
			sched.Advance(100 * time.Millisecond)
		}
		// Churn: crash two members, keep maintaining.
		for _, i := range []int{5, 11} {
			sched.Remove(nodes[i])
			nodes[i].Stop()
		}
		for i := 0; i < 20; i++ {
			sched.Advance(100 * time.Millisecond)
		}
		if _, err := nodes[2].Multicast([]byte("probe")); err != nil {
			t.Fatal(err)
		}

		var fp string
		var total Stats
		for _, n := range nodes {
			if n.Stopped() {
				continue
			}
			succs := n.SuccessorList()
			fp += n.Self().Addr + "->"
			if len(succs) > 0 {
				fp += succs[0].Addr
			}
			fp += ";"
			st := n.Stats()
			total.Delivered += st.Delivered
			total.Forwarded += st.Forwarded
			total.Duplicates += st.Duplicates
			total.Lookups += st.Lookups
			total.TableFaults += st.TableFaults
			n.Stop()
		}
		sched.Stop()
		return fp, total
	}
	fp1, st1 := run()
	fp2, st2 := run()
	if fp1 != fp2 {
		t.Fatalf("ring fingerprints diverged:\n%s\n%s", fp1, fp2)
	}
	if st1 != st2 {
		t.Fatalf("counters diverged: %+v vs %+v", st1, st2)
	}
}
