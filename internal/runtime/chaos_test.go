package runtime

import (
	"context"
	"fmt"
	goruntime "runtime"
	"testing"
	"time"

	"camcast/internal/transport"
)

// chaosTweak tightens the forwarding engine's budgets so chaos tests run in
// milliseconds instead of the production-scale defaults.
func chaosTweak(cfg *Config) {
	cfg.ForwardTimeout = 250 * time.Millisecond
	cfg.CallTimeout = 250 * time.Millisecond
	cfg.RetryBackoff = time.Millisecond
}

// sumStats aggregates a stat across the given nodes.
func sumStats(nodes []*Node, f func(Stats) uint64) uint64 {
	var total uint64
	for _, n := range nodes {
		total += f(n.Stats())
	}
	return total
}

// runCrashChaos drives the shared crash scenario: a converged cluster, a
// seeded FaultPlan killing 10% of the members (2 of 20) the moment the
// multicast starts disseminating, and the assertion that every survivor
// still receives the message exactly once with no segment reported lost —
// the repair machinery covered every orphan.
func runCrashChaos(t *testing.T, mode Mode, capacity int) {
	t.Helper()
	c := newCluster(t, mode, 16)
	c.tweak = chaosTweak
	c.grow(20, capacity)

	byID := c.sortedByID()
	origin := byID[0]
	victims := []*Node{byID[6], byID[13]} // non-adjacent, not the origin
	victimAddr := map[string]bool{}
	var victimAddrs []string
	for _, v := range victims {
		victimAddr[v.Self().Addr] = true
		victimAddrs = append(victimAddrs, v.Self().Addr)
	}

	calls, _ := c.net.Stats()
	c.net.SetFaultPlan(&transport.FaultPlan{Events: []transport.FaultEvent{
		{Kind: transport.FaultCrash, At: calls, Addrs: victimAddrs},
	}})

	msgID, err := origin.Multicast([]byte("chaos"))
	if err != nil {
		t.Fatal(err)
	}

	for _, n := range c.live() {
		addr := n.Self().Addr
		got := c.deliveries(addr, msgID)
		if victimAddr[addr] {
			if got != 0 {
				t.Errorf("crashed member %s received the message", addr)
			}
			continue
		}
		if got != 1 {
			t.Errorf("survivor %s received %s %d times, want exactly once", addr, msgID, got)
		}
	}
	if lost := sumStats(c.live(), func(s Stats) uint64 { return s.SegmentsLost }); lost != 0 {
		t.Errorf("segmentsLost = %d after repair, want 0", lost)
	}
	if engaged := sumStats(c.live(), func(s Stats) uint64 { return s.Retries + s.SegmentsRepaired }); engaged == 0 {
		t.Error("crash chaos run never engaged the retry/repair machinery")
	}
}

func TestChaosCrashMidMulticastChord(t *testing.T) {
	runCrashChaos(t, ModeCAMChord, 4)
}

func TestChaosCrashMidMulticastKoorde(t *testing.T) {
	runCrashChaos(t, ModeCAMKoorde, 6)
}

// runBurstLossChaos drives a burst-loss window over the whole multicast and
// asserts the retry engine keeps delivery complete, then heals the plan and
// checks clean delivery again.
func runBurstLossChaos(t *testing.T, mode Mode, capacity int) {
	t.Helper()
	c := newCluster(t, mode, 16)
	c.tweak = func(cfg *Config) {
		chaosTweak(cfg)
		cfg.ForwardRetries = 4 // enough budget to ride out 30% burst loss
	}
	c.grow(16, capacity)

	calls, _ := c.net.Stats()
	c.net.SetFaultPlan(&transport.FaultPlan{Events: []transport.FaultEvent{
		{Kind: transport.FaultLoss, At: calls, Rate: 0.3},
	}})
	msgID, err := c.live()[3].Multicast([]byte("lossy"))
	if err != nil {
		t.Fatal(err)
	}
	delivered := 0
	for _, n := range c.live() {
		got := c.deliveries(n.Self().Addr, msgID)
		if got > 1 {
			t.Errorf("%s received %s %d times under burst loss", n.Self().Addr, msgID, got)
		}
		delivered += got
	}
	ratio := float64(delivered) / float64(len(c.live()))
	if ratio < 0.9 {
		t.Errorf("delivery ratio %.2f under 30%% burst loss, want >= 0.9", ratio)
	}
	if lost := sumStats(c.live(), func(s Stats) uint64 { return s.SegmentsLost }); lost == 0 && ratio < 1 {
		t.Errorf("delivery ratio %.2f but no segments reported lost: silent loss", ratio)
	}
	if retries := sumStats(c.live(), func(s Stats) uint64 { return s.Retries }); retries == 0 {
		t.Error("burst loss provoked no retries")
	}

	// Heal and verify clean delivery resumes.
	c.net.SetFaultPlan(nil)
	c.converge(3)
	msgID, err = c.live()[0].Multicast([]byte("after heal"))
	if err != nil {
		t.Fatal(err)
	}
	c.checkExactlyOnce(msgID)
}

func TestChaosBurstLossChord(t *testing.T) {
	runBurstLossChaos(t, ModeCAMChord, 4)
}

func TestChaosBurstLossKoorde(t *testing.T) {
	runBurstLossChaos(t, ModeCAMKoorde, 6)
}

// TestChaosPartitionWindowChord cuts three non-adjacent members off behind
// a scheduled partition window: members behind the partition miss the
// message (and the loss is accounted, not silent), everyone else still
// gets it exactly once via segment repair; after the window heals, full
// delivery resumes.
func TestChaosPartitionWindowChord(t *testing.T) {
	c := newCluster(t, ModeCAMChord, 16)
	c.tweak = chaosTweak
	c.grow(15, 4)

	byID := c.sortedByID()
	cut := []*Node{byID[2], byID[7], byID[11]}
	cutAddr := map[string]bool{}
	var cutAddrs []string
	for _, n := range cut {
		cutAddr[n.Self().Addr] = true
		cutAddrs = append(cutAddrs, n.Self().Addr)
	}

	calls, _ := c.net.Stats()
	c.net.SetFaultPlan(&transport.FaultPlan{Events: []transport.FaultEvent{
		{Kind: transport.FaultPartition, At: calls, Until: calls + 400, Addrs: cutAddrs, Partition: 1},
	}})
	msgID, err := byID[0].Multicast([]byte("partition window"))
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range c.live() {
		addr := n.Self().Addr
		got := c.deliveries(addr, msgID)
		if cutAddr[addr] {
			if got != 0 {
				t.Errorf("partitioned member %s received the message", addr)
			}
		} else if got != 1 {
			t.Errorf("connected member %s received %s %d times, want exactly once", addr, msgID, got)
		}
	}
	if engaged := sumStats(c.live(), func(s Stats) uint64 { return s.SegmentsRepaired + s.SegmentsLost }); engaged == 0 {
		t.Error("partition provoked neither repair nor loss accounting")
	}

	// Let the window expire (call indices advance during maintenance),
	// then delivery must be complete again.
	for {
		if n, _ := c.net.Stats(); n >= calls+400 {
			break
		}
		c.converge(1)
	}
	c.converge(2)
	msgID, err = byID[1].Multicast([]byte("after window"))
	if err != nil {
		t.Fatal(err)
	}
	c.checkExactlyOnce(msgID)
}

// TestConcurrentFanoutSlowChild verifies the two core fan-out properties:
// (1) a multicast with one unresponsive child completes to every other
// member without waiting out the slow child's full latency even once, and
// (2) the orphaned segment behind the unresponsive child is repaired, not
// dropped. The slow child stays registered (so failure detection cannot
// shortcut it) but its inbound link latency far exceeds the per-child
// deadline.
func TestConcurrentFanoutSlowChild(t *testing.T) {
	const slowLatency = 2 * time.Second
	c := newCluster(t, ModeCAMChord, 16)
	c.tweak = func(cfg *Config) {
		cfg.ForwardTimeout = 50 * time.Millisecond
		cfg.CallTimeout = 25 * time.Millisecond
		cfg.RetryBackoff = time.Millisecond
		cfg.ForwardRetries = 1
	}
	c.grow(10, 4)

	byID := c.sortedByID()
	origin := byID[0]
	slow := byID[4]
	slowAddr := slow.Self().Addr
	c.net.SetLatency(func(from, to string) time.Duration {
		if to == slowAddr {
			return slowLatency
		}
		return 0
	})
	defer c.net.SetLatency(nil)

	start := time.Now()
	msgID, err := origin.Multicast([]byte("one slow child"))
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)

	// Far under the slow child's latency: the engine never waited it out.
	if elapsed >= slowLatency {
		t.Fatalf("multicast took %v, stalled on the slow child's %v latency", elapsed, slowLatency)
	}
	if elapsed > slowLatency/2 {
		t.Errorf("multicast took %v; want well under %v (per-child deadline 50ms)", elapsed, slowLatency/2)
	}
	for _, n := range c.live() {
		addr := n.Self().Addr
		got := c.deliveries(addr, msgID)
		if addr == slowAddr {
			continue // unreachable within any deadline; excluded
		}
		if got != 1 {
			t.Errorf("%s received %s %d times, want exactly once", addr, msgID, got)
		}
	}
	if repaired := sumStats(c.live(), func(s Stats) uint64 { return s.SegmentsRepaired }); repaired == 0 {
		t.Error("slow child's segment was never repaired")
	}
}

// TestRepairSegmentHandsOffOrphan exercises repairSegment directly: the
// planned child is stopped, and the orphan segment (child's successor
// onward) must be handed to a live node that then covers it.
func TestRepairSegmentHandsOffOrphan(t *testing.T) {
	c := newCluster(t, ModeCAMChord, 16)
	c.tweak = chaosTweak
	c.grow(8, 4)

	byID := c.sortedByID()
	parent := byID[0]
	victim := byID[3]
	victim.Stop()

	msgID := "repair-test#1"
	parent.seen.Record(msgID)
	cp := childPlan{
		y:      victim.Self().ID,
		segEnd: c.space.Sub(parent.Self().ID, 1), // the whole rest of the ring
	}
	parent.repairSegment(context.Background(), msgID, parent.Self(), payloadRef{bytes: []byte("orphan")}, cp, victim.Self(), 0)

	if got := parent.Stats().SegmentsRepaired; got != 1 {
		t.Fatalf("SegmentsRepaired = %d, want 1", got)
	}
	for _, n := range c.live() {
		addr := n.Self().Addr
		want := 0
		// Only members inside the orphan segment (victim, segEnd] belong
		// to the handoff; the dead victim itself can receive nothing.
		if c.space.InOC(n.Self().ID, victim.Self().ID, cp.segEnd) {
			want = 1
		}
		if got := c.deliveries(addr, msgID); got != want {
			t.Errorf("%s received repaired segment %d times, want %d", addr, got, want)
		}
	}
}

// TestChaosNoGoroutineLeaks runs a crash scenario end to end, stops every
// node, and verifies the forwarding engine left no goroutines behind.
func TestChaosNoGoroutineLeaks(t *testing.T) {
	before := goruntime.NumGoroutine()

	net := transport.NewNetwork(7)
	c := &cluster{
		t: t, net: net, space: spaceForTest(), mode: ModeCAMKoorde,
		tweak: chaosTweak,
		nodes: map[string]*Node{}, got: map[string]map[string]int{},
	}
	c.add("leak-0", 6, "")
	for i := 1; i < 10; i++ {
		c.add(fmt.Sprintf("leak-%d", i), 6, "leak-0")
		c.stabilizeAll(2)
	}
	c.converge(3)

	calls, _ := net.Stats()
	net.SetFaultPlan(&transport.FaultPlan{Events: []transport.FaultEvent{
		{Kind: transport.FaultCrash, At: calls, Addrs: []string{c.live()[4].Self().Addr}},
	}})
	if _, err := c.live()[0].Multicast([]byte("leak probe")); err != nil {
		t.Fatal(err)
	}
	for _, n := range c.nodes {
		n.Stop()
	}

	deadline := time.Now().Add(2 * time.Second)
	for {
		if goruntime.NumGoroutine() <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after", before, goruntime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}
