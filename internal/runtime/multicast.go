package runtime

import (
	"context"
	"fmt"
	"time"

	"camcast/internal/ring"
	"camcast/internal/trace"
	"camcast/internal/transport"
)

// payloadRef carries a message payload through the forwarding engine: the
// raw bytes plus, on blob-aware transports, the refcounted blob that owns
// them. The engine only borrows the blob — the caller (the transport's
// serving side for relays, MulticastContext for origination) holds the
// reference for the duration of the synchronous spread and releases it —
// and every outgoing frame shares it, so fan-out, retry, repair handoff,
// and reflood all reuse the single encoding of the payload that already
// exists on this node.
type payloadRef struct {
	bytes []byte
	blob  *transport.Blob
}

// Multicast originates a message to the whole group and returns its message
// ID. CAM-Chord nodes split the identifier ring across their neighbor-table
// children (Section 3.4); CAM-Koorde nodes flood with an offer/accept dedup
// handshake (Section 4.3). Delivery to the local application happens first.
// Multicast returns only after the whole dissemination tree has completed —
// every segment either acknowledged, repaired, or accounted lost — so a
// caller observing Stats() afterwards sees the final forwarding outcome.
func (n *Node) Multicast(payload []byte) (string, error) {
	return n.MulticastContext(context.Background(), payload)
}

// MulticastContext is Multicast under the caller's context: cancellation
// abandons outstanding child sends (those segments are neither repaired
// nor counted lost — the caller gave up, the group did not fail) while
// per-child deadlines from Config.ForwardTimeout still apply.
func (n *Node) MulticastContext(ctx context.Context, payload []byte) (string, error) {
	n.mu.Lock()
	if !n.started || n.stopped {
		n.mu.Unlock()
		return "", ErrStopped
	}
	n.mu.Unlock()

	start := time.Now()
	msgID := fmt.Sprintf("%s#%d", n.self.Addr, n.seq.Add(1))
	n.seen.Record(msgID)
	n.deliver(Delivery{MsgID: msgID, Source: n.self, Payload: payload, Hops: 0})

	// On a blob-aware transport, materialize the payload once: every child
	// frame of the fan-out (and any retry or repair) shares this blob, so
	// the encode cost of a multicast is independent of capacity.
	p := payloadRef{bytes: payload}
	if n.blobPayloads && len(payload) > 0 {
		p.blob = transport.BlobFrom(payload)
		n.obs.encodes.Inc()
		defer p.blob.Release()
	}
	switch n.cfg.Mode {
	case ModeCAMChord:
		n.spreadSegment(ctx, msgID, n.self, p, n.space.Sub(n.self.ID, 1), 0)
	case ModeCAMKoorde:
		n.floodNeighbors(ctx, msgID, n.self, p, 0)
	}
	n.obs.treeTime.ObserveDuration(time.Since(start))
	return msgID, nil
}

func (n *Node) deliver(d Delivery) {
	n.delivered.Add(1)
	n.obs.delivered.Inc()
	if n.observed() {
		n.emitf(trace.KindDeliver, "%s hops=%d", d.MsgID, d.Hops)
	}
	if n.cfg.OnDeliver != nil {
		n.cfg.OnDeliver(d)
	}
}

// noteDuplicate accounts one suppressed duplicate delivery or offer.
func (n *Node) noteDuplicate(msgID string) {
	n.duplicates.Add(1)
	n.obs.duplicates.Inc()
	if n.observed() {
		n.emitf(trace.KindDuplicate, "%s", msgID)
	}
}

func (n *Node) handleMulticast(req multicastReq) (any, error) {
	dup := n.seen.Record(req.MsgID)
	if dup {
		// Stale routing state upstream caused a duplicate; suppress it so
		// the application still sees exactly-once delivery.
		n.noteDuplicate(req.MsgID)
		if !req.Repair {
			return multicastResp{Duplicate: true}, nil
		}
		// A repair handoff: the original child of (self, K] died, so this
		// node re-spreads the segment even though it already delivered the
		// message itself. Downstream duplicates are suppressed per node.
	} else {
		n.deliver(Delivery{MsgID: req.MsgID, Source: req.Source, Payload: req.Payload, Hops: req.Hops})
	}
	// Relay straight out of the received request: req.blob (held by the
	// transport until this handler returns) carries the wire bytes every
	// child frame shares, so the relay never re-encodes the payload.
	n.spreadSegment(context.Background(), req.MsgID, req.Source, payloadRef{req.Payload, req.blob}, req.K, req.Hops)
	return multicastResp{Duplicate: dup}, nil
}

// spreadSegment delivers the message to every member in (self, k] by
// splitting the segment across up to c_x children, exactly as the static
// algorithm in internal/camchord but resolving children through the node's
// own neighbor table (with on-demand lookups for missing or dead entries).
// Children are dispatched concurrently — one dead or slow child delays only
// its own segment — and each send is protected by the retry/repair engine
// in forward.go.
func (n *Node) spreadSegment(ctx context.Context, msgID string, source NodeInfo, payload payloadRef, k ring.ID, hops int) {
	plan := n.planSegments(k)
	if len(plan) == 0 {
		return
	}
	start := time.Now()
	table := n.tableSnapshot()
	n.fanOut(len(plan), func(i int) {
		n.forwardSegment(ctx, msgID, source, payload, plan[i], table, hops)
	})
	n.obs.spreadTime.ObserveDuration(time.Since(start))
}

func (n *Node) handleFlood(req floodReq) (any, error) {
	if n.seen.Record(req.MsgID) {
		n.noteDuplicate(req.MsgID)
		return floodResp{Duplicate: true}, nil
	}
	n.deliver(Delivery{MsgID: req.MsgID, Source: req.Source, Payload: req.Payload, Hops: req.Hops})
	n.floodNeighbors(context.Background(), req.MsgID, req.Source, payloadRef{req.Payload, req.blob}, req.Hops)
	return floodResp{}, nil
}

// handleReflood serves a repair re-offer: deliver if the message is new
// here, then flood to our own neighbors regardless, so offers reach members
// around a dead neighbor. Already-delivered neighbors decline the offers,
// which bounds the extra traffic to one offer round per relay.
func (n *Node) handleReflood(req floodReq) (any, error) {
	if !n.seen.Record(req.MsgID) {
		n.deliver(Delivery{MsgID: req.MsgID, Source: req.Source, Payload: req.Payload, Hops: req.Hops})
	}
	n.floodNeighbors(context.Background(), req.MsgID, req.Source, payloadRef{req.Payload, req.blob}, req.Hops)
	return floodResp{}, nil
}

// floodNeighbors implements CAM-Koorde's MULTICAST (Section 4.3): offer the
// message to every neighbor over the bidirectional links and send the
// payload only to those that have not received it. Neighbors are contacted
// concurrently under the fan-out limit; unreachable or undeliverable
// neighbors trigger a reflood repair through the surviving mesh.
func (n *Node) floodNeighbors(ctx context.Context, msgID string, source NodeInfo, payload payloadRef, hops int) {
	neighbors := n.koordeNeighbors()
	if len(neighbors) == 0 {
		return
	}
	start := time.Now()
	needRepair := make([]bool, len(neighbors))
	isRelay := make([]bool, len(neighbors))
	n.fanOut(len(neighbors), func(i int) {
		needRepair[i], isRelay[i] = n.floodOne(ctx, msgID, source, payload, neighbors[i], hops)
	})
	n.obs.spreadTime.ObserveDuration(time.Since(start))
	if ctx.Err() != nil {
		return // caller gave up; don't account abandoned sends as losses
	}

	// Split failures by what the transport knows: a neighbor it confirms
	// gone is membership shrinkage (the flood still refloods around the
	// hole, but nothing was lost to a live member), while an unreachable
	// neighbor still believed alive is accounted as repaired or lost.
	failedLive, failedDead := 0, 0
	var relays []NodeInfo
	for i := range neighbors {
		if needRepair[i] {
			if n.net.Registered(neighbors[i].Addr) {
				failedLive++
			} else {
				failedDead++
			}
		}
		if isRelay[i] {
			relays = append(relays, neighbors[i])
		}
	}
	if failedLive+failedDead > 0 {
		n.refloodRepair(ctx, msgID, source, payload, hops, failedLive, relays)
	}
}

// koordeNeighbors snapshots the node's current CAM-Koorde neighbor set:
// predecessor, successor, and every resolved table slot, deduplicated.
// Slots are visited in index order, which targetsFor guarantees is
// ascending (level, seq) order, so the same routing state always yields
// the same neighbor sequence — flood order is part of what the
// deterministic replay engine asserts on.
func (n *Node) koordeNeighbors() []NodeInfo {
	n.mu.Lock()
	defer n.mu.Unlock()
	seen := map[string]bool{n.self.Addr: true}
	out := make([]NodeInfo, 0, n.cfg.Capacity)
	add := func(info NodeInfo) {
		if info.zero() || seen[info.Addr] {
			return
		}
		seen[info.Addr] = true
		out = append(out, info)
	}
	if p, ok := n.predLocked(); ok {
		add(p)
	}
	if len(n.succRefs) > 0 {
		add(n.arena.Resolve(n.succRefs[0]))
	}
	for _, ref := range n.slotRefs {
		add(n.arena.Resolve(ref))
	}
	return out
}
