package runtime

import (
	"fmt"
	"math"

	"camcast/internal/ring"
	"camcast/internal/trace"
)

// Multicast originates a message to the whole group and returns its message
// ID. CAM-Chord nodes split the identifier ring across their neighbor-table
// children (Section 3.4); CAM-Koorde nodes flood with an offer/accept dedup
// handshake (Section 4.3). Delivery to the local application happens first.
func (n *Node) Multicast(payload []byte) (string, error) {
	n.mu.Lock()
	if !n.started || n.stopped {
		n.mu.Unlock()
		return "", ErrStopped
	}
	n.mu.Unlock()

	msgID := fmt.Sprintf("%s#%d", n.self.Addr, n.seq.Add(1))
	n.seen.Record(msgID)
	n.deliver(Delivery{MsgID: msgID, Source: n.self, Payload: payload, Hops: 0})

	switch n.cfg.Mode {
	case ModeCAMChord:
		n.spreadSegment(msgID, n.self, payload, n.space.Sub(n.self.ID, 1), 0)
	case ModeCAMKoorde:
		n.floodNeighbors(msgID, n.self, payload, 0)
	}
	return msgID, nil
}

func (n *Node) deliver(d Delivery) {
	n.delivered.Add(1)
	n.cfg.Tracer.Emitf(n.self.Addr, trace.KindDeliver, "%s hops=%d", d.MsgID, d.Hops)
	if n.cfg.OnDeliver != nil {
		n.cfg.OnDeliver(d)
	}
}

func (n *Node) handleMulticast(req multicastReq) (any, error) {
	if n.seen.Record(req.MsgID) {
		// Stale routing state upstream caused a duplicate; suppress it so
		// the application still sees exactly-once delivery.
		n.duplicates.Add(1)
		n.cfg.Tracer.Emitf(n.self.Addr, trace.KindDuplicate, "%s", req.MsgID)
		return multicastResp{Duplicate: true}, nil
	}
	n.deliver(Delivery{MsgID: req.MsgID, Source: req.Source, Payload: req.Payload, Hops: req.Hops})
	n.spreadSegment(req.MsgID, req.Source, req.Payload, req.K, req.Hops)
	return multicastResp{}, nil
}

// spreadSegment delivers the message to every member in (self, k] by
// splitting the segment across up to c_x children, exactly as the static
// algorithm in internal/camchord but resolving children through the node's
// own neighbor table (with on-demand lookups for missing or dead entries).
func (n *Node) spreadSegment(msgID string, source NodeInfo, payload []byte, k ring.ID, hops int) {
	s := n.space
	x := n.self.ID
	c := uint64(n.cfg.Capacity)
	if s.Dist(x, k) == 0 {
		return
	}
	table := n.tableSnapshot()

	kk := k
	send := func(y ring.ID, key tableKey, viaSucc bool) {
		if s.Dist(x, kk) == 0 || !s.InOC(y, x, kk) {
			return
		}
		var (
			child NodeInfo
			ok    bool
		)
		if viaSucc {
			if live, liveOK := n.liveSuccessor(); liveOK {
				child, ok = live, true
			}
		} else {
			child, ok = table[key]
		}
		if !ok || child.zero() || !n.net.Registered(child.Addr) {
			// Table slot empty or stale: resolve on demand.
			n.tableFaults.Add(1)
			info, _, err := n.FindSuccessor(y)
			if err != nil {
				kk = s.Sub(y, 1)
				return
			}
			child = info
		}
		if child.Addr != n.self.Addr && s.InOC(child.ID, x, kk) {
			_, err := n.call(child.Addr, kindMulticast, multicastReq{
				MsgID: msgID, Source: source, Payload: payload, K: kk, Hops: hops + 1,
			})
			if err != nil {
				// Child died between resolution and delivery: re-resolve once.
				if info, _, lerr := n.FindSuccessor(y); lerr == nil &&
					info.Addr != n.self.Addr && info.Addr != child.Addr && s.InOC(info.ID, x, kk) {
					_, err = n.call(info.Addr, kindMulticast, multicastReq{
						MsgID: msgID, Source: source, Payload: payload, K: kk, Hops: hops + 1,
					})
				}
			}
			if err == nil {
				n.forwarded.Add(1)
				n.cfg.Tracer.Emitf(n.self.Addr, trace.KindForward, "%s -> segment end %d", msgID, kk)
			}
		}
		kk = s.Sub(y, 1)
	}

	level, seq, pow := s.LevelSeq(x, k, c)
	// Level-i neighbors preceding k (Lines 6-9).
	for m := seq; m >= 1; m-- {
		send(s.Add(x, m*pow), tableKey{level: uint32(level), seq: uint32(m)}, false)
	}
	// Evenly spaced level-(i-1) children (Lines 10-14; see internal/camchord
	// for why the ceiling matches the paper's worked example).
	if level >= 1 {
		prevPow := pow / c
		l := float64(c)
		step := float64(c) / float64(c-seq)
		for m := int64(c) - int64(seq) - 1; m >= 1; m-- {
			l -= step
			j := uint64(math.Ceil(l))
			if j < 1 {
				j = 1
			}
			send(s.Add(x, j*prevPow), tableKey{level: uint32(level - 1), seq: uint32(j)}, false)
		}
	}
	// The successor (Line 15).
	send(s.Add(x, 1), tableKey{}, true)
}

func (n *Node) handleFlood(req floodReq) (any, error) {
	if n.seen.Record(req.MsgID) {
		n.duplicates.Add(1)
		n.cfg.Tracer.Emitf(n.self.Addr, trace.KindDuplicate, "%s", req.MsgID)
		return floodResp{Duplicate: true}, nil
	}
	n.deliver(Delivery{MsgID: req.MsgID, Source: req.Source, Payload: req.Payload, Hops: req.Hops})
	n.floodNeighbors(req.MsgID, req.Source, req.Payload, req.Hops)
	return floodResp{}, nil
}

// floodNeighbors implements CAM-Koorde's MULTICAST (Section 4.3): offer the
// message to every neighbor over the bidirectional links and send the
// payload only to those that have not received it.
func (n *Node) floodNeighbors(msgID string, source NodeInfo, payload []byte, hops int) {
	for _, nb := range n.koordeNeighbors() {
		resp, err := n.call(nb.Addr, kindOffer, offerReq{MsgID: msgID})
		if err != nil {
			continue // unreachable neighbor; the mesh routes around it
		}
		offer, ok := resp.(offerResp)
		if !ok {
			continue // malformed response; treat the neighbor as unusable
		}
		if !offer.Want {
			n.duplicates.Add(1)
			continue
		}
		_, err = n.call(nb.Addr, kindFlood, floodReq{
			MsgID: msgID, Source: source, Payload: payload, Hops: hops + 1,
		})
		if err == nil {
			n.forwarded.Add(1)
			n.cfg.Tracer.Emitf(n.self.Addr, trace.KindForward, "%s -> %s", msgID, nb.Addr)
		}
	}
}

// koordeNeighbors snapshots the node's current CAM-Koorde neighbor set:
// predecessor, successor, and every resolved table slot, deduplicated.
func (n *Node) koordeNeighbors() []NodeInfo {
	n.mu.Lock()
	defer n.mu.Unlock()
	seen := map[string]bool{n.self.Addr: true}
	out := make([]NodeInfo, 0, n.cfg.Capacity)
	add := func(info NodeInfo) {
		if info.zero() || seen[info.Addr] {
			return
		}
		seen[info.Addr] = true
		out = append(out, info)
	}
	if n.pred != nil {
		add(*n.pred)
	}
	if len(n.succs) > 0 {
		add(n.succs[0])
	}
	for _, info := range n.table {
		add(info)
	}
	return out
}
