package runtime

import (
	"errors"
	"fmt"
	"strings"

	"camcast/internal/camkoorde"
	"camcast/internal/ring"
)

// failedSubtreePenalty is the hop-budget cost of one candidate that
// responded with a lookup failure. It is deliberately a large fraction of
// the budget: successful detours are short (a few hops), so they fit in
// whatever budget remains, while a search that keeps dead-ending exhausts
// its budget after a handful of subtree explorations instead of
// backtracking exponentially.
const failedSubtreePenalty = 64

// cursorMarginBits is how many bits a digit cursor injects beyond the
// ~log2(n) needed to name the owner's ring segment. Each extra bit halves
// the landing offset from k's true owner, so 8 bits land the chain within
// 1/256 of a successor gap — at the owner or its immediate ring neighbor —
// for the cost of at most 8 extra single-bit hops on capacity-4 paths.
const cursorMarginBits = 8

// exhaustWalkGaps is how far past k's owner (in mean successor gaps) an
// exhausted digit cursor still recovers by walking backward through exact
// predecessor pointers — one hop per stale member — before the landing is
// treated as flash-crowd staleness and rerouted instead.
const exhaustWalkGaps = 48

// maxLookupHops is the lookup hop budget (and the value a failed lookup
// observes in the hop histogram). The generous multiple of the identifier
// width covers greedy successor walks on small rings and the
// failed-subtree penalties charged while routing around partitions.
func (n *Node) maxLookupHops() int {
	return int(n.space.Bits())*4 + 256
}

// isLookupFailed reports whether an RPC error is a remote lookup
// exhaustion. In-process transports preserve the sentinel for errors.Is,
// and the binary wire protocol (v4+) carries a typed status code that the
// transport rehydrates into the same sentinel; the string match remains
// only for gob-legacy peers, whose responses flatten errors to messages.
func isLookupFailed(err error) bool {
	return errors.Is(err, ErrLookupFailed) ||
		(err != nil && strings.Contains(err.Error(), "lookup failed"))
}

// FindSuccessor resolves the node currently responsible for identifier k,
// returning it together with the number of forwarding hops spent. This is
// the node's own entry point; remote requests arrive through handleFindSucc.
func (n *Node) FindSuccessor(k ring.ID) (NodeInfo, int, error) {
	resp, err := n.handleFindSucc(findSuccReq{K: k})
	if err != nil {
		// A failed lookup burned the whole budget; record it as max-hops so
		// the histogram's tail reflects partition behavior instead of
		// silently dropping the most expensive lookups.
		n.obs.lookupHops.Observe(float64(n.maxLookupHops()))
		return NodeInfo{}, 0, err
	}
	r, ok := resp.(findSuccResp)
	if !ok {
		return NodeInfo{}, 0, fmt.Errorf("runtime: bad find_successor response type %T", resp)
	}
	n.obs.lookupHops.Observe(float64(r.Hops))
	return r.Node, r.Hops, nil
}

func (n *Node) handleFindSucc(req findSuccReq) (any, error) {
	n.lookups.Add(1)
	maxHops := n.maxLookupHops()
	if req.Hops > maxHops {
		return nil, fmt.Errorf("%w: exceeded %d hops resolving %d", ErrLookupFailed, maxHops, req.K)
	}

	n.mu.Lock()
	if n.stopped {
		n.mu.Unlock()
		return nil, ErrStopped
	}
	self := n.self
	pred, hasPred := n.predLocked()
	succ := self
	if len(n.succRefs) > 0 {
		succ = n.arena.Resolve(n.succRefs[0])
	}
	n.mu.Unlock()

	k := req.K
	// Alone, or k is ours: (pred, self] covers it.
	if succ.Addr == self.Addr || k == self.ID ||
		(hasPred && pred.Addr != self.Addr && n.space.InOC(k, pred.ID, self.ID)) {
		return findSuccResp{Node: self, Hops: req.Hops}, nil
	}
	// The successor's segment (self, succ] covers it.
	if n.space.InOC(k, self.ID, succ.ID) {
		return findSuccResp{Node: succ, Hops: req.Hops}, nil
	}

	// CAM-Koorde routes by de Bruijn digit shifts (Section 4.2): the request
	// carries a cursor — imaginary identifier plus remaining key digits —
	// that each hop advances one base-k digit through its own slot table.
	// The greedy closest-preceding walk below remains the fallback for
	// CAM-Chord, for legacy requests without a cursor, and for hops whose
	// digit target is unreachable.
	if n.cfg.Mode == ModeCAMKoorde {
		if resp, err, handled := n.digitRoute(req, self, pred, hasPred); handled {
			return resp, err
		}
	}

	return n.greedyRoute(req, self, 0)
}

// digitRoute advances a CAM-Koorde lookup by digit shifts. It initializes
// the cursor on a fresh entry-point request (Hops == 0, no cursor yet) and
// otherwise takes over only requests that already carry one; handled is
// false when the request must route greedily instead (legacy cursorless
// request, or the digit step's owner was unreachable — in which case the
// greedy fallback runs here directly, seeded with the subtree penalty).
func (n *Node) digitRoute(req findSuccReq, self, pred NodeInfo, hasPred bool) (resp any, err error, handled bool) {
	k := req.K
	b := n.space.Bits()
	if !req.HasCursor {
		if req.Hops > 0 {
			return nil, nil, false // legacy in-flight request: greedy
		}
		// Entry point: start the imaginary chain at our own identifier and
		// plan to inject only k's top cursorBits() — enough to land within a
		// successor gap of k's owner; the residual low bits are absorbed by
		// the termination checks and at most a ring step at the landing.
		req.HasCursor = true
		req.Img = self.ID
		req.Left = n.cursorBits()
	}

	for {
		if req.Left == 0 {
			// Chain exhausted: the landing is near k's owner, but the last
			// hop resolved through another node's slot, and slot contents
			// lag membership (they are only as fresh as the owner's last
			// fix pass), so the landing can sit several members PAST the
			// owner. Up to exhaustWalkGaps mean successor gaps behind —
			// staleness from normal join traffic — walking backward through
			// the exact predecessor pointers converges in a hop per stale
			// member, cheaper than any rerouting. The yardstick is the mean
			// gap from the successor list, not the landing node's own
			// predecessor gap, whose exponential variance would randomly
			// reject cheap walks. k ahead of us (an undershoot) is the
			// greedy candidates' home turf already.
			behind := n.space.Dist(k, self.ID)
			if behind < n.space.Dist(self.ID, k) {
				gap := n.meanSuccGap()
				if gap == 0 && hasPred {
					gap = n.space.Dist(pred.ID, self.ID)
				}
				if behind <= exhaustWalkGaps*gap &&
					hasPred && pred.Addr != self.Addr && !n.isSuspect(pred.Addr) {
					fwd := req
					fwd.Hops++
					r, err := n.call(pred.Addr, kindFindSucc, fwd)
					if err == nil {
						if fs, ok := r.(findSuccResp); ok {
							return fs, nil, true
						}
					}
					if isLookupFailed(err) {
						r2, err2 := n.greedyRoute(req, self, failedSubtreePenalty)
						return r2, err2, true
					}
				}
				// Landed a long way past the owner — a flash-crowd's worth of
				// members joined ahead of us since the final slot's owner last
				// fixed it, and the backward walk would pay a hop per stale
				// member. Re-inject a fresh cursor and run a new digit chain
				// from here: another O(log n) trial through different tables
				// that usually lands close enough for the predecessor walk
				// above. Staleness is spatially correlated (everyone's slots
				// covering a freshly-grown region lag together), so trials
				// are capped at an eighth of the hop budget; past that the
				// greedy walk finishes with most of the budget in hand.
				if req.Hops < n.maxLookupHops()/8 {
					req.Img = self.ID
					req.Left = n.cursorBits()
					continue
				}
				return nil, nil, false
			}
			return nil, nil, false
		}

		// One digit step: the widest shift our capacity affords for the next
		// of k's remaining top bits, looked up in our own slot table.
		g, shift, v := camkoorde.NextShift(n.cfg.Capacity, k, b-uint(req.Left), b)
		idx, ok := n.spec.slotIndex(tableKey{level: uint32(g), seq: uint32(v)})
		var target NodeInfo
		if ok {
			n.mu.Lock()
			if n.stopped {
				n.mu.Unlock()
				return nil, ErrStopped, true
			}
			target = n.arena.Resolve(n.slotRefs[idx])
			n.mu.Unlock()
		}

		// The right-shift de Bruijn map x -> v·2^(b-s) | x>>s is linear, not
		// circular: two ring-adjacent identifiers straddling zero map half a
		// ring apart. A slot whose image falls in the empty arc above the
		// highest member therefore stores a successor that wrapped past the
		// origin — following it would tear the real chain away from the
		// imaginary one for the rest of the lookup, degenerating into an
		// O(n) greedy walk. A wrapped step (target linearly below the slot
		// image) is genuine only when the image sits just above us — wrap
		// forces both into the ring's top 2^shift·gap arc — and is then
		// consumed in place like a self-pointing slot: the cursor stays
		// within a few gaps of us and the next non-wrapping digit rejoins
		// the chain. A wrapped target whose image is far from us is instead
		// a fossil from when the ring was sparse enough for the image's
		// whole upper arc to be empty; consuming there would tear the cursor
		// just as badly, so the slot is treated as unresolved below.
		wrapped := false
		slotImg := n.space.TopBits(v, shift) | n.space.Shr(self.ID, shift)
		if !target.zero() && target.ID < slotImg {
			gap := n.meanSuccGap()
			if gap == 0 || n.space.Dist(self.ID, slotImg) <= (gap<<shift)<<2 {
				fwd := req
				fwd.Img = n.space.TopBits(v, shift) | n.space.Shr(req.Img, shift)
				fwd.Left = req.Left - uint32(shift)
				req = fwd
				continue
			}
			wrapped = true
		}

		if target.zero() || wrapped || n.isSuspect(target.Addr) {
			// Slot not (yet) resolved — a fresh joiner mid-FixAll, or the
			// occupant just failed an RPC. Delegate the UNCHANGED cursor to a
			// live successor-list entry: the cursor is position-independent
			// state, any node's tables cover the same digit step, and on a
			// converged ring one such delegation suffices (a fresh joiner's
			// successor is exactly such a node). Preferring the farthest
			// entry makes the degenerate everyone-unfilled case a
			// stride-SuccListLen ring walk instead of a stride-1 one.
			// Never delegate across the ring origin: the right-shift digit
			// map is discontinuous at zero, so a cursor carried past the
			// origin lands its remaining steps half a ring from the
			// imaginary chain. Such delegates fall through to greedy.
			if live, ok := n.delegateSuccessor(self); ok && live.ID > self.ID {
				fwd := req
				fwd.Hops++
				r, err := n.call(live.Addr, kindFindSucc, fwd)
				if err == nil {
					if fs, ok := r.(findSuccResp); ok {
						return fs, nil, true
					}
				}
				if isLookupFailed(err) {
					r2, err2 := n.greedyRoute(req, self, failedSubtreePenalty)
					return r2, err2, true
				}
			}
			return nil, nil, false
		}

		// Advance the imaginary chain. The cursor carries the calculated
		// identifier, not the resolved node's, so sparse-ring resolution
		// drift never compounds (each hop divides the previous offset by
		// 2^shift); see camkoorde.Lookup for the static-network analogue.
		fwd := req
		fwd.Img = n.space.TopBits(v, shift) | n.space.Shr(req.Img, shift)
		fwd.Left = req.Left - uint32(shift)

		if target.Addr == self.Addr {
			// Our own table maps the step back to us (dense capacity or tiny
			// ring): consume the digit locally and take the next one.
			req = fwd
			continue
		}

		fwd.Hops++
		r, err := n.call(target.Addr, kindFindSucc, fwd)
		if err == nil {
			if fs, ok := r.(findSuccResp); ok {
				return fs, nil, true
			}
			return nil, nil, false
		}
		// The digit target is unreachable: fall back to greedy backtracking,
		// charging the failed-subtree penalty when the target itself already
		// exhausted a downstream search.
		penalty := 0
		if isLookupFailed(err) {
			penalty = failedSubtreePenalty
		}
		r2, err2 := n.greedyRoute(req, self, penalty)
		return r2, err2, true
	}
}

// delegateSuccessor picks the farthest successor-list entry that is not
// self, not suspect, and still believed reachable — the delegate for a
// digit step whose slot is unfilled or whose occupant is suspect.
func (n *Node) delegateSuccessor(self NodeInfo) (NodeInfo, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	for i := len(n.succRefs) - 1; i >= 0; i-- {
		info := n.arena.Resolve(n.succRefs[i])
		if info.zero() || info.Addr == self.Addr || n.isSuspect(info.Addr) || !n.net.Registered(info.Addr) {
			continue
		}
		return info, true
	}
	return NodeInfo{}, false
}

// cursorBits estimates how many of k's top bits a digit cursor must inject
// for the truncated chain to land within one successor-list span of k's
// owner: b - log2(mean successor gap) names the owner's segment, plus
// cursorMarginBits of safety. The gap estimate comes from the node's own
// successor list — the only densely sampled ring segment it knows.
func (n *Node) cursorBits() uint32 {
	b := int(n.space.Bits())
	gap := n.meanSuccGap()
	if gap == 0 {
		return uint32(b) // alone or unconverged: inject everything
	}
	t := b - int(ring.Log2Floor(gap)) + cursorMarginBits
	if t < 1 {
		t = 1
	}
	if t > b {
		t = b
	}
	return uint32(t)
}

// meanSuccGap estimates the ring's per-member identifier gap from the
// node's own successor list — the only densely sampled ring segment it
// knows. Returns 0 when alone or not yet stabilized.
func (n *Node) meanSuccGap() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	l := len(n.succRefs)
	if l == 0 {
		return 0
	}
	span := n.space.Dist(n.self.ID, n.arena.Resolve(n.succRefs[l-1]).ID)
	return span / uint64(l)
}

// greedyRoute forwards to the closest known neighbor preceding k (the CAM
// lookup step), falling through the candidate list past unreachable nodes.
// penalty seeds the hop-budget surcharge when the caller already burned a
// failed digit subtree before falling back here.
//
// A candidate that RESPONDED with a lookup failure already searched a
// whole downstream subtree (or hit the hop limit), and the sibling we
// try next routes into largely the same subgraph. Unpenalized, that
// backtracking makes an unresolvable lookup — an identifier whose
// owner sits behind a partition — an exponential re-exploration of
// the reachable graph that livelocks maintenance for minutes. Charging
// every failed subtree a large slice of the hop budget bounds the
// whole search to a few thousand calls while leaving plenty of budget
// for the short sibling paths that succeed in practice.
func (n *Node) greedyRoute(req findSuccReq, self NodeInfo, penalty int) (any, error) {
	k := req.K
	for _, cand := range n.routingCandidates(k) {
		resp, err := n.call(cand.Addr, kindFindSucc, findSuccReq{K: k, Hops: req.Hops + 1 + penalty})
		if err != nil {
			if isLookupFailed(err) {
				penalty += failedSubtreePenalty
			}
			continue
		}
		if r, ok := resp.(findSuccResp); ok {
			return r, nil
		}
	}

	// Last resort: ride the ring through a live successor — unless it is
	// suspect, in which case the ride would just time out again.
	if live, ok := n.liveSuccessor(); ok && live.Addr != self.Addr && !n.isSuspect(live.Addr) {
		resp, err := n.call(live.Addr, kindFindSucc, findSuccReq{K: k, Hops: req.Hops + 1 + penalty})
		if err == nil {
			if r, ok := resp.(findSuccResp); ok {
				return r, nil
			}
		}
	}
	return nil, fmt.Errorf("%w: no reachable next hop for %d from %s", ErrLookupFailed, k, self.Addr)
}
