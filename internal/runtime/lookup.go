package runtime

import (
	"errors"
	"fmt"
	"strings"

	"camcast/internal/ring"
)

// failedSubtreePenalty is the hop-budget cost of one candidate that
// responded with a lookup failure. It is deliberately a large fraction of
// the budget: successful detours are short (a few hops), so they fit in
// whatever budget remains, while a search that keeps dead-ending exhausts
// its budget after a handful of subtree explorations instead of
// backtracking exponentially.
const failedSubtreePenalty = 64

// isLookupFailed reports whether an RPC error is a remote lookup
// exhaustion. In-process transports preserve the sentinel for errors.Is;
// wire transports flatten errors to strings, so fall back to matching the
// sentinel's message.
func isLookupFailed(err error) bool {
	return errors.Is(err, ErrLookupFailed) ||
		(err != nil && strings.Contains(err.Error(), "lookup failed"))
}

// FindSuccessor resolves the node currently responsible for identifier k,
// returning it together with the number of forwarding hops spent. This is
// the node's own entry point; remote requests arrive through handleFindSucc.
func (n *Node) FindSuccessor(k ring.ID) (NodeInfo, int, error) {
	resp, err := n.handleFindSucc(findSuccReq{K: k})
	if err != nil {
		return NodeInfo{}, 0, err
	}
	r, ok := resp.(findSuccResp)
	if !ok {
		return NodeInfo{}, 0, fmt.Errorf("runtime: bad find_successor response type %T", resp)
	}
	n.obs.lookupHops.Observe(float64(r.Hops))
	return r.Node, r.Hops, nil
}

func (n *Node) handleFindSucc(req findSuccReq) (any, error) {
	n.lookups.Add(1)
	maxHops := int(n.space.Bits())*4 + 256
	if req.Hops > maxHops {
		return nil, fmt.Errorf("%w: exceeded %d hops resolving %d", ErrLookupFailed, maxHops, req.K)
	}

	n.mu.Lock()
	if n.stopped {
		n.mu.Unlock()
		return nil, ErrStopped
	}
	self := n.self
	pred, hasPred := n.predLocked()
	succ := self
	if len(n.succRefs) > 0 {
		succ = n.arena.Resolve(n.succRefs[0])
	}
	n.mu.Unlock()

	k := req.K
	// Alone, or k is ours: (pred, self] covers it.
	if succ.Addr == self.Addr || k == self.ID ||
		(hasPred && pred.Addr != self.Addr && n.space.InOC(k, pred.ID, self.ID)) {
		return findSuccResp{Node: self, Hops: req.Hops}, nil
	}
	// The successor's segment (self, succ] covers it.
	if n.space.InOC(k, self.ID, succ.ID) {
		return findSuccResp{Node: succ, Hops: req.Hops}, nil
	}

	// Forward to the closest known neighbor preceding k (the CAM lookup
	// step); fall through the candidate list past unreachable nodes.
	//
	// A candidate that RESPONDED with a lookup failure already searched a
	// whole downstream subtree (or hit the hop limit), and the sibling we
	// try next routes into largely the same subgraph. Unpenalized, that
	// backtracking makes an unresolvable lookup — an identifier whose
	// owner sits behind a partition — an exponential re-exploration of
	// the reachable graph that livelocks maintenance for minutes. Charging
	// every failed subtree a large slice of the hop budget bounds the
	// whole search to a few thousand calls while leaving plenty of budget
	// for the short sibling paths that succeed in practice.
	penalty := 0
	for _, cand := range n.routingCandidates(k) {
		resp, err := n.call(cand.Addr, kindFindSucc, findSuccReq{K: k, Hops: req.Hops + 1 + penalty})
		if err != nil {
			if isLookupFailed(err) {
				penalty += failedSubtreePenalty
			}
			continue
		}
		if r, ok := resp.(findSuccResp); ok {
			return r, nil
		}
	}

	// Last resort: ride the ring through a live successor — unless it is
	// suspect, in which case the ride would just time out again.
	if live, ok := n.liveSuccessor(); ok && live.Addr != self.Addr && !n.isSuspect(live.Addr) {
		resp, err := n.call(live.Addr, kindFindSucc, findSuccReq{K: k, Hops: req.Hops + 1 + penalty})
		if err == nil {
			if r, ok := resp.(findSuccResp); ok {
				return r, nil
			}
		}
	}
	return nil, fmt.Errorf("%w: no reachable next hop for %d from %s", ErrLookupFailed, k, self.Addr)
}
