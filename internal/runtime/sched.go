package runtime

import (
	"fmt"
	goruntime "runtime"
	"sync"
	"time"

	"camcast/internal/obsv"
	"camcast/internal/ring"
	"camcast/internal/timing"
)

// Scheduler drives background maintenance — StabilizeOnce, FixOnce, and
// seen-cache sweeps — for any number of members with a fixed pool of shard
// event loops instead of two ticker goroutines per member. Members hash to
// a shard by ring identifier; each shard keeps its members in
// struct-of-arrays tables (parallel node/generation slices plus reusable
// due-batch scratch) and their deadlines in one hierarchical timer wheel,
// so a maintenance round walks contiguous slices and costs O(due members),
// not O(timers in the runtime heap).
//
// Two clock modes share the code path:
//
//   - Wall time (default): Start launches one goroutine per shard, each
//     sleeping toward its wheel's next deadline. Goroutine count is
//     O(shards) no matter how many members are added.
//   - Virtual time (SchedulerConfig.Clock is a *timing.Virtual): nothing
//     runs on its own; the owner calls Advance(d), which moves the clock
//     and executes everything that came due, shard by shard. One process
//     can host 100k+ live members this way, and with Shards=1 execution
//     order is fully deterministic.
//
// Members driven by a Scheduler must be configured with StabilizeEvery
// and FixEvery left zero (no per-node loops). Add members after Bootstrap
// or Join succeeds; Remove them when they leave or crash. A member that
// stops without being removed is harmless — its callbacks see the stopped
// flag and return — but it stays billed to the shard until removed.
type Scheduler struct {
	cfg     SchedulerConfig
	clock   timing.Clock
	virtual *timing.Virtual // non-nil when driven by Advance
	shards  []*schedShard
	arenas  []*NodeArena // one neighbor-table arena per shard (see ArenaFor)

	membersG *obsv.Gauge
	rounds   *obsv.Counter

	mu      sync.Mutex
	members int
	started bool
	stopped bool

	stopCh chan struct{}
	wg     sync.WaitGroup
}

// SchedulerConfig parameterizes a Scheduler.
type SchedulerConfig struct {
	// Shards is the number of event loops (and member partitions).
	// Default GOMAXPROCS. Use 1 for deterministic execution order.
	Shards int
	// Clock is the maintenance time source: wall time (nil / timing.Wall)
	// runs shard goroutines, a *timing.Virtual hands control of time to
	// the owner via Advance.
	Clock timing.Clock
	// StabilizeEvery / FixEvery are the per-member maintenance cadences
	// (defaults 500ms and 1s). SeenSweepEvery rotates each member's
	// duplicate-suppression generations (default 60s; negative disables).
	StabilizeEvery time.Duration
	FixEvery       time.Duration
	SeenSweepEvery time.Duration
	// WheelTick is the timer-wheel granularity (default 1ms).
	WheelTick time.Duration
	// Metrics optionally publishes scheduler gauges/counters
	// (obsv.MetricSchedMembers, obsv.MetricSchedRounds); nil disables.
	Metrics *obsv.Registry
}

func (c *SchedulerConfig) applyDefaults() {
	if c.Shards <= 0 {
		c.Shards = goruntime.GOMAXPROCS(0)
	}
	if c.Clock == nil {
		c.Clock = timing.Wall()
	}
	if c.StabilizeEvery <= 0 {
		c.StabilizeEvery = 500 * time.Millisecond
	}
	if c.FixEvery <= 0 {
		c.FixEvery = time.Second
	}
	if c.SeenSweepEvery == 0 {
		c.SeenSweepEvery = time.Minute
	}
	if c.WheelTick <= 0 {
		c.WheelTick = time.Millisecond
	}
}

// Maintenance kinds encoded in wheel keys.
const (
	schedKindStabilize = iota
	schedKindFix
	schedKindSweep
)

// A wheel key packs (kind, generation, slot). The generation guards slot
// reuse: Remove bumps the slot's generation, so entries armed for the old
// occupant fire into a mismatch and are ignored — lazy cancellation, no
// wheel surgery.
func schedKey(kind int, gen uint32, slot int32) uint64 {
	return uint64(kind)<<62 | uint64(gen&0x3fffffff)<<32 | uint64(uint32(slot))
}

func schedKeyParts(key uint64) (kind int, gen uint32, slot int32) {
	return int(key >> 62), uint32(key>>32) & 0x3fffffff, int32(uint32(key))
}

// schedShard owns one partition of members: SoA member tables, the shard's
// timer wheel, and reusable due-batch scratch.
type schedShard struct {
	mu    sync.Mutex
	wheel *timing.Wheel
	nodes []*Node  // slot -> member (nil = free slot)
	gens  []uint32 // slot -> occupancy generation
	free  []int32  // reusable slots
	index map[*Node]int32

	// kick wakes the shard's wall-mode loop when Add arms a deadline
	// sooner than the one it sleeps toward.
	kick chan struct{}

	// Scratch for one round, reused to keep rounds allocation-free:
	// due callbacks grouped by kind (stabilize runs before fix, like the
	// lockstep maintain() loops), then the keys to rearm.
	dueStab, dueFix, dueSweep []*Node
	rearm                     []rearmEntry
}

type rearmEntry struct {
	key uint64
	at  int64
}

// NewScheduler returns a scheduler with no members. Wall-clock schedulers
// need Start; virtual ones are driven entirely by Advance.
func NewScheduler(cfg SchedulerConfig) *Scheduler {
	cfg.applyDefaults()
	s := &Scheduler{
		cfg:      cfg,
		clock:    cfg.Clock,
		membersG: cfg.Metrics.Gauge(obsv.MetricSchedMembers),
		rounds:   cfg.Metrics.Counter(obsv.MetricSchedRounds),
		stopCh:   make(chan struct{}),
	}
	if v, ok := cfg.Clock.(*timing.Virtual); ok {
		s.virtual = v
	}
	now := s.clock.Now().UnixNano()
	s.shards = make([]*schedShard, cfg.Shards)
	s.arenas = make([]*NodeArena, cfg.Shards)
	for i := range s.shards {
		s.shards[i] = &schedShard{
			wheel: timing.NewWheel(cfg.WheelTick, now),
			index: make(map[*Node]int32),
			kick:  make(chan struct{}, 1),
		}
		s.arenas[i] = NewNodeArena()
	}
	return s
}

// ArenaFor returns the shard-local neighbor-table arena for the member
// owning identifier id — the same partition shardFor uses, so a member's
// arena writes always happen on its own shard's event loop. Owners pass it
// as Config.Arena before NewNode so every member of a shard shares one
// interned node table.
func (s *Scheduler) ArenaFor(id ring.ID) *NodeArena {
	return s.arenas[uint64(id)%uint64(len(s.shards))]
}

// ArenaStats aggregates occupancy across every shard arena.
func (s *Scheduler) ArenaStats() ArenaStats {
	var total ArenaStats
	for _, a := range s.arenas {
		st := a.Stats()
		total.Slots += st.Slots
		total.Live += st.Live
		total.Free += st.Free
		total.Reused += st.Reused
	}
	return total
}

// Shards returns the number of shard partitions (and, in wall mode, shard
// goroutines).
func (s *Scheduler) Shards() int { return len(s.shards) }

// Members returns the number of members currently owned.
func (s *Scheduler) Members() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.members
}

func (s *Scheduler) shardFor(n *Node) *schedShard {
	return s.shards[uint64(n.self.ID)%uint64(len(s.shards))]
}

// stagger derives a member's deterministic phase within one cadence period
// from its ring identifier, so 100k members' deadlines spread across the
// period instead of thundering on the same tick.
func stagger(id uint64, kind int, every time.Duration) int64 {
	h := id ^ uint64(kind)*0x9e3779b97f4a7c15
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	return int64(h % uint64(every))
}

// Add takes over maintenance for n. Call once per member, after Bootstrap
// or Join succeeded; duplicate Adds are ignored.
func (s *Scheduler) Add(n *Node) {
	sh := s.shardFor(n)
	now := s.clock.Now().UnixNano()
	sh.mu.Lock()
	if _, dup := sh.index[n]; dup {
		sh.mu.Unlock()
		return
	}
	var slot int32
	if k := len(sh.free); k > 0 {
		slot = sh.free[k-1]
		sh.free = sh.free[:k-1]
		sh.nodes[slot] = n
	} else {
		slot = int32(len(sh.nodes))
		sh.nodes = append(sh.nodes, n)
		sh.gens = append(sh.gens, 0)
	}
	sh.index[n] = slot
	gen := sh.gens[slot]
	id := uint64(n.self.ID)
	sh.wheel.Schedule(schedKey(schedKindStabilize, gen, slot),
		now+stagger(id, schedKindStabilize, s.cfg.StabilizeEvery))
	sh.wheel.Schedule(schedKey(schedKindFix, gen, slot),
		now+stagger(id, schedKindFix, s.cfg.FixEvery))
	if s.cfg.SeenSweepEvery > 0 {
		sh.wheel.Schedule(schedKey(schedKindSweep, gen, slot),
			now+stagger(id, schedKindSweep, s.cfg.SeenSweepEvery))
	}
	sh.mu.Unlock()

	s.mu.Lock()
	s.members++
	started := s.started
	s.mu.Unlock()
	s.membersG.Add(1)
	if started {
		select {
		case sh.kick <- struct{}{}:
		default:
		}
	}
}

// Remove releases n from maintenance (after Leave/Stop, or to hand the
// member back to owner-driven maintenance). Unknown members are ignored.
func (s *Scheduler) Remove(n *Node) {
	sh := s.shardFor(n)
	sh.mu.Lock()
	slot, ok := sh.index[n]
	if ok {
		delete(sh.index, n)
		sh.nodes[slot] = nil
		sh.gens[slot]++ // stale wheel entries now fire into a mismatch
		sh.free = append(sh.free, slot)
	}
	sh.mu.Unlock()
	if ok {
		s.mu.Lock()
		s.members--
		s.mu.Unlock()
		s.membersG.Add(-1)
	}
}

// runDue advances sh's wheel to now, executes every due maintenance
// callback (stabilize batch first, then fix, then sweeps — the same order
// as the lockstep maintain loops in simulations), rearms them one period
// out, and returns the wheel's next deadline (0 = nothing pending).
func (s *Scheduler) runDue(sh *schedShard, now int64) int64 {
	sh.mu.Lock()
	sh.dueStab = sh.dueStab[:0]
	sh.dueFix = sh.dueFix[:0]
	sh.dueSweep = sh.dueSweep[:0]
	sh.rearm = sh.rearm[:0]
	sh.wheel.Advance(now, func(key uint64) {
		kind, gen, slot := schedKeyParts(key)
		if int(slot) >= len(sh.nodes) || sh.gens[slot] != gen {
			return // canceled: the slot moved on to another occupant
		}
		n := sh.nodes[slot]
		if n == nil {
			return
		}
		var every time.Duration
		switch kind {
		case schedKindStabilize:
			sh.dueStab = append(sh.dueStab, n)
			every = s.cfg.StabilizeEvery
		case schedKindFix:
			sh.dueFix = append(sh.dueFix, n)
			every = s.cfg.FixEvery
		case schedKindSweep:
			sh.dueSweep = append(sh.dueSweep, n)
			every = s.cfg.SeenSweepEvery
		default:
			return
		}
		// Rearm after Advance returns: the wheel must not be rescheduled
		// from inside its own fire callback.
		sh.rearm = append(sh.rearm, rearmEntry{key: key, at: now + int64(every)})
	})
	for _, r := range sh.rearm {
		sh.wheel.Schedule(r.key, r.at)
	}
	next, ok := sh.wheel.Next()
	// Copy the batches out so callbacks run without the shard lock: a
	// stabilize RPC can land back on a member of this same shard.
	stab := append([]*Node(nil), sh.dueStab...)
	fix := append([]*Node(nil), sh.dueFix...)
	sweep := append([]*Node(nil), sh.dueSweep...)
	sh.mu.Unlock()

	for _, n := range stab {
		n.StabilizeOnce()
	}
	for _, n := range fix {
		n.FixOnce()
	}
	for _, n := range sweep {
		n.SweepSeen()
	}
	if c := len(stab) + len(fix) + len(sweep); c > 0 {
		s.rounds.Add(uint64(c))
	}
	if !ok {
		return 0
	}
	return next
}

// Advance moves virtual time forward by d and runs everything that came
// due, returning when all of it has executed. Multiple shards run their
// batches concurrently; with Shards=1 the whole step is deterministic.
// Only valid on a scheduler built with a *timing.Virtual clock.
func (s *Scheduler) Advance(d time.Duration) {
	if s.virtual == nil {
		panic("runtime: Scheduler.Advance requires a timing.Virtual clock")
	}
	now := s.virtual.Advance(d).UnixNano()
	if len(s.shards) == 1 {
		s.runDue(s.shards[0], now)
		return
	}
	var wg sync.WaitGroup
	for _, sh := range s.shards {
		wg.Add(1)
		go func(sh *schedShard) {
			defer wg.Done()
			s.runDue(sh, now)
		}(sh)
	}
	wg.Wait()
}

// Start launches the wall-clock shard loops. No-op for virtual-clock
// schedulers (their owner drives time via Advance) and when already
// started.
func (s *Scheduler) Start() {
	if s.virtual != nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.started || s.stopped {
		return
	}
	s.started = true
	for _, sh := range s.shards {
		s.wg.Add(1)
		go s.runShard(sh)
	}
}

// Stop halts the shard loops (if any) and waits for in-flight rounds to
// finish. Members are not stopped or removed; idempotent.
func (s *Scheduler) Stop() {
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		return
	}
	s.stopped = true
	s.mu.Unlock()
	close(s.stopCh)
	s.wg.Wait()
}

// runShard is one wall-clock shard loop: run what is due, sleep toward the
// wheel's next deadline (or until kicked by an Add), repeat.
func (s *Scheduler) runShard(sh *schedShard) {
	defer s.wg.Done()
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	defer timer.Stop()
	for {
		next := s.runDue(sh, s.clock.Now().UnixNano())
		var timerC <-chan time.Time
		if next > 0 {
			d := time.Duration(next - s.clock.Now().UnixNano())
			if d < time.Millisecond {
				d = time.Millisecond
			}
			timer.Reset(d)
			timerC = timer.C
		}
		select {
		case <-s.stopCh:
			return
		case <-sh.kick:
		case <-timerC:
			timerC = nil
		}
		if timerC != nil && !timer.Stop() {
			<-timer.C
		}
	}
}

// String describes the scheduler for debug output.
func (s *Scheduler) String() string {
	mode := "wall"
	if s.virtual != nil {
		mode = "virtual"
	}
	return fmt.Sprintf("Scheduler(%d shards, %s clock, %d members)", len(s.shards), mode, s.Members())
}
