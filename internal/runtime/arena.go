package runtime

import (
	"sync"
	"sync/atomic"
)

// noRef is the sentinel "no entry" arena reference: an unknown predecessor,
// an unfilled routing-table slot.
const noRef = ^uint32(0)

// Slab geometry: fixed 512-entry blocks. Entries are never moved once
// placed, so a published reference stays resolvable without relocation.
const (
	arenaSlabBits = 9
	arenaSlabSize = 1 << arenaSlabBits
	arenaSlabMask = arenaSlabSize - 1
)

// arenaSlab is one fixed block of interned entries. Slabs are allocated
// once and never reallocated or shrunk, which is what makes lock-free
// Resolve sound: a reference obtained under the arena's (or its owner's)
// lock indexes memory that cannot move.
type arenaSlab struct {
	infos [arenaSlabSize]NodeInfo
}

// NodeArena interns NodeInfo values — a member's transport address and ring
// identifier — into slab-backed storage addressed by dense uint32
// references. Every node hosted on the arena stores its neighbor state
// (successor list, routing-table slots, predecessor) as references instead
// of NodeInfo values, so a membership where each member appears in dozens
// of neighbor tables stores each address string once per shard instead of
// once per appearance, and the per-member tables become pointer-free
// []uint32 the garbage collector never scans.
//
// Entries are reference counted: Intern acquires, Release drops, and a
// count reaching zero frees the slot for reuse and bumps its generation,
// so tests (and debug assertions) can detect a stale reference outliving
// its holder. Intern/Retain/Release serialize on one mutex — they run on
// table-write paths (stabilize, fix, join), not per message — while
// Resolve, the read path under every node's own lock, is lock-free: one
// atomic load of the slab directory plus an indexed read.
//
// The happens-before story for that lock-free read: a slot's contents are
// written (under the arena mutex) before Intern returns its reference, and
// the reference only reaches a reader through the owning node's mutex, so
// the write is visible to any reader that legitimately holds the
// reference. Slot reuse cannot race either — a slot is recycled only after
// its count hits zero, i.e. after every table that stored it released it.
type NodeArena struct {
	slabs atomic.Pointer[[]*arenaSlab] // read-only directory snapshot for Resolve

	mu     sync.Mutex
	index  map[string]uint32 // addr -> ref for live entries
	refs   []int32           // per-ref holder count (0 = free)
	gens   []uint32          // per-ref generation, bumped when the slot is freed
	free   []uint32          // recycled slots
	reused uint64            // how many Interns were served by recycling
}

// ArenaStats describes arena occupancy.
type ArenaStats struct {
	Slots  int    // slots ever allocated (live + free)
	Live   int    // slots currently referenced by at least one holder
	Free   int    // slots waiting on the free list
	Reused uint64 // interns served by recycling a freed slot
}

// NewNodeArena returns an empty arena.
func NewNodeArena() *NodeArena {
	a := &NodeArena{index: make(map[string]uint32)}
	a.slabs.Store(&[]*arenaSlab{})
	return a
}

// Intern stores info (or finds its existing entry) and acquires one
// reference to it. Interning the zero NodeInfo returns noRef, which
// Release and Resolve treat as the empty entry — callers can thread
// "no neighbor" through without special-casing.
func (a *NodeArena) Intern(info NodeInfo) uint32 {
	if info.zero() {
		return noRef
	}
	a.mu.Lock()
	if ref, ok := a.index[info.Addr]; ok {
		a.refs[ref]++
		a.mu.Unlock()
		return ref
	}
	var ref uint32
	if k := len(a.free); k > 0 {
		ref = a.free[k-1]
		a.free = a.free[:k-1]
		a.reused++
	} else {
		ref = uint32(len(a.refs))
		a.refs = append(a.refs, 0)
		a.gens = append(a.gens, 0)
		if int(ref)>>arenaSlabBits >= len(*a.slabs.Load()) {
			a.grow()
		}
	}
	a.refs[ref] = 1
	a.index[info.Addr] = ref
	(*a.slabs.Load())[ref>>arenaSlabBits].infos[ref&arenaSlabMask] = info
	a.mu.Unlock()
	return ref
}

// grow publishes a directory with one more slab. Callers hold a.mu; the
// old directory slice is never mutated, so concurrent Resolves keep
// reading whichever snapshot they loaded.
func (a *NodeArena) grow() {
	old := *a.slabs.Load()
	next := make([]*arenaSlab, len(old)+1)
	copy(next, old)
	next[len(old)] = &arenaSlab{}
	a.slabs.Store(&next)
}

// Retain acquires one more reference to an entry already held.
func (a *NodeArena) Retain(ref uint32) {
	if ref == noRef {
		return
	}
	a.mu.Lock()
	if a.refs[ref] <= 0 {
		a.mu.Unlock()
		panic("runtime: NodeArena.Retain of a dead reference")
	}
	a.refs[ref]++
	a.mu.Unlock()
}

// Release drops one reference. The last release frees the slot for reuse,
// bumps its generation, and clears the entry (releasing the address string
// to the collector). Releasing noRef is a no-op.
func (a *NodeArena) Release(ref uint32) {
	if ref == noRef {
		return
	}
	a.mu.Lock()
	if a.refs[ref] <= 0 {
		a.mu.Unlock()
		panic("runtime: NodeArena.Release of a dead reference")
	}
	a.refs[ref]--
	if a.refs[ref] == 0 {
		e := &(*a.slabs.Load())[ref>>arenaSlabBits].infos[ref&arenaSlabMask]
		delete(a.index, e.Addr)
		*e = NodeInfo{}
		a.gens[ref]++
		a.free = append(a.free, ref)
	}
	a.mu.Unlock()
}

// Resolve returns the entry a reference names. Lock-free — safe from any
// goroutine that legitimately holds the reference (see the type comment
// for the memory-ordering argument). Resolve(noRef) is the zero NodeInfo.
func (a *NodeArena) Resolve(ref uint32) NodeInfo {
	if ref == noRef {
		return NodeInfo{}
	}
	return (*a.slabs.Load())[ref>>arenaSlabBits].infos[ref&arenaSlabMask]
}

// Gen returns the slot's current generation. A holder that recorded the
// generation at Intern time can detect the slot having been freed and
// recycled under it (which, with balanced Intern/Release, never happens).
func (a *NodeArena) Gen(ref uint32) uint32 {
	if ref == noRef {
		return 0
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.gens[ref]
}

// Stats returns a snapshot of arena occupancy.
func (a *NodeArena) Stats() ArenaStats {
	a.mu.Lock()
	defer a.mu.Unlock()
	return ArenaStats{
		Slots:  len(a.refs),
		Live:   len(a.refs) - len(a.free),
		Free:   len(a.free),
		Reused: a.reused,
	}
}
