package runtime

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"camcast/internal/ring"
	"camcast/internal/transport"
)

// BenchmarkLookupHops measures lookup cost in forwarding hops on converged
// rings — the unit the paper's complexity claims are stated in, and one
// that is hardware-stable enough to gate in CI (BENCH_lookup.json). Each op
// resolves a uniformly random identifier from a uniformly random member;
// the benchmark reports the mean (hops/op) and tail (p99hops/op) of the
// sampled distribution. CAM-Chord rows exercise the distance-ordered
// finger walk, CAM-Koorde rows the de Bruijn digit routing, at 1k and 10k
// members.
func BenchmarkLookupHops(b *testing.B) {
	for _, mode := range []Mode{ModeCAMChord, ModeCAMKoorde} {
		for _, size := range []int{1000, 10000} {
			b.Run(fmt.Sprintf("%s/%d", mode, size), func(b *testing.B) {
				space := ring.MustSpace(32)
				members := equivMembers(space, mode, size, 23)
				net := transport.NewNetwork(5)
				arena := NewNodeArena()
				nodes := make([]*Node, size)
				for i, m := range members {
					n, err := NewNode(net, m.addr, Config{
						Space: space, Mode: mode, Capacity: m.cap, Arena: arena,
					})
					if err != nil {
						b.Fatal(err)
					}
					nodes[i] = n
				}
				defer func() {
					for _, n := range nodes {
						n.Stop()
					}
				}()
				if err := BulkInstall(nodes, BulkOptions{}); err != nil {
					b.Fatal(err)
				}

				rng := rand.New(rand.NewSource(29))
				mask := uint64(1)<<space.Bits() - 1
				hops := make([]int, 0, b.N)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					src := nodes[rng.Intn(len(nodes))]
					_, h, err := src.FindSuccessor(ring.ID(rng.Uint64() & mask))
					if err != nil {
						b.Fatal(err)
					}
					hops = append(hops, h)
				}
				b.StopTimer()
				sort.Ints(hops)
				var sum float64
				for _, h := range hops {
					sum += float64(h)
				}
				b.ReportMetric(sum/float64(len(hops)), "hops/op")
				b.ReportMetric(float64(hops[len(hops)*99/100]), "p99hops/op")
			})
		}
	}
}
