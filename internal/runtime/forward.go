package runtime

import (
	"context"
	"math"
	goruntime "runtime"
	"sync"
	"sync/atomic"
	"time"

	"camcast/internal/metrics"
	"camcast/internal/ring"
	"camcast/internal/trace"
)

// This file is the resilient forwarding engine shared by both CAM modes:
// concurrent child fan-out with per-child deadlines, bounded retry with
// exponential backoff and jitter, and orphan-segment repair. The dispatch
// plan for a message is computed first (pure ring arithmetic), then every
// child send runs on its own goroutine under a per-fan-out in-flight limit,
// so one dead or slow child delays only its own segment, never its
// siblings. The limit is scoped to one fan-out rather than the whole node:
// repair handoffs can re-enter spreadSegment on a node whose earlier
// fan-out is still blocked, and a node-wide semaphore would deadlock there.

// childPlan is one entry of a CAM-Chord dispatch plan: the target
// identifier y whose successor becomes the child, the table slot expected
// to hold it, and the end of the segment (child, segEnd] delegated to it.
type childPlan struct {
	y       ring.ID
	key     tableKey
	viaSucc bool
	segEnd  ring.ID
}

// planSegments splits (self, k] across up to c_x children, exactly as the
// static algorithm in internal/camchord: level-i neighbors preceding k,
// then evenly spaced level-(i-1) children, then the successor. Segment
// boundaries depend only on ring arithmetic, never on send outcomes, so
// the plan can be dispatched concurrently.
func (n *Node) planSegments(k ring.ID) []childPlan {
	s := n.space
	x := n.self.ID
	c := uint64(n.cfg.Capacity)
	if s.Dist(x, k) == 0 {
		return nil
	}

	kk := k
	var plan []childPlan
	add := func(y ring.ID, key tableKey, viaSucc bool) {
		if s.Dist(x, kk) == 0 || !s.InOC(y, x, kk) {
			return
		}
		plan = append(plan, childPlan{y: y, key: key, viaSucc: viaSucc, segEnd: kk})
		kk = s.Sub(y, 1)
	}

	level, seq, pow := s.LevelSeq(x, k, c)
	// Level-i neighbors preceding k (Lines 6-9).
	for m := seq; m >= 1; m-- {
		add(s.Add(x, m*pow), tableKey{level: uint32(level), seq: uint32(m)}, false)
	}
	// Evenly spaced level-(i-1) children (Lines 10-14; see internal/camchord
	// for why the ceiling matches the paper's worked example).
	if level >= 1 {
		prevPow := pow / c
		l := float64(c)
		step := float64(c) / float64(c-seq)
		for m := int64(c) - int64(seq) - 1; m >= 1; m-- {
			l -= step
			j := uint64(math.Ceil(l))
			if j < 1 {
				j = 1
			}
			add(s.Add(x, j*prevPow), tableKey{level: uint32(level - 1), seq: uint32(j)}, false)
		}
	}
	// The successor (Line 15).
	add(s.Add(x, 1), tableKey{}, true)
	return plan
}

// fanOut runs one task per item concurrently, bounded by ForwardParallel
// in flight at once (ForwardParallel-1 pool lanes plus the caller's own
// goroutine), and waits for all of them. With ForwardParallel == 1
// (Config.ForwardParallel < 0) the tasks run inline in plan order on the
// caller's goroutine: a pool of one would serialize them too, but in
// scheduler order rather than plan order, and the deterministic replay
// engine (internal/replay) depends on a serialized node behaving
// identically from run to run.
//
// The parallel path hands tasks to a process-wide pool of warm workers
// rather than spawning a goroutine per child: a child send's call chain
// (forward -> flow -> mux -> frame writer -> socket) outgrows a fresh
// goroutine's initial stack, and the per-spawn stack copies were the
// dominant cost of high-fan-out dissemination over TCP. Handoff is
// non-blocking — with no lane free the caller runs the task itself — so a
// nested fan-out (a member of the same process forwarding onward) degrades
// to inline execution instead of deadlocking the shared pool.
func (n *Node) fanOut(count int, task func(i int)) {
	if count == 1 {
		task(0)
		return
	}
	if n.cfg.ForwardParallel <= 1 {
		for i := 0; i < count; i++ {
			task(i)
		}
		return
	}
	var wg sync.WaitGroup
	pooled := 0
	for i := 1; i < count; i++ {
		f := func() {
			defer wg.Done()
			task(i)
		}
		wg.Add(1)
		if pooled < n.cfg.ForwardParallel-1 && fwdPool.submit(f) {
			pooled++
		} else {
			f()
		}
	}
	task(0)
	wg.Wait()
}

// fwdPool is the process-wide forward-worker pool. It is shared by every
// node in the process — per-node pools would put the goroutine count back
// on an O(members) slope, which is exactly what the sharded live runtime
// exists to avoid — and its workers exit after an idle grace period, so a
// quiescent process keeps no forward goroutines at all. The pool has no
// queue: submit either wakes a parked worker, starts one (under the cap),
// or reports failure and the caller runs the task itself.
var fwdPool = &taskPool{tasks: make(chan func())}

const fwdIdleExit = time.Second

type taskPool struct {
	tasks   chan func()  // unbuffered: a send finds a parked worker or fails
	workers atomic.Int32 // live workers, bounded by capacity()
}

func (p *taskPool) capacity() int32 {
	if c := int32(4 * goruntime.GOMAXPROCS(0)); c > 16 {
		return c
	}
	return 16
}

// submit hands f to a warm worker, or starts a fresh one under the cap.
// It never blocks; false means the pool is saturated and the caller should
// run f itself.
func (p *taskPool) submit(f func()) bool {
	select {
	case p.tasks <- f:
		return true
	default:
	}
	for {
		w := p.workers.Load()
		if w >= p.capacity() {
			return false
		}
		if p.workers.CompareAndSwap(w, w+1) {
			go p.worker(f)
			return true
		}
	}
}

// worker runs its seed task, then parks on the task channel until the idle
// grace expires. The first deep call chain grows this goroutine's stack
// once; every task it picks up afterwards reuses the grown stack.
func (p *taskPool) worker(f func()) {
	idle := time.NewTimer(fwdIdleExit)
	defer idle.Stop()
	for {
		f()
		if !idle.Stop() {
			select {
			case <-idle.C:
			default:
			}
		}
		idle.Reset(fwdIdleExit)
		select {
		case f = <-p.tasks:
		case <-idle.C:
			p.workers.Add(-1)
			return
		}
	}
}

// confirmSuccessor is FindSuccessor through the node's per-generation memo,
// for the pre-send resolution paths: in a quiet group the recurring
// per-message lookups — confirming a planned segment empty, re-resolving a
// missing table slot — cost a map hit instead of an RPC chain. The memo
// holds only while the topology generation is unchanged; any membership
// write (stabilize, notify, fix, join, leave, suspicion flip) discards it,
// so a group in motion gets exactly the fresh lookups it got before the
// memo existed. Failure-path resolution (retry, repair) bypasses the memo
// on purpose: those callers just learned the topology view is wrong.
func (n *Node) confirmSuccessor(y ring.ID) (NodeInfo, error) {
	gen := n.topoGen.Load()
	n.memoMu.Lock()
	if n.memoGen != gen {
		clear(n.memo)
		n.memoGen = gen
	} else if info, ok := n.memo[y]; ok {
		n.memoMu.Unlock()
		return info, nil
	}
	n.memoMu.Unlock()

	info, _, err := n.FindSuccessor(y)
	if err != nil {
		return NodeInfo{}, err
	}
	n.memoMu.Lock()
	// Cache only if the topology held still across the lookup; a result
	// straddling a generation boundary may predate the change.
	if n.memoGen == gen && n.topoGen.Load() == gen && len(n.memo) < 4096 {
		n.memo[y] = info
	}
	n.memoMu.Unlock()
	return info, nil
}

// sendTimed issues one child send under the per-child deadline, within the
// caller's context.
func (n *Node) sendTimed(ctx context.Context, to, kind string, payload any) (any, error) {
	if d := n.cfg.ForwardTimeout; d > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, d)
		defer cancel()
	}
	return n.callCtx(ctx, to, kind, payload)
}

// backoff sleeps before retry attempt (0-based), doubling the base delay
// each attempt with ±50% jitter drawn from the node's seeded RNG. Returns
// early if the node stops or the context is canceled.
func (n *Node) backoff(ctx context.Context, attempt int) {
	base := n.cfg.RetryBackoff
	if base <= 0 {
		return
	}
	if attempt > 4 {
		attempt = 4 // cap the exponent: 16x base is plenty for a multicast
	}
	d := base << uint(attempt)
	jitter := 0.5 + n.jitterFloat()
	d = time.Duration(float64(d) * jitter)
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
	case <-n.stopCh:
	}
}

// noteRetry accounts one forwarding retry.
func (n *Node) noteRetry(msgID, to string, attempt int, err error) {
	n.retries.Add(1)
	n.obs.retries.Inc()
	n.countMetric(metrics.CounterForwardRetries)
	n.emitf(trace.KindRetry, "%s attempt %d to %s: %v", msgID, attempt, to, err)
}

// noteAcked accounts one acknowledged child send.
func (n *Node) noteAcked() {
	n.acked.Add(1)
	n.obs.acked.Inc()
	n.countMetric(metrics.CounterForwardAcked)
	n.forwarded.Add(1)
}

// noteLost accounts one segment (or flood neighbor) abandoned.
func (n *Node) noteLost() {
	n.lost.Add(1)
	n.obs.lost.Inc()
	n.countMetric(metrics.CounterForwardLost)
}

// forwardSegment delivers one planned segment to its child: resolve the
// child (table slot, live successor, or on-demand lookup), send with the
// per-child deadline, and on failure re-resolve and retry with backoff up
// to ForwardRetries times. If every attempt fails the segment is handed to
// repairSegment rather than dropped.
func (n *Node) forwardSegment(ctx context.Context, msgID string, source NodeInfo, payload payloadRef, cp childPlan, table []NodeInfo, hops int) {
	s := n.space
	x := n.self.ID

	var (
		child NodeInfo
		ok    bool
	)
	if cp.viaSucc {
		if live, liveOK := n.liveSuccessor(); liveOK {
			child, ok = live, true
		}
	} else if idx, have := n.spec.slotIndex(cp.key); have && idx < len(table) {
		child = table[idx]
		ok = !child.zero()
	}
	resolved := false
	if !ok || child.zero() || !n.net.Registered(child.Addr) {
		// Table slot empty or stale: resolve on demand.
		n.tableFaults.Add(1)
		info, err := n.confirmSuccessor(cp.y)
		if err != nil {
			// Resolution failed outright; try the repair path before
			// declaring the whole subtree lost.
			n.repairSegment(ctx, msgID, source, payload, cp, NodeInfo{}, hops)
			return
		}
		child, resolved = info, true
	}
	if !resolved && (child.Addr == n.self.Addr || !s.InOC(child.ID, x, cp.segEnd)) {
		// The table entry says nobody owns this segment, but a slot filled
		// before closer members joined looks exactly the same. Confirm with
		// a lookup before silently truncating the tree here.
		n.tableFaults.Add(1)
		info, err := n.confirmSuccessor(cp.y)
		if err != nil {
			// The confirmation itself failed — the network said no, not the
			// ring. Engage repair instead of truncating: a truly empty
			// segment makes it a no-op, a live owner gets the handoff, and
			// an unreachable one is accounted, never silently dropped.
			n.repairSegment(ctx, msgID, source, payload, cp, NodeInfo{}, hops)
			return
		}
		if !info.zero() {
			child = info
		}
	}
	if child.Addr == n.self.Addr || !s.InOC(child.ID, x, cp.segEnd) {
		return // no live member owns this segment; nothing to deliver
	}

	req := multicastReq{MsgID: msgID, Source: source, Payload: payload.bytes, K: cp.segEnd, Hops: hops + 1, blob: payload.blob}
	for attempt := 0; ; attempt++ {
		_, err := n.sendTimed(ctx, child.Addr, kindMulticast, req)
		if err == nil {
			n.noteAcked()
			if n.observed() {
				n.emitf(trace.KindForward, "%s -> segment end %d", msgID, cp.segEnd)
			}
			return
		}
		if ctx.Err() != nil {
			return // caller canceled; the abandoned segment is not a group failure
		}
		if attempt >= n.cfg.ForwardRetries {
			break
		}
		n.noteRetry(msgID, child.Addr, attempt+1, err)
		n.backoff(ctx, attempt)
		// The child may have died: re-resolve so its successor inherits
		// the segment (transient drops re-send to the same child).
		if info, _, lerr := n.FindSuccessor(cp.y); lerr == nil && !info.zero() {
			if info.Addr == n.self.Addr || !s.InOC(info.ID, x, cp.segEnd) {
				return // the segment emptied out under us
			}
			child = info
		}
	}
	n.repairSegment(ctx, msgID, source, payload, cp, child, hops)
}

// repairSegment hands an orphaned segment — (y-1, segEnd] whose child
// failedChild could not be reached — to a live node so the subtree is not
// silently dropped. The handoff target is the successor of the dead
// child's identifier (not of y itself: until stabilization runs, the dead
// child's predecessor still claims y resolves to the dead child, so a
// lookup of y would just return the corpse again). Fallback is a ring walk
// through successor lists that hops over unresponsive nodes. Repair
// handoffs set multicastReq.Repair so a receiver that already delivered
// the message still re-spreads the wider segment. Only when both fail is
// the segment counted lost.
func (n *Node) repairSegment(ctx context.Context, msgID string, source NodeInfo, payload payloadRef, cp childPlan, failedChild NodeInfo, hops int) {
	s := n.space
	x := n.self.ID
	req := multicastReq{MsgID: msgID, Source: source, Payload: payload.bytes, K: cp.segEnd, Hops: hops + 1, Repair: true, blob: payload.blob}

	target := cp.y
	if !failedChild.zero() && s.InOC(failedChild.ID, x, cp.segEnd) {
		target = s.Add(failedChild.ID, 1)
	}
	if info, _, err := n.FindSuccessor(target); err == nil && !info.zero() {
		if info.Addr == n.self.Addr || !s.InOC(info.ID, x, cp.segEnd) {
			return // no live members left in the segment; nothing to repair
		}
		if _, err := n.sendTimed(ctx, info.Addr, kindMulticast, req); err == nil {
			n.noteRepaired(msgID, cp.segEnd, info.Addr)
			return
		}
	}
	if ctx.Err() != nil {
		return // caller canceled mid-repair; don't count the segment lost
	}
	from := s.Sub(cp.y, 1)
	if !failedChild.zero() && s.InOC(failedChild.ID, x, cp.segEnd) {
		from = failedChild.ID
	}
	if n.ringWalkHandoff(ctx, msgID, req, failedChild, from, cp.segEnd) {
		return
	}
	n.noteLost()
	n.emitf(trace.KindLost, "%s segment end %d lost", msgID, cp.segEnd)
}

// ringWalkHandoff is the last-resort repair path: walk the ring through
// successor lists until a reachable member inside (from, segEnd] accepts
// the orphan segment. Lookups alone cannot route past a node that failed
// without being detected — until stabilization notices, the failed child's
// predecessor keeps resolving the segment straight back to the corpse,
// while its successor list already names the live node behind it. The walk
// is bounded, and every step is one cheap neighbors RPC that doubles as a
// liveness probe, so dead or partitioned nodes along the way are simply
// hopped over.
func (n *Node) ringWalkHandoff(ctx context.Context, msgID string, req multicastReq, failedChild NodeInfo, from, segEnd ring.ID) bool {
	const maxSteps = 64
	s := n.space
	visited := map[string]bool{n.self.Addr: true}
	if !failedChild.zero() {
		visited[failedChild.Addr] = true
	}
	frontier := n.SuccessorList()
	for steps := 0; steps < maxSteps && len(frontier) > 0; steps++ {
		if ctx.Err() != nil {
			return false
		}
		cur := frontier[0]
		frontier = frontier[1:]
		if cur.zero() || visited[cur.Addr] {
			continue
		}
		visited[cur.Addr] = true
		if s.InOC(cur.ID, from, segEnd) {
			if _, err := n.sendTimed(ctx, cur.Addr, kindMulticast, req); err == nil {
				n.noteRepaired(msgID, segEnd, cur.Addr)
				return true
			}
		}
		resp, err := n.call(cur.Addr, kindNeighbors, neighborsReq{})
		if err != nil {
			continue // unreachable: hop over via the rest of the frontier
		}
		if nb, ok := resp.(neighborsResp); ok {
			frontier = append(append([]NodeInfo{}, nb.Succs...), frontier...)
		}
	}
	return false
}

func (n *Node) noteRepaired(msgID string, segEnd ring.ID, to string) {
	n.repaired.Add(1)
	n.obs.repaired.Inc()
	n.countMetric(metrics.CounterForwardRepaired)
	n.forwarded.Add(1)
	n.emitf(trace.KindRepair, "%s segment end %d handed to %s", msgID, segEnd, to)
}

// floodOne runs the offer/accept handshake and payload delivery for one
// CAM-Koorde neighbor, with retries on both phases. It reports whether the
// neighbor needs repair (unreachable, or reachable but the payload could
// not be delivered) and whether it is a usable reflood relay (it responded
// to an offer, so it either has the message or is about to decline it).
func (n *Node) floodOne(ctx context.Context, msgID string, source NodeInfo, payload payloadRef, nb NodeInfo, hops int) (needRepair, relay bool) {
	var want bool
	offered := false
	for attempt := 0; attempt <= n.cfg.ForwardRetries; attempt++ {
		if attempt > 0 {
			n.backoff(ctx, attempt-1)
		}
		resp, err := n.sendTimed(ctx, nb.Addr, kindOffer, offerReq{MsgID: msgID})
		if err != nil {
			if ctx.Err() != nil {
				return false, false // caller canceled; not a neighbor failure
			}
			if attempt < n.cfg.ForwardRetries {
				n.noteRetry(msgID, nb.Addr, attempt+1, err)
			}
			continue
		}
		offer, ok := resp.(offerResp)
		if !ok {
			return false, false // malformed response; treat the neighbor as unusable
		}
		offered, want = true, offer.Want
		break
	}
	if !offered {
		return true, false // unreachable neighbor: repair via the surviving mesh
	}
	if !want {
		n.duplicates.Add(1)
		n.obs.duplicates.Inc()
		return false, true
	}

	// The neighbor is known-live and wants the message: a payload failure
	// here is always retried at least once before giving up.
	sendTries := n.cfg.ForwardRetries
	if sendTries < 1 {
		sendTries = 1
	}
	req := floodReq{MsgID: msgID, Source: source, Payload: payload.bytes, Hops: hops + 1, blob: payload.blob}
	for attempt := 0; ; attempt++ {
		_, err := n.sendTimed(ctx, nb.Addr, kindFlood, req)
		if err == nil {
			n.noteAcked()
			if n.observed() {
				n.emitf(trace.KindForward, "%s -> %s", msgID, nb.Addr)
			}
			return false, true
		}
		if ctx.Err() != nil {
			return false, false // caller canceled; not a neighbor failure
		}
		if attempt >= sendTries {
			return true, false
		}
		n.noteRetry(msgID, nb.Addr, attempt+1, err)
		n.backoff(ctx, attempt)
	}
}

// refloodRepair re-offers a message through surviving mesh neighbors after
// some neighbors could not be served, so members reachable only around the
// failure still get it. Each node issues at most one reflood per message,
// which keeps repair traffic bounded. Accounting covers only failedLive —
// the neighbors still believed to be members; failures the transport
// confirms dead trigger the reflood but count as neither repaired nor
// lost (the member is gone, not missed).
func (n *Node) refloodRepair(ctx context.Context, msgID string, source NodeInfo, payload payloadRef, hops int, failedLive int, relays []NodeInfo) {
	countLost := func() {
		if failedLive == 0 {
			return
		}
		for i := 0; i < failedLive; i++ {
			n.noteLost()
		}
		n.emitf(trace.KindLost, "%s %d neighbor(s) unreached", msgID, failedLive)
	}
	if len(relays) == 0 || n.reflooded.Record(msgID) {
		countLost()
		return
	}
	req := floodReq{MsgID: msgID, Source: source, Payload: payload.bytes, Hops: hops + 1, blob: payload.blob}
	sent := 0
	for _, r := range relays {
		if sent >= 2 {
			break
		}
		if _, err := n.sendTimed(ctx, r.Addr, kindReflood, req); err == nil {
			sent++
		}
	}
	if sent == 0 {
		countLost()
		return
	}
	for i := 0; i < failedLive; i++ {
		n.repaired.Add(1)
		n.obs.repaired.Inc()
		n.countMetric(metrics.CounterForwardRepaired)
	}
	n.emitf(trace.KindRepair, "%s reflooded via %d relay(s) for %d failure(s)", msgID, sent, failedLive)
}
