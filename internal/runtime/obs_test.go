package runtime

import (
	"context"
	"testing"

	"camcast/internal/obsv"
)

// TestBusAndMetricsWiring drives a small group with a bus subscriber and a
// registry attached and checks both observe the multicast: delivery events
// stream onto the bus, and the registry's forwarding counters and
// histograms accumulate.
func TestBusAndMetricsWiring(t *testing.T) {
	bus := obsv.NewBus()
	reg := obsv.NewRegistry()
	sub := bus.Subscribe(4096)
	defer sub.Close()

	c := newCluster(t, ModeCAMChord, 10)
	c.tweak = func(cfg *Config) {
		cfg.Bus = bus
		cfg.Metrics = reg
	}
	c.grow(8, 4)

	if _, err := c.nodes["node-0"].Multicast([]byte("observed")); err != nil {
		t.Fatal(err)
	}
	c.checkExactlyOnce("node-0#1")

	deliver, forward := 0, 0
	for _, e := range sub.Drain(nil) {
		switch e.Kind {
		case obsv.KindDeliver:
			deliver++
		case obsv.KindForward:
			forward++
		}
	}
	if deliver != 8 {
		t.Errorf("deliver events on bus = %d, want 8", deliver)
	}
	if forward == 0 {
		t.Error("no forward events on bus")
	}

	snap := reg.Snapshot()
	if got := snap.Counters[obsv.MetricDelivered]; got != 8 {
		t.Errorf("%s = %d, want 8", obsv.MetricDelivered, got)
	}
	if got := snap.Counters[obsv.MetricForwardAcked]; got != 7 {
		t.Errorf("%s = %d, want 7 (8 members minus the source)", obsv.MetricForwardAcked, got)
	}
	if snap.Histograms[obsv.MetricMulticastTime].Count != 1 {
		t.Errorf("tree-time histogram count = %d, want 1", snap.Histograms[obsv.MetricMulticastTime].Count)
	}
	if snap.Histograms[obsv.MetricLookupHops].Count == 0 {
		t.Error("lookup-hops histogram never observed (joins resolve via lookups)")
	}
}

// TestMulticastContextCanceled checks a pre-canceled context abandons the
// fan-out without accounting the abandoned segments as repaired or lost:
// cancellation is the caller giving up, not a group failure.
func TestMulticastContextCanceled(t *testing.T) {
	c := newCluster(t, ModeCAMChord, 10)
	c.grow(6, 4)

	src := c.nodes["node-0"]
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	msgID, err := src.MulticastContext(ctx, []byte("too late"))
	if err != nil {
		t.Fatal(err)
	}
	// The source always delivers to itself before fanning out.
	c.mu.Lock()
	own := c.got["node-0"][msgID]
	c.mu.Unlock()
	if own != 1 {
		t.Errorf("source deliveries = %d, want 1", own)
	}
	st := src.Stats()
	if st.SegmentsLost != 0 || st.SegmentsRepaired != 0 {
		t.Errorf("canceled multicast accounted lost=%d repaired=%d, want 0/0",
			st.SegmentsLost, st.SegmentsRepaired)
	}
}

// TestRequestContextCanceled checks RequestContext respects the caller's
// context on the in-memory transport.
func TestRequestContextCanceled(t *testing.T) {
	c := newCluster(t, ModeCAMChord, 10)
	c.tweak = func(cfg *Config) {
		cfg.OnRequest = func(from string, payload []byte) ([]byte, error) {
			return append([]byte("ok:"), payload...), nil
		}
	}
	c.grow(2, 4)

	ctx, cancel := context.WithCancel(context.Background())
	out, err := c.nodes["node-0"].RequestContext(ctx, "node-1", []byte("ping"))
	if err != nil || string(out) != "ok:ping" {
		t.Fatalf("live request = %q, %v", out, err)
	}
	cancel()
	if _, err := c.nodes["node-0"].RequestContext(ctx, "node-1", []byte("ping")); err == nil {
		t.Error("canceled request succeeded, want error")
	}
}
