package runtime

import (
	"errors"
	"testing"
	"time"

	"camcast/internal/ring"
	"camcast/internal/trace"
	"camcast/internal/transport"
)

func TestConfigValidation(t *testing.T) {
	net := transport.NewNetwork(1)
	space := ring.MustSpace(16)
	tests := []struct {
		name string
		cfg  Config
		addr string
	}{
		{"zero space", Config{Mode: ModeCAMChord, Capacity: 4}, "a"},
		{"bad mode", Config{Space: space, Mode: 0, Capacity: 4}, "a"},
		{"chord capacity 1", Config{Space: space, Mode: ModeCAMChord, Capacity: 1}, "a"},
		{"koorde capacity 3", Config{Space: space, Mode: ModeCAMKoorde, Capacity: 3}, "a"},
		{"empty addr", Config{Space: space, Mode: ModeCAMChord, Capacity: 4}, ""},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := NewNode(net, tt.addr, tt.cfg); err == nil {
				t.Fatal("expected error")
			}
		})
	}
	if _, err := NewNode(nil, "a", Config{Space: space, Mode: ModeCAMChord, Capacity: 4}); err == nil {
		t.Fatal("nil network should fail")
	}
}

func TestModeString(t *testing.T) {
	if ModeCAMChord.String() != "cam-chord" || ModeCAMKoorde.String() != "cam-koorde" {
		t.Error("mode strings wrong")
	}
	if Mode(9).String() != "Mode(9)" {
		t.Error("unknown mode string wrong")
	}
}

func TestSingleNodeMulticast(t *testing.T) {
	c := newCluster(t, ModeCAMChord, 16)
	n := c.add("solo", 4, "")
	msgID, err := n.Multicast([]byte("hello"))
	if err != nil {
		t.Fatal(err)
	}
	if got := c.deliveries("solo", msgID); got != 1 {
		t.Fatalf("self delivery count = %d", got)
	}
	if n.Stats().Delivered != 1 {
		t.Fatalf("stats = %+v", n.Stats())
	}
}

func TestBootstrapTwice(t *testing.T) {
	c := newCluster(t, ModeCAMChord, 16)
	n := c.add("solo", 4, "")
	if err := n.Bootstrap(); !errors.Is(err, ErrStopped) {
		t.Fatalf("second bootstrap err = %v", err)
	}
}

func TestMulticastAfterStop(t *testing.T) {
	c := newCluster(t, ModeCAMChord, 16)
	n := c.add("solo", 4, "")
	n.Stop()
	if _, err := n.Multicast(nil); !errors.Is(err, ErrStopped) {
		t.Fatalf("err = %v", err)
	}
}

func TestRingFormsUnderJoins(t *testing.T) {
	c := newCluster(t, ModeCAMChord, 16)
	c.grow(16, 4)
	c.checkRing()

	// Predecessor pointers should mirror successors.
	nodes := c.sortedByID()
	for i, n := range nodes {
		want := nodes[(i+len(nodes)-1)%len(nodes)].Self()
		pred, ok := n.Predecessor()
		if !ok || pred.Addr != want.Addr {
			t.Fatalf("%s predecessor = %v, want %s", n.Self().Addr, pred, want.Addr)
		}
	}
}

func TestLookupResolvesResponsibleNode(t *testing.T) {
	c := newCluster(t, ModeCAMChord, 16)
	c.grow(20, 5)

	nodes := c.sortedByID()
	idList := make([]ring.ID, len(nodes))
	for i, n := range nodes {
		idList[i] = n.Self().ID
	}
	responsible := func(k ring.ID) NodeInfo {
		for i, id := range idList {
			if id >= k {
				return nodes[i].Self()
			}
		}
		return nodes[0].Self()
	}
	for trial := 0; trial < 200; trial++ {
		k := ring.ID(trial * 317 % int(c.space.Size()))
		want := responsible(k)
		for _, from := range []*Node{nodes[0], nodes[len(nodes)/2], nodes[len(nodes)-1]} {
			got, _, err := from.FindSuccessor(k)
			if err != nil {
				t.Fatalf("lookup %d from %s: %v", k, from.Self().Addr, err)
			}
			if got.Addr != want.Addr {
				t.Fatalf("lookup %d from %s = %s, want %s", k, from.Self().Addr, got.Addr, want.Addr)
			}
		}
	}
}

func TestCAMChordMulticastReachesAll(t *testing.T) {
	c := newCluster(t, ModeCAMChord, 16)
	c.grow(24, 4)

	for _, src := range []int{0, 7, 23} {
		msgID, err := c.live()[src].Multicast([]byte("payload"))
		if err != nil {
			t.Fatal(err)
		}
		c.checkExactlyOnce(msgID)
	}
}

func TestCAMKoordeMulticastReachesAll(t *testing.T) {
	c := newCluster(t, ModeCAMKoorde, 16)
	c.grow(24, 6)

	for _, src := range []int{0, 11, 23} {
		msgID, err := c.live()[src].Multicast([]byte("payload"))
		if err != nil {
			t.Fatal(err)
		}
		c.checkExactlyOnce(msgID)
	}
}

func TestMulticastDegreeBounded(t *testing.T) {
	c := newCluster(t, ModeCAMChord, 16)
	c.grow(30, 4)
	n := c.live()[3]
	if _, err := n.Multicast([]byte("m")); err != nil {
		t.Fatal(err)
	}
	// The source's forwarded count for one message is bounded by capacity.
	if f := n.Stats().Forwarded; f > uint64(n.Capacity()) {
		t.Fatalf("source forwarded %d copies, capacity %d", f, n.Capacity())
	}
}

func TestGracefulLeaveHealsRing(t *testing.T) {
	c := newCluster(t, ModeCAMChord, 16)
	c.grow(12, 4)

	leaver := c.live()[5]
	if err := leaver.Leave(); err != nil {
		t.Fatal(err)
	}
	c.converge(3)
	c.checkRing()

	msgID, err := c.live()[0].Multicast([]byte("after-leave"))
	if err != nil {
		t.Fatal(err)
	}
	c.checkExactlyOnce(msgID)
}

func TestLeaveTwice(t *testing.T) {
	c := newCluster(t, ModeCAMChord, 16)
	c.grow(4, 4)
	leaver := c.live()[1]
	if err := leaver.Leave(); err != nil {
		t.Fatal(err)
	}
	if err := leaver.Leave(); !errors.Is(err, ErrStopped) {
		t.Fatalf("second leave err = %v", err)
	}
}

func TestCrashRecoveryViaSuccessorLists(t *testing.T) {
	c := newCluster(t, ModeCAMChord, 16)
	c.grow(16, 4)

	// Crash three nodes without notice.
	for _, i := range []int{3, 8, 12} {
		c.live()[i].Stop()
	}
	c.converge(4)
	c.checkRing()

	msgID, err := c.live()[0].Multicast([]byte("after-crash"))
	if err != nil {
		t.Fatal(err)
	}
	c.checkExactlyOnce(msgID)
}

func TestCrashRecoveryKoorde(t *testing.T) {
	c := newCluster(t, ModeCAMKoorde, 16)
	c.grow(16, 6)
	c.live()[4].Stop()
	c.live()[9].Stop()
	c.converge(4)
	c.checkRing()

	msgID, err := c.live()[0].Multicast([]byte("after-crash"))
	if err != nil {
		t.Fatal(err)
	}
	c.checkExactlyOnce(msgID)
}

func TestConcurrentMulticastSources(t *testing.T) {
	c := newCluster(t, ModeCAMChord, 16)
	c.grow(15, 4)

	nodes := c.live()
	msgIDs := make([]string, len(nodes))
	errs := make([]error, len(nodes))
	done := make(chan int, len(nodes))
	for i, n := range nodes {
		go func(i int, n *Node) {
			msgIDs[i], errs[i] = n.Multicast([]byte{byte(i)})
			done <- i
		}(i, n)
	}
	for range nodes {
		<-done
	}
	for i := range nodes {
		if errs[i] != nil {
			t.Fatalf("source %d: %v", i, errs[i])
		}
		c.checkExactlyOnce(msgIDs[i])
	}
}

func TestBackgroundLoopsRunAndStop(t *testing.T) {
	net := transport.NewNetwork(1)
	space := ring.MustSpace(16)
	tr := trace.NewTracer()
	cfg := Config{
		Space: space, Mode: ModeCAMChord, Capacity: 4,
		StabilizeEvery: time.Millisecond, FixEvery: time.Millisecond,
		Tracer: tr,
	}
	a, err := NewNode(net, "a", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Bootstrap(); err != nil {
		t.Fatal(err)
	}
	b, err := NewNode(net, "b", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Join("a"); err != nil {
		t.Fatal(err)
	}

	// Wait for background maintenance to link the two-node ring.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		succA := a.SuccessorList()
		predA, okA := a.Predecessor()
		if len(succA) > 0 && succA[0].Addr == "b" && okA && predA.Addr == "b" {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if succ := a.SuccessorList(); len(succ) == 0 || succ[0].Addr != "b" {
		t.Fatalf("background stabilization did not link ring: %v", succ)
	}
	// Stop must terminate the loops (and not hang).
	b.Stop()
	a.Stop()
}

func TestJoinUnreachableBootstrap(t *testing.T) {
	net := transport.NewNetwork(1)
	cfg := Config{Space: ring.MustSpace(16), Mode: ModeCAMChord, Capacity: 4}
	n, err := NewNode(net, "a", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Join("ghost"); !errors.Is(err, transport.ErrUnreachable) {
		t.Fatalf("err = %v", err)
	}
}

func TestStatsAccumulate(t *testing.T) {
	c := newCluster(t, ModeCAMChord, 16)
	c.grow(10, 4)
	src := c.live()[0]
	if _, err := src.Multicast([]byte("x")); err != nil {
		t.Fatal(err)
	}
	var totalDelivered, totalForwarded uint64
	for _, n := range c.live() {
		st := n.Stats()
		totalDelivered += st.Delivered
		totalForwarded += st.Forwarded
	}
	if totalDelivered != 10 {
		t.Errorf("total delivered %d, want 10", totalDelivered)
	}
	if totalForwarded != 9 {
		t.Errorf("total forwarded %d, want 9 (tree edges)", totalForwarded)
	}
	if src.Stats().Lookups == 0 {
		t.Error("source served no lookups despite driving joins")
	}
}

func TestTracerRecordsProtocolEvents(t *testing.T) {
	net := transport.NewNetwork(1)
	tr := trace.NewTracer()
	cfg := Config{Space: ring.MustSpace(16), Mode: ModeCAMChord, Capacity: 4, Tracer: tr}
	a, _ := NewNode(net, "a", cfg)
	if err := a.Bootstrap(); err != nil {
		t.Fatal(err)
	}
	b, _ := NewNode(net, "b", cfg)
	if err := b.Join("a"); err != nil {
		t.Fatal(err)
	}
	if tr.Count(trace.KindJoin) != 2 {
		t.Errorf("join events = %d, want 2", tr.Count(trace.KindJoin))
	}
	if _, err := a.Multicast([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if tr.Count(trace.KindDeliver) == 0 {
		t.Error("no deliver events recorded")
	}
	b.Stop()
	a.Stop()
}
