package runtime

import (
	"math/rand"
	"sort"
	"testing"

	"camcast/internal/ring"
	"camcast/internal/transport"
)

// convergenceCheckpoints picks the membership sizes at which the
// incremental CAM-Koorde ramp is probed, trimmed under -short and the race
// detector like equivSize.
func convergenceCheckpoints() []int {
	switch {
	case testing.Short():
		return []int{300, 600}
	case raceEnabled:
		return []int{500, 1000, 1500}
	default:
		return []int{2000, 5000, 10000}
	}
}

// TestKoordeIncrementalConvergence ramps one CAM-Koorde ring through the
// normal join path — oracle-picked bootstrap, one predecessor stabilize,
// per-join FixAll, exactly the construction TestBulkEquivalence's
// incremental arm uses — and probes lookups mid-ramp at each checkpoint:
// every probe must resolve to the oracle owner without exhausting the hop
// budget, and the probe set's p99 hop count must stay within the digit-
// routing bound even though older members' tables have gone stale as the
// ring grew around them. Before digit routing, greedy forwarding on koorde
// slots degraded to successor walks and this ramp died around ~1.4k.
func TestKoordeIncrementalConvergence(t *testing.T) {
	checkpoints := convergenceCheckpoints()
	size := checkpoints[len(checkpoints)-1]
	space := ring.MustSpace(32)
	members := equivMembers(space, ModeCAMKoorde, size, 11)
	rng := rand.New(rand.NewSource(13))
	mask := uint64(1)<<space.Bits() - 1

	net := transport.NewNetwork(3)
	inc := make(map[string]*Node, size)
	nodes := make([]*Node, 0, size)
	joinedIDs := make([]ring.ID, 0, size)
	joinedAddrs := make([]string, 0, size)
	defer func() {
		for _, n := range nodes {
			n.Stop()
		}
	}()

	// probe resolves random keys from random members against the sorted-
	// membership oracle and checks the hop distribution. The bound is
	// 2·log2(n) digit hops (capacity-4 members consume one bit per hop, and
	// a truncated cursor spends up to cursorMarginBits extra single-bit
	// hops) plus slack for delegations and the exhausted-cursor recovery
	// walk across entries gone stale since their owner's last fix pass.
	// Mid-ramp this measures p50≈14 p99≈20 at every checkpoint — the tail
	// is n-independent because the backward walk's length is set by slot
	// staleness (bounded by the fix rotation period), not by ring size.
	probe := func(n int) {
		const probes = 200
		hops := make([]int, 0, probes)
		for p := 0; p < probes; p++ {
			src := inc[joinedAddrs[rng.Intn(len(joinedAddrs))]]
			k := ring.ID(rng.Uint64() & mask)
			owner, h, err := src.FindSuccessor(k)
			if err != nil {
				t.Fatalf("at %d members: lookup %d from %s: %v", n, k, src.Self().Addr, err)
			}
			j := sort.Search(len(joinedIDs), func(i int) bool { return joinedIDs[i] >= k })
			if j == len(joinedIDs) {
				j = 0
			}
			if owner.ID != joinedIDs[j] {
				t.Fatalf("at %d members: lookup %d resolved to %d, oracle says %d", n, k, owner.ID, joinedIDs[j])
			}
			hops = append(hops, h)
		}
		sort.Ints(hops)
		p50 := hops[len(hops)/2]
		p99 := hops[len(hops)*99/100]
		logN := int(ring.Log2Floor(uint64(n))) + 1
		bound := 2*logN + cursorMarginBits + 16
		if n < 1000 {
			// Below ~1k members the empty arcs flanking the ring origin span
			// many mean successor gaps, and a digit chain whose imaginary
			// path crosses them (keys near 2^(b-1), whose doubled images pass
			// the origin) can land too far from the owner for the backward
			// walk, paying reinjected retry chains instead. Those retries are
			// capped at an eighth of the hop budget by design, so the sparse-
			// scale tail carries that allowance; from ~1k members on the arcs
			// shrink below the walk threshold and the tight bound holds.
			bound += nodes[0].maxLookupHops() / 8
		}
		t.Logf("at %d members: lookup hops p50=%d p99=%d max=%d (bound %d)", n, p50, p99, hops[len(hops)-1], bound)
		if p99 > bound {
			t.Errorf("at %d members: lookup hops p99 = %d, want <= %d", n, p99, bound)
		}
	}

	next := 0
	refresh := 0
	for i, m := range members {
		n, err := NewNode(net, m.addr, Config{Space: space, Mode: ModeCAMKoorde, Capacity: m.cap})
		if err != nil {
			t.Fatal(err)
		}
		inc[m.addr] = n
		nodes = append(nodes, n)
		if i == 0 {
			if err := n.Bootstrap(); err != nil {
				t.Fatal(err)
			}
		} else {
			j := sort.Search(len(joinedIDs), func(k int) bool { return joinedIDs[k] >= m.id })
			if j == len(joinedIDs) {
				j = 0
			}
			if err := n.Join(joinedAddrs[j]); err != nil {
				t.Fatalf("join %s: %v", m.addr, err)
			}
			p := (j - 1 + len(joinedIDs)) % len(joinedIDs)
			inc[joinedAddrs[p]].StabilizeOnce()
			n.FixAll()
			// Rotating FixOnce cohort, standing in for the scheduler's
			// periodic fix maintenance (see TestBulkEquivalence). The cohort
			// scales with ring size — every live member refreshes on a fixed
			// interval, so the aggregate fix rate grows with n while the
			// join rate stays constant — keeping the rotation period (and so
			// each slot's staleness) bounded by a constant number of joins
			// instead of n/4.
			for r := 0; r < 4+len(nodes)/256; r++ {
				nodes[refresh%len(nodes)].FixOnce()
				refresh++
			}
		}
		j := sort.Search(len(joinedIDs), func(k int) bool { return joinedIDs[k] >= m.id })
		joinedIDs = append(joinedIDs, 0)
		copy(joinedIDs[j+1:], joinedIDs[j:])
		joinedIDs[j] = m.id
		joinedAddrs = append(joinedAddrs, "")
		copy(joinedAddrs[j+1:], joinedAddrs[j:])
		joinedAddrs[j] = m.addr

		if next < len(checkpoints) && i+1 == checkpoints[next] {
			probe(i + 1)
			next++
		}
	}
}
