package runtime

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"camcast/internal/ids"
	"camcast/internal/ring"
	"camcast/internal/transport"
)

// equivSize picks the equivalence-test population per mode, trimmed under
// -short and under the race detector (whose instrumentation makes large
// rings take minutes).
//
// Both modes run the full 10k. CAM-Chord's table is distance-ordered, so
// the synchronized nearest-first sweep below keeps every convergence lookup
// within the hop budget at any size. CAM-Koorde's slots are de Bruijn
// images — all long-range, no short-first ladder — so its ramp instead
// relies on digit routing (lookup.go digitRoute): each joiner runs FixAll
// right after its join, whose lookups delegate their routing cursor to the
// joiner's already-converged successor and resolve in O(log n) digit hops.
// (Before digit routing, greedy closest-preceding forwarding degraded to a
// successor walk on koorde slots and capped this test at ~1.4k members.)
func equivSize(mode Mode) int {
	switch {
	case testing.Short():
		return 600
	case raceEnabled:
		return 1500
	default:
		return 10000
	}
}

// equivMember is one planned member: address, drawn capacity, and the ring
// identifier its address hashes to.
type equivMember struct {
	addr string
	cap  int
	id   ring.ID
}

// equivMembers plans size members with distinct ring identifiers (colliding
// addresses are skipped so both clusters see the same membership) and
// seeded heterogeneous capacity draws.
func equivMembers(space ring.Space, mode Mode, size int, seed int64) []equivMember {
	rng := rand.New(rand.NewSource(seed))
	h := ids.NewHasher(space)
	seen := make(map[ring.ID]bool, size)
	out := make([]equivMember, 0, size)
	for i := 0; len(out) < size; i++ {
		addr := fmt.Sprintf("m-%d", i)
		id := h.ID(addr)
		if seen[id] {
			continue
		}
		seen[id] = true
		capacity := 2 + rng.Intn(7)
		if mode == ModeCAMKoorde {
			capacity = 4 + rng.Intn(5)
		}
		out = append(out, equivMember{addr: addr, cap: capacity, id: id})
	}
	return out
}

// TestBulkEquivalence is the correctness anchor for assisted construction:
// a bulk-installed ring must carry byte-identical routing state —
// predecessor, successor list, and every table slot — to the same
// membership ramped incrementally and stabilized to a fixed point, for both
// CAM-Chord and CAM-Koorde.
func TestBulkEquivalence(t *testing.T) {
	for _, mode := range []Mode{ModeCAMChord, ModeCAMKoorde} {
		t.Run(mode.String(), func(t *testing.T) {
			size := equivSize(mode)
			space := ring.MustSpace(32)
			members := equivMembers(space, mode, size, 7)

			// Bulk cluster: one shared arena, parallel install.
			bnet := transport.NewNetwork(1)
			barena := NewNodeArena()
			bulk := make(map[string]*Node, size)
			bulkNodes := make([]*Node, size)
			for i, m := range members {
				n, err := NewNode(bnet, m.addr, Config{
					Space: space, Mode: mode, Capacity: m.cap, Arena: barena,
				})
				if err != nil {
					t.Fatal(err)
				}
				bulkNodes[i] = n
				bulk[m.addr] = n
			}
			defer func() {
				for _, n := range bulkNodes {
					n.Stop()
				}
			}()
			if err := BulkInstall(bulkNodes, BulkOptions{}); err != nil {
				t.Fatal(err)
			}

			// Incremental cluster: same addresses and capacity draws, ramped
			// one join at a time through the normal protocol operations.
			// The test's oracle picks each joiner's bootstrap (its successor
			// at join time) and pokes the joiner's ring predecessor with one
			// StabilizeOnce after the join — which node bootstraps whom is
			// immaterial to the final fixed point, but keeping ring
			// adjacency exact throughout means every join's lookup resolves
			// at its owner instead of ring-walking a membership whose
			// routing tables have not been fixed yet.
			inet := transport.NewNetwork(1)
			inc := make(map[string]*Node, size)
			nodes := make([]*Node, 0, size)
			joinedIDs := make([]ring.ID, 0, size)
			joinedAddrs := make([]string, 0, size)
			refresh := 0
			for i, m := range members {
				n, err := NewNode(inet, m.addr, Config{Space: space, Mode: mode, Capacity: m.cap})
				if err != nil {
					t.Fatal(err)
				}
				inc[m.addr] = n
				nodes = append(nodes, n)
				if i == 0 {
					if err := n.Bootstrap(); err != nil {
						t.Fatal(err)
					}
				} else {
					j := sort.Search(len(joinedIDs), func(k int) bool { return joinedIDs[k] >= m.id })
					if j == len(joinedIDs) {
						j = 0
					}
					if err := n.Join(joinedAddrs[j]); err != nil {
						t.Fatalf("join %s: %v", m.addr, err)
					}
					// The joiner notified its successor; one stabilize round
					// at its predecessor closes the other side of the splice
					// (pred adopts the joiner, the joiner learns its pred).
					p := (j - 1 + len(joinedIDs)) % len(joinedIDs)
					inc[joinedAddrs[p]].StabilizeOnce()
					// CAM-Koorde convergence leans on per-join table fill:
					// the joiner's all-long-range slots resolve by digit
					// routing through its successor's converged tables, so
					// every later lookup in the ring finds filled slots to
					// advance its cursor through. The rotating FixOnce
					// cohort stands in for the scheduler's periodic fix
					// maintenance: without it an early joiner's slots stay
					// resolved against the ring as of its join, digit
					// chains land n/s_join gaps from the owner, and the
					// landing walk eats the hop budget (observed p50=259
					// hops at 2k members). The cohort scales with ring
					// size — every live member refreshes on a fixed
					// interval, so the aggregate fix rate grows with n —
					// keeping each slot's staleness bounded by a constant
					// number of joins and landings a few gaps out.
					// (CAM-Chord skips both — its nearest-first
					// synchronized sweep below converges without seeding.)
					if mode == ModeCAMKoorde {
						n.FixAll()
						for r := 0; r < 4+len(nodes)/256; r++ {
							nodes[refresh%len(nodes)].FixOnce()
							refresh++
						}
					}
				}
				j := sort.Search(len(joinedIDs), func(k int) bool { return joinedIDs[k] >= m.id })
				joinedIDs = append(joinedIDs, 0)
				copy(joinedIDs[j+1:], joinedIDs[j:])
				joinedIDs[j] = m.id
				joinedAddrs = append(joinedAddrs, "")
				copy(joinedAddrs[j+1:], joinedAddrs[j:])
				joinedAddrs[j] = m.addr
			}
			defer func() {
				for _, n := range nodes {
					n.Stop()
				}
			}()

			// Stabilize to a fixed point: rounds until no predecessor or
			// successor list changes, then refresh every routing table once.
			prev := ""
			converged := false
			for r := 0; r < 64; r++ {
				for _, v := range nodes {
					v.StabilizeOnce()
				}
				var b strings.Builder
				for _, v := range nodes {
					p, _ := v.Predecessor()
					b.WriteString(p.Addr)
					b.WriteByte('|')
					for _, s := range v.SuccessorList() {
						b.WriteString(s.Addr)
						b.WriteByte(',')
					}
					b.WriteByte(';')
				}
				cur := b.String()
				if cur == prev {
					converged = true
					break
				}
				prev = cur
			}
			if !converged {
				t.Fatal("incremental ramp did not reach a stabilization fixed point in 64 rounds")
			}
			// Refresh routing tables to their own fixed point. Starting
			// from all-empty tables, a node fixing its farthest slots
			// would route as a pure successor walk and exhaust the hop
			// budget, so the first fill is a synchronized sweep: every
			// node fixes its next small batch of slots (nearest-first in
			// CAM-Chord's distance-ordered table) before any node moves
			// on, and each batch's lookups ride the shorter fingers the
			// previous batches installed everywhere. Then FixAll rounds
			// confirm the fixed point: the iteration ends when a full
			// refresh changes nothing.
			maxSlots := 0
			for _, v := range nodes {
				if l := v.spec.len(); l > maxSlots {
					maxSlots = l
				}
			}
			for r := 0; r*4 < maxSlots; r++ {
				for _, v := range nodes {
					v.FixOnce()
				}
			}
			prev = ""
			converged = false
			for r := 0; r < 8; r++ {
				for _, v := range nodes {
					v.FixAll()
				}
				var b strings.Builder
				for _, v := range nodes {
					for _, e := range v.tableSnapshot() {
						b.WriteString(e.Addr)
						b.WriteByte(',')
					}
					b.WriteByte(';')
				}
				cur := b.String()
				if cur == prev {
					converged = true
					break
				}
				prev = cur
			}
			if !converged {
				t.Fatal("routing tables did not reach a fixed point in 8 rounds")
			}

			// The two clusters must agree on every byte of routing state.
			for _, m := range members {
				bn, in := bulk[m.addr], inc[m.addr]
				bp, _ := bn.Predecessor()
				ip, _ := in.Predecessor()
				if bp != ip {
					t.Fatalf("%s predecessor: bulk %+v, incremental %+v", m.addr, bp, ip)
				}
				bs, is := bn.SuccessorList(), in.SuccessorList()
				if len(bs) != len(is) {
					t.Fatalf("%s successor list length: bulk %d, incremental %d", m.addr, len(bs), len(is))
				}
				for i := range bs {
					if bs[i] != is[i] {
						t.Fatalf("%s successor[%d]: bulk %+v, incremental %+v", m.addr, i, bs[i], is[i])
					}
				}
				bt, it := bn.tableSnapshot(), in.tableSnapshot()
				if len(bt) != len(it) {
					t.Fatalf("%s table size: bulk %d, incremental %d", m.addr, len(bt), len(it))
				}
				for i := range bt {
					if bt[i] != it[i] {
						t.Fatalf("%s slot %d: bulk %+v, incremental %+v", m.addr, i, bt[i], it[i])
					}
				}
			}
		})
	}
}

// TestBulkInstallSmallRing cross-checks an installed ring against the
// test's own successor oracle, including the pred/succ wrap.
func TestBulkInstallSmallRing(t *testing.T) {
	space := ring.MustSpace(32)
	members := equivMembers(space, ModeCAMChord, 64, 3)
	net := transport.NewNetwork(1)
	nodes := make([]*Node, len(members))
	for i, m := range members {
		n, err := NewNode(net, m.addr, Config{Space: space, Mode: ModeCAMChord, Capacity: m.cap})
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = n
	}
	defer func() {
		for _, n := range nodes {
			n.Stop()
		}
	}()
	if err := BulkInstall(nodes, BulkOptions{Parallelism: 1}); err != nil {
		t.Fatal(err)
	}

	sorted := append([]*Node(nil), nodes...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Self().ID < sorted[j].Self().ID })
	m := len(sorted)
	succOf := func(k ring.ID) NodeInfo {
		i := sort.Search(m, func(j int) bool { return sorted[j].Self().ID >= k })
		if i == m {
			i = 0
		}
		return sorted[i].Self()
	}
	for i, n := range sorted {
		if p, ok := n.Predecessor(); !ok || p != sorted[(i-1+m)%m].Self() {
			t.Fatalf("%s predecessor = %+v ok=%v, want %+v",
				n.Self().Addr, p, ok, sorted[(i-1+m)%m].Self())
		}
		succs := n.SuccessorList()
		if len(succs) != 4 {
			t.Fatalf("%s successor list has %d entries, want 4", n.Self().Addr, len(succs))
		}
		for j, s := range succs {
			if want := sorted[(i+1+j)%m].Self(); s != want {
				t.Fatalf("%s successor[%d] = %+v, want %+v", n.Self().Addr, j, s, want)
			}
		}
		for s, got := range n.tableSnapshot() {
			if want := succOf(n.spec.id(space, n.Self().ID, s)); got != want {
				t.Fatalf("%s slot %d = %+v, want %+v", n.Self().Addr, s, got, want)
			}
		}
	}
}

func TestBulkInstallSingle(t *testing.T) {
	space := ring.MustSpace(32)
	net := transport.NewNetwork(1)
	n, err := NewNode(net, "solo", Config{Space: space, Mode: ModeCAMChord, Capacity: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Stop()
	if err := BulkInstall([]*Node{n}, BulkOptions{}); err != nil {
		t.Fatal(err)
	}
	if p, ok := n.Predecessor(); !ok || p.Addr != "solo" {
		t.Fatalf("solo predecessor = %+v ok=%v, want self", p, ok)
	}
	if succs := n.SuccessorList(); len(succs) != 1 || succs[0].Addr != "solo" {
		t.Fatalf("solo successor list = %+v, want [self]", succs)
	}
}

func TestBulkInstallValidation(t *testing.T) {
	space := ring.MustSpace(32)
	net := transport.NewNetwork(1)
	mk := func(addr string, mode Mode) *Node {
		t.Helper()
		n, err := NewNode(net, addr, Config{Space: space, Mode: mode, Capacity: 4})
		if err != nil {
			t.Fatal(err)
		}
		return n
	}

	if err := BulkInstall(nil, BulkOptions{}); err == nil {
		t.Error("empty membership accepted")
	}

	started := mk("started", ModeCAMChord)
	if err := started.Bootstrap(); err != nil {
		t.Fatal(err)
	}
	if err := BulkInstall([]*Node{started}, BulkOptions{}); err == nil {
		t.Error("already-started node accepted")
	}
	started.Stop()
	if err := BulkInstall([]*Node{started}, BulkOptions{}); err == nil {
		t.Error("stopped node accepted")
	}

	a, b := mk("mode-a", ModeCAMChord), mk("mode-b", ModeCAMKoorde)
	if err := BulkInstall([]*Node{a, b}, BulkOptions{}); err == nil {
		t.Error("mixed-mode membership accepted")
	}
	a.Stop()
	b.Stop()

	// Two addresses hashing to the same identifier in a small space.
	small := ring.MustSpace(16)
	h := ids.NewHasher(small)
	seen := make(map[ring.ID]string)
	var dupA, dupB string
	for i := 0; dupB == ""; i++ {
		addr := fmt.Sprintf("d-%d", i)
		id := h.ID(addr)
		if prev, ok := seen[id]; ok {
			dupA, dupB = prev, addr
		} else {
			seen[id] = addr
		}
	}
	n1, err := NewNode(net, dupA, Config{Space: small, Mode: ModeCAMChord, Capacity: 4})
	if err != nil {
		t.Fatal(err)
	}
	n2, err := NewNode(net, dupB, Config{Space: small, Mode: ModeCAMChord, Capacity: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer n1.Stop()
	defer n2.Stop()
	if err := BulkInstall([]*Node{n1, n2}, BulkOptions{}); err == nil {
		t.Error("identifier collision accepted")
	}
}
