package runtime

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"reflect"
	"testing"

	"camcast/internal/transport"
)

// wireSamples holds representative values for every registered wire type,
// including the edge cases the codec must preserve: nil versus empty byte
// slices, nil versus present optional NodeInfo pointers, negative ints,
// and empty strings. Every codec test and the fuzz seed corpus iterate
// this list, so adding a wire type without extending it fails
// TestWireCodecCoversAllTags below.
var wireSamples = []struct {
	name string
	val  transport.WireMarshaler
	dec  func([]byte) (any, error)
}{
	{"pingReq", pingReq{Probe: true}, decodePingReq},
	{"pingResp", pingResp{Node: NodeInfo{Addr: "10.0.0.1:7000", ID: 0xdeadbeef}}, decodePingResp},
	{"findSuccReq", findSuccReq{K: 1<<63 + 17, Hops: -3, HasCursor: true, Img: 0xfeedface, Left: 27}, decodeFindSuccReq},
	{"findSuccReq/noCursor", findSuccReq{K: 42, Hops: 1}, decodeFindSuccReq},
	{"findSuccReq/exhaustedCursor", findSuccReq{K: 9, Hops: 30, HasCursor: true, Img: 1 << 63, Left: 0}, decodeFindSuccReq},
	{"findSuccResp", findSuccResp{Node: NodeInfo{Addr: "a:1", ID: 1}, Hops: 12}, decodeFindSuccResp},
	{"neighborsReq", neighborsReq{Full: true}, decodeNeighborsReq},
	{"neighborsResp", neighborsResp{
		Pred:  &NodeInfo{Addr: "p:9", ID: 9},
		Succs: []NodeInfo{{Addr: "s1:1", ID: 1}, {Addr: "s2:2", ID: 2}},
	}, decodeNeighborsResp},
	{"neighborsResp/empty", neighborsResp{Pred: nil, Succs: nil}, decodeNeighborsResp},
	{"neighborsResp/zeroLenSuccs", neighborsResp{Succs: []NodeInfo{}}, decodeNeighborsResp},
	{"notifyReq", notifyReq{Candidate: NodeInfo{Addr: "c:3", ID: 3}}, decodeNotifyReq},
	{"notifyResp", notifyResp{Accepted: true}, decodeNotifyResp},
	{"multicastReq", multicastReq{
		MsgID:   "msg-0042",
		Source:  NodeInfo{Addr: "src:5", ID: 5},
		Payload: []byte{0, 1, 2, 0xff},
		K:       1 << 40,
		Hops:    7,
		Repair:  true,
	}, decodeMulticastReq},
	{"multicastReq/nilPayload", multicastReq{MsgID: "m"}, decodeMulticastReq},
	{"multicastResp", multicastResp{Duplicate: true}, decodeMulticastResp},
	{"offerReq", offerReq{MsgID: ""}, decodeOfferReq},
	{"offerResp", offerResp{Want: true}, decodeOfferResp},
	{"floodReq", floodReq{
		MsgID:   "flood-1",
		Source:  NodeInfo{Addr: "f:6", ID: 6},
		Payload: bytes.Repeat([]byte{0xab}, 100),
		Hops:    2,
	}, decodeFloodReq},
	{"floodResp", floodResp{}, decodeFloodResp},
	{"leavingReq", leavingReq{
		Departing: NodeInfo{Addr: "d:8", ID: 8},
		NewPred:   &NodeInfo{Addr: "np:4", ID: 4},
		NewSucc:   nil,
	}, decodeLeavingReq},
	{"leavingResp", leavingResp{Acked: true}, decodeLeavingResp},
	{"appReq/emptyPayload", appReq{Payload: []byte{}}, decodeAppReq},
	{"appResp/nilPayload", appResp{Payload: nil}, decodeAppResp},
}

// TestWireCodecCoversAllTags fails when a registered wire tag has no
// sample, keeping the round-trip/fuzz/benchmark coverage in sync with the
// message set.
func TestWireCodecCoversAllTags(t *testing.T) {
	covered := map[byte]bool{}
	for _, s := range wireSamples {
		covered[s.val.WireTag()] = true
	}
	for tag := byte(tagPingReq); tag <= tagAppResp; tag++ {
		if !covered[tag] {
			t.Errorf("wire tag %#x has no sample in wireSamples", tag)
		}
	}
}

// TestWireCodecRoundTrip verifies value-identical binary round trips for
// every wire type, including nil/empty distinctions.
func TestWireCodecRoundTrip(t *testing.T) {
	for _, s := range wireSamples {
		t.Run(s.name, func(t *testing.T) {
			enc := s.val.AppendWire(nil)
			got, err := s.dec(enc)
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			if !reflect.DeepEqual(got, reflect.ValueOf(s.val).Interface()) {
				t.Fatalf("round trip mismatch:\n got %#v\nwant %#v", got, s.val)
			}
		})
	}
}

// TestWireCodecMatchesGob verifies that the binary codec and the gob
// fallback agree: a value decoded from its binary encoding equals the same
// value decoded from its gob encoding, so binary and gob peers can
// interoperate. Edge cases where gob itself is lossy (nil vs empty slices)
// are covered by TestWireCodecRoundTrip instead.
func TestWireCodecMatchesGob(t *testing.T) {
	RegisterWireTypes()
	for _, s := range wireSamples {
		if bytes.Contains([]byte(s.name), []byte("/")) {
			continue // edge-case samples exercise codec-only semantics
		}
		t.Run(s.name, func(t *testing.T) {
			binGot, err := s.dec(s.val.AppendWire(nil))
			if err != nil {
				t.Fatalf("binary decode: %v", err)
			}
			var buf bytes.Buffer
			box := struct{ V any }{V: s.val}
			if err := gob.NewEncoder(&buf).Encode(&box); err != nil {
				t.Fatalf("gob encode: %v", err)
			}
			var out struct{ V any }
			if err := gob.NewDecoder(&buf).Decode(&out); err != nil {
				t.Fatalf("gob decode: %v", err)
			}
			if !reflect.DeepEqual(binGot, out.V) {
				t.Fatalf("binary and gob disagree:\n bin %#v\n gob %#v", binGot, out.V)
			}
		})
	}
}

// TestWireCodecRejectsTrailingBytes verifies every decoder calls Finish:
// trailing garbage after a valid encoding must be an error, not silently
// ignored.
func TestWireCodecRejectsTrailingBytes(t *testing.T) {
	for _, s := range wireSamples {
		t.Run(s.name, func(t *testing.T) {
			enc := append(s.val.AppendWire(nil), 0x00)
			if _, err := s.dec(enc); err == nil {
				t.Fatal("decoder accepted trailing bytes")
			}
		})
	}
}

// TestWireCodecAllocs enforces the codec's reason to exist: for every
// registered wire type, a binary encode+decode round trip must allocate
// strictly less than the gob round trip it replaces.
func TestWireCodecAllocs(t *testing.T) {
	RegisterWireTypes()
	var scratch []byte
	for _, s := range wireSamples {
		s := s
		t.Run(s.name, func(t *testing.T) {
			binAllocs := testing.AllocsPerRun(200, func() {
				scratch = s.val.AppendWire(scratch[:0])
				if _, err := s.dec(scratch); err != nil {
					t.Fatal(err)
				}
			})
			gobAllocs := testing.AllocsPerRun(200, func() {
				var buf bytes.Buffer
				box := struct{ V any }{V: s.val}
				if err := gob.NewEncoder(&buf).Encode(&box); err != nil {
					t.Fatal(err)
				}
				var out struct{ V any }
				if err := gob.NewDecoder(&buf).Decode(&out); err != nil {
					t.Fatal(err)
				}
			})
			if binAllocs >= gobAllocs {
				t.Errorf("binary codec allocates %.0f/op, gob %.0f/op: binary must be below gob", binAllocs, gobAllocs)
			}
		})
	}
}

// FuzzWireCodec fuzzes every registered decoder with arbitrary bytes. A
// decoder must never panic; when it accepts an input, re-encoding the
// decoded value and decoding again must be a fixed point (the codec is
// canonical). The seed corpus is the encoding of every sample value.
func FuzzWireCodec(f *testing.F) {
	for _, s := range wireSamples {
		f.Add(s.val.WireTag(), s.val.AppendWire(nil))
	}
	decoders := map[byte]func([]byte) (any, error){}
	for _, s := range wireSamples {
		decoders[s.val.WireTag()] = s.dec
	}
	f.Fuzz(func(t *testing.T, tag byte, data []byte) {
		dec, ok := decoders[tag]
		if !ok {
			return
		}
		v1, err := dec(data)
		if err != nil {
			return // malformed input rejected: fine
		}
		enc := v1.(transport.WireMarshaler).AppendWire(nil)
		v2, err := dec(enc)
		if err != nil {
			t.Fatalf("re-decode of re-encoded value failed: %v (value %#v)", err, v1)
		}
		if !reflect.DeepEqual(v1, v2) {
			t.Fatalf("codec not canonical:\n first %#v\n second %#v", v1, v2)
		}
	})
}

// BenchmarkWireCodec compares a full encode+decode round trip through the
// binary codec against the gob fallback for every wire type.
func BenchmarkWireCodec(b *testing.B) {
	RegisterWireTypes()
	for _, s := range wireSamples {
		if bytes.Contains([]byte(s.name), []byte("/")) {
			continue
		}
		b.Run(fmt.Sprintf("%s/binary", s.name), func(b *testing.B) {
			b.ReportAllocs()
			var scratch []byte
			for i := 0; i < b.N; i++ {
				scratch = s.val.AppendWire(scratch[:0])
				if _, err := s.dec(scratch); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("%s/gob", s.name), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				var buf bytes.Buffer
				box := struct{ V any }{V: s.val}
				if err := gob.NewEncoder(&buf).Encode(&box); err != nil {
					b.Fatal(err)
				}
				var out struct{ V any }
				if err := gob.NewDecoder(&buf).Decode(&out); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
