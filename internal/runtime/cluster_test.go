package runtime

import (
	"fmt"
	"sort"
	"sync"
	"testing"

	"camcast/internal/ring"
	"camcast/internal/transport"
)

// cluster is the test harness: a set of live nodes on one in-memory network
// with a shared delivery log. Maintenance is driven explicitly (no
// background loops) so tests are deterministic.
type cluster struct {
	t     *testing.T
	net   *transport.Network
	space ring.Space
	mode  Mode
	nodes map[string]*Node

	// tweak optionally adjusts each node's Config before construction
	// (set it before add/grow); chaos tests use it to tighten forwarding
	// deadlines and retry budgets.
	tweak func(*Config)

	mu  sync.Mutex
	got map[string]map[string]int // addr -> msgID -> deliveries
}

func newCluster(t *testing.T, mode Mode, bits uint) *cluster {
	t.Helper()
	c := &cluster{
		t:     t,
		net:   transport.NewNetwork(1),
		space: ring.MustSpace(bits),
		mode:  mode,
		nodes: make(map[string]*Node),
		got:   make(map[string]map[string]int),
	}
	t.Cleanup(func() {
		for _, n := range c.nodes {
			n.Stop()
		}
	})
	return c
}

func (c *cluster) config(capacity int) Config {
	cfg := Config{Space: c.space, Mode: c.mode, Capacity: capacity}
	if c.tweak != nil {
		c.tweak(&cfg)
	}
	return cfg
}

func (c *cluster) add(addr string, capacity int, bootstrap string) *Node {
	c.t.Helper()
	cfg := c.config(capacity)
	cfg.OnDeliver = func(d Delivery) {
		c.mu.Lock()
		defer c.mu.Unlock()
		if c.got[addr] == nil {
			c.got[addr] = make(map[string]int)
		}
		c.got[addr][d.MsgID]++
	}
	n, err := NewNode(c.net, addr, cfg)
	if err != nil {
		c.t.Fatal(err)
	}
	if bootstrap == "" {
		if err := n.Bootstrap(); err != nil {
			c.t.Fatal(err)
		}
	} else {
		if err := n.Join(bootstrap); err != nil {
			c.t.Fatalf("join %s: %v", addr, err)
		}
	}
	c.nodes[addr] = n
	return n
}

// grow builds a cluster of size n, joining each node through the first and
// stabilizing after every join.
func (c *cluster) grow(n, capacity int) {
	c.t.Helper()
	c.add("node-0", capacity, "")
	for i := 1; i < n; i++ {
		c.add(fmt.Sprintf("node-%d", i), capacity, "node-0")
		c.stabilizeAll(2)
	}
	c.converge(3)
}

// stabilizeAll runs the given number of global stabilization rounds.
func (c *cluster) stabilizeAll(rounds int) {
	for r := 0; r < rounds; r++ {
		for _, n := range c.live() {
			n.StabilizeOnce()
		}
	}
}

// converge stabilizes and fully refreshes every routing table.
func (c *cluster) converge(rounds int) {
	for r := 0; r < rounds; r++ {
		c.stabilizeAll(1)
		for _, n := range c.live() {
			n.FixAll()
		}
	}
}

func (c *cluster) live() []*Node {
	addrs := make([]string, 0, len(c.nodes))
	for addr, n := range c.nodes {
		if !n.Stopped() {
			addrs = append(addrs, addr)
		}
	}
	sort.Strings(addrs)
	out := make([]*Node, 0, len(addrs))
	for _, addr := range addrs {
		out = append(out, c.nodes[addr])
	}
	return out
}

// sortedByID returns live nodes in ring-identifier order.
func (c *cluster) sortedByID() []*Node {
	nodes := c.live()
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].Self().ID < nodes[j].Self().ID })
	return nodes
}

// checkRing verifies that successor pointers trace the sorted identifier
// ring of live nodes.
func (c *cluster) checkRing() {
	c.t.Helper()
	nodes := c.sortedByID()
	for i, n := range nodes {
		want := nodes[(i+1)%len(nodes)].Self()
		succs := n.SuccessorList()
		if len(succs) == 0 {
			c.t.Fatalf("%s has empty successor list", n.Self().Addr)
		}
		if succs[0].Addr != want.Addr {
			c.t.Fatalf("%s successor = %s, want %s", n.Self().Addr, succs[0].Addr, want.Addr)
		}
	}
}

// deliveries returns how many times addr received msgID.
func (c *cluster) deliveries(addr, msgID string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.got[addr][msgID]
}

// checkExactlyOnce asserts that every live node received msgID exactly once.
func (c *cluster) checkExactlyOnce(msgID string) {
	c.t.Helper()
	for _, n := range c.live() {
		if got := c.deliveries(n.Self().Addr, msgID); got != 1 {
			c.t.Errorf("%s received %s %d times, want exactly once", n.Self().Addr, msgID, got)
		}
	}
}

// spaceForTest returns the identifier space used by hand-built clusters.
func spaceForTest() ring.Space { return ring.MustSpace(16) }
