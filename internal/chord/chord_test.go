package chord

import (
	"math/rand"
	"testing"

	"camcast/internal/ring"
	"camcast/internal/topology"
)

func randomRing(t testing.TB, bits uint, nodes int, seed int64) *topology.Ring {
	t.Helper()
	s := ring.MustSpace(bits)
	rng := rand.New(rand.NewSource(seed))
	seen := make(map[ring.ID]bool, nodes)
	ids := make([]ring.ID, 0, nodes)
	for len(ids) < nodes {
		id := s.Reduce(rng.Uint64())
		if !seen[id] {
			seen[id] = true
			ids = append(ids, id)
		}
	}
	r, err := topology.New(s, ids)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestNewValidation(t *testing.T) {
	r := randomRing(t, 8, 10, 1)
	if _, err := New(nil, 2); err == nil {
		t.Error("nil ring should fail")
	}
	if _, err := New(r, 1); err == nil {
		t.Error("base 1 should fail")
	}
	n, err := New(r, 2)
	if err != nil {
		t.Fatal(err)
	}
	if n.Base() != 2 {
		t.Errorf("Base() = %d", n.Base())
	}
}

// Classic Chord (base 2): fingers of x are x + 2^i for i in [0, b).
func TestFingerIDsClassic(t *testing.T) {
	r, err := topology.New(ring.MustSpace(5), []ring.ID{0, 7, 12, 20, 28})
	if err != nil {
		t.Fatal(err)
	}
	n, err := New(r, 2)
	if err != nil {
		t.Fatal(err)
	}
	pos, _ := r.PosOf(0)
	got := n.FingerIDs(pos)
	want := []ring.ID{1, 2, 4, 8, 16}
	if len(got) != len(want) {
		t.Fatalf("FingerIDs = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("FingerIDs = %v, want %v", got, want)
		}
	}
}

// Base-c fingers match CAM-Chord's neighbor identifiers for uniform c.
func TestFingerIDsBase3(t *testing.T) {
	r, _ := topology.New(ring.MustSpace(5), []ring.ID{0, 15})
	n, _ := New(r, 3)
	pos, _ := r.PosOf(0)
	got := n.FingerIDs(pos)
	want := []ring.ID{1, 2, 3, 6, 9, 18, 27}
	if len(got) != len(want) {
		t.Fatalf("FingerIDs = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("FingerIDs = %v, want %v", got, want)
		}
	}
}

func TestLookupMatchesResponsible(t *testing.T) {
	for _, base := range []int{2, 3, 8} {
		r := randomRing(t, 13, 250, int64(base))
		n, err := New(r, base)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(99))
		for trial := 0; trial < 1500; trial++ {
			from := rng.Intn(r.Len())
			k := r.Space().Reduce(rng.Uint64())
			want := r.Responsible(k)
			got, _ := n.Lookup(from, k)
			if got != want {
				t.Fatalf("base %d: Lookup(k=%d) = node %d, want %d", base, k, got, want)
			}
		}
	}
}

func TestLookupPathLogarithmic(t *testing.T) {
	r := randomRing(t, 19, 2000, 5)
	n, _ := New(r, 2)
	rng := rand.New(rand.NewSource(6))
	var total int
	const trials = 500
	for i := 0; i < trials; i++ {
		_, path := n.Lookup(rng.Intn(r.Len()), r.Space().Reduce(rng.Uint64()))
		total += len(path)
	}
	// log2(2000) ≈ 11; the average Chord path is ~(1/2)·log2 n.
	if avg := float64(total) / trials; avg > 12 {
		t.Errorf("average lookup path %.1f hops is not logarithmic", avg)
	}
}

func TestBuildTreeExactlyOnce(t *testing.T) {
	for _, base := range []int{2, 4, 7} {
		r := randomRing(t, 14, 500, int64(base)*3)
		n, err := New(r, base)
		if err != nil {
			t.Fatal(err)
		}
		for _, src := range []int{0, 100, r.Len() - 1} {
			tree, err := n.BuildTree(src)
			if err != nil {
				t.Fatalf("base %d src %d: %v", base, src, err)
			}
			if err := tree.VerifyComplete(); err != nil {
				t.Fatalf("base %d src %d: %v", base, src, err)
			}
		}
	}
}

// The broadcast tree is unbalanced: with base 2 the source has ~log2 n
// children while deep nodes have few — the property the paper criticizes.
func TestBuildTreeRootDegreeGrowsWithLogN(t *testing.T) {
	r := randomRing(t, 16, 2048, 8)
	n, _ := New(r, 2)
	tree, err := n.BuildTree(0)
	if err != nil {
		t.Fatal(err)
	}
	if d := tree.Degree(0); d < 8 || d > 16 {
		t.Errorf("root degree %d; expected ~log2(2048) = 11", d)
	}
}

// Degree is independent of any capacity notion but bounded by the finger
// count: at most (c-1)·ceil(log_c N) children.
func TestBuildTreeDegreeBoundedByFingers(t *testing.T) {
	r := randomRing(t, 14, 600, 9)
	n, _ := New(r, 4)
	tree, err := n.BuildTree(0)
	if err != nil {
		t.Fatal(err)
	}
	maxFingers := len(n.FingerIDs(0))
	for pos := 0; pos < r.Len(); pos++ {
		if d := tree.Degree(pos); d > maxFingers {
			t.Fatalf("node %d degree %d exceeds finger count %d", pos, d, maxFingers)
		}
	}
}

func TestBuildTreeSingleNode(t *testing.T) {
	r, _ := topology.New(ring.MustSpace(5), []ring.ID{3})
	n, _ := New(r, 2)
	tree, err := n.BuildTree(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := tree.VerifyComplete(); err != nil {
		t.Fatal(err)
	}
}

func TestBuildTreeEverySource(t *testing.T) {
	r := randomRing(t, 12, 120, 10)
	n, _ := New(r, 2)
	for src := 0; src < r.Len(); src++ {
		tree, err := n.BuildTree(src)
		if err != nil {
			t.Fatalf("src %d: %v", src, err)
		}
		if err := tree.VerifyComplete(); err != nil {
			t.Fatalf("src %d: %v", src, err)
		}
	}
}
