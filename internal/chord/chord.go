// Package chord implements the capacity-UNAWARE Chord baseline the paper
// evaluates against (Section 6). To compare systems at equal average degree,
// the baseline is the base-c generalization of Chord: every node — whatever
// its bandwidth — keeps fingers at identifiers
//
//	(x + j·c^i) mod N,  j ∈ [1..c-1],  i ≥ 0,
//
// (classic Chord is c = 2: fingers x + 2^i). Multicast is the broadcast of
// El-Ansary et al. ("Efficient Broadcast in Structured P2P Networks",
// IPTPS'03), reference [10] of the paper: a node forwards the message to
// each of its fingers inside its assigned segment, delegating to each finger
// the sub-segment up to the next finger. Unlike CAM-Chord, the number of
// children is whatever the finger structure dictates — it varies from 1 to
// M−h at depth h, independent of node capacity — which is exactly the
// imbalance Section 3.4 of the paper criticizes.
package chord

import (
	"fmt"
	"sync"

	"camcast/internal/multicast"
	"camcast/internal/ring"
	"camcast/internal/topology"
)

// Network is a base-c Chord overlay over a static membership snapshot.
type Network struct {
	ring *topology.Ring
	base uint64
}

// New builds a Chord network with uniform finger base c >= 2 (c = 2 is
// classic Chord).
func New(r *topology.Ring, base int) (*Network, error) {
	if r == nil {
		return nil, fmt.Errorf("chord: nil ring")
	}
	if base < 2 {
		return nil, fmt.Errorf("chord: base %d must be >= 2", base)
	}
	return &Network{ring: r, base: uint64(base)}, nil
}

// Ring returns the underlying membership snapshot.
func (n *Network) Ring() *topology.Ring { return n.ring }

// Base returns the finger base c.
func (n *Network) Base() int { return int(n.base) }

// FingerIDs enumerates the finger identifiers of the node at ring position
// pos in ascending clockwise order.
func (n *Network) FingerIDs(pos int) []ring.ID {
	s := n.ring.Space()
	x := n.ring.IDAt(pos)
	c := n.base
	out := make([]ring.ID, 0, 32)
	for pow := uint64(1); pow < s.Size(); pow *= c {
		for j := uint64(1); j <= c-1; j++ {
			d := j * pow
			if d >= s.Size() {
				break
			}
			out = append(out, s.Add(x, d))
		}
		if pow > s.Size()/c {
			break
		}
	}
	return out
}

// Lookup resolves the node responsible for identifier k starting at
// position from, via greedy closest-preceding-finger routing.
func (n *Network) Lookup(from int, k ring.ID) (resp int, path []int) {
	s := n.ring.Space()
	x := from
	path = append(path, x)
	for {
		xid := n.ring.IDAt(x)
		if xid == k {
			return x, path
		}
		succ := n.ring.Successor(x)
		if s.InOC(k, xid, n.ring.IDAt(succ)) {
			return succ, path
		}
		_, seq, pow := s.LevelSeq(xid, k, n.base)
		y := s.Add(xid, seq*pow)
		z := n.ring.Responsible(y)
		if z == x {
			return x, path // sparse ring: x itself is responsible for k
		}
		if s.InOC(k, xid, n.ring.IDAt(z)) {
			return z, path
		}
		x = z
		path = append(path, x)
	}
}

// BuildTree runs the El-Ansary broadcast from src: each node covering a
// segment forwards the message to every distinct finger node inside the
// segment, delegating to each the sub-segment that ends just before the
// next finger identifier.
func (n *Network) BuildTree(src int) (*multicast.Tree, error) {
	tree, err := multicast.NewTree(n.ring.Len(), src)
	if err != nil {
		return nil, err
	}
	if err := n.buildInto(tree, src); err != nil {
		return nil, err
	}
	return tree, nil
}

// BuildTreeInto rebuilds the broadcast tree from src into tree, which must
// span exactly Ring().Len() nodes. The tree is Reset first, so a caller can
// reuse one allocation across many sources; see Tree.Reset.
func (n *Network) BuildTreeInto(tree *multicast.Tree, src int) error {
	if tree == nil {
		return fmt.Errorf("chord: nil tree")
	}
	if tree.Len() != n.ring.Len() {
		return fmt.Errorf("chord: tree spans %d nodes, ring has %d", tree.Len(), n.ring.Len())
	}
	if err := tree.Reset(src); err != nil {
		return err
	}
	return n.buildInto(tree, src)
}

// task is one pending broadcast invocation: node must cover (node, k].
type task struct {
	node int
	k    ring.ID
}

// queuePool recycles the per-build work queue across builds, including
// concurrent ones from multiple experiment workers.
var queuePool = sync.Pool{New: func() any { q := make([]task, 0, 1024); return &q }}

// buildInto runs the El-Ansary broadcast; tree must already be rooted at src.
func (n *Network) buildInto(tree *multicast.Tree, src int) error {
	s := n.ring.Space()

	qp := queuePool.Get().(*[]task)
	queue := (*qp)[:0]
	defer func() { *qp = queue[:0]; queuePool.Put(qp) }()
	queue = append(queue, task{node: src, k: s.Sub(n.ring.IDAt(src), 1)})

	for head := 0; head < len(queue); head++ {
		t := queue[head]
		x := t.node
		xid := n.ring.IDAt(x)
		if s.Dist(xid, t.k) == 0 {
			continue
		}

		// Distinct finger nodes inside (x, k], ascending, each paired with
		// the identifier at which its delegated segment ends (exclusive).
		fingerIDs := n.FingerIDs(x)
		type child struct {
			node  int
			limit ring.ID // child covers (childID, limit]
		}
		children := make([]child, 0, len(fingerIDs))
		lastNode := -1
		for _, y := range fingerIDs {
			if !s.InOC(y, xid, t.k) {
				continue
			}
			z := n.ring.Responsible(y)
			if z == x || !s.InOC(n.ring.IDAt(z), xid, t.k) {
				continue
			}
			if z == lastNode {
				continue // several finger identifiers resolve to one node
			}
			children = append(children, child{node: z})
			lastNode = z
		}
		for i := range children {
			if i+1 < len(children) {
				children[i].limit = s.Sub(n.ring.IDAt(children[i+1].node), 1)
			} else {
				children[i].limit = t.k
			}
		}
		for _, ch := range children {
			if err := tree.Deliver(x, ch.node); err != nil {
				return err
			}
			queue = append(queue, task{node: ch.node, k: ch.limit})
		}
	}
	return nil
}
