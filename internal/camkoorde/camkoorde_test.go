package camkoorde

import (
	"math/rand"
	"sort"
	"testing"

	"camcast/internal/ring"
	"camcast/internal/topology"
)

// figure4Nodes is the CAM-Koorde example topology of Figure 4: identifier
// space [0..63].
var figure4Nodes = []ring.ID{1, 4, 9, 12, 18, 21, 25, 30, 35, 36, 37, 41, 46, 50, 57, 61}

func paperNetwork(t testing.TB) *Network {
	t.Helper()
	r, err := topology.New(ring.MustSpace(6), figure4Nodes)
	if err != nil {
		t.Fatal(err)
	}
	caps := make([]int, r.Len())
	for i := range caps {
		caps[i] = 10 // "For simplicity, assume the node capacities are all 10."
	}
	n, err := New(r, caps)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func randomNetwork(t testing.TB, bits uint, nodes, capLo, capHi int, seed int64) *Network {
	t.Helper()
	s := ring.MustSpace(bits)
	rng := rand.New(rand.NewSource(seed))
	seen := make(map[ring.ID]bool, nodes)
	ids := make([]ring.ID, 0, nodes)
	for len(ids) < nodes {
		id := s.Reduce(rng.Uint64())
		if !seen[id] {
			seen[id] = true
			ids = append(ids, id)
		}
	}
	r, err := topology.New(s, ids)
	if err != nil {
		t.Fatal(err)
	}
	caps := make([]int, nodes)
	for i := range caps {
		caps[i] = capLo + rng.Intn(capHi-capLo+1)
	}
	n, err := New(r, caps)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestNewValidation(t *testing.T) {
	r, _ := topology.New(ring.MustSpace(6), []ring.ID{1, 2})
	if _, err := New(nil, nil); err == nil {
		t.Error("nil ring should fail")
	}
	if _, err := New(r, []int{4}); err == nil {
		t.Error("capacity count mismatch should fail")
	}
	if _, err := New(r, []int{4, 3}); err == nil {
		t.Error("capacity below 4 should fail")
	}
}

// TestGroupsPaperExample checks the three neighbor groups of node 36
// (100100, capacity 10) against Section 4.1's worked example.
func TestGroupsPaperExample(t *testing.T) {
	n := paperNetwork(t)
	pos, ok := n.Ring().PosOf(36)
	if !ok {
		t.Fatal("node 36 missing")
	}
	basic, second, third := n.Groups(pos)

	wantBasic := []ring.ID{35, 37, 18, 50}
	if len(basic) != 4 {
		t.Fatalf("basic group %v", basic)
	}
	for i, w := range wantBasic {
		if basic[i] != w {
			t.Fatalf("basic group %v, want %v", basic, wantBasic)
		}
	}

	wantSecond := []ring.ID{9, 25, 41, 57}
	if len(second) != 4 {
		t.Fatalf("second group %v, want %v", second, wantSecond)
	}
	sort.Slice(second, func(i, j int) bool { return second[i] < second[j] })
	for i, w := range wantSecond {
		if second[i] != w {
			t.Fatalf("second group %v, want %v", second, wantSecond)
		}
	}

	wantThird := []ring.ID{4, 12}
	if len(third) != 2 {
		t.Fatalf("third group %v, want %v", third, wantThird)
	}
	sort.Slice(third, func(i, j int) bool { return third[i] < third[j] })
	for i, w := range wantThird {
		if third[i] != w {
			t.Fatalf("third group %v, want %v", third, wantThird)
		}
	}
}

// Capacity exactly 4 yields only the basic group; 5..7 add third-group
// neighbors only (s <= 1 means t = 0); 8 adds a full second group.
func TestGroupSizesByCapacity(t *testing.T) {
	s := ring.MustSpace(10)
	rng := rand.New(rand.NewSource(1))
	ids := make([]ring.ID, 0, 64)
	seen := map[ring.ID]bool{}
	for len(ids) < 64 {
		id := s.Reduce(rng.Uint64())
		if !seen[id] {
			seen[id] = true
			ids = append(ids, id)
		}
	}
	r, _ := topology.New(s, ids)

	tests := []struct {
		capacity   int
		wantSecond int
		wantThird  int
	}{
		{4, 0, 0},
		{5, 0, 1},
		{6, 0, 2},
		{7, 0, 3},
		{8, 4, 0},
		{9, 4, 1},
		{10, 4, 2},
		{12, 8, 0},
		{20, 16, 0},
		{21, 16, 1},
	}
	for _, tt := range tests {
		caps := make([]int, r.Len())
		for i := range caps {
			caps[i] = tt.capacity
		}
		n, err := New(r, caps)
		if err != nil {
			t.Fatal(err)
		}
		_, second, third := n.Groups(0)
		if len(second) != tt.wantSecond || len(third) != tt.wantThird {
			t.Errorf("capacity %d: groups sized (%d,%d), want (%d,%d)",
				tt.capacity, len(second), len(third), tt.wantSecond, tt.wantThird)
		}
		// Total identifier count never exceeds the capacity.
		if got := 4 + len(second) + len(third); got > tt.capacity {
			t.Errorf("capacity %d: %d neighbor identifiers exceed capacity", tt.capacity, got)
		}
	}
}

func TestNeighborNodesDistinctAndBounded(t *testing.T) {
	n := randomNetwork(t, 14, 300, 4, 20, 2)
	for pos := 0; pos < n.Ring().Len(); pos++ {
		nodes := n.NeighborNodes(pos)
		if len(nodes) > n.Capacity(pos) {
			t.Fatalf("node %d has %d neighbors, capacity %d", pos, len(nodes), n.Capacity(pos))
		}
		seen := map[int]bool{}
		for _, p := range nodes {
			if p == pos {
				t.Fatalf("node %d lists itself as neighbor", pos)
			}
			if seen[p] {
				t.Fatalf("node %d lists neighbor %d twice", pos, p)
			}
			seen[p] = true
		}
	}
}

// Neighbors should spread across the ring (the point of right-shifting):
// for a node with a large capacity, neighbor identifiers should cover many
// distinct quarters of the identifier space.
func TestNeighborSpread(t *testing.T) {
	n := randomNetwork(t, 16, 500, 32, 32, 3)
	s := n.Ring().Space()
	quarter := s.Size() / 4
	spread := 0
	for pos := 0; pos < 50; pos++ {
		_, second, _ := n.Groups(pos)
		quarters := map[uint64]bool{}
		for _, id := range second {
			quarters[id/quarter] = true
		}
		if len(quarters) == 4 {
			spread++
		}
	}
	if spread < 45 {
		t.Errorf("second-group neighbors covered all quarters for only %d/50 nodes", spread)
	}
}

func TestLookupPaperTopology(t *testing.T) {
	n := paperNetwork(t)
	r := n.Ring()
	for from := 0; from < r.Len(); from++ {
		for k := ring.ID(0); k < 64; k++ {
			want := r.Responsible(k)
			got, path := n.Lookup(from, k)
			if got != want {
				t.Fatalf("Lookup(from=%d, k=%d) = node %d, want %d (path %v)",
					r.IDAt(from), k, r.IDAt(got), r.IDAt(want), path)
			}
		}
	}
}

func TestLookupMatchesResponsibleRandom(t *testing.T) {
	n := randomNetwork(t, 13, 200, 4, 12, 4)
	r := n.Ring()
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 2000; trial++ {
		from := rng.Intn(r.Len())
		k := r.Space().Reduce(rng.Uint64())
		want := r.Responsible(k)
		got, _ := n.Lookup(from, k)
		if got != want {
			t.Fatalf("Lookup(from=%d, k=%d) = node %d, want node %d",
				r.IDAt(from), k, r.IDAt(got), r.IDAt(want))
		}
	}
}

func TestLookupSingleAndTwoNodes(t *testing.T) {
	s := ring.MustSpace(6)
	r1, _ := topology.New(s, []ring.ID{9})
	n1, err := New(r1, []int{4})
	if err != nil {
		t.Fatal(err)
	}
	if resp, _ := n1.Lookup(0, 40); resp != 0 {
		t.Error("single-node lookup should return the node itself")
	}

	r2, _ := topology.New(s, []ring.ID{9, 40})
	n2, err := New(r2, []int{4, 4})
	if err != nil {
		t.Fatal(err)
	}
	for from := 0; from < 2; from++ {
		for _, k := range []ring.ID{0, 9, 10, 40, 41, 63} {
			want := r2.Responsible(k)
			if got, _ := n2.Lookup(from, k); got != want {
				t.Fatalf("two-node Lookup(from=%d,k=%d) = %d, want %d", from, k, got, want)
			}
		}
	}
}

// TestBuildTreePaperExample reproduces the Figure 5 multicast: node 36
// forwards to all ten of its neighbors (9, 12, 18, 25, 35, 37, 41, 50, 57
// and 4), and every remaining member receives the message within one more
// hop.
func TestBuildTreePaperExample(t *testing.T) {
	n := paperNetwork(t)
	r := n.Ring()
	src, _ := r.PosOf(36)
	tree, _, err := n.BuildTree(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := tree.VerifyComplete(); err != nil {
		t.Fatal(err)
	}

	want := map[ring.ID]bool{9: true, 12: true, 18: true, 25: true, 35: true,
		37: true, 41: true, 50: true, 57: true, 4: true}
	kids := tree.Children(src)
	if len(kids) != len(want) {
		t.Fatalf("root has %d children, want %d", len(kids), len(want))
	}
	for _, c := range kids {
		if !want[r.IDAt(c)] {
			t.Errorf("unexpected root child %d", r.IDAt(c))
		}
	}
	if tree.MaxDepth() != 2 {
		t.Errorf("MaxDepth = %d, want 2", tree.MaxDepth())
	}
}

func TestBuildTreeExactlyOnceRandom(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		n := randomNetwork(t, 14, 400, 4, 12, seed)
		src := int(seed) % n.Ring().Len()
		tree, _, err := n.BuildTree(src)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := tree.VerifyComplete(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestBuildTreeDegreeBound(t *testing.T) {
	n := randomNetwork(t, 14, 600, 4, 15, 9)
	tree, _, err := n.BuildTree(0)
	if err != nil {
		t.Fatal(err)
	}
	for pos := 0; pos < n.Ring().Len(); pos++ {
		if d := tree.Degree(pos); d > n.Capacity(pos) {
			t.Fatalf("node %d has %d children, capacity %d", pos, d, n.Capacity(pos))
		}
	}
}

func TestBuildTreeEverySource(t *testing.T) {
	n := randomNetwork(t, 12, 120, 4, 8, 6)
	for src := 0; src < n.Ring().Len(); src++ {
		tree, _, err := n.BuildTree(src)
		if err != nil {
			t.Fatalf("src %d: %v", src, err)
		}
		if err := tree.VerifyComplete(); err != nil {
			t.Fatalf("src %d: %v", src, err)
		}
	}
}

func TestBuildTreeReportsRedundantOffers(t *testing.T) {
	n := paperNetwork(t)
	_, redundant, err := n.BuildTree(0)
	if err != nil {
		t.Fatal(err)
	}
	if redundant == 0 {
		t.Error("flooding over a dense digraph should suppress some duplicate offers")
	}
}
