// Package camkoorde implements CAM-Koorde (Section 4 of the paper): a
// capacity-aware de Bruijn-style overlay in which node x keeps exactly c_x
// neighbors, derived by shifting x to the RIGHT and replacing high-order
// bits — the opposite of Koorde's left shift. Right-shifting spreads a
// node's neighbors evenly around the identifier ring, which is what makes
// the flooded multicast trees balanced.
//
// Neighbor identifiers of node x with capacity c_x >= 4 over N = 2^b
// (Section 4.1):
//
//   - basic group (4): predecessor(x), successor(x), and the nodes
//     responsible for x/2 and 2^{b-1} + x/2;
//   - second group: s = ⌊log2(c_x - 4)⌋; if s > 1, t = 2^s identifiers
//     i·2^{b-s} + x/2^s for i ∈ [0, t); otherwise t = 0;
//   - third group: t' = c_x - 4 - t, s' = s + 1, identifiers
//     i·2^{b-s'} + x/2^{s'} for i ∈ [0, t').
//
// Lookup (Section 4.2) forwards along neighbors sharing progressively more
// "ps-common" bits with the target (prefix of the node id matching a suffix
// of the target id). Multicast (Section 4.3) floods: a node forwards the
// message to every neighbor that has not already received it; the dedup
// handshake makes the result an implicit tree (a BFS tree of the neighbor
// digraph rooted at the source).
package camkoorde

import (
	"fmt"
	"sync"

	"camcast/internal/multicast"
	"camcast/internal/ring"
	"camcast/internal/topology"
)

// MinCapacity is the smallest capacity CAM-Koorde supports: the basic
// neighbor group alone has four members (Section 4.1).
const MinCapacity = 4

// Network is a CAM-Koorde overlay over a static membership snapshot.
type Network struct {
	ring *topology.Ring
	caps []int
}

// New builds a CAM-Koorde network over the given ring. caps[i] is the
// capacity of the node at ring position i and must be >= MinCapacity.
func New(r *topology.Ring, caps []int) (*Network, error) {
	if r == nil {
		return nil, fmt.Errorf("camkoorde: nil ring")
	}
	if len(caps) != r.Len() {
		return nil, fmt.Errorf("camkoorde: %d capacities for %d nodes", len(caps), r.Len())
	}
	owned := make([]int, len(caps))
	copy(owned, caps)
	for i, c := range owned {
		if c < MinCapacity {
			return nil, fmt.Errorf("camkoorde: node %d capacity %d below minimum %d", i, c, MinCapacity)
		}
	}
	return &Network{ring: r, caps: owned}, nil
}

// Ring returns the underlying membership snapshot.
func (n *Network) Ring() *topology.Ring { return n.ring }

// Capacity returns the capacity of the node at ring position pos.
func (n *Network) Capacity(pos int) int { return n.caps[pos] }

// Groups returns the three neighbor identifier groups of the node at ring
// position pos, before resolution to physical nodes. The basic group is
// returned as the identifiers of the predecessor and successor *nodes* plus
// the two de Bruijn identifiers x/2 and 2^{b-1}+x/2.
func (n *Network) Groups(pos int) (basic, second, third []ring.ID) {
	s := n.ring.Space()
	x := n.ring.IDAt(pos)
	c := n.caps[pos]

	basic = []ring.ID{
		n.ring.IDAt(n.ring.Predecessor(pos)),
		n.ring.IDAt(n.ring.Successor(pos)),
		s.Shr(x, 1),
		s.Add(s.Half(), s.Shr(x, 1)),
	}

	remaining := c - 4
	if remaining <= 0 {
		return basic, nil, nil
	}
	shift := ring.Log2Floor(uint64(remaining)) // s = ⌊log2(c-4)⌋
	t := 0
	if shift > 1 {
		t = 1 << shift
		second = make([]ring.ID, 0, t)
		for i := 0; i < t; i++ {
			second = append(second, s.TopBits(uint64(i), shift)|s.Shr(x, shift))
		}
	}
	tPrime := remaining - t
	if tPrime > 0 {
		sPrime := shift + 1
		third = make([]ring.ID, 0, tPrime)
		for i := 0; i < tPrime; i++ {
			third = append(third, s.TopBits(uint64(i), sPrime)|s.Shr(x, sPrime))
		}
	}
	return basic, second, third
}

// NeighborNodes resolves the node's neighbor identifiers to distinct ring
// positions, excluding the node itself. Identifiers in the second and third
// groups resolve through "the node responsible for" (successor) semantics.
func (n *Network) NeighborNodes(pos int) []int {
	return n.AppendNeighborNodes(make([]int, 0, n.caps[pos]), pos)
}

// AppendNeighborNodes appends the node's distinct neighbor positions
// (excluding pos itself) to dst and returns the extended slice. It is the
// allocation-lean core of NeighborNodes: the three identifier groups of
// Section 4.1 are resolved on the fly, and duplicates are removed by
// scanning the appended window (at most c_x entries), so a flood can reuse
// one buffer across the whole build instead of allocating a map and four
// slices per visited node.
func (n *Network) AppendNeighborNodes(dst []int, pos int) []int {
	start := len(dst)
	add := func(p int) {
		if p == pos {
			return
		}
		for _, q := range dst[start:] {
			if q == p {
				return
			}
		}
		dst = append(dst, p)
	}
	s := n.ring.Space()
	x := n.ring.IDAt(pos)
	// Basic group: predecessor and successor are nodes already; the two
	// de Bruijn identifiers resolve through Responsible.
	add(n.ring.Predecessor(pos))
	add(n.ring.Successor(pos))
	add(n.ring.Responsible(s.Shr(x, 1)))
	add(n.ring.Responsible(s.Add(s.Half(), s.Shr(x, 1))))
	remaining := n.caps[pos] - 4
	if remaining > 0 {
		shift := ring.Log2Floor(uint64(remaining)) // s = ⌊log2(c-4)⌋
		t := 0
		if shift > 1 {
			t = 1 << shift
			for i := 0; i < t; i++ {
				add(n.ring.Responsible(s.TopBits(uint64(i), shift) | s.Shr(x, shift)))
			}
		}
		sPrime := shift + 1
		for i := 0; i < remaining-t; i++ {
			add(n.ring.Responsible(s.TopBits(uint64(i), sPrime) | s.Shr(x, sPrime)))
		}
	}
	return dst
}

// Lookup resolves the node responsible for identifier k starting from the
// node at position from, per the LOOKUP routine of Section 4.2. As the
// paper prescribes for sparse rings ("we still calculate the chain of
// neighbor identifiers in the above way, which essentially transforms
// identifier x to identifier k in a series of steps, each step adding one
// or more bits from k"), the routing state is the calculated identifier
// chain itself: each hop shifts the next group of k's bits into the
// imaginary identifier from the left — preferring the third group's wider
// shift, then the second group's, then the basic group's single bit — and
// forwards to the node responsible for the result. After all b bits are
// injected the imaginary identifier IS k and the current node is
// responsible for it. Carrying the calculated identifier (rather than
// re-deriving it from each hop's resolved node id) is what keeps the chain
// immune to sparse-ring resolution drift.
//
// Returns the responsible node's position and the forwarding path
// (starting node included).
func (n *Network) Lookup(from int, k ring.ID) (resp int, path []int) {
	s := n.ring.Space()
	b := s.Bits()
	x := from
	path = append(path, x)
	img := n.ring.IDAt(x) // the calculated (imaginary) identifier
	injected := uint(0)   // how many of k's bits have been shifted in

	for hops := uint(0); hops <= b+2; hops++ {
		xid := n.ring.IDAt(x)
		pred := n.ring.Predecessor(x)
		succ := n.ring.Successor(x)
		// Lines 1-4: x or its successor responsible?
		if n.ring.Len() == 1 || s.InOC(k, n.ring.IDAt(pred), xid) {
			return x, path
		}
		if s.InOC(k, xid, n.ring.IDAt(succ)) {
			return succ, path
		}
		if injected >= b {
			break // chain exhausted (safety net; the landing above fires first)
		}

		shift, v := n.nextShift(x, k, injected, b)
		img = s.TopBits(v, shift) | s.Shr(img, shift)
		injected += shift
		x = n.ring.Responsible(img)
		path = append(path, x)
	}

	// Defensive monotone finish: walk clockwise through the best preceding
	// neighbor. Unreachable in practice — the imaginary chain lands exactly
	// on responsible(k) — but it keeps Lookup total for any inputs.
	for {
		xid := n.ring.IDAt(x)
		pred := n.ring.Predecessor(x)
		succ := n.ring.Successor(x)
		if s.InOC(k, n.ring.IDAt(pred), xid) {
			return x, path
		}
		if s.InOC(k, xid, n.ring.IDAt(succ)) {
			return succ, path
		}
		next := succ
		bestDist := s.Dist(n.ring.IDAt(succ), k)
		for _, p := range n.NeighborNodes(x) {
			pid := n.ring.IDAt(p)
			if !s.InOC(pid, xid, k) {
				continue
			}
			if d := s.Dist(pid, k); d < bestDist {
				next, bestDist = p, d
			}
		}
		x = next
		path = append(path, x)
	}
}

// nextShift picks the widest neighbor-group shift available at node x for
// the next bits of k; see NextShift.
func (n *Network) nextShift(x int, k ring.ID, injected, b uint) (shift uint, v uint64) {
	_, shift, v = NextShift(n.caps[x], k, injected, b)
	return shift, v
}

// Group identifies which of the Section 4.1 neighbor groups one digit-shift
// step travels through; callers map it onto however they index their
// neighbor tables (the live runtime keys slots by (group, pattern)).
type Group int

// The three CAM-Koorde neighbor groups.
const (
	GroupBasic  Group = iota // x/2 and 2^{b-1}+x/2: shift 1, patterns {0,1}
	GroupSecond              // shift s = ⌊log2(c-4)⌋, all 2^s patterns
	GroupThird               // shift s+1, patterns below t' = c-4-2^s
)

// NextShift is one digit-shift step of the Section 4.2 LOOKUP chain for a
// node of capacity c: given that `injected` of target k's bits (counting
// from bit 0 upward) have already been shifted into the imaginary
// identifier, it picks the widest neighbor-group shift the capacity affords
// (third -> second -> basic preference), clamped so the chain never injects
// past b bits. It returns the group taken, the shift width, and the bit
// pattern v to place in the top bits: the caller advances its imaginary
// identifier img to TopBits(v, shift) | Shr(img, shift) and forwards to the
// neighbor holding that identifier. Callers that only want to resolve the
// top T bits of k (the live runtime's truncated routing cursor) call with
// injected = b - left, where left <= T counts the bits still to inject.
func NextShift(c int, k ring.ID, injected, b uint) (g Group, shift uint, v uint64) {
	remaining := b - injected
	bits := func(width uint) uint64 {
		return (k >> injected) & ((uint64(1) << width) - 1)
	}

	if extra := c - 4; extra > 0 {
		s2 := ring.Log2Floor(uint64(extra)) // second-group shift
		t := 0
		if s2 > 1 {
			t = 1 << s2
		}
		tPrime := extra - t
		// Third group: shift s2+1, but only patterns below t' exist.
		if s3 := s2 + 1; tPrime > 0 && s3 <= remaining {
			if want := bits(s3); want < uint64(tPrime) {
				return GroupThird, s3, want
			}
		}
		// Second group: shift s2, all 2^s2 patterns exist.
		if t > 0 && s2 <= remaining {
			return GroupSecond, s2, bits(s2)
		}
	}
	// Basic group: x/2 and 2^{b-1}+x/2 shift one bit with patterns {0, 1}.
	return GroupBasic, 1, bits(1)
}

// BuildTree runs the flooding MULTICAST routine of Section 4.3 from the
// source at ring position src: every node, upon first receiving the message,
// forwards it to each of its neighbors that has not yet received it. The
// implicit tree is therefore the BFS tree of the neighbor digraph rooted at
// the source. The returned redundant count is the number of suppressed
// duplicate offers (forwards that the dedup handshake stopped), a measure of
// the control overhead the paper calls "negligible when the message is
// large".
func (n *Network) BuildTree(src int) (tree *multicast.Tree, redundant int, err error) {
	tree, err = multicast.NewTree(n.ring.Len(), src)
	if err != nil {
		return nil, 0, err
	}
	redundant, err = n.flood(tree, src)
	if err != nil {
		return nil, 0, err
	}
	return tree, redundant, nil
}

// BuildTreeInto rebuilds the flood tree from src into tree, which must span
// exactly Ring().Len() nodes. The tree is Reset first, so a caller can reuse
// one allocation across many sources; see Tree.Reset.
func (n *Network) BuildTreeInto(tree *multicast.Tree, src int) (redundant int, err error) {
	if tree == nil {
		return 0, fmt.Errorf("camkoorde: nil tree")
	}
	if tree.Len() != n.ring.Len() {
		return 0, fmt.Errorf("camkoorde: tree spans %d nodes, ring has %d", tree.Len(), n.ring.Len())
	}
	if err := tree.Reset(src); err != nil {
		return 0, err
	}
	return n.flood(tree, src)
}

// floodScratch recycles the BFS queue and the neighbor buffer across builds,
// including concurrent ones from multiple experiment workers.
var floodScratch = sync.Pool{New: func() any { return &struct{ queue, nbuf []int }{} }}

// flood runs the BFS over the neighbor digraph; tree must already be rooted
// at src.
func (n *Network) flood(tree *multicast.Tree, src int) (redundant int, err error) {
	sc := floodScratch.Get().(*struct{ queue, nbuf []int })
	queue := sc.queue[:0]
	defer func() { sc.queue = queue[:0]; floodScratch.Put(sc) }()
	queue = append(queue, src)
	for head := 0; head < len(queue); head++ {
		x := queue[head]
		sc.nbuf = n.AppendNeighborNodes(sc.nbuf[:0], x)
		for _, p := range sc.nbuf {
			if tree.Received(p) {
				redundant++
				continue
			}
			if err := tree.Deliver(x, p); err != nil {
				return 0, err
			}
			queue = append(queue, p)
		}
	}
	return redundant, nil
}
