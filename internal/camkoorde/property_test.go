package camkoorde

import (
	"math/rand"
	"testing"
	"testing/quick"

	"camcast/internal/ring"
	"camcast/internal/topology"
)

func networkFromSeed(seed int64) (*Network, int, error) {
	rng := rand.New(rand.NewSource(seed))
	s := ring.MustSpace(uint(8 + rng.Intn(8)))
	n := 2 + rng.Intn(120)
	if uint64(n) > s.Size()/2 {
		n = int(s.Size() / 2)
	}
	seen := make(map[ring.ID]bool, n)
	idList := make([]ring.ID, 0, n)
	for len(idList) < n {
		id := s.Reduce(rng.Uint64())
		if !seen[id] {
			seen[id] = true
			idList = append(idList, id)
		}
	}
	r, err := topology.New(s, idList)
	if err != nil {
		return nil, 0, err
	}
	caps := make([]int, n)
	for i := range caps {
		caps[i] = 4 + rng.Intn(30)
	}
	net, err := New(r, caps)
	if err != nil {
		return nil, 0, err
	}
	return net, rng.Intn(n), nil
}

// Property: flooding reaches every member exactly once from any source over
// any membership/capacity draw, and no node forwards beyond its capacity.
func TestQuickFloodInvariants(t *testing.T) {
	f := func(seed int64) bool {
		net, src, err := networkFromSeed(seed)
		if err != nil {
			t.Logf("seed %d: setup: %v", seed, err)
			return false
		}
		tree, _, err := net.BuildTree(src)
		if err != nil {
			t.Logf("seed %d: build: %v", seed, err)
			return false
		}
		if err := tree.VerifyComplete(); err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		for pos := 0; pos < net.Ring().Len(); pos++ {
			if tree.Degree(pos) > net.Capacity(pos) {
				t.Logf("seed %d: node %d degree %d > capacity %d",
					seed, pos, tree.Degree(pos), net.Capacity(pos))
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: the neighbor identifier groups always comprise at most c_x
// identifiers, with the documented group sizes (Section 4.1).
func TestQuickGroupSizes(t *testing.T) {
	f := func(seed int64) bool {
		net, pos, err := networkFromSeed(seed)
		if err != nil {
			return false
		}
		basic, second, third := net.Groups(pos)
		c := net.Capacity(pos)
		if len(basic) != 4 {
			return false
		}
		if len(second) != 0 && len(second)&(len(second)-1) != 0 {
			return false // second group size must be a power of two (2^s)
		}
		return 4+len(second)+len(third) <= c
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: lookup agrees with the global successor function.
func TestQuickLookupMatchesResponsible(t *testing.T) {
	f := func(seed int64, rawK uint64) bool {
		net, from, err := networkFromSeed(seed)
		if err != nil {
			return false
		}
		k := net.Ring().Space().Reduce(rawK)
		got, _ := net.Lookup(from, k)
		return got == net.Ring().Responsible(k)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}
