package timing

import "time"

// Wheel is a hierarchical timer wheel: four levels of 64 slots each, at a
// fixed tick granularity. Scheduling and firing a timer are O(1) amortized
// (an entry cascades down at most once per level), which is what lets one
// wheel carry a deadline per live member — or per in-flight RPC — where a
// time.Timer each would mean a runtime timer-heap operation per event.
//
// Keys are opaque uint64s chosen by the caller. The wheel never cancels:
// callers encode a generation in the key and filter stale keys in the fire
// callback (lazy cancellation), so removal costs nothing at all.
//
// Time is int64 nanoseconds (time.Time.UnixNano). The wheel rounds
// deadlines down to its tick; a timer never fires before its deadline's
// tick and fires no later than one tick after it. A Wheel is not safe for
// concurrent use; callers serialize access (each scheduler shard and the
// transport sweeper own a private wheel under their own lock).
type Wheel struct {
	tick int64 // nanoseconds per tick
	cur  int64 // current tick number; slots at or before cur have fired

	level    [wheelLevels][wheelSlots][]wheelEntry
	overflow []wheelEntry // deadlines beyond the top level's horizon
	pending  int
}

const (
	wheelLevelBits = 6
	wheelSlots     = 1 << wheelLevelBits
	wheelLevels    = 4
)

type wheelEntry struct {
	at  int64 // due tick
	key uint64
}

// NewWheel returns a wheel with the given tick granularity, positioned at
// now (nanoseconds). Non-positive ticks default to one millisecond.
func NewWheel(tick time.Duration, now int64) *Wheel {
	if tick <= 0 {
		tick = time.Millisecond
	}
	return &Wheel{tick: int64(tick), cur: now / int64(tick)}
}

// Schedule arms key to fire at time at (nanoseconds). A deadline at or
// before the wheel's current position fires on the next Advance. The same
// key may be armed multiple times; each arming fires once.
func (w *Wheel) Schedule(key uint64, at int64) {
	t := at / w.tick
	if t <= w.cur {
		t = w.cur + 1
	}
	w.place(wheelEntry{at: t, key: key})
	w.pending++
}

// place files an entry into the level whose span covers its remaining
// delay. Entries due now land in the slot Advance is about to process.
func (w *Wheel) place(e wheelEntry) {
	d := e.at - w.cur
	if d < 1 {
		idx := w.cur & (wheelSlots - 1)
		w.level[0][idx] = append(w.level[0][idx], e)
		return
	}
	for l := 0; l < wheelLevels; l++ {
		if d < 1<<uint((l+1)*wheelLevelBits) {
			idx := (e.at >> uint(l*wheelLevelBits)) & (wheelSlots - 1)
			w.level[l][idx] = append(w.level[l][idx], e)
			return
		}
	}
	w.overflow = append(w.overflow, e)
}

// Advance moves the wheel to time now (nanoseconds), invoking fire for
// every armed key whose deadline has passed, in tick order. With nothing
// pending the move is O(1) regardless of how far now jumped.
func (w *Wheel) Advance(now int64, fire func(key uint64)) {
	target := now / w.tick
	for w.cur < target {
		if w.pending == 0 {
			w.cur = target
			return
		}
		w.cur++
		w.cascade()
		slot := &w.level[0][w.cur&(wheelSlots-1)]
		if len(*slot) == 0 {
			continue
		}
		entries := *slot
		*slot = entries[:0]
		for _, e := range entries {
			w.pending--
			fire(e.key)
		}
	}
}

// cascade re-files upper-level slots whose span the wheel just entered, so
// their entries land in finer levels (or fire this tick).
func (w *Wheel) cascade() {
	for l := 1; l < wheelLevels; l++ {
		if w.cur&(1<<uint(l*wheelLevelBits)-1) != 0 {
			return
		}
		idx := (w.cur >> uint(l*wheelLevelBits)) & (wheelSlots - 1)
		slot := &w.level[l][idx]
		entries := *slot
		*slot = entries[:0]
		for _, e := range entries {
			w.place(e)
		}
	}
	if w.cur&(1<<uint(wheelLevels*wheelLevelBits)-1) == 0 && len(w.overflow) != 0 {
		entries := w.overflow
		w.overflow = entries[:0]
		for _, e := range entries {
			w.place(e)
		}
	}
}

// Next returns a lower bound (nanoseconds) on the earliest pending
// deadline: no timer fires before it, so a caller may sleep until then.
// The bound is exact for deadlines within the finest level (the next 64
// ticks) and conservative — early by at most one slot span — further out.
// ok is false when nothing is pending.
func (w *Wheel) Next() (at int64, ok bool) {
	if w.pending == 0 {
		return 0, false
	}
	best := int64(-1)
	// Level 0: slot order is due order, so the first occupied slot is exact.
	for i := int64(1); i <= wheelSlots; i++ {
		t := w.cur + i
		if len(w.level[0][t&(wheelSlots-1)]) != 0 {
			best = t
			break
		}
	}
	// Upper levels: the first occupied slot's span start bounds its entries.
	for l := 1; l < wheelLevels; l++ {
		span := int64(1) << uint(l*wheelLevelBits)
		block := w.cur >> uint(l*wheelLevelBits)
		for i := int64(1); i <= wheelSlots; i++ {
			b := block + i
			if len(w.level[l][b&(wheelSlots-1)]) == 0 {
				continue
			}
			start := b * span
			if start <= w.cur {
				start = w.cur + 1
			}
			if best < 0 || start < best {
				best = start
			}
			break
		}
	}
	if len(w.overflow) != 0 {
		min := w.overflow[0].at
		for _, e := range w.overflow[1:] {
			if e.at < min {
				min = e.at
			}
		}
		if best < 0 || min < best {
			best = min
		}
	}
	if best < 0 {
		// Pending entries exist but every slot scan missed them; fall back
		// to the next tick (defensive — should be unreachable).
		best = w.cur + 1
	}
	return best * w.tick, true
}

// Len returns the number of armed (not yet fired) entries, including any
// the caller considers canceled.
func (w *Wheel) Len() int { return w.pending }
