// Package timing provides the time sources and timer plumbing shared by the
// scale-oriented runtime machinery: a Clock abstraction over wall time and a
// manually advanced virtual clock (simulation and deterministic replay run
// on virtual time; TCP deployments run on wall time), plus a hierarchical
// timer wheel that amortizes many timers into O(1) bookkeeping per timer —
// the sharded maintenance scheduler and the transport's deadline sweeper
// both run off one wheel instead of a time.Timer per member or per call.
package timing

import (
	"sync/atomic"
	"time"
)

// Clock is a time source. Implementations must be safe for concurrent use.
type Clock interface {
	Now() time.Time
}

type wallClock struct{}

func (wallClock) Now() time.Time { return time.Now() }

// Wall returns the process wall clock.
func Wall() Clock { return wallClock{} }

// Virtual is a clock that only moves when told to. Simulations advance it
// between maintenance rounds so 100k members' worth of "one second passes"
// costs one atomic add, and replays advance it deterministically so no
// outcome depends on how fast the host executes.
type Virtual struct {
	ns atomic.Int64
}

// NewVirtual returns a virtual clock reading start.
func NewVirtual(start time.Time) *Virtual {
	v := &Virtual{}
	v.ns.Store(start.UnixNano())
	return v
}

// Now returns the clock's current reading.
func (v *Virtual) Now() time.Time { return time.Unix(0, v.ns.Load()) }

// Advance moves the clock forward by d and returns the new reading.
// Negative d is ignored.
func (v *Virtual) Advance(d time.Duration) time.Time {
	if d < 0 {
		d = 0
	}
	return time.Unix(0, v.ns.Add(int64(d)))
}
