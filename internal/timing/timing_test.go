package timing

import (
	"math/rand"
	"sort"
	"testing"
	"time"
)

func TestVirtualClockAdvances(t *testing.T) {
	v := NewVirtual(time.Unix(100, 0))
	if got := v.Now().UnixNano(); got != 100*int64(time.Second) {
		t.Fatalf("start = %d", got)
	}
	v.Advance(250 * time.Millisecond)
	if got := v.Now().UnixNano(); got != 100*int64(time.Second)+int64(250*time.Millisecond) {
		t.Fatalf("after advance = %d", got)
	}
	v.Advance(-time.Hour) // negative advances are ignored, time never rewinds
	if got := v.Now().UnixNano(); got != 100*int64(time.Second)+int64(250*time.Millisecond) {
		t.Fatalf("after negative advance = %d", got)
	}
}

func TestWallClockMoves(t *testing.T) {
	c := Wall()
	a := c.Now()
	b := c.Now()
	if b.Before(a) {
		t.Fatalf("wall clock went backwards: %v then %v", a, b)
	}
}

// fireLog collects fired keys with the wheel position they fired at.
type fireLog struct {
	w    *Wheel
	tick int64
	got  map[uint64]int64
}

func (f *fireLog) advance(now int64) {
	f.w.Advance(now, func(key uint64) {
		if _, dup := f.got[key]; dup {
			panic("key fired twice")
		}
		f.got[key] = now
	})
}

func TestWheelFiresInOrderAndOnTime(t *testing.T) {
	const tick = int64(time.Millisecond)
	w := NewWheel(time.Millisecond, 0)

	// Deadlines across all four levels plus overflow.
	deadlines := []int64{
		1, 3, 63, 64, 65, 100, 4095, 4096, 5000,
		260000, 262144, 300000, 16_000_000, 17_000_000, 20_000_000,
	}
	for i, d := range deadlines {
		w.Schedule(uint64(i), d*tick)
	}
	if w.Len() != len(deadlines) {
		t.Fatalf("Len = %d, want %d", w.Len(), len(deadlines))
	}

	var order []uint64
	fired := map[uint64]int64{}
	// Advance one tick at a time and record the exact firing tick.
	for now := int64(1); now <= 21_000_000; now++ {
		w.Advance(now*tick, func(key uint64) {
			order = append(order, key)
			fired[key] = now
		})
		if len(fired) == len(deadlines) {
			break
		}
	}
	for i, d := range deadlines {
		at, ok := fired[uint64(i)]
		if !ok {
			t.Fatalf("key %d (deadline tick %d) never fired", i, d)
		}
		if at != d {
			t.Errorf("key %d fired at tick %d, want %d", i, at, d)
		}
	}
	if !sort.SliceIsSorted(order, func(i, j int) bool {
		return deadlines[order[i]] < deadlines[order[j]]
	}) {
		t.Errorf("fire order %v not sorted by deadline", order)
	}
	if w.Len() != 0 {
		t.Errorf("Len = %d after everything fired", w.Len())
	}
}

func TestWheelBigJumpFiresEverything(t *testing.T) {
	const tick = int64(time.Millisecond)
	w := NewWheel(time.Millisecond, 0)
	rng := rand.New(rand.NewSource(7))
	want := map[uint64]int64{}
	for i := 0; i < 500; i++ {
		d := 1 + rng.Int63n(1_000_000)
		want[uint64(i)] = d
		w.Schedule(uint64(i), d*tick)
	}
	f := &fireLog{w: w, got: map[uint64]int64{}}
	// One giant jump past every deadline must fire all of them.
	f.advance(2_000_000 * tick)
	if len(f.got) != len(want) {
		t.Fatalf("fired %d of %d after big jump", len(f.got), len(want))
	}
}

func TestWheelPastDeadlineFiresNextAdvance(t *testing.T) {
	const tick = int64(time.Millisecond)
	w := NewWheel(time.Millisecond, 1000*tick)
	w.Schedule(42, 0) // long past
	fired := false
	w.Advance(1001*tick, func(key uint64) { fired = key == 42 })
	if !fired {
		t.Fatal("past-deadline timer did not fire on the next advance")
	}
}

func TestWheelNextBounds(t *testing.T) {
	const tick = int64(time.Millisecond)
	w := NewWheel(time.Millisecond, 0)
	if _, ok := w.Next(); ok {
		t.Fatal("empty wheel reported a next deadline")
	}

	w.Schedule(1, 40*tick)
	at, ok := w.Next()
	if !ok || at != 40*tick {
		t.Fatalf("Next = %d,%v want exact %d (within finest level)", at, ok, 40*tick)
	}

	// A far deadline: the bound must never be late, and sleeping to the
	// bound then re-asking must converge on the real deadline.
	w2 := NewWheel(time.Millisecond, 0)
	const due = 123_456
	w2.Schedule(9, due*tick)
	now := int64(0)
	fired := false
	for i := 0; i < 10 && !fired; i++ {
		at, ok := w2.Next()
		if !ok {
			t.Fatal("pending entry but no next deadline")
		}
		if at > due*tick {
			t.Fatalf("Next bound %d is later than the deadline %d", at, due*tick)
		}
		if at <= now {
			t.Fatalf("Next bound %d does not advance past now %d", at, now)
		}
		now = at
		w2.Advance(now, func(uint64) { fired = true })
	}
	if !fired || now != due*tick {
		t.Fatalf("converged at %d (fired=%v), want %d", now, fired, due*tick)
	}
}

func TestWheelRandomizedAgainstModel(t *testing.T) {
	const tick = int64(1)
	w := NewWheel(1, 0)
	rng := rand.New(rand.NewSource(99))
	due := map[uint64]int64{}
	fired := map[uint64]int64{}
	var next uint64
	now := int64(0)
	for step := 0; step < 5000; step++ {
		for k := 0; k < rng.Intn(4); k++ {
			d := now + 1 + rng.Int63n(10000)
			due[next] = d
			w.Schedule(next, d)
			next++
		}
		now += 1 + rng.Int63n(500)
		w.Advance(now, func(key uint64) { fired[key] = now })
		for key, d := range due {
			at, ok := fired[key]
			if d <= now && !ok {
				t.Fatalf("step %d: key %d due %d not fired by %d", step, key, d, now)
			}
			if ok {
				if at < d {
					t.Fatalf("key %d fired at %d before deadline %d", key, at, d)
				}
				delete(due, key)
			}
		}
	}
}
