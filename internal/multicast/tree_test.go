package multicast

import (
	"strings"
	"testing"
)

func TestNewTreeValidation(t *testing.T) {
	if _, err := NewTree(0, 0); err == nil {
		t.Error("zero-size tree should fail")
	}
	if _, err := NewTree(5, 5); err == nil {
		t.Error("root out of range should fail")
	}
	if _, err := NewTree(5, -1); err == nil {
		t.Error("negative root should fail")
	}
}

func TestDeliverBasics(t *testing.T) {
	tr, err := NewTree(5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Received(0) || tr.Depth(0) != 0 {
		t.Fatal("root should start received at depth 0")
	}
	if err := tr.Deliver(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := tr.Deliver(1, 2); err != nil {
		t.Fatal(err)
	}
	if err := tr.Deliver(0, 3); err != nil {
		t.Fatal(err)
	}
	if tr.Depth(2) != 2 || tr.Depth(3) != 1 {
		t.Errorf("depths wrong: %d, %d", tr.Depth(2), tr.Depth(3))
	}
	if tr.Parent(2) != 1 {
		t.Errorf("Parent(2) = %d", tr.Parent(2))
	}
	if tr.Reached() != 4 {
		t.Errorf("Reached = %d", tr.Reached())
	}
	if tr.MaxDepth() != 2 {
		t.Errorf("MaxDepth = %d", tr.MaxDepth())
	}
	if tr.Degree(0) != 2 || tr.Degree(1) != 1 || tr.Degree(2) != 0 {
		t.Error("degrees wrong")
	}
}

func TestDeliverDuplicateRejected(t *testing.T) {
	tr, _ := NewTree(3, 0)
	if err := tr.Deliver(0, 1); err != nil {
		t.Fatal(err)
	}
	err := tr.Deliver(0, 1)
	if err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("duplicate delivery not rejected: %v", err)
	}
}

func TestDeliverFromUnreached(t *testing.T) {
	tr, _ := NewTree(3, 0)
	if err := tr.Deliver(1, 2); err == nil {
		t.Fatal("delivery from unreached node should fail")
	}
}

func TestDeliverRangeChecks(t *testing.T) {
	tr, _ := NewTree(3, 0)
	if err := tr.Deliver(0, 3); err == nil {
		t.Fatal("out-of-range child should fail")
	}
	if err := tr.Deliver(-1, 1); err == nil {
		t.Fatal("out-of-range parent should fail")
	}
}

func TestVerifyComplete(t *testing.T) {
	tr, _ := NewTree(3, 0)
	if err := tr.VerifyComplete(); err == nil {
		t.Fatal("incomplete tree should fail verification")
	}
	_ = tr.Deliver(0, 1)
	_ = tr.Deliver(1, 2)
	if err := tr.VerifyComplete(); err != nil {
		t.Fatalf("complete tree failed verification: %v", err)
	}
}

func TestDepthHistogramAndAvg(t *testing.T) {
	tr, _ := NewTree(6, 0)
	_ = tr.Deliver(0, 1) // depth 1
	_ = tr.Deliver(0, 2) // depth 1
	_ = tr.Deliver(1, 3) // depth 2
	_ = tr.Deliver(1, 4) // depth 2
	_ = tr.Deliver(3, 5) // depth 3
	h := tr.DepthHistogram()
	want := []int{1, 2, 2, 1}
	if len(h) != len(want) {
		t.Fatalf("histogram %v, want %v", h, want)
	}
	for i := range want {
		if h[i] != want[i] {
			t.Fatalf("histogram %v, want %v", h, want)
		}
	}
	if got := tr.AvgPathLength(); got != (1+1+2+2+3)/5.0 {
		t.Errorf("AvgPathLength = %g", got)
	}
}

func TestAvgPathLengthTrivial(t *testing.T) {
	tr, _ := NewTree(1, 0)
	if tr.AvgPathLength() != 0 {
		t.Error("single-node tree should have zero avg path length")
	}
	if err := tr.VerifyComplete(); err != nil {
		t.Errorf("single-node tree is complete: %v", err)
	}
}

func TestNonLeafStats(t *testing.T) {
	tr, _ := NewTree(6, 0)
	_ = tr.Deliver(0, 1)
	_ = tr.Deliver(0, 2)
	_ = tr.Deliver(0, 3)
	_ = tr.Deliver(1, 4)
	_ = tr.Deliver(1, 5)
	internal, avg := tr.NonLeafStats()
	if internal != 2 {
		t.Errorf("internal = %d, want 2", internal)
	}
	if avg != 2.5 {
		t.Errorf("avgChildren = %g, want 2.5", avg)
	}
}

func TestNonLeafStatsEmpty(t *testing.T) {
	tr, _ := NewTree(1, 0)
	if internal, avg := tr.NonLeafStats(); internal != 0 || avg != 0 {
		t.Error("no-edge tree should report zero stats")
	}
}

func TestChildrenOwnership(t *testing.T) {
	tr, _ := NewTree(3, 0)
	_ = tr.Deliver(0, 1)
	_ = tr.Deliver(0, 2)
	kids := tr.Children(0)
	if len(kids) != 2 || kids[0] != 1 || kids[1] != 2 {
		t.Fatalf("Children(0) = %v", kids)
	}
}
