package multicast

import (
	"strings"
	"sync"
	"testing"
)

func TestNewTreeValidation(t *testing.T) {
	if _, err := NewTree(0, 0); err == nil {
		t.Error("zero-size tree should fail")
	}
	if _, err := NewTree(5, 5); err == nil {
		t.Error("root out of range should fail")
	}
	if _, err := NewTree(5, -1); err == nil {
		t.Error("negative root should fail")
	}
}

func TestDeliverBasics(t *testing.T) {
	tr, err := NewTree(5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Received(0) || tr.Depth(0) != 0 {
		t.Fatal("root should start received at depth 0")
	}
	if err := tr.Deliver(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := tr.Deliver(1, 2); err != nil {
		t.Fatal(err)
	}
	if err := tr.Deliver(0, 3); err != nil {
		t.Fatal(err)
	}
	if tr.Depth(2) != 2 || tr.Depth(3) != 1 {
		t.Errorf("depths wrong: %d, %d", tr.Depth(2), tr.Depth(3))
	}
	if tr.Parent(2) != 1 {
		t.Errorf("Parent(2) = %d", tr.Parent(2))
	}
	if tr.Reached() != 4 {
		t.Errorf("Reached = %d", tr.Reached())
	}
	if tr.MaxDepth() != 2 {
		t.Errorf("MaxDepth = %d", tr.MaxDepth())
	}
	if tr.Degree(0) != 2 || tr.Degree(1) != 1 || tr.Degree(2) != 0 {
		t.Error("degrees wrong")
	}
}

func TestDeliverDuplicateRejected(t *testing.T) {
	tr, _ := NewTree(3, 0)
	if err := tr.Deliver(0, 1); err != nil {
		t.Fatal(err)
	}
	err := tr.Deliver(0, 1)
	if err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("duplicate delivery not rejected: %v", err)
	}
}

func TestDeliverFromUnreached(t *testing.T) {
	tr, _ := NewTree(3, 0)
	if err := tr.Deliver(1, 2); err == nil {
		t.Fatal("delivery from unreached node should fail")
	}
}

func TestDeliverRangeChecks(t *testing.T) {
	tr, _ := NewTree(3, 0)
	if err := tr.Deliver(0, 3); err == nil {
		t.Fatal("out-of-range child should fail")
	}
	if err := tr.Deliver(-1, 1); err == nil {
		t.Fatal("out-of-range parent should fail")
	}
}

func TestVerifyComplete(t *testing.T) {
	tr, _ := NewTree(3, 0)
	if err := tr.VerifyComplete(); err == nil {
		t.Fatal("incomplete tree should fail verification")
	}
	_ = tr.Deliver(0, 1)
	_ = tr.Deliver(1, 2)
	if err := tr.VerifyComplete(); err != nil {
		t.Fatalf("complete tree failed verification: %v", err)
	}
}

func TestDepthHistogramAndAvg(t *testing.T) {
	tr, _ := NewTree(6, 0)
	_ = tr.Deliver(0, 1) // depth 1
	_ = tr.Deliver(0, 2) // depth 1
	_ = tr.Deliver(1, 3) // depth 2
	_ = tr.Deliver(1, 4) // depth 2
	_ = tr.Deliver(3, 5) // depth 3
	h := tr.DepthHistogram()
	want := []int{1, 2, 2, 1}
	if len(h) != len(want) {
		t.Fatalf("histogram %v, want %v", h, want)
	}
	for i := range want {
		if h[i] != want[i] {
			t.Fatalf("histogram %v, want %v", h, want)
		}
	}
	if got := tr.AvgPathLength(); got != (1+1+2+2+3)/5.0 {
		t.Errorf("AvgPathLength = %g", got)
	}
}

func TestAvgPathLengthTrivial(t *testing.T) {
	tr, _ := NewTree(1, 0)
	if tr.AvgPathLength() != 0 {
		t.Error("single-node tree should have zero avg path length")
	}
	if err := tr.VerifyComplete(); err != nil {
		t.Errorf("single-node tree is complete: %v", err)
	}
}

func TestNonLeafStats(t *testing.T) {
	tr, _ := NewTree(6, 0)
	_ = tr.Deliver(0, 1)
	_ = tr.Deliver(0, 2)
	_ = tr.Deliver(0, 3)
	_ = tr.Deliver(1, 4)
	_ = tr.Deliver(1, 5)
	internal, avg := tr.NonLeafStats()
	if internal != 2 {
		t.Errorf("internal = %d, want 2", internal)
	}
	if avg != 2.5 {
		t.Errorf("avgChildren = %g, want 2.5", avg)
	}
}

func TestNonLeafStatsEmpty(t *testing.T) {
	tr, _ := NewTree(1, 0)
	if internal, avg := tr.NonLeafStats(); internal != 0 || avg != 0 {
		t.Error("no-edge tree should report zero stats")
	}
}

func TestResetValidation(t *testing.T) {
	tr, _ := NewTree(4, 0)
	if err := tr.Reset(4); err == nil {
		t.Error("root out of range should fail")
	}
	if err := tr.Reset(-1); err == nil {
		t.Error("negative root should fail")
	}
	if tr.Root() != 0 {
		t.Error("failed Reset must not change the root")
	}
}

func TestResetAfterPartialDelivery(t *testing.T) {
	tr, _ := NewTree(5, 0)
	_ = tr.Deliver(0, 1)
	_ = tr.Deliver(1, 2)
	// Partial delivery (nodes 3 and 4 never reached), then reuse from a new
	// root.
	if err := tr.Reset(3); err != nil {
		t.Fatal(err)
	}
	if tr.Root() != 3 || tr.Reached() != 1 || tr.MaxDepth() != 0 {
		t.Fatalf("after Reset: root=%d reached=%d maxDepth=%d", tr.Root(), tr.Reached(), tr.MaxDepth())
	}
	for node := 0; node < 5; node++ {
		if node == 3 {
			if !tr.Received(3) || tr.Depth(3) != 0 || tr.Parent(3) != 3 {
				t.Fatal("new root should be received at depth 0")
			}
			continue
		}
		if tr.Received(node) || tr.Depth(node) != Unreached || tr.Degree(node) != 0 {
			t.Fatalf("node %d kept stale delivery state", node)
		}
	}
	// The old root forwards before receiving: must fail again.
	if err := tr.Deliver(0, 1); err == nil {
		t.Fatal("stale root should no longer be a valid forwarder")
	}
}

func TestResetDuplicateStillRejected(t *testing.T) {
	tr, _ := NewTree(4, 0)
	_ = tr.Deliver(0, 1)
	if err := tr.Deliver(0, 1); err == nil {
		t.Fatal("duplicate before reset not rejected")
	}
	if err := tr.Reset(0); err != nil {
		t.Fatal(err)
	}
	if err := tr.Deliver(0, 1); err != nil {
		t.Fatalf("first delivery after reset rejected: %v", err)
	}
	err := tr.Deliver(0, 1)
	if err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("duplicate after reset not rejected: %v", err)
	}
	if err := tr.Deliver(3, 2); err == nil {
		t.Fatal("forwarding from unreached node after reset not rejected")
	}
}

func TestResetMetricsRecomputed(t *testing.T) {
	tr, _ := NewTree(4, 0)
	_ = tr.Deliver(0, 1)
	_ = tr.Deliver(1, 2)
	_ = tr.Deliver(2, 3) // chain: maxDepth 3, avg (1+2+3)/3
	if tr.MaxDepth() != 3 {
		t.Fatalf("MaxDepth = %d", tr.MaxDepth())
	}
	if err := tr.Reset(1); err != nil {
		t.Fatal(err)
	}
	_ = tr.Deliver(1, 0)
	_ = tr.Deliver(1, 2)
	_ = tr.Deliver(1, 3) // star: maxDepth 1, avg 1
	if err := tr.VerifyComplete(); err != nil {
		t.Fatal(err)
	}
	if tr.MaxDepth() != 1 {
		t.Errorf("MaxDepth after reuse = %d, want 1 (stale maximum retained?)", tr.MaxDepth())
	}
	if got := tr.AvgPathLength(); got != 1 {
		t.Errorf("AvgPathLength after reuse = %g, want 1", got)
	}
	h := tr.DepthHistogram()
	if len(h) != 2 || h[0] != 1 || h[1] != 3 {
		t.Errorf("DepthHistogram after reuse = %v, want [1 3]", h)
	}
	if tr.Degree(0) != 0 || tr.Degree(1) != 3 {
		t.Errorf("degrees after reuse: %d, %d", tr.Degree(0), tr.Degree(1))
	}
}

func TestResetConcurrentTrees(t *testing.T) {
	// Distinct trees reset and rebuilt on separate goroutines must not share
	// state; run under -race this guards the engine's pooled-tree reuse.
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(root int) {
			defer wg.Done()
			tr, err := NewTree(16, 0)
			if err != nil {
				t.Error(err)
				return
			}
			for iter := 0; iter < 50; iter++ {
				if err := tr.Reset(root); err != nil {
					t.Error(err)
					return
				}
				for node := 0; node < 16; node++ {
					if node == root {
						continue
					}
					if err := tr.Deliver(root, node); err != nil {
						t.Error(err)
						return
					}
				}
				if err := tr.VerifyComplete(); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestChildrenOwnership(t *testing.T) {
	tr, _ := NewTree(3, 0)
	_ = tr.Deliver(0, 1)
	_ = tr.Deliver(0, 2)
	kids := tr.Children(0)
	if len(kids) != 2 || kids[0] != 1 || kids[1] != 2 {
		t.Fatalf("Children(0) = %v", kids)
	}
}
