// Package multicast provides the tree representation shared by every overlay
// implementation in this repository. A Tree records, for one multicast
// message from one source, which node delivered the message to which other
// node (the *implicit* multicast tree of the paper), and exposes the metrics
// the evaluation section is built from: per-node out-degree, hop-count
// (depth) distribution, average path length, and exactly-once verification.
package multicast

import "fmt"

// Unreached marks a node that has not (yet) received the message.
const Unreached = -1

// Tree is the delivery tree of one multicast. Nodes are identified by dense
// indices [0, n) — positions in the simulator's sorted ring.
type Tree struct {
	root     int
	parent   []int // Unreached if not delivered; root's parent is itself
	depth    []int // hops from the root; Unreached if not delivered
	children [][]int
	reached  int
	maxDepth int
}

// NewTree creates a delivery tree over n nodes rooted at root (the source,
// which has received the message by construction, at depth 0).
func NewTree(n, root int) (*Tree, error) {
	if n <= 0 {
		return nil, fmt.Errorf("multicast: tree size %d must be positive", n)
	}
	if root < 0 || root >= n {
		return nil, fmt.Errorf("multicast: root %d out of range [0,%d)", root, n)
	}
	t := &Tree{
		root:     root,
		parent:   make([]int, n),
		depth:    make([]int, n),
		children: make([][]int, n),
		reached:  1,
	}
	for i := range t.parent {
		t.parent[i] = Unreached
		t.depth[i] = Unreached
	}
	t.parent[root] = root
	t.depth[root] = 0
	return t, nil
}

// Reset clears all delivery state and re-roots the tree at root, keeping
// the allocated storage (the parent/depth slices and every node's accrued
// children capacity). It is the allocation-lean path of the experiment
// engine: one worker reuses a single Tree across many sources instead of
// re-making three O(n) slices — and re-growing up to n small children
// slices — per source.
func (t *Tree) Reset(root int) error {
	if root < 0 || root >= len(t.parent) {
		return fmt.Errorf("multicast: root %d out of range [0,%d)", root, len(t.parent))
	}
	for i := range t.parent {
		t.parent[i] = Unreached
		t.depth[i] = Unreached
		t.children[i] = t.children[i][:0]
	}
	t.root = root
	t.parent[root] = root
	t.depth[root] = 0
	t.reached = 1
	t.maxDepth = 0
	return nil
}

// Len returns the number of nodes the tree spans (reached or not).
func (t *Tree) Len() int { return len(t.parent) }

// Root returns the source node.
func (t *Tree) Root() int { return t.root }

// Deliver records that parent forwarded the message to child. It returns an
// error if the child has already received the message (a duplicate delivery,
// which the paper's algorithms must never produce) or if the parent has not
// itself received it.
func (t *Tree) Deliver(parent, child int) error {
	if parent < 0 || parent >= len(t.parent) || child < 0 || child >= len(t.parent) {
		return fmt.Errorf("multicast: edge %d->%d out of range", parent, child)
	}
	if t.parent[parent] == Unreached {
		return fmt.Errorf("multicast: node %d forwarded before receiving", parent)
	}
	if t.parent[child] != Unreached {
		return fmt.Errorf("multicast: duplicate delivery to node %d (from %d, already from %d)",
			child, parent, t.parent[child])
	}
	t.parent[child] = parent
	t.depth[child] = t.depth[parent] + 1
	if t.depth[child] > t.maxDepth {
		t.maxDepth = t.depth[child]
	}
	t.children[parent] = append(t.children[parent], child)
	t.reached++
	return nil
}

// Received reports whether node has received the message.
func (t *Tree) Received(node int) bool { return t.parent[node] != Unreached }

// Parent returns the node that delivered the message to node, Unreached if
// undelivered, or node itself for the root.
func (t *Tree) Parent(node int) int { return t.parent[node] }

// Depth returns the hop count from the source to node (the paper's
// "multicast path length"), or Unreached.
func (t *Tree) Depth(node int) int { return t.depth[node] }

// Children returns the direct children of node in the delivery tree. The
// returned slice is owned by the tree; callers must not mutate it.
func (t *Tree) Children(node int) []int { return t.children[node] }

// Degree returns the out-degree of node in the delivery tree.
func (t *Tree) Degree(node int) int { return len(t.children[node]) }

// Reached returns how many nodes (including the root) have the message.
func (t *Tree) Reached() int { return t.reached }

// MaxDepth returns the deepest delivery hop count.
func (t *Tree) MaxDepth() int { return t.maxDepth }

// VerifyComplete returns an error unless every node received the message
// exactly once. (At-most-once is structural — Deliver rejects duplicates —
// so only coverage needs checking.)
func (t *Tree) VerifyComplete() error {
	if t.reached != len(t.parent) {
		for i, p := range t.parent {
			if p == Unreached {
				return fmt.Errorf("multicast: node %d never received the message (%d/%d reached)",
					i, t.reached, len(t.parent))
			}
		}
	}
	return nil
}

// DepthHistogram returns h where h[d] is the number of nodes at hop count d
// (the series plotted in Figures 9 and 10).
func (t *Tree) DepthHistogram() []int {
	h := make([]int, t.maxDepth+1)
	for _, d := range t.depth {
		if d != Unreached {
			h[d]++
		}
	}
	return h
}

// AvgPathLength returns the mean hop count over all reached non-root nodes.
func (t *Tree) AvgPathLength() float64 {
	if t.reached <= 1 {
		return 0
	}
	var sum int
	for _, d := range t.depth {
		if d > 0 {
			sum += d
		}
	}
	return float64(sum) / float64(t.reached-1)
}

// NonLeafStats returns the number of non-leaf (internal) nodes and their mean
// out-degree — the "average number of children per non-leaf node" axis of
// Figure 6.
func (t *Tree) NonLeafStats() (internal int, avgChildren float64) {
	var edges int
	for _, c := range t.children {
		if len(c) > 0 {
			internal++
			edges += len(c)
		}
	}
	if internal == 0 {
		return 0, 0
	}
	return internal, float64(edges) / float64(internal)
}
