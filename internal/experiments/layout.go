package experiments

import (
	"fmt"
	"math/rand"

	"camcast/internal/camchord"
	"camcast/internal/geo"
	"camcast/internal/ids"
	"camcast/internal/metrics"
	"camcast/internal/ring"
	"camcast/internal/topology"
)

// AblationLayout quantifies the second Section 5.2 technique, Geographic
// Layout: "node identifiers are chosen in a geographically informed manner
// [so that] geographically closeby nodes form clusters in the overlay".
// Three CAM-Chord variants run over the same clustered latency plane:
//
//   - random identifiers (plain SHA-1 placement),
//   - geographic layout (cluster-prefixed identifiers),
//   - geographic layout + Proximity Neighbor Selection.
//
// The series plot average source-to-member delivery delay against uniform
// node capacity. Geographic layout makes low-level neighbors (successors
// and short fingers) same-cluster, so most tree edges become LAN hops.
func AblationLayout(cfg Config) (FigureResult, error) {
	if err := cfg.validate(); err != nil {
		return FigureResult{}, err
	}
	const (
		clusters   = 8
		prefixBits = 3
	)
	space := cfg.space()
	model, err := geo.NewClustered(cfg.N, clusters, 120, 1, cfg.Seed)
	if err != nil {
		return FigureResult{}, err
	}
	hasher := ids.NewHasher(space)

	// Assign both identifier layouts to the same physical nodes.
	randomIDs := make([]ring.ID, cfg.N)
	geoIDs := make([]ring.ID, cfg.N)
	takenRandom := make(map[ring.ID]bool, cfg.N)
	takenGeo := make(map[ring.ID]bool, cfg.N)
	for i := 0; i < cfg.N; i++ {
		addr := fmt.Sprintf("layout-node-%d", i)
		id, _, ok := hasher.Unique(addr, takenRandom, 64)
		if !ok {
			return FigureResult{}, fmt.Errorf("experiments: no free random identifier for node %d", i)
		}
		takenRandom[id] = true
		randomIDs[i] = id

		gid, ok := hasher.GeoUnique(addr, model.Cluster(i), prefixBits, takenGeo, 64)
		if !ok {
			return FigureResult{}, fmt.Errorf("experiments: no free geo identifier for node %d", i)
		}
		takenGeo[gid] = true
		geoIDs[i] = gid
	}

	build := func(idList []ring.ID) (*topology.Ring, []int, error) {
		r, err := topology.New(space, idList)
		if err != nil {
			return nil, nil, err
		}
		// Map ring positions back to physical node indices for the delay fn.
		posToNode := make([]int, cfg.N)
		for node, id := range idList {
			pos, ok := r.PosOf(id)
			if !ok {
				return nil, nil, fmt.Errorf("experiments: id %d missing from ring", id)
			}
			posToNode[pos] = node
		}
		return r, posToNode, nil
	}

	randomRing, randomMap, err := build(randomIDs)
	if err != nil {
		return FigureResult{}, err
	}
	geoRing, geoMap, err := build(geoIDs)
	if err != nil {
		return FigureResult{}, err
	}

	delayOn := func(posToNode []int) camchord.DelayFunc {
		return func(a, b int) float64 {
			return model.Delay(posToNode[a], posToNode[b])
		}
	}

	rng := rand.New(rand.NewSource(cfg.Seed + 1000))
	sources := make([]int, cfg.Sources)
	for i := range sources {
		sources[i] = rng.Intn(cfg.N)
	}

	type variant struct {
		ring   *topology.Ring
		pmap   []int
		sample int
	}
	variants := []variant{
		{randomRing, randomMap, 1},
		{geoRing, geoMap, 1},
		{geoRing, geoMap, camchord.DefaultProximitySample},
	}
	capacities := []int{4, 8, 16}
	grid := make([]float64, len(capacities)*len(variants))
	err = forEachPoint(cfg.workers(), len(grid), func(i int) error {
		capacity := capacities[i/len(variants)]
		v := variants[i%len(variants)]
		caps := make([]int, cfg.N)
		for j := range caps {
			caps[j] = capacity
		}
		net, err := camchord.New(v.ring, caps)
		if err != nil {
			return err
		}
		var total float64
		for _, src := range sources {
			tree, delays, err := net.BuildTreeProximity(src, delayOn(v.pmap), v.sample)
			if err != nil {
				return err
			}
			if err := tree.VerifyComplete(); err != nil {
				return err
			}
			total += camchord.AvgDelay(tree, delays)
		}
		grid[i] = total / float64(len(sources))
		return nil
	})
	if err != nil {
		return FigureResult{}, err
	}

	randomSeries := metrics.Series{Label: "random layout"}
	geoSeries := metrics.Series{Label: "geographic layout"}
	geoPNSSeries := metrics.Series{Label: "geographic layout + PNS"}
	for ci, capacity := range capacities {
		for vi, out := range []*metrics.Series{&randomSeries, &geoSeries, &geoPNSSeries} {
			out.Points = append(out.Points,
				metrics.Point{X: float64(capacity), Y: grid[ci*len(variants)+vi]})
		}
	}
	return FigureResult{
		Name:   "ablation-layout",
		Title:  "Geographic Layout: delivery delay by identifier placement",
		XLabel: "uniform node capacity",
		YLabel: "average delivery delay (ms)",
		Series: []metrics.Series{randomSeries, geoSeries, geoPNSSeries},
	}, nil
}
