package experiments

import (
	"math"
	"sort"
	"strings"
	"testing"

	"camcast/internal/metrics"
	"camcast/internal/workload"
)

// smallConfig scales the paper's setup down while preserving its node
// density (100,000/2^19 ≈ 0.19 ≈ 1500/2^13).
func smallConfig() Config {
	return Config{N: 1500, Sources: 2, Seed: 1, Bits: 13}
}

// interpolate evaluates a piecewise-linear curve at x, clamping at the ends.
// Points are sorted by X first.
func interpolate(points []metrics.Point, x float64) float64 {
	pts := make([]metrics.Point, len(points))
	copy(pts, points)
	sort.Slice(pts, func(i, j int) bool { return pts[i].X < pts[j].X })
	if x <= pts[0].X {
		return pts[0].Y
	}
	for i := 1; i < len(pts); i++ {
		if x <= pts[i].X {
			frac := (x - pts[i-1].X) / (pts[i].X - pts[i-1].X)
			return pts[i-1].Y + frac*(pts[i].Y-pts[i-1].Y)
		}
	}
	return pts[len(pts)-1].Y
}

func TestConfigValidate(t *testing.T) {
	if _, err := Figure6(Config{N: 0, Sources: 1}); err == nil {
		t.Error("zero N should fail")
	}
	if _, err := Figure6(Config{N: 10, Sources: 0}); err == nil {
		t.Error("zero sources should fail")
	}
}

func TestNewPopulationAlignment(t *testing.T) {
	pop, err := NewPopulation(workload.DefaultConfig(200, 3))
	if err != nil {
		t.Fatal(err)
	}
	if pop.Ring.Len() != 200 || len(pop.Bandwidth) != 200 || len(pop.Caps) != 200 {
		t.Fatal("population sizes wrong")
	}
	for i, bw := range pop.Bandwidth {
		if bw < workload.DefaultBandwidthLo || bw > workload.DefaultBandwidthHi {
			t.Fatalf("position %d bandwidth %g unset or out of range", i, bw)
		}
		if pop.Caps[i] < workload.DefaultCapacityLo || pop.Caps[i] > workload.DefaultCapacityHi {
			t.Fatalf("position %d capacity %d out of range", i, pop.Caps[i])
		}
	}
}

func TestCapsFromBandwidth(t *testing.T) {
	pop, err := NewPopulation(workload.DefaultConfig(50, 4))
	if err != nil {
		t.Fatal(err)
	}
	caps := pop.CapsFromBandwidth(100, 4)
	for i, c := range caps {
		if want := workload.CapacityFor(pop.Bandwidth[i], 100, 4); c != want {
			t.Fatalf("caps[%d] = %d, want %d", i, c, want)
		}
	}
}

func TestUniformCaps(t *testing.T) {
	pop, _ := NewPopulation(workload.DefaultConfig(10, 5))
	for _, c := range pop.UniformCaps(7) {
		if c != 7 {
			t.Fatal("UniformCaps not uniform")
		}
	}
}

func TestPickSources(t *testing.T) {
	src := PickSources(100, 5, 9)
	if len(src) != 5 {
		t.Fatalf("got %d sources", len(src))
	}
	seen := map[int]bool{}
	for _, s := range src {
		if s < 0 || s >= 100 || seen[s] {
			t.Fatalf("bad source set %v", src)
		}
		seen[s] = true
	}
	if got := PickSources(3, 10, 1); len(got) != 3 {
		t.Errorf("PickSources should clamp to n, got %d", len(got))
	}
	a := PickSources(100, 5, 42)
	b := PickSources(100, 5, 42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("PickSources not deterministic")
		}
	}
}

func TestNewOverlayUnknownSystem(t *testing.T) {
	pop, _ := NewPopulation(workload.DefaultConfig(10, 1))
	if _, err := NewOverlay(System("bogus"), pop, pop.Caps, 2); err == nil {
		t.Error("unknown system should fail")
	}
}

func TestMeasureTreesAllSystems(t *testing.T) {
	pop, err := NewPopulation(workload.DefaultConfig(800, 2))
	if err != nil {
		t.Fatal(err)
	}
	sources := PickSources(pop.Ring.Len(), 2, 7)
	for _, sys := range []System{SystemCAMChord, SystemCAMKoorde, SystemChord, SystemKoorde} {
		builder, err := NewOverlay(sys, pop, pop.Caps, 6)
		if err != nil {
			t.Fatalf("%s: %v", sys, err)
		}
		provision := pop.Caps
		if sys == SystemChord || sys == SystemKoorde {
			provision = pop.UniformCaps(6)
		}
		m, err := MeasureTrees(builder, pop.Bandwidth, provision, sources)
		if err != nil {
			t.Fatalf("%s: %v", sys, err)
		}
		if m.Throughput <= 0 || math.IsInf(m.Throughput, 0) {
			t.Errorf("%s: throughput %g", sys, m.Throughput)
		}
		if m.AvgPathLength <= 0 {
			t.Errorf("%s: avg path length %g", sys, m.AvgPathLength)
		}
		if m.AvgChildren <= 1 {
			t.Errorf("%s: avg children %g", sys, m.AvgChildren)
		}
		if m.DepthHist.Total() < float64(pop.Ring.Len())-1 {
			t.Errorf("%s: depth histogram total %g", sys, m.DepthHist.Total())
		}
	}
}

func TestMeasureTreesNoSources(t *testing.T) {
	pop, _ := NewPopulation(workload.DefaultConfig(10, 1))
	builder, _ := NewOverlay(SystemChord, pop, nil, 2)
	if _, err := MeasureTrees(builder, pop.Bandwidth, pop.UniformCaps(2), nil); err == nil {
		t.Error("no sources should fail")
	}
}

// Figure 6's central claim: at the SAME average number of children per
// non-leaf node (the x-axis), the CAMs sustain higher throughput than the
// capacity-unaware baselines. The curves are parametric, so we compare by
// interpolating the baseline curve at each CAM x-value inside the
// overlapping range.
func TestFigure6CAMsBeatBaselines(t *testing.T) {
	res, err := Figure6(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 4 {
		t.Fatalf("expected 4 series, got %d", len(res.Series))
	}
	byLabel := map[string][]metrics.Point{}
	for _, s := range res.Series {
		if len(s.Points) != len(childTargets) {
			t.Fatalf("series %s has %d points", s.Label, len(s.Points))
		}
		byLabel[s.Label] = s.Points
	}

	compare := func(camLabel, baseLabel string) {
		t.Helper()
		cam, base := byLabel[camLabel], byLabel[baseLabel]
		lo, hi := base[0].X, base[0].X
		for _, p := range base {
			lo, hi = math.Min(lo, p.X), math.Max(hi, p.X)
		}
		var ratioSum float64
		var count int
		for _, p := range cam {
			if p.X < lo || p.X > hi {
				continue
			}
			ratioSum += p.Y / interpolate(base, p.X)
			count++
		}
		if count == 0 {
			t.Fatalf("%s and %s curves do not overlap in x", camLabel, baseLabel)
		}
		if avg := ratioSum / float64(count); avg < 1.2 {
			t.Errorf("%s over %s: average throughput ratio %.2f at equal children, want > 1.2",
				camLabel, baseLabel, avg)
		}
	}
	compare("CAM-Chord", "Chord")
	compare("CAM-Koorde", "Koorde")
}

// Throughput must decrease as the average number of children grows.
func TestFigure6ThroughputDecreases(t *testing.T) {
	res, err := Figure6(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range res.Series {
		if s.Label != string(SystemCAMChord) && s.Label != string(SystemCAMKoorde) {
			continue
		}
		first, last := s.Points[0], s.Points[len(s.Points)-1]
		if last.Y >= first.Y {
			t.Errorf("%s: throughput did not fall with more children (%.1f -> %.1f)",
				s.Label, first.Y, last.Y)
		}
	}
}

// Figure 7's claim: the improvement ratio grows with bandwidth heterogeneity
// and tracks (a+b)/2a.
func TestFigure7RatioGrowsWithHeterogeneity(t *testing.T) {
	cfg := smallConfig()
	res, err := Figure7(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 2 {
		t.Fatalf("expected 2 series, got %d", len(res.Series))
	}
	for _, s := range res.Series {
		first, last := s.Points[0], s.Points[len(s.Points)-1]
		if first.Y <= 1 {
			t.Errorf("%s: ratio at b=800 is %.2f, CAM should already win", s.Label, first.Y)
		}
		if last.Y <= first.Y {
			t.Errorf("%s: ratio did not grow with heterogeneity (%.2f -> %.2f)", s.Label, first.Y, last.Y)
		}
	}
}

// Figure 8: both curves trade throughput against latency; higher throughput
// costs longer paths.
func TestFigure8Tradeoff(t *testing.T) {
	res, err := Figure8(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range res.Series {
		// Points are generated from few children (high throughput, long
		// paths is the *wrong* direction: more children means lower
		// throughput and shorter paths). Verify monotone trend between the
		// extremes.
		first, last := s.Points[0], s.Points[len(s.Points)-1]
		// first = fewest children: highest throughput, deepest tree.
		if first.X <= last.X {
			t.Errorf("%s: throughput should fall as children increase (%.1f -> %.1f)", s.Label, first.X, last.X)
		}
		if first.Y <= last.Y {
			t.Errorf("%s: path length should fall as children increase (%.2f -> %.2f)", s.Label, first.Y, last.Y)
		}
	}
}

// Figures 9/10: distributions are single-peaked-ish and shift left as the
// capacity range widens.
func TestFigure9DistributionShiftsLeft(t *testing.T) {
	res, err := Figure9(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != len(capacityRangesFig9) {
		t.Fatalf("got %d series", len(res.Series))
	}
	meanDepth := func(s int) float64 {
		var sum, tot float64
		for _, p := range res.Series[s].Points {
			sum += p.X * p.Y
			tot += p.Y
		}
		return sum / tot
	}
	if first, last := meanDepth(0), meanDepth(len(res.Series)-1); last >= first {
		t.Errorf("mean depth should shrink from range [4..4] (%.2f) to [4..200] (%.2f)", first, last)
	}
}

func TestFigure10Runs(t *testing.T) {
	res, err := Figure10(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != len(capacityRangesFig10) {
		t.Fatalf("got %d series", len(res.Series))
	}
	// Every curve accounts for (n-1) deliveries plus the source at depth 0.
	for _, s := range res.Series {
		var tot float64
		for _, p := range s.Points {
			tot += p.Y
		}
		if math.Abs(tot-1500) > 1 {
			t.Errorf("series %s: histogram total %.1f, want ~1500", s.Label, tot)
		}
	}
}

// Figure 11: both CAM curves stay below the 1.5·ln(n)/ln(c) reference, and
// path length falls with capacity.
func TestFigure11BoundHolds(t *testing.T) {
	res, err := Figure11(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 3 {
		t.Fatalf("got %d series", len(res.Series))
	}
	bound := res.Series[2]
	for si := 0; si < 2; si++ {
		s := res.Series[si]
		for i, p := range s.Points {
			if p.Y > bound.Points[i].Y {
				t.Errorf("%s at c=%g: path length %.2f exceeds bound %.2f",
					s.Label, p.X, p.Y, bound.Points[i].Y)
			}
		}
		first, last := s.Points[0], s.Points[len(s.Points)-1]
		if last.Y >= first.Y {
			t.Errorf("%s: path length should fall with capacity", s.Label)
		}
	}
}

func TestFigureResultTSV(t *testing.T) {
	res, err := Figure11(Config{N: 300, Sources: 1, Seed: 2, Bits: 11})
	if err != nil {
		t.Fatal(err)
	}
	tsv := res.TSV()
	for _, want := range []string{"# figure11", "# CAM-Chord", "# CAM-Koorde", "# 1.5*ln(n)/ln(c)"} {
		if !strings.Contains(tsv, want) {
			t.Errorf("TSV missing %q", want)
		}
	}
}

func TestAllRegistryComplete(t *testing.T) {
	if len(All) != 6 || len(FigureNames) != 6 {
		t.Fatal("figure registry incomplete")
	}
	for _, name := range FigureNames {
		if All[name] == nil {
			t.Errorf("figure %s missing from registry", name)
		}
	}
}
