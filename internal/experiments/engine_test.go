package experiments

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"

	"camcast/internal/workload"
)

func TestForEachPointVisitsEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 64} {
		n := 41
		visits := make([]atomic.Int32, n)
		err := forEachPoint(workers, n, func(i int) error {
			visits[i].Add(1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range visits {
			if got := visits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: point %d visited %d times", workers, i, got)
			}
		}
	}
}

func TestForEachPointReturnsFirstError(t *testing.T) {
	sentinel := errors.New("boom")
	for _, workers := range []int{1, 4} {
		var calls atomic.Int32
		err := forEachPoint(workers, 100, func(i int) error {
			calls.Add(1)
			if i == 3 {
				return fmt.Errorf("point %d: %w", i, sentinel)
			}
			return nil
		})
		if !errors.Is(err, sentinel) {
			t.Fatalf("workers=%d: err = %v, want wrapped sentinel", workers, err)
		}
		// The pool abandons remaining points after a failure; with workers=1
		// exactly 4 calls happen, in parallel a few in-flight points may
		// still finish.
		if got := calls.Load(); got == 100 {
			t.Errorf("workers=%d: error did not stop the sweep", workers)
		}
	}
}

func TestForEachPointZeroPoints(t *testing.T) {
	if err := forEachPoint(4, 0, func(int) error { return errors.New("never") }); err != nil {
		t.Fatal(err)
	}
}

func TestCachedPopulationBuildsOnce(t *testing.T) {
	ResetCaches()
	defer ResetCaches()
	wcfg := workload.DefaultConfig(300, 7)
	wcfg.Space = Config{Bits: 11}.space()

	p1, err := CachedPopulation(wcfg)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := CachedPopulation(wcfg)
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Error("same config should return the same population instance")
	}
	if got := PopulationBuilds(); got != 1 {
		t.Errorf("PopulationBuilds = %d, want 1", got)
	}

	other := wcfg
	other.Seed++
	if _, err := CachedPopulation(other); err != nil {
		t.Fatal(err)
	}
	if got := PopulationBuilds(); got != 2 {
		t.Errorf("PopulationBuilds after distinct config = %d, want 2", got)
	}

	ResetCaches()
	if got := PopulationBuilds(); got != 0 {
		t.Errorf("PopulationBuilds after reset = %d, want 0", got)
	}
	p3, err := CachedPopulation(wcfg)
	if err != nil {
		t.Fatal(err)
	}
	if p3 == p1 {
		t.Error("reset should drop cached populations")
	}
}

func TestCachedPopulationConcurrentFirstUse(t *testing.T) {
	ResetCaches()
	defer ResetCaches()
	wcfg := workload.DefaultConfig(300, 11)
	wcfg.Space = Config{Bits: 11}.space()
	pops := make([]*Population, 8)
	err := forEachPoint(len(pops), len(pops), func(i int) error {
		p, err := CachedPopulation(wcfg)
		pops[i] = p
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pops[1:] {
		if p != pops[0] {
			t.Fatal("concurrent first use returned distinct populations")
		}
	}
	if got := PopulationBuilds(); got != 1 {
		t.Errorf("PopulationBuilds = %d, want 1", got)
	}
}

// engineConfig is deliberately small: the determinism suite regenerates
// several figures twice.
func engineConfig(parallelism int) Config {
	return Config{N: 900, Sources: 2, Seed: 1, Bits: 12, Parallelism: parallelism}
}

// TestParallelismByteIdenticalTSV is the engine's core regression: the
// rendered TSV of a figure must not depend on the worker count — neither
// through float reduction order nor through series assembly order.
func TestParallelismByteIdenticalTSV(t *testing.T) {
	for _, tc := range []struct {
		name string
		fn   func(Config) (FigureResult, error)
	}{
		{"figure6", Figure6},
		{"figure11", Figure11},
		{"ablation-lookup", AblationLookup},
		{"ablation-resilience", AblationResilience},
	} {
		t.Run(tc.name, func(t *testing.T) {
			ResetCaches()
			seq, err := tc.fn(engineConfig(1))
			if err != nil {
				t.Fatal(err)
			}
			// Fresh caches for the parallel run so overlay construction and
			// measurement both happen concurrently.
			ResetCaches()
			par, err := tc.fn(engineConfig(8))
			if err != nil {
				t.Fatal(err)
			}
			ResetCaches()
			if seq.TSV() != par.TSV() {
				t.Errorf("%s: TSV differs between Parallelism=1 and Parallelism=8:\n--- sequential ---\n%s\n--- parallel ---\n%s",
					tc.name, seq.TSV(), par.TSV())
			}
		})
	}
}

func TestMeasureTreesParallelMatchesSequential(t *testing.T) {
	ResetCaches()
	defer ResetCaches()
	pop, err := defaultPopulation(engineConfig(0))
	if err != nil {
		t.Fatal(err)
	}
	builder, provision, err := pop.overlayAt(overlaySpec{sys: SystemCAMChord, mode: overlayOwnCaps})
	if err != nil {
		t.Fatal(err)
	}
	sources := PickSources(pop.Ring.Len(), 6, 42)
	seq, err := MeasureTrees(builder, pop.Bandwidth, provision, sources)
	if err != nil {
		t.Fatal(err)
	}
	par, err := MeasureTreesParallel(builder, pop.Bandwidth, provision, sources, 4)
	if err != nil {
		t.Fatal(err)
	}
	if seq.AvgChildren != par.AvgChildren || seq.AvgPathLength != par.AvgPathLength ||
		seq.MaxDepth != par.MaxDepth || seq.Throughput != par.Throughput {
		t.Errorf("parallel metrics differ:\nseq: %+v\npar: %+v", seq, par)
	}
	if seq.DepthHist.Bins() != par.DepthHist.Bins() {
		t.Fatalf("histogram bins differ: %d vs %d", seq.DepthHist.Bins(), par.DepthHist.Bins())
	}
	for bin := 0; bin < seq.DepthHist.Bins(); bin++ {
		if seq.DepthHist.Count(bin) != par.DepthHist.Count(bin) {
			t.Errorf("histogram bin %d differs: %g vs %g", bin, seq.DepthHist.Count(bin), par.DepthHist.Count(bin))
		}
	}
}

func TestSpecAtTargetUnknownSystem(t *testing.T) {
	if _, err := specAtTarget(System("nope"), 700, 8); err == nil {
		t.Error("unknown system should fail")
	}
}

func TestConfigValidateRejectsNegativeParallelism(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Parallelism = -1
	if _, err := Figure6(cfg); err == nil {
		t.Error("negative parallelism should fail validation")
	}
}
