package experiments

import (
	"testing"
)

func ablationConfig() Config {
	return Config{N: 1200, Sources: 2, Seed: 3, Bits: 13}
}

// Right-shift (spread) neighbors must yield shorter multicast paths than
// left-shift (clustered) neighbors, and the gap should be visible at every
// degree.
func TestAblationShift(t *testing.T) {
	res, err := AblationShift(ablationConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 2 {
		t.Fatalf("series count %d", len(res.Series))
	}
	spread, clustered := res.Series[0], res.Series[1]
	wins := 0
	for i := range spread.Points {
		if spread.Points[i].Y < clustered.Points[i].Y {
			wins++
		}
	}
	if wins < len(spread.Points)-1 {
		t.Errorf("right-shift shorter at only %d/%d degrees", wins, len(spread.Points))
	}
}

// Even separation must not be worse than contiguous selection; at moderate
// capacities it should be strictly better.
func TestAblationSpacing(t *testing.T) {
	res, err := AblationSpacing(ablationConfig())
	if err != nil {
		t.Fatal(err)
	}
	even, contiguous := res.Series[0], res.Series[1]
	var evenSum, contSum float64
	for i := range even.Points {
		evenSum += even.Points[i].Y
		contSum += contiguous.Points[i].Y
	}
	if evenSum >= contSum {
		t.Errorf("even separation (total %.2f) should beat contiguous (total %.2f)", evenSum, contSum)
	}
}

// Per-source trees must spread forwarding load: with many sources the
// maximum per-node load per message should fall well below the shared-tree
// approach, where the same internal nodes forward every message.
func TestAblationLoadSpread(t *testing.T) {
	res, err := AblationLoadSpread(ablationConfig())
	if err != nil {
		t.Fatal(err)
	}
	perSource, shared := res.Series[0], res.Series[1]
	last := len(perSource.Points) - 1
	if perSource.Points[last].Y >= shared.Points[last].Y {
		t.Errorf("per-source max load %.2f should be below shared-tree %.2f at %g sources",
			perSource.Points[last].Y, shared.Points[last].Y, perSource.Points[last].X)
	}
	// With one source the two approaches are identical by construction.
	if perSource.Points[0].X != 1 {
		t.Fatalf("first point should be 1 source")
	}
}

// CAM-Koorde's flooding mesh must be more failure-tolerant than CAM-Chord's
// single tree path, and more so at the larger capacity.
func TestAblationResilience(t *testing.T) {
	res, err := AblationResilience(ablationConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 4 {
		t.Fatalf("series count %d", len(res.Series))
	}
	byLabel := map[string][]float64{}
	for _, s := range res.Series {
		var ys []float64
		for _, p := range s.Points {
			ys = append(ys, p.Y)
		}
		byLabel[s.Label] = ys
	}
	meanRatio := func(label string) float64 {
		var sum float64
		for _, y := range byLabel[label] {
			sum += y
		}
		return sum / float64(len(byLabel[label]))
	}
	if meanRatio("CAM-Koorde c=16") <= meanRatio("CAM-Chord c=16") {
		t.Errorf("flooding mesh (%.3f) should survive better than tree paths (%.3f) at c=16",
			meanRatio("CAM-Koorde c=16"), meanRatio("CAM-Chord c=16"))
	}
	if meanRatio("CAM-Koorde c=16") <= meanRatio("CAM-Koorde c=4") {
		t.Errorf("CAM-Koorde resilience should improve with capacity: c=16 %.3f vs c=4 %.3f",
			meanRatio("CAM-Koorde c=16"), meanRatio("CAM-Koorde c=4"))
	}
	// Ratios are probabilities.
	for label, ys := range byLabel {
		for _, y := range ys {
			if y < 0 || y > 1 {
				t.Fatalf("%s: survival ratio %g out of [0,1]", label, y)
			}
		}
	}
}

func TestAblationRegistry(t *testing.T) {
	if len(Ablations) != 7 || len(AblationNames) != 7 {
		t.Fatal("ablation registry incomplete")
	}
	for _, name := range AblationNames {
		if Ablations[name] == nil {
			t.Errorf("%s missing", name)
		}
	}
}

func TestAblationsValidateConfig(t *testing.T) {
	for name, fn := range Ablations {
		if _, err := fn(Config{N: 0, Sources: 1}); err == nil {
			t.Errorf("%s accepted invalid config", name)
		}
	}
}

// Geographic layout must reduce delivery delay versus random placement, and
// combining it with PNS must not be worse than layout alone on average.
func TestAblationLayout(t *testing.T) {
	res, err := AblationLayout(ablationConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 3 {
		t.Fatalf("series count %d", len(res.Series))
	}
	random, geoOnly, geoPNS := res.Series[0], res.Series[1], res.Series[2]
	var randomSum, geoSum, pnsSum float64
	for i := range random.Points {
		randomSum += random.Points[i].Y
		geoSum += geoOnly.Points[i].Y
		pnsSum += geoPNS.Points[i].Y
	}
	if geoSum >= randomSum {
		t.Errorf("geographic layout (total %.1f ms) should beat random (%.1f ms)", geoSum, randomSum)
	}
	if pnsSum > geoSum*1.05 {
		t.Errorf("layout+PNS (total %.1f ms) should not regress past layout alone (%.1f ms)", pnsSum, geoSum)
	}
}

// Lookup paths must shrink with capacity and stay within a constant factor
// of ln(n)/ln(c) for CAM-Chord (Theorem 2).
func TestAblationLookup(t *testing.T) {
	res, err := AblationLookup(ablationConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 3 {
		t.Fatalf("series count %d", len(res.Series))
	}
	chord, bound := res.Series[0], res.Series[2]
	first, last := chord.Points[0], chord.Points[len(chord.Points)-1]
	if last.Y >= first.Y {
		t.Errorf("lookup paths should shrink with capacity (%.2f -> %.2f)", first.Y, last.Y)
	}
	for i, p := range chord.Points {
		if p.Y > 2*bound.Points[i].Y+1 {
			t.Errorf("CAM-Chord lookup at c=%g: %.2f hops exceeds 2*ln(n)/ln(c)+1 = %.2f",
				p.X, p.Y, 2*bound.Points[i].Y+1)
		}
	}
}
