package experiments

import (
	"math"
	"math/rand"

	"camcast/internal/camchord"
	"camcast/internal/camkoorde"
	"camcast/internal/metrics"
)

// AblationLookup measures lookup path lengths against average node
// capacity, empirically validating Theorems 1 and 2 (CAM-Chord lookups are
// O(log n / log c) hops) alongside CAM-Koorde's lookup routine. The
// reference curve plots ln(n)/ln(c).
func AblationLookup(cfg Config) (FigureResult, error) {
	if err := cfg.validate(); err != nil {
		return FigureResult{}, err
	}
	pop, err := defaultPopulation(cfg)
	if err != nil {
		return FigureResult{}, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 1100))
	queries := 200 * cfg.Sources

	chordSeries := metrics.Series{Label: "CAM-Chord lookup"}
	koordeSeries := metrics.Series{Label: "CAM-Koorde lookup"}
	bound := metrics.Series{Label: "ln(n)/ln(c)"}
	for _, c := range []int{4, 6, 8, 12, 16, 24, 32, 48, 64} {
		caps := pop.UniformCaps(c)
		chordNet, err := camchord.New(pop.Ring, caps)
		if err != nil {
			return FigureResult{}, err
		}
		koordeNet, err := camkoorde.New(pop.Ring, caps)
		if err != nil {
			return FigureResult{}, err
		}

		var chordHops, koordeHops float64
		for q := 0; q < queries; q++ {
			from := rng.Intn(pop.Ring.Len())
			k := pop.Ring.Space().Reduce(rng.Uint64())
			_, path := chordNet.Lookup(from, k)
			chordHops += float64(len(path) - 1)
			_, path = koordeNet.Lookup(from, k)
			koordeHops += float64(len(path) - 1)
		}
		x := float64(c)
		chordSeries.Points = append(chordSeries.Points,
			metrics.Point{X: x, Y: chordHops / float64(queries)})
		koordeSeries.Points = append(koordeSeries.Points,
			metrics.Point{X: x, Y: koordeHops / float64(queries)})
		bound.Points = append(bound.Points,
			metrics.Point{X: x, Y: math.Log(float64(cfg.N)) / math.Log(x)})
	}
	return FigureResult{
		Name:   "ablation-lookup",
		Title:  "Lookup path length vs. node capacity (Theorems 1-2)",
		XLabel: "uniform node capacity",
		YLabel: "average lookup path length (hops)",
		Series: []metrics.Series{chordSeries, koordeSeries, bound},
	}, nil
}
