package experiments

import (
	"math"
	"math/rand"

	"camcast/internal/metrics"
	"camcast/internal/ring"
)

// AblationLookup measures lookup path lengths against average node
// capacity, empirically validating Theorems 1 and 2 (CAM-Chord lookups are
// O(log n / log c) hops) alongside CAM-Koorde's lookup routine. The
// reference curve plots ln(n)/ln(c).
func AblationLookup(cfg Config) (FigureResult, error) {
	if err := cfg.validate(); err != nil {
		return FigureResult{}, err
	}
	pop, err := defaultPopulation(cfg)
	if err != nil {
		return FigureResult{}, err
	}
	queries := 200 * cfg.Sources
	capacities := []int{4, 6, 8, 12, 16, 24, 32, 48, 64}

	// Draw every capacity's query batch from the single RNG up front, in
	// sweep order, so the parallel measurement below consumes exactly the
	// query stream a sequential run would.
	type query struct {
		from int
		k    ring.ID
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 1100))
	batches := make([][]query, len(capacities))
	for ci := range capacities {
		batch := make([]query, queries)
		for q := range batch {
			batch[q] = query{from: rng.Intn(pop.Ring.Len()), k: pop.Ring.Space().Reduce(rng.Uint64())}
		}
		batches[ci] = batch
	}

	type lookupPoint struct{ chord, koorde float64 }
	grid := make([]lookupPoint, len(capacities))
	err = forEachPoint(cfg.workers(), len(capacities), func(ci int) error {
		c := capacities[ci]
		chordNet, err := pop.camChordAt(c)
		if err != nil {
			return err
		}
		koordeNet, err := pop.camKoordeAt(c)
		if err != nil {
			return err
		}
		var chordHops, koordeHops float64
		for _, q := range batches[ci] {
			_, path := chordNet.Lookup(q.from, q.k)
			chordHops += float64(len(path) - 1)
			_, path = koordeNet.Lookup(q.from, q.k)
			koordeHops += float64(len(path) - 1)
		}
		grid[ci] = lookupPoint{chord: chordHops / float64(queries), koorde: koordeHops / float64(queries)}
		return nil
	})
	if err != nil {
		return FigureResult{}, err
	}

	chordSeries := metrics.Series{Label: "CAM-Chord lookup"}
	koordeSeries := metrics.Series{Label: "CAM-Koorde lookup"}
	bound := metrics.Series{Label: "ln(n)/ln(c)"}
	for ci, c := range capacities {
		x := float64(c)
		chordSeries.Points = append(chordSeries.Points, metrics.Point{X: x, Y: grid[ci].chord})
		koordeSeries.Points = append(koordeSeries.Points, metrics.Point{X: x, Y: grid[ci].koorde})
		bound.Points = append(bound.Points,
			metrics.Point{X: x, Y: math.Log(float64(cfg.N)) / math.Log(x)})
	}
	return FigureResult{
		Name:   "ablation-lookup",
		Title:  "Lookup path length vs. node capacity (Theorems 1-2)",
		XLabel: "uniform node capacity",
		YLabel: "average lookup path length (hops)",
		Series: []metrics.Series{chordSeries, koordeSeries, bound},
	}, nil
}
