package experiments

import (
	"fmt"
	"math"
	"math/rand"

	"camcast/internal/camchord"
	"camcast/internal/camkoorde"
	"camcast/internal/geo"
	"camcast/internal/metrics"
	"camcast/internal/multicast"
)

// This file implements the ablation experiments for the design choices
// DESIGN.md calls out. They are not figures from the paper; each isolates
// one mechanism the paper claims matters and quantifies it. Like the
// figures, each ablation runs as a flat grid of independent points on the
// engine's worker pool, with per-point RNG state pre-derived so the output
// is byte-identical for every worker count.

// AblationShift compares CAM-Koorde's right-shift (spread) neighbor
// derivation against Koorde's left-shift (clustered) one at equal uniform
// degree, plotting average multicast path length against degree. The paper
// (Section 4) argues the spread is "critical to our capacity-aware multicast
// service"; the gap between the two curves is that claim, quantified.
func AblationShift(cfg Config) (FigureResult, error) {
	if err := cfg.validate(); err != nil {
		return FigureResult{}, err
	}
	pop, err := defaultPopulation(cfg)
	if err != nil {
		return FigureResult{}, err
	}
	sources := PickSources(pop.Ring.Len(), cfg.Sources, cfg.Seed+600)

	degrees := []int{4, 6, 8, 12, 16, 24, 32}
	modes := []overlaySpec{
		{sys: SystemCAMKoorde, mode: overlayUniformCaps},
		{sys: SystemKoorde, mode: overlayDegree},
	}
	grid := make([]float64, len(degrees)*len(modes))
	err = forEachPoint(cfg.workers(), len(grid), func(i int) error {
		spec := modes[i%len(modes)]
		spec.c = degrees[i/len(modes)]
		b, _, err := pop.overlayAt(spec)
		if err != nil {
			return err
		}
		length, err := avgPathLength(b, pop.Ring.Len(), sources)
		if err != nil {
			return fmt.Errorf("%s degree %d: %w", spec.sys, spec.c, err)
		}
		grid[i] = length
		return nil
	})
	if err != nil {
		return FigureResult{}, err
	}

	spread := metrics.Series{Label: "right-shift (CAM-Koorde)"}
	clustered := metrics.Series{Label: "left-shift (Koorde)"}
	for di, degree := range degrees {
		spread.Points = append(spread.Points,
			metrics.Point{X: float64(degree), Y: grid[di*len(modes)]})
		clustered.Points = append(clustered.Points,
			metrics.Point{X: float64(degree), Y: grid[di*len(modes)+1]})
	}
	return FigureResult{
		Name:   "ablation-shift",
		Title:  "Neighbor derivation: right-shift (spread) vs left-shift (clustered)",
		XLabel: "uniform node degree",
		YLabel: "average multicast path length (hops)",
		Series: []metrics.Series{spread, clustered},
	}, nil
}

// AblationSpacing compares CAM-Chord's even child separation (Lines 10-14
// of MULTICAST) against naive contiguous selection, plotting average path
// length against capacity. Even spacing is what keeps subtree sizes — and
// therefore tree depth — balanced.
func AblationSpacing(cfg Config) (FigureResult, error) {
	if err := cfg.validate(); err != nil {
		return FigureResult{}, err
	}
	pop, err := defaultPopulation(cfg)
	if err != nil {
		return FigureResult{}, err
	}
	sources := PickSources(pop.Ring.Len(), cfg.Sources, cfg.Seed+700)

	capacities := []int{3, 4, 6, 8, 12, 16, 24}
	spacings := []camchord.Spacing{camchord.SpacingEven, camchord.SpacingContiguous}
	grid := make([]float64, len(capacities)*len(spacings))
	err = forEachPoint(cfg.workers(), len(grid), func(i int) error {
		capacity := capacities[i/len(spacings)]
		mode := spacings[i%len(spacings)]
		// Spacing modes sit outside the overlay cache's spec space, but the
		// capacity vector is still shared (and New copies it).
		net, err := camchord.NewWithSpacing(pop.Ring, pop.sharedUniformCaps(capacity), mode)
		if err != nil {
			return err
		}
		length, err := avgPathLength(net, pop.Ring.Len(), sources)
		if err != nil {
			return fmt.Errorf("spacing %d capacity %d: %w", mode, capacity, err)
		}
		grid[i] = length
		return nil
	})
	if err != nil {
		return FigureResult{}, err
	}

	even := metrics.Series{Label: "even separation"}
	contiguous := metrics.Series{Label: "contiguous selection"}
	for ci, capacity := range capacities {
		even.Points = append(even.Points,
			metrics.Point{X: float64(capacity), Y: grid[ci*len(spacings)]})
		contiguous.Points = append(contiguous.Points,
			metrics.Point{X: float64(capacity), Y: grid[ci*len(spacings)+1]})
	}
	return FigureResult{
		Name:   "ablation-spacing",
		Title:  "CAM-Chord child selection: even separation vs contiguous",
		XLabel: "uniform node capacity",
		YLabel: "average multicast path length (hops)",
		Series: []metrics.Series{even, contiguous},
	}, nil
}

// AblationLoadSpread quantifies Section 5.1's load argument: with one
// implicit tree per source (the flooding approach), forwarding work spreads
// across members; with a single shared tree, a fixed minority of internal
// nodes forwards everything. The series plot the maximum per-node forwarding
// load (copies forwarded, normalized per message) against the number of
// concurrently active sources. Each source's tree is built exactly once (in
// parallel) and only its degree vector is kept; the load accumulation then
// runs over those vectors in source order.
func AblationLoadSpread(cfg Config) (FigureResult, error) {
	if err := cfg.validate(); err != nil {
		return FigureResult{}, err
	}
	pop, err := defaultPopulation(cfg)
	if err != nil {
		return FigureResult{}, err
	}
	net, err := pop.camChordOwn()
	if err != nil {
		return FigureResult{}, err
	}

	sourceCounts := []int{1, 2, 4, 8, 16, 32}
	maxSources := sourceCounts[len(sourceCounts)-1]
	sources := PickSources(pop.Ring.Len(), maxSources, cfg.Seed+800)
	n := pop.Ring.Len()

	degrees := make([][]int, len(sources))
	err = forEachPoint(cfg.workers(), len(sources), func(i int) error {
		tree, err := buildPooledTree(net, n, sources[i])
		if err != nil {
			return err
		}
		deg := make([]int, n)
		for pos := 0; pos < n; pos++ {
			deg[pos] = tree.Degree(pos)
		}
		releasePooledTree(tree)
		degrees[i] = deg
		return nil
	})
	if err != nil {
		return FigureResult{}, err
	}

	perSource := metrics.Series{Label: "per-source implicit trees"}
	shared := metrics.Series{Label: "single shared tree"}
	// In the shared-tree approach every message traverses sources[0]'s tree
	// regardless of who sent it.
	sharedDeg := degrees[0]
	for _, count := range sourceCounts {
		loadPerSource := make([]float64, n)
		loadShared := make([]float64, n)
		for i := 0; i < count; i++ {
			for pos := 0; pos < n; pos++ {
				loadPerSource[pos] += float64(degrees[i][pos])
				loadShared[pos] += float64(sharedDeg[pos])
			}
		}
		norm := 1 / float64(count)
		perSource.Points = append(perSource.Points,
			metrics.Point{X: float64(count), Y: maxOf(loadPerSource) * norm})
		shared.Points = append(shared.Points,
			metrics.Point{X: float64(count), Y: maxOf(loadShared) * norm})
	}
	return FigureResult{
		Name:   "ablation-load",
		Title:  "Forwarding load: per-source implicit trees vs one shared tree",
		XLabel: "active sources",
		YLabel: "max per-node forwarding load (copies per message)",
		Series: []metrics.Series{perSource, shared},
	}, nil
}

// AblationResilience measures delivery after mass failure with NO repair
// round, for both CAMs at a small and a large capacity. For CAM-Chord a
// member is lost when any node on its tree path from the source has failed;
// for CAM-Koorde the flooding re-routes around failures over the remaining
// mesh. The paper (Sections 2 and 7) predicts CAM-Koorde's resilience
// improves with capacity while at small capacities its mesh may even
// partition.
func AblationResilience(cfg Config) (FigureResult, error) {
	if err := cfg.validate(); err != nil {
		return FigureResult{}, err
	}
	pop, err := defaultPopulation(cfg)
	if err != nil {
		return FigureResult{}, err
	}
	failFracs := []float64{0.05, 0.1, 0.2, 0.3, 0.4, 0.5}
	capacities := []int{4, 16}

	type resPoint struct{ tree, flood float64 }
	grid := make([]resPoint, len(capacities)*len(failFracs))
	err = forEachPoint(cfg.workers(), len(grid), func(i int) error {
		capacity := capacities[i/len(failFracs)]
		fi := i % len(failFracs)
		chordNet, err := pop.camChordAt(capacity)
		if err != nil {
			return err
		}
		koordeNet, err := pop.camKoordeAt(capacity)
		if err != nil {
			return err
		}
		// Failure pattern depends only on the sweep position, so both
		// capacities face the same dead set (as in the sequential run).
		rng := rand.New(rand.NewSource(cfg.Seed + int64(fi)*37))
		src := rng.Intn(pop.Ring.Len())
		dead := failSet(pop.Ring.Len(), src, failFracs[fi], rng)

		tree, err := buildPooledTree(chordNet, pop.Ring.Len(), src)
		if err != nil {
			return err
		}
		treeY := treeSurvival(tree, dead)
		releasePooledTree(tree)
		grid[i] = resPoint{tree: treeY, flood: floodSurvival(koordeNet, src, dead)}
		return nil
	})
	if err != nil {
		return FigureResult{}, err
	}

	result := FigureResult{
		Name:   "ablation-resilience",
		Title:  "Delivery ratio after mass failure (no repair)",
		XLabel: "fraction of members failed",
		YLabel: "fraction of surviving members reached",
	}
	for ci, capacity := range capacities {
		chordSeries := metrics.Series{Label: fmt.Sprintf("CAM-Chord c=%d", capacity)}
		koordeSeries := metrics.Series{Label: fmt.Sprintf("CAM-Koorde c=%d", capacity)}
		for fi, frac := range failFracs {
			pt := grid[ci*len(failFracs)+fi]
			chordSeries.Points = append(chordSeries.Points, metrics.Point{X: frac, Y: pt.tree})
			koordeSeries.Points = append(koordeSeries.Points, metrics.Point{X: frac, Y: pt.flood})
		}
		result.Series = append(result.Series, chordSeries, koordeSeries)
	}
	return result, nil
}

// AblationProximity quantifies the Section 5.2 extension: Proximity
// Neighbor Selection (least-delay-first child choice within each neighbor
// slot's identifier segment) under a clustered latency model, against plain
// arithmetic selection. The series plot average source-to-member delay
// against the candidate sample size (sample 1 = arithmetic selection).
func AblationProximity(cfg Config) (FigureResult, error) {
	if err := cfg.validate(); err != nil {
		return FigureResult{}, err
	}
	pop, err := defaultPopulation(cfg)
	if err != nil {
		return FigureResult{}, err
	}
	model, err := geo.NewClustered(pop.Ring.Len(), 12, 120, 1, cfg.Seed)
	if err != nil {
		return FigureResult{}, err
	}
	net, err := pop.camChordOwn()
	if err != nil {
		return FigureResult{}, err
	}
	sources := PickSources(pop.Ring.Len(), cfg.Sources, cfg.Seed+900)

	samples := []int{1, 2, 4, 8, 16}
	type proxPoint struct{ delay, hops float64 }
	grid := make([]proxPoint, len(samples))
	err = forEachPoint(cfg.workers(), len(samples), func(i int) error {
		var delaySum, hopSum float64
		for _, src := range sources {
			tree, delays, err := net.BuildTreeProximity(src, model.Delay, samples[i])
			if err != nil {
				return err
			}
			if err := tree.VerifyComplete(); err != nil {
				return err
			}
			delaySum += camchord.AvgDelay(tree, delays)
			hopSum += tree.AvgPathLength()
		}
		w := float64(len(sources))
		grid[i] = proxPoint{delay: delaySum / w, hops: hopSum / w}
		return nil
	})
	if err != nil {
		return FigureResult{}, err
	}

	delaySeries := metrics.Series{Label: "avg delivery delay (ms)"}
	hopSeries := metrics.Series{Label: "avg path length (hops)"}
	for i, sample := range samples {
		delaySeries.Points = append(delaySeries.Points,
			metrics.Point{X: float64(sample), Y: grid[i].delay})
		hopSeries.Points = append(hopSeries.Points,
			metrics.Point{X: float64(sample), Y: grid[i].hops})
	}
	return FigureResult{
		Name:   "ablation-proximity",
		Title:  "Proximity Neighbor Selection: delay vs candidate sample size",
		XLabel: "candidates sampled per neighbor slot (1 = arithmetic selection)",
		YLabel: "average delivery delay (ms) / path length (hops)",
		Series: []metrics.Series{delaySeries, hopSeries},
	}, nil
}

// Ablations maps ablation names to their generators, mirroring All.
var Ablations = map[string]func(Config) (FigureResult, error){
	"ablation-shift":      AblationShift,
	"ablation-spacing":    AblationSpacing,
	"ablation-load":       AblationLoadSpread,
	"ablation-resilience": AblationResilience,
	"ablation-proximity":  AblationProximity,
	"ablation-layout":     AblationLayout,
	"ablation-lookup":     AblationLookup,
}

// AblationNames lists the ablations in a stable order.
var AblationNames = []string{
	"ablation-shift", "ablation-spacing", "ablation-load",
	"ablation-resilience", "ablation-proximity", "ablation-layout",
	"ablation-lookup",
}

// avgPathLength averages AvgPathLength over one tree per source, recycling
// pooled trees when the builder supports in-place rebuilds.
func avgPathLength(b TreeBuilder, n int, sources []int) (float64, error) {
	into, reusable := b.(TreeIntoBuilder)
	var sum float64
	for _, src := range sources {
		var (
			tree *multicast.Tree
			err  error
		)
		if reusable {
			tree, err = buildPooledTree(into, n, src)
		} else {
			tree, err = b.BuildTree(src)
		}
		if err != nil {
			return 0, err
		}
		if err := tree.VerifyComplete(); err != nil {
			return 0, err
		}
		sum += tree.AvgPathLength()
		if reusable {
			releasePooledTree(tree)
		}
	}
	return sum / float64(len(sources)), nil
}

func maxOf(values []float64) float64 {
	out := math.Inf(-1)
	for _, v := range values {
		if v > out {
			out = v
		}
	}
	return out
}

// failSet marks ~frac of the nodes dead, never the source.
func failSet(n, src int, frac float64, rng *rand.Rand) []bool {
	dead := make([]bool, n)
	for i := range dead {
		if i != src && rng.Float64() < frac {
			dead[i] = true
		}
	}
	return dead
}

// treeSurvival returns the fraction of surviving non-source members whose
// entire delivery path from the source avoids dead nodes.
func treeSurvival(tree *multicast.Tree, dead []bool) float64 {
	n := tree.Len()
	reached := make([]bool, n)
	reached[tree.Root()] = true
	// Visit nodes parents-first (depth order): an alive node is reached iff
	// its parent was reached. Dead nodes are never marked reached, cutting
	// off their whole subtree.
	order := make([]int, n)
	for pos := range order {
		order[pos] = pos
	}
	sortByDepth(order, tree)
	alive, got := 0, 0
	for _, pos := range order {
		if pos == tree.Root() || dead[pos] {
			continue
		}
		alive++
		if p := tree.Parent(pos); p != multicast.Unreached && reached[p] {
			reached[pos] = true
			got++
		}
	}
	if alive == 0 {
		return 1
	}
	return float64(got) / float64(alive)
}

func sortByDepth(order []int, tree *multicast.Tree) {
	// Counting sort by depth (depths are small).
	maxDepth := tree.MaxDepth()
	buckets := make([][]int, maxDepth+1)
	for _, pos := range order {
		d := tree.Depth(pos)
		if d < 0 {
			d = maxDepth
		}
		buckets[d] = append(buckets[d], pos)
	}
	i := 0
	for _, b := range buckets {
		for _, pos := range b {
			order[i] = pos
			i++
		}
	}
}

// floodSurvival runs the CAM-Koorde flood over the surviving mesh and
// returns the fraction of surviving non-source members reached.
func floodSurvival(net *camkoorde.Network, src int, dead []bool) float64 {
	n := net.Ring().Len()
	visited := make([]bool, n)
	visited[src] = true
	queue := []int{src}
	var nbuf []int
	for head := 0; head < len(queue); head++ {
		x := queue[head]
		nbuf = net.AppendNeighborNodes(nbuf[:0], x)
		for _, p := range nbuf {
			if dead[p] || visited[p] {
				continue
			}
			visited[p] = true
			queue = append(queue, p)
		}
	}
	alive, got := 0, 0
	for pos := 0; pos < n; pos++ {
		if pos == src || dead[pos] {
			continue
		}
		alive++
		if visited[pos] {
			got++
		}
	}
	if alive == 0 {
		return 1
	}
	return float64(got) / float64(alive)
}
