package experiments

import (
	"fmt"
	"math"
	"math/rand"

	"camcast/internal/camchord"
	"camcast/internal/camkoorde"
	"camcast/internal/geo"
	"camcast/internal/koorde"
	"camcast/internal/metrics"
	"camcast/internal/multicast"
)

// This file implements the ablation experiments for the design choices
// DESIGN.md calls out. They are not figures from the paper; each isolates
// one mechanism the paper claims matters and quantifies it.

// AblationShift compares CAM-Koorde's right-shift (spread) neighbor
// derivation against Koorde's left-shift (clustered) one at equal uniform
// degree, plotting average multicast path length against degree. The paper
// (Section 4) argues the spread is "critical to our capacity-aware multicast
// service"; the gap between the two curves is that claim, quantified.
func AblationShift(cfg Config) (FigureResult, error) {
	if err := cfg.validate(); err != nil {
		return FigureResult{}, err
	}
	pop, err := defaultPopulation(cfg)
	if err != nil {
		return FigureResult{}, err
	}
	sources := PickSources(pop.Ring.Len(), cfg.Sources, cfg.Seed+600)

	spread := metrics.Series{Label: "right-shift (CAM-Koorde)"}
	clustered := metrics.Series{Label: "left-shift (Koorde)"}
	for _, degree := range []int{4, 6, 8, 12, 16, 24, 32} {
		caps := pop.UniformCaps(degree)
		cam, err := camkoorde.New(pop.Ring, caps)
		if err != nil {
			return FigureResult{}, err
		}
		base, err := koorde.New(pop.Ring, degree)
		if err != nil {
			return FigureResult{}, err
		}
		camLen, err := avgPathLength(func(src int) (*multicast.Tree, error) {
			tree, _, err := cam.BuildTree(src)
			return tree, err
		}, sources)
		if err != nil {
			return FigureResult{}, err
		}
		baseLen, err := avgPathLength(func(src int) (*multicast.Tree, error) {
			tree, _, err := base.BuildTree(src)
			return tree, err
		}, sources)
		if err != nil {
			return FigureResult{}, err
		}
		spread.Points = append(spread.Points, metrics.Point{X: float64(degree), Y: camLen})
		clustered.Points = append(clustered.Points, metrics.Point{X: float64(degree), Y: baseLen})
	}
	return FigureResult{
		Name:   "ablation-shift",
		Title:  "Neighbor derivation: right-shift (spread) vs left-shift (clustered)",
		XLabel: "uniform node degree",
		YLabel: "average multicast path length (hops)",
		Series: []metrics.Series{spread, clustered},
	}, nil
}

// AblationSpacing compares CAM-Chord's even child separation (Lines 10-14
// of MULTICAST) against naive contiguous selection, plotting average path
// length against capacity. Even spacing is what keeps subtree sizes — and
// therefore tree depth — balanced.
func AblationSpacing(cfg Config) (FigureResult, error) {
	if err := cfg.validate(); err != nil {
		return FigureResult{}, err
	}
	pop, err := defaultPopulation(cfg)
	if err != nil {
		return FigureResult{}, err
	}
	sources := PickSources(pop.Ring.Len(), cfg.Sources, cfg.Seed+700)

	even := metrics.Series{Label: "even separation"}
	contiguous := metrics.Series{Label: "contiguous selection"}
	for _, capacity := range []int{3, 4, 6, 8, 12, 16, 24} {
		caps := pop.UniformCaps(capacity)
		for _, mode := range []camchord.Spacing{camchord.SpacingEven, camchord.SpacingContiguous} {
			net, err := camchord.NewWithSpacing(pop.Ring, caps, mode)
			if err != nil {
				return FigureResult{}, err
			}
			length, err := avgPathLength(net.BuildTree, sources)
			if err != nil {
				return FigureResult{}, err
			}
			pt := metrics.Point{X: float64(capacity), Y: length}
			if mode == camchord.SpacingEven {
				even.Points = append(even.Points, pt)
			} else {
				contiguous.Points = append(contiguous.Points, pt)
			}
		}
	}
	return FigureResult{
		Name:   "ablation-spacing",
		Title:  "CAM-Chord child selection: even separation vs contiguous",
		XLabel: "uniform node capacity",
		YLabel: "average multicast path length (hops)",
		Series: []metrics.Series{even, contiguous},
	}, nil
}

// AblationLoadSpread quantifies Section 5.1's load argument: with one
// implicit tree per source (the flooding approach), forwarding work spreads
// across members; with a single shared tree, a fixed minority of internal
// nodes forwards everything. The series plot the maximum per-node forwarding
// load (copies forwarded, normalized per message) against the number of
// concurrently active sources.
func AblationLoadSpread(cfg Config) (FigureResult, error) {
	if err := cfg.validate(); err != nil {
		return FigureResult{}, err
	}
	pop, err := defaultPopulation(cfg)
	if err != nil {
		return FigureResult{}, err
	}
	net, err := camchord.New(pop.Ring, pop.Caps)
	if err != nil {
		return FigureResult{}, err
	}

	perSource := metrics.Series{Label: "per-source implicit trees"}
	shared := metrics.Series{Label: "single shared tree"}
	sourceCounts := []int{1, 2, 4, 8, 16, 32}
	maxSources := sourceCounts[len(sourceCounts)-1]
	sources := PickSources(pop.Ring.Len(), maxSources, cfg.Seed+800)

	sharedTree, err := net.BuildTree(sources[0])
	if err != nil {
		return FigureResult{}, err
	}
	for _, count := range sourceCounts {
		loadPerSource := make([]float64, pop.Ring.Len())
		loadShared := make([]float64, pop.Ring.Len())
		for _, src := range sources[:count] {
			tree, err := net.BuildTree(src)
			if err != nil {
				return FigureResult{}, err
			}
			for pos := 0; pos < pop.Ring.Len(); pos++ {
				loadPerSource[pos] += float64(tree.Degree(pos))
				// In the shared-tree approach every message traverses the
				// same tree regardless of who sent it.
				loadShared[pos] += float64(sharedTree.Degree(pos))
			}
		}
		norm := 1 / float64(count)
		perSource.Points = append(perSource.Points,
			metrics.Point{X: float64(count), Y: maxOf(loadPerSource) * norm})
		shared.Points = append(shared.Points,
			metrics.Point{X: float64(count), Y: maxOf(loadShared) * norm})
	}
	return FigureResult{
		Name:   "ablation-load",
		Title:  "Forwarding load: per-source implicit trees vs one shared tree",
		XLabel: "active sources",
		YLabel: "max per-node forwarding load (copies per message)",
		Series: []metrics.Series{perSource, shared},
	}, nil
}

// AblationResilience measures delivery after mass failure with NO repair
// round, for both CAMs at a small and a large capacity. For CAM-Chord a
// member is lost when any node on its tree path from the source has failed;
// for CAM-Koorde the flooding re-routes around failures over the remaining
// mesh. The paper (Sections 2 and 7) predicts CAM-Koorde's resilience
// improves with capacity while at small capacities its mesh may even
// partition.
func AblationResilience(cfg Config) (FigureResult, error) {
	if err := cfg.validate(); err != nil {
		return FigureResult{}, err
	}
	pop, err := defaultPopulation(cfg)
	if err != nil {
		return FigureResult{}, err
	}
	failFracs := []float64{0.05, 0.1, 0.2, 0.3, 0.4, 0.5}

	result := FigureResult{
		Name:   "ablation-resilience",
		Title:  "Delivery ratio after mass failure (no repair)",
		XLabel: "fraction of members failed",
		YLabel: "fraction of surviving members reached",
	}
	for _, capacity := range []int{4, 16} {
		caps := pop.UniformCaps(capacity)
		chordNet, err := camchord.New(pop.Ring, caps)
		if err != nil {
			return FigureResult{}, err
		}
		koordeNet, err := camkoorde.New(pop.Ring, caps)
		if err != nil {
			return FigureResult{}, err
		}

		chordSeries := metrics.Series{Label: fmt.Sprintf("CAM-Chord c=%d", capacity)}
		koordeSeries := metrics.Series{Label: fmt.Sprintf("CAM-Koorde c=%d", capacity)}
		for fi, frac := range failFracs {
			rng := rand.New(rand.NewSource(cfg.Seed + int64(fi)*37))
			src := rng.Intn(pop.Ring.Len())
			dead := failSet(pop.Ring.Len(), src, frac, rng)

			tree, err := chordNet.BuildTree(src)
			if err != nil {
				return FigureResult{}, err
			}
			chordSeries.Points = append(chordSeries.Points,
				metrics.Point{X: frac, Y: treeSurvival(tree, dead)})

			koordeSeries.Points = append(koordeSeries.Points,
				metrics.Point{X: frac, Y: floodSurvival(koordeNet, src, dead)})
		}
		result.Series = append(result.Series, chordSeries, koordeSeries)
	}
	return result, nil
}

// AblationProximity quantifies the Section 5.2 extension: Proximity
// Neighbor Selection (least-delay-first child choice within each neighbor
// slot's identifier segment) under a clustered latency model, against plain
// arithmetic selection. The series plot average source-to-member delay
// against the candidate sample size (sample 1 = arithmetic selection).
func AblationProximity(cfg Config) (FigureResult, error) {
	if err := cfg.validate(); err != nil {
		return FigureResult{}, err
	}
	pop, err := defaultPopulation(cfg)
	if err != nil {
		return FigureResult{}, err
	}
	model, err := geo.NewClustered(pop.Ring.Len(), 12, 120, 1, cfg.Seed)
	if err != nil {
		return FigureResult{}, err
	}
	net, err := camchord.New(pop.Ring, pop.Caps)
	if err != nil {
		return FigureResult{}, err
	}
	sources := PickSources(pop.Ring.Len(), cfg.Sources, cfg.Seed+900)

	delaySeries := metrics.Series{Label: "avg delivery delay (ms)"}
	hopSeries := metrics.Series{Label: "avg path length (hops)"}
	for _, sample := range []int{1, 2, 4, 8, 16} {
		var delaySum, hopSum float64
		for _, src := range sources {
			tree, delays, err := net.BuildTreeProximity(src, model.Delay, sample)
			if err != nil {
				return FigureResult{}, err
			}
			if err := tree.VerifyComplete(); err != nil {
				return FigureResult{}, err
			}
			delaySum += camchord.AvgDelay(tree, delays)
			hopSum += tree.AvgPathLength()
		}
		w := float64(len(sources))
		delaySeries.Points = append(delaySeries.Points,
			metrics.Point{X: float64(sample), Y: delaySum / w})
		hopSeries.Points = append(hopSeries.Points,
			metrics.Point{X: float64(sample), Y: hopSum / w})
	}
	return FigureResult{
		Name:   "ablation-proximity",
		Title:  "Proximity Neighbor Selection: delay vs candidate sample size",
		XLabel: "candidates sampled per neighbor slot (1 = arithmetic selection)",
		YLabel: "average delivery delay (ms) / path length (hops)",
		Series: []metrics.Series{delaySeries, hopSeries},
	}, nil
}

// Ablations maps ablation names to their generators, mirroring All.
var Ablations = map[string]func(Config) (FigureResult, error){
	"ablation-shift":      AblationShift,
	"ablation-spacing":    AblationSpacing,
	"ablation-load":       AblationLoadSpread,
	"ablation-resilience": AblationResilience,
	"ablation-proximity":  AblationProximity,
	"ablation-layout":     AblationLayout,
	"ablation-lookup":     AblationLookup,
}

// AblationNames lists the ablations in a stable order.
var AblationNames = []string{
	"ablation-shift", "ablation-spacing", "ablation-load",
	"ablation-resilience", "ablation-proximity", "ablation-layout",
	"ablation-lookup",
}

func avgPathLength(build func(int) (*multicast.Tree, error), sources []int) (float64, error) {
	var sum float64
	for _, src := range sources {
		tree, err := build(src)
		if err != nil {
			return 0, err
		}
		if err := tree.VerifyComplete(); err != nil {
			return 0, err
		}
		sum += tree.AvgPathLength()
	}
	return sum / float64(len(sources)), nil
}

func maxOf(values []float64) float64 {
	out := math.Inf(-1)
	for _, v := range values {
		if v > out {
			out = v
		}
	}
	return out
}

// failSet marks ~frac of the nodes dead, never the source.
func failSet(n, src int, frac float64, rng *rand.Rand) []bool {
	dead := make([]bool, n)
	for i := range dead {
		if i != src && rng.Float64() < frac {
			dead[i] = true
		}
	}
	return dead
}

// treeSurvival returns the fraction of surviving non-source members whose
// entire delivery path from the source avoids dead nodes.
func treeSurvival(tree *multicast.Tree, dead []bool) float64 {
	n := tree.Len()
	reached := make([]bool, n)
	reached[tree.Root()] = true
	// Visit nodes parents-first (depth order): an alive node is reached iff
	// its parent was reached. Dead nodes are never marked reached, cutting
	// off their whole subtree.
	order := make([]int, n)
	for pos := range order {
		order[pos] = pos
	}
	sortByDepth(order, tree)
	alive, got := 0, 0
	for _, pos := range order {
		if pos == tree.Root() || dead[pos] {
			continue
		}
		alive++
		if p := tree.Parent(pos); p != multicast.Unreached && reached[p] {
			reached[pos] = true
			got++
		}
	}
	if alive == 0 {
		return 1
	}
	return float64(got) / float64(alive)
}

func sortByDepth(order []int, tree *multicast.Tree) {
	// Counting sort by depth (depths are small).
	maxDepth := tree.MaxDepth()
	buckets := make([][]int, maxDepth+1)
	for _, pos := range order {
		d := tree.Depth(pos)
		if d < 0 {
			d = maxDepth
		}
		buckets[d] = append(buckets[d], pos)
	}
	i := 0
	for _, b := range buckets {
		for _, pos := range b {
			order[i] = pos
			i++
		}
	}
}

// floodSurvival runs the CAM-Koorde flood over the surviving mesh and
// returns the fraction of surviving non-source members reached.
func floodSurvival(net *camkoorde.Network, src int, dead []bool) float64 {
	n := net.Ring().Len()
	visited := make([]bool, n)
	visited[src] = true
	queue := []int{src}
	for head := 0; head < len(queue); head++ {
		x := queue[head]
		for _, p := range net.NeighborNodes(x) {
			if dead[p] || visited[p] {
				continue
			}
			visited[p] = true
			queue = append(queue, p)
		}
	}
	alive, got := 0, 0
	for pos := 0; pos < n; pos++ {
		if pos == src || dead[pos] {
			continue
		}
		alive++
		if visited[pos] {
			got++
		}
	}
	if alive == 0 {
		return 1
	}
	return float64(got) / float64(alive)
}
