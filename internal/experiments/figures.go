package experiments

import (
	"fmt"
	"math"

	"camcast/internal/camchord"
	"camcast/internal/camkoorde"
	"camcast/internal/metrics"
	"camcast/internal/workload"
)

// childTargets is the sweep of "average number of children per non-leaf
// node" used by Figures 6 and 8 (the paper's x-axis spans roughly 4..70).
var childTargets = []int{4, 5, 6, 8, 10, 14, 20, 28, 40, 55, 70}

// capacityRangesFig9 are the capacity ranges of Figure 9's legend.
var capacityRangesFig9 = [][2]int{
	{4, 4}, {4, 6}, {4, 8}, {4, 10}, {4, 20}, {4, 40}, {4, 60}, {4, 100}, {4, 200},
}

// capacityRangesFig10 are the capacity ranges of Figure 10's legend (the
// paper omits [4..60] there).
var capacityRangesFig10 = [][2]int{
	{4, 4}, {4, 6}, {4, 8}, {4, 10}, {4, 20}, {4, 40}, {4, 100}, {4, 200},
}

// avgCapacitiesFig11 is the x-axis sweep of Figure 11.
var avgCapacitiesFig11 = []int{4, 6, 8, 10, 12, 16, 20, 28, 36, 44, 56, 68, 80, 96, 110}

// Figure6 reproduces "Multicast throughput with respect to average number of
// children per non-leaf node": all four systems, bandwidths U[400,1000]
// kbps. The CAMs derive capacities from bandwidth (c_x = ceil(B_x/p), p
// swept); the baselines fix a uniform degree swept over the same targets.
// The (system × target) grid runs on the engine's worker pool.
func Figure6(cfg Config) (FigureResult, error) {
	if err := cfg.validate(); err != nil {
		return FigureResult{}, err
	}
	pop, err := defaultPopulation(cfg)
	if err != nil {
		return FigureResult{}, err
	}
	sources := PickSources(pop.Ring.Len(), cfg.Sources, cfg.Seed+100)
	avgBW := pop.AvgBandwidth()

	systems := []System{SystemCAMChord, SystemChord, SystemCAMKoorde, SystemKoorde}
	grid := make([]TreeMetrics, len(systems)*len(childTargets))
	err = forEachPoint(cfg.workers(), len(grid), func(i int) error {
		sys, target := systems[i/len(childTargets)], childTargets[i%len(childTargets)]
		m, err := measureAtTarget(sys, pop, avgBW, target, sources)
		if err != nil {
			return fmt.Errorf("%s target %d: %w", sys, target, err)
		}
		grid[i] = m
		return nil
	})
	if err != nil {
		return FigureResult{}, err
	}

	result := FigureResult{
		Name:   "figure6",
		Title:  "Multicast throughput vs. average number of children per non-leaf node",
		XLabel: "average children per non-leaf node",
		YLabel: "throughput (kbps)",
	}
	for si, sys := range systems {
		series := metrics.Series{Label: string(sys)}
		for ti, target := range childTargets {
			// The x-axis is the configured average number of children (the
			// average provisioned capacity / uniform degree), as in the
			// paper; m.AvgChildren would instead measure the realized tree
			// degree, which flooding keeps far below the provisioned one.
			series.Points = append(series.Points,
				metrics.Point{X: float64(target), Y: grid[si*len(childTargets)+ti].Throughput})
		}
		result.Series = append(result.Series, series)
	}
	return result, nil
}

// Figure7 reproduces "Throughput improvement ratio with respect to upload
// bandwidth range": lower bound fixed at 400 kbps, upper bound swept from
// 800 to 1600. The CAMs keep the paper's default per-link target p = 100
// kbps (which is what makes the default bandwidths [400,1000] yield the
// default capacities [4..10]); the capacity-unaware baselines use the same
// *average* degree E[B]/p, so the ratio isolates capacity awareness and
// grows with host heterogeneity, roughly like (a+b)/2a. Every (bandwidth
// range × system) cell is one grid point; the per-range populations come
// from the shared cache.
func Figure7(cfg Config) (FigureResult, error) {
	if err := cfg.validate(); err != nil {
		return FigureResult{}, err
	}
	const (
		lower    = 400.0
		linkRate = 100.0 // the paper's default p
	)
	uppers := []float64{800, 900, 1000, 1100, 1200, 1300, 1400, 1500, 1600}
	systems := []System{SystemCAMChord, SystemChord, SystemCAMKoorde, SystemKoorde}

	rates := make([]float64, len(uppers)*len(systems))
	err := forEachPoint(cfg.workers(), len(rates), func(i int) error {
		ui, si := i/len(systems), i%len(systems)
		upper, sys := uppers[ui], systems[si]
		wcfg := workload.DefaultConfig(cfg.N, cfg.Seed+int64(ui))
		wcfg.Space = cfg.space()
		wcfg.BandwidthLo = lower
		wcfg.BandwidthHi = upper
		pop, err := CachedPopulation(wcfg)
		if err != nil {
			return err
		}
		sources := PickSources(pop.Ring.Len(), cfg.Sources, cfg.Seed+200+int64(ui))
		degree := int(math.Round(pop.AvgBandwidth() / linkRate))
		if degree < 2 {
			degree = 2
		}
		var spec overlaySpec
		switch sys {
		case SystemCAMChord:
			spec = overlaySpec{sys: sys, mode: overlayBandwidth, rate: linkRate, minCap: camchord.MinCapacity}
		case SystemCAMKoorde:
			spec = overlaySpec{sys: sys, mode: overlayBandwidth, rate: linkRate, minCap: camkoorde.MinCapacity}
		default:
			spec = overlaySpec{sys: sys, mode: overlayDegree, c: degree}
		}
		m, err := measureAt(pop, spec, sources)
		if err != nil {
			return fmt.Errorf("%s upper %g: %w", sys, upper, err)
		}
		rates[i] = m.Throughput
		return nil
	})
	if err != nil {
		return FigureResult{}, err
	}

	rateAt := func(ui int, sys System) float64 {
		for si, s := range systems {
			if s == sys {
				return rates[ui*len(systems)+si]
			}
		}
		return math.NaN()
	}
	chordRatio := metrics.Series{Label: "CAM-Chord over Chord"}
	koordeRatio := metrics.Series{Label: "CAM-Koorde over Koorde"}
	for ui, upper := range uppers {
		chordRatio.Points = append(chordRatio.Points,
			metrics.Point{X: upper, Y: rateAt(ui, SystemCAMChord) / rateAt(ui, SystemChord)})
		koordeRatio.Points = append(koordeRatio.Points,
			metrics.Point{X: upper, Y: rateAt(ui, SystemCAMKoorde) / rateAt(ui, SystemKoorde)})
	}
	return FigureResult{
		Name:   "figure7",
		Title:  "Throughput improvement ratio vs. upload bandwidth range [400, b]",
		XLabel: "upload bandwidth range upper bound (kbps)",
		YLabel: "throughput ratio",
		Series: []metrics.Series{chordRatio, koordeRatio},
	}, nil
}

// Figure8 reproduces "Throughput vs. average path length": the tradeoff
// curve traced by sweeping the per-link rate p for both CAM systems over
// the default bandwidth distribution. Its grid points provision exactly
// like Figure 6's CAM points, so a combined run reuses those overlays.
func Figure8(cfg Config) (FigureResult, error) {
	if err := cfg.validate(); err != nil {
		return FigureResult{}, err
	}
	pop, err := defaultPopulation(cfg)
	if err != nil {
		return FigureResult{}, err
	}
	sources := PickSources(pop.Ring.Len(), cfg.Sources, cfg.Seed+300)
	avgBW := pop.AvgBandwidth()

	systems := []System{SystemCAMChord, SystemCAMKoorde}
	grid := make([]TreeMetrics, len(systems)*len(childTargets))
	err = forEachPoint(cfg.workers(), len(grid), func(i int) error {
		sys, target := systems[i/len(childTargets)], childTargets[i%len(childTargets)]
		m, err := measureAtTarget(sys, pop, avgBW, target, sources)
		if err != nil {
			return fmt.Errorf("%s target %d: %w", sys, target, err)
		}
		grid[i] = m
		return nil
	})
	if err != nil {
		return FigureResult{}, err
	}

	result := FigureResult{
		Name:   "figure8",
		Title:  "Throughput vs. average path length (p swept)",
		XLabel: "throughput (kbps)",
		YLabel: "average path length (hops)",
	}
	for si, sys := range systems {
		series := metrics.Series{Label: string(sys)}
		for ti := range childTargets {
			m := grid[si*len(childTargets)+ti]
			series.Points = append(series.Points, metrics.Point{X: m.Throughput, Y: m.AvgPathLength})
		}
		result.Series = append(result.Series, series)
	}
	return result, nil
}

// Figure9 reproduces "Path length distribution in CAM-Chord": the number of
// nodes reached at each hop count, one curve per capacity range.
func Figure9(cfg Config) (FigureResult, error) {
	return pathLengthDistribution(cfg, SystemCAMChord, "figure9", capacityRangesFig9)
}

// Figure10 reproduces "Path length distribution in CAM-Koorde".
func Figure10(cfg Config) (FigureResult, error) {
	return pathLengthDistribution(cfg, SystemCAMKoorde, "figure10", capacityRangesFig10)
}

// pathLengthDistribution sweeps capacity ranges as grid points; the
// per-range populations come from the shared cache (and are shared between
// Figures 9 and 10, whose range lists mostly coincide).
func pathLengthDistribution(cfg Config, sys System, name string, ranges [][2]int) (FigureResult, error) {
	if err := cfg.validate(); err != nil {
		return FigureResult{}, err
	}
	grid := make([]TreeMetrics, len(ranges))
	err := forEachPoint(cfg.workers(), len(ranges), func(i int) error {
		cr := ranges[i]
		wcfg := workload.DefaultConfig(cfg.N, cfg.Seed) // same membership per curve
		wcfg.Space = cfg.space()
		wcfg.CapacityLo, wcfg.CapacityHi = cr[0], cr[1]
		pop, err := CachedPopulation(wcfg)
		if err != nil {
			return err
		}
		sources := PickSources(pop.Ring.Len(), cfg.Sources, cfg.Seed+400+int64(i))
		m, err := measureAt(pop, overlaySpec{sys: sys, mode: overlayOwnCaps}, sources)
		if err != nil {
			return fmt.Errorf("%s range %v: %w", sys, cr, err)
		}
		grid[i] = m
		return nil
	})
	if err != nil {
		return FigureResult{}, err
	}

	result := FigureResult{
		Name:   name,
		Title:  fmt.Sprintf("Path length distribution in %s", sys),
		XLabel: "path length (hops)",
		YLabel: "number of nodes",
	}
	for i, cr := range ranges {
		label := fmt.Sprintf("[%d..%d]", cr[0], cr[1])
		if cr[0] == cr[1] {
			label = fmt.Sprintf("%d", cr[0])
		}
		series := metrics.Series{Label: label}
		for bin := 0; bin < grid[i].DepthHist.Bins(); bin++ {
			series.Points = append(series.Points, metrics.Point{X: float64(bin), Y: grid[i].DepthHist.Count(bin)})
		}
		result.Series = append(result.Series, series)
	}
	return result, nil
}

// Figure11 reproduces "Average path length with respect to average node
// capacity", including the artificial 1.5·ln(n)/ln(c) upper-bound curve the
// paper plots to verify Theorems 4 and 6. The (capacity × system) grid runs
// on the worker pool; both systems at one capacity share a memoized uniform
// capacity vector.
func Figure11(cfg Config) (FigureResult, error) {
	if err := cfg.validate(); err != nil {
		return FigureResult{}, err
	}
	pop, err := defaultPopulation(cfg)
	if err != nil {
		return FigureResult{}, err
	}
	sources := PickSources(pop.Ring.Len(), cfg.Sources, cfg.Seed+500)

	systems := []System{SystemCAMChord, SystemCAMKoorde}
	grid := make([]TreeMetrics, len(avgCapacitiesFig11)*len(systems))
	err = forEachPoint(cfg.workers(), len(grid), func(i int) error {
		c := avgCapacitiesFig11[i/len(systems)]
		sys := systems[i%len(systems)]
		m, err := measureAt(pop, overlaySpec{sys: sys, mode: overlayUniformCaps, c: c}, sources)
		if err != nil {
			return fmt.Errorf("%s capacity %d: %w", sys, c, err)
		}
		grid[i] = m
		return nil
	})
	if err != nil {
		return FigureResult{}, err
	}

	camChord := metrics.Series{Label: string(SystemCAMChord)}
	camKoorde := metrics.Series{Label: string(SystemCAMKoorde)}
	bound := metrics.Series{Label: "1.5*ln(n)/ln(c)"}
	for ci, c := range avgCapacitiesFig11 {
		camChord.Points = append(camChord.Points,
			metrics.Point{X: float64(c), Y: grid[ci*len(systems)].AvgPathLength})
		camKoorde.Points = append(camKoorde.Points,
			metrics.Point{X: float64(c), Y: grid[ci*len(systems)+1].AvgPathLength})
		bound.Points = append(bound.Points, metrics.Point{X: float64(c), Y: referenceBound(cfg.N, float64(c))})
	}
	return FigureResult{
		Name:   "figure11",
		Title:  "Average path length vs. average node capacity",
		XLabel: "average node capacity",
		YLabel: "average path length (hops)",
		Series: []metrics.Series{camChord, camKoorde, bound},
	}, nil
}

// All maps figure names to their generators.
var All = map[string]func(Config) (FigureResult, error){
	"figure6":  Figure6,
	"figure7":  Figure7,
	"figure8":  Figure8,
	"figure9":  Figure9,
	"figure10": Figure10,
	"figure11": Figure11,
}

// FigureNames lists the figures in paper order.
var FigureNames = []string{"figure6", "figure7", "figure8", "figure9", "figure10", "figure11"}

// defaultPopulation returns the (cached) paper-default membership for cfg,
// with bandwidth-derived capacities left to the callers.
func defaultPopulation(cfg Config) (*Population, error) {
	wcfg := workload.DefaultConfig(cfg.N, cfg.Seed)
	wcfg.Space = cfg.space()
	return CachedPopulation(wcfg)
}

// measureAtTarget measures one system tuned so that the average number of
// children per non-leaf node is close to target: the CAMs set the per-link
// rate p = E[B]/target, the baselines set their uniform degree to target.
func measureAtTarget(sys System, pop *Population, avgBW float64, target int, sources []int) (TreeMetrics, error) {
	spec, err := specAtTarget(sys, avgBW, target)
	if err != nil {
		return TreeMetrics{}, err
	}
	return measureAt(pop, spec, sources)
}

func mean(values []float64) float64 {
	if len(values) == 0 {
		return 0
	}
	var sum float64
	for _, v := range values {
		sum += v
	}
	return sum / float64(len(values))
}
