// Package experiments implements the paper's evaluation (Section 6): one
// function per figure, each returning the plotted series so that the
// cmd/camfigs CLI and the repository benchmarks can regenerate every result
// in the paper.
//
// Figures run on a parallel experiment engine (see engine.go): each figure
// flattens its sweep into independent grid points executed by a bounded
// worker pool (Config.Parallelism), over populations that are generated
// once per workload configuration and shared read-only by every figure and
// worker, with overlays memoized per provisioning point and multicast trees
// recycled in place (multicast.Tree.Reset). Grid points derive their RNG
// state from per-point seeds and write only their own result slots, so the
// output TSVs are byte-identical for every worker count.
//
// The defaults mirror Section 6 exactly: identifier space [0, 2^19), group
// size 100,000, node capacities uniform in [4..10], upload bandwidths
// uniform in [400, 1000] kbps, and — when capacities are derived from
// bandwidth — c_x = ceil(B_x / p) for the per-link target p.
package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"sync"

	"camcast/internal/camchord"
	"camcast/internal/camkoorde"
	"camcast/internal/chord"
	"camcast/internal/koorde"
	"camcast/internal/metrics"
	"camcast/internal/multicast"
	"camcast/internal/ring"
	"camcast/internal/throughput"
	"camcast/internal/topology"
	"camcast/internal/workload"
)

// System names one of the four simulated multicast systems.
type System string

// The four systems compared in Section 6.
const (
	SystemCAMChord  System = "CAM-Chord"
	SystemCAMKoorde System = "CAM-Koorde"
	SystemChord     System = "Chord"
	SystemKoorde    System = "Koorde"
)

// Config controls the scale of an experiment run.
type Config struct {
	N       int   // group size; the paper uses 100,000
	Sources int   // number of random multicast sources averaged per point
	Seed    int64 // base RNG seed
	Bits    uint  // identifier space width; 0 means the paper's 19

	// Parallelism bounds the experiment engine's worker pool: how many
	// independent grid points (system × provisioning × sweep position) are
	// measured concurrently. 0 means one worker per available CPU
	// (runtime.GOMAXPROCS); 1 forces the sequential path. The figure output
	// is byte-identical for every value.
	Parallelism int

	// Node density n/N strongly affects the Koorde baseline (its clustered
	// neighbor identifiers collapse onto few physical nodes when the ring
	// is sparse), so scaled-down runs should shrink Bits to keep the
	// paper's density of 100,000/2^19 ≈ 0.19.
}

// DefaultConfig returns the paper-scale configuration.
func DefaultConfig() Config {
	return Config{N: workload.DefaultGroupSize, Sources: 3, Seed: 1, Bits: workload.DefaultBits}
}

func (c Config) validate() error {
	if c.N < 1 {
		return fmt.Errorf("experiments: group size %d must be positive", c.N)
	}
	if c.Sources < 1 {
		return fmt.Errorf("experiments: source count %d must be positive", c.Sources)
	}
	if c.Bits > ring.MaxBits {
		return fmt.Errorf("experiments: bits %d out of range", c.Bits)
	}
	if c.Parallelism < 0 {
		return fmt.Errorf("experiments: parallelism %d must not be negative", c.Parallelism)
	}
	return nil
}

// workers resolves the configured parallelism to a concrete worker count.
func (c Config) workers() int { return runtimeWorkers(c.Parallelism) }

// space returns the configured identifier space.
func (c Config) space() ring.Space {
	if c.Bits == 0 {
		return ring.MustSpace(workload.DefaultBits)
	}
	return ring.MustSpace(c.Bits)
}

// Population is a generated membership aligned with its topology snapshot:
// Bandwidth[i] and Caps[i] describe the node at ring position i.
//
// The exported fields are read-only after construction, so one Population
// is safely shared by every figure and worker (CachedPopulation); the
// unexported fields memoize artifacts derived from it — capacity vectors
// and overlays keyed by provisioning point — under their own lock.
type Population struct {
	Ring      *topology.Ring
	Bandwidth []float64
	Caps      []int

	avgBWOnce sync.Once
	avgBW     float64

	mu       sync.Mutex
	capsMemo map[capsKey][]int
	overlays map[overlaySpec]*overlayEntry
}

// NewPopulation generates members per cfg and aligns their attributes with
// the sorted ring positions.
func NewPopulation(cfg workload.Config) (*Population, error) {
	members, err := workload.Generate(cfg)
	if err != nil {
		return nil, err
	}
	idList := make([]ring.ID, len(members))
	for i, m := range members {
		idList[i] = m.ID
	}
	r, err := topology.New(cfg.Space, idList)
	if err != nil {
		return nil, err
	}
	p := &Population{
		Ring:      r,
		Bandwidth: make([]float64, len(members)),
		Caps:      make([]int, len(members)),
	}
	for _, m := range members {
		pos, ok := r.PosOf(m.ID)
		if !ok {
			return nil, fmt.Errorf("experiments: member id %d missing from ring", m.ID)
		}
		p.Bandwidth[pos] = m.Bandwidth
		p.Caps[pos] = m.Capacity
	}
	return p, nil
}

// CapsFromBandwidth derives per-node capacities c = ceil(B/p) clamped below
// at minCapacity, aligned with the population's ring positions.
func (p *Population) CapsFromBandwidth(linkRate float64, minCapacity int) []int {
	caps := make([]int, len(p.Bandwidth))
	for i, bw := range p.Bandwidth {
		caps[i] = workload.CapacityFor(bw, linkRate, minCapacity)
	}
	return caps
}

// UniformCaps returns a capacity slice with every node set to c.
func (p *Population) UniformCaps(c int) []int {
	caps := make([]int, p.Ring.Len())
	for i := range caps {
		caps[i] = c
	}
	return caps
}

// AvgBandwidth returns the population's mean upload bandwidth, computed
// once and memoized.
func (p *Population) AvgBandwidth() float64 {
	p.avgBWOnce.Do(func() { p.avgBW = mean(p.Bandwidth) })
	return p.avgBW
}

// TreeBuilder is the single-method view of an overlay the harness needs.
type TreeBuilder interface {
	BuildTree(src int) (*multicast.Tree, error)
}

// TreeIntoBuilder is the reuse-capable view of an overlay: it rebuilds the
// delivery tree for a new source into an existing allocation (Tree.Reset),
// which is what keeps the engine's per-source simulation loop
// allocation-lean. Every overlay returned by NewOverlay implements it.
type TreeIntoBuilder interface {
	TreeBuilder
	BuildTreeInto(tree *multicast.Tree, src int) error
}

// camKoordeBuilder adapts camkoorde.Network (whose build methods also
// return the suppressed-duplicate count) to TreeIntoBuilder.
type camKoordeBuilder struct{ n *camkoorde.Network }

func (b camKoordeBuilder) BuildTree(src int) (*multicast.Tree, error) {
	tree, _, err := b.n.BuildTree(src)
	return tree, err
}

func (b camKoordeBuilder) BuildTreeInto(tree *multicast.Tree, src int) error {
	_, err := b.n.BuildTreeInto(tree, src)
	return err
}

// koordeBuilder adapts koorde.Network the same way.
type koordeBuilder struct{ n *koorde.Network }

func (b koordeBuilder) BuildTree(src int) (*multicast.Tree, error) {
	tree, _, err := b.n.BuildTree(src)
	return tree, err
}

func (b koordeBuilder) BuildTreeInto(tree *multicast.Tree, src int) error {
	_, err := b.n.BuildTreeInto(tree, src)
	return err
}

// NewOverlay constructs the requested system over the population. For the
// capacity-aware systems caps provides per-node capacities; for the
// capacity-unaware baselines uniformDegree fixes the structure (finger base
// for Chord, de Bruijn degree for Koorde) and caps is ignored. The returned
// builder also implements TreeIntoBuilder.
func NewOverlay(sys System, p *Population, caps []int, uniformDegree int) (TreeBuilder, error) {
	switch sys {
	case SystemCAMChord:
		n, err := camchord.New(p.Ring, caps)
		if err != nil {
			return nil, err
		}
		return n, nil
	case SystemCAMKoorde:
		n, err := camkoorde.New(p.Ring, caps)
		if err != nil {
			return nil, err
		}
		return camKoordeBuilder{n}, nil
	case SystemChord:
		n, err := chord.New(p.Ring, uniformDegree)
		if err != nil {
			return nil, err
		}
		return n, nil
	case SystemKoorde:
		n, err := koorde.New(p.Ring, uniformDegree)
		if err != nil {
			return nil, err
		}
		return koordeBuilder{n}, nil
	default:
		return nil, fmt.Errorf("experiments: unknown system %q", sys)
	}
}

// TreeMetrics aggregates per-tree measurements over several sources.
type TreeMetrics struct {
	AvgChildren   float64 // mean children per non-leaf node
	AvgPathLength float64 // mean hops from source to member
	MaxDepth      float64 // mean over sources of the deepest hop count
	Throughput    float64 // mean sustainable rate (kbps), paper's model
	DepthHist     metrics.Histogram
}

// sourceMetrics is the measurement of one source's tree; MeasureTrees
// reduces these in source order so that the averaged metrics are identical
// for every worker count.
type sourceMetrics struct {
	avgChildren float64
	pathLen     float64
	maxDepth    int
	rate        float64
	hist        []int
}

func measureSource(b TreeBuilder, bandwidth []float64, provision []int, src int) (sourceMetrics, error) {
	var (
		tree *multicast.Tree
		err  error
	)
	reuser, reusable := b.(TreeIntoBuilder)
	if reusable {
		tree, err = buildPooledTree(reuser, len(bandwidth), src)
	} else {
		tree, err = b.BuildTree(src)
	}
	if err != nil {
		return sourceMetrics{}, err
	}
	if err := tree.VerifyComplete(); err != nil {
		return sourceMetrics{}, err
	}
	var m sourceMetrics
	_, m.avgChildren = tree.NonLeafStats()
	m.rate, err = throughput.ByProvision(tree, bandwidth, provision)
	if err != nil {
		return sourceMetrics{}, err
	}
	m.pathLen = tree.AvgPathLength()
	m.maxDepth = tree.MaxDepth()
	m.hist = tree.DepthHistogram()
	if reusable {
		releasePooledTree(tree)
	}
	return m, nil
}

// MeasureTrees builds one multicast tree per source, verifies exactly-once
// delivery, and averages the metrics of interest. provision[i] is the number
// of child slots node i divides its bandwidth across (its capacity for the
// CAMs, the uniform degree for the baselines); see package throughput.
// Builders that implement TreeIntoBuilder (every NewOverlay product) rebuild
// pooled trees in place instead of allocating one per source.
func MeasureTrees(b TreeBuilder, bandwidth []float64, provision []int, sources []int) (TreeMetrics, error) {
	return MeasureTreesParallel(b, bandwidth, provision, sources, 1)
}

// MeasureTreesParallel is MeasureTrees with the per-source simulations
// spread over a bounded worker pool (workers <= 1 means sequential; 0 means
// one worker per CPU). Per-source results land in indexed slots and are
// reduced in source order afterwards, so the averages are byte-identical
// for every worker count. The figure engine parallelizes across grid points
// instead and calls MeasureTrees; this entry point serves callers measuring
// a single configuration with many sources, such as cmd/camsim.
func MeasureTreesParallel(b TreeBuilder, bandwidth []float64, provision []int, sources []int, workers int) (TreeMetrics, error) {
	if len(sources) == 0 {
		return TreeMetrics{}, fmt.Errorf("experiments: no sources")
	}
	if workers != 1 {
		workers = runtimeWorkers(workers)
	}
	per := make([]sourceMetrics, len(sources))
	err := forEachPoint(workers, len(sources), func(i int) error {
		m, err := measureSource(b, bandwidth, provision, sources[i])
		if err != nil {
			return err
		}
		per[i] = m
		return nil
	})
	if err != nil {
		return TreeMetrics{}, err
	}
	var out TreeMetrics
	w := 1 / float64(len(sources))
	for _, m := range per {
		out.AvgChildren += m.avgChildren * w
		out.AvgPathLength += m.pathLen * w
		out.MaxDepth += float64(m.maxDepth) * w
		out.Throughput += m.rate * w
		out.DepthHist.AddCounts(m.hist, w)
	}
	return out, nil
}

// PickSources returns count distinct source positions drawn deterministically
// from seed.
func PickSources(n, count int, seed int64) []int {
	if count > n {
		count = n
	}
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(n)
	out := make([]int, count)
	copy(out, perm[:count])
	return out
}

// FigureResult is one reproduced figure: a set of labeled series.
type FigureResult struct {
	Name   string
	Title  string
	XLabel string
	YLabel string
	Series []metrics.Series
}

// TSV renders the figure as a self-describing tab-separated document, one
// block per series.
func (r FigureResult) TSV() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s: %s\n# x: %s\n# y: %s\n", r.Name, r.Title, r.XLabel, r.YLabel)
	for _, s := range r.Series {
		b.WriteString("\n")
		b.WriteString(s.TSV())
	}
	return b.String()
}

// referenceBound returns the 1.5·ln(n)/ln(c) curve plotted in Figure 11.
func referenceBound(n int, c float64) float64 {
	return 1.5 * math.Log(float64(n)) / math.Log(c)
}
