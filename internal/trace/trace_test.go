package trace

import (
	"strings"
	"sync"
	"testing"
)

func TestNilTracerIsSafe(t *testing.T) {
	var tr *Tracer
	tr.Emit("a", KindJoin, "x")
	tr.Emitf("a", KindJoin, "%d", 1)
	if tr.Events() != nil || tr.Count("") != 0 {
		t.Error("nil tracer should record nothing")
	}
	tr.Reset()
}

func TestZeroValueDiscards(t *testing.T) {
	var tr Tracer
	tr.Emit("a", KindJoin, "x")
	if len(tr.Events()) != 0 {
		t.Error("zero-value tracer should discard")
	}
}

func TestRecordingAndCount(t *testing.T) {
	tr := NewTracer()
	tr.Emit("a", KindJoin, "boot")
	tr.Emitf("b", KindDeliver, "msg %d", 7)
	tr.Emit("c", KindDeliver, "msg 8")
	if got := tr.Count(KindDeliver); got != 2 {
		t.Errorf("Count(deliver) = %d", got)
	}
	if got := tr.Count(""); got != 3 {
		t.Errorf("Count(all) = %d", got)
	}
	events := tr.Events()
	if events[1].Detail != "msg 7" || events[1].Node != "b" {
		t.Errorf("event = %+v", events[1])
	}
	if !strings.Contains(events[0].String(), "join") {
		t.Errorf("String() = %q", events[0].String())
	}
	tr.Reset()
	if tr.Count("") != 0 {
		t.Error("Reset did not clear")
	}
}

func TestEventsReturnsCopy(t *testing.T) {
	tr := NewTracer()
	tr.Emit("a", KindJoin, "x")
	events := tr.Events()
	events[0].Node = "mutated"
	if tr.Events()[0].Node != "a" {
		t.Error("Events exposed internal storage")
	}
}

func TestConcurrentEmit(t *testing.T) {
	tr := NewTracer()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				tr.Emit("n", KindForward, "x")
			}
		}()
	}
	wg.Wait()
	if got := tr.Count(KindForward); got != 800 {
		t.Errorf("Count = %d, want 800", got)
	}
}
