package trace

import (
	"strings"
	"sync"
	"testing"
)

func TestNilTracerIsSafe(t *testing.T) {
	var tr *Tracer
	tr.Emit("a", KindJoin, "x")
	tr.Emitf("a", KindJoin, "%d", 1)
	if tr.Events() != nil || tr.Count("") != 0 {
		t.Error("nil tracer should record nothing")
	}
	tr.Reset()
}

func TestZeroValueDiscards(t *testing.T) {
	var tr Tracer
	tr.Emit("a", KindJoin, "x")
	if len(tr.Events()) != 0 {
		t.Error("zero-value tracer should discard")
	}
}

func TestRecordingAndCount(t *testing.T) {
	tr := NewTracer()
	tr.Emit("a", KindJoin, "boot")
	tr.Emitf("b", KindDeliver, "msg %d", 7)
	tr.Emit("c", KindDeliver, "msg 8")
	if got := tr.Count(KindDeliver); got != 2 {
		t.Errorf("Count(deliver) = %d", got)
	}
	if got := tr.Count(""); got != 3 {
		t.Errorf("Count(all) = %d", got)
	}
	events := tr.Events()
	if events[1].Detail != "msg 7" || events[1].Node != "b" {
		t.Errorf("event = %+v", events[1])
	}
	if !strings.Contains(events[0].String(), "join") {
		t.Errorf("String() = %q", events[0].String())
	}
	tr.Reset()
	if tr.Count("") != 0 {
		t.Error("Reset did not clear")
	}
}

func TestEventsReturnsCopy(t *testing.T) {
	tr := NewTracer()
	tr.Emit("a", KindJoin, "x")
	events := tr.Events()
	events[0].Node = "mutated"
	if tr.Events()[0].Node != "a" {
		t.Error("Events exposed internal storage")
	}
}

func TestBoundedRingDropsOldest(t *testing.T) {
	tr := NewTracerLimit(4)
	for i := 0; i < 10; i++ {
		tr.Emitf("n", KindForward, "msg %d", i)
	}
	if got := tr.Count(""); got != 4 {
		t.Errorf("retained = %d, want 4", got)
	}
	if got := tr.Dropped(); got != 6 {
		t.Errorf("dropped = %d, want 6", got)
	}
	events := tr.Events()
	if events[0].Detail != "msg 6" || events[3].Detail != "msg 9" {
		t.Errorf("retained window = %v .. %v, want msg 6 .. msg 9", events[0].Detail, events[3].Detail)
	}
	for i := 1; i < len(events); i++ {
		if events[i].Seq != events[i-1].Seq+1 {
			t.Errorf("seq not contiguous: %d after %d", events[i].Seq, events[i-1].Seq)
		}
	}
	tr.Reset()
	if tr.Count("") != 0 || tr.Dropped() != 0 {
		t.Error("Reset did not clear ring and drop counter")
	}
}

func TestConcurrentEmit(t *testing.T) {
	tr := NewTracer()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				tr.Emit("n", KindForward, "x")
			}
		}()
	}
	wg.Wait()
	if got := tr.Count(KindForward); got != 800 {
		t.Errorf("Count = %d, want 800", got)
	}
}
