// Package trace provides a small concurrent event recorder used by the
// dynamic runtime: tests and examples subscribe to protocol events (joins,
// deliveries, suppressed duplicates, table repairs) without the protocol
// code knowing who is watching.
package trace

import (
	"fmt"
	"sync"
	"time"
)

// Kind classifies an event.
type Kind string

// Event kinds emitted by the runtime.
const (
	KindJoin      Kind = "join"
	KindLeave     Kind = "leave"
	KindDeliver   Kind = "deliver"
	KindForward   Kind = "forward"
	KindDuplicate Kind = "duplicate"
	KindRepair    Kind = "repair"
	KindLookup    Kind = "lookup"
	// KindRetry records one forwarding retry after a failed child send.
	KindRetry Kind = "retry"
	// KindLost records a multicast segment abandoned after retries and
	// repair both failed: the members of that segment did not receive the
	// message from this node.
	KindLost Kind = "lost"
)

// Event is one recorded protocol event.
type Event struct {
	At     time.Time
	Node   string // address of the node the event happened at
	Kind   Kind
	Detail string
}

// String implements fmt.Stringer.
func (e Event) String() string {
	return fmt.Sprintf("%s %s %s (%s)", e.At.Format("15:04:05.000"), e.Node, e.Kind, e.Detail)
}

// Tracer records events. The zero value discards everything; NewTracer
// returns a recording tracer. A nil *Tracer is safe to use and records
// nothing, so callers can pass tracers through unconditionally.
type Tracer struct {
	mu     sync.Mutex
	events []Event
	record bool
}

// NewTracer returns a recording tracer.
func NewTracer() *Tracer {
	return &Tracer{record: true}
}

// Emit records one event; no-op on a nil or non-recording tracer.
func (t *Tracer) Emit(node string, kind Kind, detail string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.record {
		return
	}
	t.events = append(t.events, Event{At: time.Now(), Node: node, Kind: kind, Detail: detail})
}

// Emitf records one event with a formatted detail string.
func (t *Tracer) Emitf(node string, kind Kind, format string, args ...any) {
	if t == nil {
		return
	}
	t.Emit(node, kind, fmt.Sprintf(format, args...))
}

// Events returns a copy of all recorded events in order.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, len(t.events))
	copy(out, t.events)
	return out
}

// Count returns how many recorded events match kind (all kinds if empty).
func (t *Tracer) Count(kind Kind) int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if kind == "" {
		return len(t.events)
	}
	n := 0
	for _, e := range t.events {
		if e.Kind == kind {
			n++
		}
	}
	return n
}

// Reset discards all recorded events.
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.events = nil
}
