// Package trace provides a small concurrent event recorder used by the
// dynamic runtime: tests and examples subscribe to protocol events (joins,
// deliveries, suppressed duplicates, table repairs) without the protocol
// code knowing who is watching.
//
// The event vocabulary lives in internal/obsv; this package aliases it so
// a recorded trace.Event and a live obsv bus event are the same type. The
// recorder is bounded: once Limit events are retained the oldest are
// discarded (and counted), so a long-lived tracer cannot grow without
// bound the way the original append-only recorder could.
//
// Deprecated: new code should subscribe to an obsv.Bus (streaming, per-
// subscriber backpressure) instead of polling a Tracer; the Tracer remains
// for synchronous test assertions.
package trace

import (
	"fmt"
	"sync"
	"time"

	"camcast/internal/obsv"
)

// Kind classifies an event. It is the obsv event vocabulary.
type Kind = obsv.Kind

// Event kinds emitted by the runtime, re-exported from internal/obsv.
const (
	KindJoin      = obsv.KindJoin
	KindLeave     = obsv.KindLeave
	KindDeliver   = obsv.KindDeliver
	KindForward   = obsv.KindForward
	KindDuplicate = obsv.KindDuplicate
	KindRepair    = obsv.KindRepair
	KindLookup    = obsv.KindLookup
	KindRetry     = obsv.KindRetry
	KindLost      = obsv.KindLost
)

// Event is one recorded protocol event (same type as obsv.Event, so a
// recorded trace and a live bus tail are interchangeable).
type Event = obsv.Event

// DefaultLimit is how many events a NewTracer retains before discarding
// the oldest. Large enough for any single-test workload; small enough
// that a tracer left attached to a long-lived group stays bounded.
const DefaultLimit = 4096

// Tracer records events into a bounded ring. The zero value discards
// everything; NewTracer returns a recording tracer. A nil *Tracer is safe
// to use and records nothing, so callers can pass tracers through
// unconditionally.
type Tracer struct {
	mu      sync.Mutex
	ring    []Event
	head    int // index of the oldest retained event
	n       int // retained count
	seq     uint64
	dropped uint64
	limit   int
	record  bool
}

// NewTracer returns a recording tracer retaining up to DefaultLimit events.
func NewTracer() *Tracer {
	return NewTracerLimit(DefaultLimit)
}

// NewTracerLimit returns a recording tracer retaining up to limit events
// (DefaultLimit if limit <= 0). When full, the oldest event is discarded
// for each new one and Dropped is incremented.
func NewTracerLimit(limit int) *Tracer {
	if limit <= 0 {
		limit = DefaultLimit
	}
	return &Tracer{record: true, limit: limit}
}

// Emit records one event; no-op on a nil or non-recording tracer.
func (t *Tracer) Emit(node string, kind Kind, detail string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.record {
		return
	}
	t.seq++
	e := Event{Seq: t.seq, At: time.Now(), Node: node, Kind: kind, Detail: detail}
	if t.ring == nil {
		t.ring = make([]Event, t.limit)
	}
	if t.n == len(t.ring) {
		t.ring[t.head] = e
		t.head = (t.head + 1) % len(t.ring)
		t.dropped++
		return
	}
	t.ring[(t.head+t.n)%len(t.ring)] = e
	t.n++
}

// Emitf records one event with a formatted detail string.
func (t *Tracer) Emitf(node string, kind Kind, format string, args ...any) {
	if t == nil {
		return
	}
	t.Emit(node, kind, fmt.Sprintf(format, args...))
}

// Events returns a copy of the retained events in emission order.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.n == 0 {
		return nil
	}
	out := make([]Event, t.n)
	for i := 0; i < t.n; i++ {
		out[i] = t.ring[(t.head+i)%len(t.ring)]
	}
	return out
}

// Count returns how many retained events match kind (all kinds if empty).
func (t *Tracer) Count(kind Kind) int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if kind == "" {
		return t.n
	}
	n := 0
	for i := 0; i < t.n; i++ {
		if t.ring[(t.head+i)%len(t.ring)].Kind == kind {
			n++
		}
	}
	return n
}

// Dropped returns how many events were discarded because the ring was full.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Reset discards all retained events and zeroes the drop counter.
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.ring, t.head, t.n, t.dropped = nil, 0, 0, 0
}
