// Package replay is the deterministic record/replay engine of the dynamic
// runtime: a Recorder that captures a live run's full input schedule —
// member joins and departures, multicast submissions, maintenance rounds,
// and fault-injection actions — to a versioned NDJSON log, and a Replayer
// (Run) that re-executes the log against a fresh in-memory cluster in
// simulated-time mode: forwarding serialized in plan order, no wall-clock
// deadlines, no backoff sleeps, every random choice drawn from the seeds
// stored in the log's header. Two replays of the same log produce
// byte-identical outcomes — the same delivery sets, the same aggregated
// protocol counters, the same ordered protocol-event trace — which is what
// turns a flaky chaos observation into a regression test: record the run
// once, commit the log, and replay it in CI forever.
//
// What is captured: the input schedule (who joined through whom with what
// capacity, who left or crashed and when, what was multicast by whom,
// how much maintenance ran between events) plus every imperative fault
// action (per-link loss and delay, partitions, grouped crashes) at the
// point in the schedule it was applied, and the seeds (network loss RNG,
// identifier space width, protocol mode) needed to re-create the world.
//
// What is not captured: wall-clock timing, goroutine interleaving, and
// per-call outcomes. A recorded run may have executed concurrently under
// real timeouts; the log only fixes its inputs. Replay outcomes are
// therefore compared replay-to-replay, not replay-to-recording.
package replay

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// Version is the log format version this package writes and reads.
const Version = 1

// Record kinds. Every line of a log after the header is one Record; the
// Kind selects which of the optional fields are meaningful.
const (
	// KindHeader tags the first line of every log.
	KindHeader = "header"
	// KindBootstrap creates member Idx with capacity Cap as the first
	// member of a fresh group.
	KindBootstrap = "bootstrap"
	// KindJoin creates member Idx with capacity Cap and joins it through
	// member Via.
	KindJoin = "join"
	// KindBulkJoin creates every member in Idxs (capacities Caps, matched
	// by position) and installs a complete ring over them in one step via
	// runtime.BulkInstall — the assisted initial-membership construction.
	// Always the serial install order, so replays are deterministic.
	KindBulkJoin = "bulk-join"
	// KindLeave departs member Idx gracefully.
	KindLeave = "leave"
	// KindCrash stops member Idx without notice.
	KindCrash = "crash"
	// KindCrashGroup stops every member in Idxs at once (a correlated
	// failure: rack power loss, AZ outage).
	KindCrashGroup = "crash-group"
	// KindMaintain runs Rounds maintenance rounds (one StabilizeOnce plus
	// one FixOnce per live member per round); Full upgrades the fix pass
	// to a whole-table FixAll.
	KindMaintain = "maintain"
	// KindMulticast submits Payload as a multicast from member Idx.
	KindMulticast = "multicast"
	// KindLinkLoss installs loss rate Rate on the From->To link (nil
	// selector = any endpoint).
	KindLinkLoss = "link-loss"
	// KindLinkDelay installs DelayMS of extra latency on the From->To
	// link (nil selector = any endpoint).
	KindLinkDelay = "link-delay"
	// KindPartition moves member Idx into partition Part.
	KindPartition = "partition"
	// KindHealLinks removes every installed per-link loss and delay.
	KindHealLinks = "heal-links"
	// KindHealPartitions returns every member to partition 0.
	KindHealPartitions = "heal-partitions"
)

// Header is the first line of every log: the format version plus everything
// needed to re-create the cluster the records ran against.
type Header struct {
	V    int    `json:"v"`
	Kind string `json:"kind"` // always "header"

	// Mode is the protocol both the recorded run and the replay speak:
	// "cam-chord" or "cam-koorde".
	Mode string `json:"mode"`
	// Bits is the identifier-space width (0 means 20, churnsim's default).
	Bits uint `json:"bits,omitempty"`
	// NetSeed seeds the replayed in-memory network's loss RNG.
	NetSeed int64 `json:"netseed"`
	// Scenario optionally names the failure scenario that produced the
	// log (see internal/scenario).
	Scenario string `json:"scenario,omitempty"`
	// Seed optionally records the scenario/churn seed the schedule was
	// generated from, for provenance; replay does not use it.
	Seed int64 `json:"seed,omitempty"`
	// Note is free-form provenance (tool version, flags).
	Note string `json:"note,omitempty"`
}

// Record is one input event. Members are identified by dense indices — the
// replayer materializes index i as address "member-i" — so logs recorded on
// any transport (including TCP listeners with ephemeral ports) replay on
// the deterministic in-memory network.
type Record struct {
	Kind string `json:"kind"`

	Idx     int     `json:"idx,omitempty"`     // member (bootstrap, join, leave, crash, multicast, partition)
	Via     int     `json:"via,omitempty"`     // join bootstrap member
	Cap     int     `json:"cap,omitempty"`     // member capacity (bootstrap, join)
	Idxs    []int   `json:"idxs,omitempty"`    // crash-group victims; bulk-join members
	Caps    []int   `json:"caps,omitempty"`    // bulk-join capacities, parallel to Idxs
	Rounds  int     `json:"rounds,omitempty"`  // maintain
	Full    bool    `json:"full,omitempty"`    // maintain: FixAll instead of FixOnce
	Payload []byte  `json:"payload,omitempty"` // multicast payload
	From    *int    `json:"from,omitempty"`    // link selector; nil matches any sender
	To      *int    `json:"to,omitempty"`      // link selector; nil matches any receiver
	Rate    float64 `json:"rate,omitempty"`    // link-loss drop probability
	DelayMS int64   `json:"delay_ms,omitempty"`
	Part    int     `json:"part,omitempty"` // partition id
}

// Log is a parsed record/replay log.
type Log struct {
	Header  Header
	Records []Record
}

// Addr returns the canonical replay address of member idx. It matches the
// naming churnsim gives in-memory members, so a log recorded there replays
// against identical addresses (and identical ring identifiers).
func Addr(idx int) string { return fmt.Sprintf("member-%d", idx) }

// Recorder captures an input schedule as NDJSON. Construct with
// NewRecorder; a nil *Recorder is safe and discards everything, so drivers
// can thread one unconditionally. Methods are safe for concurrent use; the
// caller is responsible for the ordering being meaningful (churnsim records
// from its single driver goroutine).
type Recorder struct {
	mu      sync.Mutex
	w       *bufio.Writer
	err     error
	records int
}

// NewRecorder writes the header line and returns a recorder appending one
// NDJSON line per recorded input. Call Flush when the run completes.
func NewRecorder(w io.Writer, h Header) *Recorder {
	h.V = Version
	h.Kind = KindHeader
	r := &Recorder{w: bufio.NewWriter(w)}
	r.writeLine(h)
	return r
}

func (r *Recorder) writeLine(v any) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.err != nil {
		return
	}
	b, err := json.Marshal(v)
	if err != nil {
		r.err = err
		return
	}
	b = append(b, '\n')
	if _, err := r.w.Write(b); err != nil {
		r.err = err
		return
	}
	if _, isRecord := v.(Record); isRecord {
		r.records++
	}
}

func (r *Recorder) record(rec Record) { r.writeLine(rec) }

// Bootstrap records member idx starting a fresh group.
func (r *Recorder) Bootstrap(idx, capacity int) {
	r.record(Record{Kind: KindBootstrap, Idx: idx, Cap: capacity})
}

// Join records member idx (capacity cap) joining through member via.
func (r *Recorder) Join(idx, via, capacity int) {
	r.record(Record{Kind: KindJoin, Idx: idx, Via: via, Cap: capacity})
}

// BulkJoin records the bulk construction of a fresh ring over the members
// in idxs with the matching capacities.
func (r *Recorder) BulkJoin(idxs, caps []int) {
	if len(idxs) == 0 || len(idxs) != len(caps) {
		return
	}
	r.record(Record{Kind: KindBulkJoin, Idxs: idxs, Caps: caps})
}

// Leave records a graceful departure of member idx.
func (r *Recorder) Leave(idx int) { r.record(Record{Kind: KindLeave, Idx: idx}) }

// Crash records member idx stopping without notice.
func (r *Recorder) Crash(idx int) { r.record(Record{Kind: KindCrash, Idx: idx}) }

// CrashGroup records a correlated crash of every member in idxs.
func (r *Recorder) CrashGroup(idxs []int) {
	if len(idxs) == 0 {
		return
	}
	r.record(Record{Kind: KindCrashGroup, Idxs: idxs})
}

// Maintain records rounds maintenance rounds; full upgrades the fix pass
// to FixAll.
func (r *Recorder) Maintain(rounds int, full bool) {
	if rounds <= 0 {
		return
	}
	r.record(Record{Kind: KindMaintain, Rounds: rounds, Full: full})
}

// Multicast records member idx submitting payload to the group.
func (r *Recorder) Multicast(idx int, payload []byte) {
	r.record(Record{Kind: KindMulticast, Idx: idx, Payload: payload})
}

// linkSel converts a member-index selector to the wire form (-1 and below
// mean "any endpoint" and encode as an absent field).
func linkSel(idx int) *int {
	if idx < 0 {
		return nil
	}
	i := idx
	return &i
}

// LinkLoss records loss rate on the from->to link; negative from/to match
// any endpoint.
func (r *Recorder) LinkLoss(from, to int, rate float64) {
	r.record(Record{Kind: KindLinkLoss, From: linkSel(from), To: linkSel(to), Rate: rate})
}

// LinkDelay records d of extra latency on the from->to link; negative
// from/to match any endpoint.
func (r *Recorder) LinkDelay(from, to int, d time.Duration) {
	r.record(Record{Kind: KindLinkDelay, From: linkSel(from), To: linkSel(to), DelayMS: d.Milliseconds()})
}

// Partition records member idx moving into partition part.
func (r *Recorder) Partition(idx, part int) {
	r.record(Record{Kind: KindPartition, Idx: idx, Part: part})
}

// HealLinks records the removal of every per-link loss and delay.
func (r *Recorder) HealLinks() { r.record(Record{Kind: KindHealLinks}) }

// HealPartitions records every member returning to partition 0.
func (r *Recorder) HealPartitions() { r.record(Record{Kind: KindHealPartitions}) }

// Records returns how many records (excluding the header) were written.
func (r *Recorder) Records() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.records
}

// Flush drains buffered output and returns the first error the recorder
// hit, if any. Nil-safe.
func (r *Recorder) Flush() error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.err != nil {
		return r.err
	}
	return r.w.Flush()
}

// ReadLog parses an NDJSON log, validating the header version and every
// record kind. Unknown kinds are an error — a v1 reader must not silently
// drop inputs a newer writer considered meaningful.
func ReadLog(rd io.Reader) (*Log, error) {
	sc := bufio.NewScanner(rd)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, fmt.Errorf("replay: reading header: %w", err)
		}
		return nil, fmt.Errorf("replay: empty log")
	}
	var h Header
	if err := json.Unmarshal(sc.Bytes(), &h); err != nil {
		return nil, fmt.Errorf("replay: bad header: %w", err)
	}
	if h.Kind != KindHeader {
		return nil, fmt.Errorf("replay: first line kind %q, want %q", h.Kind, KindHeader)
	}
	if h.V != Version {
		return nil, fmt.Errorf("replay: log version %d, this reader speaks %d", h.V, Version)
	}
	switch h.Mode {
	case "cam-chord", "cam-koorde":
	default:
		return nil, fmt.Errorf("replay: unknown protocol mode %q", h.Mode)
	}

	log := &Log{Header: h}
	line := 1
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var rec Record
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			return nil, fmt.Errorf("replay: line %d: %w", line, err)
		}
		switch rec.Kind {
		case KindBootstrap, KindJoin, KindLeave, KindCrash, KindCrashGroup,
			KindMaintain, KindMulticast, KindLinkLoss, KindLinkDelay,
			KindPartition, KindHealLinks, KindHealPartitions:
		case KindBulkJoin:
			if len(rec.Idxs) == 0 || len(rec.Idxs) != len(rec.Caps) {
				return nil, fmt.Errorf("replay: line %d: bulk-join with %d members and %d capacities",
					line, len(rec.Idxs), len(rec.Caps))
			}
		default:
			return nil, fmt.Errorf("replay: line %d: unknown record kind %q", line, rec.Kind)
		}
		log.Records = append(log.Records, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("replay: %w", err)
	}
	return log, nil
}
