package replay

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"camcast/internal/obsv"
	"camcast/internal/ring"
	"camcast/internal/runtime"
	"camcast/internal/timing"
	"camcast/internal/transport"
)

// traceBuffer is the replay subscription's ring size. Drained after every
// record, it only needs to hold one record's worth of protocol events; a
// multicast in a large group emits a few per member, so 64k leaves orders
// of magnitude of headroom. Overflow is detected (Dropped) and fails the
// replay rather than silently truncating the trace.
const traceBuffer = 1 << 16

// suspicionForever keeps every suspicion mark alive for the whole replay.
// Live runs expire suspicion on a clock; under replay, node time is a
// virtual clock advanced one tick per log record — deterministic, but the
// recorded run's real timings are unknowable, so never expiring is the
// deterministic closure of "the mark was set at some point" — stabilization
// still clears marks when a suspect answers an RPC, which is an
// input-driven (and thus replayable) event.
const suspicionForever = 100 * 365 * 24 * time.Hour

// replayTick is how far the replay's virtual clock advances per log
// record: any fixed nonzero step works, since both replays of a log step
// time identically.
const replayTick = time.Millisecond

// Run re-executes a recorded input schedule against a fresh in-memory
// cluster and returns everything the run observably did: per-message
// delivery sets, originated message IDs, aggregated protocol counters, and
// the full ordered protocol-event trace, each trace event stamped with the
// index of the log record that produced it.
//
// The replay is simulated-time: child sends are serialized in plan order
// (ForwardParallel < 0), per-send deadlines and retry backoff are disabled,
// and failure suspicion never expires mid-run, so no outcome depends on
// the wall clock or the goroutine scheduler. The only randomness left is
// the network's loss schedule, seeded from the log header — identical for
// every replay of the same log. Run(log) twice and Compare the outcomes:
// any divergence is a determinism bug, not noise.
func Run(log *Log) (*Outcome, error) {
	var mode runtime.Mode
	switch log.Header.Mode {
	case "cam-chord":
		mode = runtime.ModeCAMChord
	case "cam-koorde":
		mode = runtime.ModeCAMKoorde
	default:
		return nil, fmt.Errorf("replay: unknown protocol mode %q", log.Header.Mode)
	}
	bits := log.Header.Bits
	if bits == 0 {
		bits = 20
	}
	space, err := ring.NewSpace(bits)
	if err != nil {
		return nil, fmt.Errorf("replay: %w", err)
	}

	net := transport.NewNetwork(log.Header.NetSeed)
	bus := obsv.NewBus()
	sub := bus.Subscribe(traceBuffer)
	defer sub.Close()

	// Node time is virtual and advances in lockstep with the log: one tick
	// per record, from a fixed epoch. Replays of the same log therefore see
	// identical clock readings at every step, wherever the runtime consults
	// its clock (suspicion timestamps today, anything time-keyed tomorrow).
	clock := timing.NewVirtual(time.Unix(0, 0))

	out := &Outcome{Deliveries: make(map[string][]string)}
	var delivMu sync.Mutex

	alive := make(map[int]*runtime.Node)
	var all []*runtime.Node
	defer func() {
		for _, n := range alive {
			n.Stop()
		}
	}()

	newNode := func(idx, capacity int) (*runtime.Node, error) {
		addr := Addr(idx)
		node, err := runtime.NewNode(net, addr, runtime.Config{
			Space:    space,
			Mode:     mode,
			Capacity: capacity,
			// The determinism block: serial plan-order fan-out, no
			// wall-clock deadlines, no backoff sleeps, no mid-run
			// suspicion expiry.
			ForwardParallel: -1,
			ForwardTimeout:  -1,
			RetryBackoff:    -1,
			SuspicionWindow: suspicionForever,
			Clock:           clock,
			Bus:             bus,
			OnDeliver: func(d runtime.Delivery) {
				delivMu.Lock()
				out.Deliveries[d.MsgID] = append(out.Deliveries[d.MsgID], addr)
				delivMu.Unlock()
			},
		})
		if err != nil {
			return nil, err
		}
		all = append(all, node)
		return node, nil
	}

	liveIdxs := func() []int {
		idxs := make([]int, 0, len(alive))
		for i := range alive {
			idxs = append(idxs, i)
		}
		sort.Ints(idxs)
		return idxs
	}
	maintain := func(rounds int, full bool) {
		for r := 0; r < rounds; r++ {
			for _, i := range liveIdxs() {
				alive[i].StabilizeOnce()
			}
			for _, i := range liveIdxs() {
				if full {
					alive[i].FixAll()
				} else {
					alive[i].FixOnce()
				}
			}
		}
	}
	drain := func(step int) {
		for {
			e, ok := sub.Poll()
			if !ok {
				return
			}
			out.Trace = append(out.Trace, TraceEvent{
				Step: step, Node: e.Node, Kind: string(e.Kind), Detail: e.Detail,
			})
		}
	}
	// linkSelAddr maps a wire link selector back to a network address
	// ("" = any endpoint).
	linkSelAddr := func(p *int) string {
		if p == nil {
			return ""
		}
		return Addr(*p)
	}

	for step, rec := range log.Records {
		clock.Advance(replayTick)
		switch rec.Kind {
		case KindBootstrap:
			node, err := newNode(rec.Idx, rec.Cap)
			if err != nil {
				return nil, fmt.Errorf("replay: step %d: %w", step, err)
			}
			if err := node.Bootstrap(); err != nil {
				return nil, fmt.Errorf("replay: step %d: bootstrap %d: %w", step, rec.Idx, err)
			}
			alive[rec.Idx] = node
		case KindJoin:
			node, err := newNode(rec.Idx, rec.Cap)
			if err != nil {
				return nil, fmt.Errorf("replay: step %d: %w", step, err)
			}
			// The recorded join succeeded; under replay the (deterministic)
			// loss schedule may land differently on its RPCs, so retry a
			// couple of times before accepting the member as lost. Every
			// outcome of this loop is itself deterministic.
			joined := false
			for attempt := 0; attempt < 3 && !joined; attempt++ {
				joined = node.Join(Addr(rec.Via)) == nil
			}
			if joined {
				alive[rec.Idx] = node
			} else {
				node.Stop()
				drain(step)
				out.Trace = append(out.Trace, TraceEvent{
					Step: step, Node: Addr(rec.Idx), Kind: "replay-join-failed",
					Detail: fmt.Sprintf("via %s", Addr(rec.Via)),
				})
				continue
			}
		case KindBulkJoin:
			members := make([]*runtime.Node, 0, len(rec.Idxs))
			for i, idx := range rec.Idxs {
				node, err := newNode(idx, rec.Caps[i])
				if err != nil {
					return nil, fmt.Errorf("replay: step %d: %w", step, err)
				}
				members = append(members, node)
			}
			// Serial install: trace order and table contents depend only on
			// the sorted membership, never on goroutine interleaving.
			if err := runtime.BulkInstall(members, runtime.BulkOptions{Parallelism: 1}); err != nil {
				return nil, fmt.Errorf("replay: step %d: bulk-join: %w", step, err)
			}
			for i, idx := range rec.Idxs {
				alive[idx] = members[i]
			}
		case KindLeave:
			if node, ok := alive[rec.Idx]; ok {
				_ = node.Leave()
				delete(alive, rec.Idx)
			}
		case KindCrash:
			if node, ok := alive[rec.Idx]; ok {
				node.Stop()
				delete(alive, rec.Idx)
			}
		case KindCrashGroup:
			for _, idx := range rec.Idxs {
				if node, ok := alive[idx]; ok {
					node.Stop()
					delete(alive, idx)
				}
			}
		case KindMaintain:
			maintain(rec.Rounds, rec.Full)
		case KindMulticast:
			node, ok := alive[rec.Idx]
			if !ok {
				return nil, fmt.Errorf("replay: step %d: multicast from %s which is not alive", step, Addr(rec.Idx))
			}
			msgID, err := node.Multicast(rec.Payload)
			if err != nil {
				return nil, fmt.Errorf("replay: step %d: multicast from %s: %w", step, Addr(rec.Idx), err)
			}
			out.MsgIDs = append(out.MsgIDs, msgID)
		case KindLinkLoss:
			net.SetLinkLoss(linkSelAddr(rec.From), linkSelAddr(rec.To), rec.Rate)
		case KindLinkDelay:
			net.SetLinkDelay(linkSelAddr(rec.From), linkSelAddr(rec.To), time.Duration(rec.DelayMS)*time.Millisecond)
		case KindPartition:
			net.SetPartition(Addr(rec.Idx), rec.Part)
		case KindHealLinks:
			net.ClearLinkFaults()
		case KindHealPartitions:
			net.HealPartitions()
		default:
			return nil, fmt.Errorf("replay: step %d: unknown record kind %q", step, rec.Kind)
		}
		drain(step)
	}

	if d := sub.Dropped(); d > 0 {
		return nil, fmt.Errorf("replay: trace subscription dropped %d events; outcome trace incomplete", d)
	}
	for _, n := range all {
		st := n.Stats()
		out.Counters.Delivered += st.Delivered
		out.Counters.Forwarded += st.Forwarded
		out.Counters.Duplicates += st.Duplicates
		out.Counters.Lookups += st.Lookups
		out.Counters.TableFaults += st.TableFaults
		out.Counters.ChildrenAcked += st.ChildrenAcked
		out.Counters.Retries += st.Retries
		out.Counters.SegmentsRepaired += st.SegmentsRepaired
		out.Counters.SegmentsLost += st.SegmentsLost
	}
	for _, addrs := range out.Deliveries {
		sort.Strings(addrs)
	}
	return out, nil
}
