package replay

import (
	"fmt"
	"sort"
	"strings"
)

// CountersSnapshot aggregates the protocol counters of every node a replay
// ever created (including members that later left or crashed). It is the
// coarse fingerprint of a run: two replays of one log must agree on every
// field, and the fields are exactly runtime.Stats summed group-wide.
type CountersSnapshot struct {
	Delivered   uint64 `json:"delivered"`
	Forwarded   uint64 `json:"forwarded"`
	Duplicates  uint64 `json:"duplicates"`
	Lookups     uint64 `json:"lookups"`
	TableFaults uint64 `json:"table_faults"`

	ChildrenAcked    uint64 `json:"children_acked"`
	Retries          uint64 `json:"retries"`
	SegmentsRepaired uint64 `json:"segments_repaired"`
	SegmentsLost     uint64 `json:"segments_lost"`
}

// String renders the snapshot as a compact single line.
func (c CountersSnapshot) String() string {
	return fmt.Sprintf(
		"delivered=%d forwarded=%d duplicates=%d lookups=%d table_faults=%d acked=%d retries=%d repaired=%d lost=%d",
		c.Delivered, c.Forwarded, c.Duplicates, c.Lookups, c.TableFaults,
		c.ChildrenAcked, c.Retries, c.SegmentsRepaired, c.SegmentsLost)
}

// TraceEvent is one protocol event observed during replay: the obsv bus
// event (node, kind, detail) stamped with the index of the log record whose
// execution produced it. Under the serialized replay config the trace order
// is fully determined by the log, so the trace is compared event-for-event.
type TraceEvent struct {
	Step   int    `json:"step"` // index into Log.Records
	Node   string `json:"node"`
	Kind   string `json:"kind"` // obsv/trace kind: deliver, forward, repair, ...
	Detail string `json:"detail,omitempty"`
}

// String renders the event for divergence reports.
func (e TraceEvent) String() string {
	return fmt.Sprintf("step=%d node=%s kind=%s detail=%q", e.Step, e.Node, e.Kind, e.Detail)
}

// Outcome is everything a replay observably did.
type Outcome struct {
	// Deliveries maps each multicast message ID to the sorted addresses
	// that delivered it to the application.
	Deliveries map[string][]string
	// MsgIDs lists originated message IDs in submission order.
	MsgIDs []string
	// Counters aggregates runtime.Stats over every node ever created.
	Counters CountersSnapshot
	// Trace is the full ordered protocol-event stream.
	Trace []TraceEvent
}

// Divergence describes the first point where two replay outcomes disagree.
// Reason is machine-matchable ("trace", "trace-length", "msgids",
// "deliveries", "counters"); String renders the full diagnostic.
type Divergence struct {
	Reason string
	// Step is the log-record index at which the outcomes diverged (-1 when
	// the divergence is not tied to one record, e.g. counters-only).
	Step int
	// Index is the position in the trace (Reason "trace"/"trace-length")
	// or message list (Reason "msgids") of the first disagreement.
	Index int
	// A and B are the first diverging trace events (Reason "trace"; either
	// may be nil when one trace simply ended).
	A, B *TraceEvent
	// Detail carries reason-specific context (the message ID whose
	// delivery sets differ, the diverging msgid pair, ...).
	Detail string
	// CountersA and CountersB are both runs' full counter snapshots,
	// printed with every divergence so the blast radius is visible even
	// when the first diverging event looks innocuous.
	CountersA, CountersB CountersSnapshot
}

// String renders the divergence for logs and test failures: what diverged,
// the first diverging event with its obsv kind and step, and both runs'
// counter snapshots.
func (d *Divergence) String() string {
	if d == nil {
		return "<no divergence>"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "replay divergence (%s)", d.Reason)
	if d.Step >= 0 {
		fmt.Fprintf(&b, " at step %d", d.Step)
	}
	switch d.Reason {
	case "trace", "trace-length":
		fmt.Fprintf(&b, ", trace index %d\n", d.Index)
		if d.A != nil {
			fmt.Fprintf(&b, "  run A: %s\n", d.A)
		} else {
			b.WriteString("  run A: <trace ended>\n")
		}
		if d.B != nil {
			fmt.Fprintf(&b, "  run B: %s\n", d.B)
		} else {
			b.WriteString("  run B: <trace ended>\n")
		}
	default:
		if d.Detail != "" {
			fmt.Fprintf(&b, ": %s\n", d.Detail)
		} else {
			b.WriteString("\n")
		}
	}
	fmt.Fprintf(&b, "  counters A: %s\n", d.CountersA)
	fmt.Fprintf(&b, "  counters B: %s", d.CountersB)
	return b.String()
}

// Compare checks two replay outcomes for equality and returns nil when they
// match, or a Divergence locating the first disagreement: the event trace
// is compared first (it pins divergence to a specific record and protocol
// event), then originated message IDs, then delivery sets, then the
// aggregate counters.
func Compare(a, b *Outcome) *Divergence {
	base := func(reason string, step, index int) *Divergence {
		return &Divergence{
			Reason: reason, Step: step, Index: index,
			CountersA: a.Counters, CountersB: b.Counters,
		}
	}

	n := len(a.Trace)
	if len(b.Trace) < n {
		n = len(b.Trace)
	}
	for i := 0; i < n; i++ {
		if a.Trace[i] != b.Trace[i] {
			d := base("trace", a.Trace[i].Step, i)
			ea, eb := a.Trace[i], b.Trace[i]
			d.A, d.B = &ea, &eb
			return d
		}
	}
	if len(a.Trace) != len(b.Trace) {
		d := base("trace-length", -1, n)
		if n < len(a.Trace) {
			e := a.Trace[n]
			d.A, d.Step = &e, e.Step
		}
		if n < len(b.Trace) {
			e := b.Trace[n]
			d.B, d.Step = &e, e.Step
		}
		return d
	}

	if len(a.MsgIDs) != len(b.MsgIDs) {
		d := base("msgids", -1, -1)
		d.Detail = fmt.Sprintf("run A originated %d messages, run B %d", len(a.MsgIDs), len(b.MsgIDs))
		return d
	}
	for i := range a.MsgIDs {
		if a.MsgIDs[i] != b.MsgIDs[i] {
			d := base("msgids", -1, i)
			d.Detail = fmt.Sprintf("message %d: run A %q, run B %q", i, a.MsgIDs[i], b.MsgIDs[i])
			return d
		}
	}

	ids := make(map[string]bool, len(a.Deliveries)+len(b.Deliveries))
	for id := range a.Deliveries {
		ids[id] = true
	}
	for id := range b.Deliveries {
		ids[id] = true
	}
	sorted := make([]string, 0, len(ids))
	for id := range ids {
		sorted = append(sorted, id)
	}
	sort.Strings(sorted)
	for _, id := range sorted {
		da, db := a.Deliveries[id], b.Deliveries[id]
		if !equalStrings(da, db) {
			d := base("deliveries", -1, -1)
			d.Detail = fmt.Sprintf("message %q delivered to %d members in run A, %d in run B (A-only: %v, B-only: %v)",
				id, len(da), len(db), diffStrings(da, db), diffStrings(db, da))
			return d
		}
	}

	if a.Counters != b.Counters {
		return base("counters", -1, -1)
	}
	return nil
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// diffStrings returns the elements of a (sorted) missing from b (sorted).
func diffStrings(a, b []string) []string {
	in := make(map[string]bool, len(b))
	for _, s := range b {
		in[s] = true
	}
	var out []string
	for _, s := range a {
		if !in[s] {
			out = append(out, s)
		}
	}
	return out
}
