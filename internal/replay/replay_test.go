package replay

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// buildLog records a small but eventful schedule: a ten-member group, a
// clean multicast, a lossy one, a correlated crash with a repairing
// multicast after it, and a healed finale.
func buildLog(t *testing.T, mode string) *Log {
	t.Helper()
	var buf bytes.Buffer
	rec := NewRecorder(&buf, Header{Mode: mode, NetSeed: 77, Scenario: "unit-test"})
	rec.Bootstrap(0, 4)
	for i := 1; i < 10; i++ {
		rec.Join(i, 0, 4+i%3)
		rec.Maintain(1, false)
	}
	rec.Maintain(3, true)
	rec.Multicast(0, []byte("clean"))
	rec.LinkLoss(-1, 3, 0.4)
	rec.Multicast(2, []byte("lossy"))
	rec.CrashGroup([]int{4, 5})
	rec.Maintain(2, true)
	rec.HealLinks()
	rec.Multicast(1, []byte("healed"))
	if err := rec.Flush(); err != nil {
		t.Fatalf("recorder: %v", err)
	}
	log, err := ReadLog(&buf)
	if err != nil {
		t.Fatalf("ReadLog: %v", err)
	}
	return log
}

func TestRecorderRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	rec := NewRecorder(&buf, Header{Mode: "cam-koorde", Bits: 16, NetSeed: 5, Scenario: "rt", Seed: 9, Note: "n"})
	rec.Bootstrap(0, 6)
	rec.Join(1, 0, 8)
	rec.Leave(1)
	rec.Crash(2)
	rec.CrashGroup([]int{3, 4})
	rec.Maintain(2, true)
	rec.Multicast(0, []byte("hi"))
	rec.LinkLoss(1, -1, 0.5)
	rec.LinkDelay(-1, 2, 40*time.Millisecond)
	rec.Partition(3, 1)
	rec.HealLinks()
	rec.HealPartitions()
	if err := rec.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	if got := rec.Records(); got != 12 {
		t.Errorf("Records() = %d, want 12", got)
	}

	log, err := ReadLog(&buf)
	if err != nil {
		t.Fatalf("ReadLog: %v", err)
	}
	h := log.Header
	if h.V != Version || h.Mode != "cam-koorde" || h.Bits != 16 || h.NetSeed != 5 ||
		h.Scenario != "rt" || h.Seed != 9 || h.Note != "n" {
		t.Errorf("header round-trip mangled: %+v", h)
	}
	if len(log.Records) != 12 {
		t.Fatalf("got %d records, want 12", len(log.Records))
	}
	wantKinds := []string{
		KindBootstrap, KindJoin, KindLeave, KindCrash, KindCrashGroup,
		KindMaintain, KindMulticast, KindLinkLoss, KindLinkDelay,
		KindPartition, KindHealLinks, KindHealPartitions,
	}
	for i, want := range wantKinds {
		if log.Records[i].Kind != want {
			t.Errorf("record %d kind = %q, want %q", i, log.Records[i].Kind, want)
		}
	}
	// Spot-check selector encoding: one-sided wildcards survive the trip.
	loss := log.Records[7]
	if loss.From == nil || *loss.From != 1 || loss.To != nil || loss.Rate != 0.5 {
		t.Errorf("link-loss selectors mangled: %+v", loss)
	}
	delay := log.Records[8]
	if delay.From != nil || delay.To == nil || *delay.To != 2 || delay.DelayMS != 40 {
		t.Errorf("link-delay selectors mangled: %+v", delay)
	}
	if string(log.Records[6].Payload) != "hi" {
		t.Errorf("payload mangled: %q", log.Records[6].Payload)
	}
}

func TestReadLogRejects(t *testing.T) {
	for name, in := range map[string]string{
		"empty":        "",
		"not-header":   `{"kind":"join","idx":1}`,
		"bad-version":  `{"v":99,"kind":"header","mode":"cam-chord","netseed":1}`,
		"bad-mode":     `{"v":1,"kind":"header","mode":"mystery","netseed":1}`,
		"unknown-kind": `{"v":1,"kind":"header","mode":"cam-chord","netseed":1}` + "\n" + `{"kind":"frobnicate"}`,
		"not-json":     `{"v":1,"kind":"header","mode":"cam-chord","netseed":1}` + "\nnope",
	} {
		if _, err := ReadLog(strings.NewReader(in)); err == nil {
			t.Errorf("%s: ReadLog accepted invalid input", name)
		}
	}
}

// TestReplayDeterministic is the core contract: two independent replays of
// one log produce byte-identical outcomes — delivery sets, counters, and
// the full event trace.
func TestReplayDeterministic(t *testing.T) {
	for _, mode := range []string{"cam-chord", "cam-koorde"} {
		t.Run(mode, func(t *testing.T) {
			log := buildLog(t, mode)
			a, err := Run(log)
			if err != nil {
				t.Fatalf("first replay: %v", err)
			}
			b, err := Run(log)
			if err != nil {
				t.Fatalf("second replay: %v", err)
			}
			if d := Compare(a, b); d != nil {
				t.Fatalf("replays diverged:\n%s", d)
			}
			if len(a.MsgIDs) != 3 {
				t.Fatalf("originated %d messages, want 3", len(a.MsgIDs))
			}
			// The clean pre-fault multicast must blanket the whole group.
			if got := len(a.Deliveries[a.MsgIDs[0]]); got != 10 {
				t.Errorf("clean multicast delivered to %d members, want 10", got)
			}
			if a.Counters.Delivered == 0 || a.Counters.Forwarded == 0 {
				t.Errorf("implausible counters: %s", a.Counters)
			}
			if len(a.Trace) == 0 {
				t.Error("replay produced no trace events")
			}
		})
	}
}

// TestReplayDeterministicUnderChurn stresses the virtual-clock path: a
// crash-heavy schedule interleaving joins, leaves, correlated crashes, and
// partial maintenance. Suspicion timestamps and any other clock-keyed state
// come from the replay's virtual clock (one tick per record), so two
// replays must still agree event-for-event.
func TestReplayDeterministicUnderChurn(t *testing.T) {
	for _, mode := range []string{"cam-chord", "cam-koorde"} {
		t.Run(mode, func(t *testing.T) {
			var buf bytes.Buffer
			rec := NewRecorder(&buf, Header{Mode: mode, NetSeed: 31, Scenario: "churn-heavy"})
			rec.Bootstrap(0, 6)
			for i := 1; i < 14; i++ {
				rec.Join(i, (i-1)%3, 4+i%4)
				rec.Maintain(1, i%4 == 0)
			}
			rec.Multicast(0, []byte("pre-churn"))
			// Waves of churn: crash a clique, let partial maintenance run,
			// leave cleanly, rejoin into the scar tissue, repeat.
			rec.CrashGroup([]int{2, 5, 8})
			rec.Maintain(2, false)
			rec.Multicast(1, []byte("mid-crash"))
			rec.Leave(3)
			rec.Join(14, 0, 5)
			rec.Maintain(1, true)
			rec.Crash(7)
			rec.LinkLoss(-1, 1, 0.3)
			rec.Multicast(9, []byte("lossy-churn"))
			rec.HealLinks()
			rec.Join(15, 9, 4)
			rec.Maintain(3, true)
			rec.Multicast(0, []byte("healed"))
			if err := rec.Flush(); err != nil {
				t.Fatalf("recorder: %v", err)
			}
			log, err := ReadLog(&buf)
			if err != nil {
				t.Fatalf("ReadLog: %v", err)
			}
			a, err := Run(log)
			if err != nil {
				t.Fatalf("first replay: %v", err)
			}
			b, err := Run(log)
			if err != nil {
				t.Fatalf("second replay: %v", err)
			}
			if d := Compare(a, b); d != nil {
				t.Fatalf("replays diverged under churn:\n%s", d)
			}
			if len(a.MsgIDs) != 4 {
				t.Fatalf("originated %d messages, want 4", len(a.MsgIDs))
			}
			// The healed finale should reach the surviving membership:
			// 16 created - 4 crashed - 1 left = 11 (joins may rarely fail
			// under replay loss, so allow a small deficit but no silence).
			if got := len(a.Deliveries[a.MsgIDs[3]]); got < 8 {
				t.Errorf("healed multicast delivered to %d members, want >= 8", got)
			}
			if len(a.Trace) == 0 {
				t.Error("churn replay produced no trace events")
			}
		})
	}
}

func TestCompareDivergence(t *testing.T) {
	log := buildLog(t, "cam-chord")
	a, err := Run(log)
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	b, err := Run(log)
	if err != nil {
		t.Fatalf("replay: %v", err)
	}

	// Perturb one trace event: the diagnostic must name its step, kind,
	// and both counter snapshots (which we also skew to check rendering).
	i := len(b.Trace) / 2
	b.Trace[i].Detail = "tampered"
	b.Counters.Forwarded++
	d := Compare(a, b)
	if d == nil {
		t.Fatal("Compare missed a tampered trace")
	}
	if d.Reason != "trace" || d.Index != i {
		t.Errorf("divergence = %q at index %d, want trace at %d", d.Reason, d.Index, i)
	}
	s := d.String()
	for _, want := range []string{
		"replay divergence (trace)",
		a.Trace[i].Kind,
		"counters A:",
		"counters B:",
		"tampered",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("diagnostic missing %q:\n%s", want, s)
		}
	}

	// Delivery-set divergence: reported with the message ID and the
	// members only one run reached.
	b2 := &Outcome{Deliveries: map[string][]string{}, MsgIDs: a.MsgIDs, Counters: a.Counters, Trace: a.Trace}
	for id, addrs := range a.Deliveries {
		b2.Deliveries[id] = addrs
	}
	first := a.MsgIDs[0]
	b2.Deliveries[first] = a.Deliveries[first][1:]
	d = Compare(a, b2)
	if d == nil || d.Reason != "deliveries" {
		t.Fatalf("divergence = %v, want deliveries", d)
	}
	if !strings.Contains(d.String(), a.Deliveries[first][0]) {
		t.Errorf("delivery diagnostic does not name the missing member:\n%s", d)
	}

	// Identical outcomes: no divergence.
	if d := Compare(a, a); d != nil {
		t.Errorf("self-compare diverged:\n%s", d)
	}
}
