package throughput

import (
	"math"
	"testing"

	"camcast/internal/multicast"
)

func buildTree(t *testing.T) *multicast.Tree {
	t.Helper()
	tr, err := multicast.NewTree(5, 0)
	if err != nil {
		t.Fatal(err)
	}
	// 0 -> {1, 2}; 1 -> {3, 4}
	for _, e := range [][2]int{{0, 1}, {0, 2}, {1, 3}, {1, 4}} {
		if err := tr.Deliver(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	return tr
}

func TestByChildren(t *testing.T) {
	tr := buildTree(t)
	// Node 0: 1000/2 = 500; node 1: 400/2 = 200 -> bottleneck.
	bw := []float64{1000, 400, 999, 999, 999}
	got, err := ByChildren(tr, bw)
	if err != nil {
		t.Fatal(err)
	}
	if got != 200 {
		t.Errorf("ByChildren = %g, want 200", got)
	}
}

func TestByChildrenLeavesIgnored(t *testing.T) {
	tr := buildTree(t)
	bw := []float64{1000, 1000, 1, 1, 1}
	got, err := ByChildren(tr, bw)
	if err != nil {
		t.Fatal(err)
	}
	if got != 500 {
		t.Errorf("ByChildren = %g, want 500", got)
	}
}

func TestByProvision(t *testing.T) {
	tr := buildTree(t)
	bw := []float64{1000, 400, 999, 999, 999}
	// Node 0 provisions 4 slots: 250; node 1 provisions 2: 200.
	got, err := ByProvision(tr, bw, []int{4, 2, 7, 7, 7})
	if err != nil {
		t.Fatal(err)
	}
	if got != 200 {
		t.Errorf("ByProvision = %g, want 200", got)
	}
	// Leaves' provisions are irrelevant even when absurd.
	got, err = ByProvision(tr, bw, []int{4, 2, 1000, 1000, 1000})
	if err != nil {
		t.Fatal(err)
	}
	if got != 200 {
		t.Errorf("ByProvision = %g, want 200", got)
	}
}

func TestByProvisionRejectsZeroProvisionInternal(t *testing.T) {
	tr := buildTree(t)
	bw := []float64{1, 1, 1, 1, 1}
	if _, err := ByProvision(tr, bw, []int{0, 1, 1, 1, 1}); err == nil {
		t.Error("zero provision at an internal node should fail")
	}
	// Zero provision at a leaf is fine.
	if _, err := ByProvision(tr, bw, []int{1, 1, 0, 0, 0}); err != nil {
		t.Errorf("leaf provision should be ignored: %v", err)
	}
}

func TestSingleNodeInfinite(t *testing.T) {
	tr, _ := multicast.NewTree(1, 0)
	got, err := ByChildren(tr, []float64{100})
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(got, 1) {
		t.Errorf("single-node ByChildren = %g, want +Inf", got)
	}
	got, err = ByProvision(tr, []float64{100}, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(got, 1) {
		t.Errorf("single-node ByProvision = %g, want +Inf", got)
	}
}

func TestValidation(t *testing.T) {
	if _, err := ByChildren(nil, nil); err == nil {
		t.Error("nil tree should fail")
	}
	tr := buildTree(t)
	if _, err := ByChildren(tr, []float64{1, 2}); err == nil {
		t.Error("bandwidth length mismatch should fail")
	}
	if _, err := ByProvision(tr, make([]float64, 5), []int{1}); err == nil {
		t.Error("provision length mismatch should fail")
	}
	if _, err := ByProvision(nil, nil, nil); err == nil {
		t.Error("nil tree should fail")
	}
}

func TestForwardingLoad(t *testing.T) {
	tr := buildTree(t)
	load := ForwardingLoad(tr)
	want := []int{2, 2, 0, 0, 0}
	for i := range want {
		if load[i] != want[i] {
			t.Fatalf("ForwardingLoad = %v, want %v", load, want)
		}
	}
}
