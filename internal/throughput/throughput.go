// Package throughput implements the paper's throughput model (Section 6.1):
// "Due to limited buffer space at each node, the sustainable multicast
// throughput is decided by the link with the least allocated bandwidth in
// the multicast tree."
//
// Each internal node provisions its upload bandwidth across the children it
// has agreed to serve — its capacity c_x for the CAMs, or the uniform degree
// parameter k for the capacity-unaware baselines — so each of its tree links
// is allocated B_x / provision_x. The sustainable rate of a multicast tree
// is the smallest allocation over its internal nodes (ByProvision). This is
// the model that reproduces the paper's numbers: CAM throughput ≈ p (the
// per-link target), baseline throughput ≈ a/k for minimum bandwidth a, and
// an improvement ratio "roughly proportional to (a+b)/2a".
//
// ByChildren is the complementary realized-load model (bandwidth split over
// the children a node actually has in one particular tree); it is used by
// the load-balance ablation.
package throughput

import (
	"fmt"
	"math"

	"camcast/internal/multicast"
)

// ByProvision returns the sustainable rate of the delivery tree when every
// internal node x allocates bandwidth[x] evenly across provision[x]
// provisioned child slots. A tree with no internal nodes has unbounded
// throughput, reported as +Inf.
func ByProvision(tree *multicast.Tree, bandwidth []float64, provision []int) (float64, error) {
	if err := check(tree, bandwidth); err != nil {
		return 0, err
	}
	if len(provision) != tree.Len() {
		return 0, fmt.Errorf("throughput: %d provisions for %d nodes", len(provision), tree.Len())
	}
	rate := math.Inf(1)
	for pos := 0; pos < tree.Len(); pos++ {
		if tree.Degree(pos) == 0 {
			continue
		}
		if provision[pos] < 1 {
			return 0, fmt.Errorf("throughput: internal node %d has provision %d", pos, provision[pos])
		}
		if link := bandwidth[pos] / float64(provision[pos]); link < rate {
			rate = link
		}
	}
	return rate, nil
}

// ByChildren returns the sustainable rate when every internal node splits
// its bandwidth across the children it actually has in this tree.
func ByChildren(tree *multicast.Tree, bandwidth []float64) (float64, error) {
	if err := check(tree, bandwidth); err != nil {
		return 0, err
	}
	rate := math.Inf(1)
	for pos := 0; pos < tree.Len(); pos++ {
		d := tree.Degree(pos)
		if d == 0 {
			continue
		}
		if link := bandwidth[pos] / float64(d); link < rate {
			rate = link
		}
	}
	return rate, nil
}

// ForwardingLoad returns, for every node, the number of message copies it
// forwards for one multicast from the given tree — i.e. its out-degree.
// Aggregated over many sources this measures how evenly the flooding
// approach spreads forwarding work (Section 5.1's load argument).
func ForwardingLoad(tree *multicast.Tree) []int {
	load := make([]int, tree.Len())
	for pos := 0; pos < tree.Len(); pos++ {
		load[pos] = tree.Degree(pos)
	}
	return load
}

func check(tree *multicast.Tree, bandwidth []float64) error {
	if tree == nil {
		return fmt.Errorf("throughput: nil tree")
	}
	if len(bandwidth) != tree.Len() {
		return fmt.Errorf("throughput: %d bandwidths for %d nodes", len(bandwidth), tree.Len())
	}
	return nil
}
