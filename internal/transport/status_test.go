package transport

import (
	"context"
	"errors"
	"fmt"
	"testing"
)

// errStatusTest is the sentinel used by the status-code round-trip tests.
// Registered once per process (codes are append-only) at a number far from
// the runtime's real assignments.
var errStatusTest = errors.New("status test failed")

const testStatusCode = 63

var statusTestOnce = func() func() {
	var done bool
	return func() {
		if !done {
			RegisterStatusError(testStatusCode, errStatusTest)
			done = true
		}
	}
}()

// TestStatusErrorRoundTrip asserts that a handler error wrapping a
// registered sentinel survives a TCP round trip: the caller sees the remote
// message verbatim AND errors.Is matches the sentinel, with no string
// parsing involved.
func TestStatusErrorRoundTrip(t *testing.T) {
	statusTestOnce()
	a, b := newTCPPair(t)
	b.Register(b.Addr(), func(from, kind string, payload any) (any, error) {
		return nil, fmt.Errorf("%w: while serving %s", errStatusTest, kind)
	})
	_, err := a.Call(context.Background(), "client", b.Addr(), "probe", echoPayload{})
	if err == nil {
		t.Fatal("want handler error")
	}
	if !errors.Is(err, errStatusTest) {
		t.Fatalf("errors.Is(err, sentinel) = false for %v (%T)", err, err)
	}
	if want := "status test failed: while serving probe"; err.Error() != want {
		t.Fatalf("err = %q, want remote message %q", err, want)
	}
	if errors.Is(err, ErrUnreachable) {
		t.Fatalf("classified handler error marked the peer unreachable: %v", err)
	}
}

// TestStatusErrorUnclassified asserts that handler errors without a
// registered code still arrive as plain opaque errors.
func TestStatusErrorUnclassified(t *testing.T) {
	statusTestOnce()
	a, b := newTCPPair(t)
	b.Register(b.Addr(), func(from, kind string, payload any) (any, error) {
		return nil, errors.New("plain failure")
	})
	_, err := a.Call(context.Background(), "client", b.Addr(), "probe", echoPayload{})
	if err == nil || err.Error() != "plain failure" {
		t.Fatalf("err = %v, want plain failure", err)
	}
	if errors.Is(err, errStatusTest) {
		t.Fatalf("unclassified error matched a sentinel: %v", err)
	}
}

// TestRegisterStatusError covers the registry's guardrails.
func TestRegisterStatusError(t *testing.T) {
	statusTestOnce()
	// Same pairing again: idempotent.
	RegisterStatusError(testStatusCode, errStatusTest)
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: want panic", name)
			}
		}()
		f()
	}
	mustPanic("code 0", func() { RegisterStatusError(0, errStatusTest) })
	mustPanic("code out of range", func() { RegisterStatusError(maxStatusCode, errStatusTest) })
	mustPanic("nil sentinel", func() { RegisterStatusError(testStatusCode, nil) })
	mustPanic("rebind", func() { RegisterStatusError(testStatusCode, errors.New("other")) })
	if statusSentinelFor(testStatusCode) != errStatusTest {
		t.Fatal("lookup after rebind attempts")
	}
	if statusSentinelFor(0) != nil || statusSentinelFor(maxStatusCode+5) != nil {
		t.Fatal("out-of-range lookups must return nil")
	}
}
