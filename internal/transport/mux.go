package transport

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// muxConn is one multiplexed client connection to a peer. Any number of
// calls share it concurrently: each call tags its request frame with a
// fresh call ID, parks on a channel in pending, and a single reader
// goroutine completes calls — in whatever order the peer answers — as
// response frames arrive. Request writes go through the connection's
// coalescing frameWriter: a lone call flushes inline; a concurrent burst
// batches into few syscalls.
type muxConn struct {
	t    *TCP
	to   string
	conn net.Conn
	w    *frameWriter

	nextID atomic.Uint64

	// sweepID is this connection's key in the transport's deadline
	// sweeper, which enforces per-call deadlines for every connection of
	// the transport off one shared timer wheel.
	sweepID uint64

	pmu      sync.Mutex
	pending  map[uint64]pendingCall
	earliest time.Time // soonest pending deadline the sweeper is armed for
	failed   error     // sticky; set once the conn is torn down
}

type pendingCall struct {
	ch       chan callResult
	deadline time.Time // zero means no deadline
}

type callResult struct {
	payload any
	errMsg  string // handler-level error (the peer is alive)
	errCode uint64 // wire status code classifying errMsg (0 = unclassified)
	err     error  // transport-level error (the conn is broken)
}

// errCallTimeout reports a call abandoned by its per-call deadline. The
// connection itself may still be healthy (a slow handler), so the conn is
// not torn down; the reader discards the late response when it arrives.
var errCallTimeout = errors.New("transport: rpc deadline exceeded")

// resultChanPool recycles the per-call result channels. A channel may only
// be returned to the pool by a caller that received its result: a call
// abandoned by context cancellation may still get a late send from the
// reader, so its channel must be left to the garbage collector instead of
// handed to a new call.
var resultChanPool = sync.Pool{
	New: func() any { return make(chan callResult, 1) },
}

// encodeError marks a payload encoding failure, which happens before any
// bytes reach the socket and therefore does not poison the connection.
type encodeError struct{ error }

func (e *encodeError) Unwrap() error { return e.error }

func newMuxConn(t *TCP, to string, nc net.Conn) *muxConn {
	c := &muxConn{
		t:       t,
		to:      to,
		conn:    nc,
		w:       newFrameWriter(nc, t.rpcTimeout, t.GroupBacklogLimit, &t.obs),
		pending: make(map[uint64]pendingCall),
	}
	c.sweepID = t.sweep.register(c)
	return c
}

// roundTrip issues one pipelined request and waits for its response, the
// context, or the deadline — whichever happens first.
func (c *muxConn) roundTrip(ctx context.Context, deadline time.Time, gid uint64, from, to, kind string, payload any) (any, error) {
	id := c.nextID.Add(1)
	ch := resultChanPool.Get().(chan callResult)

	c.pmu.Lock()
	if c.failed != nil {
		err := c.failed
		c.pmu.Unlock()
		return nil, err
	}
	c.pending[id] = pendingCall{ch: ch, deadline: deadline}
	solo := len(c.pending) == 1 // no sibling call in flight: flush inline
	arm := false
	if !deadline.IsZero() && (c.earliest.IsZero() || deadline.Before(c.earliest)) {
		// The sweeper is armed for a later (or no) deadline on this
		// connection; arm it for this call's sooner one.
		c.earliest = deadline
		arm = true
	}
	c.pmu.Unlock()
	if arm {
		c.t.sweep.arm(c.sweepID, deadline)
	}

	err := c.w.writeRequest(id, gid, from, to, kind, payload, c.t.codec(), solo)
	if err != nil {
		c.forget(id)
		var encErr *encodeError
		if !errors.As(err, &encErr) {
			// A socket write error leaves the stream in an unknown state
			// (a frame may be half-written): the conn is unusable. An
			// encode error happened before any bytes were buffered, so
			// the conn survives it.
			c.t.dropConn(c.to, c)
			c.fail(err)
		}
		return nil, err
	}

	// Deadlines are enforced by the transport's shared deadline sweeper
	// (which completes an expired call through its result channel), not
	// by a per-call timer: at pipelining depth a timer per call costs two
	// timer-heap operations per RPC for a deadline that almost never
	// fires, and the sweeper amortizes even its single wheel entry across
	// every pipelined call on the connection.
	select {
	case res := <-ch:
		// Only a channel whose result was received may be recycled; see
		// resultChanPool.
		resultChanPool.Put(ch)
		if res.err != nil {
			return nil, res.err
		}
		if res.errMsg != "" {
			return nil, &handlerError{msg: res.errMsg, code: res.errCode}
		}
		return res.payload, nil
	case <-ctx.Done():
		c.forget(id)
		return nil, ctx.Err()
	}
}

// expire completes every call whose deadline has passed with
// errCallTimeout and returns the connection's next pending deadline (zero
// when none), which the sweeper rearms. A firing with nothing overdue —
// a stale wheel entry from a deadline that moved earlier — costs one map
// scan and rearms for the true earliest.
func (c *muxConn) expire(now time.Time) time.Time {
	c.pmu.Lock()
	var next time.Time
	for id, pc := range c.pending {
		if pc.deadline.IsZero() {
			continue
		}
		if !pc.deadline.After(now) {
			delete(c.pending, id)
			pc.ch <- callResult{err: errCallTimeout} // buffered; never blocks
		} else if next.IsZero() || pc.deadline.Before(next) {
			next = pc.deadline
		}
	}
	c.earliest = next
	c.pmu.Unlock()
	return next
}

// readLoop demultiplexes response frames to pending calls until the
// connection dies, then fails whatever is still in flight.
func (c *muxConn) readLoop() {
	defer c.t.wg.Done()
	br := bufio.NewReaderSize(c.conn, 64*1024)
	var buf []byte
	for {
		body, next, err := readFrame(br, buf)
		if err != nil {
			c.t.dropConn(c.to, c)
			c.fail(fmt.Errorf("transport: connection to %s lost: %w", c.to, err))
			return
		}
		buf = next
		c.t.obs.bytesRecv.Add(uint64(len(body)) + 4)
		frameType, callID, _, rest, err := frameHeader(body)
		if err != nil || frameType != frameResponse {
			c.t.dropConn(c.to, c)
			c.fail(fmt.Errorf("transport: bad frame from %s (type %d, %v)", c.to, frameType, err))
			return
		}
		payload, errMsg, errCode, err := parseResponse(rest)
		res := callResult{payload: payload, errMsg: errMsg, errCode: errCode}
		if err != nil {
			// One undecodable response poisons only its own call; the
			// frame boundary is intact, so the stream keeps going.
			res = callResult{err: fmt.Errorf("transport: response from %s: %w", c.to, err)}
		}
		c.pmu.Lock()
		pc, ok := c.pending[callID]
		delete(c.pending, callID)
		c.pmu.Unlock()
		if ok {
			pc.ch <- res // buffered; never blocks
		}
	}
}

// forget abandons one pending call (timeout, context cancellation).
func (c *muxConn) forget(id uint64) {
	c.pmu.Lock()
	delete(c.pending, id)
	c.pmu.Unlock()
}

// fail tears the connection down and completes every pending call with
// err. Idempotent; the first error wins.
func (c *muxConn) fail(err error) {
	c.pmu.Lock()
	if c.failed != nil {
		c.pmu.Unlock()
		return
	}
	c.failed = err
	pending := c.pending
	c.pending = nil
	c.pmu.Unlock()
	c.t.sweep.unregister(c.sweepID)
	c.conn.Close()
	c.w.close()
	for _, pc := range pending {
		pc.ch <- callResult{err: err}
	}
}
