package transport

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Wire format. A connection starts with a 4-byte preamble from the dialer —
// magic "CAM" plus a version byte — then carries a stream of
// length-prefixed frames in both directions:
//
//	[4B big-endian body length]
//	[1B frame type: 1=request, 2=response]
//	[8B big-endian call ID]
//	[uvarint group flow label]
//	request:  [str From][str To][str Kind][1B payload tag][payload bytes]
//	response: [str Err][uvarint status code, only when Err != ""]
//	          [1B payload tag][payload bytes]
//
// where [str] is a uvarint length prefix followed by the bytes. Call IDs
// are assigned by the requester and echoed in the response; responses may
// arrive in any order, which is what lets N calls share one socket with N
// RPCs in flight. Payload tag 0 is nil, tag 1 is the gob fallback, and
// tags >= WireTagUserMin name types registered with RegisterWireDecoder.
//
// Version 2 reordered the runtime's bulk payload encodings (multicastReq,
// floodReq) to put the payload bytes last, which is what lets the frame
// writer scatter-gather them from a shared blob; v1 peers would misparse
// those payloads, so the preamble version rejects them outright.
//
// Version 3 added the group flow label after the call ID, in both
// directions: all groups hosted by two processes share one connection per
// peer pair, and the label routes each inbound frame to the right group's
// endpoint table. Label 0 is the default group, so single-group traffic
// pays one extra header byte. Responses echo the request's label, which is
// what lets the writer account and schedule them per tenant.
//
// Version 4 appends a uvarint status code after a non-empty response Err
// string, classifying handler errors (see RegisterStatusError) so callers
// can match sentinel errors with errors.Is instead of parsing message
// text. Code 0 is unclassified; success responses carry no code.

const (
	wireVersion byte = 4

	frameRequest  byte = 1
	frameResponse byte = 2

	// maxFrameSize caps one frame's body, bounding the allocation a
	// malformed or hostile length prefix can cause.
	maxFrameSize = 1 << 26 // 64 MiB

	// frameHeaderSize is the minimum header length: type byte, call ID,
	// and at least one group-label byte (the label is a uvarint).
	frameHeaderSize = 1 + 8 + 1
)

var preamble = [4]byte{'C', 'A', 'M', wireVersion}

// writePreamble sends the connection preamble (dialer side).
func writePreamble(w io.Writer) error {
	_, err := w.Write(preamble[:])
	return err
}

// readPreamble validates the connection preamble (acceptor side).
func readPreamble(r io.Reader) error {
	var got [4]byte
	if _, err := io.ReadFull(r, got[:]); err != nil {
		return fmt.Errorf("transport: read preamble: %w", err)
	}
	if got != preamble {
		return fmt.Errorf("transport: bad preamble %x (want %x)", got, preamble)
	}
	return nil
}

// readFrame reads one length-prefixed frame body into buf (growing it as
// needed) and returns the body slice, which is only valid until the next
// call with the same buf.
func readFrame(r *bufio.Reader, buf []byte) (body, next []byte, err error) {
	var lenb [4]byte
	if _, err := io.ReadFull(r, lenb[:]); err != nil {
		return nil, buf, err
	}
	n := binary.BigEndian.Uint32(lenb[:])
	if n < frameHeaderSize || n > maxFrameSize {
		return nil, buf, fmt.Errorf("transport: frame length %d out of range", n)
	}
	if cap(buf) < int(n) {
		buf = make([]byte, n)
	}
	body = buf[:n]
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, buf, err
	}
	return body, buf, nil
}

// readFrameBlob reads one length-prefixed frame body directly into a
// pooled blob, so a bulk payload travels socket -> blob with no staging
// copy (bufio hands reads larger than its remaining buffer straight to the
// socket). The caller owns the returned blob's single reference.
func readFrameBlob(r *bufio.Reader) (*Blob, error) {
	var lenb [4]byte
	if _, err := io.ReadFull(r, lenb[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(lenb[:])
	if n < frameHeaderSize || n > maxFrameSize {
		return nil, fmt.Errorf("transport: frame length %d out of range", n)
	}
	b := NewBlob(int(n))
	if _, err := io.ReadFull(r, b.Bytes()); err != nil {
		b.Release()
		return nil, err
	}
	return b, nil
}

// putFrameLen writes the 4-byte frame length prefix.
func putFrameLen(dst []byte, n int) {
	binary.BigEndian.PutUint32(dst, uint32(n))
}

// appendFrameHeader appends the frame type, call ID, and group flow label.
func appendFrameHeader(b []byte, frameType byte, callID, gid uint64) []byte {
	b = append(b, frameType)
	b = binary.BigEndian.AppendUint64(b, callID)
	return binary.AppendUvarint(b, gid)
}

// appendRequestBody appends a full request frame body.
func appendRequestBody(b []byte, callID, gid uint64, from, to, kind string, payload any, codec Codec) ([]byte, error) {
	b = appendFrameHeader(b, frameRequest, callID, gid)
	b = AppendString(b, from)
	b = AppendString(b, to)
	b = AppendString(b, kind)
	return appendPayload(b, payload, codec)
}

// appendResponseBody appends a full response frame body.
func appendResponseBody(b []byte, callID, gid uint64, errMsg string, errCode uint64, payload any, codec Codec) ([]byte, error) {
	b = appendFrameHeader(b, frameResponse, callID, gid)
	b = AppendString(b, errMsg)
	if errMsg != "" {
		// Error responses carry a status code instead of a payload.
		b = binary.AppendUvarint(b, errCode)
		return append(b, wireTagNil), nil
	}
	return appendPayload(b, payload, codec)
}

// frameHeader splits a frame body into its header fields and the rest.
// readFrame guarantees len(body) >= frameHeaderSize, but the group label is
// variable-width, so a truncated or malformed label is still possible.
func frameHeader(body []byte) (frameType byte, callID, gid uint64, rest []byte, err error) {
	gid, n := binary.Uvarint(body[9:])
	if n <= 0 {
		return 0, 0, 0, nil, fmt.Errorf("transport: bad group label in frame header")
	}
	return body[0], binary.BigEndian.Uint64(body[1:9]), gid, body[9+n:], nil
}

// parsedRequest is a decoded request frame whose body lives in the pooled
// refcounted blob the frame was read into, so decoding can happen on a
// worker goroutine while the reader loop reads the next frame — and so a
// bulk payload can be re-shared outbound (relay fan-out) without ever
// being copied again. The caller owns one reference on body and releases
// it when the request is fully served; payload is a view into it. from and
// kind are copied out (handlers may retain them past the blob's release);
// to is a transient view only used for the endpoint lookup.
type parsedRequest struct {
	callID  uint64
	gid     uint64
	from    string
	to      string
	kind    string
	payload []byte
	body    *Blob
}

// parseRequest decodes a request frame body (rest, the blob's bytes after
// the frame header). Ownership of the caller's blob reference transfers:
// on success the returned request holds it, on error parseRequest releases
// it.
func parseRequest(callID, gid uint64, rest []byte, blob *Blob) (parsedRequest, error) {
	r := NewWireReader(rest)
	req := parsedRequest{
		callID: callID,
		gid:    gid,
		from:   r.String(),
		to:     r.stringView(),
		kind:   r.String(),
		body:   blob,
	}
	if r.err != nil {
		blob.Release()
		return parsedRequest{}, r.err
	}
	if r.off >= len(rest) {
		blob.Release()
		return parsedRequest{}, fmt.Errorf("%w: request without payload", ErrWireDecode)
	}
	req.payload = rest[r.off:]
	return req, nil
}

// parseResponse decodes a response frame body (after the frame header),
// returning the handler error string, its status code, and the decoded
// payload.
func parseResponse(rest []byte) (payload any, errMsg string, errCode uint64, err error) {
	r := NewWireReader(rest)
	errMsg = r.String()
	if r.err != nil {
		return nil, "", 0, r.err
	}
	if errMsg != "" {
		errCode = r.Uvarint()
		if r.err != nil {
			return nil, "", 0, r.err
		}
		return nil, errMsg, errCode, nil
	}
	payload, err = decodePayload(rest[r.off:])
	return payload, "", 0, err
}
