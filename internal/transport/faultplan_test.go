package transport

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestFaultEventWindows(t *testing.T) {
	e := FaultEvent{Kind: FaultCrash, At: 10, Until: 20}
	for _, tc := range []struct {
		step uint64
		want bool
	}{{9, false}, {10, true}, {19, true}, {20, false}} {
		if got := e.active(tc.step); got != tc.want {
			t.Errorf("active(%d) = %v, want %v", tc.step, got, tc.want)
		}
	}
	// Until == 0 never heals.
	forever := FaultEvent{Kind: FaultCrash, At: 5}
	if !forever.active(1 << 40) {
		t.Error("event with Until=0 should stay active forever")
	}
}

func TestFaultPlanNilSafe(t *testing.T) {
	var p *FaultPlan
	if p.CrashedAt("a", 0) {
		t.Error("nil plan reported a crash")
	}
	if _, ok := p.partitionAt("a", 0); ok {
		t.Error("nil plan reported a partition")
	}
	if p.lossAt("a", "b", 0) != 0 || p.delayAt("a", "b", 0) != 0 {
		t.Error("nil plan reported loss or delay")
	}
}

func TestFaultPlanCrashWindow(t *testing.T) {
	n := NewNetwork(1)
	n.Register("a", echoHandler(t))
	n.Register("b", echoHandler(t))
	// The first call is index 0; crash b for calls [1, 3).
	n.SetFaultPlan(&FaultPlan{Events: []FaultEvent{
		{Kind: FaultCrash, At: 1, Until: 3, Addrs: []string{"b"}},
	}})

	if _, err := n.Call(context.Background(), "a", "b", "x", nil); err != nil {
		t.Fatalf("call 0 (before window): %v", err)
	}
	// Calls 1 and 2: b is crashed, in both directions, and Registered
	// reflects it.
	if _, err := n.Call(context.Background(), "a", "b", "x", nil); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("call 1 err = %v, want ErrUnreachable", err)
	}
	if n.Registered("b") {
		t.Error("crashed endpoint should not report Registered")
	}
	if _, err := n.Call(context.Background(), "b", "a", "x", nil); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("call 2 (from crashed) err = %v, want ErrUnreachable", err)
	}
	// Call 3: healed.
	if _, err := n.Call(context.Background(), "a", "b", "x", nil); err != nil {
		t.Fatalf("call 3 (after heal): %v", err)
	}
	if !n.Registered("b") {
		t.Error("healed endpoint should report Registered again")
	}
}

func TestFaultPlanPartitionWindow(t *testing.T) {
	n := NewNetwork(1)
	n.Register("a", echoHandler(t))
	n.Register("b", echoHandler(t))
	n.SetFaultPlan(&FaultPlan{Events: []FaultEvent{
		{Kind: FaultPartition, At: 0, Until: 2, Addrs: []string{"b"}, Partition: 1},
	}})
	if _, err := n.Call(context.Background(), "a", "b", "x", nil); !errors.Is(err, ErrPartitioned) {
		t.Fatalf("err = %v, want ErrPartitioned", err)
	}
	if _, err := n.Call(context.Background(), "b", "a", "x", nil); !errors.Is(err, ErrPartitioned) {
		t.Fatalf("reverse err = %v, want ErrPartitioned", err)
	}
	// Window over: same partition again.
	if _, err := n.Call(context.Background(), "a", "b", "x", nil); err != nil {
		t.Fatalf("after window: %v", err)
	}
}

func TestFaultPlanBurstLoss(t *testing.T) {
	n := NewNetwork(42)
	n.Register("b", echoHandler(t))
	n.SetFaultPlan(&FaultPlan{Events: []FaultEvent{
		{Kind: FaultLoss, At: 0, Until: 200, Rate: 0.5},
	}})
	dropped := 0
	for i := 0; i < 200; i++ {
		if _, err := n.Call(context.Background(), "a", "b", "x", nil); err != nil {
			if !errors.Is(err, ErrDropped) {
				t.Fatalf("err = %v, want ErrDropped", err)
			}
			dropped++
		}
	}
	if dropped < 60 || dropped > 140 {
		t.Errorf("dropped %d of 200 at rate 0.5; schedule looks broken", dropped)
	}
	// Window healed: everything goes through.
	for i := 0; i < 50; i++ {
		if _, err := n.Call(context.Background(), "a", "b", "x", nil); err != nil {
			t.Fatalf("post-heal call failed: %v", err)
		}
	}
}

func TestFaultPlanLinkDelayAndDeadline(t *testing.T) {
	n := NewNetwork(1)
	n.Register("b", echoHandler(t))
	n.SetFaultPlan(&FaultPlan{Events: []FaultEvent{
		{Kind: FaultDelay, At: 0, From: "a", To: "b", Delay: 200 * time.Millisecond},
	}})

	// The delay applies only to the matching link.
	start := time.Now()
	if _, err := n.Call(context.Background(), "c", "b", "x", nil); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d > 100*time.Millisecond {
		t.Errorf("unmatched link delayed by %v", d)
	}

	// A context deadline interrupts the injected delay.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start = time.Now()
	_, err := n.Call(ctx, "a", "b", "x", nil)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if d := time.Since(start); d > 150*time.Millisecond {
		t.Errorf("deadline did not interrupt the delay (took %v)", d)
	}

	// Without a deadline the call waits out the injected delay.
	start = time.Now()
	if _, err := n.Call(context.Background(), "a", "b", "x", nil); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 200*time.Millisecond {
		t.Errorf("delayed link completed in %v, want >= 200ms", d)
	}
}

func TestFaultPlanDeterministicDrops(t *testing.T) {
	run := func() []bool {
		n := NewNetwork(7)
		n.Register("b", echoHandler(t))
		n.SetFaultPlan(&FaultPlan{Events: []FaultEvent{
			{Kind: FaultLoss, At: 0, Rate: 0.4},
		}})
		out := make([]bool, 100)
		for i := range out {
			_, err := n.Call(context.Background(), "a", "b", "x", nil)
			out[i] = err == nil
		}
		return out
	}
	first, second := run(), run()
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("call %d differed between identical seeded runs", i)
		}
	}
}
