package transport

import "errors"

// Status codes classify handler errors on the wire. A handler that fails
// with (or wrapping) a registered sentinel has that sentinel's code
// appended after the error string in the response frame (wire v4), and the
// caller-side dispatch rehydrates an error that both preserves the remote
// message and unwraps to the sentinel — so errors.Is matches across the
// wire without parsing message text. Code 0 means unclassified; such
// errors surface as plain opaque errors, exactly as before v4.
//
// Like RegisterWireDecoder, registration happens at init time (or under a
// sync.Once) before any traffic flows, so the table needs no locking.
const maxStatusCode = 64

var statusSentinels [maxStatusCode]error

// RegisterStatusError binds a wire status code (1..63) to a sentinel
// error. Re-registering the same pairing is a no-op; rebinding a code to a
// different sentinel panics, as both sides of every connection must agree
// on the numbering forever.
func RegisterStatusError(code uint64, sentinel error) {
	if code == 0 || code >= maxStatusCode {
		panic("transport: status code out of range")
	}
	if sentinel == nil {
		panic("transport: nil status sentinel")
	}
	if prev := statusSentinels[code]; prev != nil && prev != sentinel {
		panic("transport: status code registered twice")
	}
	statusSentinels[code] = sentinel
}

// statusCodeFor maps a handler error to its registered code via errors.Is
// (0 when unclassified).
func statusCodeFor(err error) uint64 {
	for code, s := range statusSentinels {
		if s != nil && errors.Is(err, s) {
			return uint64(code)
		}
	}
	return 0
}

// statusSentinelFor returns the sentinel registered for code (nil when the
// code is 0, out of range, or unknown — e.g. sent by a newer peer).
func statusSentinelFor(code uint64) error {
	if code == 0 || code >= maxStatusCode {
		return nil
	}
	return statusSentinels[code]
}

// statusError is the caller-side rehydration of a classified handler
// error: Error preserves the remote message verbatim, Unwrap exposes the
// registered sentinel so errors.Is sees through it.
type statusError struct {
	msg      string
	sentinel error
}

func (e *statusError) Error() string { return e.msg }
func (e *statusError) Unwrap() error { return e.sentinel }
