package transport

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"camcast/internal/obsv"
)

// benchPayload mirrors a typical control-plane RPC body: a short string key
// plus a small binary payload, the shape of multicast segment headers.
type benchPayload struct {
	Key   string
	Value []byte
	Seq   uint64
}

var benchRegisterOnce sync.Once

func benchSetup(b *testing.B, instrument ...*obsv.Registry) (*TCP, *TCP) {
	b.Helper()
	benchRegisterOnce.Do(func() { registerBenchPayload() })
	a, err := NewTCP("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	srv, err := NewTCP("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	for _, reg := range instrument {
		a.Instrument(reg)
		srv.Instrument(reg)
	}
	b.Cleanup(func() {
		a.Close()
		srv.Close()
	})
	srv.Register(srv.Addr(), func(from, kind string, payload any) (any, error) {
		return payload, nil
	})
	return a, srv
}

// BenchmarkTCPCall measures one serial request/response exchange.
func BenchmarkTCPCall(b *testing.B) {
	a, srv := benchSetup(b)
	ctx := context.Background()
	req := benchPayload{Key: "segment", Value: make([]byte, 64), Seq: 1}
	// Warm the pooled connection so dial cost is not in the loop.
	if _, err := a.Call(ctx, "bench", srv.Addr(), "echo", req); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.Call(ctx, "bench", srv.Addr(), "echo", req); err != nil {
			b.Fatal(err)
		}
	}
}

// benchParallel issues b.N calls from exactly n concurrent goroutines
// against one destination, the fan-out pattern ForwardParallel produces:
// a capacity-c node pushing c child segments at once.
func benchParallel(b *testing.B, n int, instrument ...*obsv.Registry) {
	a, srv := benchSetup(b, instrument...)
	ctx := context.Background()
	req := benchPayload{Key: "segment", Value: make([]byte, 64), Seq: 1}
	if _, err := a.Call(ctx, "bench", srv.Addr(), "echo", req); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	per := b.N / n
	extra := b.N % n
	for w := 0; w < n; w++ {
		iters := per
		if w < extra {
			iters++
		}
		wg.Add(1)
		go func(iters int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				if _, err := a.Call(ctx, "bench", srv.Addr(), "echo", req); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					return
				}
			}
		}(iters)
	}
	wg.Wait()
	if firstErr != nil {
		b.Fatal(firstErr)
	}
}

func BenchmarkTCPCallParallel1(b *testing.B)  { benchParallel(b, 1) }
func BenchmarkTCPCallParallel4(b *testing.B)  { benchParallel(b, 4) }
func BenchmarkTCPCallParallel16(b *testing.B) { benchParallel(b, 16) }

// BenchmarkTCPCallParallel16Instrumented is the same pipelined fan-out with
// a metrics registry attached on both ends: latency histogram, in-flight
// gauge, call counters, and flush-batch histogram all live.
func BenchmarkTCPCallParallel16Instrumented(b *testing.B) {
	benchParallel(b, 16, obsv.NewRegistry())
}

// BenchmarkTCPCallPayloadSizes measures serial exchanges across payload
// sizes, separating framing overhead from byte-shovelling throughput.
func BenchmarkTCPCallPayloadSizes(b *testing.B) {
	for _, size := range []int{16, 256, 4096} {
		b.Run(fmt.Sprintf("%dB", size), func(b *testing.B) {
			a, srv := benchSetup(b)
			ctx := context.Background()
			req := benchPayload{Key: "segment", Value: make([]byte, size), Seq: 1}
			if _, err := a.Call(ctx, "bench", srv.Addr(), "echo", req); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := a.Call(ctx, "bench", srv.Addr(), "echo", req); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
