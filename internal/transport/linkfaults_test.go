package transport

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestFaultPlanPerLinkLoss asserts that FaultLoss events with From/To
// selectors hit only the matching direction: a->b drops at rate 1 while
// b->a and unrelated links flow untouched.
func TestFaultPlanPerLinkLoss(t *testing.T) {
	n := NewNetwork(7)
	for _, addr := range []string{"a", "b", "c"} {
		n.Register(addr, echoHandler(t))
	}
	n.SetFaultPlan(&FaultPlan{Events: []FaultEvent{
		{Kind: FaultLoss, At: 0, From: "a", To: "b", Rate: 1},
	}})

	if _, err := n.Call(context.Background(), "a", "b", "x", nil); !errors.Is(err, ErrDropped) {
		t.Fatalf("a->b err = %v, want ErrDropped", err)
	}
	if _, err := n.Call(context.Background(), "b", "a", "x", nil); err != nil {
		t.Fatalf("b->a should flow (asymmetric loss): %v", err)
	}
	if _, err := n.Call(context.Background(), "a", "c", "x", nil); err != nil {
		t.Fatalf("a->c should flow: %v", err)
	}
}

// TestFaultPlanLossOneSidedSelector checks the single-selector forms: a
// From-only event silences everything a sender says, a To-only event
// silences everything a receiver hears.
func TestFaultPlanLossOneSidedSelector(t *testing.T) {
	n := NewNetwork(7)
	for _, addr := range []string{"a", "b", "c"} {
		n.Register(addr, echoHandler(t))
	}
	n.SetFaultPlan(&FaultPlan{Events: []FaultEvent{
		{Kind: FaultLoss, At: 0, From: "a", Rate: 1},
	}})
	if _, err := n.Call(context.Background(), "a", "b", "x", nil); !errors.Is(err, ErrDropped) {
		t.Fatalf("a->b err = %v, want ErrDropped", err)
	}
	if _, err := n.Call(context.Background(), "a", "c", "x", nil); !errors.Is(err, ErrDropped) {
		t.Fatalf("a->c err = %v, want ErrDropped", err)
	}
	if _, err := n.Call(context.Background(), "c", "a", "x", nil); err != nil {
		t.Fatalf("c->a should flow: %v", err)
	}

	n.SetFaultPlan(&FaultPlan{Events: []FaultEvent{
		{Kind: FaultLoss, At: 0, To: "b", Rate: 1},
	}})
	if _, err := n.Call(context.Background(), "c", "b", "x", nil); !errors.Is(err, ErrDropped) {
		t.Fatalf("c->b err = %v, want ErrDropped", err)
	}
	if _, err := n.Call(context.Background(), "b", "c", "x", nil); err != nil {
		t.Fatalf("b->c should flow: %v", err)
	}
}

// TestSetLinkLoss exercises the imperative per-link knob: exact links,
// wildcards, the max-wins composition with the global drop rate, and
// removal via rate 0 / ClearLinkFaults.
func TestSetLinkLoss(t *testing.T) {
	n := NewNetwork(11)
	for _, addr := range []string{"a", "b", "c"} {
		n.Register(addr, echoHandler(t))
	}
	n.SetLinkLoss("a", "b", 1)
	if _, err := n.Call(context.Background(), "a", "b", "x", nil); !errors.Is(err, ErrDropped) {
		t.Fatalf("a->b err = %v, want ErrDropped", err)
	}
	if _, err := n.Call(context.Background(), "b", "a", "x", nil); err != nil {
		t.Fatalf("reverse direction should flow: %v", err)
	}

	// Wildcard receiver: nothing reaches b from anywhere.
	n.SetLinkLoss("", "b", 1)
	if _, err := n.Call(context.Background(), "c", "b", "x", nil); !errors.Is(err, ErrDropped) {
		t.Fatalf("c->b err = %v, want ErrDropped", err)
	}

	// Rate 0 removes an entry; ClearLinkFaults removes the rest.
	n.SetLinkLoss("", "b", 0)
	if _, err := n.Call(context.Background(), "c", "b", "x", nil); err != nil {
		t.Fatalf("c->b should flow after removal: %v", err)
	}
	n.ClearLinkFaults()
	if _, err := n.Call(context.Background(), "a", "b", "x", nil); err != nil {
		t.Fatalf("a->b should flow after ClearLinkFaults: %v", err)
	}
}

// TestSetLinkDelay asserts the per-link delay knob adds latency on the
// matching direction only and composes with context deadlines.
func TestSetLinkDelay(t *testing.T) {
	n := NewNetwork(3)
	n.Register("b", echoHandler(t))
	n.SetLinkDelay("", "b", 30*time.Millisecond)

	start := time.Now()
	if _, err := n.Call(context.Background(), "a", "b", "x", nil); err != nil {
		t.Fatalf("delayed call failed: %v", err)
	}
	if took := time.Since(start); took < 30*time.Millisecond {
		t.Errorf("call took %v, want >= 30ms of injected delay", took)
	}

	// A deadline shorter than the injected delay expires the call.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	if _, err := n.Call(ctx, "a", "b", "x", nil); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}

	n.SetLinkDelay("", "b", 0)
	start = time.Now()
	if _, err := n.Call(context.Background(), "a", "b", "x", nil); err != nil {
		t.Fatalf("call after removal failed: %v", err)
	}
	if took := time.Since(start); took > 20*time.Millisecond {
		t.Errorf("call took %v after delay removal, want fast", took)
	}
}
