package transport

import (
	"context"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestTCPPipelinedOutOfOrder is the regression test for head-of-line
// blocking: two pipelined requests to one peer, where the first one hits a
// slow handler, must complete out of order — the fast second request must
// not wait for the slow first one.
func TestTCPPipelinedOutOfOrder(t *testing.T) {
	a, b := newTCPPair(t)
	release := make(chan struct{})
	b.Register(b.Addr(), func(from, kind string, payload any) (any, error) {
		if kind == "slow" {
			<-release
		}
		return payload, nil
	})

	slowDone := make(chan error, 1)
	slowStarted := make(chan struct{})
	go func() {
		close(slowStarted)
		_, err := a.Call(context.Background(), "c", b.Addr(), "slow", echoPayload{Value: 1})
		slowDone <- err
	}()
	<-slowStarted
	time.Sleep(10 * time.Millisecond) // let the slow request reach the peer

	// The fast call must complete while the slow one is still parked.
	fastStart := time.Now()
	if _, err := a.Call(context.Background(), "c", b.Addr(), "fast", echoPayload{Value: 2}); err != nil {
		t.Fatal(err)
	}
	fastElapsed := time.Since(fastStart)

	select {
	case err := <-slowDone:
		t.Fatalf("slow call finished before it was released (err=%v)", err)
	default:
	}
	close(release)
	if err := <-slowDone; err != nil {
		t.Fatal(err)
	}
	if fastElapsed > 2*time.Second {
		t.Fatalf("fast call took %v behind a slow one: head-of-line blocking", fastElapsed)
	}
}

// TestTCPPipelineDepth verifies that N concurrent calls genuinely share the
// socket with N RPCs in flight: with a handler that parks until all N
// arrive, the batch completes only if every request was decoded while the
// others were still pending.
func TestTCPPipelineDepth(t *testing.T) {
	const n = 16
	a, b := newTCPPair(t)
	var arrived atomic.Int32
	all := make(chan struct{})
	b.Register(b.Addr(), func(from, kind string, payload any) (any, error) {
		if arrived.Add(1) == n {
			close(all)
		}
		<-all // every handler waits for the n-th request to arrive
		return payload, nil
	})

	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			_, err := a.Call(ctx, "c", b.Addr(), "park", echoPayload{Value: i})
			errs <- err
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatalf("pipelined call failed: %v (pipeline depth < %d?)", err, n)
		}
	}
}

// TestTCPCallRaceWithClose stresses Call/Close interleavings: many
// goroutines calling one destination while Close fires mid-flight. Every
// call must either succeed or fail cleanly — no hangs, no panics — and the
// transport must shut down completely. Run with -race.
func TestTCPCallRaceWithClose(t *testing.T) {
	for round := 0; round < 8; round++ {
		a, err := NewTCP("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		b, err := NewTCP("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		gobSetup()
		b.Register(b.Addr(), func(from, kind string, payload any) (any, error) {
			return payload, nil
		})

		var wg sync.WaitGroup
		start := make(chan struct{})
		for g := 0; g < 16; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				<-start
				for i := 0; i < 50; i++ {
					ctx, cancel := context.WithTimeout(context.Background(), time.Second)
					_, err := a.Call(ctx, "c", b.Addr(), "x", echoPayload{Value: i})
					cancel()
					if err != nil {
						return // closed mid-flight; expected
					}
				}
			}(g)
		}
		close(start)
		// Close both ends while calls are in flight; alternate which side
		// goes first so both teardown orders are exercised.
		if round%2 == 0 {
			a.Close()
			b.Close()
		} else {
			b.Close()
			a.Close()
		}
		wg.Wait()

		if _, err := a.Call(context.Background(), "c", b.Addr(), "x", echoPayload{}); !errors.Is(err, ErrClosed) {
			t.Fatalf("call after close = %v, want ErrClosed", err)
		}
	}
}

// TestTCPSuspectsBounded verifies the suspects map cannot grow without
// bound: expired entries are swept on insert, and a flood of distinct dead
// peers stays under the hard cap.
func TestTCPSuspectsBounded(t *testing.T) {
	a, err := NewTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	// Expired entries are swept once the map passes the sweep threshold.
	a.SuspicionWindow = time.Nanosecond
	for i := 0; i < suspectSweepLen+100; i++ {
		a.suspect(fmt.Sprintf("10.0.0.%d:1", i))
		time.Sleep(time.Microsecond) // let entries expire behind the sweep
	}
	a.mu.Lock()
	n := len(a.suspects)
	a.mu.Unlock()
	if n > suspectSweepLen+1 {
		t.Fatalf("suspects map holds %d expired entries; sweep did not run", n)
	}

	// With a long window nothing expires, but the hard cap still holds.
	a.SuspicionWindow = time.Hour
	for i := 0; i < suspectMaxLen+500; i++ {
		a.suspect(fmt.Sprintf("10.0.1.%d:2", i))
	}
	a.mu.Lock()
	n = len(a.suspects)
	a.mu.Unlock()
	if n > suspectMaxLen {
		t.Fatalf("suspects map grew to %d, above the %d cap", n, suspectMaxLen)
	}
}

// TestTCPBadPreambleRejected verifies the version handshake: a connection
// that does not open with the magic/version preamble is dropped without
// disturbing the transport.
func TestTCPBadPreambleRejected(t *testing.T) {
	a, b := newTCPPair(t)
	b.Register(b.Addr(), func(from, kind string, payload any) (any, error) {
		return payload, nil
	})

	// A raw dialer speaking garbage gets disconnected.
	nc, err := net.Dial("tcp", b.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	if _, err := nc.Write([]byte("GET / HTTP/1.1\r\n\r\n")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1)
	nc.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := nc.Read(buf); err == nil {
		t.Fatal("peer answered a garbage preamble instead of dropping it")
	}

	// The real transport still works.
	if _, err := a.Call(context.Background(), "c", b.Addr(), "x", echoPayload{Value: 3}); err != nil {
		t.Fatal(err)
	}
}

// TestTCPHandlerErrorNoPayloadLeak verifies error responses round-trip the
// message and nothing else.
func TestTCPHandlerErrorKeepsConn(t *testing.T) {
	a, b := newTCPPair(t)
	calls := 0
	b.Register(b.Addr(), func(from, kind string, payload any) (any, error) {
		calls++
		if calls%2 == 1 {
			return nil, errors.New("odd call rejected")
		}
		return payload, nil
	})
	for i := 0; i < 6; i++ {
		_, err := a.Call(context.Background(), "c", b.Addr(), "x", echoPayload{Value: i})
		if i%2 == 0 {
			if err == nil || !strings.Contains(err.Error(), "odd call rejected") {
				t.Fatalf("call %d: err = %v", i, err)
			}
			if !a.Registered(b.Addr()) {
				t.Fatal("handler error must not mark the peer suspected")
			}
		} else if err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
	}
}
