package transport

import (
	"context"
	"errors"
	"sync"
	"testing"

	"camcast/internal/obsv"
)

// TestTCPInstrumented drives an instrumented TCP pair and checks the
// registry observed the traffic: round-trip latencies, call/served counts,
// and at least one socket flush with a recorded batch size.
func TestTCPInstrumented(t *testing.T) {
	reg := obsv.NewRegistry()

	srv, err := NewTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv.Instrument(reg)
	defer srv.Close()
	srv.Register(srv.Addr(), func(from, kind string, payload any) (any, error) {
		if kind == "boom" {
			return nil, errors.New("handler failure")
		}
		return payload, nil
	})

	cli, err := NewTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	cli.Instrument(reg)
	defer cli.Close()

	const calls = 32
	var wg sync.WaitGroup
	for i := 0; i < calls; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := cli.Call(context.Background(), "cli", srv.Addr(), "echo", "hi"); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if _, err := cli.Call(context.Background(), "cli", srv.Addr(), "boom", "x"); err == nil {
		t.Fatal("handler error did not propagate")
	}

	snap := reg.Snapshot()
	if got := snap.Counters[obsv.MetricRPCCalls]; got != calls+1 {
		t.Errorf("%s = %d, want %d", obsv.MetricRPCCalls, got, calls+1)
	}
	if got := snap.Counters[obsv.MetricRPCErrors]; got != 1 {
		t.Errorf("%s = %d, want 1", obsv.MetricRPCErrors, got)
	}
	if got := snap.Counters[obsv.MetricServerServed]; got != calls+1 {
		t.Errorf("%s = %d, want %d", obsv.MetricServerServed, got, calls+1)
	}
	lat := snap.Histograms[obsv.MetricRPCLatency]
	if lat.Count != calls+1 {
		t.Errorf("latency observations = %d, want %d", lat.Count, calls+1)
	}
	if lat.Sum <= 0 {
		t.Error("latency sum is zero")
	}
	flush := snap.Histograms[obsv.MetricFlushBatch]
	if flush.Count == 0 {
		t.Error("no flush batches observed")
	}
	if got := snap.Gauges[obsv.MetricRPCInflight]; got != 0 {
		t.Errorf("inflight gauge = %d after quiesce, want 0", got)
	}
}

// TestNetworkInstrumented checks the in-memory transport records the same
// call metrics.
func TestNetworkInstrumented(t *testing.T) {
	reg := obsv.NewRegistry()
	n := NewNetwork(1)
	n.Instrument(reg)
	n.Register("a", func(from, kind string, payload any) (any, error) { return payload, nil })

	if _, err := n.Call(context.Background(), "b", "a", "echo", 7); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Call(context.Background(), "b", "gone", "echo", 7); err == nil {
		t.Fatal("call to unregistered endpoint succeeded")
	}

	snap := reg.Snapshot()
	if got := snap.Counters[obsv.MetricRPCCalls]; got != 2 {
		t.Errorf("%s = %d, want 2", obsv.MetricRPCCalls, got)
	}
	if got := snap.Counters[obsv.MetricRPCErrors]; got != 1 {
		t.Errorf("%s = %d, want 1", obsv.MetricRPCErrors, got)
	}
	if got := snap.Histograms[obsv.MetricRPCLatency].Count; got != 2 {
		t.Errorf("latency observations = %d, want 2", got)
	}
}
