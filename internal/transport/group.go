package transport

import (
	"context"
	"errors"
)

// Multi-group transport sharing. Both transports key their endpoint tables
// by (group flow label, address) so thousands of groups can share one
// process and — on TCP — one pipelined connection per peer pair. A Flow is
// the per-group view handed to each group's runtime: it pins the label so
// the runtime stays group-unaware, and the label travels in every frame
// header (wire v3) to route inbound traffic back to the right table.

// DefaultGroup is the flow label of the default group. Endpoints registered
// through the ungrouped Register/Call methods live here, which keeps
// single-group callers and old tooling working unchanged.
const DefaultGroup uint64 = 0

// GroupLabel derives the wire flow label for a named group: FNV-1a over the
// name, so independently started processes agree on a group's label without
// any coordination. The result is never DefaultGroup (0 is reserved).
func GroupLabel(name string) uint64 {
	const offset64, prime64 = 14695981039346656037, 1099511628211
	h := uint64(offset64)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= prime64
	}
	if h == DefaultGroup {
		h = 1
	}
	return h
}

// ErrGroupBacklog is returned (wrapped) when a request is refused because
// its group already has more than the transport's GroupBacklogLimit bytes
// buffered and unflushed on the target connection. It is a local quota
// rejection, not a peer failure: callers retry after backoff and the peer
// is not marked suspect.
var ErrGroupBacklog = errors.New("transport: group backlog over quota")

// groupTransport is the grouped endpoint contract both transports
// implement; Flow narrows it back to one group.
type groupTransport interface {
	CallGroup(ctx context.Context, gid uint64, from, to, kind string, payload any) (any, error)
	RegisterGroup(gid uint64, addr string, h Handler)
	UnregisterGroup(gid uint64, addr string)
	RegisteredGroup(gid uint64, addr string) bool
}

// Flow is a single group's view of a shared transport: the same Call /
// Register surface the runtime already consumes, with the group flow label
// applied to every operation. Two Flows of the same transport share its
// sockets, suspicion cache, and fault plan; only the endpoint namespace and
// the per-group writer accounting are split by label.
type Flow struct {
	t   groupTransport
	gid uint64
}

// Flow returns the per-group view of the network for label gid.
func (n *Network) Flow(gid uint64) *Flow { return &Flow{t: n, gid: gid} }

// Flow returns the per-group view of the transport for label gid.
func (t *TCP) Flow(gid uint64) *Flow { return &Flow{t: t, gid: gid} }

// GroupID returns the flow label this view is pinned to.
func (f *Flow) GroupID() uint64 { return f.gid }

// Call invokes the handler registered at (group, to).
func (f *Flow) Call(ctx context.Context, from, to, kind string, payload any) (any, error) {
	return f.t.CallGroup(ctx, f.gid, from, to, kind, payload)
}

// Register installs a handler for addr within this flow's group.
func (f *Flow) Register(addr string, h Handler) { f.t.RegisterGroup(f.gid, addr, h) }

// Unregister removes addr's handler within this flow's group.
func (f *Flow) Unregister(addr string) { f.t.UnregisterGroup(f.gid, addr) }

// Registered reports whether addr looks reachable within this flow's group.
func (f *Flow) Registered(addr string) bool { return f.t.RegisteredGroup(f.gid, addr) }

// BlobPayloads reports whether the underlying transport delivers payloads
// as pooled blobs (see TCP.BlobPayloads).
func (f *Flow) BlobPayloads() bool {
	if bp, ok := f.t.(interface{ BlobPayloads() bool }); ok {
		return bp.BlobPayloads()
	}
	return false
}
