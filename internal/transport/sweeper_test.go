package transport

import (
	"context"
	"net"
	goruntime "runtime"
	"sync"
	"testing"
	"time"
)

// hungListener accepts connections and never answers; returns its address.
func hungListener(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			defer c.Close()
		}
	}()
	return l.Addr().String()
}

// TestTCPSweeperExpiresAcrossConns: one shared sweeper enforces deadlines
// on many connections at once — concurrent calls to several hung peers all
// time out near RPCTimeout, none serialized behind another's expiry.
func TestTCPSweeperExpiresAcrossConns(t *testing.T) {
	gobSetup()
	a, err := NewTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	a.RPCTimeout = 100 * time.Millisecond

	peers := make([]string, 5)
	for i := range peers {
		peers[i] = hungListener(t)
	}

	start := time.Now()
	var wg sync.WaitGroup
	errs := make([]error, len(peers))
	for i, addr := range peers {
		wg.Add(1)
		go func(i int, addr string) {
			defer wg.Done()
			_, errs[i] = a.Call(context.Background(), "client", addr, "x", echoPayload{Value: i})
		}(i, addr)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for i, err := range errs {
		if err == nil {
			t.Fatalf("call %d to hung peer succeeded", i)
		}
	}
	if elapsed > time.Second {
		t.Fatalf("5 concurrent hung calls took %v; sweeper should expire them together near RPCTimeout", elapsed)
	}
}

// TestTCPSweeperGoroutineFootprint: deadline enforcement costs one
// goroutine per transport, not one per connection. (Each live connection
// still owns a read loop — that is the socket's cost, not the sweeper's.)
func TestTCPSweeperGoroutineFootprint(t *testing.T) {
	gobSetup()
	const peers = 8
	servers := make([]*TCP, peers)
	for i := range servers {
		s, err := NewTCP("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		s.Register(s.Addr(), func(from, kind string, payload any) (any, error) {
			return payload, nil
		})
		servers[i] = s
	}

	a, err := NewTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	// Open a pooled connection (with a registered deadline) to every peer.
	for _, s := range servers {
		if _, err := a.Call(context.Background(), "client", s.Addr(), "x", echoPayload{Value: 1}); err != nil {
			t.Fatal(err)
		}
	}
	during := goruntime.NumGoroutine()

	// Close must quiesce the sweeper along with everything else.
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for goruntime.NumGoroutine() >= during && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}

	// A fresh transport that never dials starts no sweeper goroutine.
	before := goruntime.NumGoroutine()
	idle, err := NewTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer idle.Close()
	// One goroutine for the accept loop is expected; the sweeper is lazy.
	if got := goruntime.NumGoroutine(); got > before+1 {
		t.Fatalf("idle transport started %d goroutines, want 1 (accept loop only)", got-before)
	}
}
