package transport

import (
	"math/bits"
	"sync"
	"sync/atomic"
)

// Blob is a refcounted payload buffer drawn from a size-classed pool. It is
// how the dissemination path encodes a payload once per message per node:
// the origin (or the serving side, for a relay) copies the payload bytes
// into one Blob, every outgoing frame that carries the payload shares it by
// reference, and the buffer returns to its pool when the last holder
// releases it.
//
// Ownership is explicit: every Blob starts with one reference owned by its
// creator; Retain adds a reference for each additional holder and every
// holder calls Release exactly once. Releasing past zero panics — a leak
// detector for the double-release bug class, complemented by
// BlobPoolStats (gets == puts after quiesce means no blob leaked). All
// methods are nil-safe so code paths without a pooled payload need no
// branching.
type Blob struct {
	b     []byte
	class int8 // pool class index, or blobUnpooled
	refs  atomic.Int32
}

const (
	// blobMinClass..blobMaxClass are the power-of-two size classes the pool
	// maintains: 1KiB up to maxFrameSize. Smaller payloads share the 1KiB
	// class; larger ones (which the framing layer rejects anyway) are
	// allocated directly and garbage-collected.
	blobMinClass = 10 // 1 KiB
	blobMaxClass = 26 // 64 MiB == maxFrameSize

	blobUnpooled int8 = -1
)

var (
	blobPools [blobMaxClass + 1]sync.Pool

	// blobGets counts blobs handed out (pooled or freshly allocated);
	// blobPuts counts final releases. The two converge when every blob has
	// been released — the leak-freedom invariant tests assert.
	blobGets atomic.Uint64
	blobPuts atomic.Uint64

	// blobPoison makes every final Release scribble over the buffer before
	// pooling it, so a holder that kept a payload view past its release —
	// instead of copying, per the Delivery contract — reads garbage
	// deterministically instead of corrupting silently. Test-only.
	blobPoison atomic.Bool
)

// blobClass returns the pool class for a buffer of n bytes (the smallest
// power-of-two class that fits it), or blobUnpooled when n exceeds the
// largest class.
func blobClass(n int) int8 {
	if n <= 1<<blobMinClass {
		return blobMinClass
	}
	if n > 1<<blobMaxClass {
		return blobUnpooled
	}
	return int8(bits.Len(uint(n - 1)))
}

// NewBlob returns a blob with an uninitialized n-byte buffer and one
// reference owned by the caller.
func NewBlob(n int) *Blob {
	blobGets.Add(1)
	c := blobClass(n)
	if c != blobUnpooled {
		if v := blobPools[c].Get(); v != nil {
			b := v.(*Blob)
			b.b = b.b[:n]
			b.refs.Store(1)
			return b
		}
	}
	capacity := n
	if c != blobUnpooled {
		capacity = 1 << c
	}
	b := &Blob{b: make([]byte, n, capacity), class: c}
	b.refs.Store(1)
	return b
}

// BlobFrom returns a blob holding a copy of p, with one reference owned by
// the caller.
func BlobFrom(p []byte) *Blob {
	b := NewBlob(len(p))
	copy(b.b, p)
	return b
}

// Bytes returns the blob's payload bytes. The slice is valid until the
// caller's reference is released.
func (b *Blob) Bytes() []byte {
	if b == nil {
		return nil
	}
	return b.b
}

// Len returns the payload length.
func (b *Blob) Len() int {
	if b == nil {
		return 0
	}
	return len(b.b)
}

// Retain adds a reference for a new holder and returns b for chaining.
func (b *Blob) Retain() *Blob {
	if b == nil {
		return nil
	}
	if b.refs.Add(1) <= 1 {
		panic("transport: Blob retained after final release")
	}
	return b
}

// Release drops the caller's reference; the last release returns the buffer
// to its pool. Releasing more times than retained panics.
func (b *Blob) Release() {
	if b == nil {
		return
	}
	switch n := b.refs.Add(-1); {
	case n > 0:
		return
	case n < 0:
		panic("transport: Blob released twice")
	}
	blobPuts.Add(1)
	if blobPoison.Load() {
		for i := range b.b {
			b.b[i] = 0xDB // "dead blob"
		}
	}
	if b.class == blobUnpooled {
		return
	}
	b.b = b.b[:0]
	blobPools[b.class].Put(b)
}

// BlobPoolStats reports how many blobs have ever been handed out and how
// many were fully released. After a system quiesces the two are equal iff
// no blob reference leaked.
func BlobPoolStats() (gets, puts uint64) {
	return blobGets.Load(), blobPuts.Load()
}

// PoisonBlobsOnRelease makes every released blob's buffer get overwritten
// before reuse, turning any use-after-release of a payload view into a
// deterministic, visible corruption. For tests enforcing the copy-on-deliver
// contract; returns the previous setting.
func PoisonBlobsOnRelease(on bool) (prev bool) {
	return blobPoison.Swap(on)
}
