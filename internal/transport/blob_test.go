package transport

import (
	"bytes"
	"errors"
	"testing"
	"time"
)

func TestBlobClass(t *testing.T) {
	cases := []struct {
		n    int
		want int8
	}{
		{0, blobMinClass},
		{1, blobMinClass},
		{1 << blobMinClass, blobMinClass},
		{1<<blobMinClass + 1, blobMinClass + 1},
		{4096, 12},
		{4097, 13},
		{1 << blobMaxClass, blobMaxClass},
		{1<<blobMaxClass + 1, blobUnpooled},
	}
	for _, c := range cases {
		if got := blobClass(c.n); got != c.want {
			t.Errorf("blobClass(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestBlobRefcountLifecycle(t *testing.T) {
	gets0, puts0 := BlobPoolStats()

	b := BlobFrom([]byte("payload"))
	if got := b.Bytes(); !bytes.Equal(got, []byte("payload")) {
		t.Fatalf("Bytes() = %q, want %q", got, "payload")
	}
	if b.Len() != 7 {
		t.Fatalf("Len() = %d, want 7", b.Len())
	}
	b.Retain()
	b.Retain()
	b.Release()
	b.Release()
	b.Release() // final: back to the pool

	gets1, puts1 := BlobPoolStats()
	if dg, dp := gets1-gets0, puts1-puts0; dg != dp {
		t.Fatalf("pool stats after quiesce: %d gets vs %d puts", dg, dp)
	}

	defer func() {
		if recover() == nil {
			t.Fatal("Release past zero did not panic")
		}
	}()
	b.Release()
}

func TestBlobRetainAfterFinalReleasePanics(t *testing.T) {
	b := NewBlob(8)
	b.Release()
	defer func() {
		if recover() == nil {
			t.Fatal("Retain after final release did not panic")
		}
	}()
	b.Retain()
}

func TestBlobNilSafety(t *testing.T) {
	var b *Blob
	if b.Bytes() != nil || b.Len() != 0 {
		t.Fatal("nil blob is not empty")
	}
	if b.Retain() != nil {
		t.Fatal("nil Retain() != nil")
	}
	b.Release() // must not panic
}

func TestBlobClassCapacity(t *testing.T) {
	b := NewBlob(800)
	defer b.Release()
	if cap(b.Bytes()) != 1<<blobMinClass {
		t.Fatalf("NewBlob(800) capacity = %d, want %d", cap(b.Bytes()), 1<<blobMinClass)
	}
	if b.Len() != 800 {
		t.Fatalf("NewBlob(800) length = %d, want 800", b.Len())
	}
}

func TestBlobPoisonOnRelease(t *testing.T) {
	prev := PoisonBlobsOnRelease(true)
	defer PoisonBlobsOnRelease(prev)

	b := BlobFrom([]byte("keep me"))
	view := b.Bytes()
	b.Release()
	for i, c := range view {
		if c != 0xDB {
			t.Fatalf("byte %d after release = %#x, want the 0xDB poison", i, c)
		}
	}
}

// TestFrameWriterMaxFrame drives the scatter-gather writer into the
// maxFrameSize limit: the oversized frame must be rejected with an encode
// error, every blob reference it took must be rolled back, and the writer
// must stay usable for the next frame.
func TestFrameWriterMaxFrame(t *testing.T) {
	registerBlobTestPayload()
	blob := NewBlob(maxFrameSize) // header pushes the body over the limit
	p := blobTestPayload{Key: "k", Data: blob.Bytes(), blob: blob}

	conn := &captureConn{}
	w := newFrameWriter(conn, func() time.Duration { return 0 }, 0, &instruments{})
	defer w.close()

	err := w.writeRequest(1, 0, "from", "to", "kind", p, CodecBinary, true)
	var encErr *encodeError
	if !errors.As(err, &encErr) {
		t.Fatalf("oversized frame: err = %v, want encodeError", err)
	}
	blob.Release() // panics if the rollback leaked or double-released a ref
	if conn.Len() != 0 {
		t.Fatalf("%d bytes reached the socket from a rejected frame", conn.Len())
	}

	// The writer is still clean: a small frame goes through.
	if err := w.writeRequest(2, 0, "from", "to", "kind", blobTestPayload{Key: "ok"}, CodecBinary, true); err != nil {
		t.Fatalf("write after rejected frame: %v", err)
	}
	if conn.Len() == 0 {
		t.Fatal("follow-up frame never hit the socket")
	}
}
