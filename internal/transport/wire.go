package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"unsafe"
)

// This file is the byte-level vocabulary of the binary wire codec: append
// helpers for encoding and a cursor-style WireReader for decoding. Payload
// types implement WireMarshaler with these helpers and register a matching
// decoder with RegisterWireDecoder; the transport handles everything else
// (framing, call IDs, codec negotiation).
//
// All integer fields are varints (unsigned, or zigzag for signed), strings
// and byte slices are length-prefixed, and nil-ness of byte slices is
// preserved (a nil slice and an empty slice round-trip distinctly), so a
// binary round trip is value-identical to the gob round trip it replaces.

// WireMarshaler is implemented by payload types that know how to encode
// themselves for the binary codec. AppendWire appends the encoded value to
// b and returns the extended slice; it must not retain b.
type WireMarshaler interface {
	// WireTag returns the payload's registered one-byte type tag
	// (>= WireTagUserMin).
	WireTag() byte
	// AppendWire appends the value's binary encoding to b.
	AppendWire(b []byte) []byte
}

// Payload type tags. Tags below WireTagUserMin are reserved for the
// transport itself.
const (
	wireTagNil byte = 0 // nil payload
	wireTagGob byte = 1 // gob-encoded fallback for unregistered types

	// WireTagUserMin is the first tag available to registered payload
	// types.
	WireTagUserMin byte = 0x10
)

// wireDecoders maps payload type tags to decoders. Registration happens
// during init/setup (before any connection exists), so reads are not
// synchronized.
var wireDecoders [256]func([]byte) (any, error)

// RegisterWireDecoder installs the decoder for a payload type tag. The
// decoder receives exactly the payload bytes AppendWire produced and must
// return the decoded value (a concrete value, not a pointer, so handlers
// can type-assert the same way they do for gob payloads). Register all
// types before the first connection is made; duplicate or reserved tags
// panic.
func RegisterWireDecoder(tag byte, dec func([]byte) (any, error)) {
	if tag < WireTagUserMin {
		panic(fmt.Sprintf("transport: wire tag %#x is reserved", tag))
	}
	if wireDecoders[tag] != nil {
		panic(fmt.Sprintf("transport: wire tag %#x registered twice", tag))
	}
	wireDecoders[tag] = dec
}

// AppendUvarint appends v as an unsigned varint.
func AppendUvarint(b []byte, v uint64) []byte {
	return binary.AppendUvarint(b, v)
}

// AppendVarint appends v as a zigzag-encoded signed varint.
func AppendVarint(b []byte, v int64) []byte {
	return binary.AppendVarint(b, v)
}

// AppendString appends s as a length-prefixed string.
func AppendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// AppendBytes appends p as a length-prefixed byte slice, preserving
// nil-ness: the prefix is 0 for nil and len+1 otherwise.
func AppendBytes(b []byte, p []byte) []byte {
	if p == nil {
		return binary.AppendUvarint(b, 0)
	}
	b = binary.AppendUvarint(b, uint64(len(p))+1)
	return append(b, p...)
}

// AppendBytesHead appends only the length framing AppendBytes would write
// for p — the prefix a BlobMarshaler's AppendWireHead emits before the
// payload bytes go out by reference from their blob.
func AppendBytesHead(b []byte, p []byte) []byte {
	if p == nil {
		return binary.AppendUvarint(b, 0)
	}
	return binary.AppendUvarint(b, uint64(len(p))+1)
}

// AppendBool appends v as one byte.
func AppendBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}

// ErrWireDecode reports malformed binary payload bytes.
var ErrWireDecode = errors.New("transport: malformed wire payload")

// WireReader is a decoding cursor over one payload's bytes. Read methods
// return zero values after the first error; check Finish at the end. A
// WireReader never panics on malformed input — truncated or oversized
// fields surface as ErrWireDecode — which makes decoders safe to fuzz
// directly.
type WireReader struct {
	buf []byte
	off int
	err error
}

// NewWireReader returns a reader over b. The reader does not copy b, but
// Bytes() copies out of it, so decoded values never alias the frame buffer.
func NewWireReader(b []byte) *WireReader {
	return &WireReader{buf: b}
}

func (r *WireReader) fail() {
	if r.err == nil {
		r.err = ErrWireDecode
	}
}

// Uvarint reads an unsigned varint.
func (r *WireReader) Uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf[r.off:])
	if n <= 0 {
		r.fail()
		return 0
	}
	r.off += n
	return v
}

// Varint reads a zigzag-encoded signed varint.
func (r *WireReader) Varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.buf[r.off:])
	if n <= 0 {
		r.fail()
		return 0
	}
	r.off += n
	return v
}

// String reads a length-prefixed string.
func (r *WireReader) String() string {
	n := r.Uvarint()
	if r.err != nil {
		return ""
	}
	if n > uint64(len(r.buf)-r.off) {
		r.fail()
		return ""
	}
	s := string(r.buf[r.off : r.off+int(n)])
	r.off += int(n)
	return s
}

// stringView reads a length-prefixed string without copying: the result
// aliases the reader's buffer. Only for callers that own the buffer and
// never mutate it afterwards (the server's request parser).
func (r *WireReader) stringView() string {
	n := r.Uvarint()
	if r.err != nil {
		return ""
	}
	if n > uint64(len(r.buf)-r.off) {
		r.fail()
		return ""
	}
	s := unsafe.String(unsafe.SliceData(r.buf[r.off:]), int(n))
	r.off += int(n)
	return s
}

// Bytes reads a length-prefixed byte slice written by AppendBytes. The
// returned slice is a copy (or nil, if nil was encoded).
func (r *WireReader) Bytes() []byte {
	n := r.Uvarint()
	if r.err != nil || n == 0 {
		return nil
	}
	n--
	if n > uint64(len(r.buf)-r.off) {
		r.fail()
		return nil
	}
	p := make([]byte, n)
	copy(p, r.buf[r.off:r.off+int(n)])
	r.off += int(n)
	return p
}

// BytesView reads a length-prefixed byte slice written by AppendBytes
// without copying: the result aliases the reader's buffer. Only for
// blob-aware decoders, which pair the view with a Retain on the buffer's
// owning Blob so the bytes outlive the read.
func (r *WireReader) BytesView() []byte {
	n := r.Uvarint()
	if r.err != nil || n == 0 {
		return nil
	}
	n--
	if n > uint64(len(r.buf)-r.off) {
		r.fail()
		return nil
	}
	p := r.buf[r.off : r.off+int(n) : r.off+int(n)]
	r.off += int(n)
	return p
}

// Bool reads one byte as a boolean.
func (r *WireReader) Bool() bool {
	if r.err != nil {
		return false
	}
	if r.off >= len(r.buf) {
		r.fail()
		return false
	}
	b := r.buf[r.off]
	r.off++
	if b > 1 {
		r.fail()
		return false
	}
	return b == 1
}

// Err returns the first decoding error, if any.
func (r *WireReader) Err() error { return r.err }

// Finish returns an error if decoding failed or left trailing bytes — a
// strict check that catches both truncated and over-long encodings.
func (r *WireReader) Finish() error {
	if r.err != nil {
		return r.err
	}
	if r.off != len(r.buf) {
		return fmt.Errorf("%w: %d trailing bytes", ErrWireDecode, len(r.buf)-r.off)
	}
	return nil
}
