package transport

import "sync"

// blobWireTag sits just under benchWireTag at the top of the user range so
// it can never collide with the runtime's registered wire types.
const blobWireTag byte = 0xF1

// blobTestPayload is a BlobMarshaler test type: payload-last wire layout
// with the bulk bytes optionally owned by a refcounted blob, mirroring the
// runtime's multicastReq shape.
type blobTestPayload struct {
	Key  string
	Data []byte
	blob *Blob
}

func (blobTestPayload) WireTag() byte { return blobWireTag }

func (p blobTestPayload) AppendWireHead(b []byte) []byte {
	b = AppendString(b, p.Key)
	return AppendBytesHead(b, p.Data)
}

func (p blobTestPayload) AppendWire(b []byte) []byte {
	return append(p.AppendWireHead(b), p.Data...)
}

func (p blobTestPayload) PayloadBlob() ([]byte, *Blob) { return p.Data, p.blob }

func (p blobTestPayload) ReleasePayload() { p.blob.Release() }

func decodeBlobTestPayload(b []byte) (any, error) {
	r := NewWireReader(b)
	p := blobTestPayload{Key: r.String(), Data: r.Bytes()}
	return p, r.Finish()
}

func decodeBlobTestPayloadBlob(b []byte, owner *Blob) (any, error) {
	r := NewWireReader(b)
	p := blobTestPayload{Key: r.String()}
	p.Data = r.BytesView()
	if err := r.Finish(); err != nil {
		return nil, err
	}
	if p.Data != nil {
		owner.Retain()
		p.blob = owner
	}
	return p, nil
}

var blobPayloadOnce sync.Once

func registerBlobTestPayload() {
	blobPayloadOnce.Do(func() {
		RegisterWireDecoder(blobWireTag, decodeBlobTestPayload)
		RegisterBlobDecoder(blobWireTag, decodeBlobTestPayloadBlob)
	})
}
