package transport

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func echoHandler(t *testing.T) Handler {
	t.Helper()
	return func(from, kind string, payload any) (any, error) {
		return payload, nil
	}
}

func TestCallRoundTrip(t *testing.T) {
	n := NewNetwork(1)
	n.Register("b", echoHandler(t))
	resp, err := n.Call(context.Background(), "a", "b", "echo", 42)
	if err != nil {
		t.Fatal(err)
	}
	if resp != 42 {
		t.Fatalf("resp = %v", resp)
	}
}

func TestCallUnreachable(t *testing.T) {
	n := NewNetwork(1)
	if _, err := n.Call(context.Background(), "a", "ghost", "x", nil); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("err = %v, want ErrUnreachable", err)
	}
}

func TestUnregisterMakesUnreachable(t *testing.T) {
	n := NewNetwork(1)
	n.Register("b", echoHandler(t))
	if !n.Registered("b") {
		t.Fatal("b should be registered")
	}
	n.Unregister("b")
	if n.Registered("b") {
		t.Fatal("b should be gone")
	}
	if _, err := n.Call(context.Background(), "a", "b", "x", nil); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("err = %v", err)
	}
}

func TestDropRate(t *testing.T) {
	n := NewNetwork(7)
	n.Register("b", echoHandler(t))
	n.SetDropRate(1)
	if _, err := n.Call(context.Background(), "a", "b", "x", nil); !errors.Is(err, ErrDropped) {
		t.Fatalf("err = %v, want ErrDropped", err)
	}
	n.SetDropRate(0)
	if _, err := n.Call(context.Background(), "a", "b", "x", nil); err != nil {
		t.Fatalf("err = %v after disabling drops", err)
	}
	calls, drops := n.Stats()
	if calls != 2 || drops != 1 {
		t.Fatalf("stats = (%d, %d), want (2, 1)", calls, drops)
	}
}

func TestDropRateClamped(t *testing.T) {
	n := NewNetwork(1)
	n.Register("b", echoHandler(t))
	n.SetDropRate(-3) // clamps to 0
	if _, err := n.Call(context.Background(), "a", "b", "x", nil); err != nil {
		t.Fatal(err)
	}
	n.SetDropRate(9) // clamps to 1
	if _, err := n.Call(context.Background(), "a", "b", "x", nil); !errors.Is(err, ErrDropped) {
		t.Fatal("expected drop at rate 1")
	}
}

func TestPartition(t *testing.T) {
	n := NewNetwork(1)
	n.Register("a", echoHandler(t))
	n.Register("b", echoHandler(t))
	n.SetPartition("b", 1)
	if _, err := n.Call(context.Background(), "a", "b", "x", nil); !errors.Is(err, ErrPartitioned) {
		t.Fatalf("err = %v, want ErrPartitioned", err)
	}
	// Within the same partition calls work.
	n.SetPartition("a", 1)
	if _, err := n.Call(context.Background(), "a", "b", "x", nil); err != nil {
		t.Fatalf("same-partition call failed: %v", err)
	}
	n.HealPartitions()
	n.Register("c", echoHandler(t))
	if _, err := n.Call(context.Background(), "c", "b", "x", nil); err != nil {
		t.Fatalf("healed call failed: %v", err)
	}
}

func TestLatency(t *testing.T) {
	n := NewNetwork(1)
	n.Register("b", echoHandler(t))
	n.SetLatency(func(from, to string) time.Duration { return 20 * time.Millisecond })
	start := time.Now()
	if _, err := n.Call(context.Background(), "a", "b", "x", nil); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 15*time.Millisecond {
		t.Errorf("latency not applied: %v", elapsed)
	}
	n.SetLatency(nil)
	start = time.Now()
	_, _ = n.Call(context.Background(), "a", "b", "x", nil)
	if elapsed := time.Since(start); elapsed > 10*time.Millisecond {
		t.Errorf("latency should be disabled: %v", elapsed)
	}
}

func TestHandlerErrorPropagates(t *testing.T) {
	n := NewNetwork(1)
	sentinel := errors.New("handler failed")
	n.Register("b", func(from, kind string, payload any) (any, error) {
		return nil, sentinel
	})
	if _, err := n.Call(context.Background(), "a", "b", "x", nil); !errors.Is(err, sentinel) {
		t.Fatalf("err = %v", err)
	}
}

func TestConcurrentCalls(t *testing.T) {
	n := NewNetwork(1)
	var count sync.Map
	n.Register("b", func(from, kind string, payload any) (any, error) {
		count.Store(payload, true)
		return nil, nil
	})
	var wg sync.WaitGroup
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := n.Call(context.Background(), "a", "b", "x", i); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	for i := 0; i < 50; i++ {
		if _, ok := count.Load(i); !ok {
			t.Fatalf("call %d lost", i)
		}
	}
}
