package transport

import (
	"fmt"
	"net"
	"runtime"
	"sync"
	"time"
)

// frameWriter serializes frame writes onto one socket and coalesces
// flushes. A writer that knows it is the only active writer on the
// connection (sole pending call, last in-flight handler) flushes inline —
// no added latency on a quiet connection. Any other writer leaves its frame
// buffered and arms the flusher goroutine, which yields the processor a
// couple of times before flushing, so every caller or handler that is
// already runnable gets to append its frame first: a 16-way concurrent
// fan-out lands in one write syscall instead of sixteen. This is what makes
// pipelining pay off even on a single core, where concurrent writers never
// actually overlap on the write lock.
//
// Frames are encoded directly into the writer's buffer (no per-connection
// scratch-then-copy step): each frame reserves its 4-byte length prefix,
// encodes, and patches the prefix. Payloads carried by a refcounted Blob
// (BlobMarshaler values on the binary codec) never enter the buffer at all:
// the frame records a reference to the blob's bytes at the current buffer
// offset, and the flush writes buffered heads and shared payload bytes with
// one scatter-gather writev (net.Buffers), releasing each blob once its
// bytes are on the socket. A capacity-c fan-out therefore carries one
// payload encoding shared by c frames instead of c private copies.
type frameWriter struct {
	conn net.Conn

	mu     sync.Mutex
	buf    []byte      // frame bytes buffered since the last flush
	exts   []extSeg    // blob-backed segments interleaved into buf, by offset
	extLen int         // total bytes across exts
	vecs   net.Buffers // scatter-gather scratch, reused across flushes
	err    error       // sticky; the conn is broken once set
	armed  bool        // flusher has been kicked and will flush
	closed bool        // done has been closed
	frames int         // frames buffered since the last flush
	hot    bool        // the flusher is batching: skip inline flushes

	kick chan struct{}
	done chan struct{}

	// timeout bounds each socket write/flush so one stalled peer cannot
	// pin writers (or the flusher) forever.
	timeout func() time.Duration
	// obs carries the transport's instruments (flush batch sizes, bytes
	// sent, payload encodes); every handle is nil-safe.
	obs *instruments
}

// extSeg is one blob-backed payload segment: its bytes logically follow
// buf[:at]. The writer holds one blob reference per segment, taken when the
// frame is buffered and released when the flush puts the bytes on the
// socket (or the connection dies).
type extSeg struct {
	at  int
	b   []byte
	own *Blob
}

const (
	// writeThreshold is the buffered-bytes level (heads + blob payloads)
	// that forces an inline flush, bounding how much one connection buffers
	// between flusher runs — the moral equivalent of the old fixed-size
	// bufio.Writer writing through when full.
	writeThreshold = 64 * 1024
	// maxRetainedBuf caps the head buffer kept across flushes; a burst of
	// oversized non-blob payloads (gob fallback) does not pin its peak
	// footprint forever.
	maxRetainedBuf = 128 * 1024
)

func newFrameWriter(conn net.Conn, timeout func() time.Duration, obs *instruments) *frameWriter {
	w := &frameWriter{
		conn:    conn,
		kick:    make(chan struct{}, 1),
		done:    make(chan struct{}),
		timeout: timeout,
		obs:     obs,
	}
	go w.flushLoop()
	return w
}

// writeRequest encodes and writes one request frame; writeResponse does
// the same for a response frame. They are separate methods rather than one
// writeFrame taking a builder closure so the encode happens inline under
// mu with no per-call closure allocation.
//
// inlineFlush says the caller believes no other writer is active, so the
// frame should hit the socket now; otherwise the flush is left to the
// flusher (or to a later inline writer). On a hot connection — the last
// flush batched multiple frames — the inline hint is ignored: under
// pipelined load the "sole active writer" heuristic misfires once per
// burst (the first caller of a new burst sees an empty pending set), and
// deferring to the flusher folds that stray frame into the burst's single
// write syscall. Both return the sticky connection error, if any.
func (w *frameWriter) writeRequest(callID uint64, from, to, kind string, payload any, codec Codec, inlineFlush bool) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return w.err
	}
	lenPos, extMark, extLenMark := w.markLocked()
	w.buf = appendFrameHeader(w.buf, frameRequest, callID)
	w.buf = AppendString(w.buf, from)
	w.buf = AppendString(w.buf, to)
	w.buf = AppendString(w.buf, kind)
	if err := w.appendPayloadLocked(payload, codec); err != nil {
		// Encoding failed; roll the partial frame back — the conn is still
		// clean, no bytes were exposed to the socket.
		w.rollbackLocked(lenPos, extMark, extLenMark)
		return &encodeError{err}
	}
	return w.sealFrameLocked(lenPos, extMark, extLenMark, inlineFlush)
}

func (w *frameWriter) writeResponse(callID uint64, errMsg string, payload any, codec Codec, inlineFlush bool) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return w.err
	}
	lenPos, extMark, extLenMark := w.markLocked()
	w.buf = appendFrameHeader(w.buf, frameResponse, callID)
	w.buf = AppendString(w.buf, errMsg)
	if errMsg != "" {
		// Error responses never carry a payload.
		w.buf = append(w.buf, wireTagNil)
	} else if err := w.appendPayloadLocked(payload, codec); err != nil {
		w.rollbackLocked(lenPos, extMark, extLenMark)
		return &encodeError{err}
	}
	return w.sealFrameLocked(lenPos, extMark, extLenMark, inlineFlush)
}

// markLocked records the rollback point for one frame and reserves its
// length prefix. Callers hold mu.
func (w *frameWriter) markLocked() (lenPos, extMark, extLenMark int) {
	lenPos, extMark, extLenMark = len(w.buf), len(w.exts), w.extLen
	w.buf = append(w.buf, 0, 0, 0, 0)
	return lenPos, extMark, extLenMark
}

// appendPayloadLocked encodes the payload field of the current frame. A
// BlobMarshaler carrying its blob contributes only its head to the buffer;
// the payload bytes ride as a shared extSeg. Callers hold mu.
func (w *frameWriter) appendPayloadLocked(payload any, codec Codec) error {
	if payload == nil {
		w.buf = append(w.buf, wireTagNil)
		return nil
	}
	if codec == CodecBinary {
		if bm, ok := payload.(BlobMarshaler); ok {
			if view, owner := bm.PayloadBlob(); owner != nil {
				w.buf = append(w.buf, bm.WireTag())
				w.buf = bm.AppendWireHead(w.buf)
				if len(view) > 0 {
					owner.Retain()
					w.exts = append(w.exts, extSeg{at: len(w.buf), b: view, own: owner})
					w.extLen += len(view)
				}
				return nil
			}
			// A blob-capable payload without its blob falls back to a full
			// per-frame encode. Correct but a zero-copy regression, so it
			// counts as a payload materialization.
			w.obs.encodes.Inc()
		}
	}
	b, err := appendPayload(w.buf, payload, codec)
	if err != nil {
		return err
	}
	w.buf = b
	return nil
}

// rollbackLocked undoes a partially encoded frame: truncates the buffer and
// drops (releasing) any blob segments the frame added. Callers hold mu.
func (w *frameWriter) rollbackLocked(lenPos, extMark, extLenMark int) {
	w.buf = w.buf[:lenPos]
	for i := extMark; i < len(w.exts); i++ {
		w.exts[i].own.Release()
		w.exts[i] = extSeg{}
	}
	w.exts = w.exts[:extMark]
	w.extLen = extLenMark
}

// sealFrameLocked patches the frame's length prefix and applies the flush
// policy. Callers hold mu.
func (w *frameWriter) sealFrameLocked(lenPos, extMark, extLenMark int, inlineFlush bool) error {
	body := (len(w.buf) - lenPos - 4) + (w.extLen - extLenMark)
	if body > maxFrameSize {
		w.rollbackLocked(lenPos, extMark, extLenMark)
		return &encodeError{fmt.Errorf("transport: frame body %d bytes exceeds the %d-byte limit", body, maxFrameSize)}
	}
	putFrameLen(w.buf[lenPos:], body)
	w.frames++
	if (inlineFlush && !w.hot) || len(w.buf)+w.extLen >= writeThreshold {
		if err := w.flushLocked(); err != nil {
			w.fail(err)
			return err
		}
		return nil
	}
	if !w.armed {
		w.armed = true
		select {
		case w.kick <- struct{}{}:
		default:
		}
	}
	return nil
}

// flushLocked writes everything buffered — head bytes and blob-backed
// payload segments — with one gathered write, then releases the blobs.
// Callers hold mu.
func (w *frameWriter) flushLocked() error {
	if w.frames > 0 {
		w.obs.flush.Observe(float64(w.frames))
	}
	w.hot = w.frames > 1
	w.frames = 0
	total := len(w.buf) + w.extLen
	if total == 0 {
		return nil
	}
	w.setWriteDeadline()
	var err error
	if len(w.exts) == 0 {
		_, err = w.conn.Write(w.buf)
	} else {
		vecs := w.vecs[:0]
		prev := 0
		for i := range w.exts {
			e := &w.exts[i]
			if e.at > prev {
				vecs = append(vecs, w.buf[prev:e.at])
			}
			vecs = append(vecs, e.b)
			prev = e.at
		}
		if prev < len(w.buf) {
			vecs = append(vecs, w.buf[prev:])
		}
		w.vecs = vecs
		_, err = vecs.WriteTo(w.conn) // writev on TCP conns
		for i := range w.vecs {
			w.vecs[i] = nil
		}
		w.releaseExtsLocked()
	}
	// Bytes handed to the socket (the frames are gone from the buffer
	// either way — on error the conn is torn down).
	w.obs.bytesSent.Add(uint64(total))
	if cap(w.buf) > maxRetainedBuf {
		w.buf = nil
	} else {
		w.buf = w.buf[:0]
	}
	return err
}

// releaseExtsLocked releases every pending blob segment. Callers hold mu.
func (w *frameWriter) releaseExtsLocked() {
	for i := range w.exts {
		w.exts[i].own.Release()
		w.exts[i] = extSeg{}
	}
	w.exts = w.exts[:0]
	w.extLen = 0
}

func (w *frameWriter) setWriteDeadline() {
	if d := w.timeout(); d > 0 {
		_ = w.conn.SetWriteDeadline(time.Now().Add(d))
	}
}

// fail marks the writer broken and closes the socket, which unblocks the
// connection's reader and tears the conn down. Buffered frames are dropped,
// so their blob references are released here. Callers hold mu.
func (w *frameWriter) fail(err error) {
	if w.err == nil {
		w.err = err
	}
	w.releaseExtsLocked()
	w.conn.Close()
}

// close stops the flusher goroutine. The socket is closed by the caller.
func (w *frameWriter) close() {
	w.mu.Lock()
	if w.err == nil {
		w.err = ErrClosed
	}
	w.releaseExtsLocked()
	if !w.closed {
		w.closed = true
		close(w.done)
	}
	w.mu.Unlock()
}

// flushLoop is the backstop flusher: after a kick it yields a few times so
// every already-runnable writer can append its frame, then flushes the
// whole batch in one syscall.
func (w *frameWriter) flushLoop() {
	for {
		select {
		case <-w.kick:
		case <-w.done:
			return
		}
		runtime.Gosched()
		runtime.Gosched()
		w.mu.Lock()
		w.armed = false
		if w.err == nil {
			if err := w.flushLocked(); err != nil {
				w.fail(err)
			}
		}
		w.mu.Unlock()
	}
}
