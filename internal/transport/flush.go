package transport

import (
	"encoding/binary"
	"fmt"
	"net"
	"runtime"
	"sync"
	"time"
)

// frameWriter serializes frame writes onto one socket and coalesces
// flushes. A writer that knows it is the only active writer on the
// connection (sole pending call, last in-flight handler) flushes inline —
// no added latency on a quiet connection. Any other writer leaves its frame
// buffered and arms the flusher goroutine, which yields the processor a
// couple of times before flushing, so every caller or handler that is
// already runnable gets to append its frame first: a 16-way concurrent
// fan-out lands in one write syscall instead of sixteen. This is what makes
// pipelining pay off even on a single core, where concurrent writers never
// actually overlap on the write lock.
//
// Frames are encoded directly into the writer's buffer (no per-connection
// scratch-then-copy step): each frame reserves its 4-byte length prefix,
// encodes, and patches the prefix. Payloads carried by a refcounted Blob
// (BlobMarshaler values on the binary codec) never enter the buffer at all:
// the frame records a reference to the blob's bytes at the current buffer
// offset, and the flush writes buffered heads and shared payload bytes with
// one scatter-gather writev (net.Buffers), releasing each blob once its
// bytes are on the socket. A capacity-c fan-out therefore carries one
// payload encoding shared by c frames instead of c private copies.
//
// The writer is also where groups sharing one connection meet, so tenant
// fairness is enforced here. The socket write happens outside mu (the
// buffer is swapped out as a batch first), so while one batch drains,
// writers keep encoding into a fresh buffer instead of queueing on the
// lock. Each buffered frame carries its group label in a frame meta; a
// batch spanning multiple groups is assembled onto the socket by weighted
// round-robin over per-group frame queues (groupQuantum bytes per group per
// round) rather than arrival order, so a group blasting bulk frames cannot
// push another group's frames arbitrarily far back within the batch. On top
// of that, an optional per-group backlog quota (TCP.GroupBacklogLimit)
// refuses new *requests* from a group whose buffered bytes exceed the
// limit — ErrGroupBacklog, a local non-poisoning rejection — so a hot
// group sheds its own load instead of growing the shared buffer everyone
// flushes through. Responses are exempt: dropping a response would turn a
// served request into a caller-side timeout.
type frameWriter struct {
	conn net.Conn

	mu       sync.Mutex
	buf      []byte      // frame bytes buffered since the last batch was taken
	exts     []extSeg    // blob-backed segments interleaved into buf, by offset
	metas    []frameMeta // one per buffered frame, in seal order
	extLen   int         // total bytes across exts
	mixed    bool        // metas span more than one group
	err      error       // sticky; the conn is broken once set
	armed    bool        // flusher has been kicked and will flush
	closed   bool        // done has been closed
	frames   int         // frames buffered since the last batch was taken
	hot      bool        // the flusher is batching: skip inline flushes
	flushing bool        // a taken batch is being written outside mu

	// limit/pending implement the per-group backlog quota: pending tracks
	// buffered-plus-in-flight bytes per group (allocated lazily, only when
	// the limit is set).
	limit   int
	pending map[uint64]int

	// spare* recycle the previous batch's storage so the steady state is
	// two buffers ping-ponging, not an allocation per batch.
	spareBuf   []byte
	spareExts  []extSeg
	spareMetas []frameMeta

	// Write-side scratch, touched only by the goroutine that owns the
	// in-flight batch (flushing guarantees there is at most one).
	vecs     net.Buffers
	wrrOrder []uint64
	wrrPos   []int
	wrrIdx   map[uint64][]int
	giCache  map[uint64]*groupInstruments

	kick chan struct{}
	done chan struct{}

	// timeout bounds each socket write/flush so one stalled peer cannot
	// pin writers (or the flusher) forever.
	timeout func() time.Duration
	// obs carries the transport's instruments (flush batch sizes, bytes
	// sent, payload encodes, per-group flow counters); every handle is
	// nil-safe.
	obs *instruments
}

// extSeg is one blob-backed payload segment: its bytes logically follow
// buf[:at]. The writer holds one blob reference per segment, taken when the
// frame is buffered and released when the flush puts the bytes on the
// socket (or the connection dies).
type extSeg struct {
	at  int
	b   []byte
	own *Blob
}

// frameMeta locates one sealed frame within the batch buffers and tags it
// with its group, which is what lets a mixed batch be reordered per group
// at flush time and lets the quota release the right group's bytes.
type frameMeta struct {
	gid              uint64
	bufStart, bufEnd int // this frame's range in buf (length prefix included)
	extStart, extEnd int // this frame's range in exts
	size             int // total wire bytes (prefix + head + ext payloads)
}

// batch is the buffered state taken from the writer in one swap, owned by
// the flushing goroutine until finishBatch returns it for recycling.
type batch struct {
	buf    []byte
	exts   []extSeg
	metas  []frameMeta
	extLen int
	frames int
	mixed  bool
}

const (
	// writeThreshold is the buffered-bytes level (heads + blob payloads)
	// that forces an inline flush, bounding how much one connection buffers
	// between flusher runs — the moral equivalent of the old fixed-size
	// bufio.Writer writing through when full.
	writeThreshold = 64 * 1024
	// maxRetainedBuf caps the head buffer kept across flushes; a burst of
	// oversized non-blob payloads (gob fallback) does not pin its peak
	// footprint forever.
	maxRetainedBuf = 128 * 1024
	// groupQuantum is the weighted-round-robin share: bytes of one group's
	// frames placed per scheduling round of a mixed batch (always at least
	// one frame, so an oversized frame still makes progress).
	groupQuantum = 16 * 1024
)

func newFrameWriter(conn net.Conn, timeout func() time.Duration, limit int, obs *instruments) *frameWriter {
	w := &frameWriter{
		conn:    conn,
		limit:   limit,
		kick:    make(chan struct{}, 1),
		done:    make(chan struct{}),
		timeout: timeout,
		obs:     obs,
	}
	go w.flushLoop()
	return w
}

// writeRequest encodes and writes one request frame; writeResponse does
// the same for a response frame. They are separate methods rather than one
// writeFrame taking a builder closure so the encode happens inline under
// mu with no per-call closure allocation.
//
// inlineFlush says the caller believes no other writer is active, so the
// frame should hit the socket now; otherwise the flush is left to the
// flusher (or to a later inline writer). On a hot connection — the last
// flush batched multiple frames — the inline hint is ignored: under
// pipelined load the "sole active writer" heuristic misfires once per
// burst (the first caller of a new burst sees an empty pending set), and
// deferring to the flusher folds that stray frame into the burst's single
// write syscall. Both return the sticky connection error, if any.
func (w *frameWriter) writeRequest(callID, gid uint64, from, to, kind string, payload any, codec Codec, inlineFlush bool) error {
	w.mu.Lock()
	if w.err != nil {
		err := w.err
		w.mu.Unlock()
		return err
	}
	if w.limit > 0 && w.pending[gid] >= w.limit {
		over := w.pending[gid]
		w.mu.Unlock()
		if gi := w.obs.groups.get(gid); gi != nil {
			gi.drops.Inc()
		}
		return &encodeError{fmt.Errorf("%w: group %d has %d bytes buffered (limit %d)", ErrGroupBacklog, gid, over, w.limit)}
	}
	lenPos, extMark, extLenMark := w.markLocked()
	w.buf = appendFrameHeader(w.buf, frameRequest, callID, gid)
	w.buf = AppendString(w.buf, from)
	w.buf = AppendString(w.buf, to)
	w.buf = AppendString(w.buf, kind)
	if err := w.appendPayloadLocked(payload, codec); err != nil {
		// Encoding failed; roll the partial frame back — the conn is still
		// clean, no bytes were exposed to the socket.
		w.rollbackLocked(lenPos, extMark, extLenMark)
		w.mu.Unlock()
		return &encodeError{err}
	}
	return w.sealFrame(gid, lenPos, extMark, extLenMark, inlineFlush)
}

func (w *frameWriter) writeResponse(callID, gid uint64, errMsg string, errCode uint64, payload any, codec Codec, inlineFlush bool) error {
	w.mu.Lock()
	if w.err != nil {
		err := w.err
		w.mu.Unlock()
		return err
	}
	lenPos, extMark, extLenMark := w.markLocked()
	w.buf = appendFrameHeader(w.buf, frameResponse, callID, gid)
	w.buf = AppendString(w.buf, errMsg)
	if errMsg != "" {
		// Error responses carry a status code instead of a payload.
		w.buf = binary.AppendUvarint(w.buf, errCode)
		w.buf = append(w.buf, wireTagNil)
	} else if err := w.appendPayloadLocked(payload, codec); err != nil {
		w.rollbackLocked(lenPos, extMark, extLenMark)
		w.mu.Unlock()
		return &encodeError{err}
	}
	return w.sealFrame(gid, lenPos, extMark, extLenMark, inlineFlush)
}

// markLocked records the rollback point for one frame and reserves its
// length prefix. Callers hold mu.
func (w *frameWriter) markLocked() (lenPos, extMark, extLenMark int) {
	lenPos, extMark, extLenMark = len(w.buf), len(w.exts), w.extLen
	w.buf = append(w.buf, 0, 0, 0, 0)
	return lenPos, extMark, extLenMark
}

// appendPayloadLocked encodes the payload field of the current frame. A
// BlobMarshaler carrying its blob contributes only its head to the buffer;
// the payload bytes ride as a shared extSeg. Callers hold mu.
func (w *frameWriter) appendPayloadLocked(payload any, codec Codec) error {
	if payload == nil {
		w.buf = append(w.buf, wireTagNil)
		return nil
	}
	if codec == CodecBinary {
		if bm, ok := payload.(BlobMarshaler); ok {
			if view, owner := bm.PayloadBlob(); owner != nil {
				w.buf = append(w.buf, bm.WireTag())
				w.buf = bm.AppendWireHead(w.buf)
				if len(view) > 0 {
					owner.Retain()
					w.exts = append(w.exts, extSeg{at: len(w.buf), b: view, own: owner})
					w.extLen += len(view)
				}
				return nil
			}
			// A blob-capable payload without its blob falls back to a full
			// per-frame encode. Correct but a zero-copy regression, so it
			// counts as a payload materialization.
			w.obs.encodes.Inc()
		}
	}
	b, err := appendPayload(w.buf, payload, codec)
	if err != nil {
		return err
	}
	w.buf = b
	return nil
}

// rollbackLocked undoes a partially encoded frame: truncates the buffer and
// drops (releasing) any blob segments the frame added. Callers hold mu.
func (w *frameWriter) rollbackLocked(lenPos, extMark, extLenMark int) {
	w.buf = w.buf[:lenPos]
	for i := extMark; i < len(w.exts); i++ {
		w.exts[i].own.Release()
		w.exts[i] = extSeg{}
	}
	w.exts = w.exts[:extMark]
	w.extLen = extLenMark
}

// sealFrame patches the frame's length prefix, records its meta, applies
// the flush policy, and releases mu (callers enter holding it). If the
// policy says flush and no batch is in flight, the caller's goroutine takes
// the batch and performs the socket write itself — outside mu, so
// concurrent writers encode into the fresh buffer meanwhile.
func (w *frameWriter) sealFrame(gid uint64, lenPos, extMark, extLenMark int, inlineFlush bool) error {
	body := (len(w.buf) - lenPos - 4) + (w.extLen - extLenMark)
	if body > maxFrameSize {
		w.rollbackLocked(lenPos, extMark, extLenMark)
		w.mu.Unlock()
		return &encodeError{fmt.Errorf("transport: frame body %d bytes exceeds the %d-byte limit", body, maxFrameSize)}
	}
	putFrameLen(w.buf[lenPos:], body)
	if w.frames > 0 && gid != w.metas[len(w.metas)-1].gid {
		w.mixed = true
	}
	w.metas = append(w.metas, frameMeta{
		gid:      gid,
		bufStart: lenPos,
		bufEnd:   len(w.buf),
		extStart: extMark,
		extEnd:   len(w.exts),
		size:     body + 4,
	})
	w.frames++
	if w.limit > 0 {
		if w.pending == nil {
			w.pending = make(map[uint64]int)
		}
		w.pending[gid] += body + 4
	}
	if ((inlineFlush && !w.hot) || len(w.buf)+w.extLen >= writeThreshold) && !w.flushing {
		b := w.takeBatchLocked()
		w.mu.Unlock()
		return w.writeBatch(b)
	}
	if !w.armed {
		w.armed = true
		select {
		case w.kick <- struct{}{}:
		default:
		}
	}
	w.mu.Unlock()
	return nil
}

// takeBatchLocked swaps the buffered frames out as a batch (installing the
// recycled spare buffers) and marks the writer flushing. Callers hold mu
// and must call writeBatch with the result after unlocking.
func (w *frameWriter) takeBatchLocked() batch {
	b := batch{buf: w.buf, exts: w.exts, metas: w.metas, extLen: w.extLen, frames: w.frames, mixed: w.mixed}
	w.buf, w.spareBuf = w.spareBuf, nil
	w.exts, w.spareExts = w.spareExts, nil
	w.metas, w.spareMetas = w.spareMetas, nil
	w.extLen, w.frames, w.mixed = 0, 0, false
	w.hot = b.frames > 1
	w.flushing = true
	if b.frames > 0 {
		w.obs.flush.Observe(float64(b.frames))
	}
	return b
}

// writeBatch puts one taken batch on the socket — one gathered write —
// releases its blob references, and returns its storage for recycling.
// Runs outside mu; the flushing flag guarantees a single owner, which is
// what makes the writer's vecs/WRR scratch safe to reuse here.
func (w *frameWriter) writeBatch(b batch) error {
	var err error
	total := len(b.buf) + b.extLen
	if total > 0 {
		w.setWriteDeadline()
		w.assembleVecs(&b)
		if len(w.vecs) == 1 {
			// Plain write for the all-head single-run batch: same syscall
			// count, and unlike writev it carries the race detector's I/O
			// synchronization annotation.
			_, err = w.conn.Write(w.vecs[0])
		} else {
			_, err = w.vecs.WriteTo(w.conn) // writev on TCP conns
		}
		for i := range w.vecs {
			w.vecs[i] = nil
		}
		w.vecs = w.vecs[:0]
		for i := range b.exts {
			b.exts[i].own.Release()
			b.exts[i] = extSeg{}
		}
		// Bytes handed to the socket (the frames are gone from the buffer
		// either way — on error the conn is torn down).
		w.obs.bytesSent.Add(uint64(total))
		w.accountGroups(&b)
	}
	w.finishBatch(b, err)
	return err
}

// assembleVecs lays the batch's frames out as scatter-gather segments in
// w.vecs. A single-group batch keeps the cheap linear interleave of buffer
// runs and blob segments; a mixed batch goes through the weighted
// round-robin ordering instead.
func (w *frameWriter) assembleVecs(b *batch) {
	if b.mixed && b.frames > 1 {
		w.vecs = w.wrrVecs(w.vecs[:0], b)
		return
	}
	vecs := w.vecs[:0]
	prev := 0
	for i := range b.exts {
		e := &b.exts[i]
		if e.at > prev {
			vecs = append(vecs, b.buf[prev:e.at])
		}
		vecs = append(vecs, e.b)
		prev = e.at
	}
	if prev < len(b.buf) {
		vecs = append(vecs, b.buf[prev:])
	}
	w.vecs = vecs
}

// wrrVecs orders a mixed batch's frames by weighted round-robin over the
// groups present: each round places up to groupQuantum bytes (at least one
// frame) per group, in first-appearance group order, until every frame is
// placed. Frames keep FIFO order within their group; reordering across
// groups inside one batch is safe because responses are matched by call ID,
// not arrival order. The scratch maps/slices live on the writer and are
// reset (not freed) per batch.
func (w *frameWriter) wrrVecs(vecs net.Buffers, b *batch) net.Buffers {
	if w.wrrIdx == nil {
		w.wrrIdx = make(map[uint64][]int)
	}
	order := w.wrrOrder[:0]
	for i := range b.metas {
		gid := b.metas[i].gid
		q := w.wrrIdx[gid]
		if len(q) == 0 {
			order = append(order, gid)
		}
		w.wrrIdx[gid] = append(q, i)
	}
	pos := w.wrrPos[:0]
	for range order {
		pos = append(pos, 0)
	}
	remaining := b.frames
	for remaining > 0 {
		for oi, gid := range order {
			q := w.wrrIdx[gid]
			placed := 0
			for pos[oi] < len(q) && placed < groupQuantum {
				m := &b.metas[q[pos[oi]]]
				vecs = appendFrameVecs(vecs, b, m)
				placed += m.size
				pos[oi]++
				remaining--
			}
		}
	}
	for _, gid := range order {
		w.wrrIdx[gid] = w.wrrIdx[gid][:0]
	}
	w.wrrOrder = order[:0]
	w.wrrPos = pos[:0]
	return vecs
}

// appendFrameVecs appends one frame's wire segments (buffer runs
// interleaved with its blob payloads) to vecs.
func appendFrameVecs(vecs net.Buffers, b *batch, m *frameMeta) net.Buffers {
	prev := m.bufStart
	for i := m.extStart; i < m.extEnd; i++ {
		e := &b.exts[i]
		if e.at > prev {
			vecs = append(vecs, b.buf[prev:e.at])
		}
		vecs = append(vecs, e.b)
		prev = e.at
	}
	if prev < m.bufEnd {
		vecs = append(vecs, b.buf[prev:m.bufEnd])
	}
	return vecs
}

// accountGroups adds each non-default group's share of the batch to its
// bytes_sent counter. The per-writer handle cache keeps the resolver's
// mutex off the steady-state path; like the WRR scratch it is owned by the
// single in-flight batch writer.
func (w *frameWriter) accountGroups(b *batch) {
	if w.obs.groups == nil {
		return
	}
	for i := range b.metas {
		m := &b.metas[i]
		if m.gid == DefaultGroup {
			continue
		}
		gi := w.giCache[m.gid]
		if gi == nil {
			gi = w.obs.groups.get(m.gid)
			if w.giCache == nil {
				w.giCache = make(map[uint64]*groupInstruments)
			}
			w.giCache[m.gid] = gi
		}
		gi.bytesSent.Add(uint64(m.size))
	}
}

// finishBatch returns a written batch's storage to the writer, settles the
// quota accounting, and decides what happens next: fail the writer on a
// socket error, or re-kick the flusher if frames accumulated while the
// batch was in flight.
func (w *frameWriter) finishBatch(b batch, err error) {
	w.mu.Lock()
	w.flushing = false
	if w.limit > 0 && w.pending != nil {
		for i := range b.metas {
			m := &b.metas[i]
			if rest := w.pending[m.gid] - m.size; rest > 0 {
				w.pending[m.gid] = rest
			} else {
				delete(w.pending, m.gid)
			}
		}
	}
	if cap(b.buf) <= maxRetainedBuf {
		w.spareBuf = b.buf[:0]
	}
	w.spareExts = b.exts[:0]
	w.spareMetas = b.metas[:0]
	if err != nil {
		w.fail(err)
	} else if w.frames > 0 && !w.armed && w.err == nil {
		w.armed = true
		select {
		case w.kick <- struct{}{}:
		default:
		}
	}
	w.mu.Unlock()
}

// releaseExtsLocked releases every buffered (untaken) blob segment.
// Callers hold mu.
func (w *frameWriter) releaseExtsLocked() {
	for i := range w.exts {
		w.exts[i].own.Release()
		w.exts[i] = extSeg{}
	}
	w.exts = w.exts[:0]
	w.extLen = 0
}

func (w *frameWriter) setWriteDeadline() {
	if d := w.timeout(); d > 0 {
		_ = w.conn.SetWriteDeadline(time.Now().Add(d))
	}
}

// fail marks the writer broken and closes the socket, which unblocks the
// connection's reader and tears the conn down. Buffered frames are dropped,
// so their blob references are released here. Callers hold mu.
func (w *frameWriter) fail(err error) {
	if w.err == nil {
		w.err = err
	}
	w.releaseExtsLocked()
	w.metas = w.metas[:0]
	w.frames = 0
	w.conn.Close()
}

// close stops the flusher goroutine. The socket is closed by the caller.
func (w *frameWriter) close() {
	w.mu.Lock()
	if w.err == nil {
		w.err = ErrClosed
	}
	w.releaseExtsLocked()
	w.metas = w.metas[:0]
	w.frames = 0
	if !w.closed {
		w.closed = true
		close(w.done)
	}
	w.mu.Unlock()
}

// flushLoop is the backstop flusher: after a kick it yields a few times so
// every already-runnable writer can append its frame, then flushes the
// whole batch in one syscall. If an inline writer has a batch in flight the
// kick is a no-op — that writer's finishBatch re-kicks if frames remain.
func (w *frameWriter) flushLoop() {
	for {
		select {
		case <-w.kick:
		case <-w.done:
			return
		}
		runtime.Gosched()
		runtime.Gosched()
		w.mu.Lock()
		w.armed = false
		if w.err != nil || w.flushing || w.frames == 0 {
			w.mu.Unlock()
			continue
		}
		b := w.takeBatchLocked()
		w.mu.Unlock()
		w.writeBatch(b)
	}
}
