package transport

import (
	"bufio"
	"net"
	"runtime"
	"sync"
	"time"

	"camcast/internal/obsv"
)

// frameWriter serializes frame writes onto one buffered socket writer and
// coalesces flushes. A writer that knows it is the only active writer on
// the connection (sole pending call, last in-flight handler) flushes
// inline — no added latency on a quiet connection. Any other writer leaves
// its frame buffered and arms the flusher goroutine, which yields the
// processor a couple of times before flushing, so every caller or handler
// that is already runnable gets to append its frame first: a 16-way
// concurrent fan-out lands in one write syscall instead of sixteen. This
// is what makes pipelining pay off even on a single core, where concurrent
// writers never actually overlap on the write lock.
type frameWriter struct {
	conn net.Conn

	mu      sync.Mutex
	bw      *bufio.Writer
	scratch []byte // frame encode buffer, reused under mu
	err     error  // sticky; the conn is broken once set
	armed   bool   // flusher has been kicked and will flush
	closed  bool   // done has been closed
	frames  int    // frames buffered since the last flush
	hot     bool   // the flusher is batching: skip inline flushes

	kick chan struct{}
	done chan struct{}

	// timeout bounds each socket write/flush so one stalled peer cannot
	// pin writers (or the flusher) forever.
	timeout func() time.Duration
	// flushObs observes the batch size (frames per flush); nil disables.
	flushObs *obsv.Histogram
}

func newFrameWriter(conn net.Conn, timeout func() time.Duration, flushObs *obsv.Histogram) *frameWriter {
	w := &frameWriter{
		conn:     conn,
		bw:       bufio.NewWriterSize(conn, 64*1024),
		kick:     make(chan struct{}, 1),
		done:     make(chan struct{}),
		timeout:  timeout,
		flushObs: flushObs,
	}
	go w.flushLoop()
	return w
}

// writeRequest encodes and writes one request frame; writeResponse does
// the same for a response frame. They are separate methods rather than one
// writeFrame taking a builder closure so the encode happens inline under
// mu with no per-call closure allocation.
//
// inlineFlush says the caller believes no other writer is active, so the
// frame should hit the socket now; otherwise the flush is left to the
// flusher (or to a later inline writer). On a hot connection — the last
// flush batched multiple frames — the inline hint is ignored: under
// pipelined load the "sole active writer" heuristic misfires once per
// burst (the first caller of a new burst sees an empty pending set), and
// deferring to the flusher folds that stray frame into the burst's single
// write syscall. Both return the sticky connection error, if any.
func (w *frameWriter) writeRequest(callID uint64, from, to, kind string, payload any, codec Codec, inlineFlush bool) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return w.err
	}
	body, err := appendRequestBody(w.scratch[:0], callID, from, to, kind, payload, codec)
	if err != nil {
		// Encoding failed before any bytes were buffered; the conn is
		// still clean.
		return &encodeError{err}
	}
	return w.finishFrameLocked(body, inlineFlush)
}

func (w *frameWriter) writeResponse(callID uint64, errMsg string, payload any, codec Codec, inlineFlush bool) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return w.err
	}
	body, err := appendResponseBody(w.scratch[:0], callID, errMsg, payload, codec)
	if err != nil {
		return &encodeError{err}
	}
	return w.finishFrameLocked(body, inlineFlush)
}

// finishFrameLocked writes an encoded frame body and applies the flush
// policy. Callers hold mu.
func (w *frameWriter) finishFrameLocked(body []byte, inlineFlush bool) error {
	w.scratch = body
	if err := w.writeLocked(body); err != nil {
		w.fail(err)
		return err
	}
	w.frames++
	if inlineFlush && !w.hot {
		if err := w.flushLocked(); err != nil {
			w.fail(err)
			return err
		}
		return nil
	}
	if !w.armed {
		w.armed = true
		select {
		case w.kick <- struct{}{}:
		default:
		}
	}
	return nil
}

// writeLocked buffers one length-prefixed frame. Callers hold mu.
func (w *frameWriter) writeLocked(body []byte) error {
	var lenb [4]byte
	putFrameLen(lenb[:], len(body))
	// A frame larger than the buffer's free space makes bufio write
	// through to the socket; bound that write like a flush.
	if len(body)+4 > w.bw.Available() {
		w.setWriteDeadline()
	}
	if _, err := w.bw.Write(lenb[:]); err != nil {
		return err
	}
	_, err := w.bw.Write(body)
	return err
}

func (w *frameWriter) flushLocked() error {
	if w.frames > 0 {
		w.flushObs.Observe(float64(w.frames))
	}
	w.hot = w.frames > 1
	w.frames = 0
	if w.bw.Buffered() == 0 {
		return nil
	}
	w.setWriteDeadline()
	return w.bw.Flush()
}

func (w *frameWriter) setWriteDeadline() {
	if d := w.timeout(); d > 0 {
		_ = w.conn.SetWriteDeadline(time.Now().Add(d))
	}
}

// fail marks the writer broken and closes the socket, which unblocks the
// connection's reader and tears the conn down. Callers hold mu.
func (w *frameWriter) fail(err error) {
	if w.err == nil {
		w.err = err
	}
	w.conn.Close()
}

// close stops the flusher goroutine. The socket is closed by the caller.
func (w *frameWriter) close() {
	w.mu.Lock()
	if w.err == nil {
		w.err = ErrClosed
	}
	if !w.closed {
		w.closed = true
		close(w.done)
	}
	w.mu.Unlock()
}

// flushLoop is the backstop flusher: after a kick it yields a few times so
// every already-runnable writer can append its frame, then flushes the
// whole batch in one syscall.
func (w *frameWriter) flushLoop() {
	for {
		select {
		case <-w.kick:
		case <-w.done:
			return
		}
		runtime.Gosched()
		runtime.Gosched()
		w.mu.Lock()
		w.armed = false
		if w.err == nil {
			if err := w.flushLocked(); err != nil {
				w.fail(err)
			}
		}
		w.mu.Unlock()
	}
}
