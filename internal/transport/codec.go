package transport

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"camcast/internal/obsv"
)

// Codec selects how RPC payloads are encoded on the wire. The frame format
// and pipelining are codec-independent: the codec only chooses the encoding
// of the payload field, and every frame carries a payload type tag, so the
// two ends of a connection may even disagree — a binary peer decodes gob
// payloads and vice versa. The knob exists for A/B measurement
// (BenchmarkWireCodec) and as an escape hatch.
type Codec int

const (
	// CodecBinary (the default) encodes registered payload types with
	// their hand-rolled binary marshalers and falls back to gob for
	// unregistered types.
	CodecBinary Codec = iota
	// CodecGob encodes every payload with gob, as the pre-pipelining
	// transport did. Types must be registered with encoding/gob.
	CodecGob
)

// String implements fmt.Stringer.
func (c Codec) String() string {
	switch c {
	case CodecBinary:
		return "binary"
	case CodecGob:
		return "gob"
	default:
		return fmt.Sprintf("Codec(%d)", int(c))
	}
}

// ParseCodec maps a flag value to a Codec; "" means the default.
func ParseCodec(s string) (Codec, error) {
	switch s {
	case "", "binary":
		return CodecBinary, nil
	case "gob":
		return CodecGob, nil
	default:
		return 0, fmt.Errorf("transport: unknown codec %q (want binary or gob)", s)
	}
}

// gobBox carries a payload as a gob interface value, so the concrete type
// travels with it (every fallback type must be gob.Registered, exactly as
// the old transport required for all payloads).
type gobBox struct {
	V any
}

// BlobMarshaler is implemented by payload types that carry their payload
// bytes in a shared refcounted Blob, letting the frame writer scatter-gather
// the frame: the head (everything up to and including the payload-bytes
// length framing) is encoded per frame, while the payload bytes themselves
// are written straight from the blob, shared across every frame of the
// fan-out. The invariant both methods must satisfy is
//
//	AppendWire(b) == append(AppendWireHead(b), view...)
//
// where view is the slice PayloadBlob returned. A BlobMarshaler without an
// attached blob (PayloadBlob returns a nil owner) falls back to the plain
// AppendWire path — correct, but re-encoding the payload per frame, which
// the transport.payload_encodes counter exposes.
type BlobMarshaler interface {
	WireMarshaler
	// PayloadBlob returns the payload view and the blob that owns it, or a
	// nil owner when the value carries no pre-encoded payload. The view must
	// stay valid for as long as the caller holds a reference on the owner.
	PayloadBlob() (view []byte, owner *Blob)
	// AppendWireHead appends the encoding of everything except the payload
	// bytes — including the payload's length framing — to b.
	AppendWireHead(b []byte) []byte
}

// PayloadReleaser is implemented by decoded payload types that hold a blob
// reference (installed by a RegisterBlobDecoder decoder). The serving side
// calls ReleasePayload after the handler returns; handlers themselves only
// borrow the payload and must not release it.
type PayloadReleaser interface {
	ReleasePayload()
}

// blobDecoders maps payload type tags to blob-aware decoders, which alias
// the payload bytes out of the request's pooled frame buffer instead of
// copying them. Registration is init-time only, like wireDecoders.
var blobDecoders [256]func(b []byte, owner *Blob) (any, error)

// RegisterBlobDecoder installs a blob-aware decoder for a payload type tag
// already registered with RegisterWireDecoder. The decoder receives the
// payload bytes and the Blob that owns them; if the decoded value keeps a
// view of the bytes it must Retain the owner and implement PayloadReleaser.
// The serving side prefers this decoder; everything else (the plain client
// response path, fuzzers) keeps using the copying decoder.
func RegisterBlobDecoder(tag byte, dec func(b []byte, owner *Blob) (any, error)) {
	if tag < WireTagUserMin {
		panic(fmt.Sprintf("transport: wire tag %#x is reserved", tag))
	}
	if wireDecoders[tag] == nil {
		panic(fmt.Sprintf("transport: blob decoder for unregistered tag %#x", tag))
	}
	if blobDecoders[tag] != nil {
		panic(fmt.Sprintf("transport: blob decoder for tag %#x registered twice", tag))
	}
	blobDecoders[tag] = dec
}

// appendPayload appends the tag+body encoding of payload.
func appendPayload(b []byte, payload any, codec Codec) ([]byte, error) {
	if payload == nil {
		return append(b, wireTagNil), nil
	}
	if codec == CodecBinary {
		if m, ok := payload.(WireMarshaler); ok {
			b = append(b, m.WireTag())
			return m.AppendWire(b), nil
		}
	}
	b = append(b, wireTagGob)
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&gobBox{V: payload}); err != nil {
		return nil, fmt.Errorf("transport: encode payload %T: %w", payload, err)
	}
	return append(b, buf.Bytes()...), nil
}

// decodePayloadOwned decodes one tag+body payload encoding whose bytes live
// in owner (the request's pooled frame buffer). Tags with a registered blob
// decoder alias the payload out of owner — zero copies, one Retain — and
// count one payload materialization; everything else falls back to the
// copying decodePayload. The counter may be nil.
func decodePayloadOwned(b []byte, owner *Blob, encodes *obsv.Counter) (any, error) {
	if owner != nil && len(b) > 0 {
		if dec := blobDecoders[b[0]]; dec != nil {
			encodes.Inc()
			return dec(b[1:], owner)
		}
	}
	return decodePayload(b)
}

// decodePayload decodes one tag+body payload encoding. The input may alias
// a reused frame buffer; decoders copy anything they keep.
func decodePayload(b []byte) (any, error) {
	if len(b) == 0 {
		return nil, fmt.Errorf("%w: empty payload", ErrWireDecode)
	}
	tag, body := b[0], b[1:]
	switch tag {
	case wireTagNil:
		if len(body) != 0 {
			return nil, fmt.Errorf("%w: %d bytes after nil tag", ErrWireDecode, len(body))
		}
		return nil, nil
	case wireTagGob:
		var box gobBox
		if err := gob.NewDecoder(bytes.NewReader(body)).Decode(&box); err != nil {
			return nil, fmt.Errorf("transport: decode gob payload: %w", err)
		}
		return box.V, nil
	default:
		dec := wireDecoders[tag]
		if dec == nil {
			return nil, fmt.Errorf("%w: unregistered payload tag %#x", ErrWireDecode, tag)
		}
		return dec(body)
	}
}
