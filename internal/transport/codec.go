package transport

import (
	"bytes"
	"encoding/gob"
	"fmt"
)

// Codec selects how RPC payloads are encoded on the wire. The frame format
// and pipelining are codec-independent: the codec only chooses the encoding
// of the payload field, and every frame carries a payload type tag, so the
// two ends of a connection may even disagree — a binary peer decodes gob
// payloads and vice versa. The knob exists for A/B measurement
// (BenchmarkWireCodec) and as an escape hatch.
type Codec int

const (
	// CodecBinary (the default) encodes registered payload types with
	// their hand-rolled binary marshalers and falls back to gob for
	// unregistered types.
	CodecBinary Codec = iota
	// CodecGob encodes every payload with gob, as the pre-pipelining
	// transport did. Types must be registered with encoding/gob.
	CodecGob
)

// String implements fmt.Stringer.
func (c Codec) String() string {
	switch c {
	case CodecBinary:
		return "binary"
	case CodecGob:
		return "gob"
	default:
		return fmt.Sprintf("Codec(%d)", int(c))
	}
}

// ParseCodec maps a flag value to a Codec; "" means the default.
func ParseCodec(s string) (Codec, error) {
	switch s {
	case "", "binary":
		return CodecBinary, nil
	case "gob":
		return CodecGob, nil
	default:
		return 0, fmt.Errorf("transport: unknown codec %q (want binary or gob)", s)
	}
}

// gobBox carries a payload as a gob interface value, so the concrete type
// travels with it (every fallback type must be gob.Registered, exactly as
// the old transport required for all payloads).
type gobBox struct {
	V any
}

// appendPayload appends the tag+body encoding of payload.
func appendPayload(b []byte, payload any, codec Codec) ([]byte, error) {
	if payload == nil {
		return append(b, wireTagNil), nil
	}
	if codec == CodecBinary {
		if m, ok := payload.(WireMarshaler); ok {
			b = append(b, m.WireTag())
			return m.AppendWire(b), nil
		}
	}
	b = append(b, wireTagGob)
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&gobBox{V: payload}); err != nil {
		return nil, fmt.Errorf("transport: encode payload %T: %w", payload, err)
	}
	return append(b, buf.Bytes()...), nil
}

// decodePayload decodes one tag+body payload encoding. The input may alias
// a reused frame buffer; decoders copy anything they keep.
func decodePayload(b []byte) (any, error) {
	if len(b) == 0 {
		return nil, fmt.Errorf("%w: empty payload", ErrWireDecode)
	}
	tag, body := b[0], b[1:]
	switch tag {
	case wireTagNil:
		if len(body) != 0 {
			return nil, fmt.Errorf("%w: %d bytes after nil tag", ErrWireDecode, len(body))
		}
		return nil, nil
	case wireTagGob:
		var box gobBox
		if err := gob.NewDecoder(bytes.NewReader(body)).Decode(&box); err != nil {
			return nil, fmt.Errorf("transport: decode gob payload: %w", err)
		}
		return box.V, nil
	default:
		dec := wireDecoders[tag]
		if dec == nil {
			return nil, fmt.Errorf("%w: unregistered payload tag %#x", ErrWireDecode, tag)
		}
		return dec(body)
	}
}
