package transport

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"camcast/internal/obsv"
)

func TestGroupLabel(t *testing.T) {
	if got := GroupLabel("tenant-a"); got == 0 {
		t.Error("GroupLabel returned the reserved default label 0")
	}
	if GroupLabel("tenant-a") != GroupLabel("tenant-a") {
		t.Error("GroupLabel is not deterministic")
	}
	if GroupLabel("tenant-a") == GroupLabel("tenant-b") {
		t.Error("distinct names mapped to one label")
	}
}

// TestFlowIsolation pins the in-process transport's group semantics: a
// Flow only reaches endpoints registered in its own group, even at an
// address that exists in another group.
func TestFlowIsolation(t *testing.T) {
	n := NewNetwork(1)
	fa, fb := n.Flow(GroupLabel("a")), n.Flow(GroupLabel("b"))
	if fa.GroupID() == fb.GroupID() {
		t.Fatal("flows share a group id")
	}
	fa.Register("x", func(from, kind string, payload any) (any, error) {
		return "from-a", nil
	})
	if !fa.Registered("x") {
		t.Error("flow a does not see its own endpoint")
	}
	if fb.Registered("x") {
		t.Error("flow b sees flow a's endpoint")
	}
	got, err := fa.Call(context.Background(), "c", "x", "probe", nil)
	if err != nil || got != "from-a" {
		t.Errorf("same-group call = %v, %v; want from-a", got, err)
	}
	if _, err := fb.Call(context.Background(), "c", "x", "probe", nil); err == nil {
		t.Error("cross-group call reached a foreign endpoint")
	}
	fa.Unregister("x")
	if fa.Registered("x") {
		t.Error("unregister did not remove the endpoint")
	}
}

// TestTCPThousandGroupsOneConnection is the tentpole scale assertion at
// the transport layer: 1000 groups call across the same peer pair and the
// whole exchange multiplexes over a single pipelined TCP connection —
// each side holds exactly one (A its dialed conn, B its accepted one).
func TestTCPThousandGroupsOneConnection(t *testing.T) {
	a, b := newTCPPair(t)
	const groups = 1000
	for gid := uint64(1); gid <= groups; gid++ {
		gid := gid
		b.RegisterGroup(gid, b.Addr(), func(from, kind string, payload any) (any, error) {
			return echoPayload{Value: int(gid)}, nil
		})
	}
	ctx := context.Background()
	for gid := uint64(1); gid <= groups; gid++ {
		resp, err := a.CallGroup(ctx, gid, "client", b.Addr(), "probe", echoPayload{Value: 0})
		if err != nil {
			t.Fatalf("group %d: %v", gid, err)
		}
		if got := resp.(echoPayload).Value; got != int(gid) {
			t.Fatalf("group %d answered as group %d — frames crossed flows", gid, got)
		}
	}
	if got := a.ConnCount(); got != 1 {
		t.Errorf("caller holds %d connections for %d groups, want 1", got, groups)
	}
	if got := b.ConnCount(); got != 1 {
		t.Errorf("callee holds %d connections for %d groups, want 1", got, groups)
	}

	// A group nobody registered is unreachable, with the group named in
	// the error rather than silently falling back to another group's
	// endpoint at the same address.
	if _, err := a.CallGroup(ctx, groups+1, "client", b.Addr(), "probe", echoPayload{}); err == nil {
		t.Error("call into an unregistered group succeeded")
	} else if !strings.Contains(err.Error(), "group") {
		t.Errorf("unregistered-group error %q does not mention the group", err)
	}
}

// gateConn blocks every Write until released, then records bytes. It lets
// the tests park the frame writer's single in-flight batch on the
// "socket" while more frames pile into the next batch.
type gateConn struct {
	gate    chan struct{}
	mu      sync.Mutex
	buf     []byte
	blocked chan struct{}
	once    sync.Once
}

func newGateConn() *gateConn {
	return &gateConn{gate: make(chan struct{}), blocked: make(chan struct{})}
}

func (c *gateConn) release() { close(c.gate) }

func (c *gateConn) bytes() []byte {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]byte(nil), c.buf...)
}

func (c *gateConn) Write(p []byte) (int, error) {
	c.once.Do(func() { close(c.blocked) })
	<-c.gate
	c.mu.Lock()
	defer c.mu.Unlock()
	c.buf = append(c.buf, p...)
	return len(p), nil
}

func (*gateConn) Read([]byte) (int, error)         { return 0, nil }
func (*gateConn) Close() error                     { return nil }
func (*gateConn) LocalAddr() net.Addr              { return nil }
func (*gateConn) RemoteAddr() net.Addr             { return nil }
func (*gateConn) SetDeadline(time.Time) error      { return nil }
func (*gateConn) SetReadDeadline(time.Time) error  { return nil }
func (*gateConn) SetWriteDeadline(time.Time) error { return nil }

// drainGids parses a concatenation of wire frames and returns the group
// label of each in order.
func drainGids(t *testing.T, stream []byte) []uint64 {
	t.Helper()
	var gids []uint64
	for len(stream) > 0 {
		if len(stream) < 4 {
			t.Fatalf("trailing garbage: %d bytes", len(stream))
		}
		size := binary.BigEndian.Uint32(stream[:4])
		body := stream[4 : 4+size]
		_, _, gid, _, err := frameHeader(body)
		if err != nil {
			t.Fatal(err)
		}
		gids = append(gids, gid)
		stream = stream[4+size:]
	}
	return gids
}

func waitFrames(t *testing.T, conn *gateConn, want int) []uint64 {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		gids := drainGids(t, conn.bytes())
		if len(gids) >= want {
			return gids
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d frames reached the conn", len(gids), want)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestFrameWriterWRRInterleaving proves mixed batches are assembled per
// group, not in raw arrival order: frames written interleaved A,B,A,C,A
// leave the writer grouped by flow in first-appearance order — the
// weighted round robin with every group under its quantum.
func TestFrameWriterWRRInterleaving(t *testing.T) {
	registerBlobTestPayload()
	conn := newGateConn()
	w := newFrameWriter(conn, func() time.Duration { return 0 }, 0, &instruments{})
	defer w.close()

	gidA, gidB, gidC := uint64(11), uint64(22), uint64(33)
	small := blobTestPayload{Key: "k", Data: []byte("x")}

	// Park the first frame inside conn.Write so everything that follows
	// lands in one pending batch.
	go func() {
		_ = w.writeRequest(1, 7, "f", "t", "k", small, CodecBinary, true)
	}()
	<-conn.blocked

	for i, gid := range []uint64{gidA, gidB, gidA, gidC, gidA} {
		if err := w.writeRequest(uint64(2+i), gid, "f", "t", "k", small, CodecBinary, false); err != nil {
			t.Fatal(err)
		}
	}
	conn.release()

	gids := waitFrames(t, conn, 6)
	want := []uint64{7, gidA, gidA, gidA, gidB, gidC}
	if fmt.Sprint(gids) != fmt.Sprint(want) {
		t.Errorf("wire order %v, want WRR order %v", gids, want)
	}
}

// TestFrameWriterGroupBacklogQuota drives one group over its per-connection
// backlog quota while the socket is stalled: the over-quota group's sends
// fail with ErrGroupBacklog (counted in its backlog_drops metric), other
// groups keep buffering, and once the backlog drains the throttled group
// is admitted again.
func TestFrameWriterGroupBacklogQuota(t *testing.T) {
	registerBlobTestPayload()
	reg := obsv.NewRegistry()
	inst := newInstruments(reg)
	inst.groups.setLabel(42, "hot")

	conn := newGateConn()
	const limit = 16 << 10
	w := newFrameWriter(conn, func() time.Duration { return 0 }, limit, &inst)
	defer w.close()

	fat := blobTestPayload{Key: "k", Data: make([]byte, 10<<10)}
	go func() {
		_ = w.writeRequest(1, 42, "f", "t", "k", fat, CodecBinary, true)
	}()
	<-conn.blocked

	// Second hot frame fits under the 16KiB quota; the third does not.
	if err := w.writeRequest(2, 42, "f", "t", "k", fat, CodecBinary, false); err != nil {
		t.Fatalf("second frame within quota rejected: %v", err)
	}
	err := w.writeRequest(3, 42, "f", "t", "k", fat, CodecBinary, false)
	if !errors.Is(err, ErrGroupBacklog) {
		t.Fatalf("over-quota send error = %v, want ErrGroupBacklog", err)
	}
	var encErr *encodeError
	if !errors.As(err, &encErr) {
		t.Errorf("quota rejection is %T, want the non-poisoning encodeError", err)
	}

	// The quiet group is not collateral damage — its sends still buffer.
	if err := w.writeRequest(4, 77, "f", "t", "k", fat, CodecBinary, false); err != nil {
		t.Fatalf("other group throttled by hot group's quota: %v", err)
	}
	// Responses are exempt: the hot group can always answer inbound work.
	if err := w.writeResponse(5, 42, "", 0, fat, CodecBinary, false); err != nil {
		t.Fatalf("response blocked by request quota: %v", err)
	}

	if got := reg.Snapshot().Counters[obsv.ForGroup(obsv.MetricGroupBacklogDrops, "hot")]; got != 1 {
		t.Errorf("hot group backlog_drops = %d, want 1", got)
	}

	// Drain the socket; the hot group's quota frees up.
	conn.release()
	waitFrames(t, conn, 4)
	deadline := time.Now().Add(5 * time.Second)
	for {
		if err = w.writeRequest(6, 42, "f", "t", "k", fat, CodecBinary, false); !errors.Is(err, ErrGroupBacklog) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("hot group still over quota after the backlog drained")
		}
		time.Sleep(time.Millisecond)
	}
	if err != nil {
		t.Fatalf("post-drain send failed: %v", err)
	}

	// Per-group accounting: the hot group's flushed bytes were credited.
	if got := reg.Snapshot().Counters[obsv.ForGroup(obsv.MetricGroupBytesSent, "hot")]; got == 0 {
		t.Error("hot group bytes_sent stayed 0 after flush")
	}
}
