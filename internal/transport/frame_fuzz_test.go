package transport

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"testing"
)

// FuzzParseFrame fuzzes the server-side frame parsing path with arbitrary
// frame bodies: header split, request parsing, and payload decoding must
// reject garbage with an error, never panic or over-read.
func FuzzParseFrame(f *testing.F) {
	benchRegisterOnce.Do(func() { registerBenchPayload() })
	// Seed with a well-formed request and response frame body.
	req, err := appendRequestBody(nil, 7, "from", "to", "kind", benchPayload{Key: "k", Value: []byte{1, 2}, Seq: 3}, CodecBinary)
	if err != nil {
		f.Fatal(err)
	}
	resp, err := appendResponseBody(nil, 7, "", benchPayload{Key: "k"}, CodecGob)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(req)
	f.Add(resp)
	f.Fuzz(func(t *testing.T, body []byte) {
		if len(body) < frameHeaderSize {
			return
		}
		frameType, callID, rest := frameHeader(body)
		switch frameType {
		case frameRequest:
			if pr, err := parseRequest(callID, rest); err == nil {
				_, _ = decodePayload(pr.payload)
			}
		case frameResponse:
			_, _, _ = parseResponse(rest)
		}
	})
}

// FuzzReadFrame fuzzes the length-prefixed stream reader: arbitrary byte
// streams must produce frames or errors, never panics or huge
// allocations.
func FuzzReadFrame(f *testing.F) {
	var stream []byte
	var lenb [4]byte
	binary.BigEndian.PutUint32(lenb[:], uint32(frameHeaderSize+3))
	stream = append(stream, lenb[:]...)
	stream = append(stream, frameRequest)
	stream = append(stream, make([]byte, 8+3)...)
	f.Add(stream)
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		br := bufio.NewReader(bytes.NewReader(data))
		var buf []byte
		for {
			body, next, err := readFrame(br, buf)
			if err != nil {
				return
			}
			buf = next
			if len(body) < frameHeaderSize {
				t.Fatalf("readFrame returned %d-byte body, below the header minimum", len(body))
			}
		}
	})
}
