package transport

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"io"
	"net"
	"testing"
	"time"
)

// FuzzParseFrame fuzzes the server-side frame parsing path with arbitrary
// frame bodies exactly as the decode loop sees them — body in a pooled
// blob, payload decoded through the blob-aware dispatcher — so garbage must
// be rejected with an error, never panic, over-read, or leak a blob
// reference.
func FuzzParseFrame(f *testing.F) {
	benchRegisterOnce.Do(func() { registerBenchPayload() })
	registerBlobTestPayload()
	// Seed with well-formed request and response frame bodies, covering the
	// gob fallback, the plain binary codec, and the blob-backed payload.
	req, err := appendRequestBody(nil, 7, 0, "from", "to", "kind", benchPayload{Key: "k", Value: []byte{1, 2}, Seq: 3}, CodecBinary)
	if err != nil {
		f.Fatal(err)
	}
	breq, err := appendRequestBody(nil, 9, 5, "from", "to", "kind", blobTestPayload{Key: "k", Data: []byte{4, 5, 6}}, CodecBinary)
	if err != nil {
		f.Fatal(err)
	}
	resp, err := appendResponseBody(nil, 7, 0, "", 0, benchPayload{Key: "k"}, CodecGob)
	if err != nil {
		f.Fatal(err)
	}
	eresp, err := appendResponseBody(nil, 8, 0, "lookup failed", 1, nil, CodecBinary)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(req)
	f.Add(breq)
	f.Add(resp)
	f.Add(eresp)
	f.Fuzz(func(t *testing.T, body []byte) {
		if len(body) < frameHeaderSize {
			return
		}
		blob := BlobFrom(body)
		bb := blob.Bytes()
		frameType, callID, gid, rest, err := frameHeader(bb)
		if err != nil {
			blob.Release()
			return
		}
		switch frameType {
		case frameRequest:
			pr, err := parseRequest(callID, gid, rest, blob)
			if err != nil {
				return // parseRequest released the blob
			}
			if decoded, err := decodePayloadOwned(pr.payload, pr.body, nil); err == nil {
				if rel, ok := decoded.(PayloadReleaser); ok {
					rel.ReleasePayload()
				}
			}
			pr.body.Release()
		case frameResponse:
			_, _, _, _ = parseResponse(rest)
			blob.Release()
		default:
			blob.Release()
		}
	})
}

// FuzzReadFrame differentially fuzzes the two stream readers: the
// scratch-buffer reader and the direct-to-blob reader must accept and
// reject exactly the same streams and yield identical frame bodies — the
// blob reader runs on a deliberately tiny bufio buffer so large bodies
// exercise its direct-read path.
func FuzzReadFrame(f *testing.F) {
	var stream []byte
	var lenb [4]byte
	binary.BigEndian.PutUint32(lenb[:], uint32(frameHeaderSize+3))
	stream = append(stream, lenb[:]...)
	stream = append(stream, frameRequest)
	stream = append(stream, make([]byte, 8+3)...)
	f.Add(stream)
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		br := bufio.NewReader(bytes.NewReader(data))
		bbr := bufio.NewReaderSize(bytes.NewReader(data), 16)
		var buf []byte
		for {
			body, next, err := readFrame(br, buf)
			blob, berr := readFrameBlob(bbr)
			if (err == nil) != (berr == nil) {
				t.Fatalf("reader disagreement: readFrame err=%v readFrameBlob err=%v", err, berr)
			}
			if err != nil {
				return
			}
			buf = next
			if len(body) < frameHeaderSize {
				t.Fatalf("readFrame returned %d-byte body, below the header minimum", len(body))
			}
			if !bytes.Equal(body, blob.Bytes()) {
				t.Fatalf("readFrameBlob body differs from readFrame body")
			}
			blob.Release()
		}
	})
}

// captureConn is a net.Conn that records everything written to it, so
// tests can inspect the exact bytes the frameWriter put on the wire.
type captureConn struct {
	bytes.Buffer
}

func (*captureConn) Read([]byte) (int, error)         { return 0, io.EOF }
func (*captureConn) Close() error                     { return nil }
func (*captureConn) LocalAddr() net.Addr              { return nil }
func (*captureConn) RemoteAddr() net.Addr             { return nil }
func (*captureConn) SetDeadline(time.Time) error      { return nil }
func (*captureConn) SetReadDeadline(time.Time) error  { return nil }
func (*captureConn) SetWriteDeadline(time.Time) error { return nil }

// FuzzScatterGatherFrame round-trips fuzzed requests through the
// scatter-gather frame writer and the blob reader: the gathered wire bytes
// must match the linear single-buffer encoding exactly, parse back to the
// original payload, and leave every blob reference balanced. Seeds include
// zero-length and writeThreshold-crossing payloads; the maxFrameSize
// boundary (too slow to fuzz) is covered by TestFrameWriterMaxFrame.
func FuzzScatterGatherFrame(f *testing.F) {
	benchRegisterOnce.Do(func() { registerBenchPayload() })
	registerBlobTestPayload()
	f.Add("k", []byte(nil), true)
	f.Add("", []byte{}, true)
	f.Add("key", []byte("hello"), false)
	f.Add("big", bytes.Repeat([]byte{0xAB}, writeThreshold+17), true)
	f.Fuzz(func(t *testing.T, key string, data []byte, viaBlob bool) {
		p := blobTestPayload{Key: key, Data: data}
		if viaBlob && len(data) > 0 {
			p.blob = BlobFrom(data)
			p.Data = p.blob.Bytes()
		}

		conn := &captureConn{}
		w := newFrameWriter(conn, func() time.Duration { return 0 }, 0, &instruments{})
		werr := w.writeRequest(42, 3, "from", "to", "kind", p, CodecBinary, true)
		w.close()
		if p.blob != nil {
			p.blob.Release()
		}
		if werr != nil {
			t.Fatalf("writeRequest: %v", werr)
		}

		// The gathered encoding must be byte-identical to the linear one.
		linear, err := appendRequestBody(nil, 42, 3, "from", "to", "kind", p, CodecBinary)
		if err != nil {
			t.Fatalf("appendRequestBody: %v", err)
		}
		wire := conn.Bytes()
		if len(wire) < 4 || int(binary.BigEndian.Uint32(wire)) != len(linear) {
			t.Fatalf("frame length prefix = %v, want %d", wire[:4], len(linear))
		}
		if !bytes.Equal(wire[4:], linear) {
			t.Fatalf("scatter-gather bytes differ from linear encoding")
		}

		// And it must read back as the payload that went in.
		blob, err := readFrameBlob(bufio.NewReader(bytes.NewReader(wire)))
		if err != nil {
			t.Fatalf("readFrameBlob: %v", err)
		}
		frameType, callID, gid, rest, err := frameHeader(blob.Bytes())
		if err != nil {
			t.Fatalf("frameHeader: %v", err)
		}
		if frameType != frameRequest || callID != 42 || gid != 3 {
			t.Fatalf("frame header = (%d, %d, %d), want (request, 42, 3)", frameType, callID, gid)
		}
		pr, err := parseRequest(callID, gid, rest, blob)
		if err != nil {
			t.Fatalf("parseRequest: %v", err)
		}
		decoded, err := decodePayloadOwned(pr.payload, pr.body, nil)
		if err != nil {
			t.Fatalf("decodePayloadOwned: %v", err)
		}
		got, ok := decoded.(blobTestPayload)
		if !ok {
			t.Fatalf("decoded %T, want blobTestPayload", decoded)
		}
		if got.Key != key || !bytes.Equal(got.Data, data) {
			t.Fatalf("round-trip mismatch: got (%q, %d bytes), want (%q, %d bytes)", got.Key, len(got.Data), key, len(data))
		}
		if got.blob != nil {
			got.ReleasePayload()
		}
		pr.body.Release()
	})
}
