package transport

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
)

// serverConn is the accept side of one peer connection: a decode loop that
// reads request frames and hands each to a pool of worker goroutines,
// bounded per connection, so one slow handler delays neither the decoding
// of the peer's next request nor the responses of faster handlers. Workers
// are spawned on demand up to the bound and then live for the connection —
// reusing a warm goroutine (and its grown stack) per request instead of
// paying goroutine startup and stack-copy cost on every call. Workers
// write responses back — out of order, keyed by call ID — through the
// connection's coalescing frameWriter: the last in-flight worker flushes
// the batch inline, earlier ones leave their frames for the flusher.
type serverConn struct {
	t        *TCP
	w        *frameWriter
	reqs     chan parsedRequest
	inflight atomic.Int32 // requests dispatched but not yet responded to
}

func (t *TCP) serveConn(conn net.Conn) {
	defer t.wg.Done()
	defer func() {
		conn.Close()
		t.mu.Lock()
		delete(t.accepted, conn)
		t.mu.Unlock()
	}()
	br := bufio.NewReaderSize(conn, 64*1024)
	if err := readPreamble(br); err != nil {
		return // wrong protocol or version; drop the peer
	}
	maxWorkers := t.serverWorkers()
	// The queue is buffered so the decode loop can hand off a burst of
	// pipelined requests without yielding to a worker between frames: the
	// whole burst is dispatched, in-flight, before the first handler runs,
	// which is what lets the last finishing worker flush all the responses
	// in one syscall. A full queue (maxWorkers executing + maxWorkers
	// queued) blocks the decode loop, which is the per-connection bound.
	s := &serverConn{t: t, w: newFrameWriter(conn, t.rpcTimeout, t.GroupBacklogLimit, &t.obs), reqs: make(chan parsedRequest, maxWorkers)}
	defer s.w.close()

	spawned := 0
	var handlers sync.WaitGroup
	defer handlers.Wait()
	defer close(s.reqs) // workers exit once the queue drains

	for {
		blob, err := readFrameBlob(br)
		if err != nil {
			return // peer closed or garbage framing
		}
		body := blob.Bytes()
		t.obs.bytesRecv.Add(uint64(len(body)) + 4)
		frameType, callID, gid, rest, err := frameHeader(body)
		if err != nil || frameType != frameRequest {
			blob.Release()
			return
		}
		req, err := parseRequest(callID, gid, rest, blob)
		if err != nil {
			// The frame boundary is intact, so only this call is
			// poisoned: answer it with an error and keep serving.
			s.respond(callID, gid, fmt.Sprintf("transport: bad request: %v", err), 0, nil, true)
			continue
		}
		n := s.inflight.Add(1)
		if spawned < maxWorkers && int(n) > spawned {
			// Outstanding requests exceed the pool: grow it, up to the
			// bound. Workers then live for the connection.
			spawned++
			handlers.Add(1)
			go s.worker(&handlers)
		}
		s.reqs <- req
	}
}

// worker serves requests until the queue closes.
func (s *serverConn) worker(wg *sync.WaitGroup) {
	defer wg.Done()
	for req := range s.reqs {
		errMsg, errCode, payload, decoded := s.handle(req)
		s.t.obs.served.Inc()
		// The last in-flight worker flushes the whole batch inline;
		// anyone still behind it leaves the frame to the flusher.
		inline := s.inflight.Add(-1) == 0
		s.respond(req.callID, req.gid, errMsg, errCode, payload, inline)
		// The response is written (its writer holds its own blob references
		// if it shares the payload), so the request's payload lifetime ends:
		// first the decoded value's reference, then the frame body itself.
		// Handlers only borrow the payload; anything they keep past return
		// is a copy, per the delivery contract.
		if pr, ok := decoded.(PayloadReleaser); ok {
			pr.ReleasePayload()
		}
		req.body.Release()
	}
}

// handle decodes one request's payload and invokes the handler, returning
// the response to write — error text plus its wire status code — and the
// decoded payload (so the worker can release a blob-backed payload after
// the response is out).
func (s *serverConn) handle(req parsedRequest) (errMsg string, errCode uint64, payload, decoded any) {
	decoded, err := decodePayloadOwned(req.payload, req.body, s.t.obs.encodes)
	if err != nil {
		return fmt.Sprintf("transport: bad payload: %v", err), 0, nil, nil
	}
	s.t.mu.Lock()
	h := s.t.local[req.gid][req.to]
	s.t.mu.Unlock()
	if h == nil {
		if req.gid != DefaultGroup {
			return fmt.Sprintf("transport: no endpoint %q in group %d here", req.to, req.gid), 0, nil, decoded
		}
		return fmt.Sprintf("transport: no endpoint %q here", req.to), 0, nil, decoded
	}
	resp, herr := h(req.from, req.kind, decoded)
	if herr != nil {
		return herr.Error(), statusCodeFor(herr), nil, decoded
	}
	return "", 0, resp, decoded
}

// respond writes one response frame, echoing the request's group label so
// the writer's per-group accounting sees both directions. An unencodable
// response payload is downgraded to an error response so the caller fails
// fast instead of timing out.
func (s *serverConn) respond(callID, gid uint64, errMsg string, errCode uint64, payload any, inline bool) {
	err := s.w.writeResponse(callID, gid, errMsg, errCode, payload, s.t.codec(), inline)
	var encErr *encodeError
	if errors.As(err, &encErr) {
		_ = s.w.writeResponse(callID, gid, fmt.Sprintf("transport: encode response: %v", encErr.Unwrap()), 0, nil, CodecBinary, inline)
	}
	// Any other error is a dead socket; the decode loop exits on its own.
}
