package transport

import (
	"sync"
	"time"

	"camcast/internal/timing"
)

// sweepTick is the deadline sweeper's timer-wheel granularity. RPC
// deadlines are hundreds of milliseconds to tens of seconds, so a 1ms
// wheel fires them effectively on time while keeping Schedule/Advance O(1).
const sweepTick = time.Millisecond

// deadlineSweeper enforces per-call RPC deadlines for every multiplexed
// connection of one TCP transport with a single goroutine and one
// hierarchical timer wheel, replacing the earlier expirer-per-connection
// design. Each connection registers at most its soonest pending deadline;
// when that fires, the connection sweeps its overdue calls and reports its
// next deadline for rearming. Cancellation is lazy: a connection that dies
// just unregisters, and any wheel entry still carrying its key fires into
// a map miss.
type deadlineSweeper struct {
	t *TCP

	mu      sync.Mutex
	wheel   *timing.Wheel
	conns   map[uint64]*muxConn
	nextID  uint64
	started bool
	stopped bool

	// kick wakes the run loop when a deadline sooner than the one it
	// sleeps toward is armed.
	kick chan struct{}
	done chan struct{}

	fired []*muxConn // scratch reused across rounds
}

func newDeadlineSweeper(t *TCP) *deadlineSweeper {
	return &deadlineSweeper{
		t:     t,
		wheel: timing.NewWheel(sweepTick, time.Now().UnixNano()),
		conns: make(map[uint64]*muxConn),
		kick:  make(chan struct{}, 1),
		done:  make(chan struct{}),
	}
}

// register assigns conn a sweeper key. The run loop starts lazily with the
// first registration, so transports that only ever serve local calls pay
// no goroutine.
func (s *deadlineSweeper) register(c *muxConn) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextID++
	id := s.nextID
	s.conns[id] = c
	if !s.started && !s.stopped {
		s.started = true
		s.t.wg.Add(1)
		go s.run()
	}
	return id
}

// unregister detaches a dead connection; its remaining wheel entries are
// left to fire into a map miss.
func (s *deadlineSweeper) unregister(id uint64) {
	s.mu.Lock()
	delete(s.conns, id)
	s.mu.Unlock()
}

// arm schedules a sweep of conn id at deadline at. Duplicate armings are
// fine — an extra firing is a cheap no-op sweep — so callers only need to
// arm when the connection's soonest deadline moves earlier.
func (s *deadlineSweeper) arm(id uint64, at time.Time) {
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		return
	}
	s.wheel.Schedule(id, at.UnixNano())
	s.mu.Unlock()
	select {
	case s.kick <- struct{}{}:
	default:
	}
}

// stop halts the run loop (if it ever started). Idempotent.
func (s *deadlineSweeper) stop() {
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		return
	}
	s.stopped = true
	s.mu.Unlock()
	close(s.done)
}

// run is the sweep loop: fire due connections, let each expire its overdue
// calls and report its next deadline, rearm, sleep toward the wheel's next
// deadline (or until kicked), repeat.
func (s *deadlineSweeper) run() {
	defer s.t.wg.Done()
	timer := time.NewTimer(sweepTick)
	if !timer.Stop() {
		<-timer.C
	}
	defer timer.Stop()
	for {
		now := time.Now()
		s.mu.Lock()
		s.fired = s.fired[:0]
		s.wheel.Advance(now.UnixNano(), func(key uint64) {
			if c, ok := s.conns[key]; ok {
				s.fired = append(s.fired, c)
			}
		})
		fired := append([]*muxConn(nil), s.fired...)
		s.mu.Unlock()

		// Expire outside the sweeper lock: completing a call wakes its
		// waiter, which may immediately issue (and arm) another call.
		for _, c := range fired {
			if next := c.expire(now); !next.IsZero() {
				s.mu.Lock()
				s.wheel.Schedule(c.sweepID, next.UnixNano())
				s.mu.Unlock()
			}
		}

		s.mu.Lock()
		next, ok := s.wheel.Next()
		s.mu.Unlock()
		var timerC <-chan time.Time
		if ok {
			d := time.Duration(next - time.Now().UnixNano())
			if d < sweepTick {
				d = sweepTick
			}
			timer.Reset(d)
			timerC = timer.C
		}
		select {
		case <-s.done:
			return
		case <-s.kick:
		case <-timerC:
			timerC = nil
		}
		if timerC != nil && !timer.Stop() {
			<-timer.C
		}
	}
}
