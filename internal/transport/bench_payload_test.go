package transport

import "encoding/gob"

// benchWireTag lives at the top of the user range so it can never collide
// with the runtime's registered wire types.
const benchWireTag byte = 0xF0

func (benchPayload) WireTag() byte { return benchWireTag }

func (p benchPayload) AppendWire(b []byte) []byte {
	b = AppendString(b, p.Key)
	b = AppendBytes(b, p.Value)
	return AppendUvarint(b, p.Seq)
}

func decodeBenchPayload(b []byte) (any, error) {
	r := NewWireReader(b)
	p := benchPayload{Key: r.String(), Value: r.Bytes(), Seq: r.Uvarint()}
	return p, r.Finish()
}

// registerBenchPayload makes benchPayload carriable over both codecs.
func registerBenchPayload() {
	gob.Register(benchPayload{})
	RegisterWireDecoder(benchWireTag, decodeBenchPayload)
}
