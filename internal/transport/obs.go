package transport

import (
	"strconv"
	"sync"

	"camcast/internal/obsv"
)

// instruments caches the registry handles a transport updates on its hot
// paths, resolved once at Instrument time. The zero value (all nil) is
// fully inert: every instrument method is nil-safe, and Call gates its
// timing work on the latency handle, so an uninstrumented transport pays
// exactly one pointer check per call — the <5% round-trip budget on the
// pipelined benchmark depends on this.
type instruments struct {
	latency  *obsv.Histogram // request/response round trip, seconds
	inflight *obsv.Gauge     // calls issued but not yet completed
	calls    *obsv.Counter   // calls issued
	errors   *obsv.Counter   // calls that returned an error
	flush    *obsv.Histogram // frames coalesced per socket flush
	served   *obsv.Counter   // requests served by accept-side workers

	bytesSent *obsv.Counter // frame bytes written to sockets (incl. length prefixes)
	bytesRecv *obsv.Counter // frame bytes read from sockets (incl. length prefixes)
	// encodes counts payload materializations: blobs built at origination or
	// on the serving side, plus per-frame fallback encodes of a blob-capable
	// payload that arrived without its blob. On the zero-copy path it grows
	// by exactly one per message per node, independent of fan-out.
	encodes *obsv.Counter

	// groups resolves per-group flow counters lazily; nil (the
	// uninstrumented zero value) disables per-group accounting entirely.
	// A pointer, unlike the flat handles above, because instruments is
	// copied by value into frame writers and the resolver carries a mutex.
	groups *groupMetrics
}

func newInstruments(reg *obsv.Registry) instruments {
	if reg == nil {
		return instruments{}
	}
	return instruments{
		latency:  reg.Histogram(obsv.MetricRPCLatency, obsv.LatencyBuckets),
		inflight: reg.Gauge(obsv.MetricRPCInflight),
		calls:    reg.Counter(obsv.MetricRPCCalls),
		errors:   reg.Counter(obsv.MetricRPCErrors),
		flush:    reg.Histogram(obsv.MetricFlushBatch, obsv.CountBuckets(32)),
		served:   reg.Counter(obsv.MetricServerServed),

		bytesSent: reg.Counter(obsv.MetricBytesSent),
		bytesRecv: reg.Counter(obsv.MetricBytesReceived),
		encodes:   reg.Counter(obsv.MetricPayloadEncodes),

		groups: &groupMetrics{
			reg:   reg,
			names: make(map[uint64]string),
			insts: make(map[uint64]*groupInstruments),
		},
	}
}

// groupMetrics resolves one groupInstruments per flow label, naming the
// counters after the group's registered label (LabelGroup) or its decimal
// flow label. All methods are nil-safe: an uninstrumented transport carries
// a nil resolver and pays one pointer check.
type groupMetrics struct {
	reg *obsv.Registry

	mu    sync.Mutex
	names map[uint64]string
	insts map[uint64]*groupInstruments
}

type groupInstruments struct {
	bytesSent *obsv.Counter // frame bytes written for this group
	drops     *obsv.Counter // requests refused by the backlog quota
}

// setLabel names gid's metrics. Dropping any already-resolved handles makes
// later increments land under the new name (counts accrued under the old
// name stay where they were).
func (g *groupMetrics) setLabel(gid uint64, name string) {
	if g == nil {
		return
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	g.names[gid] = name
	delete(g.insts, gid)
}

// get returns gid's instruments, resolving them on first use. The default
// group is deliberately unaccounted — its traffic is the transport-wide
// bytes_sent counter, and skipping it keeps single-group registries free of
// group-suffixed names.
func (g *groupMetrics) get(gid uint64) *groupInstruments {
	if g == nil || gid == DefaultGroup {
		return nil
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	gi := g.insts[gid]
	if gi == nil {
		label := g.names[gid]
		if label == "" {
			label = strconv.FormatUint(gid, 10)
		}
		gi = &groupInstruments{
			bytesSent: g.reg.Counter(obsv.ForGroup(obsv.MetricGroupBytesSent, label)),
			drops:     g.reg.Counter(obsv.ForGroup(obsv.MetricGroupBacklogDrops, label)),
		}
		g.insts[gid] = gi
	}
	return gi
}
