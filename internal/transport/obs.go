package transport

import "camcast/internal/obsv"

// instruments caches the registry handles a transport updates on its hot
// paths, resolved once at Instrument time. The zero value (all nil) is
// fully inert: every instrument method is nil-safe, and Call gates its
// timing work on the latency handle, so an uninstrumented transport pays
// exactly one pointer check per call — the <5% round-trip budget on the
// pipelined benchmark depends on this.
type instruments struct {
	latency  *obsv.Histogram // request/response round trip, seconds
	inflight *obsv.Gauge     // calls issued but not yet completed
	calls    *obsv.Counter   // calls issued
	errors   *obsv.Counter   // calls that returned an error
	flush    *obsv.Histogram // frames coalesced per socket flush
	served   *obsv.Counter   // requests served by accept-side workers

	bytesSent *obsv.Counter // frame bytes written to sockets (incl. length prefixes)
	bytesRecv *obsv.Counter // frame bytes read from sockets (incl. length prefixes)
	// encodes counts payload materializations: blobs built at origination or
	// on the serving side, plus per-frame fallback encodes of a blob-capable
	// payload that arrived without its blob. On the zero-copy path it grows
	// by exactly one per message per node, independent of fan-out.
	encodes *obsv.Counter
}

func newInstruments(reg *obsv.Registry) instruments {
	if reg == nil {
		return instruments{}
	}
	return instruments{
		latency:  reg.Histogram(obsv.MetricRPCLatency, obsv.LatencyBuckets),
		inflight: reg.Gauge(obsv.MetricRPCInflight),
		calls:    reg.Counter(obsv.MetricRPCCalls),
		errors:   reg.Counter(obsv.MetricRPCErrors),
		flush:    reg.Histogram(obsv.MetricFlushBatch, obsv.CountBuckets(32)),
		served:   reg.Counter(obsv.MetricServerServed),

		bytesSent: reg.Counter(obsv.MetricBytesSent),
		bytesRecv: reg.Counter(obsv.MetricBytesReceived),
		encodes:   reg.Counter(obsv.MetricPayloadEncodes),
	}
}
