package transport

import "time"

// FaultKind classifies one scheduled fault.
type FaultKind int

// Supported fault kinds.
const (
	// FaultCrash makes the listed endpoints unreachable (calls to and from
	// them fail, Registered reports false) until the event heals.
	FaultCrash FaultKind = iota + 1
	// FaultPartition places the listed endpoints into partition Partition
	// while the event is active; calls across partitions fail.
	FaultPartition
	// FaultDelay adds Delay to every call on the matching link (empty
	// From/To match any endpoint) while the event is active.
	FaultDelay
	// FaultLoss drops calls on the matching link (empty From/To match any
	// endpoint) with probability Rate while the event is active. Leaving
	// both selectors empty gives the original global burst loss; setting
	// only one direction of a link expresses asymmetric failures (A's
	// packets to B vanish while B still reaches A).
	FaultLoss
)

// String implements fmt.Stringer.
func (k FaultKind) String() string {
	switch k {
	case FaultCrash:
		return "crash"
	case FaultPartition:
		return "partition"
	case FaultDelay:
		return "delay"
	case FaultLoss:
		return "loss"
	default:
		return "unknown"
	}
}

// FaultEvent is one scheduled fault. Time is measured in network call
// index (the running count of Call invocations), which makes schedules
// fully deterministic: the k-th call observes exactly the faults whose
// window covers k, independent of wall-clock timing or goroutine
// interleaving.
type FaultEvent struct {
	Kind FaultKind
	// At is the call index at which the fault activates: the fault applies
	// to calls with index >= At.
	At uint64
	// Until is the call index at which the fault heals (exclusive); 0
	// means the fault never heals.
	Until uint64

	// Addrs lists the victim endpoints (FaultCrash, FaultPartition).
	Addrs []string
	// Partition is the partition id victims move to (FaultPartition).
	Partition int
	// From/To select the link (FaultDelay, FaultLoss); empty matches any
	// endpoint.
	From, To string
	// Delay is the added per-call latency (FaultDelay).
	Delay time.Duration
	// Rate is the drop probability in [0, 1] (FaultLoss).
	Rate float64
}

// active reports whether the event applies to the call with index step.
func (e FaultEvent) active(step uint64) bool {
	return step >= e.At && (e.Until == 0 || step < e.Until)
}

// FaultPlan is a deterministic schedule of faults driven by the network's
// call counter. Install with Network.SetFaultPlan; the same plan against
// the same protocol run and seed reproduces the same failures.
type FaultPlan struct {
	Events []FaultEvent
}

// CrashedAt reports whether addr is inside an active crash window at step.
func (p *FaultPlan) CrashedAt(addr string, step uint64) bool {
	if p == nil {
		return false
	}
	for _, e := range p.Events {
		if e.Kind != FaultCrash || !e.active(step) {
			continue
		}
		for _, a := range e.Addrs {
			if a == addr {
				return true
			}
		}
	}
	return false
}

// partitionAt returns the partition id an active partition event assigns to
// addr at step (0 and false when no event covers it).
func (p *FaultPlan) partitionAt(addr string, step uint64) (int, bool) {
	if p == nil {
		return 0, false
	}
	for _, e := range p.Events {
		if e.Kind != FaultPartition || !e.active(step) {
			continue
		}
		for _, a := range e.Addrs {
			if a == addr {
				return e.Partition, true
			}
		}
	}
	return 0, false
}

// lossAt returns the largest burst-loss rate active on the from->to link at
// step. Events with empty From/To keep their original meaning of global
// loss; events naming one or both endpoints apply to that link direction
// only.
func (p *FaultPlan) lossAt(from, to string, step uint64) float64 {
	if p == nil {
		return 0
	}
	rate := 0.0
	for _, e := range p.Events {
		if e.Kind != FaultLoss || !e.active(step) {
			continue
		}
		if (e.From == "" || e.From == from) && (e.To == "" || e.To == to) && e.Rate > rate {
			rate = e.Rate
		}
	}
	return rate
}

// delayAt returns the total active added delay for the from->to link at step.
func (p *FaultPlan) delayAt(from, to string, step uint64) time.Duration {
	if p == nil {
		return 0
	}
	var d time.Duration
	for _, e := range p.Events {
		if e.Kind != FaultDelay || !e.active(step) {
			continue
		}
		if (e.From == "" || e.From == from) && (e.To == "" || e.To == to) {
			d += e.Delay
		}
	}
	return d
}
