package transport

import (
	"context"
	"encoding/gob"
	"errors"
	"net"
	"strings"
	"sync"
	"testing"
	"time"
)

// echoPayload is the test payload carried over gob.
type echoPayload struct {
	Value int
}

var registerOnce sync.Once

func gobSetup() {
	registerOnce.Do(func() {
		gob.Register(echoPayload{})
	})
}

func newTCPPair(t *testing.T) (*TCP, *TCP) {
	t.Helper()
	gobSetup()
	a, err := NewTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		a.Close()
		b.Close()
	})
	return a, b
}

func TestTCPRoundTrip(t *testing.T) {
	a, b := newTCPPair(t)
	b.Register(b.Addr(), func(from, kind string, payload any) (any, error) {
		p, ok := payload.(echoPayload)
		if !ok {
			t.Errorf("payload type %T", payload)
		}
		return echoPayload{Value: p.Value + 1}, nil
	})
	resp, err := a.Call(context.Background(), "client", b.Addr(), "echo", echoPayload{Value: 41})
	if err != nil {
		t.Fatal(err)
	}
	if got := resp.(echoPayload).Value; got != 42 {
		t.Fatalf("resp = %d", got)
	}
}

func TestTCPLocalShortCircuit(t *testing.T) {
	a, _ := newTCPPair(t)
	a.Register("local-endpoint", func(from, kind string, payload any) (any, error) {
		return echoPayload{Value: 7}, nil
	})
	resp, err := a.Call(context.Background(), "me", "local-endpoint", "x", echoPayload{})
	if err != nil {
		t.Fatal(err)
	}
	if resp.(echoPayload).Value != 7 {
		t.Fatal("local call failed")
	}
}

func TestTCPHandlerError(t *testing.T) {
	a, b := newTCPPair(t)
	b.Register(b.Addr(), func(from, kind string, payload any) (any, error) {
		return nil, errors.New("boom")
	})
	_, err := a.Call(context.Background(), "client", b.Addr(), "x", echoPayload{})
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("err = %v", err)
	}
	// A handler error is not a transport failure: b stays reachable.
	if !a.Registered(b.Addr()) {
		t.Fatal("handler error should not mark the peer suspected")
	}
}

func TestTCPUnknownEndpoint(t *testing.T) {
	a, b := newTCPPair(t)
	_, err := a.Call(context.Background(), "client", b.Addr(), "x", echoPayload{}) // nothing registered at b
	if err == nil || !strings.Contains(err.Error(), "no endpoint") {
		t.Fatalf("err = %v", err)
	}
}

func TestTCPUnreachableAndSuspicion(t *testing.T) {
	gobSetup()
	a, err := NewTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	a.SuspicionWindow = 50 * time.Millisecond
	a.DialTimeout = 200 * time.Millisecond

	dead := "127.0.0.1:1" // nothing listens here
	if !a.Registered(dead) {
		t.Fatal("unknown peer should start as reachable")
	}
	if _, err := a.Call(context.Background(), "client", dead, "x", echoPayload{}); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("err = %v, want ErrUnreachable", err)
	}
	if a.Registered(dead) {
		t.Fatal("failed peer should be suspected")
	}
	time.Sleep(60 * time.Millisecond)
	if !a.Registered(dead) {
		t.Fatal("suspicion should expire")
	}
}

func TestTCPUnregister(t *testing.T) {
	a, b := newTCPPair(t)
	b.Register(b.Addr(), func(from, kind string, payload any) (any, error) {
		return echoPayload{}, nil
	})
	if _, err := a.Call(context.Background(), "c", b.Addr(), "x", echoPayload{}); err != nil {
		t.Fatal(err)
	}
	b.Unregister(b.Addr())
	if _, err := a.Call(context.Background(), "c", b.Addr(), "x", echoPayload{}); err == nil {
		t.Fatal("call to unregistered endpoint should fail")
	}
	if b.Registered(b.Addr()) {
		t.Fatal("local endpoint should report unregistered")
	}
}

func TestTCPConcurrentCalls(t *testing.T) {
	a, b := newTCPPair(t)
	var mu sync.Mutex
	got := map[int]bool{}
	b.Register(b.Addr(), func(from, kind string, payload any) (any, error) {
		p := payload.(echoPayload)
		mu.Lock()
		got[p.Value] = true
		mu.Unlock()
		return p, nil
	})
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := a.Call(context.Background(), "c", b.Addr(), "x", echoPayload{Value: i}); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	if len(got) != 32 {
		t.Fatalf("received %d/32 calls", len(got))
	}
}

func TestTCPNestedCalls(t *testing.T) {
	// b's handler synchronously calls back into a — the pattern multicast
	// forwarding produces. Distinct sockets per direction must prevent
	// deadlock.
	a, b := newTCPPair(t)
	a.Register(a.Addr(), func(from, kind string, payload any) (any, error) {
		return echoPayload{Value: 5}, nil
	})
	b.Register(b.Addr(), func(from, kind string, payload any) (any, error) {
		resp, err := b.Call(context.Background(), b.Addr(), a.Addr(), "inner", echoPayload{})
		if err != nil {
			return nil, err
		}
		return echoPayload{Value: resp.(echoPayload).Value * 2}, nil
	})
	resp, err := a.Call(context.Background(), a.Addr(), b.Addr(), "outer", echoPayload{})
	if err != nil {
		t.Fatal(err)
	}
	if resp.(echoPayload).Value != 10 {
		t.Fatalf("resp = %v", resp)
	}
}

func TestTCPCloseIdempotentAndRejects(t *testing.T) {
	gobSetup()
	a, err := NewTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatal("second close should be nil")
	}
	if _, err := a.Call(context.Background(), "c", "anywhere", "x", echoPayload{}); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
	if a.Registered("anywhere") {
		t.Fatal("closed transport should report nothing registered")
	}
}

// TestTCPHungPeerDeadline verifies the per-RPC deadline: a peer that
// accepts connections but never responds must fail the call within
// RPCTimeout instead of wedging the pooled connection forever, and the
// transport must stay usable for healthy peers afterwards.
func TestTCPHungPeerDeadline(t *testing.T) {
	a, b := newTCPPair(t)
	a.RPCTimeout = 100 * time.Millisecond
	b.Register(b.Addr(), func(from, kind string, payload any) (any, error) {
		return payload, nil
	})

	// A raw listener that accepts and then reads nothing and writes nothing.
	hung, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer hung.Close()
	go func() {
		for {
			c, err := hung.Accept()
			if err != nil {
				return
			}
			defer c.Close()
		}
	}()

	for i := 0; i < 2; i++ { // twice: the dead conn must not be pooled
		start := time.Now()
		_, err = a.Call(context.Background(), "client", hung.Addr().String(), "x", echoPayload{Value: i})
		if err == nil {
			t.Fatal("call to hung peer succeeded")
		}
		if d := time.Since(start); d > time.Second {
			t.Fatalf("call %d to hung peer took %v, want ~RPCTimeout", i, d)
		}
	}

	// The transport is not wedged: healthy peers still answer.
	resp, err := a.Call(context.Background(), "client", b.Addr(), "x", echoPayload{Value: 7})
	if err != nil {
		t.Fatal(err)
	}
	if p, ok := resp.(echoPayload); !ok || p.Value != 7 {
		t.Fatalf("resp = %#v", resp)
	}
}

// TestTCPCallerDeadlineWins verifies that a context deadline sooner than
// RPCTimeout bounds the exchange.
func TestTCPCallerDeadlineWins(t *testing.T) {
	a, _ := newTCPPair(t)
	a.RPCTimeout = 5 * time.Second

	hung, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer hung.Close()
	go func() {
		for {
			c, err := hung.Accept()
			if err != nil {
				return
			}
			defer c.Close()
		}
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 80*time.Millisecond)
	defer cancel()
	start := time.Now()
	if _, err := a.Call(ctx, "client", hung.Addr().String(), "x", echoPayload{}); err == nil {
		t.Fatal("call should have failed")
	}
	if d := time.Since(start); d > time.Second {
		t.Fatalf("caller deadline did not bound the call (took %v)", d)
	}
}
