package transport

import (
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
)

// TCP is a transport that carries the same Call/Handler contract as the
// in-memory Network across real TCP sockets, making the protocol runtime
// deployable between processes and machines. Endpoint addresses are
// "host:port" strings: the address a node registers under is the address
// its TCP listener accepts on.
//
// Framing is gob: each request is one frame {From, Kind, Payload}, each
// response one frame {Payload, Err}. Payload values are encoded as gob
// interface values, so every concrete payload type must be registered with
// encoding/gob by both sides (the runtime package does this via
// RegisterWireTypes).
//
// Outgoing connections are pooled per destination with one in-flight call
// per connection; call failures mark the destination suspected for
// SuspicionWindow so that Registered() doubles as a cheap failure detector,
// matching what the protocol layer expects from the in-memory transport.
type TCP struct {
	listenAddr string
	listener   net.Listener

	mu       sync.Mutex
	local    map[string]Handler
	conns    map[string]*tcpConn
	accepted map[net.Conn]bool
	suspects map[string]time.Time
	closed   bool

	// SuspicionWindow is how long a destination stays "not Registered"
	// after a failed call. Mutable before first use; default 2s.
	SuspicionWindow time.Duration
	// DialTimeout bounds connection establishment; default 2s.
	DialTimeout time.Duration
	// RPCTimeout bounds each request/response exchange on a pooled
	// connection (enforced as a read/write deadline on the socket), so a
	// hung or silent peer cannot wedge the connection forever. A context
	// deadline on Call tightens it further per call. Default 10s.
	RPCTimeout time.Duration

	wg sync.WaitGroup
}

type tcpConn struct {
	mu   sync.Mutex
	conn net.Conn
	enc  *gob.Encoder
	dec  *gob.Decoder
}

// tcpRequest is one framed request.
type tcpRequest struct {
	From    string
	To      string
	Kind    string
	Payload any
}

// tcpResponse is one framed response.
type tcpResponse struct {
	Payload any
	Err     string
}

// ErrClosed reports use of a closed TCP transport.
var ErrClosed = errors.New("transport: tcp transport closed")

// NewTCP starts a TCP transport listening on listenAddr (use
// "127.0.0.1:0" to pick a free port; Addr() returns the bound address).
func NewTCP(listenAddr string) (*TCP, error) {
	l, err := net.Listen("tcp", listenAddr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", listenAddr, err)
	}
	t := &TCP{
		listenAddr:      l.Addr().String(),
		listener:        l,
		local:           make(map[string]Handler),
		conns:           make(map[string]*tcpConn),
		accepted:        make(map[net.Conn]bool),
		suspects:        make(map[string]time.Time),
		SuspicionWindow: 2 * time.Second,
		DialTimeout:     2 * time.Second,
		RPCTimeout:      10 * time.Second,
	}
	t.wg.Add(1)
	go t.acceptLoop()
	return t, nil
}

// Addr returns the bound listen address; nodes hosted on this transport
// should register under this address.
func (t *TCP) Addr() string { return t.listenAddr }

// Register attaches a handler for a locally hosted endpoint.
func (t *TCP) Register(addr string, h Handler) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.local[addr] = h
}

// Unregister detaches a locally hosted endpoint.
func (t *TCP) Unregister(addr string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	delete(t.local, addr)
}

// Registered reports whether addr is believed reachable: local endpoints
// must be registered here; remote endpoints are reachable unless a call to
// them failed within SuspicionWindow.
func (t *TCP) Registered(addr string) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return false
	}
	if addr == t.listenAddr || t.local[addr] != nil {
		return t.local[addr] != nil
	}
	if at, ok := t.suspects[addr]; ok {
		if time.Since(at) < t.SuspicionWindow {
			return false
		}
		delete(t.suspects, addr)
	}
	return true
}

// Call delivers one request. Local destinations short-circuit to the
// handler; remote ones go over a pooled connection. The context bounds
// connection establishment and the request/response exchange: its deadline
// (or RPCTimeout, whichever is sooner) is set as the socket read/write
// deadline for the call, so a hung peer fails the call instead of wedging
// the pooled connection.
func (t *TCP) Call(ctx context.Context, from, to, kind string, payload any) (any, error) {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil, ErrClosed
	}
	if h, ok := t.local[to]; ok {
		t.mu.Unlock()
		return h(from, kind, payload)
	}
	t.mu.Unlock()

	resp, err := t.remoteCall(ctx, tcpRequest{From: from, To: to, Kind: kind, Payload: payload})
	if err != nil {
		t.suspect(to)
		return nil, fmt.Errorf("%s -> %s (%s): %w: %w", from, to, kind, ErrUnreachable, err)
	}
	if resp.Err != "" {
		// A handler-level error: the endpoint is alive.
		return nil, errors.New(resp.Err)
	}
	return resp.Payload, nil
}

// rpcDeadline resolves the socket deadline for one exchange: the sooner of
// the context deadline and now+RPCTimeout (zero when both are unset).
func (t *TCP) rpcDeadline(ctx context.Context) time.Time {
	var deadline time.Time
	if t.RPCTimeout > 0 {
		deadline = time.Now().Add(t.RPCTimeout)
	}
	if d, ok := ctx.Deadline(); ok && (deadline.IsZero() || d.Before(deadline)) {
		deadline = d
	}
	return deadline
}

func (t *TCP) remoteCall(ctx context.Context, req tcpRequest) (tcpResponse, error) {
	c, err := t.conn(ctx, req.To)
	if err != nil {
		return tcpResponse{}, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.conn.SetDeadline(t.rpcDeadline(ctx)); err != nil {
		t.dropConn(req.To, c)
		return tcpResponse{}, err
	}
	if err := c.enc.Encode(&req); err != nil {
		t.dropConn(req.To, c)
		return tcpResponse{}, err
	}
	var resp tcpResponse
	if err := c.dec.Decode(&resp); err != nil {
		t.dropConn(req.To, c)
		return tcpResponse{}, err
	}
	// Clear the deadline so an idle pooled connection does not expire.
	_ = c.conn.SetDeadline(time.Time{})
	return resp, nil
}

func (t *TCP) conn(ctx context.Context, to string) (*tcpConn, error) {
	t.mu.Lock()
	if c, ok := t.conns[to]; ok {
		t.mu.Unlock()
		return c, nil
	}
	dialTimeout := t.DialTimeout
	t.mu.Unlock()

	d := net.Dialer{Timeout: dialTimeout}
	nc, err := d.DialContext(ctx, "tcp", to)
	if err != nil {
		return nil, err
	}
	c := &tcpConn{conn: nc, enc: gob.NewEncoder(nc), dec: gob.NewDecoder(nc)}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		nc.Close()
		return nil, ErrClosed
	}
	if existing, ok := t.conns[to]; ok {
		nc.Close() // lost the race; reuse the existing connection
		return existing, nil
	}
	t.conns[to] = c
	return c, nil
}

func (t *TCP) dropConn(to string, c *tcpConn) {
	c.conn.Close()
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.conns[to] == c {
		delete(t.conns, to)
	}
}

func (t *TCP) suspect(addr string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.suspects[addr] = time.Now()
}

func (t *TCP) acceptLoop() {
	defer t.wg.Done()
	for {
		conn, err := t.listener.Accept()
		if err != nil {
			return // listener closed
		}
		t.mu.Lock()
		if t.closed {
			t.mu.Unlock()
			conn.Close()
			return
		}
		t.accepted[conn] = true
		t.mu.Unlock()
		t.wg.Add(1)
		go t.serveConn(conn)
	}
}

func (t *TCP) serveConn(conn net.Conn) {
	defer t.wg.Done()
	defer func() {
		conn.Close()
		t.mu.Lock()
		delete(t.accepted, conn)
		t.mu.Unlock()
	}()
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	for {
		var req tcpRequest
		if err := dec.Decode(&req); err != nil {
			return // peer closed or garbage
		}
		t.mu.Lock()
		h := t.local[req.To]
		t.mu.Unlock()

		var resp tcpResponse
		if h == nil {
			resp.Err = fmt.Sprintf("transport: no endpoint %q here", req.To)
		} else {
			payload, err := h(req.From, req.Kind, req.Payload)
			if err != nil {
				resp.Err = err.Error()
			} else {
				resp.Payload = payload
			}
		}
		if err := enc.Encode(&resp); err != nil {
			return
		}
	}
}

// Close shuts the transport down: the listener stops, pooled connections
// close, and all background goroutines exit.
func (t *TCP) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	conns := t.conns
	t.conns = make(map[string]*tcpConn)
	accepted := make([]net.Conn, 0, len(t.accepted))
	for c := range t.accepted {
		accepted = append(accepted, c)
	}
	t.mu.Unlock()

	err := t.listener.Close()
	for _, c := range conns {
		c.conn.Close()
	}
	for _, c := range accepted {
		c.Close() // unblocks the serveConn decoder
	}
	t.wg.Wait()
	return err
}
