package transport

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"camcast/internal/obsv"
)

// TCP is a transport that carries the same Call/Handler contract as the
// in-memory Network across real TCP sockets, making the protocol runtime
// deployable between processes and machines. Endpoint addresses are
// "host:port" strings: the address a node registers under is the address
// its TCP listener accepts on.
//
// Connections are multiplexed and pipelined: all calls to one destination
// share a single pooled connection, each tagged with a call ID, so N
// concurrent Calls put N RPCs in flight on one socket instead of N
// sequential round trips. Frames use a compact binary format (see frame.go)
// with a per-payload type tag; registered payload types (WireMarshaler +
// RegisterWireDecoder) are hand-marshaled, anything else falls back to gob.
// The serving side dispatches handlers to bounded worker goroutines per
// connection, so a slow handler neither delays the decoding of later
// requests nor blocks faster handlers' responses.
//
// Call failures mark the destination suspected for SuspicionWindow so that
// Registered() doubles as a cheap failure detector, matching what the
// protocol layer expects from the in-memory transport.
type TCP struct {
	listenAddr string
	listener   net.Listener

	mu       sync.Mutex
	local    map[uint64]map[string]Handler // group flow label -> addr -> handler
	conns    map[string]*muxConn
	accepted map[net.Conn]bool
	suspects map[string]time.Time
	closed   bool

	// SuspicionWindow is how long a destination stays "not Registered"
	// after a failed call. Mutable before first use; default 2s.
	SuspicionWindow time.Duration
	// DialTimeout bounds connection establishment; default 2s.
	DialTimeout time.Duration
	// RPCTimeout bounds each request/response exchange (a per-call timer —
	// the multiplexed socket carries other calls, so no socket-wide read
	// deadline is involved). A context deadline on Call tightens it
	// further per call. A timed-out call fails without tearing down the
	// shared connection. Default 10s.
	RPCTimeout time.Duration
	// Codec selects the payload encoding (CodecBinary by default; CodecGob
	// keeps the old all-gob encoding for A/B measurement). Mutable before
	// first use.
	Codec Codec
	// ServerWorkers bounds concurrently running handlers per accepted
	// connection. Mutable before first use; default 32.
	ServerWorkers int
	// GroupBacklogLimit bounds, per group and per connection, how many
	// request bytes may sit buffered and unflushed in the connection's
	// writer. Over the limit, new requests from that group fail with
	// ErrGroupBacklog (responses are exempt — dropping them would break the
	// RPC contract) until the writer drains, so one saturating group sheds
	// its own load instead of growing the shared buffer other groups flush
	// through. 0 (the default) disables the quota. Mutable before first
	// use.
	GroupBacklogLimit int

	// obs holds the metric handles installed by Instrument; the zero value
	// disables all measurement.
	obs instruments

	// sweep enforces per-call RPC deadlines for all of this transport's
	// connections with one timer-wheel goroutine (started lazily by the
	// first outbound connection).
	sweep *deadlineSweeper

	wg sync.WaitGroup
}

// ErrClosed reports use of a closed TCP transport.
var ErrClosed = errors.New("transport: tcp transport closed")

const (
	defaultServerWorkers = 32

	// suspectSweepLen is the suspects-map size beyond which an insert
	// sweeps expired entries; suspectMaxLen hard-caps the map by evicting
	// the stalest entries, so probing an unbounded stream of dead peers
	// cannot grow memory without bound.
	suspectSweepLen = 128
	suspectMaxLen   = 1024
)

// NewTCP starts a TCP transport listening on listenAddr (use
// "127.0.0.1:0" to pick a free port; Addr() returns the bound address).
func NewTCP(listenAddr string) (*TCP, error) {
	l, err := net.Listen("tcp", listenAddr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", listenAddr, err)
	}
	t := &TCP{
		listenAddr:      l.Addr().String(),
		listener:        l,
		local:           make(map[uint64]map[string]Handler),
		conns:           make(map[string]*muxConn),
		accepted:        make(map[net.Conn]bool),
		suspects:        make(map[string]time.Time),
		SuspicionWindow: 2 * time.Second,
		DialTimeout:     2 * time.Second,
		RPCTimeout:      10 * time.Second,
	}
	t.sweep = newDeadlineSweeper(t)
	t.wg.Add(1)
	go t.acceptLoop()
	return t, nil
}

// Addr returns the bound listen address; nodes hosted on this transport
// should register under this address.
func (t *TCP) Addr() string { return t.listenAddr }

// Instrument directs the transport's hot-path measurements — RPC
// round-trip latency, in-flight calls, call/error counts, flush batch
// sizes, and served requests — into reg under the obsv.Metric* names.
// Like the timeout knobs it must be set before first use; nil reverts to
// no measurement.
func (t *TCP) Instrument(reg *obsv.Registry) {
	t.obs = newInstruments(reg)
}

func (t *TCP) codec() Codec { return t.Codec }

// BlobPayloads reports whether this transport sends BlobMarshaler payloads
// zero-copy (scatter-gathered from their shared blob). The runtime checks
// this to decide whether originating a multicast should materialize a
// payload blob at all: on the in-memory transport (which passes payload
// values by reference, already copy-free) or under the gob codec, building
// one would only add a copy.
func (t *TCP) BlobPayloads() bool { return t.Codec == CodecBinary }

func (t *TCP) rpcTimeout() time.Duration { return t.RPCTimeout }

func (t *TCP) serverWorkers() int {
	if t.ServerWorkers > 0 {
		return t.ServerWorkers
	}
	return defaultServerWorkers
}

// Register attaches a handler for a locally hosted endpoint in the default
// group.
func (t *TCP) Register(addr string, h Handler) { t.RegisterGroup(DefaultGroup, addr, h) }

// Unregister detaches a locally hosted default-group endpoint.
func (t *TCP) Unregister(addr string) { t.UnregisterGroup(DefaultGroup, addr) }

// Registered reports whether addr is believed reachable in the default
// group.
func (t *TCP) Registered(addr string) bool { return t.RegisteredGroup(DefaultGroup, addr) }

// RegisterGroup attaches a handler for a locally hosted endpoint within
// group gid. The same address may host an endpoint in any number of groups;
// inbound frames carry the group label and route to the matching handler.
// The table nests (label, then address) so the per-call lookup uses the
// runtime's inlined uint64/string map fast paths instead of a generated
// struct-key hash call (see Network.RegisterGroup).
func (t *TCP) RegisterGroup(gid uint64, addr string, h Handler) {
	t.mu.Lock()
	defer t.mu.Unlock()
	eps := t.local[gid]
	if eps == nil {
		eps = make(map[string]Handler)
		t.local[gid] = eps
	}
	eps[addr] = h
}

// UnregisterGroup detaches a locally hosted endpoint within group gid.
func (t *TCP) UnregisterGroup(gid uint64, addr string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	eps := t.local[gid]
	delete(eps, addr)
	if len(eps) == 0 {
		delete(t.local, gid)
	}
}

// RegisteredGroup reports whether addr is believed reachable within group
// gid: local endpoints must be registered here under that group; remote
// endpoints are reachable unless a call to them failed within
// SuspicionWindow (suspicion is per host, not per group — the failure was a
// socket's, and all groups share it).
func (t *TCP) RegisteredGroup(gid uint64, addr string) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return false
	}
	if addr == t.listenAddr || t.local[gid][addr] != nil {
		return t.local[gid][addr] != nil
	}
	if at, ok := t.suspects[addr]; ok {
		if time.Since(at) < t.SuspicionWindow {
			return false
		}
		delete(t.suspects, addr)
	}
	return true
}

// LabelGroup names a group for this transport's per-group metrics, so
// counters read "transport.group.bytes_sent.video" rather than a raw flow
// label. Safe at any time; unlabeled groups use the decimal label.
func (t *TCP) LabelGroup(gid uint64, name string) {
	t.obs.groups.setLabel(gid, name)
}

// ConnCount returns the number of live TCP connections this transport
// holds (pooled outbound plus accepted inbound). Tests use it to assert
// that many groups share one connection per peer pair.
func (t *TCP) ConnCount() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.conns) + len(t.accepted)
}

// Call delivers one request. Local destinations short-circuit to the
// handler; remote ones go over the destination's pooled multiplexed
// connection. The context bounds connection establishment and the
// request/response exchange: its deadline (or RPCTimeout, whichever is
// sooner) arms a per-call timer, so a hung peer fails the call while other
// calls keep flowing on the shared connection.
func (t *TCP) Call(ctx context.Context, from, to, kind string, payload any) (any, error) {
	return t.CallGroup(ctx, DefaultGroup, from, to, kind, payload)
}

// CallGroup delivers one request within group gid (see Call).
func (t *TCP) CallGroup(ctx context.Context, gid uint64, from, to, kind string, payload any) (any, error) {
	if t.obs.latency == nil {
		return t.dispatch(ctx, gid, from, to, kind, payload)
	}
	t.obs.calls.Inc()
	t.obs.inflight.Add(1)
	start := time.Now()
	resp, err := t.dispatch(ctx, gid, from, to, kind, payload)
	t.obs.inflight.Add(-1)
	t.obs.latency.ObserveDuration(time.Since(start))
	if err != nil {
		t.obs.errors.Inc()
	}
	return resp, err
}

func (t *TCP) dispatch(ctx context.Context, gid uint64, from, to, kind string, payload any) (any, error) {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil, ErrClosed
	}
	if h, ok := t.local[gid][to]; ok {
		t.mu.Unlock()
		return h(from, kind, payload)
	}
	t.mu.Unlock()

	resp, err := t.remoteCall(ctx, gid, from, to, kind, payload)
	if err != nil {
		var handlerErr *handlerError
		if errors.As(err, &handlerErr) {
			// A handler-level error: the endpoint is alive. A registered
			// status code rehydrates its sentinel so errors.Is matches
			// across the wire.
			if s := statusSentinelFor(handlerErr.code); s != nil {
				return nil, &statusError{msg: handlerErr.msg, sentinel: s}
			}
			return nil, errors.New(handlerErr.msg)
		}
		if errors.Is(err, ErrGroupBacklog) {
			// A local quota rejection, not a peer failure: the call never
			// left this process, so the peer must not be marked suspect.
			return nil, err
		}
		t.suspect(to)
		return nil, fmt.Errorf("%s -> %s (%s): %w: %w", from, to, kind, ErrUnreachable, err)
	}
	return resp, nil
}

// handlerError wraps an error string the remote handler returned (plus its
// wire status code), to keep it distinct from transport-level failures
// (which trigger suspicion).
type handlerError struct {
	msg  string
	code uint64
}

func (e *handlerError) Error() string { return e.msg }

// rpcDeadline resolves the per-call deadline for one exchange: the sooner
// of the context deadline and now+RPCTimeout (zero when both are unset).
func (t *TCP) rpcDeadline(ctx context.Context) time.Time {
	var deadline time.Time
	if t.RPCTimeout > 0 {
		deadline = time.Now().Add(t.RPCTimeout)
	}
	if d, ok := ctx.Deadline(); ok && (deadline.IsZero() || d.Before(deadline)) {
		deadline = d
	}
	return deadline
}

func (t *TCP) remoteCall(ctx context.Context, gid uint64, from, to, kind string, payload any) (any, error) {
	c, err := t.conn(ctx, to)
	if err != nil {
		return nil, err
	}
	return c.roundTrip(ctx, t.rpcDeadline(ctx), gid, from, to, kind, payload)
}

// conn returns the pooled multiplexed connection to to, dialing one if
// needed.
func (t *TCP) conn(ctx context.Context, to string) (*muxConn, error) {
	t.mu.Lock()
	if c, ok := t.conns[to]; ok {
		t.mu.Unlock()
		return c, nil
	}
	dialTimeout := t.DialTimeout
	t.mu.Unlock()

	d := net.Dialer{Timeout: dialTimeout}
	nc, err := d.DialContext(ctx, "tcp", to)
	if err != nil {
		return nil, err
	}
	if err := writePreamble(nc); err != nil {
		nc.Close()
		return nil, err
	}
	c := newMuxConn(t, to, nc)
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		c.fail(ErrClosed) // also stops the conn's flusher and sweep entry
		return nil, ErrClosed
	}
	if existing, ok := t.conns[to]; ok {
		t.mu.Unlock()
		c.fail(ErrClosed) // lost the race; reuse the existing connection
		return existing, nil
	}
	t.conns[to] = c
	t.wg.Add(1)
	t.mu.Unlock()
	go c.readLoop()
	return c, nil
}

// dropConn removes c from the pool (if it is still the pooled conn for to)
// and closes its socket.
func (t *TCP) dropConn(to string, c *muxConn) {
	c.conn.Close()
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.conns[to] == c {
		delete(t.conns, to)
	}
}

// suspect records a failed call to addr. Inserts sweep expired entries once
// the map grows past suspectSweepLen and hard-cap the map at suspectMaxLen
// by evicting the stalest entries, so a long-lived node probing many dead
// peers cannot leak memory.
func (t *TCP) suspect(addr string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	now := time.Now()
	t.suspects[addr] = now
	if len(t.suspects) <= suspectSweepLen {
		return
	}
	for a, at := range t.suspects {
		if now.Sub(at) >= t.SuspicionWindow {
			delete(t.suspects, a)
		}
	}
	for len(t.suspects) > suspectMaxLen {
		var oldest string
		var oldestAt time.Time
		for a, at := range t.suspects {
			if oldest == "" || at.Before(oldestAt) {
				oldest, oldestAt = a, at
			}
		}
		delete(t.suspects, oldest)
	}
}

func (t *TCP) acceptLoop() {
	defer t.wg.Done()
	for {
		conn, err := t.listener.Accept()
		if err != nil {
			return // listener closed
		}
		t.mu.Lock()
		if t.closed {
			t.mu.Unlock()
			conn.Close()
			return
		}
		t.accepted[conn] = true
		t.mu.Unlock()
		t.wg.Add(1)
		go t.serveConn(conn)
	}
}

// Close shuts the transport down: the listener stops, pooled connections
// close (failing any in-flight calls), and all background goroutines exit.
func (t *TCP) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	conns := t.conns
	t.conns = make(map[string]*muxConn)
	accepted := make([]net.Conn, 0, len(t.accepted))
	for c := range t.accepted {
		accepted = append(accepted, c)
	}
	t.mu.Unlock()

	err := t.listener.Close()
	for _, c := range conns {
		c.fail(ErrClosed) // closes the socket and completes pending calls
	}
	for _, c := range accepted {
		c.Close() // unblocks the serveConn decoder
	}
	t.sweep.stop()
	t.wg.Wait()
	return err
}
