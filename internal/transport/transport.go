// Package transport provides the in-memory message transport the dynamic
// runtime runs on: synchronous RPC between named endpoints with injectable
// latency, message loss, node crashes, and network partitions. It stands in
// for the Internet paths between multicast group members; every behaviour a
// test wants to provoke (slow links, dropped control packets, unreachable
// nodes) is injected here rather than mocked in protocol code.
//
// Fault injection comes in two forms: imperative knobs (SetDropRate,
// SetPartition, SetLatency, Unregister) for hand-driven tests, and a
// declarative FaultPlan — a seedable schedule of crash, partition, link
// delay, and burst-loss windows keyed on the network's call counter — for
// deterministic chaos tests.
package transport

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"camcast/internal/obsv"
)

// Common transport errors, matchable with errors.Is.
var (
	// ErrUnreachable reports that the destination endpoint is not
	// registered (crashed, left, or never existed).
	ErrUnreachable = errors.New("transport: endpoint unreachable")
	// ErrDropped reports simulated message loss.
	ErrDropped = errors.New("transport: message dropped")
	// ErrPartitioned reports that the source and destination are in
	// different network partitions.
	ErrPartitioned = errors.New("transport: endpoints partitioned")
)

// Handler processes one incoming request at an endpoint and returns a
// response. Handlers are invoked from the caller's goroutine and must be
// safe for concurrent use.
type Handler func(from, kind string, payload any) (any, error)

// Network is an in-memory network of named endpoints. The zero value is not
// usable; construct with NewNetwork.
type Network struct {
	mu        sync.RWMutex
	endpoints map[uint64]map[string]Handler // group flow label -> addr -> handler
	latency   func(from, to string) time.Duration
	dropRate  float64
	partition map[string]int // endpoint -> partition id; missing means 0
	linkLoss  map[link]float64
	linkDelay map[link]time.Duration
	plan      *FaultPlan
	rng       *rand.Rand
	calls     uint64
	drops     uint64

	// obs holds the metric handles installed by Instrument; the zero value
	// disables all measurement. Like the TCP transport's knobs it is set
	// before first use, so Call reads it without the lock.
	obs instruments
}

// NewNetwork creates an empty network. seed drives loss simulation.
func NewNetwork(seed int64) *Network {
	return &Network{
		endpoints: make(map[uint64]map[string]Handler),
		partition: make(map[string]int),
		rng:       rand.New(rand.NewSource(seed)),
	}
}

// Instrument directs the network's call measurements — round-trip
// latency, in-flight calls, call/error counts — into reg under the
// obsv.Metric* names. Set before first use; nil reverts to no measurement.
func (n *Network) Instrument(reg *obsv.Registry) {
	n.obs = newInstruments(reg)
}

// LabelGroup records a human-readable name for a group's flow label,
// used in the per-group metric names. The in-process network has no
// frame writer, so only the shared group registry is updated; it is
// here so both transports offer the same group surface.
func (n *Network) LabelGroup(gid uint64, name string) { n.obs.groups.setLabel(gid, name) }

// Register attaches a handler at addr in the default group, replacing any
// previous registration.
func (n *Network) Register(addr string, h Handler) { n.RegisterGroup(DefaultGroup, addr, h) }

// Unregister removes the default-group endpoint, making it unreachable (a
// crash or departure as seen by the rest of the network).
func (n *Network) Unregister(addr string) { n.UnregisterGroup(DefaultGroup, addr) }

// Registered reports whether addr currently has a default-group handler and
// is not inside an active FaultPlan crash window.
func (n *Network) Registered(addr string) bool { return n.RegisteredGroup(DefaultGroup, addr) }

// RegisterGroup attaches a handler at addr within group gid. The same
// address may host endpoints in any number of groups. The table is nested
// (label, then address) rather than struct-keyed so the per-call lookup
// stays on the runtime's inlined uint64/string map fast paths — a
// struct-keyed map calls out to a generated hash func, and that extra
// frame is what repeatedly grew the short-lived fan-out goroutines' stacks.
func (n *Network) RegisterGroup(gid uint64, addr string, h Handler) {
	n.mu.Lock()
	defer n.mu.Unlock()
	eps := n.endpoints[gid]
	if eps == nil {
		eps = make(map[string]Handler)
		n.endpoints[gid] = eps
	}
	eps[addr] = h
}

// UnregisterGroup removes addr's endpoint within group gid.
func (n *Network) UnregisterGroup(gid uint64, addr string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	eps := n.endpoints[gid]
	delete(eps, addr)
	if len(eps) == 0 {
		delete(n.endpoints, gid)
	}
}

// RegisteredGroup reports whether addr has a handler within group gid and
// is not inside an active FaultPlan crash window (fault injection is
// host-level: a crash window for an address hits it in every group).
func (n *Network) RegisteredGroup(gid uint64, addr string) bool {
	n.mu.RLock()
	defer n.mu.RUnlock()
	if n.plan.CrashedAt(addr, n.calls) {
		return false
	}
	_, ok := n.endpoints[gid][addr]
	return ok
}

// SetLatency installs a per-link latency function; nil disables latency
// simulation. The function must be safe for concurrent use.
func (n *Network) SetLatency(f func(from, to string) time.Duration) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.latency = f
}

// SetDropRate makes every call fail with ErrDropped with probability rate
// (clamped to [0, 1]).
func (n *Network) SetDropRate(rate float64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if rate < 0 {
		rate = 0
	}
	if rate > 1 {
		rate = 1
	}
	n.dropRate = rate
}

// SetPartition places addr into the given partition. Calls between
// different partitions fail with ErrPartitioned. All endpoints start in
// partition 0.
func (n *Network) SetPartition(addr string, partition int) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if partition == 0 {
		delete(n.partition, addr)
		return
	}
	n.partition[addr] = partition
}

// HealPartitions returns every endpoint to partition 0 (FaultPlan partition
// windows, which are keyed on the call counter, are unaffected).
func (n *Network) HealPartitions() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.partition = make(map[string]int)
}

// link selects one direction of traffic between endpoints; an empty side is
// a wildcard.
type link struct{ from, to string }

// linkMatch returns the largest value among the entries of m matching the
// from->to direction, considering exact and wildcard selectors.
func linkMatch[T interface{ float64 | time.Duration }](m map[link]T, from, to string) T {
	var best T
	if len(m) == 0 {
		return best
	}
	for _, k := range [4]link{{from, to}, {from, ""}, {"", to}, {"", ""}} {
		if v, ok := m[k]; ok && v > best {
			best = v
		}
	}
	return best
}

// SetLinkLoss makes calls on the from->to direction fail with ErrDropped
// with probability rate (clamped to [0, 1]); an empty from or to matches
// any endpoint, and rate 0 removes the entry. Unlike SetDropRate this is
// per-link, so asymmetric failures (A cannot reach B while B still reaches
// A) are expressible. The churn simulator's fault plans drive this knob.
func (n *Network) SetLinkLoss(from, to string, rate float64) {
	if rate < 0 {
		rate = 0
	}
	if rate > 1 {
		rate = 1
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if rate == 0 {
		delete(n.linkLoss, link{from, to})
		return
	}
	if n.linkLoss == nil {
		n.linkLoss = make(map[link]float64)
	}
	n.linkLoss[link{from, to}] = rate
}

// SetLinkDelay adds d of latency to every call on the from->to direction;
// an empty from or to matches any endpoint, and d <= 0 removes the entry.
// Slow-receiver scenarios use a to-selector to make one member's inbound
// links crawl without touching the rest of the group.
func (n *Network) SetLinkDelay(from, to string, d time.Duration) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if d <= 0 {
		delete(n.linkDelay, link{from, to})
		return
	}
	if n.linkDelay == nil {
		n.linkDelay = make(map[link]time.Duration)
	}
	n.linkDelay[link{from, to}] = d
}

// ClearLinkFaults removes every per-link loss and delay installed with
// SetLinkLoss/SetLinkDelay.
func (n *Network) ClearLinkFaults() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.linkLoss = nil
	n.linkDelay = nil
}

// SetFaultPlan installs a deterministic fault schedule; nil removes it.
// The plan's windows are evaluated against the network's call counter (see
// Calls), so installing the same plan at the same point of a deterministic
// protocol run reproduces exactly the same failures.
func (n *Network) SetFaultPlan(p *FaultPlan) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.plan = p
}

// Stats returns the total number of calls attempted and dropped so far.
func (n *Network) Stats() (calls, drops uint64) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.calls, n.drops
}

// Calls returns the current call counter, the time base of FaultPlan
// windows: the next Call observes index Calls().
func (n *Network) Calls() uint64 {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.calls
}

// effectivePartition returns addr's partition id at call index step,
// preferring an active plan window over the imperative assignment.
func (n *Network) effectivePartition(addr string, step uint64) int {
	if p, ok := n.plan.partitionAt(addr, step); ok {
		return p
	}
	return n.partition[addr]
}

// Call delivers one request from -> to and returns the handler's response.
// It applies, in order: crash windows, partition checks, loss simulation,
// latency, and endpoint resolution. The handler runs in the caller's
// goroutine. A context deadline bounds the simulated network time (latency
// and injected link delay); it does not interrupt a handler that has
// already been reached, mirroring a real network where a timed-out request
// may still have been processed remotely.
func (n *Network) Call(ctx context.Context, from, to, kind string, payload any) (any, error) {
	return n.CallGroup(ctx, DefaultGroup, from, to, kind, payload)
}

// CallGroup delivers one request within group gid (see Call). Fault
// injection — crash windows, partitions, loss, latency — applies by
// address, regardless of group: the simulated failure is the host's or the
// link's, and every group sharing it fails together.
func (n *Network) CallGroup(ctx context.Context, gid uint64, from, to, kind string, payload any) (any, error) {
	if n.obs.latency == nil {
		return n.dispatch(ctx, gid, from, to, kind, payload)
	}
	n.obs.calls.Inc()
	n.obs.inflight.Add(1)
	start := time.Now()
	resp, err := n.dispatch(ctx, gid, from, to, kind, payload)
	n.obs.inflight.Add(-1)
	n.obs.latency.ObserveDuration(time.Since(start))
	if err != nil {
		n.obs.errors.Inc()
	}
	return resp, err
}

func (n *Network) dispatch(ctx context.Context, gid uint64, from, to, kind string, payload any) (any, error) {
	n.mu.Lock()
	step := n.calls
	n.calls++
	if n.plan.CrashedAt(to, step) || n.plan.CrashedAt(from, step) {
		n.mu.Unlock()
		return nil, fmt.Errorf("%s -> %s: crashed: %w", from, to, ErrUnreachable)
	}
	if n.effectivePartition(from, step) != n.effectivePartition(to, step) {
		n.mu.Unlock()
		return nil, fmt.Errorf("%s -> %s: %w", from, to, ErrPartitioned)
	}
	drop := n.dropRate
	if r := n.plan.lossAt(from, to, step); r > drop {
		drop = r
	}
	if r := linkMatch(n.linkLoss, from, to); r > drop {
		drop = r
	}
	if drop > 0 && n.rng.Float64() < drop {
		n.drops++
		n.mu.Unlock()
		return nil, fmt.Errorf("%s -> %s (%s): %w", from, to, kind, ErrDropped)
	}
	h, ok := n.endpoints[gid][to]
	latency := n.latency
	delay := n.plan.delayAt(from, to, step) + linkMatch(n.linkDelay, from, to)
	n.mu.Unlock()

	if !ok {
		return nil, fmt.Errorf("%s -> %s: %w", from, to, ErrUnreachable)
	}
	if latency != nil {
		delay += latency(from, to)
	}
	if delay > 0 {
		if err := sleepCtx(ctx, delay); err != nil {
			return nil, fmt.Errorf("%s -> %s (%s): %w", from, to, kind, err)
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("%s -> %s (%s): %w", from, to, kind, err)
	}
	return h(from, kind, payload)
}

// sleepCtx sleeps for d or until ctx is done, whichever comes first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if ctx.Done() == nil {
		time.Sleep(d)
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
