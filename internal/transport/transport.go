// Package transport provides the in-memory message transport the dynamic
// runtime runs on: synchronous RPC between named endpoints with injectable
// latency, message loss, node crashes, and network partitions. It stands in
// for the Internet paths between multicast group members; every behaviour a
// test wants to provoke (slow links, dropped control packets, unreachable
// nodes) is injected here rather than mocked in protocol code.
package transport

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// Common transport errors, matchable with errors.Is.
var (
	// ErrUnreachable reports that the destination endpoint is not
	// registered (crashed, left, or never existed).
	ErrUnreachable = errors.New("transport: endpoint unreachable")
	// ErrDropped reports simulated message loss.
	ErrDropped = errors.New("transport: message dropped")
	// ErrPartitioned reports that the source and destination are in
	// different network partitions.
	ErrPartitioned = errors.New("transport: endpoints partitioned")
)

// Handler processes one incoming request at an endpoint and returns a
// response. Handlers are invoked from the caller's goroutine and must be
// safe for concurrent use.
type Handler func(from, kind string, payload any) (any, error)

// Network is an in-memory network of named endpoints. The zero value is not
// usable; construct with NewNetwork.
type Network struct {
	mu        sync.RWMutex
	endpoints map[string]Handler
	latency   func(from, to string) time.Duration
	dropRate  float64
	partition map[string]int // endpoint -> partition id; missing means 0
	rng       *rand.Rand
	calls     uint64
	drops     uint64
}

// NewNetwork creates an empty network. seed drives loss simulation.
func NewNetwork(seed int64) *Network {
	return &Network{
		endpoints: make(map[string]Handler),
		partition: make(map[string]int),
		rng:       rand.New(rand.NewSource(seed)),
	}
}

// Register attaches a handler at addr, replacing any previous registration.
func (n *Network) Register(addr string, h Handler) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.endpoints[addr] = h
}

// Unregister removes the endpoint, making it unreachable (a crash or
// departure as seen by the rest of the network).
func (n *Network) Unregister(addr string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.endpoints, addr)
}

// Registered reports whether addr currently has a handler.
func (n *Network) Registered(addr string) bool {
	n.mu.RLock()
	defer n.mu.RUnlock()
	_, ok := n.endpoints[addr]
	return ok
}

// SetLatency installs a per-link latency function; nil disables latency
// simulation. The function must be safe for concurrent use.
func (n *Network) SetLatency(f func(from, to string) time.Duration) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.latency = f
}

// SetDropRate makes every call fail with ErrDropped with probability rate
// (clamped to [0, 1]).
func (n *Network) SetDropRate(rate float64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if rate < 0 {
		rate = 0
	}
	if rate > 1 {
		rate = 1
	}
	n.dropRate = rate
}

// SetPartition places addr into the given partition. Calls between
// different partitions fail with ErrPartitioned. All endpoints start in
// partition 0.
func (n *Network) SetPartition(addr string, partition int) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if partition == 0 {
		delete(n.partition, addr)
		return
	}
	n.partition[addr] = partition
}

// HealPartitions returns every endpoint to partition 0.
func (n *Network) HealPartitions() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.partition = make(map[string]int)
}

// Stats returns the total number of calls attempted and dropped so far.
func (n *Network) Stats() (calls, drops uint64) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.calls, n.drops
}

// Call delivers one request from -> to and returns the handler's response.
// It applies, in order: partition checks, loss simulation, latency, and
// endpoint resolution. The handler runs in the caller's goroutine.
func (n *Network) Call(from, to, kind string, payload any) (any, error) {
	n.mu.Lock()
	n.calls++
	if n.partition[from] != n.partition[to] {
		n.mu.Unlock()
		return nil, fmt.Errorf("%s -> %s: %w", from, to, ErrPartitioned)
	}
	if n.dropRate > 0 && n.rng.Float64() < n.dropRate {
		n.drops++
		n.mu.Unlock()
		return nil, fmt.Errorf("%s -> %s (%s): %w", from, to, kind, ErrDropped)
	}
	h, ok := n.endpoints[to]
	latency := n.latency
	n.mu.Unlock()

	if !ok {
		return nil, fmt.Errorf("%s -> %s: %w", from, to, ErrUnreachable)
	}
	if latency != nil {
		if d := latency(from, to); d > 0 {
			time.Sleep(d)
		}
	}
	return h(from, kind, payload)
}
