// Package churnsim evaluates the dynamic runtime under membership churn:
// members join, leave and crash according to a workload schedule while
// probe multicasts measure delivery. This is the dynamic counterpart of the
// paper's static evaluation and exercises its closing claim (Section 7):
// "CAM-Chord works better with relatively small frequency of membership
// change ... CAM-Koorde works better with relatively large frequency of
// membership change and large node capacities."
//
// Churn speed is modeled by the maintenance budget: the number of
// stabilize/fix rounds the protocol is granted between consecutive
// membership events. A small budget means members come and go faster than
// the overlay can repair — fast churn; a large budget is slow churn.
package churnsim

import (
	"fmt"
	"io"
	"math/rand"
	"sort"
	"sync"
	"time"

	"camcast/internal/obsv"
	"camcast/internal/replay"
	"camcast/internal/ring"
	"camcast/internal/runtime"
	"camcast/internal/transport"
	"camcast/internal/workload"
)

// Config parameterizes one churn run.
type Config struct {
	Mode       runtime.Mode
	Initial    int     // members alive before churn starts
	Events     int     // membership events to apply
	JoinFrac   float64 // fraction of events that are joins
	FailFrac   float64 // fraction of departures that are crashes (vs graceful leaves)
	CapacityLo int     // member capacities drawn uniformly from [lo, hi]
	CapacityHi int
	Bits       uint // identifier space width
	Seed       int64

	// MaintenanceBudget is the number of (stabilize + fix) rounds granted
	// to every live member between consecutive membership events. 0 means
	// the overlay never repairs during churn — the fastest possible churn.
	MaintenanceBudget int
	// BulkInitial builds the initial membership with runtime.BulkInstall
	// (sorted-array ring construction plus one verification round) instead
	// of incremental joins with per-join maintenance. Recorded as a single
	// bulk-join log record; churn events always use the incremental paths.
	BulkInitial bool
	// ProbeEvery sends a probe multicast from a random live member every
	// this many events (and once at the end). Default 10.
	ProbeEvery int

	// Transport selects how members talk: "mem" (default) runs every
	// member on one in-process simulated network; "tcp" gives each member
	// its own real loopback TCP listener, exercising the multiplexed
	// transport (connection pooling, pipelining, failure suspicion) under
	// churn.
	Transport string
	// Codec selects the TCP wire encoding ("binary" default, "gob" for
	// the fallback path); ignored for the mem transport.
	Codec string

	// Bus and Metrics, when set, instrument every member the simulation
	// creates (and its transports): protocol events flow to Bus, hot-path
	// quantities accumulate in Metrics. camchurn's -debug-addr serves
	// both live while the sweep runs.
	Bus     *obsv.Bus
	Metrics *obsv.Registry

	// Schedule, when non-nil, replaces the generated workload schedule:
	// Events/JoinFrac/FailFrac are ignored and the given events run
	// verbatim. Scenario scripts (internal/scenario) compose schedules
	// this way; sweeps leave it nil.
	Schedule []workload.Event
	// Faults optionally schedules composite failures — correlated
	// crashes, lossy or slow links, partitions — against the run, keyed
	// on the event-step clock. Link and partition faults require the mem
	// transport.
	Faults *FaultPlan
	// Record, when set, receives the run's full input schedule as a
	// versioned NDJSON replay log (see internal/replay): every join,
	// leave, crash, maintenance round, probe submission, and applied
	// fault action, plus the seeds needed to re-create the cluster.
	Record io.Writer
	// Label names the run in the replay log header (typically the
	// scenario name).
	Label string
}

func (c *Config) applyDefaults() {
	if c.ProbeEvery == 0 {
		c.ProbeEvery = 10
	}
	if c.Bits == 0 {
		c.Bits = 20
	}
}

func (c *Config) validate() error {
	if c.Initial < 2 {
		return fmt.Errorf("churnsim: need at least 2 initial members, got %d", c.Initial)
	}
	if c.Events < 0 {
		return fmt.Errorf("churnsim: negative event count %d", c.Events)
	}
	minCap := 2
	if c.Mode == runtime.ModeCAMKoorde {
		minCap = 4
	}
	if c.CapacityLo < minCap || c.CapacityHi < c.CapacityLo {
		return fmt.Errorf("churnsim: capacity range [%d,%d] invalid for %v", c.CapacityLo, c.CapacityHi, c.Mode)
	}
	if c.MaintenanceBudget < 0 {
		return fmt.Errorf("churnsim: negative maintenance budget")
	}
	switch c.Transport {
	case "", "mem", "tcp":
	default:
		return fmt.Errorf("churnsim: unknown transport %q (want mem or tcp)", c.Transport)
	}
	if c.Codec != "" && c.Transport != "tcp" {
		return fmt.Errorf("churnsim: codec %q requires the tcp transport", c.Codec)
	}
	if err := c.Faults.validate(c.Transport); err != nil {
		return err
	}
	return nil
}

// Result summarizes one churn run.
type Result struct {
	Events   int
	Probes   int
	Joins    int
	Leaves   int
	Crashes  int
	FinalLiv int // live members at the end

	// DeliveryRatios holds, per probe, delivered/live (1.0 = every live
	// member got the probe).
	DeliveryRatios []float64
	MeanDelivery   float64
	MinDelivery    float64

	// RingCorrect is the fraction of live members whose successor pointer
	// was exactly right at the end of the run (after the trailing probe,
	// before any extra repair).
	RingCorrect float64

	// Aggregated protocol counters across all members that ever lived.
	Duplicates  uint64
	TableFaults uint64
	Forwarded   uint64

	// Forwarding-outcome accounting aggregated the same way: how much of
	// the delivery ratio was earned by the retry/repair engine, and how
	// much was genuinely abandoned.
	Retries          uint64
	SegmentsRepaired uint64
	SegmentsLost     uint64
}

// collector tallies deliveries per message across the whole group.
type collector struct {
	mu  sync.Mutex
	got map[string]int
}

func (c *collector) add(msgID string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.got[msgID]++
}

func (c *collector) count(msgID string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.got[msgID]
}

// Run executes one churn simulation.
func Run(cfg Config) (Result, error) {
	cfg.applyDefaults()
	if err := cfg.validate(); err != nil {
		return Result{}, err
	}

	schedule := cfg.Schedule
	if schedule == nil {
		var err error
		schedule, err = workload.Schedule(workload.ChurnConfig{
			Seed:     cfg.Seed,
			Events:   cfg.Events,
			JoinFrac: cfg.JoinFrac,
			FailFrac: cfg.FailFrac,
			Initial:  cfg.Initial,
		})
		if err != nil {
			return Result{}, err
		}
	}

	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	useTCP := cfg.Transport == "tcp"
	var codec transport.Codec
	if useTCP {
		var err error
		if codec, err = transport.ParseCodec(cfg.Codec); err != nil {
			return Result{}, err
		}
		runtime.RegisterWireTypes()
	}
	var net *transport.Network
	if !useTCP {
		net = transport.NewNetwork(cfg.Seed + 2)
		if cfg.Metrics != nil {
			net.Instrument(cfg.Metrics)
		}
	}
	// The recorder mirrors every input the run consumes into a replay log.
	// A nil *replay.Recorder discards, so the run threads it everywhere
	// unconditionally. NetSeed must match the mem network seed above for
	// the replayed loss schedule to be the recorded one.
	var rec *replay.Recorder
	if cfg.Record != nil {
		rec = replay.NewRecorder(cfg.Record, replay.Header{
			Mode:     cfg.Mode.String(),
			Bits:     cfg.Bits,
			NetSeed:  cfg.Seed + 2,
			Scenario: cfg.Label,
			Seed:     cfg.Seed,
		})
	}
	space, err := ring.NewSpace(cfg.Bits)
	if err != nil {
		return Result{}, err
	}
	col := &collector{got: make(map[string]int)}

	var (
		res   Result
		alive = make(map[int]*runtime.Node)
		all   []*runtime.Node
		// tcps maps member index to its private TCP transport (tcp mode):
		// crashing or leaving a member also tears its listener down, the
		// way a dying process would.
		tcps = make(map[int]*transport.TCP)
	)
	defer func() {
		for _, n := range alive {
			n.Stop()
		}
		for _, tr := range tcps {
			tr.Close()
		}
	}()

	// newNode creates member idx. capOverride > 0 pins the capacity
	// (scenario capacity flaps); otherwise it is drawn from the configured
	// range. The chosen capacity is returned for the replay log.
	newNode := func(idx, capOverride int) (*runtime.Node, int, error) {
		capacity := capOverride
		if capacity <= 0 {
			capacity = cfg.CapacityLo + rng.Intn(cfg.CapacityHi-cfg.CapacityLo+1)
		}
		rcfg := runtime.Config{
			Space:     space,
			Mode:      cfg.Mode,
			Capacity:  capacity,
			OnDeliver: func(d runtime.Delivery) { col.add(d.MsgID) },
			Bus:       cfg.Bus,
			Metrics:   cfg.Metrics,
		}
		if !useTCP {
			node, err := runtime.NewNode(net, fmt.Sprintf("member-%d", idx), rcfg)
			if err != nil {
				return nil, 0, err
			}
			all = append(all, node)
			return node, capacity, nil
		}
		tr, err := transport.NewTCP("127.0.0.1:0")
		if err != nil {
			return nil, 0, err
		}
		// Loopback sockets between live processes fail fast; tighten the
		// failure detector so crashed members are routed around within a
		// few maintenance rounds instead of the 2s wide-area default.
		tr.Codec = codec
		tr.SuspicionWindow = 250 * time.Millisecond
		tr.DialTimeout = 500 * time.Millisecond
		tr.RPCTimeout = time.Second
		if cfg.Metrics != nil {
			tr.Instrument(cfg.Metrics)
		}
		node, err := runtime.NewNode(tr, tr.Addr(), rcfg)
		if err != nil {
			tr.Close()
			return nil, 0, err
		}
		tcps[idx] = tr
		all = append(all, node)
		return node, capacity, nil
	}

	dropTransport := func(idx int) {
		if tr, ok := tcps[idx]; ok {
			tr.Close()
			delete(tcps, idx)
		}
	}

	liveIdxs := func() []int {
		idxs := make([]int, 0, len(alive))
		for i := range alive {
			idxs = append(idxs, i)
		}
		sort.Ints(idxs)
		return idxs
	}
	liveNodes := func() []*runtime.Node {
		idxs := liveIdxs()
		out := make([]*runtime.Node, 0, len(idxs))
		for _, i := range idxs {
			out = append(out, alive[i])
		}
		return out
	}

	maintain := func(rounds int) {
		for r := 0; r < rounds; r++ {
			for _, n := range liveNodes() {
				n.StabilizeOnce()
			}
			for _, n := range liveNodes() {
				n.FixOnce()
			}
		}
	}

	probe := func() error {
		idxs := liveIdxs()
		if len(idxs) == 0 {
			return fmt.Errorf("churnsim: no live members left to probe (fault plan crashed everyone?)")
		}
		srcIdx := idxs[rng.Intn(len(idxs))]
		rec.Multicast(srcIdx, []byte("probe"))
		msgID, err := alive[srcIdx].Multicast([]byte("probe"))
		if err != nil {
			return err
		}
		ratio := float64(col.count(msgID)) / float64(len(idxs))
		if ratio > 1 {
			ratio = 1 // defensive; duplicate suppression should prevent this
		}
		res.DeliveryRatios = append(res.DeliveryRatios, ratio)
		res.Probes++
		return nil
	}

	// Bootstrap the initial membership fully converged.
	if cfg.BulkInitial {
		// Assisted construction: every initial member exists up front, so
		// the ring is installed from the sorted identifier array in one
		// step and verified with a single full maintenance round. Serial
		// install order keeps the trace (and any recorded log) replayable.
		members := make([]*runtime.Node, 0, cfg.Initial)
		idxs := make([]int, 0, cfg.Initial)
		caps := make([]int, 0, cfg.Initial)
		for i := 0; i < cfg.Initial; i++ {
			n, capi, err := newNode(i, 0)
			if err != nil {
				return Result{}, err
			}
			members = append(members, n)
			idxs = append(idxs, i)
			caps = append(caps, capi)
		}
		if err := runtime.BulkInstall(members, runtime.BulkOptions{Parallelism: 1}); err != nil {
			return Result{}, fmt.Errorf("churnsim: bulk initial membership: %w", err)
		}
		for i, n := range members {
			alive[idxs[i]] = n
		}
		rec.BulkJoin(idxs, caps)
		for _, n := range liveNodes() {
			n.StabilizeOnce()
		}
		for _, n := range liveNodes() {
			n.FixAll()
		}
		rec.Maintain(1, true)
	} else {
		first, cap0, err := newNode(0, 0)
		if err != nil {
			return Result{}, err
		}
		if err := first.Bootstrap(); err != nil {
			return Result{}, err
		}
		rec.Bootstrap(0, cap0)
		alive[0] = first
		for i := 1; i < cfg.Initial; i++ {
			n, capi, err := newNode(i, 0)
			if err != nil {
				return Result{}, err
			}
			if err := n.Join(first.Self().Addr); err != nil {
				return Result{}, fmt.Errorf("churnsim: initial join %d: %w", i, err)
			}
			rec.Join(i, 0, capi)
			alive[i] = n
			maintain(1)
			rec.Maintain(1, false)
		}
		for r := 0; r < 3; r++ {
			for _, n := range liveNodes() {
				n.StabilizeOnce()
			}
			for _, n := range liveNodes() {
				n.FixAll()
			}
		}
		rec.Maintain(3, true)
	}

	// syncFaults brings the network's imperative fault knobs in line with
	// the fault plan at an event-step boundary. Group crashes fire once as
	// their window opens; continuous faults (link loss/delay, partitions)
	// are cleared and re-applied whenever the set of open windows changes.
	// Every applied action is mirrored into the replay log as the plain
	// imperative record it caused, so replay needs no notion of a plan.
	memberAddr := func(i int) string {
		if i < 0 {
			return "" // wildcard link selector
		}
		return fmt.Sprintf("member-%d", i)
	}
	prevFaultKey := ""
	syncFaults := func(step int) {
		if cfg.Faults == nil {
			return
		}
		for _, e := range cfg.Faults.Events {
			if e.Kind != FaultGroupCrash || e.At != step {
				continue
			}
			victims := make([]int, 0, len(e.Members))
			for _, idx := range e.Members {
				if n, ok := alive[idx]; ok {
					n.Stop()
					dropTransport(idx)
					delete(alive, idx)
					res.Crashes++
					victims = append(victims, idx)
				}
			}
			rec.CrashGroup(victims)
		}
		if !cfg.Faults.hasContinuous() {
			return
		}
		key := ""
		for i, e := range cfg.Faults.Events {
			if e.Kind != FaultGroupCrash && e.active(step) {
				key += fmt.Sprintf("%d,", i)
			}
		}
		if key == prevFaultKey {
			return
		}
		prevFaultKey = key
		net.ClearLinkFaults()
		net.HealPartitions()
		rec.HealLinks()
		rec.HealPartitions()
		for _, e := range cfg.Faults.Events {
			if e.Kind == FaultGroupCrash || !e.active(step) {
				continue
			}
			switch e.Kind {
			case FaultLinkLoss:
				net.SetLinkLoss(memberAddr(e.From), memberAddr(e.To), e.Rate)
				rec.LinkLoss(e.From, e.To, e.Rate)
			case FaultLinkDelay:
				net.SetLinkDelay(memberAddr(e.From), memberAddr(e.To), e.Delay)
				rec.LinkDelay(e.From, e.To, e.Delay)
			case FaultPartition:
				for _, m := range e.Members {
					net.SetPartition(memberAddr(m), e.Partition)
					rec.Partition(m, e.Partition)
				}
			}
		}
	}

	// Apply the churn schedule.
	for evIdx, ev := range schedule {
		syncFaults(evIdx)
		switch ev.Kind {
		case workload.EventJoin:
			n, capi, err := newNode(ev.Index, ev.Capacity)
			if err != nil {
				return Result{}, err
			}
			// Join through any live member.
			idxs := liveIdxs()
			viaIdx := idxs[rng.Intn(len(idxs))]
			if err := n.Join(alive[viaIdx].Self().Addr); err != nil {
				// Bootstrap member unreachable mid-churn is a legitimate
				// outcome; retry once through another member.
				viaIdx = idxs[rng.Intn(len(idxs))]
				if err := n.Join(alive[viaIdx].Self().Addr); err != nil {
					return Result{}, fmt.Errorf("churnsim: join of %d failed twice: %w", ev.Index, err)
				}
			}
			rec.Join(ev.Index, viaIdx, capi)
			alive[ev.Index] = n
			res.Joins++
		case workload.EventLeave:
			if n, ok := alive[ev.Index]; ok {
				_ = n.Leave()
				dropTransport(ev.Index)
				delete(alive, ev.Index)
				rec.Leave(ev.Index)
				res.Leaves++
			}
		case workload.EventFail:
			if n, ok := alive[ev.Index]; ok {
				n.Stop()
				dropTransport(ev.Index)
				delete(alive, ev.Index)
				rec.Crash(ev.Index)
				res.Crashes++
			}
		case workload.EventNoop:
			// No membership change: the step exists to run maintenance,
			// probes and fault windows on the event clock.
		}
		res.Events++

		maintain(cfg.MaintenanceBudget)
		rec.Maintain(cfg.MaintenanceBudget, false)
		if (evIdx+1)%cfg.ProbeEvery == 0 {
			if err := probe(); err != nil {
				return Result{}, err
			}
		}
	}
	// One final boundary so fault windows ending with the schedule heal
	// before the trailing probe measures.
	syncFaults(len(schedule))
	// Trailing probe so short runs still measure something.
	if err := probe(); err != nil {
		return Result{}, err
	}
	if err := rec.Flush(); err != nil {
		return Result{}, fmt.Errorf("churnsim: writing replay log: %w", err)
	}

	// Ring correctness before any final repair.
	res.RingCorrect = ringCorrectness(liveNodes())
	res.FinalLiv = len(alive)

	res.MinDelivery = 1
	for _, r := range res.DeliveryRatios {
		res.MeanDelivery += r
		if r < res.MinDelivery {
			res.MinDelivery = r
		}
	}
	if res.Probes > 0 {
		res.MeanDelivery /= float64(res.Probes)
	}
	for _, n := range all {
		st := n.Stats()
		res.Duplicates += st.Duplicates
		res.TableFaults += st.TableFaults
		res.Forwarded += st.Forwarded
		res.Retries += st.Retries
		res.SegmentsRepaired += st.SegmentsRepaired
		res.SegmentsLost += st.SegmentsLost
	}
	return res, nil
}

// ringCorrectness returns the fraction of live nodes whose successor pointer
// matches the true sorted ring of live nodes.
func ringCorrectness(nodes []*runtime.Node) float64 {
	if len(nodes) == 0 {
		return 0
	}
	sorted := make([]*runtime.Node, len(nodes))
	copy(sorted, nodes)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Self().ID < sorted[j].Self().ID })
	correct := 0
	for i, n := range sorted {
		want := sorted[(i+1)%len(sorted)].Self().Addr
		succs := n.SuccessorList()
		if len(succs) > 0 && succs[0].Addr == want {
			correct++
		}
	}
	return float64(correct) / float64(len(sorted))
}
