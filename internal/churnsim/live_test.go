package churnsim

import (
	goruntime "runtime"
	"testing"

	"camcast/internal/runtime"
)

// TestRunLiveMem: a scheduler-driven live run on the mem transport under
// the virtual clock converges, delivers probes, and reports percentiles.
func TestRunLiveMem(t *testing.T) {
	members := 600
	if testing.Short() {
		members = 200
	}
	base := goruntime.NumGoroutine()
	res, err := RunLive(LiveConfig{
		Mode:        runtime.ModeCAMChord,
		Members:     members,
		Transport:   "mem",
		Shards:      1,
		Seed:        42,
		ChurnEvents: 60,
		Probes:      6,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Members != members || res.Joins < members-1 {
		t.Fatalf("joins = %d for %d members", res.Joins, res.Members)
	}
	if res.RingCorrect < 0.95 {
		t.Fatalf("ring correctness %.3f after repair, want >= 0.95", res.RingCorrect)
	}
	if res.MeanDelivery < 0.95 {
		t.Fatalf("mean delivery %.3f, want >= 0.95", res.MeanDelivery)
	}
	if res.Probes == 0 || res.McastP99Ms <= 0 || res.JoinP99Ms <= 0 {
		t.Fatalf("percentiles missing: %+v", res)
	}
	if res.JoinP50Ms > res.JoinP99Ms {
		t.Fatalf("p50 %.3f > p99 %.3f", res.JoinP50Ms, res.JoinP99Ms)
	}
	// Virtual-time mem mode hosts the whole membership with no standing
	// goroutines beyond the test's baseline.
	if res.Goroutines > base+2 {
		t.Fatalf("hosting %d members used %d goroutines (base %d)", members, res.Goroutines, base)
	}
	if res.Leaves > 0 && res.LeaveP99Ms <= 0 {
		t.Fatalf("leave percentiles missing with %d leaves", res.Leaves)
	}
}

// TestRunLiveTCP: the same flow over real loopback sockets with wall-clock
// shard loops. Small membership — every member owns a listener.
func TestRunLiveTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("tcp live run is wall-clock paced")
	}
	res, err := RunLive(LiveConfig{
		Mode:        runtime.ModeCAMChord,
		Members:     40,
		Transport:   "tcp",
		Shards:      2,
		Seed:        7,
		ChurnEvents: 20,
		Probes:      4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.RingCorrect < 0.9 {
		t.Fatalf("ring correctness %.3f", res.RingCorrect)
	}
	if res.MeanDelivery < 0.9 {
		t.Fatalf("mean delivery %.3f", res.MeanDelivery)
	}
}

func TestRunLiveValidates(t *testing.T) {
	if _, err := RunLive(LiveConfig{Mode: runtime.ModeCAMChord, Members: 1}); err == nil {
		t.Fatal("1-member run should be rejected")
	}
	if _, err := RunLive(LiveConfig{Mode: runtime.ModeCAMChord, Members: 10, Transport: "carrier-pigeon"}); err == nil {
		t.Fatal("unknown transport should be rejected")
	}
}
