package churnsim

import (
	goruntime "runtime"
	"testing"

	"camcast/internal/runtime"
)

// TestRunLiveMem: a scheduler-driven live run on the mem transport under
// the virtual clock converges, delivers probes, and reports percentiles.
func TestRunLiveMem(t *testing.T) {
	members := 600
	if testing.Short() {
		members = 200
	}
	base := goruntime.NumGoroutine()
	res, err := RunLive(LiveConfig{
		Mode:        runtime.ModeCAMChord,
		Members:     members,
		Transport:   "mem",
		Shards:      1,
		Seed:        42,
		ChurnEvents: 60,
		Probes:      6,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Members != members || res.Joins < members-1 {
		t.Fatalf("joins = %d for %d members", res.Joins, res.Members)
	}
	if res.RingCorrect < 0.95 {
		t.Fatalf("ring correctness %.3f after repair, want >= 0.95", res.RingCorrect)
	}
	if res.MeanDelivery < 0.95 {
		t.Fatalf("mean delivery %.3f, want >= 0.95", res.MeanDelivery)
	}
	if res.Probes == 0 || res.McastP99Ms <= 0 || res.JoinP99Ms <= 0 {
		t.Fatalf("percentiles missing: %+v", res)
	}
	if res.JoinP50Ms > res.JoinP99Ms {
		t.Fatalf("p50 %.3f > p99 %.3f", res.JoinP50Ms, res.JoinP99Ms)
	}
	// Virtual-time mem mode hosts the whole membership with no standing
	// goroutines beyond the test's baseline.
	if res.Goroutines > base+2 {
		t.Fatalf("hosting %d members used %d goroutines (base %d)", members, res.Goroutines, base)
	}
	if res.Leaves > 0 && res.LeaveP99Ms <= 0 {
		t.Fatalf("leave percentiles missing with %d leaves", res.Leaves)
	}
	// The default ramp is bulk construction: its phase timings and the
	// arena-occupancy stats must come back populated and sane.
	if res.BulkRampSeconds <= 0 || res.VerifySeconds <= 0 {
		t.Fatalf("bulk phase timings missing: ramp %.3fs verify %.3fs",
			res.BulkRampSeconds, res.VerifySeconds)
	}
	if res.ArenaSlots < members || res.ArenaLive <= 0 || res.ArenaLive > res.ArenaSlots {
		t.Fatalf("arena stats implausible: %d slots, %d live", res.ArenaSlots, res.ArenaLive)
	}
	if res.ArenaOccupancy <= 0 || res.ArenaOccupancy > 1 {
		t.Fatalf("arena occupancy %.3f outside (0, 1]", res.ArenaOccupancy)
	}
}

// TestRunLiveMemJoinRamp keeps the incremental ramp covered end to end: the
// pre-bulk join path must still converge and deliver, and must not report
// bulk phase timings.
func TestRunLiveMemJoinRamp(t *testing.T) {
	res, err := RunLive(LiveConfig{
		Mode:        runtime.ModeCAMChord,
		Members:     150,
		Transport:   "mem",
		Shards:      1,
		Seed:        7,
		Ramp:        "join",
		ChurnEvents: 30,
		Probes:      4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Joins < 149 {
		t.Fatalf("joins = %d for 150 members", res.Joins)
	}
	if res.RingCorrect < 0.95 {
		t.Fatalf("ring correctness %.3f", res.RingCorrect)
	}
	// Crashes mid-probe cost a few deliveries; 0.9 matches the TCP bound.
	if res.MeanDelivery < 0.9 {
		t.Fatalf("mean delivery %.3f", res.MeanDelivery)
	}
	if res.BulkRampSeconds != 0 || res.VerifySeconds != 0 {
		t.Fatalf("join ramp reported bulk timings: ramp %.3fs verify %.3fs",
			res.BulkRampSeconds, res.VerifySeconds)
	}
}

// TestRunLiveTCP: the same flow over real loopback sockets with wall-clock
// shard loops. Small membership — every member owns a listener.
func TestRunLiveTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("tcp live run is wall-clock paced")
	}
	res, err := RunLive(LiveConfig{
		Mode:        runtime.ModeCAMChord,
		Members:     40,
		Transport:   "tcp",
		Shards:      2,
		Seed:        7,
		ChurnEvents: 20,
		Probes:      4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.RingCorrect < 0.9 {
		t.Fatalf("ring correctness %.3f", res.RingCorrect)
	}
	if res.MeanDelivery < 0.9 {
		t.Fatalf("mean delivery %.3f", res.MeanDelivery)
	}
}

func TestRunLiveValidates(t *testing.T) {
	if _, err := RunLive(LiveConfig{Mode: runtime.ModeCAMChord, Members: 1}); err == nil {
		t.Fatal("1-member run should be rejected")
	}
	if _, err := RunLive(LiveConfig{Mode: runtime.ModeCAMChord, Members: 10, Transport: "carrier-pigeon"}); err == nil {
		t.Fatal("unknown transport should be rejected")
	}
}
