package churnsim

import (
	"fmt"
	"io"
	"math/rand"
	goruntime "runtime"
	"sort"
	"sync"
	"time"

	"camcast/internal/ids"
	"camcast/internal/obsv"
	"camcast/internal/ring"
	"camcast/internal/runtime"
	"camcast/internal/timing"
	"camcast/internal/transport"
)

// LiveConfig parameterizes one live-scale run: a whole membership hosted in
// this process with maintenance driven by the sharded scheduler
// (runtime.Scheduler) instead of the lockstep maintain() rounds of Run.
// This is the path that hosts 100k+ members: no per-member goroutines, one
// timer wheel per shard, and — on the mem transport — a virtual clock the
// driver advances, so a year of maintenance cadence costs only the work
// actually due.
type LiveConfig struct {
	Mode      runtime.Mode
	Members   int    // target live membership after the ramp
	Transport string // "mem" (default, virtual time) or "tcp" (wall time)

	// Groups partitions the membership across this many tenant flows
	// (member idx mod Groups): each group is an independent overlay
	// multiplexed over the same underlying transport, exactly how the
	// public Group API shards tenants. 1 (the default) keeps the
	// single-overlay behavior. Probes and ring correctness are measured
	// within the probed member's own group; RingCorrect reports the
	// worst group.
	Groups int

	// Ramp selects how the initial membership is built: "bulk" (default)
	// creates every member up front and installs the sorted-membership ring
	// directly (runtime.BulkInstall) followed by one verification
	// stabilization round; "join" ramps incrementally through the normal
	// join path with stabilize-paced batching, exercising the same code
	// churn does. Churn always uses the incremental path regardless.
	Ramp string

	// Shards is the scheduler's shard count (default GOMAXPROCS).
	Shards int
	// Bits is the identifier space width. Default 32: at 100k members a
	// 20-bit space collides constantly, a 32-bit one almost never, and
	// the rare collision is retried under a fresh address.
	Bits       uint
	CapacityLo int // member capacities drawn uniformly from [lo, hi]; default [4,8]
	CapacityHi int
	Seed       int64

	// ChurnEvents is the number of membership events after the ramp
	// (default members/100, clamped to [50, 400] — per-event cost grows
	// with membership, so the cap keeps a 100k run in minutes). Probes is
	// the number of measurement multicasts spread across churn (default 20).
	ChurnEvents int
	Probes      int

	// Metrics and Bus instrument every member, as in Config.
	Metrics *obsv.Registry
	Bus     *obsv.Bus

	// Log, when set, receives progress lines (ramp milestones, phase
	// transitions); useful because a 100k ramp takes minutes.
	Log io.Writer
}

func (c *LiveConfig) applyDefaults() {
	if c.Transport == "" {
		c.Transport = "mem"
	}
	if c.Groups == 0 {
		c.Groups = 1
	}
	if c.Ramp == "" {
		c.Ramp = "bulk"
	}
	if c.Bits == 0 {
		c.Bits = 32
	}
	if c.CapacityLo == 0 && c.CapacityHi == 0 {
		c.CapacityLo, c.CapacityHi = 4, 8
	}
	if c.ChurnEvents == 0 {
		c.ChurnEvents = c.Members / 100
		if c.ChurnEvents < 50 {
			c.ChurnEvents = 50
		}
		if c.ChurnEvents > 400 {
			c.ChurnEvents = 400
		}
	}
	if c.Probes == 0 {
		c.Probes = 20
	}
}

func (c *LiveConfig) validate() error {
	if c.Members < 2 {
		return fmt.Errorf("churnsim: live run needs at least 2 members, got %d", c.Members)
	}
	if c.Groups < 1 || c.Members < 2*c.Groups {
		return fmt.Errorf("churnsim: %d groups need at least %d members, got %d", c.Groups, 2*c.Groups, c.Members)
	}
	minCap := 2
	if c.Mode == runtime.ModeCAMKoorde {
		minCap = 4
	}
	if c.CapacityLo < minCap || c.CapacityHi < c.CapacityLo {
		return fmt.Errorf("churnsim: capacity range [%d,%d] invalid for %v", c.CapacityLo, c.CapacityHi, c.Mode)
	}
	switch c.Transport {
	case "mem", "tcp":
	default:
		return fmt.Errorf("churnsim: unknown transport %q (want mem or tcp)", c.Transport)
	}
	switch c.Ramp {
	case "bulk", "join":
	default:
		return fmt.Errorf("churnsim: unknown ramp %q (want bulk or join)", c.Ramp)
	}
	return nil
}

// LiveResult summarizes one live-scale run. Latency fields are exact
// percentiles in milliseconds over every operation of that kind in the run
// (joins across ramp and churn; leaves and multicasts during churn),
// measured in wall time — the virtual clock schedules maintenance, it does
// not distort measurement.
type LiveResult struct {
	Transport string `json:"transport"`
	Mode      string `json:"mode"`
	Members   int    `json:"members"`
	Groups    int    `json:"groups,omitempty"`
	Shards    int    `json:"shards"`

	Joins   int `json:"joins"`
	Leaves  int `json:"leaves"`
	Crashes int `json:"crashes"`
	Probes  int `json:"probes"`

	JoinP50Ms  float64 `json:"join_p50_ms"`
	JoinP95Ms  float64 `json:"join_p95_ms"`
	JoinP99Ms  float64 `json:"join_p99_ms"`
	LeaveP50Ms float64 `json:"leave_p50_ms"`
	LeaveP95Ms float64 `json:"leave_p95_ms"`
	LeaveP99Ms float64 `json:"leave_p99_ms"`
	McastP50Ms float64 `json:"multicast_p50_ms"`
	McastP95Ms float64 `json:"multicast_p95_ms"`
	McastP99Ms float64 `json:"multicast_p99_ms"`

	// Lookup hop-count percentiles across every lookup the run performed
	// (joins, table fixes, probes), read from the runtime's lookup-hops
	// histogram. Zero when the run has no Metrics registry. Failed lookups
	// are recorded at the hop budget, so a partitioned run shows up as a
	// blown p99 rather than a silently clean one.
	LookupHopsP50 float64 `json:"lookup_hops_p50,omitempty"`
	LookupHopsP95 float64 `json:"lookup_hops_p95,omitempty"`
	LookupHopsP99 float64 `json:"lookup_hops_p99,omitempty"`

	MeanDelivery float64 `json:"mean_delivery"`
	MinDelivery  float64 `json:"min_delivery"`
	RingCorrect  float64 `json:"ring_correct"`

	// Goroutines is the process goroutine count while hosting the full
	// membership — O(shards), not O(members), is the invariant.
	Goroutines int `json:"goroutines"`
	// BytesPerMember is the steady-state heap cost per member
	// (HeapAlloc delta across the ramp / members).
	BytesPerMember float64 `json:"bytes_per_member"`

	RampSeconds  float64 `json:"ramp_seconds"`
	ChurnSeconds float64 `json:"churn_seconds"`

	// Bulk-ramp split (zero under Ramp "join"): BulkRampSeconds covers
	// member creation plus table installation, VerifySeconds the
	// verification stabilization round that follows.
	BulkRampSeconds float64 `json:"bulk_ramp_seconds,omitempty"`
	VerifySeconds   float64 `json:"verify_seconds,omitempty"`

	// Shard-arena occupancy after churn: interned node-table slots across
	// all shards, how many are live, and the live/slots ratio (recycling
	// health — churn should reuse freed slots, not grow the arena forever).
	ArenaSlots     int     `json:"arena_slots,omitempty"`
	ArenaLive      int     `json:"arena_live,omitempty"`
	ArenaOccupancy float64 `json:"arena_occupancy,omitempty"`
}

// pickVictim selects a random live member to depart, never shrinking any
// group below two members — a tenant ring that churns out entirely has no
// member left to bootstrap its replacements through.
func pickVictim(rng *rand.Rand, alive map[int]*runtime.Node, groupOf func(int) int, groups int) (int, bool) {
	counts := make([]int, groups)
	for i := range alive {
		counts[groupOf(i)]++
	}
	var idxs []int
	for i := range alive {
		if counts[groupOf(i)] > 2 {
			idxs = append(idxs, i)
		}
	}
	if len(idxs) == 0 {
		return 0, false
	}
	sort.Ints(idxs)
	return idxs[rng.Intn(len(idxs))], true
}

// latRecorder accumulates raw samples for exact percentiles. The live
// driver is single-threaded, so no lock.
type latRecorder struct{ samples []float64 }

func (l *latRecorder) observe(d time.Duration) {
	l.samples = append(l.samples, float64(d.Nanoseconds())/1e6)
}

// percentile returns the exact q-percentile (nearest-rank) in ms.
func (l *latRecorder) percentile(q float64) float64 {
	if len(l.samples) == 0 {
		return 0
	}
	s := append([]float64(nil), l.samples...)
	sort.Float64s(s)
	rank := int(q*float64(len(s))+0.999999) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(s) {
		rank = len(s) - 1
	}
	return s[rank]
}

// RunLive executes one live-scale run: ramp to cfg.Members, converge, churn
// with probe multicasts, report.
func RunLive(cfg LiveConfig) (LiveResult, error) {
	cfg.applyDefaults()
	if err := cfg.validate(); err != nil {
		return LiveResult{}, err
	}
	logf := func(format string, args ...any) {
		if cfg.Log != nil {
			fmt.Fprintf(cfg.Log, format+"\n", args...)
		}
	}

	useTCP := cfg.Transport == "tcp"
	var clock timing.Clock
	var virt *timing.Virtual
	if useTCP {
		clock = timing.Wall()
	} else {
		virt = timing.NewVirtual(time.Unix(0, 0))
		clock = virt
	}
	space, err := ring.NewSpace(cfg.Bits)
	if err != nil {
		return LiveResult{}, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	var net *transport.Network
	if !useTCP {
		net = transport.NewNetwork(cfg.Seed + 2)
		if cfg.Metrics != nil {
			net.Instrument(cfg.Metrics)
		}
	} else {
		runtime.RegisterWireTypes()
	}

	sched := runtime.NewScheduler(runtime.SchedulerConfig{
		Shards:  cfg.Shards,
		Clock:   clock,
		Metrics: cfg.Metrics,
	})
	sched.Start() // no-op under the virtual clock

	col := &collector{got: make(map[string]int)}
	var (
		res     LiveResult
		alive   = make(map[int]*runtime.Node)
		usedIDs = make(map[ring.ID]bool)
		tcps    = make(map[int]*transport.TCP)
		joins   latRecorder
		leaves  latRecorder
		mcasts  latRecorder
	)
	res.Transport = cfg.Transport
	res.Mode = cfg.Mode.String()
	res.Members = cfg.Members
	if cfg.Groups > 1 {
		res.Groups = cfg.Groups
	}
	res.Shards = sched.Shards()

	// One flow label per tenant group; in a multi-group run even group 0
	// gets its own label so no tenant rides the default flow.
	gids := make([]uint64, cfg.Groups)
	if cfg.Groups > 1 {
		for g := range gids {
			gids[g] = transport.GroupLabel(fmt.Sprintf("tenant-%d", g))
		}
	}
	groupOf := func(idx int) int { return idx % cfg.Groups }
	defer func() {
		sched.Stop()
		for _, n := range alive {
			n.Stop()
		}
		for _, tr := range tcps {
			tr.Close()
		}
	}()

	// newMember builds member idx, retrying under a suffixed address on the
	// (rare at 32 bits) identifier collision. Nodes register with the
	// transport only at Bootstrap/Join, so a discarded candidate leaves no
	// residue. Each member's neighbor tables live on its scheduler shard's
	// arena — computed from the identifier its address hashes to, so the
	// arena choice matches the shard the scheduler will run it on.
	hasher := ids.NewHasher(space)
	newMember := func(idx int) (*runtime.Node, error) {
		capacity := cfg.CapacityLo + rng.Intn(cfg.CapacityHi-cfg.CapacityLo+1)
		rcfg := runtime.Config{
			Space:     space,
			Mode:      cfg.Mode,
			Capacity:  capacity,
			Clock:     clock,
			OnDeliver: func(d runtime.Delivery) { col.add(d.MsgID) },
			Bus:       cfg.Bus,
			Metrics:   cfg.Metrics,
		}
		for attempt := 0; ; attempt++ {
			if attempt > 8 {
				return nil, fmt.Errorf("churnsim: member %d: 8 identifier collisions in a row", idx)
			}
			addr := fmt.Sprintf("m-%d", idx)
			if attempt > 0 {
				addr = fmt.Sprintf("m-%d.%d", idx, attempt)
			}
			var tr runtime.Transport = net
			if cfg.Groups > 1 && !useTCP {
				tr = net.Flow(gids[groupOf(idx)])
			}
			var tcp *transport.TCP
			if useTCP {
				var err error
				tcp, err = transport.NewTCP("127.0.0.1:0")
				if err != nil {
					return nil, err
				}
				tcp.SuspicionWindow = 250 * time.Millisecond
				tcp.DialTimeout = 500 * time.Millisecond
				tcp.RPCTimeout = time.Second
				if cfg.Metrics != nil {
					tcp.Instrument(cfg.Metrics)
				}
				tr = tcp
				if cfg.Groups > 1 {
					tr = tcp.Flow(gids[groupOf(idx)])
				}
				addr = tcp.Addr()
			}
			rcfg.Arena = sched.ArenaFor(hasher.ID(addr))
			node, err := runtime.NewNode(tr, addr, rcfg)
			if err != nil {
				if tcp != nil {
					tcp.Close()
				}
				return nil, err
			}
			if usedIDs[node.Self().ID] {
				node.Stop()
				if tcp != nil {
					tcp.Close()
				}
				continue
			}
			usedIDs[node.Self().ID] = true
			if tcp != nil {
				tcps[idx] = tcp
			}
			return node, nil
		}
	}
	dropMember := func(idx int) {
		if n, ok := alive[idx]; ok {
			usedIDs[n.Self().ID] = false
			delete(alive, idx)
		}
		if tr, ok := tcps[idx]; ok {
			tr.Close()
			delete(tcps, idx)
		}
	}
	// settle lets maintenance run for roughly wall duration d: under the
	// virtual clock time moves only here; under wall time the shard loops
	// are already running and we just wait.
	settle := func(d time.Duration) {
		if virt != nil {
			sched.Advance(d)
		} else {
			time.Sleep(d)
		}
	}
	liveIdxs := func() []int {
		idxs := make([]int, 0, len(alive))
		for i := range alive {
			idxs = append(idxs, i)
		}
		sort.Ints(idxs)
		return idxs
	}
	liveIdxsOf := func(g int) []int {
		var idxs []int
		for i := range alive {
			if groupOf(i) == g {
				idxs = append(idxs, i)
			}
		}
		sort.Ints(idxs)
		return idxs
	}
	liveNodesOf := func(g int) []*runtime.Node {
		idxs := liveIdxsOf(g)
		out := make([]*runtime.Node, 0, len(idxs))
		for _, i := range idxs {
			out = append(out, alive[i])
		}
		return out
	}
	// ringCorrect is the worst group's correctness: every tenant overlay
	// must hold its own ring, not just the aggregate.
	ringCorrect := func() float64 {
		worst := 1.0
		for g := 0; g < cfg.Groups; g++ {
			if rc := ringCorrectness(liveNodesOf(g)); rc < worst {
				worst = rc
			}
		}
		return worst
	}
	probe := func() error {
		idxs := liveIdxs()
		if len(idxs) == 0 {
			return fmt.Errorf("churnsim: no live members to probe")
		}
		srcIdx := idxs[rng.Intn(len(idxs))]
		src := alive[srcIdx]
		groupSize := len(liveIdxsOf(groupOf(srcIdx)))
		start := time.Now()
		msgID, err := src.Multicast([]byte("probe"))
		if err != nil {
			return err
		}
		mcasts.observe(time.Since(start))
		// Delivery is measured against the sender's own group: a probe
		// multicast must reach that tenant's membership and no one else's.
		ratio := float64(col.count(msgID)) / float64(groupSize)
		if ratio > 1 {
			ratio = 1
		}
		res.MeanDelivery += ratio
		if res.Probes == 0 || ratio < res.MinDelivery {
			res.MinDelivery = ratio
		}
		res.Probes++
		return nil
	}

	var base goruntime.MemStats
	goruntime.GC()
	goruntime.ReadMemStats(&base)

	// Ramp progress is logged by elapsed-time cadence, not member-count
	// stride: at 1M members a fixed every-N milestone goes silent for
	// minutes, while a 5s heartbeat stays informative at every scale.
	rampStart := time.Now()
	lastLog := time.Now()
	maybeLog := func(format string, args ...any) {
		if cfg.Log != nil && time.Since(lastLog) >= 5*time.Second {
			lastLog = time.Now()
			logf(format, args...)
		}
	}

	verified := false
	if cfg.Ramp == "bulk" {
		// Phase 1 (bulk) — create the whole membership up front and install
		// the ring directly from the sorted identifier array; convergence is
		// reserved for churn, where membership is genuinely unknown.
		nodes := make([]*runtime.Node, 0, cfg.Members)
		byGroup := make([][]*runtime.Node, cfg.Groups)
		for i := 0; i < cfg.Members; i++ {
			n, err := newMember(i)
			if err != nil {
				return LiveResult{}, err
			}
			alive[i] = n
			nodes = append(nodes, n)
			byGroup[groupOf(i)] = append(byGroup[groupOf(i)], n)
			maybeLog("ramp: created %d/%d members (%.0fs)", i+1, cfg.Members, time.Since(rampStart).Seconds())
		}
		// Each group is its own ring: install them independently.
		for _, part := range byGroup {
			if err := runtime.BulkInstall(part, runtime.BulkOptions{}); err != nil {
				return LiveResult{}, err
			}
		}
		for _, n := range nodes {
			sched.Add(n)
		}
		res.Joins += cfg.Members
		res.BulkRampSeconds = time.Since(rampStart).Seconds()
		logf("ramp: bulk-installed %d members in %.1fs", cfg.Members, res.BulkRampSeconds)

		// Verification round: one StabilizeOnce per member, in parallel
		// chunks. On a correctly installed ring this confirms every
		// successor/predecessor pointer without changing anything; were a
		// pointer wrong, the round would repair it and the correctness
		// check below would send us into the converge loop.
		verifyStart := time.Now()
		workers := goruntime.GOMAXPROCS(0)
		chunk := (len(nodes) + workers - 1) / workers
		var wg sync.WaitGroup
		for lo := 0; lo < len(nodes); lo += chunk {
			hi := lo + chunk
			if hi > len(nodes) {
				hi = len(nodes)
			}
			wg.Add(1)
			go func(part []*runtime.Node) {
				defer wg.Done()
				for _, n := range part {
					n.StabilizeOnce()
				}
			}(nodes[lo:hi])
		}
		wg.Wait()
		rc := ringCorrect()
		res.VerifySeconds = time.Since(verifyStart).Seconds()
		logf("ramp: verification round in %.1fs, ring %.3f", res.VerifySeconds, rc)
		verified = rc >= 1
		if useTCP {
			// An incremental ramp warms every peer-pair connection as a side
			// effect of taking seconds per batch; a bulk ramp reaches churn
			// with cold dial caches. Give the wall-clock shard loops a few
			// maintenance rounds so connection setup is not racing repair.
			for r := 0; r < 4; r++ {
				settle(500 * time.Millisecond)
			}
		}
	} else {
		// Phase 1 (join) — ramp members one at a time through a random live
		// member, granting a full stabilization period whenever joins since
		// the last one reach ~1/16 of the ring. Stabilize heals a stale
		// successor pointer one member per round, so the deficit a gap can
		// accumulate between settles must stay O(1); scaling the batch to
		// ring size keeps total ramp maintenance at O(n log n)
		// stabilizations instead of the O(n^2) of maintain-after-every-join.
		// Member idx 0..Groups-1 bootstrap their respective rings; everyone
		// else joins through a member of their own group.
		vias := make([][]*runtime.Node, cfg.Groups)
		for g := 0; g < cfg.Groups; g++ {
			first, err := newMember(g)
			if err != nil {
				return LiveResult{}, err
			}
			if err := first.Bootstrap(); err != nil {
				return LiveResult{}, err
			}
			alive[g] = first
			sched.Add(first)
			vias[g] = []*runtime.Node{first}
		}
		joinsSince := 0
		for i := cfg.Groups; i < cfg.Members; i++ {
			n, err := newMember(i)
			if err != nil {
				return LiveResult{}, err
			}
			g := groupOf(i)
			via := vias[g][rng.Intn(len(vias[g]))]
			start := time.Now()
			if err := n.Join(via.Self().Addr); err != nil {
				return LiveResult{}, fmt.Errorf("churnsim: ramp join %d via %s: %w", i, via.Self().Addr, err)
			}
			joins.observe(time.Since(start))
			res.Joins++
			alive[i] = n
			sched.Add(n)
			if len(vias[g]) < 64 {
				vias[g] = append(vias[g], n)
			}
			joinsSince++
			if joinsSince*16 >= len(alive) {
				settle(time.Second) // one stabilize + one table-fix per member
				joinsSince = 0
			}
			maybeLog("ramp: %d/%d members (%.0fs)", i, cfg.Members, time.Since(rampStart).Seconds())
		}
	}

	// Phase 2 — converge: maintenance periods until every live successor
	// pointer is right, correctness stops improving, or the round budget
	// runs out (the final number is reported either way). A bulk ramp whose
	// verification round already proved the ring skips this entirely.
	if !verified {
		best := 0.0
		for r := 0; r < 120; r++ {
			settle(500 * time.Millisecond)
			if r%3 == 2 {
				rc := ringCorrect()
				if rc >= 1 || (r > 30 && rc <= best) {
					break
				}
				if rc > best {
					best = rc
				}
			}
		}
	}
	res.RampSeconds = time.Since(rampStart).Seconds()

	goruntime.GC()
	var after goruntime.MemStats
	goruntime.ReadMemStats(&after)
	if after.HeapAlloc > base.HeapAlloc {
		res.BytesPerMember = float64(after.HeapAlloc-base.HeapAlloc) / float64(cfg.Members)
	}
	res.Goroutines = goruntime.NumGoroutine()
	logf("ramp done: %d members in %.0fs, %d goroutines, %.0f B/member",
		cfg.Members, res.RampSeconds, res.Goroutines, res.BytesPerMember)

	// Phase 3 — churn with probes. Joins/leaves/crashes at 45/35/20,
	// bounded so the membership never falls below half the target.
	churnStart := time.Now()
	probeEvery := cfg.ChurnEvents / cfg.Probes
	if probeEvery < 1 {
		probeEvery = 1
	}
	nextIdx := cfg.Members
	for ev := 0; ev < cfg.ChurnEvents; ev++ {
		r := rng.Float64()
		switch {
		case r < 0.45 || len(alive) < cfg.Members/2:
			n, err := newMember(nextIdx)
			if err != nil {
				return LiveResult{}, err
			}
			// Joins must go through a member of the joiner's own group:
			// flows are isolated, so a cross-group bootstrap address is
			// simply unreachable.
			idxs := liveIdxsOf(groupOf(nextIdx))
			via := alive[idxs[rng.Intn(len(idxs))]]
			start := time.Now()
			if err := n.Join(via.Self().Addr); err != nil {
				// The bootstrap member may itself have just churned out;
				// one retry through another member, then give up on this
				// event (a failed join is churn, not an error).
				via = alive[idxs[rng.Intn(len(idxs))]]
				if err := n.Join(via.Self().Addr); err != nil {
					n.Stop()
					usedIDs[n.Self().ID] = false
					dropMember(nextIdx)
					nextIdx++
					break
				}
			}
			joins.observe(time.Since(start))
			alive[nextIdx] = n
			sched.Add(n)
			nextIdx++
			res.Joins++
		case r < 0.80:
			victim, ok := pickVictim(rng, alive, groupOf, cfg.Groups)
			if !ok {
				break
			}
			n := alive[victim]
			sched.Remove(n)
			start := time.Now()
			_ = n.Leave()
			leaves.observe(time.Since(start))
			dropMember(victim)
			res.Leaves++
		default:
			victim, ok := pickVictim(rng, alive, groupOf, cfg.Groups)
			if !ok {
				break
			}
			n := alive[victim]
			sched.Remove(n)
			n.Stop()
			dropMember(victim)
			res.Crashes++
		}
		settle(50 * time.Millisecond)
		if (ev+1)%probeEvery == 0 && res.Probes < cfg.Probes {
			if err := probe(); err != nil {
				return LiveResult{}, err
			}
		}
		maybeLog("churn: %d/%d events (%.0fs)", ev+1, cfg.ChurnEvents, time.Since(churnStart).Seconds())
	}
	// Let the overlay repair, then take the closing measurements.
	for r := 0; r < 20; r++ {
		settle(500 * time.Millisecond)
	}
	if err := probe(); err != nil {
		return LiveResult{}, err
	}
	res.ChurnSeconds = time.Since(churnStart).Seconds()
	res.RingCorrect = ringCorrect()
	ast := sched.ArenaStats()
	res.ArenaSlots = ast.Slots
	res.ArenaLive = ast.Live
	if ast.Slots > 0 {
		res.ArenaOccupancy = float64(ast.Live) / float64(ast.Slots)
	}
	if res.Probes > 0 {
		res.MeanDelivery /= float64(res.Probes)
	}

	res.JoinP50Ms = joins.percentile(0.50)
	res.JoinP95Ms = joins.percentile(0.95)
	res.JoinP99Ms = joins.percentile(0.99)
	res.LeaveP50Ms = leaves.percentile(0.50)
	res.LeaveP95Ms = leaves.percentile(0.95)
	res.LeaveP99Ms = leaves.percentile(0.99)
	res.McastP50Ms = mcasts.percentile(0.50)
	res.McastP95Ms = mcasts.percentile(0.95)
	res.McastP99Ms = mcasts.percentile(0.99)
	if cfg.Metrics != nil {
		if h, ok := cfg.Metrics.Snapshot().Histograms[obsv.MetricLookupHops]; ok && h.Count > 0 {
			res.LookupHopsP50 = h.BoundedQuantile(0.50)
			res.LookupHopsP95 = h.BoundedQuantile(0.95)
			res.LookupHopsP99 = h.BoundedQuantile(0.99)
		}
	}
	logf("churn done: %d events in %.0fs, ring %.3f, delivery mean %.3f min %.3f",
		cfg.ChurnEvents, res.ChurnSeconds, res.RingCorrect, res.MeanDelivery, res.MinDelivery)
	return res, nil
}
