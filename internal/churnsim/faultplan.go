package churnsim

import (
	"fmt"
	"time"
)

// Any is the wildcard link selector: a FaultEvent whose From or To is Any
// (or any negative value) matches every member on that side of the link.
const Any = -1

// FaultKind distinguishes scheduled simulation faults.
type FaultKind int

const (
	// FaultGroupCrash crashes every member listed in Members at once when
	// the window opens — a correlated failure (rack power loss, AZ
	// outage). It fires once at step At and is permanent: Until is
	// ignored, crashed members stay down unless the schedule rejoins
	// their index later.
	FaultGroupCrash FaultKind = iota + 1
	// FaultLinkLoss drops messages on the From->To link with probability
	// Rate while the window is open.
	FaultLinkLoss
	// FaultLinkDelay adds Delay of latency on the From->To link while the
	// window is open.
	FaultLinkDelay
	// FaultPartition isolates the members in Members into partition
	// Partition while the window is open; members in different partitions
	// cannot exchange messages.
	FaultPartition
)

// String implements fmt.Stringer.
func (k FaultKind) String() string {
	switch k {
	case FaultGroupCrash:
		return "group-crash"
	case FaultLinkLoss:
		return "link-loss"
	case FaultLinkDelay:
		return "link-delay"
	case FaultPartition:
		return "partition"
	default:
		return fmt.Sprintf("FaultKind(%d)", int(k))
	}
}

// FaultEvent is one scheduled fault. Unlike transport.FaultPlan, whose
// windows count transport calls, these windows count churn-schedule event
// steps: the fault is in force while the simulation executes schedule
// events At <= step < Until, with Until 0 meaning the rest of the run.
// Aligning fault windows with the event clock is what lets a scenario say
// "lose 30% on every link into member 4 during events 10..20" and have the
// statement survive into a replay log unchanged.
type FaultEvent struct {
	Kind      FaultKind
	At, Until int

	// Members selects the victims of a group crash or the members moved by
	// a partition.
	Members []int
	// From and To select the link for loss and delay faults, as member
	// indices; Any (negative) matches every member on that side. Note the
	// zero value selects member 0 — a one-sided fault must set the other
	// side to Any explicitly.
	From, To int
	// Rate is the drop probability of a link-loss fault.
	Rate float64
	// Delay is the added latency of a link-delay fault.
	Delay time.Duration
	// Partition is the partition id members are moved to.
	Partition int
}

// active reports whether the window is open at the given event step. Group
// crashes are one-shot and handled separately.
func (e *FaultEvent) active(step int) bool {
	return step >= e.At && (e.Until == 0 || step < e.Until)
}

// FaultPlan schedules composite failures against a churn run: correlated
// crashes, lossy and slow links, partitions — each windowed on the event
// step clock. The simulation syncs the plan into the in-memory network's
// imperative fault knobs at every event boundary, and records each applied
// action to the replay log, so a recorded faulty run replays without the
// replayer ever knowing the plan existed.
type FaultPlan struct {
	Events []FaultEvent
}

// validate rejects plans the simulation cannot honor.
func (p *FaultPlan) validate(transportName string) error {
	if p == nil {
		return nil
	}
	for i, e := range p.Events {
		switch e.Kind {
		case FaultGroupCrash:
			if len(e.Members) == 0 {
				return fmt.Errorf("churnsim: fault %d: group crash with no members", i)
			}
		case FaultLinkLoss:
			if e.Rate < 0 || e.Rate > 1 {
				return fmt.Errorf("churnsim: fault %d: loss rate %g out of [0,1]", i, e.Rate)
			}
		case FaultLinkDelay:
			if e.Delay <= 0 {
				return fmt.Errorf("churnsim: fault %d: non-positive link delay", i)
			}
		case FaultPartition:
			if len(e.Members) == 0 {
				return fmt.Errorf("churnsim: fault %d: partition with no members", i)
			}
		default:
			return fmt.Errorf("churnsim: fault %d: unknown kind %v", i, e.Kind)
		}
		// Link and partition faults drive the in-memory network's
		// imperative knobs; real sockets have no such controls.
		if e.Kind != FaultGroupCrash && transportName == "tcp" {
			return fmt.Errorf("churnsim: fault %d: %v faults need the mem transport", i, e.Kind)
		}
		if e.At < 0 || (e.Until != 0 && e.Until <= e.At) {
			return fmt.Errorf("churnsim: fault %d: bad window [%d,%d)", i, e.At, e.Until)
		}
	}
	return nil
}

// hasContinuous reports whether any non-crash fault exists (these need the
// sync-at-boundary machinery).
func (p *FaultPlan) hasContinuous() bool {
	if p == nil {
		return false
	}
	for _, e := range p.Events {
		if e.Kind != FaultGroupCrash {
			return true
		}
	}
	return false
}
