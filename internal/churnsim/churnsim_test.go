package churnsim

import (
	"testing"

	"camcast/internal/runtime"
)

func baseConfig(mode runtime.Mode) Config {
	capLo := 3
	if mode == runtime.ModeCAMKoorde {
		capLo = 4
	}
	return Config{
		Mode:              mode,
		Initial:           24,
		Events:            60,
		JoinFrac:          0.5,
		FailFrac:          0.5,
		CapacityLo:        capLo,
		CapacityHi:        8,
		Bits:              16,
		Seed:              1,
		MaintenanceBudget: 2,
		ProbeEvery:        10,
	}
}

func TestValidate(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Config)
	}{
		{"too few members", func(c *Config) { c.Initial = 1 }},
		{"negative events", func(c *Config) { c.Events = -1 }},
		{"koorde capacity too small", func(c *Config) { c.Mode = runtime.ModeCAMKoorde; c.CapacityLo = 3 }},
		{"chord capacity too small", func(c *Config) { c.CapacityLo = 1 }},
		{"inverted range", func(c *Config) { c.CapacityHi = c.CapacityLo - 1 }},
		{"negative budget", func(c *Config) { c.MaintenanceBudget = -1 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := baseConfig(runtime.ModeCAMChord)
			tt.mutate(&cfg)
			if _, err := Run(cfg); err == nil {
				t.Fatal("expected validation error")
			}
		})
	}
}

func TestChurnCAMChordWithMaintenance(t *testing.T) {
	res, err := Run(baseConfig(runtime.ModeCAMChord))
	if err != nil {
		t.Fatal(err)
	}
	if res.Events != 60 || res.Probes < 6 {
		t.Fatalf("result bookkeeping wrong: %+v", res)
	}
	if res.Joins+res.Leaves+res.Crashes != res.Events {
		t.Fatalf("event counts inconsistent: %+v", res)
	}
	if res.MeanDelivery < 0.95 {
		t.Errorf("mean delivery %.3f under churn with budget 2; expected near-complete", res.MeanDelivery)
	}
	if res.RingCorrect < 0.9 {
		t.Errorf("ring correctness %.2f; stabilization should keep the ring nearly exact", res.RingCorrect)
	}
}

func TestChurnCAMKoordeWithMaintenance(t *testing.T) {
	res, err := Run(baseConfig(runtime.ModeCAMKoorde))
	if err != nil {
		t.Fatal(err)
	}
	if res.MeanDelivery < 0.95 {
		t.Errorf("mean delivery %.3f under churn with budget 2", res.MeanDelivery)
	}
}

// With zero maintenance budget the overlay decays; on-demand lookups keep
// CAM-Chord delivering, but the runs must still complete and report sane
// ratios.
func TestChurnNoMaintenance(t *testing.T) {
	cfg := baseConfig(runtime.ModeCAMChord)
	cfg.MaintenanceBudget = 0
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range res.DeliveryRatios {
		if r < 0 || r > 1 {
			t.Fatalf("probe %d ratio %g out of range", i, r)
		}
	}
	if res.TableFaults == 0 {
		t.Error("zero-budget churn should force on-demand table repairs")
	}
}

// Delivery under fast churn should not beat delivery under slow churn.
func TestMaintenanceBudgetHelps(t *testing.T) {
	slow := baseConfig(runtime.ModeCAMChord)
	slow.MaintenanceBudget = 3
	fast := baseConfig(runtime.ModeCAMChord)
	fast.MaintenanceBudget = 0

	slowRes, err := Run(slow)
	if err != nil {
		t.Fatal(err)
	}
	fastRes, err := Run(fast)
	if err != nil {
		t.Fatal(err)
	}
	if fastRes.MeanDelivery > slowRes.MeanDelivery+0.02 {
		t.Errorf("fast churn delivery %.3f should not beat slow churn %.3f",
			fastRes.MeanDelivery, slowRes.MeanDelivery)
	}
	if fastRes.RingCorrect > slowRes.RingCorrect {
		t.Errorf("fast churn ring correctness %.2f should not beat slow churn %.2f",
			fastRes.RingCorrect, slowRes.RingCorrect)
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	a, err := Run(baseConfig(runtime.ModeCAMChord))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(baseConfig(runtime.ModeCAMChord))
	if err != nil {
		t.Fatal(err)
	}
	if a.MeanDelivery != b.MeanDelivery || a.Joins != b.Joins || a.Crashes != b.Crashes {
		t.Errorf("same seed produced different results: %+v vs %+v", a, b)
	}
}

// TestChurnTCPTransport runs a small churn workload with every member on
// its own loopback TCP listener, exercising the multiplexed transport and
// binary codec under joins, leaves, and crashes with real sockets. Scaled
// down from the mem-transport runs because each event pays real dial and
// suspicion latencies.
func TestChurnTCPTransport(t *testing.T) {
	if testing.Short() {
		t.Skip("real sockets; skipped in -short")
	}
	for _, codec := range []string{"binary", "gob"} {
		t.Run(codec, func(t *testing.T) {
			cfg := baseConfig(runtime.ModeCAMChord)
			cfg.Transport = "tcp"
			cfg.Codec = codec
			cfg.Initial = 8
			cfg.Events = 12
			cfg.ProbeEvery = 4
			cfg.MaintenanceBudget = 3
			res, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if res.Joins+res.Leaves+res.Crashes != res.Events {
				t.Fatalf("event counts inconsistent: %+v", res)
			}
			// Real sockets on a loaded CI box add genuine timing jitter
			// (dial latency, suspicion windows), so the bar is lower than
			// the deterministic mem-transport runs assert.
			if res.MeanDelivery < 0.7 {
				t.Errorf("mean delivery %.3f over TCP with budget 3; expected mostly-complete", res.MeanDelivery)
			}
		})
	}
}

func TestValidateTransport(t *testing.T) {
	cfg := baseConfig(runtime.ModeCAMChord)
	cfg.Transport = "carrier-pigeon"
	if _, err := Run(cfg); err == nil {
		t.Fatal("expected error for unknown transport")
	}
	cfg = baseConfig(runtime.ModeCAMChord)
	cfg.Codec = "binary" // codec without tcp transport
	if _, err := Run(cfg); err == nil {
		t.Fatal("expected error for codec without tcp transport")
	}
}
