package churnsim

import (
	"bytes"
	"testing"
	"time"

	"camcast/internal/replay"
	"camcast/internal/runtime"
	"camcast/internal/workload"
)

// faultyConfig composes every fault kind into one small run: a lossy link
// window, a partition window, and a correlated crash, over a scripted
// schedule with noop steps holding the windows open.
func faultyConfig(mode runtime.Mode) Config {
	cfg := baseConfig(mode)
	cfg.Events = 0
	cfg.Schedule = []workload.Event{
		{Kind: workload.EventJoin, Index: 24},
		{Kind: workload.EventNoop}, {Kind: workload.EventNoop},
		{Kind: workload.EventLeave, Index: 3},
		{Kind: workload.EventNoop}, {Kind: workload.EventNoop},
		{Kind: workload.EventFail, Index: 7},
		{Kind: workload.EventNoop}, {Kind: workload.EventNoop},
		{Kind: workload.EventJoin, Index: 25, Capacity: 6},
		{Kind: workload.EventNoop}, {Kind: workload.EventNoop},
	}
	cfg.Faults = &FaultPlan{Events: []FaultEvent{
		{Kind: FaultLinkLoss, At: 1, Until: 4, From: Any, To: 5, Rate: 0.5},
		{Kind: FaultLinkDelay, At: 2, Until: 3, From: 0, To: 1, Delay: time.Millisecond},
		{Kind: FaultPartition, At: 4, Until: 6, Members: []int{8, 9}, Partition: 1},
		{Kind: FaultGroupCrash, At: 7, Members: []int{10, 11, 12}},
	}}
	cfg.ProbeEvery = 3
	return cfg
}

func TestFaultPlanValidation(t *testing.T) {
	for name, plan := range map[string]*FaultPlan{
		"empty group crash": {Events: []FaultEvent{{Kind: FaultGroupCrash, At: 0}}},
		"bad loss rate":     {Events: []FaultEvent{{Kind: FaultLinkLoss, Rate: 1.5}}},
		"zero delay":        {Events: []FaultEvent{{Kind: FaultLinkDelay}}},
		"empty partition":   {Events: []FaultEvent{{Kind: FaultPartition, Partition: 1}}},
		"inverted window":   {Events: []FaultEvent{{Kind: FaultLinkLoss, At: 5, Until: 2, Rate: 0.1}}},
		"unknown kind":      {Events: []FaultEvent{{}}},
	} {
		cfg := baseConfig(runtime.ModeCAMChord)
		cfg.Faults = plan
		if _, err := Run(cfg); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	// Link faults need the imperative knobs of the mem network.
	cfg := baseConfig(runtime.ModeCAMChord)
	cfg.Transport = "tcp"
	cfg.Faults = &FaultPlan{Events: []FaultEvent{{Kind: FaultLinkLoss, Rate: 0.1}}}
	if _, err := Run(cfg); err == nil {
		t.Error("link faults on tcp transport accepted")
	}
}

func TestFaultPlanRun(t *testing.T) {
	cfg := faultyConfig(runtime.ModeCAMChord)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 1 scheduled crash + 3 group-crash victims.
	if res.Crashes != 4 {
		t.Errorf("crashes = %d, want 4 (1 scheduled + 3 correlated)", res.Crashes)
	}
	if res.Joins != 2 || res.Leaves != 1 {
		t.Errorf("joins/leaves = %d/%d, want 2/1", res.Joins, res.Leaves)
	}
	// 24 initial + 2 joins - 1 leave - 4 crashes.
	if res.FinalLiv != 21 {
		t.Errorf("final live = %d, want 21", res.FinalLiv)
	}
	if res.Probes == 0 || res.MeanDelivery == 0 {
		t.Errorf("no delivery measured: %+v", res)
	}
}

// TestRecordReplayRoundTrip is the headline acceptance check: record a
// live faulty run, then replay the log twice and require the two replays
// to agree on delivery sets, counters, and the full event trace.
func TestRecordReplayRoundTrip(t *testing.T) {
	for _, mode := range []runtime.Mode{runtime.ModeCAMChord, runtime.ModeCAMKoorde} {
		t.Run(mode.String(), func(t *testing.T) {
			cfg := faultyConfig(mode)
			var buf bytes.Buffer
			cfg.Record = &buf
			cfg.Label = "round-trip-test"
			if _, err := Run(cfg); err != nil {
				t.Fatalf("recorded run: %v", err)
			}

			log, err := replay.ReadLog(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatalf("ReadLog: %v", err)
			}
			if log.Header.Scenario != "round-trip-test" || log.Header.Mode != mode.String() {
				t.Errorf("header mangled: %+v", log.Header)
			}
			if len(log.Records) == 0 {
				t.Fatal("empty log")
			}

			a, err := replay.Run(log)
			if err != nil {
				t.Fatalf("first replay: %v", err)
			}
			b, err := replay.Run(log)
			if err != nil {
				t.Fatalf("second replay: %v", err)
			}
			if d := replay.Compare(a, b); d != nil {
				t.Fatalf("replays diverged:\n%s", d)
			}
			if len(a.MsgIDs) == 0 || len(a.Deliveries) == 0 {
				t.Fatalf("replay observed no multicasts: %d ids", len(a.MsgIDs))
			}
		})
	}
}

// TestBulkInitialRecordReplayRoundTrip: a run whose initial membership was
// built with BulkInstall records that construction as one bulk-join record,
// and the log still replays deterministically — the bulk path is ramp-only
// and must not disturb replay determinism.
func TestBulkInitialRecordReplayRoundTrip(t *testing.T) {
	for _, mode := range []runtime.Mode{runtime.ModeCAMChord, runtime.ModeCAMKoorde} {
		t.Run(mode.String(), func(t *testing.T) {
			cfg := faultyConfig(mode)
			cfg.BulkInitial = true
			var buf bytes.Buffer
			cfg.Record = &buf
			cfg.Label = "bulk-round-trip-test"
			res, err := Run(cfg)
			if err != nil {
				t.Fatalf("recorded run: %v", err)
			}
			if res.MeanDelivery == 0 {
				t.Fatalf("bulk-initial run delivered nothing: %+v", res)
			}

			log, err := replay.ReadLog(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatalf("ReadLog: %v", err)
			}
			bulkJoins, bootstraps := 0, 0
			for _, r := range log.Records {
				switch r.Kind {
				case replay.KindBulkJoin:
					bulkJoins++
					if len(r.Idxs) != cfg.Initial || len(r.Caps) != cfg.Initial {
						t.Errorf("bulk-join record covers %d/%d members, want %d",
							len(r.Idxs), len(r.Caps), cfg.Initial)
					}
				case replay.KindBootstrap:
					bootstraps++
				}
			}
			if bulkJoins != 1 || bootstraps != 0 {
				t.Errorf("log has %d bulk-joins and %d bootstraps, want 1 and 0", bulkJoins, bootstraps)
			}

			a, err := replay.Run(log)
			if err != nil {
				t.Fatalf("first replay: %v", err)
			}
			b, err := replay.Run(log)
			if err != nil {
				t.Fatalf("second replay: %v", err)
			}
			if d := replay.Compare(a, b); d != nil {
				t.Fatalf("replays diverged:\n%s", d)
			}
			if len(a.MsgIDs) == 0 || len(a.Deliveries) == 0 {
				t.Fatalf("replay observed no multicasts: %d ids", len(a.MsgIDs))
			}
		})
	}
}

// TestRecordedLogMatchesRun checks the log captures the run's actual
// inputs: the replayed cluster sees the same probes the live run issued.
func TestRecordedLogMatchesRun(t *testing.T) {
	cfg := faultyConfig(runtime.ModeCAMChord)
	var buf bytes.Buffer
	cfg.Record = &buf
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	log, err := replay.ReadLog(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	probes := 0
	groupCrashes := 0
	for _, r := range log.Records {
		switch r.Kind {
		case replay.KindMulticast:
			probes++
		case replay.KindCrashGroup:
			groupCrashes++
		}
	}
	if probes != res.Probes {
		t.Errorf("log has %d multicasts, run issued %d probes", probes, res.Probes)
	}
	if groupCrashes != 1 {
		t.Errorf("log has %d group crashes, want 1", groupCrashes)
	}
}
