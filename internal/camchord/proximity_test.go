package camchord

import (
	"math/rand"
	"testing"

	"camcast/internal/geo"
)

func geoModel(t *testing.T, n int, seed int64) *geo.Model {
	t.Helper()
	m, err := geo.NewClustered(n, 8, 120, 1, seed)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestBuildTreeProximityExactlyOnce(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		net := randomNetwork(t, 14, 500, 3, 10, seed)
		m := geoModel(t, net.Ring().Len(), seed)
		tree, delays, err := net.BuildTreeProximity(int(seed)*7%net.Ring().Len(), m.Delay, 8)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := tree.VerifyComplete(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if delays[tree.Root()] != 0 {
			t.Fatalf("root delay %g", delays[tree.Root()])
		}
	}
}

func TestBuildTreeProximityEverySource(t *testing.T) {
	net := randomNetwork(t, 12, 120, 2, 8, 21)
	m := geoModel(t, net.Ring().Len(), 21)
	for src := 0; src < net.Ring().Len(); src++ {
		tree, _, err := net.BuildTreeProximity(src, m.Delay, 6)
		if err != nil {
			t.Fatalf("src %d: %v", src, err)
		}
		if err := tree.VerifyComplete(); err != nil {
			t.Fatalf("src %d: %v", src, err)
		}
	}
}

// PNS adds at most one child (the head of a backward walk) beyond the
// node's own capacity-bounded selection.
func TestBuildTreeProximityDegreeBound(t *testing.T) {
	net := randomNetwork(t, 14, 600, 3, 12, 31)
	m := geoModel(t, net.Ring().Len(), 31)
	tree, _, err := net.BuildTreeProximity(0, m.Delay, 8)
	if err != nil {
		t.Fatal(err)
	}
	for pos := 0; pos < net.Ring().Len(); pos++ {
		if d := tree.Degree(pos); d > net.Capacity(pos)+1 {
			t.Fatalf("node %d has %d children, capacity %d (+1 backward)", pos, d, net.Capacity(pos))
		}
	}
}

// The point of PNS: under a clustered latency model, least-delay-first
// selection must reduce the average source-to-member delay relative to
// arithmetic selection (sample = 1).
func TestBuildTreeProximityReducesDelay(t *testing.T) {
	net := randomNetwork(t, 15, 1500, 4, 10, 41)
	m := geoModel(t, net.Ring().Len(), 41)
	rng := rand.New(rand.NewSource(5))

	var arithTotal, pnsTotal float64
	for trial := 0; trial < 3; trial++ {
		src := rng.Intn(net.Ring().Len())
		arithTree, arithDelays, err := net.BuildTreeProximity(src, m.Delay, 1)
		if err != nil {
			t.Fatal(err)
		}
		pnsTree, pnsDelays, err := net.BuildTreeProximity(src, m.Delay, 8)
		if err != nil {
			t.Fatal(err)
		}
		arithTotal += AvgDelay(arithTree, arithDelays)
		pnsTotal += AvgDelay(pnsTree, pnsDelays)
	}
	if pnsTotal >= arithTotal {
		t.Errorf("PNS delay %.1f should beat arithmetic %.1f", pnsTotal/3, arithTotal/3)
	}
	improvement := 1 - pnsTotal/arithTotal
	if improvement < 0.1 {
		t.Errorf("PNS improvement only %.1f%%, expected >= 10%% under clustered geography", improvement*100)
	}
}

// With sample = 1 the proximate tree has the same shape as BuildTree.
func TestBuildTreeProximitySampleOneMatchesArithmetic(t *testing.T) {
	net := randomNetwork(t, 13, 300, 3, 8, 51)
	m := geoModel(t, net.Ring().Len(), 51)
	base, err := net.BuildTree(5)
	if err != nil {
		t.Fatal(err)
	}
	pns, _, err := net.BuildTreeProximity(5, m.Delay, 1)
	if err != nil {
		t.Fatal(err)
	}
	for pos := 0; pos < net.Ring().Len(); pos++ {
		if base.Parent(pos) != pns.Parent(pos) {
			t.Fatalf("node %d: parent %d vs %d", pos, base.Parent(pos), pns.Parent(pos))
		}
	}
}

func TestAvgDelayEmpty(t *testing.T) {
	net := randomNetwork(t, 10, 1, 2, 2, 61)
	m := geoModel(t, 1, 61)
	tree, delays, err := net.BuildTreeProximity(0, m.Delay, 4)
	if err != nil {
		t.Fatal(err)
	}
	if AvgDelay(tree, delays) != 0 {
		t.Error("single-node tree should have zero average delay")
	}
}
