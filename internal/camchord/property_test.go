package camchord

import (
	"math/rand"
	"testing"
	"testing/quick"

	"camcast/internal/ring"
	"camcast/internal/topology"
)

// networkFromSeed derives a whole random network (membership, capacities,
// source) from a single seed so testing/quick can explore the space.
func networkFromSeed(seed int64) (*Network, int, error) {
	rng := rand.New(rand.NewSource(seed))
	s := ring.MustSpace(uint(8 + rng.Intn(8))) // 8..15 bits
	n := 2 + rng.Intn(120)
	if uint64(n) > s.Size()/2 {
		n = int(s.Size() / 2)
	}
	seen := make(map[ring.ID]bool, n)
	idList := make([]ring.ID, 0, n)
	for len(idList) < n {
		id := s.Reduce(rng.Uint64())
		if !seen[id] {
			seen[id] = true
			idList = append(idList, id)
		}
	}
	r, err := topology.New(s, idList)
	if err != nil {
		return nil, 0, err
	}
	caps := make([]int, n)
	for i := range caps {
		caps[i] = 2 + rng.Intn(30)
	}
	net, err := New(r, caps)
	if err != nil {
		return nil, 0, err
	}
	return net, rng.Intn(n), nil
}

// Property: for any membership, any capacity vector and any source, the
// implicit multicast tree delivers to every member exactly once and never
// exceeds any node's capacity.
func TestQuickMulticastInvariants(t *testing.T) {
	f := func(seed int64) bool {
		net, src, err := networkFromSeed(seed)
		if err != nil {
			t.Logf("seed %d: setup: %v", seed, err)
			return false
		}
		tree, err := net.BuildTree(src)
		if err != nil {
			t.Logf("seed %d: build: %v", seed, err)
			return false
		}
		if err := tree.VerifyComplete(); err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		for pos := 0; pos < net.Ring().Len(); pos++ {
			if tree.Degree(pos) > net.Capacity(pos) {
				t.Logf("seed %d: node %d degree %d > capacity %d",
					seed, pos, tree.Degree(pos), net.Capacity(pos))
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: lookup from any node for any identifier agrees with the global
// successor function.
func TestQuickLookupMatchesResponsible(t *testing.T) {
	f := func(seed int64, rawK uint64) bool {
		net, from, err := networkFromSeed(seed)
		if err != nil {
			return false
		}
		k := net.Ring().Space().Reduce(rawK)
		got, _ := net.Lookup(from, k)
		return got == net.Ring().Responsible(k)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}
